package ltephy_test

import (
	"fmt"

	"ltephy"
)

// Example demonstrates the core loop: synthesise a scheduled user's
// subframe, run the receiver, check the CRC.
func Example() {
	cfg := ltephy.DefaultTXConfig()
	p := ltephy.UserParams{ID: 0, PRB: 4, Layers: 1, Mod: ltephy.QPSK}
	u, err := ltephy.Generate(cfg, p, ltephy.NewRNG(1))
	if err != nil {
		panic(err)
	}
	res, err := ltephy.Process(cfg.Receiver, u)
	if err != nil {
		panic(err)
	}
	fmt.Println("CRC ok:", res.CRCOK)
	// Output: CRC ok: true
}

// ExampleCalibration shows Eqs. 3-5: fit the workload estimator on the
// simulator and size the active-core set for a scheduling decision.
func ExampleCalibration() {
	simCfg := ltephy.DefaultSimConfig()
	simCfg.WindowSec = 0.5
	cal, err := ltephy.Calibrate(simCfg, ltephy.CalibrationOptions{PRBStep: 100, Windows: 1})
	if err != nil {
		panic(err)
	}
	users := []ltephy.UserParams{{PRB: 100, Layers: 2, Mod: ltephy.QAM16}}
	cores := cal.ActiveCores(users, 62)
	fmt.Println("active cores within range:", cores >= 2 && cores <= 62)
	// Output: active cores within range: true
}

// ExampleSelectMCS shows link adaptation picking denser schemes as the
// channel improves.
func ExampleSelectMCS() {
	low := ltephy.SelectMCS(0, 0)
	high := ltephy.SelectMCS(24, 0)
	fmt.Println(low.Mod, "->", high.Mod)
	// Output: QPSK -> 64QAM
}

// ExampleNewRandomModel samples the paper's input parameter model.
func ExampleNewRandomModel() {
	m := ltephy.NewRandomModel(1)
	users := m.Next()
	total := 0
	for _, u := range users {
		total += u.PRB
	}
	fmt.Println("users scheduled:", len(users) >= 1 && len(users) <= 10)
	fmt.Println("pool respected:", total <= 200)
	// Output:
	// users scheduled: true
	// pool respected: true
}

// ExampleSimRun runs a short steady-state simulation and reads its
// activity.
func ExampleSimRun() {
	cfg := ltephy.DefaultSimConfig()
	cfg.WindowSec = 0.1
	m, err := ltephy.NewSteadyModel(ltephy.UserParams{PRB: 100, Layers: 2, Mod: ltephy.QAM16})
	if err != nil {
		panic(err)
	}
	res, err := ltephy.SimRun(cfg, m, 100)
	if err != nil {
		panic(err)
	}
	fmt.Println("simulated busy cycles recorded:", res.TotalBusy > 0)
	// Output: simulated busy cycles recorded: true
}
