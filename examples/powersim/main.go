// Powersim: the paper's power-management study in miniature. Runs the
// compressed 68,000-subframe load sweep under all four deactivation
// policies on the simulated TILEPro64, applies the analytical power-gating
// model, and prints the Table II comparison plus the Fig. 12 estimator
// accuracy.
package main

import (
	"fmt"
	"log"

	"ltephy"
)

func main() {
	suite, err := ltephy.NewSuite(ltephy.QuickExperiments())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("subframe-based power management (compressed trace)")
	fmt.Printf("trace: %d subframes at %.0f ms dispatch, %d workers\n\n",
		suite.Cfg.Subframes(), 1000*suite.Cfg.PeriodSec, suite.Cfg.Workers)

	// Fig. 12: how well does the estimator track the measured workload?
	_, stats, err := suite.Fig12()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload estimation (Fig. 12): avg |error| %.1f%%, max %.1f%%, mean activity %.0f%%\n",
		100*stats.AvgAbs, 100*stats.MaxAbs, 100*stats.Mean)
	fmt.Println("  (paper: 1.2% avg, 5.4% max, ~50% mean)")

	// Table II: average total power per technique.
	avgs, err := suite.PowerAverages()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naverage total power (Table II):")
	paper := map[string]float64{
		"NONAP": 25, "IDLE": 20.7, "NAP": 20.5, "NAP+IDLE": 19.9, "PowerGating": 18.5,
	}
	nonap := avgs["NONAP"]
	for _, name := range []string{"NONAP", "IDLE", "NAP", "NAP+IDLE", "PowerGating"} {
		fmt.Printf("  %-12s %5.2f W  (%+5.1f%% vs NONAP; paper: %.1f W)\n",
			name, avgs[name], 100*(avgs[name]-nonap)/nonap, paper[name])
	}

	best := avgs["PowerGating"]
	idle := avgs["IDLE"]
	fmt.Printf("\npower gating saves %.1f%% vs reactive-only management on average (paper: 11%%)\n",
		100*(idle-best)/idle)

	// The paper's named future work: the same estimate driving DVFS.
	dvfs, err := suite.PowerSeries(ltephy.DVFS)
	if err != nil {
		log.Fatal(err)
	}
	var dvfsMean float64
	for _, v := range dvfs {
		dvfsMean += v
	}
	dvfsMean /= float64(len(dvfs))
	fmt.Printf("estimate-driven DVFS (extension): %.2f W (%.1f%% vs NONAP)\n",
		dvfsMean, 100*(dvfsMean-nonap)/nonap)
}
