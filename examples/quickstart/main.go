// Quickstart: synthesise one subframe of LTE uplink traffic, run it
// through the serial reference receiver, and print the decoded results —
// the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"ltephy"
)

func main() {
	// Three users with different grants, like a base-station scheduler
	// would issue: a small QPSK user (VoIP-ish), a mid-size 16-QAM user,
	// and a 4-layer 64-QAM bulk uploader.
	users := []ltephy.UserParams{
		{ID: 0, PRB: 4, Layers: 1, Mod: ltephy.QPSK},
		{ID: 1, PRB: 12, Layers: 2, Mod: ltephy.QAM16},
		{ID: 2, PRB: 8, Layers: 4, Mod: ltephy.QAM64},
	}

	// The synthetic transmitter runs the full TX chain (payload -> CRC ->
	// interleave -> QAM -> DFT spread -> per-layer DMRS) through a fading
	// 4-antenna MIMO channel at 25 dB SNR.
	txCfg := ltephy.DefaultTXConfig()
	rng := ltephy.NewRNG(42)
	sf, err := ltephy.GenerateSubframe(txCfg, 0, users, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Process the subframe with the paper-faithful receiver (pass-through
	// turbo decoding, hard CRC check).
	results, err := ltephy.ProcessSubframe(txCfg.Receiver, sf)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("LTE Uplink Receiver PHY quickstart")
	fmt.Printf("subframe 0: %d users, %d PRBs total\n\n", len(sf.Users), sf.TotalPRB())
	for i, r := range results {
		p := users[i]
		fmt.Printf("user %d (%3d PRB, %d layer(s), %-6v): CRC %-4v  payload %5d bits  channel MSE %.2e\n",
			r.UserID, p.PRB, p.Layers, p.Mod, r.CRCOK, len(r.Bits), r.ChannelMSE)
	}

	// The same subframe decoded with the real 3GPP turbo code: the
	// 4-layer 64-QAM user survives MMSE fades that break uncoded demapping.
	fullCfg := txCfg
	fullCfg.Receiver.Turbo = ltephy.TurboFull
	sf2, err := ltephy.GenerateSubframe(fullCfg, 1, users, ltephy.NewRNG(42))
	if err != nil {
		log.Fatal(err)
	}
	results2, err := ltephy.ProcessSubframe(fullCfg.Receiver, sf2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith full turbo decoding:")
	for i, r := range results2 {
		fmt.Printf("user %d: CRC %-4v  payload %5d bits (rate ~1/3 of the passthrough payload)\n",
			users[i].ID, r.CRCOK, len(r.Bits))
	}
}
