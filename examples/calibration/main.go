// Calibration: reproduce the paper's Section VI-A workload estimator on
// the TILEPro64-substitute simulator — sweep steady-state activity versus
// PRB count for each (layers, modulation) pair, fit the k_LM coefficients
// of Eq. 3, and use them to size the active-core set (Eq. 5) for a few
// example scheduling decisions.
package main

import (
	"fmt"
	"log"

	"ltephy"
)

func main() {
	simCfg := ltephy.DefaultSimConfig()
	simCfg.WindowSec = 0.5

	// A coarse sweep (step 25 -> 8 points per curve) is enough for the
	// linear fit; cmd/lte-calibrate runs the paper's full step-2 sweep.
	fmt.Println("calibrating workload estimator (coarse sweep)...")
	cal, err := ltephy.Calibrate(simCfg, ltephy.CalibrationOptions{PRBStep: 25, Windows: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfitted activity-per-PRB coefficients (Eq. 3):")
	for _, k := range cal.Keys() {
		fmt.Printf("  %-6v %d layer(s): k = %.6f   (200 PRB -> %4.1f%% activity)\n",
			k.Mod, k.Layers, cal.Coeffs[k], 100*200*cal.Coeffs[k])
	}

	// Apply Eqs. 4-5 to example subframes.
	examples := []struct {
		name  string
		users []ltephy.UserParams
	}{
		{"light (one VoIP-ish user)", []ltephy.UserParams{
			{PRB: 6, Layers: 1, Mod: ltephy.QPSK},
		}},
		{"mixed (four users)", []ltephy.UserParams{
			{PRB: 50, Layers: 2, Mod: ltephy.QAM16},
			{PRB: 30, Layers: 1, Mod: ltephy.QPSK},
			{PRB: 60, Layers: 3, Mod: ltephy.QAM64},
			{PRB: 20, Layers: 1, Mod: ltephy.QAM16},
		}},
		{"peak (pool maxed out)", []ltephy.UserParams{
			{PRB: 200, Layers: 4, Mod: ltephy.QAM64},
		}},
	}
	fmt.Println("\nactive-core decisions (Eq. 5, margin +2, 62 workers):")
	for _, ex := range examples {
		act := cal.Estimate(ex.users)
		cores := cal.ActiveCores(ex.users, 62)
		fmt.Printf("  %-28s estimated activity %.3f -> %2d active cores\n", ex.name, act, cores)
	}
}
