// Parallel: drive the native work-stealing runtime the way the paper's
// Pthreads benchmark runs — a maintenance-thread dispatcher submitting one
// subframe per DELTA to a worker pool — then verify the parallel output
// bit-for-bit against the serial reference receiver (Section IV-D).
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"ltephy"
)

func main() {
	const subframes = 40

	// A deterministic trace of modest users (native DSP runs on the host,
	// so PRB counts are kept small; the simulator handles full scale).
	model := ltephy.NewRandomModel(7)
	trace := ltephy.RecordTrace(model, subframes)
	for _, users := range trace.Subframes {
		for i := range users {
			if users[i].PRB > 6 {
				users[i].PRB = 6
			}
		}
	}

	workers := runtime.GOMAXPROCS(0)
	poolCfg := ltephy.DefaultPoolConfig()
	poolCfg.Workers = workers

	dispCfg := ltephy.DefaultDispatcherConfig()
	dispCfg.Delta = 2 * time.Millisecond

	fmt.Printf("verifying %d subframes: serial reference vs %d-worker pool...\n", subframes, workers)
	start := time.Now()
	if err := ltephy.Verify(poolCfg, dispCfg, trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bit-identical results in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Timed parallel run with result collection and the Eq. 2 activity
	// metric.
	col := ltephy.NewCollector()
	poolCfg.OnResult = col.Add
	pool, err := ltephy.NewPool(poolCfg)
	if err != nil {
		log.Fatal(err)
	}
	disp := ltephy.NewDispatcher(dispCfg)
	if err := disp.Pregenerate(trace); err != nil {
		log.Fatal(err)
	}
	trace.Reset()

	before := pool.Stats()
	wall, err := disp.Run(pool, trace, ltephy.RunOptions{Subframes: subframes})
	if err != nil {
		log.Fatal(err)
	}
	after := pool.Stats()
	pool.Close()

	crcOK := 0
	for _, r := range col.Sorted() {
		if r.CRCOK {
			crcOK++
		}
	}
	fmt.Printf("timed run: %d subframes in %v (DELTA = %v)\n", subframes, wall.Round(time.Millisecond), dispCfg.Delta)
	fmt.Printf("  %d user results, %d CRC pass\n", col.Len(), crcOK)
	fmt.Printf("  activity (Eq. 2): %.3f across %d workers\n", ltephy.SchedActivity(before, after, wall), workers)
}
