// Linkadapt: adaptive modulation and coding over the repository's own
// receiver. Sweeps the channel SNR, lets the AMC ladder pick the
// modulation and code rate, and reports the achieved throughput — the
// realistic alternative to the paper's randomised modulation model.
package main

import (
	"fmt"
	"log"

	"ltephy"
)

func main() {
	const prb = 6
	fmt.Println("link adaptation over the LTE uplink receiver (1 layer, 6 PRB)")
	fmt.Printf("%8s  %-22s  %10s  %8s  %s\n", "SNR(dB)", "selected MCS", "bits/sf", "eff", "CRC")
	for snr := -2.0; snr <= 26; snr += 4 {
		mcs := ltephy.SelectMCS(snr, 1)
		cfg := ltephy.DefaultTXConfig()
		cfg.Receiver.Turbo = ltephy.TurboFull
		cfg.Receiver.CodeRate = mcs.Rate
		cfg.SNRdB = snr
		p := ltephy.UserParams{ID: 1, PRB: prb, Layers: 1, Mod: mcs.Mod}
		u, err := ltephy.Generate(cfg, p, ltephy.NewRNG(uint64(snr*10+1000)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := ltephy.Process(cfg.Receiver, u)
		if err != nil {
			log.Fatal(err)
		}
		goodput := 0
		if res.CRCOK {
			goodput = len(res.Bits)
		}
		fmt.Printf("%8.0f  %-22v  %10d  %8.2f  %v\n",
			snr, mcs, goodput, mcs.SpectralEfficiency(), res.CRCOK)
	}
	fmt.Println("\nhigher SNR -> denser constellations and less coding; every row should pass CRC")
}
