// HARQ: incremental-redundancy retransmission over the uplink receiver.
// A heavily punctured first transmission fails its CRC at low SNR; the
// eNodeB keeps the soft bits, the UE retransmits a different redundancy
// version of the same codeword, and soft combining recovers the block —
// the mechanism that lets LTE run aggressive code rates safely.
package main

import (
	"fmt"
	"log"

	"ltephy"
)

func main() {
	cfg := ltephy.DefaultTXConfig()
	cfg.Receiver.Turbo = ltephy.TurboFull
	cfg.Receiver.CodeRate = 0.85 // aggressive: only ~15% redundancy survives
	cfg.SNRdB = 7

	p := ltephy.UserParams{ID: 1, PRB: 6, Layers: 1, Mod: ltephy.QAM16}
	format, err := ltephy.NewTransportFormatRate(p, ltephy.TurboFull, cfg.Receiver.CodeRate)
	if err != nil {
		log.Fatal(err)
	}

	payload := make([]uint8, format.PayloadBits)
	pr := ltephy.NewRNG(77)
	for i := range payload {
		payload[i] = pr.Bit()
	}
	hc := cfg.Receiver
	hc.TurboIterations = 6
	harq, err := format.NewHARQCfg(hc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HARQ over a rate-%.2f 16-QAM link at %.0f dB (%d payload bits)\n\n",
		cfg.Receiver.CodeRate, cfg.SNRdB, format.PayloadBits)

	for round := 0; round < 4; round++ {
		rv := ltephy.RVForRound(round)
		u, err := ltephy.GenerateWithPayload(cfg, p, ltephy.NewRNG(uint64(101*(round+1))), payload, rv)
		if err != nil {
			log.Fatal(err)
		}
		job, err := ltephy.NewUserJob(cfg.Receiver, u)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < job.NumChanEstTasks(); i++ {
			job.ChanEstTask(i)
		}
		job.ComputeWeights()
		for i := 0; i < job.NumDataTasks(); i++ {
			job.DataTask(i)
		}
		solo := job.Finish()

		got, ok, err := harq.Absorb(job.SoftBits(), rv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("transmission %d (rv %d): standalone CRC %-5v  combined CRC %-5v\n",
			round+1, rv, solo.CRCOK, ok)
		if ok {
			match := true
			for i := range payload {
				if got[i] != payload[i] {
					match = false
					break
				}
			}
			fmt.Printf("\ndecoded after %d transmission(s); payload intact: %v\n", harq.Rounds(), match)
			return
		}
	}
	fmt.Println("\nblock not recovered in 4 rounds — lower the code rate or raise SNR")
}
