package ltephy_test

import (
	"testing"
	"time"

	"ltephy"
)

// TestPublicAPIQuickstart walks the README's quickstart path through the
// facade only — the contract a downstream user depends on.
func TestPublicAPIQuickstart(t *testing.T) {
	users := []ltephy.UserParams{
		{ID: 0, PRB: 3, Layers: 1, Mod: ltephy.QPSK},
		{ID: 1, PRB: 4, Layers: 2, Mod: ltephy.QAM16},
	}
	cfg := ltephy.DefaultTXConfig()
	sf, err := ltephy.GenerateSubframe(cfg, 0, users, ltephy.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	results, err := ltephy.ProcessSubframe(cfg.Receiver, sf)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if !r.CRCOK {
			t.Errorf("user %d failed CRC", r.UserID)
		}
	}
}

func TestPublicAPIModels(t *testing.T) {
	m := ltephy.NewRandomModel(3)
	trace := ltephy.RecordTrace(m, 50)
	if len(trace.Subframes) != 50 {
		t.Fatalf("%d subframes", len(trace.Subframes))
	}
	steady, err := ltephy.NewSteadyModel(ltephy.UserParams{PRB: 10, Layers: 1, Mod: ltephy.QPSK})
	if err != nil {
		t.Fatal(err)
	}
	if got := steady.Next(); len(got) != 1 {
		t.Fatalf("steady model returned %d users", len(got))
	}
	comp := ltephy.NewRandomModelCompressed(3, 10)
	if got := comp.Next(); len(got) == 0 {
		t.Fatal("compressed model returned no users")
	}
}

func TestPublicAPIParallelVerify(t *testing.T) {
	m := ltephy.NewRandomModel(5)
	trace := ltephy.RecordTrace(m, 6)
	for _, users := range trace.Subframes {
		for i := range users {
			if users[i].PRB > 4 {
				users[i].PRB = 4
			}
		}
	}
	poolCfg := ltephy.DefaultPoolConfig()
	poolCfg.Workers = 2
	dispCfg := ltephy.DefaultDispatcherConfig()
	dispCfg.Delta = time.Millisecond
	if err := ltephy.Verify(poolCfg, dispCfg, trace); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPISimAndPower(t *testing.T) {
	cfg := ltephy.DefaultSimConfig()
	cfg.WindowSec = 0.1
	m, err := ltephy.NewSteadyModel(ltephy.UserParams{PRB: 50, Layers: 2, Mod: ltephy.QAM16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ltephy.SimRun(cfg, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBusy <= 0 {
		t.Fatal("no busy cycles simulated")
	}
	series, err := ltephy.PowerSeries(res, ltephy.DefaultPowerParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 || series[0] < ltephy.DefaultPowerParams().BaseW {
		t.Fatalf("power series %v implausible", series)
	}
}

func TestPublicAPIConstants(t *testing.T) {
	if ltephy.QPSK.Bits() != 2 || ltephy.QAM16.Bits() != 4 || ltephy.QAM64.Bits() != 6 {
		t.Error("modulation constants wrong")
	}
	if ltephy.NONAP.String() != "NONAP" || ltephy.NAPIDLE.String() != "NAP+IDLE" {
		t.Error("policy constants wrong")
	}
	rc := ltephy.DefaultReceiverConfig()
	if rc.Antennas != 4 || rc.Turbo != ltephy.TurboPassthrough {
		t.Errorf("default receiver config unexpected: %+v", rc)
	}
}
