# Developer checks for the ltephy benchmark. `make check` is the
# pre-commit gate: vet, full build, the race-sensitive scheduler and
# receiver suites, and the steady-state allocation regression test.

GO ?= go

.PHONY: check vet build test race zeroalloc bench

check: vet build race zeroalloc
	$(GO) test ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scheduler and receiver suites exercise per-worker arena isolation
# and work stealing; -race proves no scratch buffer crosses workers.
race:
	$(GO) test -race ./internal/sched/... ./internal/uplink/...

# Guards the ISSUE 1 invariant: the post-warmup receiver hot path must
# not allocate (see internal/uplink/alloc_bench_test.go).
zeroalloc:
	$(GO) test -run TestSteadyStateZeroAlloc -count=1 ./internal/uplink/

# Allocation-regression benchmarks; compare allocs/op against the
# figures recorded in EXPERIMENTS.md.
bench:
	$(GO) test -bench 'BenchmarkSubframeE2E' -benchmem -run '^$$' ./internal/uplink/
