# Developer checks for the ltephy benchmark. `make check` is the
# pre-commit gate: lint (vet + the ltephy-lint invariant suite), full
# build, the race-sensitive scheduler and receiver suites, and the
# steady-state allocation regression test.

GO ?= go

.PHONY: check vet lint build test race zeroalloc obs-overhead bench bench-fft fuzz-smoke

check: lint build race zeroalloc obs-overhead fft-sweep
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static gate: go vet, the repository's own invariant analyzers
# (cmd/ltephy-lint: arenapair, arenaescape, hotpathalloc, determinism,
# atomiccheck — see DESIGN.md "Enforced invariants"), and govulncheck when
# the tool is installed (skipped otherwise so offline builds stay green).
lint: vet
	$(GO) run ./cmd/ltephy-lint ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scheduler, receiver and telemetry suites exercise per-worker arena
# isolation, work stealing and concurrent ring snapshots; -race proves no
# scratch buffer crosses workers and the event rings are race-free.
race:
	$(GO) test -race ./internal/sched/... ./internal/uplink/... ./internal/obs/...

# Guards the ISSUE 1 invariant: the post-warmup receiver hot path must
# not allocate (see internal/uplink/alloc_bench_test.go) — including with
# telemetry recording at sampling 0, 1 and 64.
zeroalloc:
	$(GO) test -run TestSteadyStateZeroAlloc -count=1 ./internal/uplink/

# Telemetry overhead budget (ISSUE 4): a fully instrumented subframe at
# sampling=1 must cost <= 5% over sampling=0. Benchmarks for ~10s.
obs-overhead:
	LTEPHY_OVERHEAD_GATE=1 $(GO) test -run TestTelemetryOverheadGate -count=1 -v ./internal/obs/

# Allocation-regression benchmarks; compare allocs/op against the
# figures recorded in EXPERIMENTS.md.
bench:
	$(GO) test -bench 'BenchmarkSubframeE2E' -benchmem -run '^$$' ./internal/uplink/

# FFT accuracy gate: every LTE length n = 12*nPRB, nPRB in [2, 200],
# against a naive O(n^2) DFT at <= 1e-9 relative error.
.PHONY: fft-sweep
fft-sweep:
	$(GO) test -run TestAccuracySweepAllLTELengths -count=1 ./internal/phy/fft/

# FFT engine microbenchmarks: single transforms over representative smooth
# and Bluestein lengths, plus batched-vs-looped comparisons. Compare
# against the pre-change figures in BENCH_fft_baseline.json.
bench-fft:
	$(GO) test -bench 'BenchmarkForward' -benchmem -run '^$$' ./internal/phy/fft/

# Short fuzz pass over every fuzz target (~10s each): CRC append/check,
# turbo segmentation and rate-matching round trips, and the FFT
# forward/inverse round trip. `go test -fuzz` takes one target per run,
# hence the separate invocations.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzAppendCheck$$' -fuzztime $(FUZZTIME) ./internal/phy/crc/
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentationRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/phy/turbo/
	$(GO) test -run '^$$' -fuzz '^FuzzRateMatchRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/phy/turbo/
	$(GO) test -run '^$$' -fuzz '^FuzzRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/phy/fft/
