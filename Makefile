# Developer checks for the ltephy benchmark. `make check` is the
# pre-commit gate: lint (vet + the ltephy-lint invariant suite), full
# build, the race-sensitive scheduler and receiver suites, and the
# steady-state allocation regression test.

GO ?= go

.PHONY: check vet lint build test race zeroalloc obs-overhead bench bench-fft bench-e2e bench-lane bench-turbo bench-compare fuzz-smoke serve-smoke kpi-smoke fleet-smoke print-govulncheck-version

check: lint build race zeroalloc obs-overhead fft-sweep kpi-smoke
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static gate: go vet, the repository's own invariant analyzers
# (cmd/ltephy-lint: arenapair, arenaescape, hotpathalloc, blockingcall,
# spawncheck, lockorder, crossarena, determinism, atomiccheck — see
# DESIGN.md "Enforced invariants"), and govulncheck. Locally a missing
# govulncheck is soft-skipped so offline builds stay green; CI exports
# LINT_REQUIRE_GOVULNCHECK=1 (after installing the pinned version below)
# so the vulnerability gate cannot silently vanish there.
GOVULNCHECK_VERSION ?= v1.1.3

lint: vet
	$(GO) run ./cmd/ltephy-lint ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	elif [ -n "$$LINT_REQUIRE_GOVULNCHECK" ]; then \
		echo "lint: govulncheck required (LINT_REQUIRE_GOVULNCHECK set) but not installed"; \
		exit 1; \
	else \
		echo "lint: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# CI reads the pin so `go install` and the lint gate agree on one version.
print-govulncheck-version:
	@echo $(GOVULNCHECK_VERSION)

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scheduler, receiver, telemetry, front-haul and turbo suites
# exercise per-worker arena isolation, work stealing, concurrent ring
# snapshots, the serving layer's connection/ack plumbing and the turbo
# window fan-out's shared-state handoff; -race proves no scratch buffer
# crosses workers and the shared counters are race-free.
race:
	$(GO) test -race ./internal/sched/... ./internal/uplink/... ./internal/obs/... ./internal/fronthaul/... ./internal/phy/turbo/...

# Guards the ISSUE 1 invariant: the post-warmup receiver hot path must
# not allocate (see internal/uplink/alloc_bench_test.go) — including with
# telemetry recording at sampling 0, 1 and 64.
zeroalloc:
	$(GO) test -run TestSteadyStateZeroAlloc -count=1 ./internal/uplink/

# Telemetry overhead budget (ISSUE 4): a fully instrumented subframe at
# sampling=1 must cost <= 5% over sampling=0. Benchmarks for ~10s.
obs-overhead:
	LTEPHY_OVERHEAD_GATE=1 $(GO) test -run TestTelemetryOverheadGate -count=1 -v ./internal/obs/

# Allocation-regression benchmarks; compare allocs/op against the
# figures recorded in EXPERIMENTS.md.
bench:
	$(GO) test -bench 'BenchmarkSubframeE2E' -benchmem -run '^$$' ./internal/uplink/

# FFT accuracy gate: every LTE length n = 12*nPRB, nPRB in [2, 200],
# against a naive O(n^2) DFT at <= 1e-9 relative error.
.PHONY: fft-sweep
fft-sweep:
	$(GO) test -run TestAccuracySweepAllLTELengths -count=1 ./internal/phy/fft/

# FFT engine microbenchmarks: single transforms over representative smooth
# and Bluestein lengths, plus batched-vs-looped comparisons. Compare
# against the pre-change figures in BENCH_fft_baseline.json.
bench-fft:
	$(GO) test -bench 'BenchmarkForward' -benchmem -run '^$$' ./internal/phy/fft/

# End-to-end subframe baseline: re-records BENCH_e2e_baseline.json
# (SubframeE2E ns/op, bytes/op, allocs/op). Compare a fresh run against
# the committed figures before and after receiver changes.
bench-e2e:
	LTEPHY_BENCH_E2E_OUT=$(CURDIR)/BENCH_e2e_baseline.json \
		$(GO) test -run TestWriteE2EBenchBaseline -count=1 -v ./internal/uplink/

# Lane-layout kernel baseline: re-records BENCH_lane_baseline.json (the
# complex128 and float32 stage kernels plus the float32 subframe e2e).
bench-lane:
	LTEPHY_BENCH_LANE_OUT=$(CURDIR)/BENCH_lane_baseline.json \
		$(GO) test -run TestWriteLaneBenchBaseline -count=1 -v ./internal/uplink/

# Line-rate turbo baseline: re-records BENCH_turbo_baseline.json (the
# full-turbo subframe e2e plus the int8 sliding-window kernel at K=512
# and K=6144). CI's bench-turbo job re-records on its own hardware
# before gating.
bench-turbo:
	LTEPHY_BENCH_TURBO_OUT=$(CURDIR)/BENCH_turbo_baseline.json \
		$(GO) test -run TestWriteTurboBenchBaseline -count=1 -v ./internal/uplink/

# Benchmark regression gate: run the receiver and turbo-kernel benchmarks
# and fail on any >10% ns/op regression (or any allocs/op growth) against
# the committed baselines. CI's bench jobs re-record the baselines on
# their own hardware first, so the comparison is always same-machine.
bench-compare:
	@( $(GO) test -run '^$$' -bench 'BenchmarkSubframeE2E|BenchmarkChanEstStage|BenchmarkDataStage' \
		-benchmem ./internal/uplink/ && \
	   $(GO) test -run '^$$' -bench 'BenchmarkDecodeQuant' -benchmem ./internal/phy/turbo/ ) | \
		$(GO) run ./cmd/bench-compare \
			-baseline $(CURDIR)/BENCH_e2e_baseline.json,$(CURDIR)/BENCH_lane_baseline.json,$(CURDIR)/BENCH_turbo_baseline.json

# Short fuzz pass over every fuzz target (~10s each): CRC append/check,
# turbo segmentation and rate-matching round trips, the int8 decoder
# against the float64 oracle, the FFT
# forward/inverse round trip, and the front-haul frame decoder against
# adversarial wire bytes. `go test -fuzz` takes one target per run,
# hence the separate invocations.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzAppendCheck$$' -fuzztime $(FUZZTIME) ./internal/phy/crc/
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentationRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/phy/turbo/
	$(GO) test -run '^$$' -fuzz '^FuzzRateMatchRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/phy/turbo/
	$(GO) test -run '^$$' -fuzz '^FuzzTurboQuantized$$' -fuzztime $(FUZZTIME) ./internal/phy/turbo/
	$(GO) test -run '^$$' -fuzz '^FuzzRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/phy/fft/
	$(GO) test -run '^$$' -fuzz '^FuzzLanePackUnpack$$' -fuzztime $(FUZZTIME) ./internal/phy/lane/
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime $(FUZZTIME) ./internal/fronthaul/

# Serving-layer smoke: lte-enb on a Unix socket, 2000 subframes per cell
# at 2x real time through the loopback generator, asserting zero wire
# corruption and a non-zero accepted count. CI's serve-smoke job runs this.
serve-smoke:
	@rm -rf bin/smoke && mkdir -p bin/smoke
	$(GO) build -o bin/smoke/ ./cmd/lte-enb ./cmd/lte-bench
	@set -e; \
	sock=bin/smoke/enb.sock; \
	./bin/smoke/lte-enb -listen $$sock -network unix -cells 4 -pools 2 -deadline 1m & \
	enb=$$!; \
	trap 'kill $$enb 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do [ -S $$sock ] && break; sleep 0.1; done; \
	[ -S $$sock ] || { echo "serve-smoke: server did not come up"; exit 1; }; \
	./bin/smoke/lte-bench -loopback $$sock -network unix -cells 4 -subframes 2000 \
		-speedup 2 -delta 1ms -maxprb 2 | tee bin/smoke/out.txt; \
	kill $$enb; wait $$enb 2>/dev/null || true; \
	grep -q 'corrupt=0' bin/smoke/out.txt || { echo "serve-smoke: wire corruption"; exit 1; }; \
	grep -q 'done=8000' bin/smoke/out.txt || { echo "serve-smoke: not all subframes served"; exit 1; }; \
	echo "serve-smoke: OK"

# Fleet smoke (ISSUE 10): two runs of the fleet harness, both gated on
# exactly-once delivery (0 lost subframes, KPI rollup == users offered)
# and on the measured shed fraction landing within 10% (relative) of the
# admission estimator's credited-budget prediction.
#   1. Process fleet: 2 real lte-enb processes x 4 cells at 2x load,
#      with one forced live migration mid-run and one forced worker
#      crash (checkpoint round + SIGKILL, supervisor restores from
#      snapshots on the relaunch).
#   2. Scale: 16 cells on 2 in-process workers through a full diurnal
#      ramp (-day = run length).
# JSON summaries land under results/ (CI uploads them as artifacts).
fleet-smoke:
	@rm -rf bin/fleet && mkdir -p bin/fleet results
	$(GO) build -o bin/fleet/ ./cmd/lte-enb ./cmd/lte-bench
	./bin/fleet/lte-bench -fleet 2 -cells 4 -subframes 200 -workers 2 \
		-load 2 -dtx 0.1 -maxprb 2 -seed 7 -migrate-at 60 -crash-at 140 \
		-enb-bin bin/fleet/lte-enb -fleet-dir bin/fleet \
		-assert-exactly-once -assert-shed-within 0.1 \
		-json results/fleet_smoke.json | tee bin/fleet/smoke.txt
	@grep -q 'migrated cell 2' bin/fleet/smoke.txt || { echo "fleet-smoke: migration did not run"; exit 1; }
	@grep -q 'worker 0 back' bin/fleet/smoke.txt || { echo "fleet-smoke: crashed worker was not restored"; exit 1; }
	./bin/fleet/lte-bench -fleet 2 -cells 16 -subframes 100 -workers 2 \
		-load 2 -day 100 -dtx 0.1 -maxprb 2 -seed 11 \
		-assert-exactly-once -assert-shed-within 0.1 \
		-json results/fleet_scale.json
	@echo "fleet-smoke: OK"

# KPI measurement smoke (ISSUE 9): a 3-point BLER-vs-SNR campaign through
# the full-turbo receive path, asserting the physics — BLER monotone
# non-increasing in SNR and 0% at the top of the grid — and leaving the
# curve artifacts under results/. Runs in well under a second.
kpi-smoke:
	$(GO) run ./cmd/lte-bench -bler-sweep -turbo full -rate 0.5 \
		-sweep-subframes 8 -maxprb 4 -snr-grid "-4,-1,6" \
		-assert-monotone -out results
	@echo "kpi-smoke: OK"
