// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating its data via internal/experiments), plus
// ablation benchmarks for the design choices called out in DESIGN.md §5.
//
// The figure/table benchmarks use the Quick preset (the full 68,000-
// subframe load sweep compressed 20x, coarse calibration grid) so a whole
// `go test -bench=.` pass completes in well under a minute; cmd/lte-sim
// -full runs the paper-exact scale. Headline quantities are attached to
// each benchmark as custom metrics (W, activity, error) so the paper
// comparison is visible directly in the bench output.
package ltephy_test

import (
	"fmt"
	"sync"
	"testing"

	"ltephy/internal/cost"
	"ltephy/internal/estimator"
	"ltephy/internal/experiments"
	"ltephy/internal/params"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/power"
	"ltephy/internal/sim"
	"ltephy/internal/uplink"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite returns the shared Quick-preset suite; heavy artifacts
// (calibration, per-policy runs) are computed once and cached inside it.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		s, err := experiments.NewSuite(experiments.Quick())
		if err != nil {
			panic(err)
		}
		suite = s
	})
	return suite
}

// --- Figures 7-9: input parameter model traces ---

func BenchmarkFig07UsersTrace(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08PRBTrace(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig09LayersTrace(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 11: calibration sweep ---

func BenchmarkFig11Calibration(b *testing.B) {
	s := benchSuite(b)
	var top float64
	for i := 0; i < b.N; i++ {
		cal, err := s.Calibration()
		if err != nil {
			b.Fatal(err)
		}
		keys := cal.Keys()
		curve := cal.Curves[keys[len(keys)-1]]
		top = curve[len(curve)-1].Activity
	}
	b.ReportMetric(top, "peak-activity") // paper: ~0.95
}

// --- Figure 12: estimation accuracy ---

func BenchmarkFig12EstimationAccuracy(b *testing.B) {
	s := benchSuite(b)
	var stats *experiments.EstimationError
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = s.Fig12()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.AvgAbs, "avg-err") // paper: 0.012
	b.ReportMetric(stats.MaxAbs, "max-err") // paper: 0.054
}

// --- Figure 13: active-core estimates ---

func BenchmarkFig13ActiveCores(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig13(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 14-16 and Tables I-II: power study ---

func BenchmarkFig14NapVsNonap(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig14(); err != nil {
			b.Fatal(err)
		}
	}
	avgs, err := s.PowerAverages()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(avgs["NONAP"], "nonap-W") // paper: 25
	b.ReportMetric(avgs["NAP"], "nap-W")     // paper: 20.5
}

func BenchmarkFig15AllPolicies(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig15(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16PowerGating(b *testing.B) {
	s := benchSuite(b)
	var gated []float64
	for i := 0; i < b.N; i++ {
		var err error
		gated, err = s.GatedSeries()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(power.Mean(gated), "gated-W") // paper: 18.5
}

func BenchmarkTable1DynamicPower(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table1(); err != nil {
			b.Fatal(err)
		}
	}
	avgs, err := s.PowerAverages()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(avgs["NONAP"]-s.Cfg.Power.BaseW, "nonap-dyn-W")      // paper: 11
	b.ReportMetric(avgs["NAP+IDLE"]-s.Cfg.Power.BaseW, "napidle-dyn-W") // paper: 5.9
}

func BenchmarkTable2TotalPower(b *testing.B) {
	s := benchSuite(b)
	var avgs map[string]float64
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2(); err != nil {
			b.Fatal(err)
		}
		var err error
		avgs, err = s.PowerAverages()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avgs["PowerGating"], "gating-W")                                    // paper: 18.5
	b.ReportMetric(100*(avgs["IDLE"]-avgs["PowerGating"])/avgs["IDLE"], "vs-idle-pct") // paper: 11
}

// --- Ablations (DESIGN.md §5) ---

// ablationTrace is a short mid-ramp trace shared by the ablation benches.
func ablationTrace() *params.Trace {
	m := params.NewRandomCompressed(3, 20)
	for i := 0; i < 1200; i++ { // skip toward mid-ramp
		m.Next()
	}
	return params.Record(m, 600)
}

// BenchmarkAblationMargin sweeps the Eq. 5 over-provisioning margin and
// reports the latency cost of removing it (max lag in ms) and the power
// cost of widening it.
func BenchmarkAblationMargin(b *testing.B) {
	s := benchSuite(b)
	cal, err := s.Calibration()
	if err != nil {
		b.Fatal(err)
	}
	for _, margin := range []int{0, 2, 4} {
		margin := margin
		b.Run(map[int]string{0: "margin0", 2: "margin2", 4: "margin4"}[margin], func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				trace := ablationTrace()
				cfg := sim.DefaultConfig()
				cfg.WindowSec = 0.1
				cfg.Policy = sim.NAPIDLE
				cfg.ActiveCores = func(_ int64, users []uplink.UserParams) int {
					return cal.ActiveCoresWithMargin(users, cfg.Workers, margin)
				}
				var err error
				res, err = sim.Run(cfg, trace, len(trace.Subframes))
				if err != nil {
					b.Fatal(err)
				}
			}
			ser, err := power.Series(res, s.Cfg.Power)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(power.Mean(ser), "W")
			b.ReportMetric(res.MaxLagCycles/cost.DefaultCoreHz*1000, "max-lag-ms")
		})
	}
}

// BenchmarkAblationGatingGroup sweeps the power-gate group size: finer
// groups track the estimate tighter (more savings) at more toggles.
func BenchmarkAblationGatingGroup(b *testing.B) {
	s := benchSuite(b)
	base, err := s.PowerSeries(sim.NAPIDLE)
	if err != nil {
		b.Fatal(err)
	}
	res, err := s.Run(sim.NAPIDLE)
	if err != nil {
		b.Fatal(err)
	}
	for _, group := range []int{1, 4, 8, 16} {
		group := group
		b.Run(map[int]string{1: "group01", 4: "group04", 8: "group08", 16: "group16"}[group], func(b *testing.B) {
			var gated []float64
			for i := 0; i < b.N; i++ {
				p := s.Cfg.Power
				p.GateGroup = group
				var err error
				gated, err = power.ApplyGating(base, res, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(power.Mean(gated), "W")
		})
	}
}

// BenchmarkAblationGatingWindow sweeps the Eq. 7 window length: a longer
// window toggles less but powers more cores.
func BenchmarkAblationGatingWindow(b *testing.B) {
	s := benchSuite(b)
	base, err := s.PowerSeries(sim.NAPIDLE)
	if err != nil {
		b.Fatal(err)
	}
	res, err := s.Run(sim.NAPIDLE)
	if err != nil {
		b.Fatal(err)
	}
	for _, half := range []int{0, 1, 2, 4} {
		half := half
		b.Run(map[int]string{0: "window1", 1: "window3", 2: "window5", 4: "window9"}[half], func(b *testing.B) {
			var gated []float64
			for i := 0; i < b.N; i++ {
				p := s.Cfg.Power
				p.GateWindowAhead = half
				p.GateWindowBehind = half
				var err error
				gated, err = power.ApplyGating(base, res, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(power.Mean(gated), "W")
		})
	}
}

// BenchmarkAblationTaskParallelism compares the paper's task-level
// parallelisation (Fig. 5) against user-level-only parallelism (Fig. 4):
// same work, much worse per-subframe latency.
func BenchmarkAblationTaskParallelism(b *testing.B) {
	for _, userOnly := range []bool{false, true} {
		userOnly := userOnly
		name := "tasklevel"
		if userOnly {
			name = "userlevel"
		}
		b.Run(name, func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				trace := ablationTrace()
				cfg := sim.DefaultConfig()
				cfg.WindowSec = 0.1
				cfg.UserLevelOnly = userOnly
				var err error
				res, err = sim.Run(cfg, trace, len(trace.Subframes))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MaxLagCycles/cost.DefaultCoreHz*1000, "max-lag-ms")
			b.ReportMetric(float64(res.LateSubframes), "late-jobs")
		})
	}
}

// BenchmarkAblationTurboFull compares the pass-through backend (the paper)
// with full turbo decoding in the workload model: the decoder roughly
// doubles the heavy users' cycle demand.
func BenchmarkAblationTurboFull(b *testing.B) {
	for _, full := range []bool{false, true} {
		full := full
		name := "passthrough"
		if full {
			name = "fullturbo"
		}
		b.Run(name, func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				trace := ablationTrace()
				cfg := sim.DefaultConfig()
				cfg.WindowSec = 0.1
				cfg.Cost.TurboFull = full
				var err error
				res, err = sim.Run(cfg, trace, len(trace.Subframes))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanActivity(), "activity")
		})
	}
}

// BenchmarkAblationEstimatorGrid sweeps the calibration grid: the linear
// fit barely needs the paper's 100-point sweep.
func BenchmarkAblationEstimatorGrid(b *testing.B) {
	for _, step := range []int{10, 50, 100} {
		step := step
		b.Run(map[int]string{10: "step010", 50: "step050", 100: "step100"}[step], func(b *testing.B) {
			var cal *estimator.Calibration
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig()
				cfg.WindowSec = 0.5
				var err error
				cal, err = estimator.Calibrate(cfg, estimator.Options{PRBStep: step, Windows: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			top := cal.Coeffs[estimator.Key{Layers: 4, Mod: modulation.QAM64}]
			b.ReportMetric(top*200, "peak-estimate")
		})
	}
}

// BenchmarkExtensionDVFS measures the estimate-driven DVFS extension (the
// paper's stated future work) against the trace.
func BenchmarkExtensionDVFS(b *testing.B) {
	s := benchSuite(b)
	var mean float64
	for i := 0; i < b.N; i++ {
		ser, err := s.PowerSeries(sim.DVFS)
		if err != nil {
			b.Fatal(err)
		}
		mean = power.Mean(ser)
	}
	b.ReportMetric(mean, "dvfs-W")
}

// BenchmarkExtensionTypicalLoad runs the power comparison at the paper's
// "typical base station" operating point (~25% load: half the PRB pool)
// and reports the relative saving of gating vs reactive management, which
// the paper predicts grows at lower load.
func BenchmarkExtensionTypicalLoad(b *testing.B) {
	cfg := experiments.Quick()
	cfg.PRBPool = 100
	var rel float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewSuite(cfg)
		if err != nil {
			b.Fatal(err)
		}
		avgs, err := s.PowerAverages()
		if err != nil {
			b.Fatal(err)
		}
		rel = 100 * (avgs["IDLE"] - avgs["PowerGating"]) / avgs["IDLE"]
	}
	b.ReportMetric(rel, "vs-idle-pct") // paper at 50% load: 11%; grows here
}

// BenchmarkExtensionLatency reports the per-policy latency tails.
func BenchmarkExtensionLatency(b *testing.B) {
	s := benchSuite(b)
	var d *experiments.Dataset
	for i := 0; i < b.N; i++ {
		var err error
		d, err = s.TableLatency()
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = d
	res, err := s.Run(sim.NAPIDLE)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.LatencyPercentile(0.99), "napidle-p99-periods")
}

// BenchmarkExtensionScaling reports the 16-core overload fraction.
func BenchmarkExtensionScaling(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.TableScaling(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionSensitivity sweeps the Eq. 5 bias.
func BenchmarkExtensionSensitivity(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.TableSensitivity(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionQueueing compares FIFO and SJF admission.
func BenchmarkExtensionQueueing(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.TableQueueing(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionDiurnal runs the compressed day and reports the daily
// energy under power gating.
func BenchmarkExtensionDiurnal(b *testing.B) {
	s := benchSuite(b)
	var d *experiments.Dataset
	for i := 0; i < b.N; i++ {
		var err error
		d, err = s.TableDiurnal()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Row 3 is PowerGating; column 2 is kWh/day.
	var kwh float64
	fmt.Sscanf(d.Rows[3][2], "%f", &kwh)
	b.ReportMetric(kwh, "gated-kWh-day")
}
