package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunReport generates the whole report at quick scale and checks its
// structure. This is the repository's broadest integration test: every
// figure, table and extension study executes in one pass.
func TestRunReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report generation takes ~10 s")
	}
	dir := t.TempDir()
	outPath := filepath.Join(dir, "report.md")
	if err := run([]string{"-o", outPath, "-csvdir", dir, "-rows", "4"}, os.Stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{
		"## Fig. 11", "## Fig. 12", "## Table II", "## Extension — estimate-driven DVFS",
		"## Extension — a diurnal day", "total runtime",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	for _, csv := range []string{"fig12.csv", "table2.csv", "table-diurnal.csv"} {
		if _, err := os.Stat(filepath.Join(dir, csv)); err != nil {
			t.Errorf("missing %s: %v", csv, err)
		}
	}
}
