package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFigures(t *testing.T) {
	for _, fig := range []string{"7", "8", "9"} {
		var buf bytes.Buffer
		err := run([]string{"-fig", fig, "-compression", "20", "-rows", "5"}, &buf)
		if err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		out := buf.String()
		if !strings.Contains(out, "fig"+fig) || !strings.Contains(out, "subframe") {
			t.Errorf("fig %s output missing expected content:\n%s", fig, out)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "7", "-compression", "40", "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "subframe,users" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Errorf("only %d CSV lines", len(lines))
	}
}

func TestRunDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := run([]string{"-fig", "8", "-compression", "40", "-format", "csv"}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Error("same flags produced different traces")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "12"}, &buf); err == nil {
		t.Error("unsupported figure accepted")
	}
	if err := run([]string{"-fig", "7", "-format", "xml"}, &buf); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-compression", "0"}, &buf); err == nil {
		t.Error("invalid compression accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}
