// lte-trace emits the input-parameter-model traces of the paper's Figs.
// 7-9: users per subframe, PRB allocation extremes, and layer extremes.
//
// Usage:
//
//	lte-trace -fig 7 [-seed 1] [-compression 1] [-stride 25] [-format table|csv] [-rows 40]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ltephy/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lte-trace:", err)
		os.Exit(1)
	}
}

// run parses the flags and writes the requested figure to w; extracted
// from main so the command is testable.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lte-trace", flag.ContinueOnError)
	fig := fs.Int("fig", 7, "figure to regenerate: 7 (users), 8 (PRBs) or 9 (layers)")
	seed := fs.Uint64("seed", 1, "parameter model seed")
	compression := fs.Int("compression", 1, "trace compression factor (1 = paper's 68,000 subframes)")
	stride := fs.Int("stride", 25, "plot every Nth subframe (paper: 25)")
	format := fs.String("format", "table", "output format: table or csv")
	rows := fs.Int("rows", 40, "max rows for table output (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Full()
	cfg.Seed = *seed
	cfg.Compression = *compression
	cfg.PlotStride = *stride
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}

	var d *experiments.Dataset
	switch *fig {
	case 7:
		d, err = suite.Fig7()
	case 8:
		d, err = suite.Fig8()
	case 9:
		d, err = suite.Fig9()
	default:
		return fmt.Errorf("unknown figure %d (supported: 7, 8, 9)", *fig)
	}
	if err != nil {
		return err
	}
	switch *format {
	case "csv":
		return d.WriteCSV(w)
	case "table":
		return d.Render(w, *rows)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
