package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTreeIsClean runs the full analyzer suite, with the production
// scoping, over the whole module — the same invocation `make lint` and CI
// use. The tree must stay invariant-clean: any regression that stores
// arena scratch past its Release, allocates on the hot path, or breaks
// the determinism/atomics rules fails this test before it fails in a
// benchmark.
func TestTreeIsClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	n, err := Run(os.Stderr, root, all, "./...")
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	if n != 0 {
		t.Errorf("ltephy-lint found %d invariant violation(s) in the tree; see output above", n)
	}
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
