package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTreeIsClean runs the full analyzer suite, with the production
// scoping, over the whole module — the same invocation `make lint` and CI
// use. The tree must stay invariant-clean: any regression that stores
// arena scratch past its Release, allocates on the hot path, or breaks
// the determinism/atomics rules fails this test before it fails in a
// benchmark.
func TestTreeIsClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	n, err := Run(os.Stderr, root, all, "./...")
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	if n != 0 {
		t.Errorf("ltephy-lint found %d invariant violation(s) in the tree; see output above", n)
	}
}

// TestListFlag checks that -list names every registered analyzer and
// exits cleanly.
func TestListFlag(t *testing.T) {
	var out, errBuf strings.Builder
	if code := cliMain([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("-list exit code = %d, want 0 (stderr: %s)", code, errBuf.String())
	}
	for _, a := range all {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, out.String())
		}
	}
}

// TestUnknownAnalyzer checks that -only with a bogus name is a driver
// failure (exit 2, distinct from findings) and that the error names the
// valid analyzer set.
func TestUnknownAnalyzer(t *testing.T) {
	var out, errBuf strings.Builder
	code := cliMain([]string{"-only", "nosuch,arenapair"}, &out, &errBuf)
	if code != 2 {
		t.Fatalf("-only nosuch exit code = %d, want 2", code)
	}
	msg := errBuf.String()
	if !strings.Contains(msg, `"nosuch"`) {
		t.Errorf("error does not name the unknown analyzer: %s", msg)
	}
	for _, a := range all {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("error does not list valid analyzer %q: %s", a.Name, msg)
		}
	}
}

// TestBadFlag checks that flag parse errors are driver failures too.
func TestBadFlag(t *testing.T) {
	var out, errBuf strings.Builder
	if code := cliMain([]string{"-definitely-not-a-flag"}, &out, &errBuf); code != 2 {
		t.Fatalf("bad flag exit code = %d, want 2", code)
	}
}

// TestExitCodes builds a throwaway module with a determinism violation
// and checks the full ladder: 1 for findings, 0 once the finding is
// baselined, 2 for a load failure — the distinction CI relies on.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratchlint\n\ngo 1.21\n")
	// The determinism analyzer scopes to path fragment /internal/sim.
	writeFile(t, filepath.Join(dir, "internal", "sim", "sim.go"),
		"package sim\n\nimport \"time\"\n\nfunc Now() int64 { return time.Now().UnixNano() }\n")

	restore := chdir(t, dir)
	defer restore()

	var out, errBuf strings.Builder
	if code := cliMain([]string{"./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("violating tree exit code = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "determinism") {
		t.Errorf("expected a determinism finding, got: %s", out.String())
	}

	// Baseline the finding: same invocation must now be clean.
	out.Reset()
	errBuf.Reset()
	if code := cliMain([]string{"-write-baseline", "./..."}, &out, &errBuf); code != 0 {
		t.Fatalf("-write-baseline exit code = %d, want 0 (stderr: %s)", code, errBuf.String())
	}
	out.Reset()
	errBuf.Reset()
	if code := cliMain([]string{"./..."}, &out, &errBuf); code != 0 {
		t.Fatalf("baselined tree exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "suppressed") {
		t.Errorf("expected a suppression notice on stderr, got: %s", errBuf.String())
	}

	// A SARIF log carries the finding even when the baseline hides it.
	out.Reset()
	errBuf.Reset()
	sarifPath := filepath.Join(dir, "lint.sarif")
	if code := cliMain([]string{"-sarif", sarifPath, "./..."}, &out, &errBuf); code != 0 {
		t.Fatalf("-sarif exit code = %d, want 0 (stderr: %s)", code, errBuf.String())
	}
	sarif, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"2.1.0"`, `"ltephy-lint"`, "determinism", "internal/sim/sim.go"} {
		if !strings.Contains(string(sarif), want) {
			t.Errorf("SARIF log missing %q:\n%s", want, sarif)
		}
	}

	// Unbuildable code is a driver failure, not a finding.
	writeFile(t, filepath.Join(dir, "internal", "sim", "broken.go"), "package sim\n\nfunc () {\n")
	out.Reset()
	errBuf.Reset()
	if code := cliMain([]string{"./..."}, &out, &errBuf); code != 2 {
		t.Fatalf("broken tree exit code = %d, want 2\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func chdir(t *testing.T, dir string) func() {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	return func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
