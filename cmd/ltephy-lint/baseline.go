package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"ltephy/internal/analysis"
)

// The baseline file is the suppression mechanism for triaged findings:
// entries name an (analyzer, repo-relative path, message) triple that is
// known, audited and accepted. Matching deliberately ignores line
// numbers so unrelated edits above a triaged site do not resurrect it;
// editing the flagged code enough to change the message re-opens the
// finding. An empty findings list is the healthy steady state — the
// committed file keeps the mechanism exercised and gives triage a place
// to land without a format change.

const defaultBaseline = ".ltephy-lint.baseline.json"

type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	Path     string `json:"path"`
	Message  string `json:"message"`
}

type baselineFile struct {
	Comment  string          `json:"comment,omitempty"`
	Findings []baselineEntry `json:"findings"`
}

// loadBaseline reads the baseline as a multiset of entries. A missing
// file is an empty baseline, not an error.
func loadBaseline(path string) (map[baselineEntry]int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[baselineEntry]int{}, nil
	}
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	set := map[baselineEntry]int{}
	for _, e := range bf.Findings {
		set[e]++
	}
	return set, nil
}

// entryFor renders a diagnostic as its baseline identity.
func entryFor(prog *analysis.Program, root string, d analysis.Diagnostic) baselineEntry {
	pos := prog.Fset.Position(d.Pos)
	return baselineEntry{
		Analyzer: d.Analyzer,
		Path:     analysis.RelPath(root, pos.Filename),
		Message:  d.Message,
	}
}

// applyBaseline splits diagnostics into kept (new) and suppressed
// (baselined) findings, consuming baseline entries as a multiset.
func applyBaseline(prog *analysis.Program, root string, diags []analysis.Diagnostic, base map[baselineEntry]int) (kept []analysis.Diagnostic, suppressed int) {
	for _, d := range diags {
		e := entryFor(prog, root, d)
		if base[e] > 0 {
			base[e]--
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}

// writeBaseline records the current findings as the new accepted set.
func writeBaseline(path string, prog *analysis.Program, root string, diags []analysis.Diagnostic) error {
	bf := baselineFile{
		Comment:  "ltephy-lint suppression baseline: triaged findings accepted as-is; regenerate with ltephy-lint -write-baseline. See EXPERIMENTS.md for the triage log.",
		Findings: []baselineEntry{},
	}
	for _, d := range diags {
		bf.Findings = append(bf.Findings, entryFor(prog, root, d))
	}
	sort.Slice(bf.Findings, func(i, j int) bool {
		a, b := bf.Findings[i], bf.Findings[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
