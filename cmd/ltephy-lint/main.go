// Command ltephy-lint is the repository's invariant multichecker: a
// suite of custom static analyzers (internal/analysis) that mechanically
// enforce the rules the arena/zero-alloc/determinism architecture relies
// on. `make lint` (and therefore `make check` and CI) runs it over ./...;
// it exits nonzero when any invariant is violated.
//
// Usage:
//
//	ltephy-lint [-only name[,name]] [packages]
//
// With no package patterns it checks ./... relative to the current
// directory. Analyzer scoping follows the invariants' home turf:
// arenapair, arenaescape and hotpathalloc run everywhere; determinism
// runs over the bit-exact receiver/simulator surface (internal/phy,
// internal/uplink, internal/sim) and internal/sched, whose turbo window
// fan-out is part of the serial-vs-parallel bit-exactness contract;
// atomiccheck runs over internal/sched,
// internal/obs and internal/fronthaul (the telemetry counters and the
// serving layer's per-cell accounting share the scheduler's lock-free
// discipline).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ltephy/internal/analysis"
)

// scopes maps analyzer name to the package-path fragments it applies to;
// an empty list means every package.
var scopes = map[string][]string{
	analysis.ArenaPair.Name:    nil,
	analysis.ArenaEscape.Name:  nil,
	analysis.HotPathAlloc.Name: nil,
	analysis.Determinism.Name:  {"/internal/phy", "/internal/uplink", "/internal/sim", "/internal/sched"},
	analysis.AtomicCheck.Name:  {"/internal/sched", "/internal/obs", "/internal/fronthaul"},
}

var all = []*analysis.Analyzer{
	analysis.ArenaPair,
	analysis.ArenaEscape,
	analysis.HotPathAlloc,
	analysis.Determinism,
	analysis.AtomicCheck,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ltephy-lint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		analyzers = nil
		for _, a := range all {
			if want[a.Name] {
				analyzers = append(analyzers, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "ltephy-lint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := Run(os.Stdout, ".", analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ltephy-lint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "ltephy-lint: %d invariant violation(s)\n", n)
		os.Exit(1)
	}
}

// Run loads the packages and runs the analyzers with their scoping,
// printing diagnostics to w. It returns the number of diagnostics.
func Run(w *os.File, dir string, analyzers []*analysis.Analyzer, patterns ...string) (int, error) {
	prog, err := analysis.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	diags, err := analysis.RunAnalyzers(prog, analyzers, func(a *analysis.Analyzer, pkg *analysis.Package) bool {
		frags, ok := scopes[a.Name]
		if !ok || len(frags) == 0 {
			return true
		}
		for _, f := range frags {
			if strings.Contains(pkg.Path, f) {
				return true
			}
		}
		return false
	})
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return len(diags), nil
}
