// Command ltephy-lint is the repository's invariant multichecker: a
// suite of custom static analyzers (internal/analysis) that mechanically
// enforce the rules the arena/zero-alloc/determinism architecture relies
// on. `make lint` (and therefore `make check` and CI) runs it over ./...;
// it exits nonzero when any invariant is violated.
//
// Usage:
//
//	ltephy-lint [-only name[,name]] [-sarif file] [-baseline file]
//	            [-write-baseline] [packages]
//
// With no package patterns it checks ./... relative to the current
// directory. Analyzer scoping follows the invariants' home turf:
// arenapair, arenaescape, hotpathalloc, blockingcall and crossarena run
// everywhere; determinism runs over the bit-exact receiver/simulator
// surface (internal/phy, internal/uplink, internal/sim) and
// internal/sched, whose turbo window fan-out is part of the
// serial-vs-parallel bit-exactness contract; atomiccheck runs over
// internal/sched, internal/obs (including the internal/obs/kpi block
// accumulators), internal/fronthaul (the telemetry counters, the KPI
// record path and the serving layer's per-cell accounting share the
// scheduler's lock-free discipline) and internal/fleet (the
// coordinator's worker-slot swaps); spawncheck and lockorder run over
// internal/sched, internal/fronthaul and internal/fleet, the layers
// that own goroutines and cross-goroutine mutexes.
//
// Exit codes: 0 clean (or every finding baselined), 1 findings, 2 driver
// failure (bad flags, load or type-check error).
//
// -sarif writes the findings (before baseline filtering) as a SARIF
// 2.1.0 log for GitHub code scanning. -baseline names the committed
// suppression file (default .ltephy-lint.baseline.json in the lint
// directory, ignored when absent); -write-baseline regenerates it from
// the current findings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ltephy/internal/analysis"
)

// scopes maps analyzer name to the package-path fragments it applies to;
// an empty list means every package.
var scopes = map[string][]string{
	analysis.ArenaPair.Name:    nil,
	analysis.ArenaEscape.Name:  nil,
	analysis.HotPathAlloc.Name: nil,
	analysis.BlockingCall.Name: nil,
	analysis.CrossArena.Name:   nil,
	analysis.Determinism.Name:  {"/internal/phy", "/internal/uplink", "/internal/sim", "/internal/sched"},
	analysis.AtomicCheck.Name:  {"/internal/sched", "/internal/obs", "/internal/fronthaul", "/internal/fleet"},
	analysis.SpawnCheck.Name:   {"/internal/sched", "/internal/fronthaul", "/internal/fleet"},
	analysis.LockOrder.Name:    {"/internal/sched", "/internal/fronthaul", "/internal/fleet"},
}

var all = []*analysis.Analyzer{
	analysis.ArenaPair,
	analysis.ArenaEscape,
	analysis.HotPathAlloc,
	analysis.BlockingCall,
	analysis.SpawnCheck,
	analysis.LockOrder,
	analysis.CrossArena,
	analysis.Determinism,
	analysis.AtomicCheck,
}

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// cliMain is the testable entry point: it parses args, runs the suite
// and returns the process exit code (0 clean, 1 findings, 2 driver
// failure).
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ltephy-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	sarifOut := fs.String("sarif", "", "write findings as a SARIF 2.1.0 log to this file")
	baselinePath := fs.String("baseline", "", "suppression baseline file (default "+defaultBaseline+" in the lint directory)")
	writeBase := fs.Bool("write-baseline", false, "regenerate the baseline from the current findings and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ltephy-lint [flags] [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *only != "" {
		var unknown []string
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		analyzers = nil
		for _, a := range all {
			if want[a.Name] {
				analyzers = append(analyzers, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			unknown = append(unknown, fmt.Sprintf("%q", n))
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(stderr, "ltephy-lint: unknown analyzer(s) %s; valid names: %s\n",
				strings.Join(unknown, ", "), strings.Join(analyzerNames(), ", "))
			return 2
		}
	}

	dir := "."
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, diags, err := runLint(dir, analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "ltephy-lint: %v\n", err)
		return 2
	}
	root, err := filepath.Abs(dir)
	if err != nil {
		fmt.Fprintf(stderr, "ltephy-lint: %v\n", err)
		return 2
	}

	if *sarifOut != "" {
		data, err := analysis.SARIFReport(prog.Fset, analyzers, diags, root)
		if err == nil {
			err = os.WriteFile(*sarifOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "ltephy-lint: writing SARIF: %v\n", err)
			return 2
		}
	}

	basePath := *baselinePath
	if basePath == "" {
		basePath = filepath.Join(dir, defaultBaseline)
	}
	if *writeBase {
		if err := writeBaseline(basePath, prog, root, diags); err != nil {
			fmt.Fprintf(stderr, "ltephy-lint: writing baseline: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "ltephy-lint: wrote %d finding(s) to %s\n", len(diags), basePath)
		return 0
	}
	base, err := loadBaseline(basePath)
	if err != nil {
		fmt.Fprintf(stderr, "ltephy-lint: %v\n", err)
		return 2
	}
	kept, suppressed := applyBaseline(prog, root, diags, base)

	for _, d := range kept {
		fmt.Fprintf(stdout, "%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if suppressed > 0 {
		fmt.Fprintf(stderr, "ltephy-lint: %d finding(s) suppressed by %s\n", suppressed, basePath)
	}
	if len(kept) > 0 {
		fmt.Fprintf(stderr, "ltephy-lint: %d invariant violation(s)\n", len(kept))
		return 1
	}
	return 0
}

func analyzerNames() []string {
	names := make([]string, 0, len(all))
	for _, a := range all {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// runLint loads the packages and runs the analyzers with their scoping.
func runLint(dir string, analyzers []*analysis.Analyzer, patterns ...string) (*analysis.Program, []analysis.Diagnostic, error) {
	prog, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	diags, err := analysis.RunAnalyzers(prog, analyzers, func(a *analysis.Analyzer, pkg *analysis.Package) bool {
		frags, ok := scopes[a.Name]
		if !ok || len(frags) == 0 {
			return true
		}
		for _, f := range frags {
			if strings.Contains(pkg.Path, f) {
				return true
			}
		}
		return false
	})
	if err != nil {
		return nil, nil, err
	}
	return prog, diags, nil
}

// Run loads the packages, runs the analyzers and prints diagnostics to
// w, returning the diagnostic count. It applies no baseline: it is the
// strict form TestTreeIsClean uses.
func Run(w io.Writer, dir string, analyzers []*analysis.Analyzer, patterns ...string) (int, error) {
	prog, diags, err := runLint(dir, analyzers, patterns...)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return len(diags), nil
}
