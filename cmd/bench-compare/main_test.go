package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: ltephy/internal/uplink
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSubframeE2E-8     	    1581	   1524479 ns/op	   32611 B/op	       4 allocs/op
BenchmarkChanEstStageF32-8 	   53205	     49835 ns/op	       0 B/op	       0 allocs/op
BenchmarkChanEstStageF32-8 	   55000	     48000 ns/op	       0 B/op	       0 allocs/op
BenchmarkUnknown-8         	     100	      1000 ns/op
PASS
`

func TestParseBench(t *testing.T) {
	got, order, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(order), order)
	}
	e2e := got["BenchmarkSubframeE2E"]
	if e2e.NsPerOp != 1524479 || e2e.AllocsPerOp != 4 || !e2e.hasAllocs {
		t.Errorf("SubframeE2E parsed as %+v", e2e)
	}
	// Duplicate runs keep the minimum ns/op.
	if got["BenchmarkChanEstStageF32"].NsPerOp != 48000 {
		t.Errorf("ChanEstStageF32 min = %g, want 48000", got["BenchmarkChanEstStageF32"].NsPerOp)
	}
	if got["BenchmarkUnknown"].hasAllocs {
		t.Error("benchmark without -benchmem output claims alloc data")
	}
}

func TestLoadBaselinesMinAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	os.WriteFile(a, []byte(`{"benchmarks": {"BenchmarkX": {"ns_per_op": 200, "allocs_per_op": 4}}}`), 0o644)
	os.WriteFile(b, []byte(`{"benchmarks": {"BenchmarkX": {"ns_per_op": 100}, "BenchmarkY": {"ns_per_op": 7}}}`), 0o644)
	base, err := loadBaselines([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if base["BenchmarkX"].NsPerOp != 100 {
		t.Errorf("BenchmarkX min = %g, want 100", base["BenchmarkX"].NsPerOp)
	}
	if base["BenchmarkX"].hasAllocs {
		t.Error("min entry without alloc data claims alloc data")
	}
	if base["BenchmarkY"].NsPerOp != 7 {
		t.Errorf("BenchmarkY = %g, want 7", base["BenchmarkY"].NsPerOp)
	}
}
