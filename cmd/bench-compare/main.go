// bench-compare gates benchmark regressions: it parses `go test -bench`
// output (stdin or file arguments), matches each benchmark against the
// figures committed in baseline JSON files (the BENCH_*.json shape), and
// exits non-zero when any ns/op regresses beyond the tolerance (default
// 10%) or allocs/op grows at all.
//
//	go test -bench . -benchmem ./internal/uplink/ | \
//	    go run ./cmd/bench-compare -baseline BENCH_e2e_baseline.json,BENCH_lane_baseline.json
//
// Benchmark names are compared with the -GOMAXPROCS suffix stripped, so
// `BenchmarkSubframeE2E-8` matches the baseline key `BenchmarkSubframeE2E`.
// When a name appears in several baseline files (or several times in the
// measured output, e.g. with -count), the minimum ns/op wins — baselines
// are best-case records, and comparing minima rejects scheduler noise.
// Benchmarks missing from every baseline are reported and skipped;
// baseline entries that were not measured are ignored (the caller picks
// which benchmarks to run).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// entry is one benchmark record, in the BENCH_*.json shape.
type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	hasAllocs   bool
}

// baselineDoc mirrors the committed BENCH_*.json layout.
type baselineDoc struct {
	Comment    string                     `json:"comment"`
	Benchmarks map[string]json.RawMessage `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName-8   1581   1524479 ns/op   32611 B/op   4 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var (
		baselines = flag.String("baseline", "", "comma-separated baseline JSON files (required)")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression")
	)
	flag.Parse()
	if *baselines == "" {
		fmt.Fprintln(os.Stderr, "bench-compare: -baseline is required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := loadBaselines(strings.Split(*baselines, ","))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if args := flag.Args(); len(args) > 0 {
		readers := make([]io.Reader, 0, len(args))
		for _, a := range args {
			f, err := os.Open(a)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}
	measured, order, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
		os.Exit(2)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "bench-compare: no benchmark lines in input")
		os.Exit(2)
	}

	failed := false
	for _, name := range order {
		m := measured[name]
		b, ok := base[name]
		if !ok {
			fmt.Printf("SKIP %-32s %12.0f ns/op (no baseline)\n", name, m.NsPerOp)
			continue
		}
		delta := (m.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := "ok  "
		if delta > *tolerance {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-32s %12.0f ns/op vs %12.0f baseline (%+.1f%%)\n",
			status, name, m.NsPerOp, b.NsPerOp, delta*100)
		if b.hasAllocs && m.hasAllocs && m.AllocsPerOp > b.AllocsPerOp {
			fmt.Printf("FAIL %-32s %d allocs/op vs %d baseline\n", name, m.AllocsPerOp, b.AllocsPerOp)
			failed = true
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "bench-compare: regression beyond %.0f%% tolerance\n", *tolerance*100)
		os.Exit(1)
	}
}

// loadBaselines merges the benchmark tables of all files, keeping the
// minimum ns/op (and its alloc figures) per name.
func loadBaselines(files []string) (map[string]entry, error) {
	out := map[string]entry{}
	for _, f := range files {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		buf, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var doc baselineDoc
		if err := json.Unmarshal(buf, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		for name, raw := range doc.Benchmarks {
			var e entry
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", f, name, err)
			}
			e.hasAllocs = strings.Contains(string(raw), "allocs_per_op")
			if old, ok := out[name]; !ok || e.NsPerOp < old.NsPerOp {
				out[name] = e
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark entries in %s", strings.Join(files, ","))
	}
	return out, nil
}

// parseBench extracts benchmark results from `go test -bench` output,
// keeping the minimum ns/op per (suffix-stripped) name and first-seen
// order.
func parseBench(r io.Reader) (map[string]entry, []string, error) {
	out := map[string]entry{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		e := entry{NsPerOp: ns}
		if m[5] != "" {
			e.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			e.hasAllocs = true
		}
		if old, ok := out[name]; ok {
			if e.NsPerOp < old.NsPerOp {
				// Keep the faster run but never lose an alloc count.
				if !e.hasAllocs {
					e.AllocsPerOp, e.hasAllocs = old.AllocsPerOp, old.hasAllocs
				}
				out[name] = e
			}
			continue
		}
		out[name] = e
		order = append(order, name)
	}
	return out, order, sc.Err()
}
