package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ltephy/internal/fronthaul"
)

// TestServeLoopback brings the daemon up on a Unix socket, drives it with
// the loopback generator, stops it and checks the serving summary.
func TestServeLoopback(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "enb.sock")
	var buf bytes.Buffer
	var mu sync.Mutex
	output := func() string { mu.Lock(); defer mu.Unlock(); return buf.String() }
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", sock, "-network", "unix",
			"-cells", "2", "-workers", "2", "-deadline", "1m",
		}, w, stop)
	}()

	// Wait for the socket to come up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if conn, err := net.Dial("unix", sock); err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			t.Fatalf("server did not come up; output so far:\n%s", output())
		}
		time.Sleep(10 * time.Millisecond)
	}

	stats, err := fronthaul.RunLoopback(fronthaul.GenConfig{
		Network: "unix", Addr: sock, Cells: 2, Subframes: 10, Seed: 3, MaxPRB: 2,
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	if stats.Done != 20 || stats.BadAcks != 0 {
		t.Fatalf("loopback stats: %s", stats)
	}

	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	out := output()
	for _, want := range []string{
		"serving 2 cells", "cell 0: accepted=10", "cell 1: accepted=10", "corrupt_frames=0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(sock); err == nil {
		// The socket file may linger; a fresh run must still bind.
		stop2 := make(chan struct{})
		done2 := make(chan error, 1)
		go func() {
			done2 <- run([]string{"-listen", sock, "-network", "unix", "-cells", "1"}, w, stop2)
		}()
		waitUp := time.Now().Add(10 * time.Second)
		for {
			if conn, err := net.Dial("unix", sock); err == nil {
				conn.Close()
				break
			}
			if time.Now().After(waitUp) {
				close(stop2)
				t.Fatalf("rebind on stale socket failed:\n%s", output())
			}
			time.Sleep(10 * time.Millisecond)
		}
		close(stop2)
		if err := <-done2; err != nil {
			t.Fatalf("rebind run: %v", err)
		}
	}
}

// TestControlDrainClient exercises the fleet-facing surface of the
// daemon: ephemeral ports published through -ports-file, the control
// listener, and the -drain client mode draining one cell while the
// others keep serving.
func TestControlDrainClient(t *testing.T) {
	ports := filepath.Join(t.TempDir(), "enb.ports")
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-control", "127.0.0.1:0",
			"-cells", "2", "-deadline", "1m", "-ports-file", ports,
		}, w, stop)
	}()

	var pf struct{ Data, Control, Metrics string }
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(ports); err == nil &&
			json.Unmarshal(b, &pf) == nil && pf.Data != "" && pf.Control != "" {
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			t.Fatalf("-ports-file never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Client mode: drain cell 1 on the running daemon.
	var cbuf bytes.Buffer
	if err := run([]string{"-drain", "1", "-connect", pf.Control}, &cbuf, stop); err != nil {
		t.Fatalf("drain client: %v", err)
	}
	if !strings.Contains(cbuf.String(), "cell 1 drained") {
		t.Fatalf("drain client output: %q", cbuf.String())
	}

	// The drained cell redirects; the live cell still serves.
	conn, err := net.Dial("tcp", pf.Data)
	if err != nil {
		t.Fatalf("dial data: %v", err)
	}
	defer conn.Close()
	sendFrame := func(cell uint16) fronthaul.Ack {
		frame, err := fronthaul.AppendFrame(nil, cell, 0, nil)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("write: %v", err)
		}
		var ack [fronthaul.AckLen]byte
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := io.ReadFull(conn, ack[:]); err != nil {
			t.Fatalf("read ack: %v", err)
		}
		a, err := fronthaul.ParseAck(&ack)
		if err != nil {
			t.Fatalf("ParseAck: %v", err)
		}
		return a
	}
	if a := sendFrame(1); a.Status != fronthaul.AckRedirect {
		t.Fatalf("drained cell ack: %+v, want redirect", a)
	}
	if a := sendFrame(0); a.Status != fronthaul.AckDone {
		t.Fatalf("live cell ack: %+v, want done", a)
	}

	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{"control on", "redirected=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	stop := make(chan struct{})
	close(stop)
	if err := run([]string{"-turbo", "quantum"}, &buf, stop); err == nil {
		t.Error("unknown turbo mode accepted")
	}
	if err := run([]string{"-listen", "/nonexistent-dir/enb.sock", "-network", "unix"}, &buf, stop); err == nil {
		t.Error("unbindable socket accepted")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
