// lte-enb is the fronthaul serving daemon: a multi-cell eNodeB baseband
// built on the benchmark receiver. It listens on TCP or a Unix socket for
// length-prefixed subframe frames (see internal/fronthaul), shards the
// cells across scheduler pools and runs estimator-driven admission
// control, shedding late subframes whole and rejecting lowest-priority
// users first under overload.
//
// Usage:
//
//	lte-enb -listen :5061 -cells 4 -pools 2
//	lte-enb -listen /tmp/enb.sock -network unix -capacity 0.8
//	lte-enb -listen :5061 -metrics-addr :9100   # Prometheus + Chrome traces
//
// Drive it with the loopback generator:
//
//	lte-bench -loopback :5061 -cells 4 -subframes 2000 -speedup 2
//
// With -control the daemon also serves the fleet control protocol
// (drain, checkpoint, restore, release, stats — see DESIGN.md §13), and
// the same binary doubles as the operator client:
//
//	lte-enb -listen :5061 -control :5062 -cells 4
//	lte-enb -drain 2 -connect :5062 -drain-timeout 2s   # drain one cell
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ltephy/internal/fronthaul"
	"ltephy/internal/uplink"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() { <-sig; close(stop) }()
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "lte-enb:", err)
		os.Exit(1)
	}
}

// run parses flags, serves until stop closes (or the listener fails), then
// shuts down and prints the per-cell serving summary. Extracted from main
// so the command is testable.
func run(args []string, w io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("lte-enb", flag.ContinueOnError)
	fs.SetOutput(w)
	listen := fs.String("listen", ":5061", "listen address (host:port, or a socket path with -network unix)")
	network := fs.String("network", "tcp", "listener transport: tcp or unix")
	cells := fs.Int("cells", 1, "cells served (frames address cells 0..cells-1)")
	pools := fs.Int("pools", 1, "scheduler pools the cells are sharded across")
	workers := fs.Int("workers", 0, "workers per pool (0 = GOMAXPROCS/pools)")
	delta := fs.Duration("delta", 5*time.Millisecond, "subframe period: admission budget refill interval (the paper's DELTA)")
	deadline := fs.Duration("deadline", 0, "dispatch-to-completion deadline budget (0 = delta)")
	capacity := fs.Float64("capacity", 1.0, "admission activity budget per period (1.0 = the whole pool)")
	burst := fs.Float64("burst", 0, "admission budget cap across idle periods (0 = 2x capacity)")
	slots := fs.Int("conn-slots", 4, "decode slots per connection (bounds frames in flight)")
	maxUsers := fs.Int("maxusers", fronthaul.MaxUsersPerFrame, "user records allowed per frame")
	shedBackpressure := fs.Bool("shed-backpressure", false, "shed frames when no decode slot is free instead of blocking the read loop")
	turbo := fs.String("turbo", "passthrough", "turbo mode: passthrough (paper) or full")
	turboIter := fs.Int("turbo-iter", 0, "max full turbo iterations per code block (0 = receiver default)")
	lockFree := fs.Bool("lockfree", false, "use the Chase-Lev lock-free deque")
	obsSampling := fs.Int("obs", 0, "telemetry sampling knob for the pools (0 = off)")
	kpiSampling := fs.Int("kpi", 1, "KPI accounting knob: 1 = count every block outcome, 0 = off")
	kpiWindows := fs.String("kpi-windows", "", "comma-separated KPI window lengths in subframes (default 200,1000,10000)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /fetch, /trace, /trace/admission and /debug/vars on this address")
	seed := fs.Uint64("seed", 1, "steal-RNG seed for the pools")
	control := fs.String("control", "", "serve the fleet control protocol (drain/checkpoint/restore/stats) on this address")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Second, "drain barrier timeout: how long a drain waits for in-flight subframes")
	harq := fs.Bool("harq", false, "keep per-user HARQ soft buffers and combine retransmissions (needs -turbo full and -rate)")
	rate := fs.Float64("rate", 0, "turbo code rate for rate matching (0 = none; required by -harq)")
	portsFile := fs.String("ports-file", "", "write the bound listener addresses as JSON once serving (fleet launcher handshake)")
	drainCell := fs.Int("drain", -1, "client mode: drain this cell on a running daemon (-connect) and exit")
	connect := fs.String("connect", "", "control address of a running daemon (client mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *drainCell >= 0 {
		if *connect == "" {
			return errors.New("-drain needs -connect (the daemon's -control address)")
		}
		ctl, err := fronthaul.DialControl(*network, *connect)
		if err != nil {
			return err
		}
		defer ctl.Close()
		if err := ctl.Drain(uint16(*drainCell), *drainTimeout); err != nil {
			return err
		}
		fmt.Fprintf(w, "lte-enb: cell %d drained\n", *drainCell)
		return nil
	}

	rc := uplink.DefaultConfig()
	switch *turbo {
	case "passthrough":
	case "full":
		rc.Turbo = uplink.TurboFull
	default:
		return fmt.Errorf("unknown turbo mode %q", *turbo)
	}
	if *turboIter > 0 {
		rc.TurboIterations = *turboIter
	}
	rc.CodeRate = *rate
	windows, err := parseWindows(*kpiWindows)
	if err != nil {
		return err
	}

	srv, err := fronthaul.NewServer(fronthaul.Config{
		Cells:              *cells,
		Pools:              *pools,
		Workers:            *workers,
		Receiver:           rc,
		Delta:              *delta,
		DeadlineBudget:     *deadline,
		Capacity:           *capacity,
		Burst:              *burst,
		SlotsPerConn:       *slots,
		MaxUsers:           *maxUsers,
		ShedOnBackpressure: *shedBackpressure,
		HARQ:               *harq,
		DrainTimeout:       *drainTimeout,
		Sampling:           *obsSampling,
		KPISampling:        *kpiSampling,
		KPIWindows:         windows,
		Seed:               *seed,
		LockFreeDeque:      *lockFree,
	})
	if err != nil {
		return err
	}

	if *network == "unix" {
		// A stale socket file from a previous run blocks the bind.
		if _, err := os.Stat(*listen); err == nil {
			os.Remove(*listen)
		}
	}
	ln, err := net.Listen(*network, *listen)
	if err != nil {
		srv.Close()
		return err
	}

	var mln net.Listener
	if *metricsAddr != "" {
		mln, err = net.Listen("tcp", *metricsAddr)
		if err != nil {
			ln.Close()
			srv.Close()
			return err
		}
		defer mln.Close()
		go func() { _ = http.Serve(mln, srv.Handler()) }()
		fmt.Fprintf(w, "lte-enb: telemetry on http://%s\n", mln.Addr())
	}

	var cln net.Listener
	if *control != "" {
		cln, err = net.Listen("tcp", *control)
		if err != nil {
			ln.Close()
			srv.Close()
			return err
		}
		go func() { _ = srv.ServeControl(cln) }()
		fmt.Fprintf(w, "lte-enb: control on %s\n", cln.Addr())
	}

	if *portsFile != "" {
		// The fleet launcher polls this file to learn the ephemeral
		// addresses; write-then-rename so it never reads a partial JSON.
		pf := struct {
			Data    string `json:"data"`
			Control string `json:"control,omitempty"`
			Metrics string `json:"metrics,omitempty"`
		}{Data: ln.Addr().String()}
		if cln != nil {
			pf.Control = cln.Addr().String()
		}
		if mln != nil {
			pf.Metrics = mln.Addr().String()
		}
		data, err := json.Marshal(pf)
		if err == nil {
			tmp := *portsFile + ".tmp"
			if err = os.WriteFile(tmp, data, 0o644); err == nil {
				err = os.Rename(tmp, *portsFile)
			}
		}
		if err != nil {
			ln.Close()
			srv.Close()
			return fmt.Errorf("write -ports-file: %w", err)
		}
	}

	ecfg := srv.Config()
	fmt.Fprintf(w, "lte-enb: serving %d cells on %d pools x %d workers, %s %s (delta %v, capacity %.2f)\n",
		ecfg.Cells, ecfg.Pools, ecfg.Workers, *network, ln.Addr(), ecfg.Delta, ecfg.Capacity)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case <-stop:
		fmt.Fprintln(w, "lte-enb: shutting down")
	case err := <-serveErr:
		if err != nil && !errors.Is(err, net.ErrClosed) {
			srv.Close()
			return err
		}
	}
	srv.Close()

	for _, st := range srv.Stats() {
		fmt.Fprintf(w, "cell %d: accepted=%d shed_late=%d shed_overload=%d shed_backpressure=%d "+
			"users_accepted=%d users_rejected=%d deadline_met=%d deadline_missed=%d "+
			"offered_est=%.3f admitted_est=%.3f duplicate=%d redirected=%d harq_recovered=%d\n",
			st.Cell, st.FramesAccepted, st.FramesShedLate, st.FramesShedOverload,
			st.FramesShedBackpressure, st.UsersAccepted, st.UsersRejected,
			st.DeadlineMet, st.DeadlineMissed, st.OfferedEst, st.AdmittedEst,
			st.FramesDuplicate, st.FramesRedirected, st.HARQRecovered)
	}
	fmt.Fprintf(w, "corrupt_frames=%d\n", srv.CorruptFrames())
	if reg := srv.KPI(); reg.Enabled() {
		for _, c := range reg.Snapshot() {
			f := c.Cumulative
			fmt.Fprintf(w, "kpi cell %d: reliability=%d bler=%.3f%% throughput=%.1fkbps "+
				"crc_pass=%d crc_fail=%d dtx=%d skipped=%d users=%d\n",
				c.Cell, f.Reliability, f.Bler, f.Throughput,
				f.CrcPass, f.CrcFail, f.Dtx, f.Skipped, len(c.Users))
		}
	}
	return nil
}

// parseWindows parses the -kpi-windows comma-separated subframe lengths
// ("" = package defaults).
func parseWindows(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -kpi-windows entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
