// lte-sim runs the paper's power-management experiments on the
// TILEPro64-substitute simulator and regenerates Figs. 12-16 and Tables
// I-II, plus this repository's extension studies.
//
// Usage:
//
//	lte-sim -all                   # every figure and table (quick preset)
//	lte-sim -full -table 2         # Table II at the paper's full scale
//	lte-sim -fig 12 -format csv    # one figure as CSV
//	lte-sim -ext                   # extension tables (DVFS, latency, ...)
//	lte-sim -outdir results/       # write every dataset as CSV files
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ltephy/internal/experiments"
	"ltephy/internal/obs"
	"ltephy/internal/obs/kpi"
	"ltephy/internal/params"
	"ltephy/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lte-sim:", err)
		os.Exit(1)
	}
}

// run parses flags, executes the selected experiments and writes them to
// w; extracted from main so the command is testable.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lte-sim", flag.ContinueOnError)
	fs.SetOutput(w)
	fig := fs.Int("fig", 0, "figure to regenerate (12-16); 0 = none")
	table := fs.Int("table", 0, "table to regenerate (1 or 2); 0 = none")
	all := fs.Bool("all", false, "regenerate every figure and table")
	ext := fs.Bool("ext", false, "include the extension tables (DVFS, latency, throughput, diurnal)")
	full := fs.Bool("full", false, "paper-exact scale (68,000 subframes, fine calibration; minutes)")
	pool := fs.Int("pool", 0, "override the PRB pool (100 = the 'typical 25% load' scenario; 0 = paper's 200)")
	seed := fs.Uint64("seed", 1, "parameter model seed")
	format := fs.String("format", "table", "stdout format: table or csv")
	rows := fs.Int("rows", 30, "max rows for table output (0 = all)")
	outdir := fs.String("outdir", "", "also write each dataset as CSV into this directory")
	traceFile := fs.String("trace", "", "simulate a short run and write its per-core Chrome trace_event timeline (paper Figs. 4-5) to this file, then exit")
	traceSubframes := fs.Int("trace-subframes", 40, "subframes to simulate for -trace")
	traceWorkers := fs.Int("trace-workers", sim.DefaultWorkers, "worker cores for -trace")
	kpiRun := fs.Bool("kpi", false, "simulate a short run with KPI accounting on and print the cell's EBLer-style FETCH summary, then exit")
	kpiSubframes := fs.Int("kpi-subframes", 400, "subframes to simulate for -kpi")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *traceFile != "" {
		return runTrace(w, *traceFile, *traceSubframes, *traceWorkers, *seed)
	}
	if *kpiRun {
		return runKPI(w, *kpiSubframes, *traceWorkers, *seed)
	}

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Seed = *seed
	cfg.PRBPool = *pool
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}

	type job struct {
		name string
		get  func() (*experiments.Dataset, error)
	}
	jobs := []job{
		{"fig12", func() (*experiments.Dataset, error) { d, _, err := suite.Fig12(); return d, err }},
		{"fig13", suite.Fig13},
		{"fig14", suite.Fig14},
		{"fig15", suite.Fig15},
		{"fig16", suite.Fig16},
		{"table1", suite.Table1},
		{"table2", suite.Table2},
	}

	selected := jobs[:0:0]
	for _, j := range jobs {
		switch {
		case *all:
			selected = append(selected, j)
			continue
		case *fig != 0 && j.name == fmt.Sprintf("fig%d", *fig):
			selected = append(selected, j)
		case *table != 0 && j.name == fmt.Sprintf("table%d", *table):
			selected = append(selected, j)
		}
	}
	if *ext || *all {
		selected = append(selected, job{"table-extensions", suite.TableExtensions})
		selected = append(selected, job{"table-latency", suite.TableLatency})
		selected = append(selected, job{"table-throughput", suite.TableThroughput})
		selected = append(selected, job{"table-diurnal", suite.TableDiurnal})
	}
	if len(selected) == 0 {
		return fmt.Errorf("nothing selected; use -all, -ext, -fig 12..16 or -table 1|2")
	}

	for _, j := range selected {
		start := time.Now()
		d, err := j.get()
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		switch *format {
		case "csv":
			err = d.WriteCSV(w)
		case "table":
			err = d.Render(w, *rows)
			fmt.Fprintf(w, "   (%s computed in %v)\n\n", j.name, time.Since(start).Round(time.Millisecond))
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			return err
		}
		if *outdir != "" {
			if err := writeCSVFile(filepath.Join(*outdir, d.Name+".csv"), d); err != nil {
				return err
			}
		}
	}
	return nil
}

// runTrace simulates n subframes with per-task tracing on and exports
// the virtual-time per-core timeline as a Chrome trace — the simulator's
// rendering of the paper's Fig. 4/5 occupancy plots.
func runTrace(w io.Writer, path string, n, workers int, seed uint64) error {
	cfg := sim.DefaultConfig()
	if workers > 0 {
		cfg.Workers = workers
	}
	ring := obs.NewEventRing(1 << 18)
	cfg.Trace = ring
	res, err := sim.Run(cfg, params.NewRandom(seed), n)
	if err != nil {
		return err
	}
	events := ring.Snapshot(nil)
	if dropped := ring.Total() - uint64(len(events)); dropped > 0 {
		fmt.Fprintf(w, "trace: ring wrapped, oldest %d spans dropped (lower -trace-subframes for a full window)\n", dropped)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTraceEvents(f, events, "core"); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "trace: %d subframes, %d jobs, %d task spans across %d cores -> %s (open in chrome://tracing or ui.perfetto.dev)\n",
		n, res.TotalJobs, len(events), cfg.Workers, path)
	return nil
}

// runKPI simulates n subframes with the KPI hook attached and prints the
// cell's FETCH summary: on-time jobs count as delivered blocks, deadline
// misses as Skipped. A smoke view of the measurement service over the
// virtual-time simulator.
func runKPI(w io.Writer, n, workers int, seed uint64) error {
	cfg := sim.DefaultConfig()
	if workers > 0 {
		cfg.Workers = workers
	}
	reg := kpi.New(kpi.Config{Cells: 1, Windows: []int64{200, 1000}})
	reg.SetSampling(1)
	cfg.KPI = reg
	res, err := sim.Run(cfg, params.NewRandom(seed), n)
	if err != nil {
		return err
	}
	c := reg.CellSnapshot(0)
	f := c.Cumulative
	fmt.Fprintf(w, "kpi: %d subframes, %d jobs: reliability=%d bler=%.3f%% throughput=%.1fkbps crc_pass=%d crc_fail=%d dtx=%d skipped=%d\n",
		n, res.TotalJobs, f.Reliability, f.Bler, f.Throughput, f.CrcPass, f.CrcFail, f.Dtx, f.Skipped)
	for _, wf := range c.Windows {
		if wf.Epoch < 0 {
			continue
		}
		fmt.Fprintf(w, "kpi: window=%d epoch=%d bler=%.3f%% throughput=%.1fkbps\n",
			wf.Window, wf.Epoch, wf.Bler, wf.Throughput)
	}
	return nil
}

func writeCSVFile(path string, d *experiments.Dataset) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}
