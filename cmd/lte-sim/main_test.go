package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-table", "2", "-rows", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table2", "NONAP", "PowerGating", "rel_idle"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunOutdir(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-table", "1", "-outdir", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "technique,power_w,reduction") {
		t.Errorf("table1.csv header wrong: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunSelectionErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("empty selection accepted")
	}
	if err := run([]string{"-fig", "3"}, &buf); err == nil {
		t.Error("unsupported figure accepted")
	}
	if err := run([]string{"-table", "1", "-format", "yaml"}, &buf); err == nil {
		t.Error("unknown format accepted")
	}
}
