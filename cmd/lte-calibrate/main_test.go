package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCoeffs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-step", "100", "-coeffs"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"k_LM", "QPSK", "16QAM", "64QAM", "4 layer(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("coeffs output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTableAndCSV(t *testing.T) {
	var table bytes.Buffer
	if err := run([]string{"-step", "100", "-rows", "4"}, &table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "fig11") || !strings.Contains(table.String(), "fitted coefficients") {
		t.Errorf("table output incomplete:\n%s", table.String())
	}
	var csv bytes.Buffer
	if err := run([]string{"-step", "100", "-format", "csv"}, &csv); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	if !strings.HasPrefix(header, "prb,") || !strings.Contains(header, "64QAM_4L") {
		t.Errorf("CSV header = %q", header)
	}
}

func TestRunBadFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-step", "100", "-format", "pdf"}, &buf); err == nil {
		t.Error("unknown format accepted")
	}
}
