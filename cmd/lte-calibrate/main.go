// lte-calibrate runs the paper's Section VI-A calibration: steady-state
// activity versus PRB count for every (layers, modulation) pair on the
// TILEPro64-substitute simulator (Fig. 11), and prints the fitted k_LM
// coefficients of Eq. 3.
//
// Usage:
//
//	lte-calibrate [-step 2] [-workers 62] [-format table|csv] [-coeffs]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ltephy/internal/estimator"
	"ltephy/internal/experiments"
	"ltephy/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lte-calibrate:", err)
		os.Exit(1)
	}
}

// run parses flags and writes the calibration output to w; extracted from
// main so the command is testable.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lte-calibrate", flag.ContinueOnError)
	fs.SetOutput(w)
	step := fs.Int("step", 2, "PRB sweep step (paper: 2)")
	workers := fs.Int("workers", sim.DefaultWorkers, "simulated worker cores")
	format := fs.String("format", "table", "output format: table or csv")
	coeffsOnly := fs.Bool("coeffs", false, "print only the fitted coefficients")
	rows := fs.Int("rows", 30, "max rows for table output (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	simCfg := sim.DefaultConfig()
	simCfg.Workers = *workers
	simCfg.WindowSec = 0.5
	cal, err := estimator.Calibrate(simCfg, estimator.Options{PRBStep: *step, Windows: 1})
	if err != nil {
		return err
	}

	if *coeffsOnly {
		fmt.Fprintln(w, "k_LM coefficients (activity per PRB, Eq. 3):")
		for _, k := range cal.Keys() {
			fmt.Fprintf(w, "  %-6s %d layer(s): %.6f  (max fit error %.4f)\n",
				k.Mod, k.Layers, cal.Coeffs[k], cal.MaxAbsError(k))
		}
		return nil
	}

	d := experiments.Fig11Dataset(cal)
	switch *format {
	case "csv":
		if err := d.WriteCSV(w); err != nil {
			return err
		}
	case "table":
		if err := d.Render(w, *rows); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "fitted coefficients:")
	for _, k := range cal.Keys() {
		fmt.Fprintf(w, "  %-6s %dL: k = %.6f\n", k.Mod, k.Layers, cal.Coeffs[k])
	}
	return nil
}
