package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"ltephy/internal/fleet"
	"ltephy/internal/fronthaul"
)

// readPorts decodes a worker's -ports-file handshake JSON.
func readPorts(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// buildEnb compiles the lte-enb binary into a temp dir so the fleet
// daemon has a real child to spawn.
func buildEnb(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lte-enb")
	cmd := exec.Command("go", "build", "-o", bin, "ltephy/cmd/lte-enb")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build lte-enb: %v\n%s", err, out)
	}
	return bin
}

// TestFleetDaemonExec spawns real lte-enb processes under the daemon,
// drives traffic through the process fleet with the loopback generator,
// and checks the daemon's status report and clean shutdown.
func TestFleetDaemonExec(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bin := buildEnb(t)

	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	output := func() string { mu.Lock(); defer mu.Unlock(); return buf.String() }

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-workers", "2", "-cells", "4", "-enb-bin", bin,
			"-dir", t.TempDir(), "-status-every", "0", "-checkpoint-every", "0",
			"--", "-deadline", "1m",
		}, w, stop)
	}()

	// The daemon reports the placement once every worker is up.
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(output(), "worker 1 serves cells") {
		if time.Now().After(deadline) {
			close(stop)
			t.Fatalf("fleet never came up; output:\n%s", output())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Scrape a worker's data address out of the placement and drive it.
	// The daemon does not print addresses, so go through the ports files.
	m := regexp.MustCompile(`dir (\S+)`).FindStringSubmatch(output())
	if m == nil {
		t.Fatalf("no scratch dir in output:\n%s", output())
	}
	var pf struct{ Data string }
	if err := readPorts(filepath.Join(m[1], "worker0.ports"), &pf); err != nil {
		t.Fatalf("read ports: %v", err)
	}
	stats, err := fronthaul.RunLoopback(fronthaul.GenConfig{
		Network: "tcp", Addr: pf.Data, Cells: 2, Subframes: 10, Seed: 3, MaxPRB: 2,
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	if stats.Done != 20 || stats.BadAcks != 0 {
		t.Fatalf("loopback through the process fleet: %s", stats)
	}

	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	out := output()
	for _, want := range []string{
		"serving 4 cells on 2 workers", "shutting down", "cell 0: accepted=10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestFleetDaemonInProcLifecycle covers the coordinator paths the exec
// test cannot reach cheaply: a migration via the public API while the
// daemon-style status printer runs against it.
func TestFleetDaemonInProcLifecycle(t *testing.T) {
	l := &fleet.InProcLauncher{Cfg: fleet.InProcConfig{
		Server: fronthaul.Config{
			Workers:        1,
			DeadlineBudget: time.Minute,
			Predictor:      fronthaul.FlatPredictor{PerPRB: 1e-3},
			KPISampling:    1,
		},
		Cells: 4,
	}}
	defer l.Close()
	co, err := fleet.New(fleet.Config{Workers: 2, Cells: 4, Launcher: l, Logf: t.Logf})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	defer co.Close()

	if err := co.Migrate(0, 1); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	var buf bytes.Buffer
	printStatus(&buf, co)
	out := buf.String()
	if !strings.Contains(out, "worker 1 serves cells [0 1 3]") {
		t.Fatalf("status after migration:\n%s", out)
	}
	if !strings.Contains(out, "cell 0: accepted=0") {
		t.Fatalf("status missing per-cell stats:\n%s", out)
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	stop := make(chan struct{})
	close(stop)
	if err := run([]string{"-workers", "0"}, &buf, stop); err == nil {
		t.Error("zero workers accepted")
	}
	if err := run([]string{"-enb-bin", "/nonexistent/lte-enb", "-dir", t.TempDir()}, &buf, stop); err == nil {
		t.Error("nonexistent binary accepted")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
