// lte-fleet is the multi-eNB coordinator daemon: it spawns N lte-enb
// worker processes, health-checks and restarts them (restoring cell
// state from the latest checkpoints), owns the cell→process placement
// map, runs a background checkpoint round, and optionally rebalances
// cells onto less-loaded workers by live migration (drain → checkpoint
// → restore → release, see DESIGN.md §13).
//
// Usage:
//
//	lte-fleet -workers 2 -cells 4 -enb-bin ./lte-enb
//	lte-fleet -workers 4 -cells 16 -checkpoint-every 5s -rebalance-every 30s
//	lte-fleet -workers 2 -cells 4 -- -turbo full -capacity 0.8
//
// Flags after "--" are passed through to every lte-enb worker.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"ltephy/internal/fleet"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() { <-sig; close(stop) }()
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "lte-fleet:", err)
		os.Exit(1)
	}
}

// run parses flags, brings the fleet up and supervises it until stop
// closes. Extracted from main so the command is testable.
func run(args []string, w io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("lte-fleet", flag.ContinueOnError)
	fs.SetOutput(w)
	workers := fs.Int("workers", 2, "worker processes to spawn")
	cells := fs.Int("cells", 4, "fleet-wide cell count (cells 0..cells-1)")
	enbBin := fs.String("enb-bin", "", "lte-enb binary path (default: next to this binary, else $PATH)")
	dir := fs.String("dir", "", "scratch directory for ports files (default: a temp dir)")
	checkpointEvery := fs.Duration("checkpoint-every", 2*time.Second, "background checkpoint round period (0 = off)")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Second, "drain barrier timeout per migration/checkpoint")
	healthEvery := fs.Duration("health-interval", 500*time.Millisecond, "worker health probe period")
	maxRestarts := fs.Int("max-restarts", 0, "give up on a worker after this many consecutive failed restarts (0 = unlimited)")
	rebalanceEvery := fs.Duration("rebalance-every", 0, "periodic rebalance pass (0 = off)")
	rebalanceMoves := fs.Int("rebalance-moves", 1, "migrations allowed per rebalance pass")
	rebalanceTol := fs.Float64("rebalance-tolerance", 0.1, "load imbalance fraction tolerated before migrating")
	rebalanceShed := fs.Float64("rebalance-shed", 0.05, "observed shed fraction that marks a worker hot")
	statusEvery := fs.Duration("status-every", 10*time.Second, "placement/stats report period (0 = off)")
	metrics := fs.Bool("metrics", true, "workers serve /metrics and /fetch on loopback")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers <= 0 || *cells <= 0 {
		return errors.New("-workers and -cells must be positive")
	}

	bin := *enbBin
	if bin == "" {
		if self, err := os.Executable(); err == nil {
			sibling := filepath.Join(filepath.Dir(self), "lte-enb")
			if _, err := os.Stat(sibling); err == nil {
				bin = sibling
			}
		}
		if bin == "" {
			bin = "lte-enb" // resolved via $PATH by exec
		}
	}
	scratch := *dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "lte-fleet-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(scratch)
	}

	l := &fleet.ExecLauncher{
		Bin:       bin,
		Dir:       scratch,
		Cells:     *cells,
		ExtraArgs: fs.Args(),
		Metrics:   *metrics,
		Stderr:    os.Stderr,
	}
	co, err := fleet.New(fleet.Config{
		Workers:            *workers,
		Cells:              *cells,
		Launcher:           l,
		DrainTimeout:       *drainTimeout,
		CheckpointInterval: *checkpointEvery,
		HealthInterval:     *healthEvery,
		MaxRestarts:        *maxRestarts,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, "lte-fleet: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer co.Close()

	fmt.Fprintf(w, "lte-fleet: serving %d cells on %d workers (%s), dir %s\n",
		*cells, *workers, bin, scratch)
	printPlacement(w, co)

	var statusC, rebalanceC <-chan time.Time
	if *statusEvery > 0 {
		t := time.NewTicker(*statusEvery)
		defer t.Stop()
		statusC = t.C
	}
	if *rebalanceEvery > 0 {
		t := time.NewTicker(*rebalanceEvery)
		defer t.Stop()
		rebalanceC = t.C
	}

	for {
		select {
		case <-stop:
			fmt.Fprintln(w, "lte-fleet: shutting down")
			printStatus(w, co)
			return nil
		case <-statusC:
			printStatus(w, co)
		case <-rebalanceC:
			moves, err := co.RebalanceOnce(*rebalanceMoves, *rebalanceTol, *rebalanceShed)
			if err != nil {
				fmt.Fprintf(w, "lte-fleet: rebalance: %v\n", err)
			}
			for _, m := range moves {
				fmt.Fprintf(w, "lte-fleet: migrated cell %d: worker %d -> %d\n", m.Cell, m.From, m.To)
			}
		}
	}
}

// printPlacement reports the cell→worker map grouped by worker.
func printPlacement(w io.Writer, co *fleet.Coordinator) {
	p := co.Placement()
	byWorker := map[int][]int{}
	for cell, owner := range p.Owner {
		byWorker[owner] = append(byWorker[owner], cell)
	}
	owners := make([]int, 0, len(byWorker))
	for o := range byWorker {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	for _, o := range owners {
		sort.Ints(byWorker[o])
		fmt.Fprintf(w, "lte-fleet: placement epoch %d: worker %d serves cells %v\n",
			p.Epoch, o, byWorker[o])
	}
}

// printStatus reports the placement plus per-cell serving stats scraped
// over each owner's control socket.
func printStatus(w io.Writer, co *fleet.Coordinator) {
	printPlacement(w, co)
	stats, err := co.Stats()
	if err != nil {
		fmt.Fprintf(w, "lte-fleet: stats: %v\n", err)
	}
	for _, st := range stats {
		fmt.Fprintf(w, "lte-fleet: cell %d: accepted=%d duplicate=%d redirected=%d "+
			"shed_overload=%d shed_backpressure=%d offered_est=%.3f admitted_est=%.3f\n",
			st.Cell, st.FramesAccepted, st.FramesDuplicate, st.FramesRedirected,
			st.FramesShedOverload, st.FramesShedBackpressure, st.OfferedEst, st.AdmittedEst)
	}
}
