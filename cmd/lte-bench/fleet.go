package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"time"

	"ltephy/internal/fleet"
	"ltephy/internal/fronthaul"
	"ltephy/internal/uplink/tx"
)

// fleetRun carries the -fleet mode knobs from the flag set.
type fleetRun struct {
	Procs     int     // worker processes
	Cells     int     // fleet-wide cells
	Subframes int     // sequences per cell
	Workers   int     // scheduler workers per worker process
	Delta     time.Duration
	Capacity  float64
	Load      float64
	Day       int // diurnal day length in subframes (0 = run length)
	DTXProb   float64
	Seed      uint64
	MaxPRB    int
	TX        tx.Config

	EnbBin string // spawn real processes when set; in-process otherwise
	Dir    string // exec scratch dir ("" = temp)

	MigrateAt int64 // live-migrate one cell at this sequence (0 = off)
	CrashAt   int64 // checkpoint round + kill worker 0 at this sequence (0 = off)

	AssertExactlyOnce bool
	AssertShedWithin  float64 // relative tolerance vs predicted shed (0 = off)
	JSONOut           string
}

// fleetSummary is the machine-readable artifact the smoke job uploads.
type fleetSummary struct {
	Mode      string             `json:"mode"`
	Procs     int                `json:"procs"`
	Cells     int                `json:"cells"`
	Subframes int                `json:"subframes"`
	Load      float64            `json:"load"`
	ElapsedNs int64              `json:"elapsed_ns"`
	Epoch     int64              `json:"placement_epoch"`
	Stats     fleet.HarnessStats `json:"stats"`
	P99Ns     int64              `json:"p99_ns"`
	P999Ns    int64              `json:"p999_ns"`
}

// runFleet brings up a supervised fleet, drives the diurnal harness
// through it — optionally forcing a live migration and a worker crash
// mid-run — and gates on the exactly-once and shed-budget assertions.
func runFleet(w io.Writer, r fleetRun) error {
	var l fleet.Launcher
	srvCfg := fronthaul.Config{
		Workers:  r.Workers,
		Pools:    1,
		Receiver: r.TX.Receiver,
		Delta:    r.Delta,
		// The harness is transport-paced, not wall-clock paced: a long
		// deadline budget keeps shedding purely admission-driven (and so
		// deterministic for a fixed seed).
		DeadlineBudget: time.Minute,
		Capacity:       r.Capacity,
		KPISampling:    1,
		Seed:           r.Seed,
	}
	if r.EnbBin == "" {
		ipl := &fleet.InProcLauncher{Cfg: fleet.InProcConfig{
			Server: srvCfg, Cells: r.Cells, Metrics: true,
		}}
		defer ipl.Close()
		l = ipl
	} else {
		dir := r.Dir
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "lte-bench-fleet-"); err != nil {
				return err
			}
			defer os.RemoveAll(dir)
		}
		l = &fleet.ExecLauncher{
			Bin: r.EnbBin, Dir: dir, Cells: r.Cells, Metrics: true,
			ExtraArgs: []string{
				"-deadline", "1m",
				"-delta", r.Delta.String(),
				"-capacity", strconv.FormatFloat(r.Capacity, 'g', -1, 64),
				"-workers", strconv.Itoa(r.Workers),
				"-seed", strconv.FormatUint(r.Seed, 10),
			},
			Stderr: os.Stderr,
		}
	}

	co, err := fleet.New(fleet.Config{
		Workers:      r.Procs,
		Cells:        r.Cells,
		Launcher:     l,
		DrainTimeout: 5 * time.Second,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, "fleet: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer co.Close()

	// Fault injection runs on cell 0's send path, so the sequence points
	// are deterministic for a fixed configuration.
	var onSeq func(int64)
	if r.MigrateAt > 0 || r.CrashAt > 0 {
		migrated := false
		onSeq = func(seq int64) {
			if r.MigrateAt > 0 && seq == r.MigrateAt && !migrated {
				migrated = true
				cell := r.Cells / 2
				target := (co.Placement().Owner[cell] + 1) % r.Procs
				fmt.Fprintf(w, "fleet: migrating cell %d to worker %d at seq %d\n", cell, target, seq)
				if err := co.Migrate(cell, target); err != nil {
					fmt.Fprintf(w, "fleet: migrate: %v\n", err)
				}
			}
			if r.CrashAt > 0 && seq == r.CrashAt {
				fmt.Fprintf(w, "fleet: checkpoint round + killing worker 0 at seq %d\n", seq)
				if err := co.CheckpointRound(); err != nil {
					fmt.Fprintf(w, "fleet: checkpoint round: %v\n", err)
				}
				if wk, err := co.Worker(0); err == nil {
					wk.Kill()
				} else {
					fmt.Fprintf(w, "fleet: worker 0: %v\n", err)
				}
			}
		}
	}

	start := time.Now()
	stats, err := fleet.RunHarness(fleet.HarnessConfig{
		Coordinator:     co,
		Cells:           r.Cells,
		Subframes:       r.Subframes,
		Load:            r.Load,
		SubframesPerDay: r.Day,
		Seed:            r.Seed,
		MaxPRB:          r.MaxPRB,
		DTXProb:         r.DTXProb,
		TX:              r.TX,
		OnSeq:           onSeq,
	})
	elapsed := time.Since(start)
	if err != nil {
		return fmt.Errorf("fleet harness: %w (partial: %s)", err, stats)
	}

	fmt.Fprintf(w, "fleet: %d procs x %d cells x %d subframes in %v\n",
		r.Procs, r.Cells, r.Subframes, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "fleet: %s\n", stats)
	epoch := co.Placement().Epoch
	fmt.Fprintf(w, "fleet: placement epoch %d\n", epoch)

	if r.JSONOut != "" {
		sum := fleetSummary{
			Mode: "fleet", Procs: r.Procs, Cells: r.Cells, Subframes: r.Subframes,
			Load: r.Load, ElapsedNs: elapsed.Nanoseconds(), Epoch: epoch,
			Stats: stats, P99Ns: stats.P99.Nanoseconds(), P999Ns: stats.P999.Nanoseconds(),
		}
		if err := writeJSON(r.JSONOut, sum); err != nil {
			return err
		}
		fmt.Fprintf(w, "fleet: summary -> %s\n", r.JSONOut)
	}

	if r.AssertExactlyOnce {
		if stats.Lost != 0 {
			return fmt.Errorf("fleet: %d subframes lost", stats.Lost)
		}
		if stats.BadAcks != 0 {
			return fmt.Errorf("fleet: %d bad acks", stats.BadAcks)
		}
		if got := stats.Done + stats.ShedOverload + stats.ShedBackpressure + stats.Duplicate; got != stats.Sent {
			return fmt.Errorf("fleet: terminal acks %d != sent %d", got, stats.Sent)
		}
		total := stats.Fleet.Total
		if got := total.CrcPass + total.CrcFail + total.Dtx + total.Skipped; got != stats.UsersSent {
			return fmt.Errorf("fleet: KPI rollup %d != users sent %d (pass=%d fail=%d dtx=%d skipped=%d)",
				got, stats.UsersSent, total.CrcPass, total.CrcFail, total.Dtx, total.Skipped)
		}
		fmt.Fprintf(w, "fleet: exactly-once OK (%d users, 0 lost)\n", stats.UsersSent)
	}
	if r.AssertShedWithin > 0 {
		// Relative budget with a small absolute floor, so a lightly-loaded
		// run (tiny predicted shed) does not fail on quantisation noise.
		diff := math.Abs(stats.MeasuredShed - stats.PredictedShed)
		tol := r.AssertShedWithin*stats.PredictedShed + 0.01
		if diff > tol {
			return fmt.Errorf("fleet: measured shed %.4f vs predicted %.4f (|diff| %.4f > tol %.4f)",
				stats.MeasuredShed, stats.PredictedShed, diff, tol)
		}
		fmt.Fprintf(w, "fleet: shed budget OK (measured %.4f, predicted %.4f)\n",
			stats.MeasuredShed, stats.PredictedShed)
	}
	return nil
}

// writeJSON atomically writes v as indented JSON to path.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
