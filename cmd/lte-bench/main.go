// lte-bench runs the native LTE Uplink Receiver PHY benchmark: real DSP
// kernels on real synthetic signals, scheduled by the work-stealing worker
// pool, dispatched one subframe every DELTA — the executable counterpart
// of the paper's Pthreads benchmark.
//
// Usage:
//
//	lte-bench -subframes 200 -workers 8 -delta 5ms
//	lte-bench -verify -subframes 50        # serial-vs-parallel check
//	lte-bench -serial -subframes 20        # serial reference timing
//	lte-bench -turbo full                  # real turbo decoding
//	lte-bench -fftbench                    # FFT engine microbenchmarks
//	lte-bench -loopback /tmp/enb.sock -network unix -speedup 2
//	                                       # drive an lte-enb server at 2x real time
//	lte-bench -fleet 2 -cells 4 -load 2 -migrate-at 15 -crash-at 35
//	                                       # fleet harness: supervised workers, live
//	                                       # migration and a forced crash mid-run
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"

	"ltephy/internal/cost"
	"ltephy/internal/fronthaul"
	"ltephy/internal/obs"
	"ltephy/internal/params"
	"ltephy/internal/phy/fft"
	phyturbo "ltephy/internal/phy/turbo"
	"ltephy/internal/phy/workspace"
	"ltephy/internal/power"
	"ltephy/internal/sched"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fail(err)
	}
}

// run parses flags and executes the benchmark; extracted from main so the
// command is testable.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lte-bench", flag.ContinueOnError)
	fs.SetOutput(w)
	subframes := fs.Int("subframes", 200, "number of subframes to process")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines")
	delta := fs.Duration("delta", 5*time.Millisecond, "dispatch period (the paper's DELTA)")
	unpaced := fs.Bool("unpaced", false, "dispatch without pacing (obs.UnpacedClock): run the trace as fast as the pool drains")
	seed := fs.Uint64("seed", 1, "parameter model and input data seed")
	maxPRB := fs.Int("maxprb", 20, "clamp per-user PRBs (native DSP is host-speed; the paper's 200-PRB pool needs a base station)")
	napOnIdle := fs.Bool("idle-nap", false, "reactive policy: nap workers that find no work")
	turbo := fs.String("turbo", "passthrough", "turbo mode: passthrough (paper) or full")
	turboIter := fs.Int("turbo-iter", 0, "max full turbo iterations per code block (0 = receiver default); CRC-gated early stop usually finishes sooner")
	turboKernel := fs.String("turbo-kernel", "int8", "full-turbo decoder kernel: int8 (line-rate) or float64 (oracle)")
	rate := fs.Float64("rate", 0, "code rate for rate-matched full-turbo mode (0 = mother rate + padding)")
	combiner := fs.String("combiner", "mmse", "antenna combiner: mmse, zf or mrc")
	precision := fs.String("precision", "complex128", "kernel precision: complex128 or float32 (split-plane lane layout)")
	chanest := fs.String("chanest", "windowed", "channel estimator: windowed (paper) or ls")
	scramble := fs.Bool("scramble", false, "enable Gold-sequence bit scrambling")
	noiseEst := fs.Bool("noise-est", false, "estimate noise variance at the receiver (no genie)")
	lockFree := fs.Bool("lockfree", false, "use the Chase-Lev lock-free deque")
	frontendPath := fs.Bool("frontend", false, "route signals through the Fig. 2 OFDM frontend")
	allocs := fs.Bool("allocs", false, "report heap allocations per subframe (runtime.MemStats deltas over the run)")
	verify := fs.Bool("verify", false, "run serial vs parallel verification instead of a timed run")
	serial := fs.Bool("serial", false, "run the serial reference instead of the pool")
	snr := fs.Float64("snr", 25, "per-subcarrier SNR in dB for the synthetic channel")
	fftBench := fs.Bool("fftbench", false, "run FFT engine microbenchmarks (single and batched-vs-looped) and exit")
	obsSampling := fs.Int("obs", 0, "telemetry sampling knob: 0 = off, N >= 1 = histograms/deadline on every event, ring capture of every Nth")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics (Prometheus), /trace (Chrome trace) and /debug/vars on this address during the run")
	traceFile := fs.String("trace", "", "write a Chrome trace_event JSON timeline of the run to this file (view in chrome://tracing or Perfetto)")
	estPair := fs.Bool("est", false, "pair a cost-model workload estimate with each period's measured activity (live Fig. 12 error tracking)")
	blerSweepRun := fs.Bool("bler-sweep", false, "run a BLER-vs-SNR campaign over -snr-grid and emit CSV+JSON curves under -out, then exit")
	snrGrid := fs.String("snr-grid", "-4,-2,0,2,6", "bler-sweep: comma-separated SNR grid in dB")
	sweepSubframes := fs.Int("sweep-subframes", 12, "bler-sweep: subframes per SNR point")
	outDir := fs.String("out", "results", "bler-sweep: artifact output directory")
	assertMonotone := fs.Bool("assert-monotone", false, "bler-sweep: fail unless BLER is monotone non-increasing in SNR and 0% at the top of the grid")
	loopback := fs.String("loopback", "", "run as a loopback load generator against an lte-enb server at this address, then exit")
	network := fs.String("network", "tcp", "loopback transport: tcp or unix")
	cells := fs.Int("cells", 1, "loopback: cells to drive (one connection each)")
	speedup := fs.Float64("speedup", 1, "loopback: real-time rate multiplier — one frame every delta/speedup per cell (0 = as fast as the transport allows)")
	genLoad := fs.Float64("load", 1, "loopback: offered-load multiplier (parameter-model draws concatenated per subframe)")
	dtxProb := fs.Float64("dtx", 0, "loopback: probability a scheduled user is DTX-flagged (absent UE, feeds the KPI Dtx counter)")
	jsonOut := fs.String("json", "", "loopback/fleet: write a machine-readable JSON run summary to this file")
	fleetProcs := fs.Int("fleet", 0, "run the fleet harness against this many supervised worker processes, then exit (0 = off)")
	enbBin := fs.String("enb-bin", "", "fleet: spawn real lte-enb processes with this binary (default: in-process workers)")
	fleetDir := fs.String("fleet-dir", "", "fleet: scratch directory for process ports files (default: a temp dir)")
	capacity := fs.Float64("capacity", 1, "fleet: per-worker admission activity budget per period")
	day := fs.Int("day", 0, "fleet: diurnal day length in subframes (0 = the run length, one day per run)")
	migrateAt := fs.Int64("migrate-at", 0, "fleet: live-migrate one cell to the next worker at this sequence (0 = off)")
	crashAt := fs.Int64("crash-at", 0, "fleet: run a checkpoint round then kill worker 0 at this sequence (0 = off)")
	assertExactlyOnce := fs.Bool("assert-exactly-once", false, "fleet: fail unless zero subframes are lost and the KPI rollup covers every offered user exactly once")
	assertShed := fs.Float64("assert-shed-within", 0, "fleet: fail unless the measured shed fraction is within this relative tolerance of the estimator's prediction (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *fftBench {
		return runFFTBench(w)
	}

	rc := uplink.DefaultConfig()
	switch *turbo {
	case "passthrough":
	case "full":
		rc.Turbo = uplink.TurboFull
	default:
		return fmt.Errorf("unknown turbo mode %q", *turbo)
	}
	if *turboIter > 0 {
		rc.TurboIterations = *turboIter
	}
	switch *turboKernel {
	case "int8":
	case "float64":
		rc.TurboKernel = phyturbo.KernelFloat64
	default:
		return fmt.Errorf("unknown turbo kernel %q", *turboKernel)
	}
	rc.CodeRate = *rate
	switch *combiner {
	case "mmse":
	case "zf":
		rc.Combiner = uplink.CombinerZF
	case "mrc":
		rc.Combiner = uplink.CombinerMRC
	default:
		return fmt.Errorf("unknown combiner %q", *combiner)
	}
	switch *chanest {
	case "windowed":
	case "ls":
		rc.ChanEst = uplink.ChanEstLS
	default:
		return fmt.Errorf("unknown channel estimator %q", *chanest)
	}
	switch *precision {
	case "complex128":
	case "float32":
		rc.Precision = uplink.PrecisionFloat32
	default:
		return fmt.Errorf("unknown precision %q", *precision)
	}
	rc.Scramble = *scramble
	rc.EstimateNoise = *noiseEst

	if *blerSweepRun {
		grid, err := parseSNRGrid(*snrGrid)
		if err != nil {
			return err
		}
		return runBLERSweep(w, rc, grid, *sweepSubframes, *maxPRB, *seed, *outDir, *assertMonotone)
	}

	if *fleetProcs > 0 {
		txCfg := tx.DefaultConfig()
		txCfg.Receiver = rc
		txCfg.SNRdB = *snr
		txCfg.ThroughFrontend = *frontendPath
		return runFleet(w, fleetRun{
			Procs:             *fleetProcs,
			Cells:             *cells,
			Subframes:         *subframes,
			Workers:           *workers,
			Delta:             *delta,
			Capacity:          *capacity,
			Load:              *genLoad,
			Day:               *day,
			DTXProb:           *dtxProb,
			Seed:              *seed,
			MaxPRB:            *maxPRB,
			TX:                txCfg,
			EnbBin:            *enbBin,
			Dir:               *fleetDir,
			MigrateAt:         *migrateAt,
			CrashAt:           *crashAt,
			AssertExactlyOnce: *assertExactlyOnce,
			AssertShedWithin:  *assertShed,
			JSONOut:           *jsonOut,
		})
	}

	if *loopback != "" {
		interval := time.Duration(0)
		if *speedup > 0 {
			interval = time.Duration(float64(*delta) / *speedup)
		}
		txCfg := tx.DefaultConfig()
		txCfg.Receiver = rc
		txCfg.SNRdB = *snr
		txCfg.ThroughFrontend = *frontendPath
		start := time.Now()
		stats, err := fronthaul.RunLoopback(fronthaul.GenConfig{
			Network:   *network,
			Addr:      *loopback,
			Cells:     *cells,
			Subframes: *subframes,
			Interval:  interval,
			Load:      *genLoad,
			DTXProb:   *dtxProb,
			Seed:      *seed,
			MaxPRB:    *maxPRB,
			TX:        txCfg,
		})
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "loopback: %d cells x %d subframes in %v\n",
			*cells, *subframes, elapsed.Round(time.Millisecond))
		fmt.Fprintf(w, "loopback: %s\n", stats)
		if *jsonOut != "" {
			sum := struct {
				Mode      string             `json:"mode"`
				Cells     int                `json:"cells"`
				Subframes int                `json:"subframes"`
				Load      float64            `json:"load"`
				ElapsedNs int64              `json:"elapsed_ns"`
				Stats     fronthaul.GenStats `json:"stats"`
				P99Ns     int64              `json:"p99_ns"`
				P999Ns    int64              `json:"p999_ns"`
			}{"loopback", *cells, *subframes, *genLoad, elapsed.Nanoseconds(),
				stats, stats.P99.Nanoseconds(), stats.P999.Nanoseconds()}
			if err := writeJSON(*jsonOut, sum); err != nil {
				return err
			}
			fmt.Fprintf(w, "loopback: summary -> %s\n", *jsonOut)
		}
		return nil
	}

	dispCfg := sched.DefaultDispatcherConfig()
	dispCfg.Delta = *delta
	if *unpaced {
		dispCfg.Clock = obs.UnpacedClock{}
	}
	dispCfg.Seed = *seed
	dispCfg.TX.Receiver = rc
	dispCfg.TX.SNRdB = *snr
	dispCfg.TX.ThroughFrontend = *frontendPath

	// Record and clamp a trace: the native benchmark runs real DSP, so the
	// workload is scaled to host speeds by limiting per-user PRBs.
	model := params.NewRandom(*seed)
	trace := params.Record(model, *subframes)
	for _, users := range trace.Subframes {
		for i := range users {
			if users[i].PRB > *maxPRB {
				users[i].PRB = *maxPRB
			}
		}
	}

	poolCfg := sched.DefaultPoolConfig()
	poolCfg.Workers = *workers
	poolCfg.Receiver = rc
	poolCfg.NapOnIdle = *napOnIdle
	poolCfg.LockFreeDeque = *lockFree
	poolCfg.Seed = *seed

	if *verify {
		start := time.Now()
		if err := sched.Verify(poolCfg, dispCfg, trace); err != nil {
			return err
		}
		fmt.Fprintf(w, "verify: %d subframes bit-identical between serial and parallel (%v)\n",
			*subframes, time.Since(start).Round(time.Millisecond))
		return nil
	}

	disp := sched.NewDispatcher(dispCfg)
	fmt.Fprintf(w, "pregenerating input data for %d subframes...\n", *subframes)
	if err := disp.Pregenerate(trace); err != nil {
		return err
	}
	trace.Reset()

	if *serial {
		var before runtime.MemStats
		if *allocs {
			runtime.GC()
			runtime.ReadMemStats(&before)
		}
		start := time.Now()
		var results, crcOK int
		for seq := int64(0); seq < int64(*subframes); seq++ {
			sf, err := disp.Subframe(seq, trace.Next())
			if err != nil {
				return err
			}
			rs, err := uplink.ProcessSubframe(rc, sf)
			if err != nil {
				return err
			}
			for _, r := range rs {
				results++
				if r.CRCOK {
					crcOK++
				}
			}
		}
		elapsed := time.Since(start)
		fmt.Fprintf(w, "serial: %d subframes, %d users, %d CRC pass in %v (%.1f subframes/s)\n",
			*subframes, results, crcOK, elapsed.Round(time.Millisecond),
			float64(*subframes)/elapsed.Seconds())
		if *allocs {
			reportAllocs(w, before, *subframes)
		}
		return nil
	}

	col := sched.NewCollector()
	poolCfg.OnResult = col.Add
	pool, err := sched.NewPool(poolCfg)
	if err != nil {
		return err
	}

	// Telemetry: requesting a trace file or a metrics endpoint implies at
	// least sampling 1.
	sampling := *obsSampling
	if sampling == 0 && (*traceFile != "" || *metricsAddr != "") {
		sampling = 1
	}
	tel := pool.Telemetry()
	tel.SetSampling(sampling)
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		obs.PublishExpvar(tel)
		go func() { _ = http.Serve(ln, obs.Handler(tel, pool.WritePrometheus)) }()
		fmt.Fprintf(w, "telemetry: /metrics, /trace, /debug/vars on http://%s\n", ln.Addr())
	}

	opts := sched.RunOptions{Subframes: *subframes}
	if *estPair {
		// The estimate comes from the cost model (modelled TILEPro64
		// cycles); host DSP runs at host speed, so the estimator error
		// reported here measures model-vs-host shape mismatch, not the
		// paper's calibrated-platform error.
		cm := cost.Default()
		denom := float64(*workers) * cm.PeriodCycles(delta.Seconds())
		opts.Estimate = func(sf *uplink.Subframe) float64 {
			var cycles float64
			for _, u := range sf.Users {
				cycles += cm.UserCycles(u.Params, rc.Antennas)
			}
			return cycles / denom
		}
	}

	var memBefore runtime.MemStats
	if *allocs {
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}
	before := pool.Stats()
	wall, err := disp.Run(pool, trace, opts)
	if err != nil {
		return err
	}
	after := pool.Stats()
	pool.Close()

	activity := sched.Activity(before, after, wall)
	var tasks, steals int64
	for i := range after {
		tasks += after[i].TasksRun - before[i].TasksRun
		steals += after[i].Steals - before[i].Steals
	}
	crcOK := 0
	for _, r := range col.Sorted() {
		if r.CRCOK {
			crcOK++
		}
	}
	fmt.Fprintf(w, "parallel: %d subframes on %d workers in %v\n", *subframes, *workers, wall.Round(time.Millisecond))
	fmt.Fprintf(w, "  results: %d users, %d CRC pass\n", col.Len(), crcOK)
	fmt.Fprintf(w, "  activity (Eq. 2): %.3f\n", activity)
	fmt.Fprintf(w, "  tasks run: %d, steals: %d\n", tasks, steals)

	// As-if power on the modelled TILEPro64, from the workers' measured
	// busy/nap fractions (host cores stand in for tiles).
	busy := make([]int64, len(after))
	nap := make([]int64, len(after))
	for i := range after {
		busy[i] = after[i].BusyNanos - before[i].BusyNanos
		nap[i] = after[i].NapNanos - before[i].NapNanos
	}
	if est, err := power.FromWorkerStats(busy, nap, wall.Nanoseconds(), power.Default()); err == nil {
		fmt.Fprintf(w, "  as-if power (%d-core model): %.2f W\n", *workers, est)
	}
	if sampling > 0 {
		printTelemetry(w, tel)
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				return err
			}
			if err := obs.WriteChromeTrace(f, tel); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "  trace: %d events -> %s (open in chrome://tracing or ui.perfetto.dev)\n",
				len(tel.Events()), *traceFile)
		}
	}
	if *allocs {
		reportAllocs(w, memBefore, *subframes)
		var arenaTotal int
		for _, f := range pool.ArenaFootprints() {
			arenaTotal += f
		}
		fmt.Fprintf(w, "  arena footprint: %.1f KiB total across %d workers\n",
			float64(arenaTotal)/1024, *workers)
	}
	return nil
}

// runFFTBench times the FFT engine natively: single transforms over
// representative smooth and Bluestein lengths, then batched vs looped over
// an 8-vector grid — the shape the receiver's channel-estimation and
// despread stages batch over. Compare against BENCH_fft_baseline.json.
func runFFTBench(w io.Writer) error {
	rng := rand.New(rand.NewSource(1))
	ws := workspace.New()
	fmt.Fprintln(w, "FFT engine microbenchmarks (ns/op):")
	fmt.Fprintf(w, "%8s %12s %14s %14s\n", "n", "single", "batched(x8)", "looped(x8)")
	for _, n := range []int{24, 144, 300, 600, 1200, 2400, 97, 199, 1201} {
		p := fft.Get(n)
		const howMany = 8
		src := make([]complex128, howMany*n)
		for i := range src {
			src[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		dst := make([]complex128, howMany*n)
		single := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.ForwardIn(ws, dst[:n], src[:n])
			}
		})
		batched := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.ForwardBatch(ws, dst, src, howMany, n)
			}
		})
		looped := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for v := 0; v < howMany; v++ {
					p.ForwardIn(ws, dst[v*n:(v+1)*n], src[v*n:(v+1)*n])
				}
			}
		})
		kind := ""
		if n == 97 || n == 199 || n == 1201 {
			kind = "  (Bluestein)"
		}
		fmt.Fprintf(w, "%8d %12d %14d %14d%s\n",
			n, single.NsPerOp(), batched.NsPerOp(), looped.NsPerOp(), kind)
	}
	return nil
}

// printTelemetry summarises the run's telemetry: per-stage latency,
// deadline accounting against the DELTA budget, and (when the -est hook
// was on) the online estimator-error statistics.
func printTelemetry(w io.Writer, tel *obs.Registry) {
	fmt.Fprintf(w, "  stage latency (sampling %d):\n", tel.Sampling())
	for s := 0; s < obs.NumStages; s++ {
		h := tel.StageHist(uint8(s))
		n := h.Count()
		if n == 0 {
			continue
		}
		mean := float64(h.SumNanos()) / float64(n)
		worst := obs.BucketUpperNanos(h.MaxBucket())
		fmt.Fprintf(w, "    %-16s %8d runs  mean %8.1f us  worst < %.1f us\n",
			obs.StageNames[s], n, mean/1e3, float64(worst)/1e3)
	}
	if th := tel.TurboHist(); th.Count() > 0 {
		fmt.Fprintf(w, "  turbo half-iterations over %d decodes: mean %.2f, histogram", th.Count(), th.Mean())
		for b := 0; b < obs.CountHistBuckets; b++ {
			if c := th.Bucket(b); c > 0 {
				fmt.Fprintf(w, "  %d:%d", b, c)
			}
		}
		fmt.Fprintln(w)
	}
	d := tel.Deadline()
	total := d.Met() + d.Missed()
	if total > 0 {
		fmt.Fprintf(w, "  deadline (budget %v): %d/%d met", time.Duration(d.Budget()), d.Met(), total)
		if d.Missed() > 0 {
			fmt.Fprintf(w, ", worst overrun %v", time.Duration(d.WorstLatenessNanos()).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	if es := tel.Estimator().Stats(); es.Count > 0 {
		fmt.Fprintf(w, "  estimator error over %d periods: avg |err| %.3f, max %.3f, bias %+.3f (measured mean %.3f)\n",
			es.Count, es.AvgAbsErr, es.MaxAbsErr, es.Bias, es.MeanMeasured)
	}
}

// reportAllocs prints heap-allocation deltas per subframe since `before`.
// The first subframes pay one-time costs (FFT plans, transport formats,
// arena growth), so per-subframe figures approach the steady state only
// for longer runs.
func reportAllocs(w io.Writer, before runtime.MemStats, subframes int) {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	mallocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	if subframes < 1 {
		fmt.Fprintf(w, "  heap allocs: %d total, %.1f KiB total\n", mallocs, float64(bytes)/1024)
		return
	}
	fmt.Fprintf(w, "  heap allocs: %d total (%.1f/subframe), %.1f KiB total (%.2f KiB/subframe)\n",
		mallocs, float64(mallocs)/float64(subframes),
		float64(bytes)/1024, float64(bytes)/1024/float64(subframes))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lte-bench:", err)
	os.Exit(1)
}
