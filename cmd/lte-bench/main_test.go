package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunParallel(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-subframes", "5", "-maxprb", "4", "-delta", "1ms", "-workers", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"parallel: 5 subframes", "CRC pass", "activity", "as-if power"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunVerify(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-verify", "-subframes", "4", "-maxprb", "4", "-delta", "1ms"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bit-identical") {
		t.Errorf("verify output: %s", buf.String())
	}
}

func TestRunSerial(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-serial", "-subframes", "3", "-maxprb", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "serial: 3 subframes") {
		t.Errorf("serial output: %s", buf.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-turbo", "quantum"}, &buf); err == nil {
		t.Error("unknown turbo mode accepted")
	}
	if err := run([]string{"-combiner", "magic"}, &buf); err == nil {
		t.Error("unknown combiner accepted")
	}
	if err := run([]string{"-chanest", "psychic"}, &buf); err == nil {
		t.Error("unknown channel estimator accepted")
	}
}
