package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunParallel(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-subframes", "5", "-maxprb", "4", "-delta", "1ms", "-workers", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"parallel: 5 subframes", "CRC pass", "activity", "as-if power"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunVerify(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-verify", "-subframes", "4", "-maxprb", "4", "-delta", "1ms"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bit-identical") {
		t.Errorf("verify output: %s", buf.String())
	}
}

func TestRunSerial(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-serial", "-subframes", "3", "-maxprb", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "serial: 3 subframes") {
		t.Errorf("serial output: %s", buf.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-turbo", "quantum"}, &buf); err == nil {
		t.Error("unknown turbo mode accepted")
	}
	if err := run([]string{"-combiner", "magic"}, &buf); err == nil {
		t.Error("unknown combiner accepted")
	}
	if err := run([]string{"-chanest", "psychic"}, &buf); err == nil {
		t.Error("unknown channel estimator accepted")
	}
}

func TestRunBLERSweep(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-bler-sweep", "-turbo", "full", "-rate", "0.5",
		"-sweep-subframes", "4", "-maxprb", "4", "-snr-grid", "-4,-1,6",
		"-assert-monotone", "-out", dir}, &buf)
	if err != nil {
		t.Fatalf("bler-sweep: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"bler-sweep: 3 points", "monotonicity asserted"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	csv, err := os.ReadFile(filepath.Join(dir, "bler_sweep.csv"))
	if err != nil {
		t.Fatalf("csv artifact: %v", err)
	}
	if !strings.HasPrefix(string(csv), "snr_db,bler_percent,throughput_kbps") {
		t.Errorf("csv header:\n%s", csv)
	}
	var doc struct {
		Points []struct {
			SNRdB float64 `json:"snr_db"`
			Bler  float64 `json:"bler"`
		} `json:"points"`
	}
	raw, err := os.ReadFile(filepath.Join(dir, "bler_sweep.json"))
	if err != nil {
		t.Fatalf("json artifact: %v", err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("json artifact: %v", err)
	}
	if len(doc.Points) != 3 || doc.Points[2].Bler != 0 {
		t.Errorf("json points: %+v", doc.Points)
	}
}

// TestRunFleetSmoke is the CLI face of the fleet harness: in-process
// workers, a forced migration and a forced crash, the exactly-once and
// shed-budget gates on, and the JSON artifact written.
func TestRunFleetSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.json")
	var buf bytes.Buffer
	err := run([]string{
		"-fleet", "2", "-cells", "4", "-subframes", "40", "-workers", "2",
		"-load", "2", "-dtx", "0.1", "-maxprb", "2", "-seed", "7",
		"-migrate-at", "12", "-crash-at", "28",
		"-assert-exactly-once", "-assert-shed-within", "0.1",
		"-json", out,
	}, &buf)
	if err != nil {
		t.Fatalf("fleet run: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"migrating cell 2", "killing worker 0", "exactly-once OK", "shed budget OK", "lost=0",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}
	var sum struct {
		Mode  string `json:"mode"`
		Stats struct {
			Sent int64 `json:"Sent"`
			Lost int64 `json:"Lost"`
		} `json:"stats"`
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("json artifact: %v", err)
	}
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("json artifact: %v", err)
	}
	if sum.Mode != "fleet" || sum.Stats.Sent != 160 || sum.Stats.Lost != 0 {
		t.Errorf("summary: %+v", sum)
	}
}

func TestParseSNRGrid(t *testing.T) {
	grid, err := parseSNRGrid(" 6, -2,0 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 3 || grid[0] != -2 || grid[2] != 6 {
		t.Errorf("grid = %v, want sorted [-2 0 6]", grid)
	}
	if _, err := parseSNRGrid("1,banana"); err == nil {
		t.Error("bad grid entry accepted")
	}
	if _, err := parseSNRGrid("5"); err == nil {
		t.Error("single-point grid accepted")
	}
}
