package main

// BLER-vs-SNR campaign mode: step the synthetic channel's SNR across a
// grid, drive the full receive path over the same recorded parameter
// trace at every point (paired comparison), fold each point's outcomes
// through the KPI registry, and emit the BLER / throughput curves as
// CSV + JSON artifacts — the repo's link-level correctness trajectory,
// in the spirit of the Vienna LTE-A uplink simulator's BLER campaigns.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"ltephy/internal/obs/kpi"
	"ltephy/internal/params"
	"ltephy/internal/sched"
	"ltephy/internal/uplink"
)

// blerPoint is one SNR grid point's cumulative FETCH measurement.
type blerPoint struct {
	SNRdB float64 `json:"snr_db"`
	Users int     `json:"users"`
	kpi.FetchStruct
}

// blerSweep is the JSON artifact.
type blerSweep struct {
	Subframes int         `json:"subframes"`
	MaxPRB    int         `json:"max_prb"`
	Seed      uint64      `json:"seed"`
	Turbo     string      `json:"turbo"`
	CodeRate  float64     `json:"code_rate"`
	Points    []blerPoint `json:"points"`
}

// parseSNRGrid parses the -snr-grid comma-separated dB values and sorts
// them ascending (the monotonicity assertion is over increasing SNR).
func parseSNRGrid(s string) ([]float64, error) {
	var grid []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -snr-grid entry %q", part)
		}
		grid = append(grid, v)
	}
	if len(grid) < 2 {
		return nil, fmt.Errorf("-snr-grid needs at least 2 points, got %d", len(grid))
	}
	sort.Float64s(grid)
	return grid, nil
}

// runBLERSweep runs the campaign: one fresh dispatcher per SNR point over
// one shared recorded trace, serial receive path, KPI accounting per
// point. With assertMonotone the sweep fails unless BLER is monotone
// non-increasing in SNR and reaches 0% at the top of the grid.
func runBLERSweep(w io.Writer, rc uplink.ReceiverConfig, grid []float64,
	subframes, maxPRB int, seed uint64, outDir string, assertMonotone bool) error {
	model := params.NewRandom(seed)
	trace := params.Record(model, subframes)
	for _, users := range trace.Subframes {
		for i := range users {
			if users[i].PRB > maxPRB {
				users[i].PRB = maxPRB
			}
		}
	}

	sweep := blerSweep{
		Subframes: subframes,
		MaxPRB:    maxPRB,
		Seed:      seed,
		Turbo:     "passthrough",
		CodeRate:  rc.CodeRate,
	}
	if rc.Turbo == uplink.TurboFull {
		sweep.Turbo = "full"
	}
	fmt.Fprintf(w, "bler-sweep: %d subframes per point, turbo=%s rate=%g, grid %v\n",
		subframes, sweep.Turbo, rc.CodeRate, grid)
	start := time.Now()
	for _, snr := range grid {
		// A fresh dispatcher per point: its input-data cache is keyed by
		// parameters, so the SNR change must not reuse stale realisations.
		dispCfg := sched.DefaultDispatcherConfig()
		dispCfg.Seed = seed
		dispCfg.TX.Receiver = rc
		dispCfg.TX.SNRdB = snr
		disp := sched.NewDispatcher(dispCfg)
		reg := kpi.New(kpi.Config{Cells: 1, Windows: []int64{}})
		reg.SetSampling(1)
		trace.Reset()
		for seq := int64(0); seq < int64(subframes); seq++ {
			sf, err := disp.Subframe(seq, trace.Next())
			if err != nil {
				return err
			}
			rs, err := uplink.ProcessSubframe(rc, sf)
			if err != nil {
				return err
			}
			for _, r := range rs {
				reg.RecordResult(0, r.Seq, r.UserID, r.CRCOK, 8*len(r.Bits))
			}
		}
		c := reg.CellSnapshot(0)
		p := blerPoint{SNRdB: snr, Users: len(c.Users), FetchStruct: c.Cumulative}
		sweep.Points = append(sweep.Points, p)
		fmt.Fprintf(w, "  snr=%+6.1f dB  bler=%7.3f%%  throughput=%9.1f kbps  blocks=%d\n",
			snr, p.Bler, p.Throughput, p.CrcPass+p.CrcFail)
	}
	fmt.Fprintf(w, "bler-sweep: %d points in %v\n", len(grid), time.Since(start).Round(time.Millisecond))

	if err := writeSweepArtifacts(outDir, sweep); err != nil {
		return err
	}
	fmt.Fprintf(w, "bler-sweep: wrote %s and %s\n",
		filepath.Join(outDir, "bler_sweep.csv"), filepath.Join(outDir, "bler_sweep.json"))

	if assertMonotone {
		for i := 1; i < len(sweep.Points); i++ {
			prev, cur := sweep.Points[i-1], sweep.Points[i]
			if cur.Bler > prev.Bler {
				return fmt.Errorf("bler-sweep: BLER not monotone non-increasing: %.3f%% at %g dB > %.3f%% at %g dB",
					cur.Bler, cur.SNRdB, prev.Bler, prev.SNRdB)
			}
		}
		if top := sweep.Points[len(sweep.Points)-1]; top.Bler != 0 {
			return fmt.Errorf("bler-sweep: BLER at the top of the grid (%g dB) is %.3f%%, want 0%%",
				top.SNRdB, top.Bler)
		}
		if bot := sweep.Points[0]; bot.Bler == 0 {
			fmt.Fprintf(w, "bler-sweep: note: BLER already 0%% at the bottom of the grid (%g dB); widen the grid to see the waterfall\n",
				bot.SNRdB)
		}
		fmt.Fprintln(w, "bler-sweep: monotonicity asserted: BLER non-increasing in SNR, 0% at high SNR")
	}
	return nil
}

// writeSweepArtifacts writes the CSV and JSON curve files under dir.
func writeSweepArtifacts(dir string, sweep blerSweep) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var csv strings.Builder
	csv.WriteString("snr_db,bler_percent,throughput_kbps,crc_pass,crc_fail,dtx,skipped,users\n")
	for _, p := range sweep.Points {
		fmt.Fprintf(&csv, "%g,%g,%g,%d,%d,%d,%d,%d\n",
			p.SNRdB, p.Bler, p.Throughput, p.CrcPass, p.CrcFail, p.Dtx, p.Skipped, p.Users)
	}
	if err := os.WriteFile(filepath.Join(dir, "bler_sweep.csv"), []byte(csv.String()), 0o644); err != nil {
		return err
	}
	doc, err := json.MarshalIndent(sweep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "bler_sweep.json"), append(doc, '\n'), 0o644)
}
