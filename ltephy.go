// Package ltephy is an open LTE Uplink Receiver PHY benchmark with
// subframe-based power management — a Go reproduction of Själander, McKee,
// Brauer, Engdal and Vajda, "An LTE Uplink Receiver PHY Benchmark and
// Subframe-Based Power Management" (ISPASS 2012).
//
// The module contains four layers, re-exported here as the supported
// public surface:
//
//   - The uplink receiver itself: per-user baseband processing (channel
//     estimation, MMSE combining, SC-FDMA despread, deinterleave, soft
//     demap, turbo decode, CRC) with a synthetic transmitter for
//     verifiable end-to-end input. See Process, Generate, UserParams.
//   - The parallel runtime: a work-stealing worker pool and a maintenance-
//     thread dispatcher, validated against the serial reference receiver.
//     See NewPool, NewDispatcher, Verify.
//   - The workload models: the paper's randomised input parameter model
//     with its triangular load ramp, steady-state calibration model, and
//     recorded traces. See NewRandomModel, NewSteadyModel.
//   - The power-management study: the TILEPro64-substitute simulator, the
//     subframe workload estimator (Eqs. 3-5) and the power/power-gating
//     models (Eqs. 6-9), plus drivers that regenerate every figure and
//     table of the paper's evaluation. See Calibrate, SimRun, NewSuite.
//
// The underlying implementations live in internal/ packages; the aliases
// below are the stable import surface for downstream users.
package ltephy

import (
	"time"

	"ltephy/internal/amc"
	"ltephy/internal/estimator"
	"ltephy/internal/experiments"
	"ltephy/internal/params"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/power"
	"ltephy/internal/rng"
	"ltephy/internal/sched"
	"ltephy/internal/sim"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

// Modulation schemes (TS 36.211 uplink constellations).
type Modulation = modulation.Scheme

// The three modulation schemes the paper's parameter model selects.
const (
	QPSK  = modulation.QPSK
	QAM16 = modulation.QAM16
	QAM64 = modulation.QAM64
)

// Receiver types.
type (
	// UserParams are a scheduled user's grant: PRBs, layers, modulation.
	UserParams = uplink.UserParams
	// UserData is one user's frequency-domain receive samples (plus
	// optional ground truth from the synthetic transmitter).
	UserData = uplink.UserData
	// Subframe is the per-millisecond unit of work.
	Subframe = uplink.Subframe
	// UserResult is the outcome of processing one user.
	UserResult = uplink.UserResult
	// ReceiverConfig selects antennas, turbo mode and interleaving.
	ReceiverConfig = uplink.ReceiverConfig
	// UserJob exposes the paper's task granularity for custom schedulers.
	UserJob = uplink.UserJob
)

// Turbo decoding modes.
const (
	// TurboPassthrough reproduces the paper (decode is a pass-through).
	TurboPassthrough = uplink.TurboPassthrough
	// TurboFull runs the real 3GPP turbo decoder.
	TurboFull = uplink.TurboFull
)

// Swappable receiver modules (the paper's "modules can easily be
// replaced" seam).
const (
	CombinerMMSE = uplink.CombinerMMSE
	CombinerZF   = uplink.CombinerZF
	CombinerMRC  = uplink.CombinerMRC
	CombinerIRC  = uplink.CombinerIRC

	ChanEstWindowed = uplink.ChanEstWindowed
	ChanEstLS       = uplink.ChanEstLS
)

// DefaultReceiverConfig returns the paper-faithful receiver setup.
func DefaultReceiverConfig() ReceiverConfig { return uplink.DefaultConfig() }

// Process runs the serial reference receiver over one user.
func Process(cfg ReceiverConfig, u *UserData) (UserResult, error) { return uplink.Process(cfg, u) }

// ProcessSubframe serially processes a whole subframe.
func ProcessSubframe(cfg ReceiverConfig, sf *Subframe) ([]UserResult, error) {
	return uplink.ProcessSubframe(cfg, sf)
}

// NewUserJob builds the staged job a custom scheduler can drive.
func NewUserJob(cfg ReceiverConfig, u *UserData) (*UserJob, error) { return uplink.NewUserJob(cfg, u) }

// Transmitter (synthetic input generation).
type TXConfig = tx.Config

// DefaultTXConfig pairs the default receiver with a 25 dB SNR channel.
func DefaultTXConfig() TXConfig { return tx.DefaultConfig() }

// Generate synthesises one user's subframe input through a fading MIMO
// channel, with ground truth attached for verification.
func Generate(cfg TXConfig, p UserParams, r *RNG) (*UserData, error) { return tx.Generate(cfg, p, r) }

// GenerateSubframe synthesises input for a full scheduling decision.
func GenerateSubframe(cfg TXConfig, seq int64, users []UserParams, r *RNG) (*Subframe, error) {
	return tx.GenerateSubframe(cfg, seq, users, r)
}

// RNG is the deterministic generator used throughout the benchmark.
type RNG = rng.RNG

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Workload models.
type (
	// Model yields each subframe's scheduled users.
	Model = params.Model
	// Trace is a recorded model output for identical replay.
	Trace = params.Trace
)

// NewRandomModel returns the paper's Section V-A parameter model.
func NewRandomModel(seed uint64) Model { return params.NewRandom(seed) }

// NewRandomModelCompressed compresses the 68,000-subframe load ramp by the
// given factor (for fast experiment presets).
func NewRandomModelCompressed(seed uint64, factor int) Model {
	return params.NewRandomCompressed(seed, factor)
}

// NewSteadyModel returns the fixed-configuration calibration model.
func NewSteadyModel(p UserParams) (Model, error) { return params.NewSteady(p) }

// RecordTrace captures n subframes from a model for replay.
func RecordTrace(m Model, n int) *Trace { return params.Record(m, n) }

// Parallel runtime.
type (
	// PoolConfig configures the work-stealing worker pool.
	PoolConfig = sched.Config
	// Pool is the work-stealing runtime (the paper's Pthreads framework).
	Pool = sched.Pool
	// DispatcherConfig configures the maintenance thread.
	DispatcherConfig = sched.DispatcherConfig
	// Dispatcher produces and dispatches subframes every DELTA.
	Dispatcher = sched.Dispatcher
	// Collector gathers results for verification.
	Collector = sched.Collector
	// WorkerStats are per-worker activity counters (Eqs. 1-2).
	WorkerStats = sched.WorkerStats
	// RunOptions controls a timed dispatcher run.
	RunOptions = sched.RunOptions
)

// SchedActivity computes the Eq. 2 activity of a native pool run over a
// wall-clock window from two stats snapshots.
func SchedActivity(before, after []WorkerStats, wall time.Duration) float64 {
	return sched.Activity(before, after, wall)
}

// DefaultPoolConfig sizes the pool to the host.
func DefaultPoolConfig() PoolConfig { return sched.DefaultPoolConfig() }

// NewPool starts the worker pool.
func NewPool(cfg PoolConfig) (*Pool, error) { return sched.NewPool(cfg) }

// DefaultDispatcherConfig mirrors the paper's evaluation setup.
func DefaultDispatcherConfig() DispatcherConfig { return sched.DefaultDispatcherConfig() }

// NewDispatcher returns a maintenance-thread dispatcher.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher { return sched.NewDispatcher(cfg) }

// NewCollector returns an empty result collector.
func NewCollector() *Collector { return sched.NewCollector() }

// Verify processes a trace serially and in parallel and reports the first
// mismatch (the paper's Section IV-D validation).
func Verify(poolCfg PoolConfig, dispCfg DispatcherConfig, trace *Trace) error {
	return sched.Verify(poolCfg, dispCfg, trace)
}

// Simulator, estimator and power model.
type (
	// SimConfig parameterises the TILEPro64-substitute simulator.
	SimConfig = sim.Config
	// SimResult is a simulation's activity/occupancy output.
	SimResult = sim.Result
	// Policy is a core-deactivation strategy.
	Policy = sim.Policy
	// Calibration holds the estimator's fitted k coefficients (Fig. 11).
	Calibration = estimator.Calibration
	// PowerParams are the power-model constants.
	PowerParams = power.Params
)

// The paper's four deactivation policies, plus the DVFS extension.
const (
	NONAP   = sim.NONAP
	IDLE    = sim.IDLE
	NAP     = sim.NAP
	NAPIDLE = sim.NAPIDLE
	DVFS    = sim.DVFS
)

// DefaultSimConfig returns the paper's 62-worker, 5 ms setup.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// SimRun simulates n subframes from a model.
func SimRun(cfg SimConfig, m Model, n int) (*SimResult, error) { return sim.Run(cfg, m, n) }

// Calibrate fits the workload estimator on the simulator (Section VI-A).
func Calibrate(cfg SimConfig, opts estimator.Options) (*Calibration, error) {
	return estimator.Calibrate(cfg, opts)
}

// CalibrationOptions controls the calibration sweep.
type CalibrationOptions = estimator.Options

// DefaultPowerParams returns the calibrated TILEPro64 power constants.
func DefaultPowerParams() PowerParams { return power.Default() }

// PowerSeries converts a simulation into a per-window power trace.
func PowerSeries(res *SimResult, p PowerParams) ([]float64, error) { return power.Series(res, p) }

// Experiments (paper figures and tables).
type (
	// ExperimentConfig scales the experiment suite.
	ExperimentConfig = experiments.Config
	// ExperimentSuite caches the heavy shared artifacts.
	ExperimentSuite = experiments.Suite
	// Dataset is one regenerated figure or table.
	Dataset = experiments.Dataset
)

// FullExperiments is the paper-exact configuration; QuickExperiments the
// compressed fast preset.
func FullExperiments() ExperimentConfig  { return experiments.Full() }
func QuickExperiments() ExperimentConfig { return experiments.Quick() }

// NewSuite prepares an experiment suite.
func NewSuite(cfg ExperimentConfig) (*ExperimentSuite, error) { return experiments.NewSuite(cfg) }

// Transport-format and HARQ surface (extensions; see internal/uplink).
type (
	// TransportFormat maps a payload onto a physical allocation.
	TransportFormat = uplink.TransportFormat
	// HARQProcess soft-combines retransmissions (incremental redundancy).
	HARQProcess = uplink.HARQProcess
)

// NewTransportFormatRate computes a rate-matched TurboFull transport format.
func NewTransportFormatRate(p UserParams, mode uplink.TurboMode, rate float64) (TransportFormat, error) {
	return uplink.NewTransportFormatRate(p, mode, rate)
}

// RVForRound returns the standard redundancy-version cycling (0, 2, 3, 1).
func RVForRound(n int) int { return uplink.RVForRound(n) }

// GenerateWithPayload transmits a specific payload with a redundancy
// version — the transmitter half of a HARQ retransmission.
func GenerateWithPayload(cfg TXConfig, p UserParams, r *RNG, payload []uint8, rv int) (*UserData, error) {
	return tx.GenerateWithPayload(cfg, p, r, payload, rv)
}

// Adaptive modulation and coding (extension; see internal/amc).
type MCS = amc.MCS

// SelectMCS picks the modulation-and-coding scheme for a channel SNR with
// the given back-off margin (dB).
func SelectMCS(snrdB, marginDB float64) MCS { return amc.Select(snrdB, marginDB) }

// MCSTable returns the AMC ladder in increasing spectral efficiency.
func MCSTable() []MCS { return amc.Table }
