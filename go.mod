module ltephy

go 1.22
