package estimator

import (
	"fmt"

	"ltephy/internal/uplink"
)

// Adaptive wraps a Calibration with an online multiplicative bias
// correction learned from estimated-vs-measured activity feedback. The
// paper calibrates once and trusts the table; a deployed base station
// would close the loop — core aging, temperature-dependent IPC and
// software updates all drift the k coefficients. A single gain suffices
// because Eq. 3's errors are dominated by a common scale factor, not
// per-configuration shape (extension; tested against a deliberately
// mis-scaled table).
type Adaptive struct {
	Cal *Calibration
	// Alpha is the EWMA weight of each feedback observation (0, 1].
	Alpha float64
	gain  float64
}

// NewAdaptive wraps a calibration; alpha controls how fast feedback is
// absorbed (0.05-0.2 is sensible for once-per-second observations).
func NewAdaptive(cal *Calibration, alpha float64) (*Adaptive, error) {
	if cal == nil {
		return nil, fmt.Errorf("estimator: nil calibration")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("estimator: alpha %g outside (0, 1]", alpha)
	}
	return &Adaptive{Cal: cal, Alpha: alpha, gain: 1}, nil
}

// Gain returns the current multiplicative correction (1 = trust the table).
func (a *Adaptive) Gain() float64 { return a.gain }

// Estimate returns the bias-corrected Eq. 4 estimate.
func (a *Adaptive) Estimate(users []uplink.UserParams) float64 {
	return a.gain * a.Cal.Estimate(users)
}

// ActiveCores is the bias-corrected Eq. 5.
func (a *Adaptive) ActiveCores(users []uplink.UserParams, maxCores int) int {
	n := int(a.Estimate(users)*float64(maxCores)) + Margin
	if n < 1 {
		n = 1
	}
	if n > maxCores {
		n = maxCores
	}
	return n
}

// Observe feeds back one (estimated, measured) activity pair — typically
// per one-second window, like the paper's Fig. 12 comparison. Ratios are
// clamped so a single pathological window cannot destabilise the gain.
func (a *Adaptive) Observe(estimated, measured float64) {
	const minSignal = 0.01
	if estimated < minSignal || measured < 0 {
		return // too little signal to learn from
	}
	ratio := measured / estimated
	if ratio < 0.5 {
		ratio = 0.5
	}
	if ratio > 2 {
		ratio = 2
	}
	a.gain *= 1 + a.Alpha*(ratio-1)
	// Keep the correction within an order of magnitude of trust.
	if a.gain < 0.2 {
		a.gain = 0.2
	}
	if a.gain > 5 {
		a.gain = 5
	}
}
