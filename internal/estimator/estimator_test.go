package estimator

import (
	"math"
	"testing"

	"ltephy/internal/params"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/sim"
	"ltephy/internal/uplink"
)

// coarseCalibration runs a fast sweep shared by the tests in this file.
func coarseCalibration(t *testing.T) *Calibration {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.WindowSec = 0.5
	cal, err := Calibrate(cfg, Options{PRBStep: 50, Windows: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func TestCalibrateProducesAllCurves(t *testing.T) {
	cal := coarseCalibration(t)
	if len(cal.Coeffs) != 12 {
		t.Fatalf("got %d coefficients, want 12 (4 layers x 3 modulations)", len(cal.Coeffs))
	}
	for _, k := range cal.Keys() {
		if cal.Coeffs[k] <= 0 {
			t.Errorf("%+v: non-positive coefficient %g", k, cal.Coeffs[k])
		}
		if len(cal.Curves[k]) == 0 {
			t.Errorf("%+v: no curve points", k)
		}
	}
}

// TestCoefficientOrdering mirrors Fig. 11's stacking: more layers and
// higher-order modulation give steeper activity-per-PRB slopes.
func TestCoefficientOrdering(t *testing.T) {
	cal := coarseCalibration(t)
	for _, mod := range []modulation.Scheme{modulation.QPSK, modulation.QAM16, modulation.QAM64} {
		for layers := 2; layers <= 4; layers++ {
			hi := cal.Coeffs[Key{layers, mod}]
			lo := cal.Coeffs[Key{layers - 1, mod}]
			if hi <= lo {
				t.Errorf("%v: k(%d layers)=%g not above k(%d layers)=%g", mod, layers, hi, layers-1, lo)
			}
		}
	}
	for layers := 1; layers <= 4; layers++ {
		if cal.Coeffs[Key{layers, modulation.QAM64}] <= cal.Coeffs[Key{layers, modulation.QPSK}] {
			t.Errorf("layers=%d: 64QAM slope not above QPSK", layers)
		}
	}
}

// TestLinearityOfCurves: the fit residuals should be small relative to the
// measured activity — the property that makes Eq. 3 workable (the paper's
// Fig. 11 shows near-perfect lines).
func TestLinearityOfCurves(t *testing.T) {
	cal := coarseCalibration(t)
	for _, k := range cal.Keys() {
		top := cal.Curves[k][len(cal.Curves[k])-1].Activity
		if e := cal.MaxAbsError(k); e > 0.05+0.1*top {
			t.Errorf("%+v: max fit error %g too large for curve topping at %g", k, e, top)
		}
	}
}

func TestEstimateAdditive(t *testing.T) {
	cal := coarseCalibration(t)
	a := uplink.UserParams{PRB: 50, Layers: 2, Mod: modulation.QAM16}
	b := uplink.UserParams{PRB: 30, Layers: 1, Mod: modulation.QPSK}
	got := cal.Estimate([]uplink.UserParams{a, b})
	want := cal.EstimateUser(a) + cal.EstimateUser(b)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Estimate = %g, want %g", got, want)
	}
	if cal.Estimate(nil) != 0 {
		t.Error("empty subframe estimate not zero")
	}
}

func TestActiveCoresEquation(t *testing.T) {
	cal := &Calibration{
		Workers: 62,
		Coeffs: map[Key]float64{
			{1, modulation.QPSK}: 0.005, // 100 PRB -> 0.5 activity
		},
	}
	users := []uplink.UserParams{{PRB: 100, Layers: 1, Mod: modulation.QPSK}}
	// Eq. 5: 0.5*62 + 2 = 33.
	if got := cal.ActiveCores(users, 62); got != 33 {
		t.Errorf("ActiveCores = %d, want 33", got)
	}
	// Clamping at both ends.
	if got := cal.ActiveCores(nil, 62); got != Margin {
		t.Errorf("ActiveCores(no users) = %d, want %d", got, Margin)
	}
	heavy := []uplink.UserParams{{PRB: 200, Layers: 1, Mod: modulation.QPSK},
		{PRB: 200, Layers: 1, Mod: modulation.QPSK}}
	cal.Coeffs[Key{1, modulation.QPSK}] = 0.01
	if got := cal.ActiveCores(heavy, 62); got != 62 {
		t.Errorf("ActiveCores over capacity = %d, want clamp to 62", got)
	}
}

// TestEstimationAccuracyOnTrace is Fig. 12 in miniature: calibrate, run a
// random-model trace on the simulator, and compare per-window estimated
// vs measured activity. The paper reports 1.2% average and 5.4% maximum
// error; the coarse test calibration stays within looser but still tight
// bounds.
func TestEstimationAccuracyOnTrace(t *testing.T) {
	cal := coarseCalibration(t)
	cfg := sim.DefaultConfig()
	cfg.WindowSec = 1.0

	m := params.NewRandom(9)
	// Mid-ramp slice: representative mixed workload.
	for i := 0; i < params.RampLength/2; i++ {
		m.Next()
	}
	trace := params.Record(m, 3000)

	perWindow := int(cfg.WindowSec / cfg.PeriodSec)
	est := make([]float64, 0)
	trace.Reset()
	for w := 0; w*perWindow < len(trace.Subframes); w++ {
		var sum float64
		n := 0
		for s := w * perWindow; s < (w+1)*perWindow && s < len(trace.Subframes); s++ {
			sum += cal.Estimate(trace.Subframes[s])
			n++
		}
		if n == perWindow {
			est = append(est, sum/float64(n))
		}
	}

	trace.Reset()
	res, err := sim.Run(cfg, trace, len(trace.Subframes))
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows() < 10 {
		t.Fatalf("only %d windows", res.Windows())
	}
	var worst, sum float64
	count := 0
	for i := 1; i < res.Windows() && i < len(est); i++ { // skip fill window
		d := math.Abs(est[i] - res.Activity(i))
		if d > worst {
			worst = d
		}
		sum += d
		count++
	}
	avg := sum / float64(count)
	if avg > 0.05 {
		t.Errorf("average estimation error %.3f, want < 0.05 (paper: 0.012)", avg)
	}
	if worst > 0.12 {
		t.Errorf("max estimation error %.3f, want < 0.12 (paper: 0.054)", worst)
	}
}

func TestCalibrateRejectsBadInputs(t *testing.T) {
	cfg := sim.DefaultConfig()
	if _, err := Calibrate(cfg, Options{PRBStep: 0}); err == nil {
		t.Error("zero PRB step accepted")
	}
	cfg.Policy = sim.IDLE
	if _, err := Calibrate(cfg, Options{PRBStep: 100}); err == nil {
		t.Error("non-NONAP calibration accepted")
	}
}
