// Package estimator implements the paper's subframe workload estimator
// (Section VI-A): steady-state calibration of activity versus PRB count
// for every (layers, modulation) pair (Fig. 11), a linear per-user model
//
//	estimated_user_activity = PRBs * k_LM          (Eq. 3)
//	estimated_activity      = sum over users       (Eq. 4)
//
// and the active-core rule
//
//	active_cores = estimated_activity * max_cores + margin   (Eq. 5)
//
// Calibration is performed against the simulator exactly the way the paper
// calibrates against the TILEPro64: by running fixed configurations and
// measuring activity, not by reading the cost model's coefficients — the
// estimator must work from observable behaviour only.
package estimator

import (
	"fmt"
	"sort"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/sim"
	"ltephy/internal/uplink"
)

// Key identifies one calibration curve: a (layers, modulation) pair.
type Key struct {
	Layers int
	Mod    modulation.Scheme
}

// Point is one calibration measurement.
type Point struct {
	PRB      int
	Activity float64
}

// Margin is the paper's over-provisioning: "the system is over-provisioned
// with two cores" (Eq. 5).
const Margin = 2

// Calibration holds the fitted coefficients and the raw curves (Fig. 11).
type Calibration struct {
	Workers int
	// Coeffs[k] is the activity contributed per PRB for configuration k.
	Coeffs map[Key]float64
	// Curves retains the measured points for reporting.
	Curves map[Key][]Point
}

// Keys returns all calibrated (layers, modulation) pairs in a stable order.
func (c *Calibration) Keys() []Key {
	keys := make([]Key, 0, len(c.Coeffs))
	for k := range c.Coeffs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Mod != keys[j].Mod {
			return keys[i].Mod < keys[j].Mod
		}
		return keys[i].Layers < keys[j].Layers
	})
	return keys
}

// Options controls the calibration sweep.
type Options struct {
	// PRBStep is the sweep granularity; the paper sweeps 2..200 in steps
	// of 2 (100 points per curve). Coarser steps calibrate faster with
	// little accuracy loss thanks to the linear fit.
	PRBStep int
	// Windows is the number of measurement windows per point.
	Windows int
}

// DefaultOptions matches the paper's sweep.
func DefaultOptions() Options { return Options{PRBStep: 2, Windows: 1} }

// Calibrate sweeps every (layers, modulation, PRB) configuration on the
// simulator and fits k_LM by least squares through the origin.
func Calibrate(cfg sim.Config, opts Options) (*Calibration, error) {
	if opts.PRBStep < 1 {
		return nil, fmt.Errorf("estimator: PRB step %d", opts.PRBStep)
	}
	if opts.Windows < 1 {
		opts.Windows = 1
	}
	if cfg.Policy != sim.NONAP {
		return nil, fmt.Errorf("estimator: calibrate with NONAP (all cores measuring), got %v", cfg.Policy)
	}
	cal := &Calibration{
		Workers: cfg.Workers,
		Coeffs:  make(map[Key]float64),
		Curves:  make(map[Key][]Point),
	}
	for layers := 1; layers <= uplink.MaxLayers; layers++ {
		for _, mod := range []modulation.Scheme{modulation.QPSK, modulation.QAM16, modulation.QAM64} {
			key := Key{Layers: layers, Mod: mod}
			var sxy, sxx float64
			prbs := make([]int, 0, uplink.MaxPRBPool/opts.PRBStep+2)
			for prb := uplink.MinPRB; prb <= uplink.MaxPRBPool; prb += opts.PRBStep {
				prbs = append(prbs, prb)
			}
			// Always measure the full pool so the curve covers its range
			// even under coarse sweeps.
			if prbs[len(prbs)-1] != uplink.MaxPRBPool {
				prbs = append(prbs, uplink.MaxPRBPool)
			}
			for _, prb := range prbs {
				act, err := sim.SteadyActivity(cfg, uplink.UserParams{
					PRB: prb, Layers: layers, Mod: mod,
				}, opts.Windows)
				if err != nil {
					return nil, fmt.Errorf("estimator: calibrating %v at %d PRB: %w", key, prb, err)
				}
				cal.Curves[key] = append(cal.Curves[key], Point{PRB: prb, Activity: act})
				sxy += float64(prb) * act
				sxx += float64(prb) * float64(prb)
			}
			cal.Coeffs[key] = sxy / sxx
		}
	}
	return cal, nil
}

// EstimateUser implements Eq. 3.
func (c *Calibration) EstimateUser(p uplink.UserParams) float64 {
	return float64(p.PRB) * c.Coeffs[Key{Layers: p.Layers, Mod: p.Mod}]
}

// Estimate implements Eq. 4 for one subframe's users.
func (c *Calibration) Estimate(users []uplink.UserParams) float64 {
	var sum float64
	for _, p := range users {
		sum += c.EstimateUser(p)
	}
	return sum
}

// ActiveCores implements Eq. 5 with the paper's two-core margin, clamped
// to [1, maxCores].
func (c *Calibration) ActiveCores(users []uplink.UserParams, maxCores int) int {
	return c.ActiveCoresWithMargin(users, maxCores, Margin)
}

// ActiveCoresWithMargin is Eq. 5 with a configurable over-provisioning
// margin (the ablation benchmarks sweep it).
func (c *Calibration) ActiveCoresWithMargin(users []uplink.UserParams, maxCores, margin int) int {
	n := int(c.Estimate(users)*float64(maxCores)) + margin
	if n < 1 {
		n = 1
	}
	if n > maxCores {
		n = maxCores
	}
	return n
}

// ActiveCoresFunc adapts the calibration to the simulator's hook.
func (c *Calibration) ActiveCoresFunc(maxCores int) func(int64, []uplink.UserParams) int {
	return func(_ int64, users []uplink.UserParams) int {
		return c.ActiveCores(users, maxCores)
	}
}

// EstimateActivityFunc adapts Eq. 4 to the simulator's estimator-error
// hook (sim.Config.EstimateActivity), pairing each subframe's estimate
// with the activity the simulator measures for its dispatch period.
func (c *Calibration) EstimateActivityFunc() func(int64, []uplink.UserParams) float64 {
	return func(_ int64, users []uplink.UserParams) float64 {
		return c.Estimate(users)
	}
}

// EstimateSubframe implements Eq. 4 over a materialised subframe — the
// form the dispatcher's estimator-error hook (sched.RunOptions.Estimate)
// takes.
func (c *Calibration) EstimateSubframe(sf *uplink.Subframe) float64 {
	var sum float64
	for _, u := range sf.Users {
		sum += c.EstimateUser(u.Params)
	}
	return sum
}

// MaxAbsError reports the largest |measured−fit| deviation across all
// calibration points of a key, normalised to activity units; it quantifies
// how linear the platform actually is (the paper's fit error feeds the
// Fig. 12 estimation error).
func (c *Calibration) MaxAbsError(k Key) float64 {
	var worst float64
	for _, pt := range c.Curves[k] {
		fit := float64(pt.PRB) * c.Coeffs[k]
		if d := pt.Activity - fit; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	return worst
}
