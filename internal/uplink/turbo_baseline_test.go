package uplink_test

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"ltephy/internal/phy/turbo"
	"ltephy/internal/phy/workspace"
)

// TestWriteTurboBenchBaseline records the line-rate turbo baseline to the
// JSON file named by LTEPHY_BENCH_TURBO_OUT: the full-turbo end-to-end
// subframe and the int8 sliding-window kernel at the smallest and largest
// interesting block sizes. Skipped unless the variable is set;
// `make bench-turbo` drives it, and `make bench-compare` gates against
// the committed figures. The kernel entries mirror BenchmarkDecodeQuant
// in internal/phy/turbo (same sizes, same Eb/N0, no CRC gate, so the
// decode always runs its full 10 half-iterations); decode time is set by
// the block size and iteration budget, not the noise realization, so the
// figures are comparable across the two harnesses.
func TestWriteTurboBenchBaseline(t *testing.T) {
	out := os.Getenv("LTEPHY_BENCH_TURBO_OUT")
	if out == "" {
		t.Skip("set LTEPHY_BENCH_TURBO_OUT=<path> to record the turbo baseline")
	}
	type entry struct {
		NsPerOp     int64 `json:"ns_per_op"`
		BytesPerOp  int64 `json:"bytes_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
	}
	measure := func(f func(*testing.B)) entry {
		r := testing.Benchmark(f)
		return entry{r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp()}
	}
	doc := struct {
		Comment    string           `json:"comment"`
		Go         string           `json:"go"`
		CPU        string           `json:"cpu"`
		Date       string           `json:"date"`
		Benchmarks map[string]entry `json:"benchmarks"`
	}{
		Comment: "Line-rate turbo baseline: full-turbo subframe e2e plus the int8 " +
			"sliding-window kernel (serial, full iteration budget). allocs_per_op is " +
			"the tracked regression metric; compare with `make bench-turbo` output.",
		Go:   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		CPU:  cpuModel(),
		Date: time.Now().Format("2006-01-02"),
		Benchmarks: map[string]entry{
			"BenchmarkSubframeE2ETurboFull": measure(BenchmarkSubframeE2ETurboFull),
			"BenchmarkDecodeQuant/K512":     measure(benchDecodeQuantK(512)),
			"BenchmarkDecodeQuant/K6144":    measure(benchDecodeQuantK(6144)),
		},
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: SubframeE2ETurboFull %d ns/op %d allocs/op, DecodeQuant/K6144 %d ns/op", out,
		doc.Benchmarks["BenchmarkSubframeE2ETurboFull"].NsPerOp,
		doc.Benchmarks["BenchmarkSubframeE2ETurboFull"].AllocsPerOp,
		doc.Benchmarks["BenchmarkDecodeQuant/K6144"].NsPerOp)
}

// benchDecodeQuantK reproduces the BenchmarkDecodeQuant body for one block
// size: fixed-seed AWGN LLRs at 1.5 dB Eb/N0 through the arena-backed int8
// decoder with the default 5-iteration budget and no early-stop check.
func benchDecodeQuantK(k int) func(*testing.B) {
	return func(b *testing.B) {
		c, err := turbo.NewCodec(k)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		info := make([]uint8, k)
		for i := range info {
			info[i] = uint8(rng.Intn(2))
		}
		coded := c.Encode(info)
		esn0 := math.Pow(10, 1.5/10) / 3
		sigma := math.Sqrt(1 / (2 * esn0))
		llr := make([]float64, len(coded))
		for i, bit := range coded {
			x := 1.0
			if bit == 1 {
				x = -1
			}
			llr[i] = 2 * (x + sigma*rng.NormFloat64()) / (sigma * sigma)
		}
		ws := workspace.New()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := ws.Mark()
			c.DecodeQuantIn(ws, llr, turbo.DecodeOpts{Iterations: 5})
			ws.Release(m)
		}
		b.SetBytes(int64(k) / 8)
	}
}
