package uplink_test

import (
	"math"
	"testing"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/phy/turbo"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

func TestUserParamsValidate(t *testing.T) {
	good := uplink.UserParams{ID: 1, PRB: 10, Layers: 2, Mod: modulation.QAM16}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []uplink.UserParams{
		{PRB: 1, Layers: 1, Mod: modulation.QPSK},
		{PRB: 201, Layers: 1, Mod: modulation.QPSK},
		{PRB: 10, Layers: 0, Mod: modulation.QPSK},
		{PRB: 10, Layers: 5, Mod: modulation.QPSK},
		{PRB: 10, Layers: 1, Mod: modulation.Scheme(9)},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestSubcarriers(t *testing.T) {
	p := uplink.UserParams{PRB: 25}
	if got := p.Subcarriers(); got != 300 {
		t.Errorf("Subcarriers() = %d, want 300", got)
	}
}

func TestTransportFormatPassthrough(t *testing.T) {
	p := uplink.UserParams{PRB: 4, Layers: 2, Mod: modulation.QAM16}
	f, err := uplink.NewTransportFormat(p, uplink.TurboPassthrough)
	if err != nil {
		t.Fatal(err)
	}
	wantSyms := 12 * 2 * 48
	if f.Symbols != wantSyms {
		t.Errorf("Symbols = %d, want %d", f.Symbols, wantSyms)
	}
	if f.TotalBits != wantSyms*4 {
		t.Errorf("TotalBits = %d, want %d", f.TotalBits, wantSyms*4)
	}
	if f.PayloadBits != f.TotalBits-24 {
		t.Errorf("PayloadBits = %d, want TotalBits-24 = %d", f.PayloadBits, f.TotalBits-24)
	}
	if f.Seg != nil {
		t.Error("passthrough format has a segmentation plan")
	}
}

func TestTransportFormatFullFits(t *testing.T) {
	for _, p := range []uplink.UserParams{
		{PRB: 2, Layers: 1, Mod: modulation.QPSK},
		{PRB: 10, Layers: 2, Mod: modulation.QAM16},
		{PRB: 50, Layers: 4, Mod: modulation.QAM64},
		{PRB: 200, Layers: 4, Mod: modulation.QAM64},
	} {
		f, err := uplink.NewTransportFormat(p, uplink.TurboFull)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if f.CodedBits > f.TotalBits {
			t.Errorf("%+v: coded %d exceeds capacity %d", p, f.CodedBits, f.TotalBits)
		}
		if f.PayloadBits < f.TotalBits/4 {
			t.Errorf("%+v: payload %d suspiciously small for capacity %d (rate-1/3 code)",
				p, f.PayloadBits, f.TotalBits)
		}
		// Maximality: one more payload bit must not fit. (The padding can
		// still be large when segmentation bumps every block's K at once.)
		bigger, err := turbo.NewSegmentation(f.PayloadBits + 1 + 24)
		if err != nil {
			t.Fatal(err)
		}
		if bigger.CodedLen() <= f.TotalBits {
			t.Errorf("%+v: payload %d not maximal; %d more bits would fit",
				p, f.PayloadBits, bigger.CodedLen())
		}
	}
}

func TestTransportRoundTripBits(t *testing.T) {
	r := rng.New(1)
	for _, mode := range []uplink.TurboMode{uplink.TurboPassthrough, uplink.TurboFull} {
		p := uplink.UserParams{PRB: 6, Layers: 1, Mod: modulation.QAM16}
		f, err := uplink.NewTransportFormat(p, mode)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]uint8, f.PayloadBits)
		for i := range payload {
			payload[i] = r.Bit()
		}
		coded := f.EncodeTransportBlock(payload)
		if len(coded) != f.TotalBits {
			t.Fatalf("mode %v: coded length %d, want %d", mode, len(coded), f.TotalBits)
		}
		llr := make([]float64, len(coded))
		for i, b := range coded {
			if b == 0 {
				llr[i] = 5
			} else {
				llr[i] = -5
			}
		}
		got, ok := f.DecodeTransportBlock(llr, 4)
		if !ok {
			t.Errorf("mode %v: CRC failed on clean round trip", mode)
		}
		for i := range payload {
			if got[i] != payload[i] {
				t.Fatalf("mode %v: payload bit %d differs", mode, i)
			}
		}
	}
}

// TestEndToEndBER is the central correctness test for the paper-faithful
// (pass-through turbo) receiver: across every (layers, modulation)
// combination the parameter model can produce, the payload BER must stay
// within the uncoded-MIMO fade floor and the channel estimate must be
// accurate. An outright CRC pass is only guaranteed without coding for the
// well-conditioned low-layer cases; high-layer spatial multiplexing relies
// on the turbo code (covered by TestEndToEndCRCFullTurbo).
func TestEndToEndBER(t *testing.T) {
	r := rng.New(2)
	cfg := tx.DefaultConfig()
	for _, layers := range []int{1, 2, 3, 4} {
		for _, mod := range []modulation.Scheme{modulation.QPSK, modulation.QAM16, modulation.QAM64} {
			p := uplink.UserParams{ID: 7, PRB: 6, Layers: layers, Mod: mod}
			u, err := tx.Generate(cfg, p, r)
			if err != nil {
				t.Fatal(err)
			}
			res, err := uplink.Process(cfg.Receiver, u)
			if err != nil {
				t.Fatal(err)
			}
			errs := 0
			for i := range u.Payload {
				if res.Bits[i] != u.Payload[i] {
					errs++
				}
			}
			ber := float64(errs) / float64(len(u.Payload))
			if ber > 0.05 {
				t.Errorf("layers=%d mod=%v: BER %g exceeds 5%% at %g dB SNR",
					layers, mod, ber, cfg.SNRdB)
			}
			if layers <= 2 && !res.CRCOK {
				t.Errorf("layers=%d mod=%v: CRC failed at %g dB SNR", layers, mod, cfg.SNRdB)
			}
			if math.IsNaN(res.ChannelMSE) || res.ChannelMSE > 0.05 {
				t.Errorf("layers=%d mod=%v: channel MSE %g too high", layers, mod, res.ChannelMSE)
			}
		}
	}
}

// TestEndToEndCRCFullTurbo: with the real turbo code, every combination —
// including 4-layer 64-QAM through its MMSE fades — must decode cleanly.
func TestEndToEndCRCFullTurbo(t *testing.T) {
	r := rng.New(2)
	cfg := tx.DefaultConfig()
	cfg.Receiver.Turbo = uplink.TurboFull
	for _, layers := range []int{1, 2, 3, 4} {
		for _, mod := range []modulation.Scheme{modulation.QPSK, modulation.QAM16, modulation.QAM64} {
			p := uplink.UserParams{ID: 7, PRB: 6, Layers: layers, Mod: mod}
			u, err := tx.Generate(cfg, p, r)
			if err != nil {
				t.Fatal(err)
			}
			res, err := uplink.Process(cfg.Receiver, u)
			if err != nil {
				t.Fatal(err)
			}
			if !res.CRCOK {
				t.Errorf("layers=%d mod=%v: full-turbo CRC failed at %g dB SNR",
					layers, mod, cfg.SNRdB)
				continue
			}
			for i := range u.Payload {
				if res.Bits[i] != u.Payload[i] {
					t.Errorf("layers=%d mod=%v: payload bit %d differs", layers, mod, i)
					break
				}
			}
		}
	}
}

func TestEndToEndFullTurbo(t *testing.T) {
	r := rng.New(3)
	cfg := tx.DefaultConfig()
	cfg.Receiver.Turbo = uplink.TurboFull
	cfg.SNRdB = 10 // the turbo code must survive where passthrough would not
	p := uplink.UserParams{ID: 1, PRB: 8, Layers: 2, Mod: modulation.QAM16}
	u, err := tx.Generate(cfg, p, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := uplink.Process(cfg.Receiver, u)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CRCOK {
		t.Fatal("full turbo decode failed CRC at 10 dB")
	}
	for i := range u.Payload {
		if res.Bits[i] != u.Payload[i] {
			t.Fatalf("payload bit %d differs", i)
		}
	}
}

func TestCRCFailsAtTerribleSNR(t *testing.T) {
	r := rng.New(4)
	cfg := tx.DefaultConfig()
	cfg.SNRdB = -15
	p := uplink.UserParams{ID: 1, PRB: 4, Layers: 1, Mod: modulation.QAM64}
	u, err := tx.Generate(cfg, p, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := uplink.Process(cfg.Receiver, u)
	if err != nil {
		t.Fatal(err)
	}
	if res.CRCOK {
		t.Error("CRC passed at -15 dB SNR; the check is not actually checking")
	}
}

func TestProcessDeterministic(t *testing.T) {
	cfg := tx.DefaultConfig()
	p := uplink.UserParams{ID: 3, PRB: 5, Layers: 2, Mod: modulation.QAM16}
	u, err := tx.Generate(cfg, p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := uplink.Process(cfg.Receiver, u)
	if err != nil {
		t.Fatal(err)
	}
	b, err := uplink.Process(cfg.Receiver, u)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("processing the same data twice gave different results")
	}
}

func TestProcessSubframe(t *testing.T) {
	cfg := tx.DefaultConfig()
	params := []uplink.UserParams{
		{ID: 0, PRB: 4, Layers: 1, Mod: modulation.QPSK},
		{ID: 1, PRB: 6, Layers: 2, Mod: modulation.QAM16},
		{ID: 2, PRB: 2, Layers: 1, Mod: modulation.QAM64},
	}
	sf, err := tx.GenerateSubframe(cfg, 42, params, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	results, err := uplink.ProcessSubframe(cfg.Receiver, sf)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res.Seq != 42 {
			t.Errorf("result %d: Seq = %d", i, res.Seq)
		}
		if res.UserID != params[i].ID {
			t.Errorf("result %d: UserID = %d", i, res.UserID)
		}
		if !res.CRCOK {
			t.Errorf("result %d: CRC failed", i)
		}
	}
	if sf.TotalPRB() != 12 {
		t.Errorf("TotalPRB = %d, want 12", sf.TotalPRB())
	}
}

func TestNewUserJobRejectsMismatches(t *testing.T) {
	cfg := tx.DefaultConfig()
	p := uplink.UserParams{ID: 1, PRB: 3, Layers: 1, Mod: modulation.QPSK}
	u, err := tx.Generate(cfg, p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	rc := cfg.Receiver
	rc.Antennas = 2 // data was generated for 4 antennas
	if _, err := uplink.NewUserJob(rc, u); err == nil {
		t.Error("antenna mismatch accepted")
	}
	rc = cfg.Receiver
	rc.InterleaverColumns = 0
	if _, err := uplink.NewUserJob(rc, u); err == nil {
		t.Error("invalid config accepted")
	}
	u.Params.Layers = 0
	if _, err := uplink.NewUserJob(cfg.Receiver, u); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestChanEstAccuracyImprovesWithSNR pins the estimator chain's physics.
func TestChanEstAccuracyImprovesWithSNR(t *testing.T) {
	mseAt := func(snr float64) float64 {
		cfg := tx.DefaultConfig()
		cfg.SNRdB = snr
		p := uplink.UserParams{ID: 1, PRB: 8, Layers: 2, Mod: modulation.QPSK}
		u, err := tx.Generate(cfg, p, rng.New(8))
		if err != nil {
			t.Fatal(err)
		}
		res, err := uplink.Process(cfg.Receiver, u)
		if err != nil {
			t.Fatal(err)
		}
		return res.ChannelMSE
	}
	lo, hi := mseAt(30), mseAt(5)
	if lo >= hi {
		t.Errorf("channel MSE did not improve with SNR: 30dB %g vs 5dB %g", lo, hi)
	}
	if lo > 1e-2 {
		t.Errorf("channel MSE at 30 dB = %g, want < 1e-2", lo)
	}
}

func TestUserResultEqual(t *testing.T) {
	a := uplink.UserResult{UserID: 1, Seq: 2, CRCOK: true, Bits: []uint8{1, 0, 1}}
	b := uplink.UserResult{UserID: 1, Seq: 2, CRCOK: true, Bits: []uint8{1, 0, 1}}
	if !a.Equal(b) {
		t.Error("identical results not Equal")
	}
	c := b
	c.Bits = []uint8{1, 1, 1}
	if a.Equal(c) {
		t.Error("different bits reported Equal")
	}
	d := b
	d.CRCOK = false
	if a.Equal(d) {
		t.Error("different CRC status reported Equal")
	}
}

func BenchmarkProcessUser(b *testing.B) {
	cfg := tx.DefaultConfig()
	for _, tc := range []struct {
		name string
		p    uplink.UserParams
	}{
		{"small_QPSK_1L", uplink.UserParams{PRB: 4, Layers: 1, Mod: modulation.QPSK}},
		{"mid_16QAM_2L", uplink.UserParams{PRB: 25, Layers: 2, Mod: modulation.QAM16}},
		{"max_64QAM_4L", uplink.UserParams{PRB: 100, Layers: 4, Mod: modulation.QAM64}},
	} {
		u, err := tx.Generate(cfg, tc.p, rng.New(9))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := uplink.Process(cfg.Receiver, u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRateMatchedTransportFormat: the rate-matched TurboFull path fills
// the allocation exactly and carries the requested payload fraction.
func TestRateMatchedTransportFormat(t *testing.T) {
	p := uplink.UserParams{PRB: 10, Layers: 2, Mod: modulation.QAM16}
	for _, rate := range []float64{0.2, 1.0 / 3, 0.5, 0.75} {
		f, err := uplink.NewTransportFormatRate(p, uplink.TurboFull, rate)
		if err != nil {
			t.Fatalf("rate %g: %v", rate, err)
		}
		if f.CodedBits != f.TotalBits {
			t.Errorf("rate %g: coded %d != capacity %d (rate matching must fill exactly)",
				rate, f.CodedBits, f.TotalBits)
		}
		wantPayload := int(rate*float64(f.TotalBits)) - 24
		if f.PayloadBits != wantPayload {
			t.Errorf("rate %g: payload %d, want %d", rate, f.PayloadBits, wantPayload)
		}
	}
	// Out-of-range rates are rejected.
	if _, err := uplink.NewTransportFormatRate(p, uplink.TurboFull, 0.99); err == nil {
		t.Error("rate 0.99 accepted")
	}
	// Rate 0 falls back to the legacy padded format.
	f, err := uplink.NewTransportFormatRate(p, uplink.TurboFull, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rate != 0 || f.CodedBits > f.TotalBits {
		t.Error("rate 0 did not fall back to the padded format")
	}
}

// TestEndToEndRateMatched: a rate-1/2 rate-matched link survives 12 dB
// where uncoded transmission would not, and recovers the exact payload.
func TestEndToEndRateMatched(t *testing.T) {
	r := rng.New(21)
	cfg := tx.DefaultConfig()
	cfg.Receiver.Turbo = uplink.TurboFull
	cfg.Receiver.CodeRate = 0.5
	cfg.SNRdB = 12
	for _, p := range []uplink.UserParams{
		{ID: 1, PRB: 6, Layers: 1, Mod: modulation.QAM16},
		{ID: 2, PRB: 4, Layers: 2, Mod: modulation.QAM64},
	} {
		u, err := tx.Generate(cfg, p, r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := uplink.Process(cfg.Receiver, u)
		if err != nil {
			t.Fatal(err)
		}
		if !res.CRCOK {
			t.Errorf("%+v: rate-1/2 CRC failed at 12 dB", p)
			continue
		}
		for i := range u.Payload {
			if res.Bits[i] != u.Payload[i] {
				t.Fatalf("%+v: payload bit %d differs", p, i)
			}
		}
	}
}

// TestRateMatchedThroughputTradeoff: higher code rate carries more payload
// but needs more SNR — both directions checked at a fixed channel.
func TestRateMatchedThroughputTradeoff(t *testing.T) {
	p := uplink.UserParams{ID: 1, PRB: 8, Layers: 1, Mod: modulation.QAM16}
	payloadAt := func(rate float64) int {
		f, err := uplink.NewTransportFormatRate(p, uplink.TurboFull, rate)
		if err != nil {
			t.Fatal(err)
		}
		return f.PayloadBits
	}
	if payloadAt(0.75) <= payloadAt(0.5) || payloadAt(0.5) <= payloadAt(0.25) {
		t.Error("payload not increasing with code rate")
	}
	// At a brutally low SNR the high-rate link must fail while the
	// low-rate link survives (seeded, deterministic).
	runAt := func(rate float64, snr float64) bool {
		cfg := tx.DefaultConfig()
		cfg.Receiver.Turbo = uplink.TurboFull
		cfg.Receiver.CodeRate = rate
		cfg.SNRdB = snr
		u, err := tx.Generate(cfg, p, rng.New(33))
		if err != nil {
			t.Fatal(err)
		}
		res, err := uplink.Process(cfg.Receiver, u)
		if err != nil {
			t.Fatal(err)
		}
		return res.CRCOK
	}
	if !runAt(0.2, 3) {
		t.Error("rate-0.2 link failed at 3 dB")
	}
	if runAt(0.9, 3) {
		t.Error("rate-0.9 link passed at 3 dB; puncturing is not actually puncturing")
	}
}

// TestNoiseEstimation: the slot-difference noise estimator must track the
// true noise variance across SNRs and keep the link decodable without the
// genie value.
func TestNoiseEstimation(t *testing.T) {
	for _, snr := range []float64{10, 20, 30} {
		cfg := tx.DefaultConfig()
		cfg.SNRdB = snr
		cfg.Receiver.EstimateNoise = true
		p := uplink.UserParams{ID: 1, PRB: 16, Layers: 2, Mod: modulation.QPSK}
		u, err := tx.Generate(cfg, p, rng.New(13))
		if err != nil {
			t.Fatal(err)
		}
		res, err := uplink.Process(cfg.Receiver, u)
		if err != nil {
			t.Fatal(err)
		}
		truth := u.NoiseVar
		if res.NoiseVarEst < truth/3 || res.NoiseVarEst > truth*3 {
			t.Errorf("SNR %g dB: estimated noise %.3g vs true %.3g (off by >3x)",
				snr, res.NoiseVarEst, truth)
		}
		if !res.CRCOK {
			t.Errorf("SNR %g dB: CRC failed with estimated noise", snr)
		}
	}
}

// TestScrambling: a scrambled link decodes end-to-end; a receiver without
// descrambling sees noise-like bits and fails CRC.
func TestScrambling(t *testing.T) {
	cfg := tx.DefaultConfig()
	cfg.Receiver.Scramble = true
	p := uplink.UserParams{ID: 5, PRB: 4, Layers: 1, Mod: modulation.QAM16}
	u, err := tx.Generate(cfg, p, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	res, err := uplink.Process(cfg.Receiver, u)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CRCOK {
		t.Fatal("scrambled link failed CRC with matching receiver")
	}
	for i := range u.Payload {
		if res.Bits[i] != u.Payload[i] {
			t.Fatalf("payload bit %d differs", i)
		}
	}
	// Mismatched receiver: descrambling disabled.
	plain := cfg.Receiver
	plain.Scramble = false
	res2, err := uplink.Process(plain, u)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CRCOK {
		t.Error("receiver without descrambling passed CRC; scrambling is a no-op")
	}
}

// TestScrambleRoundTripBits: Scramble then Descramble(LLR view) inverts.
func TestScrambleRoundTripBits(t *testing.T) {
	r := rng.New(19)
	bits := make([]uint8, 500)
	for i := range bits {
		bits[i] = r.Bit()
	}
	orig := append([]uint8(nil), bits...)
	uplink.Scramble(bits, 3)
	changed := 0
	for i := range bits {
		if bits[i] != orig[i] {
			changed++
		}
	}
	if changed < 150 {
		t.Errorf("scrambling changed only %d/500 bits", changed)
	}
	// Build LLRs from scrambled bits, descramble, hard-decide.
	llr := make([]float64, len(bits))
	for i, b := range bits {
		if b == 0 {
			llr[i] = 4
		} else {
			llr[i] = -4
		}
	}
	uplink.Descramble(llr, 3)
	for i := range orig {
		got := uint8(0)
		if llr[i] < 0 {
			got = 1
		}
		if got != orig[i] {
			t.Fatalf("descramble mismatch at %d", i)
		}
	}
	// Different users use different sequences.
	a := uplink.ScramblingSequence(1, 200)
	b := uplink.ScramblingSequence(2, 200)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 150 {
		t.Errorf("user sequences agree in %d/200 positions", same)
	}
}

// TestEVMReported: the result's EVM tracks link quality.
func TestEVMReported(t *testing.T) {
	evmAt := func(snr float64) float64 {
		cfg := tx.DefaultConfig()
		cfg.SNRdB = snr
		p := uplink.UserParams{ID: 1, PRB: 6, Layers: 1, Mod: modulation.QAM16}
		u, err := tx.Generate(cfg, p, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		res, err := uplink.Process(cfg.Receiver, u)
		if err != nil {
			t.Fatal(err)
		}
		return res.EVM
	}
	good, bad := evmAt(30), evmAt(10)
	if good <= 0 || bad <= 0 {
		t.Fatalf("EVM not populated: %g, %g", good, bad)
	}
	if good >= bad {
		t.Errorf("EVM at 30 dB (%g) not below EVM at 10 dB (%g)", good, bad)
	}
	if good > 0.1 {
		t.Errorf("EVM at 30 dB = %g, want clean (<0.1)", good)
	}
}

// TestAntennaCountSweep: the receiver works across the supported antenna
// configurations (2, 4, 8), with layers capped by the antenna count.
func TestAntennaCountSweep(t *testing.T) {
	for _, antennas := range []int{2, 4, 8} {
		// Full-rank 2x2 uncoded multiplexing has no diversity margin, so
		// keep one layer at two antennas.
		layers := 2
		if antennas == 2 {
			layers = 1
		}
		cfg := tx.DefaultConfig()
		cfg.Receiver.Antennas = antennas
		p := uplink.UserParams{ID: 1, PRB: 4, Layers: layers, Mod: modulation.QAM16}
		u, err := tx.Generate(cfg, p, rng.New(uint64(antennas)))
		if err != nil {
			t.Fatalf("antennas=%d: %v", antennas, err)
		}
		res, err := uplink.Process(cfg.Receiver, u)
		if err != nil {
			t.Fatal(err)
		}
		if !res.CRCOK {
			t.Errorf("antennas=%d: CRC failed", antennas)
		}
		// More antennas -> better channel estimate diversity is not
		// guaranteed per-link, but the chain must stay numerically sound.
		if res.ChannelMSE > 0.05 {
			t.Errorf("antennas=%d: channel MSE %g", antennas, res.ChannelMSE)
		}
	}
	// Antenna counts outside [1, 8] rejected.
	bad := uplink.DefaultConfig()
	bad.Antennas = 9
	if err := bad.Validate(); err == nil {
		t.Error("9 antennas accepted")
	}
}
