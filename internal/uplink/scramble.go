package uplink

import (
	"ltephy/internal/phy/sequence"
	"ltephy/internal/phy/workspace"
)

// Scrambling (TS 36.211 §5.3.1) whitens the coded bit stream with a
// user-specific Gold sequence before modulation, so one UE's constellation
// stream looks noise-like to others. Both ends derive the sequence from
// the user's identity alone.

// scramblingInit derives the Gold initialiser from the user identity. The
// standard combines RNTI, codeword index, cell ID and slot; a stable
// per-user mix suffices for the benchmark.
func scramblingInit(userID int) uint32 {
	return uint32(userID)*16381 + 0x12345
}

// ScramblingSequence returns n scrambling bits for the user.
func ScramblingSequence(userID, n int) []uint8 {
	return sequence.Gold(scramblingInit(userID), n)
}

// Scramble XORs the user's scrambling sequence into a bit stream in place
// (transmit side).
func Scramble(bits []uint8, userID int) {
	seq := ScramblingSequence(userID, len(bits))
	for i := range bits {
		bits[i] ^= seq[i]
	}
}

// Descramble flips the sign of the LLRs at scrambled positions in place
// (receive side): descrambling soft values before decoding.
func Descramble(llr []float64, userID int) {
	DescrambleIn(nil, llr, userID)
}

// DescrambleIn is Descramble with the scrambling sequence generated into
// arena scratch (heap when ws is nil), released before returning.
func DescrambleIn(ws *workspace.Arena, llr []float64, userID int) {
	m := ws.Mark()
	seq := ws.Bytes(len(llr))
	sequence.GoldInto(seq, scramblingInit(userID))
	for i := range llr {
		if seq[i] == 1 {
			llr[i] = -llr[i]
		}
	}
	ws.Release(m)
}
