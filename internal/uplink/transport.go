package uplink

import (
	"fmt"
	"sync"

	"ltephy/internal/phy/crc"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/phy/turbo"
	"ltephy/internal/phy/workspace"
)

// TransportFormat describes how a user's payload maps onto its physical
// allocation for one subframe. The transmitter and receiver derive it
// identically from (UserParams, TurboMode), so no control channel is
// modelled — the base station knows the grant it issued (paper Section VI:
// "the input parameters of a subframe are known before the subframe is
// received").
type TransportFormat struct {
	// Symbols is the number of constellation symbols the allocation
	// carries: dataSymbols * layers * subcarriers.
	Symbols int
	// TotalBits = Symbols * bitsPerSymbol.
	TotalBits int
	// PayloadBits is the transport-block payload size (before CRC24A).
	PayloadBits int
	// CodedBits is the number of bits actually occupied after CRC attach
	// (and turbo encoding in TurboFull mode); TotalBits - CodedBits
	// trailing bits are zero padding. With rate matching (Rate > 0) the
	// allocation is filled exactly and CodedBits == TotalBits.
	CodedBits int
	// Seg is the code-block segmentation plan (TurboFull only).
	Seg *turbo.Segmentation
	// Rate, when nonzero, selects the rate-matched TurboFull path: the
	// payload is sized to Rate*TotalBits and the codeword is punctured or
	// repeated to fill the allocation exactly (TS 36.212 §5.1.4.1).
	Rate float64
}

// tbCRC is the transport-block checksum (TS 36.212 §5.1.1: CRC24A).
const tbCRC = crc.CRC24A

// formatKey identifies a transport format up to everything it depends on —
// the user ID does not affect the format, so users with equal allocations
// share one entry.
type formatKey struct {
	prb, layers int
	mod         modulation.Scheme
	mode        TurboMode
	rate        float64
}

// formatCache memoises transport formats: the TurboFull constructor runs a
// binary search over segmentation plans, far too heavy to repeat per user
// per subframe. TransportFormat is immutable (its Segmentation and Codec
// are), so entries are shared freely across jobs. RWMutex-guarded so the
// per-job lookup doesn't box the key (a sync.Map hit would allocate).
var (
	formatMu    sync.RWMutex
	formatCache = map[formatKey]TransportFormat{}
)

// cachedTransportFormat is a double-checked RWMutex cache: steady state
// is one uncontended RLock over a map read; the write lock is
// first-sight-only.
//
//ltephy:blocking-ok
func cachedTransportFormat(p UserParams, mode TurboMode, rate float64) (TransportFormat, error) {
	key := formatKey{prb: p.PRB, layers: p.Layers, mod: p.Mod, mode: mode, rate: rate}
	formatMu.RLock()
	f, ok := formatCache[key]
	formatMu.RUnlock()
	if ok {
		return f, nil
	}
	f, err := NewTransportFormatRate(p, mode, rate)
	if err != nil {
		return TransportFormat{}, err
	}
	formatMu.Lock()
	if cached, ok := formatCache[key]; ok {
		f = cached
	} else {
		formatCache[key] = f
	}
	formatMu.Unlock()
	return f, nil
}

// NewTransportFormatRate computes a rate-matched TurboFull format: the
// payload is rate*TotalBits (minus CRC), turbo-encoded and rate-matched to
// occupy the allocation exactly. rate 0 falls back to NewTransportFormat's
// behaviour (mother-rate codeword plus zero padding).
func NewTransportFormatRate(p UserParams, mode TurboMode, rate float64) (TransportFormat, error) {
	if rate == 0 || mode != TurboFull {
		return NewTransportFormat(p, mode)
	}
	if rate < turbo.MinRate || rate > turbo.MaxRate {
		return TransportFormat{}, fmt.Errorf("uplink: code rate %g outside [%g, %g]",
			rate, turbo.MinRate, turbo.MaxRate)
	}
	if err := p.Validate(); err != nil {
		return TransportFormat{}, err
	}
	n := p.Subcarriers()
	f := TransportFormat{Symbols: DataSymbolsPerSubframe * p.Layers * n, Rate: rate}
	f.TotalBits = f.Symbols * p.Mod.Bits()
	f.PayloadBits = int(rate*float64(f.TotalBits)) - tbCRC.Bits()
	if f.PayloadBits < 1 {
		return TransportFormat{}, fmt.Errorf("uplink: allocation of %d bits too small for rate %g",
			f.TotalBits, rate)
	}
	seg, err := turbo.NewSegmentation(f.PayloadBits + tbCRC.Bits())
	if err != nil {
		return TransportFormat{}, err
	}
	f.Seg = seg
	f.CodedBits = f.TotalBits
	return f, nil
}

// NewTransportFormat computes the format for the given user parameters.
func NewTransportFormat(p UserParams, mode TurboMode) (TransportFormat, error) {
	if err := p.Validate(); err != nil {
		return TransportFormat{}, err
	}
	n := p.Subcarriers()
	f := TransportFormat{Symbols: DataSymbolsPerSubframe * p.Layers * n}
	f.TotalBits = f.Symbols * p.Mod.Bits()
	if mode == TurboPassthrough {
		f.PayloadBits = f.TotalBits - tbCRC.Bits()
		f.CodedBits = f.TotalBits
		return f, nil
	}
	// TurboFull: the largest payload whose rate-1/3 encoding (plus
	// per-block CRCs, filler and termination) fits the allocation.
	// Segmentation coded length is nondecreasing in the block size, so
	// binary search applies.
	lo, hi := 1, f.TotalBits // payload bounds (hi is safely infeasible)
	fits := func(p int) (*turbo.Segmentation, bool) {
		s, err := turbo.NewSegmentation(p + tbCRC.Bits())
		if err != nil {
			return nil, false
		}
		return s, s.CodedLen() <= f.TotalBits
	}
	if _, ok := fits(lo); !ok {
		return TransportFormat{}, fmt.Errorf("uplink: allocation of %d bits cannot fit any turbo codeword", f.TotalBits)
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if _, ok := fits(mid); ok {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	seg, _ := fits(lo)
	f.PayloadBits = lo
	f.Seg = seg
	f.CodedBits = seg.CodedLen()
	return f, nil
}

// EncodeTransportBlock produces the bit stream occupying the allocation:
// payload + CRC24A (+ turbo encoding) + zero padding to TotalBits. Initial
// transmissions use redundancy version 0.
func (f TransportFormat) EncodeTransportBlock(payload []uint8) []uint8 {
	return f.EncodeTransportBlockRV(payload, 0)
}

// EncodeTransportBlockRV encodes with an explicit redundancy version —
// HARQ retransmissions send rv 2 (then 1, 3). Only the rate-matched
// TurboFull path distinguishes versions; rv must be 0 otherwise.
func (f TransportFormat) EncodeTransportBlockRV(payload []uint8, rv int) []uint8 {
	if len(payload) != f.PayloadBits {
		panic(fmt.Sprintf("uplink: payload %d bits, format expects %d", len(payload), f.PayloadBits))
	}
	if rv != 0 && f.Rate == 0 {
		panic(fmt.Sprintf("uplink: redundancy version %d requires the rate-matched format", rv))
	}
	tb := tbCRC.AppendBits(payload)
	var coded []uint8
	switch {
	case f.Rate > 0:
		var err error
		coded, err = f.Seg.EncodeRM(tb, f.TotalBits, rv)
		if err != nil {
			// The format constructor guarantees e >= C; reaching here is a
			// construction bug, not an input error.
			panic(fmt.Sprintf("uplink: rate matching failed: %v", err))
		}
	case f.Seg != nil:
		coded = f.Seg.Encode(tb)
	default:
		coded = tb
	}
	out := make([]uint8, f.TotalBits)
	copy(out, coded)
	return out
}

// DecodeParams bundles the decode-path knobs a caller threads from
// ReceiverConfig down to the turbo decoder, replacing the bare iteration
// count (and the redundancy version the old path hardcoded to 0).
type DecodeParams struct {
	// Iterations caps full turbo iterations per code block.
	Iterations int
	// Kernel selects the int8 line-rate decoder (default) or the
	// float64 oracle.
	Kernel turbo.Kernel
	// RV is the redundancy version of the transmission being decoded
	// (rate-matched formats only).
	RV int
	// Par, when non-nil, fans one code block's trellis windows out
	// across scheduler workers (int8 kernel only).
	Par turbo.Parallel
}

// DecodeParams derives the decode configuration a receiver with this
// config applies — the single place bench/enb/sim-facing code maps
// ReceiverConfig onto the decoder.
func (c ReceiverConfig) DecodeParams() DecodeParams {
	return DecodeParams{Iterations: c.TurboIterations, Kernel: c.TurboKernel}
}

// tbCRCCheck is the transport-block CRC gate as a package-level func, so
// CRC-gated early termination doesn't materialise a closure per decode.
var tbCRCCheck = func(bits []uint8) bool { return tbCRC.CheckBits(bits) }

// DecodeTransportBlock inverts EncodeTransportBlock from soft bits:
// it consumes exactly TotalBits LLRs, decodes, and verifies CRC24A.
func (f TransportFormat) DecodeTransportBlock(llr []float64, iterations int) (payload []uint8, crcOK bool) {
	return f.DecodeTransportBlockInto(nil, nil, llr, iterations)
}

// DecodeTransportBlockInto is DecodeTransportBlock with decoder scratch
// drawn from ws and the decoded bits appended to dst (both may be nil;
// reusing dst across calls keeps the hot path allocation-free). The
// returned payload is dst-backed — plain heap memory, never arena
// scratch. It runs the float64 kernel with the legacy semantics;
// receivers use DecodeTransportBlockParams.
func (f TransportFormat) DecodeTransportBlockInto(dst []uint8, ws *workspace.Arena, llr []float64, iterations int) (payload []uint8, crcOK bool) {
	payload, crcOK, _ = f.DecodeTransportBlockParams(dst, ws, llr, DecodeParams{Iterations: iterations, Kernel: turbo.KernelFloat64})
	return payload, crcOK
}

// DecodeTransportBlockParams is the configurable decode path: kernel
// selection, redundancy version, CRC-gated early termination (the
// transport-block CRC24A gates single-block segments per half-iteration)
// and optional window fan-out. It additionally returns the realized
// half-iteration count, which feeds the iteration-aware decode cost
// model.
func (f TransportFormat) DecodeTransportBlockParams(dst []uint8, ws *workspace.Arena, llr []float64, p DecodeParams) (payload []uint8, crcOK bool, halfIters int) {
	if len(llr) != f.TotalBits {
		panic(fmt.Sprintf("uplink: got %d LLRs, format expects %d", len(llr), f.TotalBits))
	}
	opts := turbo.SegDecodeOpts{
		Iterations: p.Iterations,
		Kernel:     p.Kernel,
		Par:        p.Par,
		TBCheck:    tbCRCCheck,
	}
	var tb []uint8
	if f.Rate > 0 {
		var err error
		tb, _, halfIters, err = f.Seg.DecodeRMOptsInto(dst[:0], ws, llr, p.RV, opts)
		if err != nil {
			panic(fmt.Sprintf("uplink: de-rate-matching failed: %v", err))
		}
	} else if f.Seg != nil {
		tb, _, halfIters = f.Seg.DecodeOptsInto(dst[:0], ws, llr[:f.CodedBits], opts)
	} else {
		// Pass-through: hard decision, exactly like the paper's stub that
		// forwards data unchanged.
		if cap(dst) >= f.CodedBits {
			tb = dst[:f.CodedBits]
		} else {
			tb = make([]uint8, f.CodedBits) //ltephy:alloc-ok — payload outlives the arena by design; hot callers pass a preallocated dst
		}
		for i := range tb {
			if llr[i] < 0 {
				tb[i] = 1
			} else {
				tb[i] = 0
			}
		}
	}
	crcOK = tbCRC.CheckBits(tb)
	return tb[:len(tb)-tbCRC.Bits()], crcOK, halfIters
}
