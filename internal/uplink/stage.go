package uplink

import "ltephy/internal/phy/workspace"

// Stage is the uniform kernel interface the receiver chain is built from.
// A stage exposes its task-level parallelism through Tasks: indices
// [0, Tasks(j)) are independent and may run concurrently on different
// workers; stage boundaries are barriers the driver enforces (the
// work-stealing pool in internal/sched, or a trivial loop in the serial
// reference).
//
// Run draws all transient scratch from ws, the *executing* worker's arena
// (nil falls back to heap allocation) — a stolen task uses the thief's
// arena, never the spawner's. Run must bracket its arena use with
// Mark/Release so that scratch is fully returned when it completes;
// job-lifetime buffers live in the UserJob, not the stage.
//
// Stage implementations are stateless singletons registered per
// ChanEstType / CombinerType; swapping an estimator or combiner is a
// registry lookup, not a switch inside the kernel.
type Stage interface {
	Name() string
	Tasks(j *UserJob) int
	Run(ws *workspace.Arena, j *UserJob, taskIdx int)
}

// BatchStage is implemented by stages whose tasks are grid-shaped enough
// to profit from running a contiguous range [from, to) in one call: the
// stage gathers the range's inputs into contiguous scratch and issues
// batched FFT-engine transforms (one Mark/Release, one plan, shared
// scratch) instead of per-task calls. Drivers that own a whole stage —
// the serial reference — use it; per-task Run remains the unit the
// work-stealing pool spawns, and both paths perform identical per-vector
// arithmetic, so results stay bit-exact between them.
type BatchStage interface {
	Stage
	RunBatch(ws *workspace.Arena, j *UserJob, from, to int)
}

// chanEstStages maps each channel-estimator type to its stage singleton.
var chanEstStages = map[ChanEstType]Stage{
	ChanEstWindowed: windowedChanEst{},
	ChanEstLS:       lsChanEst{},
}

// combinerStages maps each combiner type to its weight-computation stage.
var combinerStages = map[CombinerType]Stage{
	CombinerMMSE: mmseWeights{},
	CombinerZF:   zfWeights{},
	CombinerMRC:  mrcWeights{},
	CombinerIRC:  ircWeights{},
}

// Stages returns the job's four-stage pipeline in execution order, with
// the channel estimator and combiner resolved through the registries. The
// array is fixed-size so drivers iterate it without allocating.
func (j *UserJob) Stages() [4]Stage {
	return [4]Stage{
		chanEstStages[j.Cfg.ChanEst],
		combinerStages[j.Cfg.Combiner],
		dataStage{},
		finishStage{},
	}
}

// windowedChanEst is the paper's Fig. 3 estimation chain: matched filter,
// IFFT, time-domain windowing around the layer's cyclic shift, FFT back.
type windowedChanEst struct{}

func (windowedChanEst) Name() string         { return "chanest-windowed" }
func (windowedChanEst) Tasks(j *UserJob) int { return j.NumChanEstTasks() }
func (windowedChanEst) Run(ws *workspace.Arena, j *UserJob, i int) {
	j.chanEstTask(ws, i, false)
}
func (windowedChanEst) RunBatch(ws *workspace.Arena, j *UserJob, from, to int) {
	j.chanEstBatch(ws, from, to, false)
}

// lsChanEst is raw least squares: the matched filter alone, with no
// denoising or layer separation.
type lsChanEst struct{}

func (lsChanEst) Name() string         { return "chanest-ls" }
func (lsChanEst) Tasks(j *UserJob) int { return j.NumChanEstTasks() }
func (lsChanEst) Run(ws *workspace.Arena, j *UserJob, i int) {
	j.chanEstTask(ws, i, true)
}

// mmseWeights solves W = (H^H H + nv I)^{-1} H^H per subcarrier.
type mmseWeights struct{}

func (mmseWeights) Name() string         { return "weights-mmse" }
func (mmseWeights) Tasks(j *UserJob) int { return 1 }
func (mmseWeights) Run(ws *workspace.Arena, j *UserJob, _ int) {
	j.resolveNoiseAndCFO()
	j.computeLinearWeights(ws, j.nv, false)
}

// zfWeights is zero forcing: the same solver with a vanishing diagonal
// term that only guards numerical singularity.
type zfWeights struct{}

func (zfWeights) Name() string         { return "weights-zf" }
func (zfWeights) Tasks(j *UserJob) int { return 1 }
func (zfWeights) Run(ws *workspace.Arena, j *UserJob, _ int) {
	j.resolveNoiseAndCFO()
	j.computeLinearWeights(ws, 1e-9, false)
}

// mrcWeights is the per-layer matched filter w_l = h_l^H / (|h_l|^2 + nv).
type mrcWeights struct{}

func (mrcWeights) Name() string         { return "weights-mrc" }
func (mrcWeights) Tasks(j *UserJob) int { return 1 }
func (mrcWeights) Run(ws *workspace.Arena, j *UserJob, _ int) {
	j.resolveNoiseAndCFO()
	j.computeLinearWeights(ws, j.nv, true)
}

// ircWeights whitens the combiner with the estimated interference
// covariance (irc.go).
type ircWeights struct{}

func (ircWeights) Name() string         { return "weights-irc" }
func (ircWeights) Tasks(j *UserJob) int { return 1 }
func (ircWeights) Run(ws *workspace.Arena, j *UserJob, _ int) {
	j.resolveNoiseAndCFO()
	j.computeIRCWeights(ws)
}

// dataStage combines one (slot, symbol, layer) across antennas and
// despreads it back to the time domain.
type dataStage struct{}

func (dataStage) Name() string         { return "combine-despread" }
func (dataStage) Tasks(j *UserJob) int { return j.NumDataTasks() }
func (dataStage) Run(ws *workspace.Arena, j *UserJob, i int) {
	j.dataTask(ws, i)
}
func (dataStage) RunBatch(ws *workspace.Arena, j *UserJob, from, to int) {
	j.dataBatch(ws, from, to)
}

// finishStage is the serial per-user backend: deinterleave, demap,
// descramble, decode, CRC. The result lands in the job (Result()).
type finishStage struct{}

func (finishStage) Name() string         { return "backend" }
func (finishStage) Tasks(j *UserJob) int { return 1 }
func (finishStage) Run(ws *workspace.Arena, j *UserJob, _ int) {
	j.finish(ws)
}
