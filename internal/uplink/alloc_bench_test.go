package uplink_test

import (
	"fmt"
	"testing"

	"ltephy/internal/obs"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/phy/workspace"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

// benchSubframe builds a representative subframe: three users spanning the
// modulation schemes and layer counts the parameter model mixes.
func benchSubframe(tb testing.TB, rc uplink.ReceiverConfig) *uplink.Subframe {
	tb.Helper()
	txCfg := tx.DefaultConfig()
	txCfg.Receiver = rc
	sf := &uplink.Subframe{Seq: 0}
	specs := []uplink.UserParams{
		{ID: 0, PRB: 8, Layers: 2, Mod: modulation.QAM16},
		{ID: 1, PRB: 4, Layers: 1, Mod: modulation.QPSK},
		{ID: 2, PRB: 6, Layers: 4, Mod: modulation.QAM64},
	}
	for i, p := range specs {
		u, err := tx.Generate(txCfg, p, rng.New(uint64(i+1)))
		if err != nil {
			tb.Fatal(err)
		}
		sf.Users = append(sf.Users, u)
	}
	return sf
}

// BenchmarkSubframeE2E is the allocation-regression benchmark for the
// receiver hot path: one full subframe (three users) through the serial
// reference chain. allocs/op is the tracked regression metric (ISSUE 1:
// steady state must stay ~allocation-free).
func BenchmarkSubframeE2E(b *testing.B) {
	rc := uplink.DefaultConfig()
	sf := benchSubframe(b, rc)
	// Warm shared caches (FFT plans, interleavers, reference sequences).
	if _, err := uplink.ProcessSubframe(rc, sf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uplink.ProcessSubframe(rc, sf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubframeE2ETurboFull is the same path with the real turbo
// decoder and rate matching — the heaviest backend configuration.
func BenchmarkSubframeE2ETurboFull(b *testing.B) {
	rc := uplink.DefaultConfig()
	rc.Turbo = uplink.TurboFull
	rc.CodeRate = 0.5
	sf := benchSubframe(b, rc)
	if _, err := uplink.ProcessSubframe(rc, sf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uplink.ProcessSubframe(rc, sf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSteadyStateZeroAlloc is the ISSUE 1 acceptance test: after warm-up,
// one full subframe through the receiver hot path — jobs reused, all
// scratch from a per-worker arena — performs zero heap allocations. This
// is the strictest form of the regression the benchmarks above track;
// ProcessSubframe itself stays at a handful of allocs/op only because its
// results (and their payload bits) escape to the caller by design.
func TestSteadyStateZeroAlloc(t *testing.T) {
	rc := uplink.DefaultConfig()
	sf := benchSubframe(t, rc)
	refs := make([]uplink.UserResult, len(sf.Users))
	for i, u := range sf.Users {
		r, err := uplink.Process(rc, u)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r
	}
	ws := workspace.New()
	jobs := make([]*uplink.UserJob, len(sf.Users))
	for i := range jobs {
		jobs[i] = &uplink.UserJob{}
	}
	run := func() {
		ws.Reset()
		for i, u := range sf.Users {
			j := jobs[i]
			if err := j.Init(ws, rc, u); err != nil {
				t.Fatal(err)
			}
			for _, s := range j.Stages() {
				for ti, n := 0, s.Tasks(j); ti < n; ti++ {
					s.Run(ws, j, ti)
				}
			}
			if !j.Result().Equal(refs[i]) {
				t.Fatal("arena-path result diverged from serial reference")
			}
		}
	}
	// Two warm-up passes: the first populates shared caches (FFT plans,
	// formats, DMRS, interleavers) and sizes the arena chunks; the second
	// sizes each job's reusable payload storage.
	run()
	run()
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Errorf("steady-state subframe performs %.1f allocations, want 0", allocs)
	}
}

// TestSteadyStateZeroAllocTelemetry re-runs the steady-state invariant
// with the full telemetry path recording around every task: stage spans
// into the histograms and event ring, deadline stamps, and an
// estimate/measured pair per subframe. The invariant must hold with the
// knob off (sampling 0), at full capture (1) and at the production
// sampling rate (64) — telemetry is fixed-capacity by construction and
// may never put allocations back on the hot path.
func TestSteadyStateZeroAllocTelemetry(t *testing.T) {
	rc := uplink.DefaultConfig()
	sf := benchSubframe(t, rc)
	for _, sampling := range []int{0, 1, 64} {
		t.Run(fmt.Sprintf("sampling=%d", sampling), func(t *testing.T) {
			reg := obs.New(1, 256)
			reg.SetSampling(sampling)
			rec := reg.Worker(0)
			dl := reg.Deadline()
			est := reg.Estimator()
			ws := workspace.New()
			jobs := make([]*uplink.UserJob, len(sf.Users))
			for i := range jobs {
				jobs[i] = &uplink.UserJob{}
			}
			var seq int64
			run := func() {
				ws.Reset()
				dl.Dispatch(seq, obs.Nanotime())
				est.RecordEstimate(seq, 0.5)
				for i, u := range sf.Users {
					j := jobs[i]
					start := obs.Nanotime()
					if err := j.Init(ws, rc, u); err != nil {
						t.Fatal(err)
					}
					rec.StageSpan(obs.StageInit, seq, int32(i), 0, start, obs.Nanotime())
					stages := j.Stages()
					for si := range stages {
						s := stages[si]
						for ti, n := 0, s.Tasks(j); ti < n; ti++ {
							ts := obs.Nanotime()
							s.Run(ws, j, ti)
							rec.StageSpan(uint8(si), seq, int32(i), int32(ti), ts, obs.Nanotime())
						}
					}
					dl.Complete(seq, obs.Nanotime())
				}
				est.RecordMeasured(seq, 0.5)
				seq++
			}
			run()
			run()
			if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
				t.Errorf("telemetry at sampling %d performs %.1f allocations, want 0", sampling, allocs)
			}
			if sampling > 0 && reg.StageHist(obs.StageInit).Count() == 0 {
				t.Error("telemetry was on but recorded nothing")
			}
		})
	}
}
