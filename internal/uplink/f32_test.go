package uplink_test

import (
	"math"
	"testing"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/phy/workspace"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

// Float32 lane-path validation: the complex128 pipeline is the accuracy
// oracle (DESIGN.md §10). Every test here runs the same captured user
// data through both precisions and pins the divergence.

// runJobSoftBits drives one user through all four stages with heap
// scratch and returns the result plus the demapped LLR stream (which
// uplink.Process does not expose).
func runJobSoftBits(t testing.TB, rc uplink.ReceiverConfig, u *uplink.UserData) (uplink.UserResult, []float64) {
	t.Helper()
	j, err := uplink.NewUserJob(rc, u)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range j.Stages() {
		for i, n := 0, s.Tasks(j); i < n; i++ {
			s.Run(nil, j, i)
		}
	}
	return j.Result(), j.SoftBits()
}

// TestF32SweepMatchesComplex128 is the tentpole acceptance sweep: every
// allocation width nPRB 2..200 (including all the Bluestein lengths —
// multiples of 11, 13, ... — and both slot parities of the batched
// transforms) through both precisions, with pinned bounds on the EVM
// delta and the worst-case relative LLR divergence, and bit-identical
// decoded payloads.
func TestF32SweepMatchesComplex128(t *testing.T) {
	cfg := tx.DefaultConfig()
	const (
		maxEVMDelta = 1e-4 // |EVM_f32 - EVM_c128|, absolute
		maxLLRDiv   = 5e-3 // max_i |Δllr_i| / (1 + |llr_i|)
	)
	step := 1
	if testing.Short() {
		step = 7 // still hits Bluestein widths (e.g. nPRB 22, 141≡11·...)
	}
	var worstEVM, worstLLR float64
	var worstEVMPRB, worstLLRPRB int
	for prb := 2; prb <= 200; prb += step {
		p := uplink.UserParams{ID: 1, PRB: prb, Layers: 2, Mod: modulation.QAM16}
		u, err := tx.Generate(cfg, p, rng.New(uint64(prb)))
		if err != nil {
			t.Fatal(err)
		}
		rc := cfg.Receiver
		res64, llr64 := runJobSoftBits(t, rc, u)
		rc.Precision = uplink.PrecisionFloat32
		res32, llr32 := runJobSoftBits(t, rc, u)

		if d := math.Abs(res32.EVM - res64.EVM); d > worstEVM {
			worstEVM, worstEVMPRB = d, prb
		}
		if len(llr32) != len(llr64) {
			t.Fatalf("nPRB %d: %d f32 LLRs vs %d c128", prb, len(llr32), len(llr64))
		}
		for i := range llr64 {
			if d := math.Abs(llr32[i]-llr64[i]) / (1 + math.Abs(llr64[i])); d > worstLLR {
				worstLLR, worstLLRPRB = d, prb
			}
		}
		if res32.CRCOK != res64.CRCOK {
			t.Errorf("nPRB %d: f32 CRC %v, c128 CRC %v", prb, res32.CRCOK, res64.CRCOK)
		}
		if len(res32.Bits) != len(res64.Bits) {
			t.Fatalf("nPRB %d: payload lengths differ", prb)
		}
		for i := range res64.Bits {
			if res32.Bits[i] != res64.Bits[i] {
				t.Errorf("nPRB %d: decoded payload bit %d differs between precisions", prb, i)
				break
			}
		}
		if d := math.Abs(res32.ChannelMSE - res64.ChannelMSE); d > 1e-4*(1+res64.ChannelMSE) {
			t.Errorf("nPRB %d: channel MSE %g (f32) vs %g (c128)", prb, res32.ChannelMSE, res64.ChannelMSE)
		}
	}
	t.Logf("worst EVM delta %.3g (nPRB %d), worst relative LLR divergence %.3g (nPRB %d)",
		worstEVM, worstEVMPRB, worstLLR, worstLLRPRB)
	if worstEVM > maxEVMDelta {
		t.Errorf("EVM delta %g at nPRB %d exceeds pinned bound %g", worstEVM, worstEVMPRB, maxEVMDelta)
	}
	if worstLLR > maxLLRDiv {
		t.Errorf("LLR divergence %g at nPRB %d exceeds pinned bound %g", worstLLR, worstLLRPRB, maxLLRDiv)
	}
}

// TestF32LLRSignFlipAtLowSNR pins the demapper agreement at the lowest
// SNR point (5 dB) of the channel-accuracy sweep: the fraction of LLRs
// whose hard decision flips between precisions must stay within the
// pinned budget, and any flip must sit on a genuinely marginal LLR.
func TestF32LLRSignFlipAtLowSNR(t *testing.T) {
	cfg := tx.DefaultConfig()
	cfg.SNRdB = 5 // the lowest point of TestChanEstAccuracyImprovesWithSNR
	const (
		maxFlipRate = 1e-3 // fraction of LLRs changing sign between precisions
		maxEVMDelta = 1e-3 // EVM agreement at low SNR, absolute
	)
	p := uplink.UserParams{ID: 1, PRB: 8, Layers: 2, Mod: modulation.QPSK}
	u, err := tx.Generate(cfg, p, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	rc := cfg.Receiver
	res64, llr64 := runJobSoftBits(t, rc, u)
	rc.Precision = uplink.PrecisionFloat32
	res32, llr32 := runJobSoftBits(t, rc, u)

	// Scale of a typical LLR: flips are only acceptable near zero.
	var mean float64
	for _, v := range llr64 {
		mean += math.Abs(v)
	}
	mean /= float64(len(llr64))
	flips := 0
	for i := range llr64 {
		if (llr32[i] < 0) != (llr64[i] < 0) && llr64[i] != 0 {
			flips++
			if math.Abs(llr64[i]) > 1e-3*mean {
				t.Errorf("LLR %d flipped sign on a non-marginal value %g (mean magnitude %g)",
					i, llr64[i], mean)
			}
		}
	}
	rate := float64(flips) / float64(len(llr64))
	t.Logf("sign flips: %d / %d (rate %.2g), EVM delta %.3g",
		flips, len(llr64), rate, math.Abs(res32.EVM-res64.EVM))
	if rate > maxFlipRate {
		t.Errorf("LLR sign-flip rate %g exceeds pinned bound %g", rate, maxFlipRate)
	}
	if d := math.Abs(res32.EVM - res64.EVM); d > maxEVMDelta {
		t.Errorf("EVM delta %g at 5 dB exceeds pinned bound %g", d, maxEVMDelta)
	}
}

// TestF32ModuleMatrix runs every estimator/combiner registry entry (plus
// the estimated-noise, CFO-correction, scrambling and full-turbo paths)
// at float32 and checks each against its complex128 twin — all the f32
// stage kernels, including IRC covariance whitening and the LS
// estimator, stay on-oracle.
func TestF32ModuleMatrix(t *testing.T) {
	base := tx.DefaultConfig()
	cases := []struct {
		name string
		mut  func(*uplink.ReceiverConfig)
	}{
		{"mmse", func(rc *uplink.ReceiverConfig) {}},
		{"zf", func(rc *uplink.ReceiverConfig) { rc.Combiner = uplink.CombinerZF }},
		{"mrc", func(rc *uplink.ReceiverConfig) { rc.Combiner = uplink.CombinerMRC }},
		{"irc", func(rc *uplink.ReceiverConfig) { rc.Combiner = uplink.CombinerIRC }},
		{"ls-chanest", func(rc *uplink.ReceiverConfig) { rc.ChanEst = uplink.ChanEstLS }},
		{"est-noise", func(rc *uplink.ReceiverConfig) { rc.EstimateNoise = true }},
		{"cfo", func(rc *uplink.ReceiverConfig) { rc.CorrectCFO = true }},
		{"scramble", func(rc *uplink.ReceiverConfig) { rc.Scramble = true }},
		{"turbo-full", func(rc *uplink.ReceiverConfig) { rc.Turbo = uplink.TurboFull }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg.Receiver)
			p := uplink.UserParams{ID: 3, PRB: 6, Layers: 2, Mod: modulation.QAM16}
			u, err := tx.Generate(cfg, p, rng.New(11))
			if err != nil {
				t.Fatal(err)
			}
			res64, err := uplink.Process(cfg.Receiver, u)
			if err != nil {
				t.Fatal(err)
			}
			rc := cfg.Receiver
			rc.Precision = uplink.PrecisionFloat32
			res32, err := uplink.Process(rc, u)
			if err != nil {
				t.Fatal(err)
			}
			if res32.CRCOK != res64.CRCOK {
				t.Errorf("CRC %v (f32) vs %v (c128)", res32.CRCOK, res64.CRCOK)
			}
			for i := range res64.Bits {
				if res32.Bits[i] != res64.Bits[i] {
					t.Errorf("payload bit %d differs between precisions", i)
					break
				}
			}
			if d := math.Abs(res32.EVM - res64.EVM); d > 1e-3 {
				t.Errorf("EVM %g (f32) vs %g (c128)", res32.EVM, res64.EVM)
			}
			if d := math.Abs(res32.NoiseVarEst - res64.NoiseVarEst); d > 1e-6*(1+res64.NoiseVarEst) {
				t.Errorf("noise estimate %g (f32) vs %g (c128)", res32.NoiseVarEst, res64.NoiseVarEst)
			}
		})
	}
}

// TestF32Deterministic: the float32 path must be bit-reproducible run to
// run, exactly like the complex128 path.
func TestF32Deterministic(t *testing.T) {
	cfg := tx.DefaultConfig()
	cfg.Receiver.Precision = uplink.PrecisionFloat32
	p := uplink.UserParams{ID: 3, PRB: 5, Layers: 2, Mod: modulation.QAM16}
	u, err := tx.Generate(cfg, p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := uplink.Process(cfg.Receiver, u)
	if err != nil {
		t.Fatal(err)
	}
	b, err := uplink.Process(cfg.Receiver, u)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("float32 path gave different results on identical input")
	}
}

// TestF32SteadyStateZeroAlloc is TestSteadyStateZeroAlloc on the float32
// lane path: after warm-up, a full subframe — split-plane packing, f32
// transforms, Cholesky solves, f32 demap and the LLR widening — performs
// zero heap allocations.
func TestF32SteadyStateZeroAlloc(t *testing.T) {
	rc := uplink.DefaultConfig()
	rc.Precision = uplink.PrecisionFloat32
	sf := benchSubframe(t, rc)
	refs := make([]uplink.UserResult, len(sf.Users))
	for i, u := range sf.Users {
		r, err := uplink.Process(rc, u)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r
	}
	ws := workspace.New()
	jobs := make([]*uplink.UserJob, len(sf.Users))
	for i := range jobs {
		jobs[i] = &uplink.UserJob{}
	}
	run := func() {
		ws.Reset()
		for i, u := range sf.Users {
			j := jobs[i]
			if err := j.Init(ws, rc, u); err != nil {
				t.Fatal(err)
			}
			for _, s := range j.Stages() {
				for ti, n := 0, s.Tasks(j); ti < n; ti++ {
					s.Run(ws, j, ti)
				}
			}
			if !j.Result().Equal(refs[i]) {
				t.Fatal("arena-path f32 result diverged from heap-path reference")
			}
		}
	}
	run()
	run()
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Errorf("steady-state f32 subframe performs %.1f allocations, want 0", allocs)
	}
}

// benchChanEstJobF32 is benchChanEstJob with the float32 lane path on.
func benchChanEstJobF32(tb testing.TB, stages int) (*workspace.Arena, *uplink.UserJob) {
	tb.Helper()
	rc := uplink.DefaultConfig()
	rc.Precision = uplink.PrecisionFloat32
	sf := benchSubframe(tb, rc)
	u := sf.Users[2] // PRB 6, 4 layers, 64-QAM: the widest task grid
	ws := workspace.New()
	j := &uplink.UserJob{}
	if err := j.Init(ws, rc, u); err != nil {
		tb.Fatal(err)
	}
	for si := 0; si < stages; si++ {
		benchStage(ws, j, si)
	}
	return ws, j
}

// BenchmarkChanEstStageF32 is BenchmarkChanEstStage on the float32 lane
// path — the ISSUE 6 ≥2x target against BENCH_fft_baseline.json's
// complex128 number.
func BenchmarkChanEstStageF32(b *testing.B) {
	ws, j := benchChanEstJobF32(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchStage(ws, j, 0)
	}
}

// BenchmarkDataStageF32 is BenchmarkDataStage on the float32 lane path.
func BenchmarkDataStageF32(b *testing.B) {
	ws, j := benchChanEstJobF32(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchStage(ws, j, 2)
	}
}

// BenchmarkSubframeE2EF32 is the full-subframe benchmark at float32; the
// allocs/op budget is identical to the complex128 path's.
func BenchmarkSubframeE2EF32(b *testing.B) {
	rc := uplink.DefaultConfig()
	rc.Precision = uplink.PrecisionFloat32
	sf := benchSubframe(b, rc)
	if _, err := uplink.ProcessSubframe(rc, sf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uplink.ProcessSubframe(rc, sf); err != nil {
			b.Fatal(err)
		}
	}
}
