// Package uplink implements the per-user baseband processing chain of an
// LTE base-station uplink receiver — the core of the ISPASS 2012 "LTE
// Uplink Receiver PHY Benchmark" paper (Fig. 3):
//
//	channel estimation (matched filter → IFFT → window → FFT)
//	combiner-weight calculation (MMSE, all antennas × layers)
//	antenna combining + IFFT per (data symbol, layer)
//	deinterleave → soft demap → turbo decode → CRC
//
// Processing is organised as a UserJob whose stages expose exactly the task
// granularity the paper parallelises: antennas×layers channel-estimation
// tasks and dataSymbols×layers demodulation tasks, with the weight
// computation and the backend as serial per-user sections. The serial
// reference receiver (Process) runs the same stages in order and is used to
// verify parallel execution, mirroring the paper's Section IV-D.
package uplink

import (
	"fmt"

	"ltephy/internal/phy/channel"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/phy/sequence"
	"ltephy/internal/phy/turbo"
)

// LTE numerology fixed by the standard and used throughout the paper.
const (
	// SubcarriersPerPRB is the width of a physical resource block.
	SubcarriersPerPRB = 12
	// SlotsPerSubframe and SymbolsPerSlot define the time grid: a 1 ms
	// subframe is two 0.5 ms slots of seven SC-FDMA symbols.
	SlotsPerSubframe = 2
	SymbolsPerSlot   = 7
	// DataSymbolsPerSlot: three data symbols, the reference symbol, then
	// three more data symbols (paper Section II-A).
	DataSymbolsPerSlot     = 6
	DataSymbolsPerSubframe = SlotsPerSubframe * DataSymbolsPerSlot
	// RefSymbolPos is the reference symbol's position within a slot.
	RefSymbolPos = 3
	// MinPRB is the smallest allocation a scheduled user may have
	// (paper Section V-A: "a user has to have at least two PRBs").
	MinPRB = 2
	// MaxPRBPool is the total pool of schedulable PRBs per subframe in the
	// paper's parameter model (MAX_PRB in Fig. 6).
	MaxPRBPool = 200
	// MaxUsers is the maximum number of users schedulable in one subframe.
	MaxUsers = 10
	// DefaultAntennas is the receive antenna count the paper evaluates
	// ("for a four-antenna receiver...").
	DefaultAntennas = 4
	// MaxLayers re-exports the spatial-multiplexing limit.
	MaxLayers = sequence.MaxLayers
)

// DataSymbolPos maps a data-symbol index (0..5) to its position within the
// seven-symbol slot, skipping the reference at RefSymbolPos.
func DataSymbolPos(sym int) int {
	if sym < RefSymbolPos {
		return sym
	}
	return sym + 1
}

// UserParams are the per-user scheduling parameters that define a
// subframe's workload (paper Section IV): PRB count, layers, modulation.
type UserParams struct {
	ID     int
	PRB    int
	Layers int
	Mod    modulation.Scheme
}

// Subcarriers returns the allocation width in subcarriers.
func (p UserParams) Subcarriers() int { return p.PRB * SubcarriersPerPRB }

// Validate checks the parameters against the standard's limits. It is a
// guard: it allocates only on the reject path, where the caller abandons
// the work anyway.
//
//ltephy:coldpath — error construction happens only for invalid params.
func (p UserParams) Validate() error {
	switch {
	case p.PRB < MinPRB || p.PRB > MaxPRBPool:
		return fmt.Errorf("uplink: user %d: PRB count %d outside [%d, %d]", p.ID, p.PRB, MinPRB, MaxPRBPool)
	case p.Layers < 1 || p.Layers > MaxLayers:
		return fmt.Errorf("uplink: user %d: %d layers outside [1, %d]", p.ID, p.Layers, MaxLayers)
	case p.Mod != modulation.QPSK && p.Mod != modulation.QAM16 && p.Mod != modulation.QAM64:
		return fmt.Errorf("uplink: user %d: unknown modulation %d", p.ID, int(p.Mod))
	}
	return nil
}

// UserData carries one user's frequency-domain receive samples for one
// subframe (the frontend — filter, CP removal, FFT — is excluded from the
// benchmark, paper Section IV) plus optional ground truth for verification.
type UserData struct {
	Params UserParams
	// NoiseVar is the per-subcarrier noise variance the receiver assumes
	// (genie-aided, as is usual in benchmarks).
	NoiseVar float64
	// RV is the redundancy version this transmission was rate-matched
	// with (0 for a first transmission; retransmissions follow
	// RVForRound). Carried through to UserResult so HARQ soft-combining
	// above the receiver can accumulate at the right offsets.
	RV uint8
	// RefRx[slot][antenna][k]: the received reference symbol.
	RefRx [SlotsPerSubframe][][]complex128
	// DataRx[slot][sym][antenna][k]: the six data symbols per slot.
	DataRx [SlotsPerSubframe][DataSymbolsPerSlot][][]complex128

	// Ground truth, present when the synthetic transmitter produced the
	// data; nil/empty otherwise.
	Payload []uint8       // transmitted payload bits (before CRC attach)
	Channel *channel.MIMO // true channel realisation
}

// Antennas returns the receive antenna count of the captured data.
func (u *UserData) Antennas() int { return len(u.RefRx[0]) }

// Subframe is the unit of work dispatched every DELTA milliseconds: the
// scheduled users and their input data.
type Subframe struct {
	Seq int64
	// Cell identifies the serving cell the subframe belongs to (0 for
	// single-cell callers). Carried through to each UserResult so KPI
	// accounting can attribute outcomes when pools multiplex cells.
	Cell  uint16
	Users []*UserData
}

// TotalPRB sums the PRB allocations of all scheduled users.
func (s *Subframe) TotalPRB() int {
	total := 0
	for _, u := range s.Users {
		total += u.Params.PRB
	}
	return total
}

// UserResult is the outcome of processing one user in one subframe.
type UserResult struct {
	UserID int
	Seq    int64
	// Cell is the serving cell copied from the subframe.
	Cell uint16
	// Params are the scheduling parameters the user was decoded with
	// (Params.ID == UserID). HARQ combining above the receiver needs them
	// to reconstruct the transport format for soft-buffer state.
	Params UserParams
	// RV is the redundancy version copied from UserData.RV.
	RV uint8
	// SoftBits is a heap copy of the demapped, descrambled LLR stream,
	// present only with ReceiverConfig.KeepSoftBits — the input
	// HARQProcess.Absorb consumes when soft-combining runs outside the
	// job's arena lifetime (e.g. the fronthaul HARQ ledger).
	SoftBits []float64
	// CRCOK reports whether the transport-block CRC24A verified.
	CRCOK bool
	// Bits is the decoded payload (excluding CRC).
	Bits []uint8
	// ChannelMSE is the mean squared error of the channel estimate against
	// the true channel, when ground truth was available (else NaN).
	ChannelMSE float64
	// NoiseVarEst is the noise variance the receiver used: the genie value
	// or, with ReceiverConfig.EstimateNoise, the slot-difference estimate.
	NoiseVarEst float64
	// EVM is the root-mean-square error-vector magnitude of the equalised
	// constellation (0.1 = -20 dB): the standard link-quality measure.
	EVM float64
	// TurboHalfIters is the realized turbo half-iteration count summed
	// over the user's code blocks (0 outside TurboFull mode): the
	// CRC-gated early-termination outcome that iteration-aware cost
	// pricing consumes.
	TurboHalfIters int
}

// Equal reports whether two results are bit-identical — the paper's
// serial-vs-parallel verification criterion (Section IV-D).
func (r UserResult) Equal(o UserResult) bool {
	if r.UserID != o.UserID || r.Seq != o.Seq || r.CRCOK != o.CRCOK ||
		r.TurboHalfIters != o.TurboHalfIters || len(r.Bits) != len(o.Bits) {
		return false
	}
	for i := range r.Bits {
		if r.Bits[i] != o.Bits[i] {
			return false
		}
	}
	return true
}

// CombinerType selects the antenna-combining algorithm — the paper's
// benchmark is "organized as a software pipeline in which modules can
// easily be replaced to model different algorithms"; this is that seam for
// the combiner stage.
type CombinerType int

const (
	// CombinerMMSE is the default: W = (H^H H + nv I)^{-1} H^H, the
	// noise-vs-interference optimal linear combiner.
	CombinerMMSE CombinerType = iota
	// CombinerZF is zero-forcing: the MMSE solution with the noise term
	// dropped — perfect interference suppression, amplified noise in
	// poorly conditioned channels.
	CombinerZF
	// CombinerMRC is maximum-ratio combining per layer: matched filtering
	// that ignores inter-layer interference entirely. Optimal for a single
	// layer, degenerate for spatial multiplexing — kept as the instructive
	// baseline.
	CombinerMRC
	// CombinerIRC is interference rejection combining: the noise-plus-
	// interference spatial covariance is estimated from the reference-
	// symbol residuals and whitened into the MMSE solution, suppressing
	// spatially coloured inter-cell interference white-noise MMSE cannot.
	CombinerIRC
)

func (c CombinerType) String() string {
	switch c {
	case CombinerZF:
		return "ZF"
	case CombinerMRC:
		return "MRC"
	case CombinerIRC:
		return "IRC"
	default:
		return "MMSE"
	}
}

// ChanEstType selects the channel-estimation algorithm.
type ChanEstType int

const (
	// ChanEstWindowed is the paper's chain: matched filter, IFFT, time-
	// domain window, FFT — denoises and separates cyclic-shifted layers.
	ChanEstWindowed ChanEstType = iota
	// ChanEstLS is the raw least-squares estimate (matched filter output
	// alone): cheaper, but keeps the full noise floor and, with multiple
	// layers, their mutual interference. Usable only for single-layer
	// users; provided to quantify what the windowing buys.
	ChanEstLS
)

func (c ChanEstType) String() string {
	if c == ChanEstLS {
		return "LS"
	}
	return "windowed"
}

// Precision selects the arithmetic width of the receiver hot path.
type Precision int

const (
	// PrecisionComplex128 is the default interleaved complex128 pipeline —
	// the accuracy oracle every other precision is validated against.
	PrecisionComplex128 Precision = iota
	// PrecisionFloat32 runs the hot path (channel estimation, weight
	// solve, combining, despreading, demapping) on the split-plane float32
	// lane layout (internal/phy/lane), converting at the job boundary:
	// received samples are packed to planes at Init and LLRs widen back to
	// float64 before the turbo decoder, so schedulers, HARQ and the
	// transport layer see unchanged interfaces. Validated against the
	// complex128 path across nPRB 2..200 with pinned EVM and LLR bounds.
	PrecisionFloat32
)

func (p Precision) String() string {
	if p == PrecisionFloat32 {
		return "float32"
	}
	return "complex128"
}

// TurboMode selects the final decoding stage.
type TurboMode int

const (
	// TurboPassthrough reproduces the paper: "the call to perform turbo
	// decoding simply passes the data through" (hard decision on LLRs).
	TurboPassthrough TurboMode = iota
	// TurboFull runs the real 3GPP turbo decoder (internal/phy/turbo),
	// exercising the paper's module-replacement extensibility.
	TurboFull
)

func (m TurboMode) String() string {
	if m == TurboFull {
		return "full"
	}
	return "passthrough"
}

// ReceiverConfig selects the receiver variant. The zero value is NOT valid;
// use DefaultConfig.
type ReceiverConfig struct {
	Antennas        int
	Turbo           TurboMode
	TurboIterations int // used only in TurboFull mode
	// TurboKernel selects the turbo decoder implementation in TurboFull
	// mode: the zero value is the int8 sliding-window line-rate kernel;
	// turbo.KernelFloat64 keeps the float oracle path.
	TurboKernel turbo.Kernel
	// CodeRate, when nonzero, enables rate matching in TurboFull mode: the
	// payload is CodeRate*capacity and the codeword is punctured/repeated
	// to fill the allocation exactly. Zero keeps the mother-rate codeword
	// with zero padding.
	CodeRate float64
	// Combiner and ChanEst swap the corresponding pipeline modules.
	Combiner CombinerType
	ChanEst  ChanEstType
	// Precision selects the hot-path arithmetic width; the zero value is
	// the complex128 oracle path.
	Precision Precision
	// EstimateNoise makes the receiver estimate the noise variance from
	// the out-of-window residual of the channel-estimation IFFT instead of
	// trusting UserData.NoiseVar (removing the genie assumption).
	EstimateNoise bool
	// CorrectCFO estimates the residual carrier frequency offset from the
	// inter-slot rotation of the channel estimates and de-rotates the data
	// symbols accordingly.
	CorrectCFO bool
	// Scramble enables bit scrambling with the user-specific Gold sequence
	// (TS 36.211 §5.3.1) between coding and modulation.
	Scramble bool
	// KeepSoftBits makes the finish stage copy the demapped LLR stream
	// into UserResult.SoftBits (heap memory, one allocation per user).
	// Off by default: the zero-alloc hot path stays allocation-free and
	// SoftBits stays nil. HARQ-combining servers opt in.
	KeepSoftBits bool
	// InterleaverColumns configures the symbol block interleaver.
	InterleaverColumns int
}

// DefaultConfig returns the paper-faithful configuration: four receive
// antennas and pass-through turbo decoding.
func DefaultConfig() ReceiverConfig {
	return ReceiverConfig{
		Antennas:           DefaultAntennas,
		Turbo:              TurboPassthrough,
		TurboIterations:    5,
		InterleaverColumns: 32,
	}
}

// Validate checks the configuration.
func (c ReceiverConfig) Validate() error {
	switch {
	case c.Antennas < 1 || c.Antennas > 8:
		return fmt.Errorf("uplink: antenna count %d outside [1, 8]", c.Antennas)
	case c.Turbo == TurboFull && c.TurboIterations < 1:
		return fmt.Errorf("uplink: turbo iterations %d < 1", c.TurboIterations)
	case c.TurboKernel != turbo.KernelInt8 && c.TurboKernel != turbo.KernelFloat64:
		return fmt.Errorf("uplink: unknown turbo kernel %d", int(c.TurboKernel))
	case c.CodeRate != 0 && (c.CodeRate < 0 || c.CodeRate >= 1):
		return fmt.Errorf("uplink: code rate %g outside (0, 1)", c.CodeRate)
	case c.Combiner < CombinerMMSE || c.Combiner > CombinerIRC:
		return fmt.Errorf("uplink: unknown combiner %d", int(c.Combiner))
	case c.ChanEst < ChanEstWindowed || c.ChanEst > ChanEstLS:
		return fmt.Errorf("uplink: unknown channel estimator %d", int(c.ChanEst))
	case c.Precision < PrecisionComplex128 || c.Precision > PrecisionFloat32:
		return fmt.Errorf("uplink: unknown precision %d", int(c.Precision))
	case c.InterleaverColumns < 1:
		return fmt.Errorf("uplink: interleaver columns %d < 1", c.InterleaverColumns)
	}
	return nil
}
