package uplink

import (
	"math"
	"sync"

	"ltephy/internal/phy/fft"
	"ltephy/internal/phy/lane"
	"ltephy/internal/phy/linalg"
	"ltephy/internal/phy/sequence"
	"ltephy/internal/phy/workspace"
)

// Float32 hot path: with ReceiverConfig.Precision == PrecisionFloat32
// every stage between the job boundary and the turbo decoder runs on the
// split-plane float32 lane layout (internal/phy/lane). The received
// samples are packed to planes once at Init, the demapped LLRs widen
// back to float64 once in the finish stage, and everything in between —
// matched filter, transform batches, noise/CFO estimation, weight
// solves, combining, despreading, demapping — is stride-1 float32 plane
// arithmetic. Stage task structure, results, and all public interfaces
// are identical to the complex128 path; the dispatch is a branch at the
// top of each kernel in job.go / irc.go.
//
// Weight layout: where the complex128 path stores combining rows per
// subcarrier ([(k*layers+l)*ant + a], gather-friendly for a per-k row
// dot), the float32 path stores one contiguous subcarrier plane per
// (layer, antenna) pair ([(l*ant+a)*n + k]) so the combine stage is a
// stride-1 lane.MulAcc per antenna. The solve stage scatters into that
// layout; its cost is dominated by the per-subcarrier Cholesky anyway.

// jobF32 is the float32 split-plane state of a UserJob, populated by
// initF32 only when the job runs at PrecisionFloat32.
type jobF32 struct {
	plan *fft.PlanF32

	layerRef []lane.Vec // per-layer DMRS planes; shared, read-only

	// refRe/refIm hold the packed reference symbols,
	// [(slot*ant + a)*n + k].
	refRe, refIm []float32
	// dataRe/dataIm hold the packed data symbols,
	// [((slot*DataSymbolsPerSlot + sym)*ant + a)*n + k].
	dataRe, dataIm []float32
	// hestRe/hestIm hold both slots' channel estimates,
	// [slot*al*n + (a*layers+l)*n + k]; batched FFTs write straight in.
	hestRe, hestIm []float32
	// wRe/wIm[slot] hold combining weights, [(l*ant+a)*n + k].
	wRe, wIm [SlotsPerSubframe][]float32
	// combRe/combIm hold despread symbols, [g*n + t] in the canonical
	// (slot, sym, layer) group order shared with the complex128 path.
	combRe, combIm []float32
}

// ref returns the packed reference-symbol planes for (slot, antenna).
func (f *jobF32) ref(slot, a, ant, n int) (re, im []float32) {
	o := (slot*ant + a) * n
	return f.refRe[o : o+n], f.refIm[o : o+n]
}

// data returns the packed data-symbol planes for (slot, sym, antenna).
func (f *jobF32) data(slot, sym, a, ant, n int) (re, im []float32) {
	o := ((slot*DataSymbolsPerSlot+sym)*ant + a) * n
	return f.dataRe[o : o+n], f.dataIm[o : o+n]
}

// hest returns one slot's channel-estimate planes.
func (f *jobF32) hest(slot, al, n int) (re, im []float32) {
	o := slot * al * n
	return f.hestRe[o : o+al*n], f.hestIm[o : o+al*n]
}

// dmrsF32Cache shares the split-plane per-layer reference sequences
// across jobs, the float32 counterpart of dmrsCache: a pure function of
// the allocation width, built once per width by narrowing the complex128
// references.
var (
	dmrsF32Mu    sync.RWMutex
	dmrsF32Cache = map[int][]lane.Vec{}
)

// layerRefsF32 is a double-checked RWMutex cache: steady state is one
// uncontended RLock over a map read; the write lock is first-sight-only.
//
//ltephy:blocking-ok
func layerRefsF32(n int) []lane.Vec {
	dmrsF32Mu.RLock()
	refs := dmrsF32Cache[n]
	dmrsF32Mu.RUnlock()
	if refs != nil {
		return refs
	}
	src := layerRefs(n)
	refs = make([]lane.Vec, sequence.MaxLayers)
	for l := range refs {
		refs[l] = lane.NewVecIn(nil, n)
		lane.PackVec(refs[l], src[l])
	}
	dmrsF32Mu.Lock()
	if cached, ok := dmrsF32Cache[n]; ok {
		refs = cached
	} else {
		dmrsF32Cache[n] = refs
	}
	dmrsF32Mu.Unlock()
	return refs
}

// initF32 carves the float32 job-lifetime planes from ws and packs the
// received samples — the single complex128 -> float32 conversion point
// of the whole chain.
//
// The carves stored in job fields are job-lifetime by contract, exactly
// as in Init.
//
//ltephy:owns-scratch
func (j *UserJob) initF32(ws *workspace.Arena) {
	n, ant := j.n, j.Cfg.Antennas
	f := &j.f32
	f.plan = fft.GetF32(n)
	f.layerRef = layerRefsF32(n)[:j.layers]

	f.refRe = ws.Float32(SlotsPerSubframe * ant * n)
	f.refIm = ws.Float32(SlotsPerSubframe * ant * n)
	f.dataRe = ws.Float32(SlotsPerSubframe * DataSymbolsPerSlot * ant * n)
	f.dataIm = ws.Float32(SlotsPerSubframe * DataSymbolsPerSlot * ant * n)
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		for a := 0; a < ant; a++ {
			re, im := f.ref(slot, a, ant, n)
			lane.Pack(re, im, j.U.RefRx[slot][a])
			for sym := 0; sym < DataSymbolsPerSlot; sym++ {
				re, im = f.data(slot, sym, a, ant, n)
				lane.Pack(re, im, j.U.DataRx[slot][sym][a])
			}
		}
	}

	al := ant * j.layers
	f.hestRe = ws.Float32(SlotsPerSubframe * al * n)
	f.hestIm = ws.Float32(SlotsPerSubframe * al * n)
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		f.wRe[slot] = ws.Float32(n * j.layers * ant)
		f.wIm[slot] = ws.Float32(n * j.layers * ant)
	}
	f.combRe = ws.Float32(DataSymbolsPerSubframe * j.layers * n)
	f.combIm = ws.Float32(DataSymbolsPerSubframe * j.layers * n)
}

// chanEstTaskF32 is chanEstTask on split planes: matched filter against
// the layer's reference, batched IFFT, time-domain window, batched FFT
// landing directly in the hest slab through the strided destination.
func (j *UserJob) chanEstTaskF32(ws *workspace.Arena, i int, ls bool) {
	a := i / j.layers
	l := i % j.layers
	n, ant := j.n, j.Cfg.Antennas
	f := &j.f32
	ref := f.layerRef[l]
	if ls {
		for slot := 0; slot < SlotsPerSubframe; slot++ {
			hre, him := f.hest(slot, ant*j.layers, n)
			o := (a*j.layers + l) * n
			rxRe, rxIm := f.ref(slot, a, ant, n)
			lane.MulConj(hre[o:o+n], him[o:o+n], rxRe, rxIm, ref.Re, ref.Im)
		}
		return
	}
	m := ws.Mark()
	mfRe := ws.Float32(SlotsPerSubframe * n)
	mfIm := ws.Float32(SlotsPerSubframe * n)
	tdRe := ws.Float32(SlotsPerSubframe * n)
	tdIm := ws.Float32(SlotsPerSubframe * n)
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		rxRe, rxIm := f.ref(slot, a, ant, n)
		lane.MulConj(mfRe[slot*n:(slot+1)*n], mfIm[slot*n:(slot+1)*n], rxRe, rxIm, ref.Re, ref.Im)
	}
	f.plan.InverseBatch(ws, tdRe, tdIm, mfRe, mfIm, SlotsPerSubframe, n)
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		clear(tdRe[slot*n+j.window : (slot+1)*n])
		clear(tdIm[slot*n+j.window : (slot+1)*n])
	}
	aln := ant * j.layers * n
	o := (a*j.layers + l) * n
	f.plan.ForwardBatchStrided(ws, f.hestRe[o:], f.hestIm[o:], tdRe, tdIm, SlotsPerSubframe, aln, n)
	ws.Release(m)
}

// chanEstBatchF32 is chanEstBatch on split planes: slot-wide matched
// filter + IFFT + window + FFT batches over tasks [from, to), bit-exact
// with per-task chanEstTaskF32.
func (j *UserJob) chanEstBatchF32(ws *workspace.Arena, from, to int, ls bool) {
	if ls {
		for i := from; i < to; i++ {
			j.chanEstTaskF32(ws, i, true)
		}
		return
	}
	n, ant := j.n, j.Cfg.Antennas
	cnt := to - from
	m := ws.Mark()
	mfRe := ws.Float32(cnt * n)
	mfIm := ws.Float32(cnt * n)
	tdRe := ws.Float32(cnt * n)
	tdIm := ws.Float32(cnt * n)
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		for i := from; i < to; i++ {
			rxRe, rxIm := f32Ref(j, slot, i/j.layers)
			ref := j.f32.layerRef[i%j.layers]
			o := (i - from) * n
			lane.MulConj(mfRe[o:o+n], mfIm[o:o+n], rxRe, rxIm, ref.Re, ref.Im)
		}
		j.f32.plan.InverseBatch(ws, tdRe, tdIm, mfRe, mfIm, cnt, n)
		for i := 0; i < cnt; i++ {
			clear(tdRe[i*n+j.window : (i+1)*n])
			clear(tdIm[i*n+j.window : (i+1)*n])
		}
		hre, him := j.f32.hest(slot, ant*j.layers, n)
		j.f32.plan.ForwardBatch(ws, hre[from*n:to*n], him[from*n:to*n], tdRe, tdIm, cnt, n)
	}
	ws.Release(m)
}

// f32Ref is a small helper for the batch loop above.
func f32Ref(j *UserJob, slot, a int) (re, im []float32) {
	return j.f32.ref(slot, a, j.Cfg.Antennas, j.n)
}

// estimateNoiseF32 is estimateNoise on the hest planes: the
// slot-difference power reduction runs in lane.SumDiffMag2 (float64
// accumulation), with the same W/N rescale and floor.
func (j *UserJob) estimateNoiseF32() float64 {
	al := j.Cfg.Antennas * j.layers
	h0re, h0im := j.f32.hest(0, al, j.n)
	h1re, h1im := j.f32.hest(1, al, j.n)
	count := len(h0re)
	if count == 0 {
		return 1e-12
	}
	sum := lane.SumDiffMag2(h0re, h0im, h1re, h1im)
	est := (sum / float64(count)) / 2 * float64(j.n) / float64(j.window)
	if est < 1e-12 {
		est = 1e-12
	}
	return est
}

// estimateCFOF32 is estimateCFO on the hest planes via the conjugate
// correlation reduction.
func (j *UserJob) estimateCFOF32() float64 {
	al := j.Cfg.Antennas * j.layers
	h0re, h0im := j.f32.hest(0, al, j.n)
	h1re, h1im := j.f32.hest(1, al, j.n)
	re, im := lane.DotConj(h1re, h1im, h0re, h0im)
	return math.Atan2(im, re) / (2 * math.Pi * float64(SymbolsPerSlot))
}

// computeLinearWeightsF32 fills the float32 weight planes for the MMSE
// family: per subcarrier it gathers the channel matrix from the hest
// planes into stack arrays, solves by Cholesky (or runs the per-layer
// MRC matched filter), and scatters the rows into the per-(layer,
// antenna) plane layout. All scratch is on the stack — no arena marks,
// no allocation.
func (j *UserJob) computeLinearWeightsF32(solveNV float64, mrc bool) {
	n, ant, layers := j.n, j.Cfg.Antennas, j.layers
	al := ant * layers
	nv := float32(solveNV)
	var hR, hI, wR, wI [linalg.MaxDimF32 * linalg.MaxDimF32]float32
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		hre, him := j.f32.hest(slot, al, n)
		outRe, outIm := j.f32.wRe[slot], j.f32.wIm[slot]
		for k := 0; k < n; k++ {
			for a := 0; a < ant; a++ {
				for l := 0; l < layers; l++ {
					hR[a*layers+l] = hre[(a*layers+l)*n+k]
					hI[a*layers+l] = him[(a*layers+l)*n+k]
				}
			}
			if mrc {
				// Per-layer matched filter: w_l = h_l^H / (|h_l|^2 + nv).
				for l := 0; l < layers; l++ {
					var norm float32
					for a := 0; a < ant; a++ {
						norm += hR[a*layers+l]*hR[a*layers+l] + hI[a*layers+l]*hI[a*layers+l]
					}
					scale := 1 / (norm + nv)
					for a := 0; a < ant; a++ {
						wR[l*ant+a] = hR[a*layers+l] * scale
						wI[l*ant+a] = -hI[a*layers+l] * scale
					}
				}
			} else if !linalg.MMSESolveF32(wR[:al], wI[:al], hR[:al], hI[:al], ant, layers, nv) {
				// Singular channel: zero weights for this subcarrier, as in
				// the complex128 path.
				for i := 0; i < al; i++ {
					wR[i], wI[i] = 0, 0
				}
			}
			for i := 0; i < al; i++ {
				outRe[i*n+k] = wR[i]
				outIm[i*n+k] = wI[i]
			}
		}
	}
}

// estimateCovarianceF32 computes the band-averaged antenna covariance of
// the reference-symbol residuals into the split-plane rRe/rIm (ant x ant
// row-major), diagonally loaded like the complex128 estimateCovariance.
// Residuals are float32 (matching the hot-path arithmetic); the
// accumulation over 2n subcarriers runs in float64 stack accumulators so
// the band average keeps full precision.
func (j *UserJob) estimateCovarianceF32(rRe, rIm []float32) {
	n, ant, layers := j.n, j.Cfg.Antennas, j.layers
	al := ant * layers
	var accRe, accIm [linalg.MaxDimF32 * linalg.MaxDimF32]float64
	var eR, eI [linalg.MaxDimF32]float32
	count := 0
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		hre, him := j.f32.hest(slot, al, n)
		for k := 0; k < n; k++ {
			for a := 0; a < ant; a++ {
				var expR, expI float32
				for l := 0; l < layers; l++ {
					hr, hi := hre[(a*layers+l)*n+k], him[(a*layers+l)*n+k]
					rr, ri := j.f32.layerRef[l].Re[k], j.f32.layerRef[l].Im[k]
					expR += hr*rr - hi*ri
					expI += hr*ri + hi*rr
				}
				rxRe, rxIm := j.f32.ref(slot, a, ant, n)
				eR[a] = rxRe[k] - expR
				eI[a] = rxIm[k] - expI
			}
			for a := 0; a < ant; a++ {
				for b := 0; b < ant; b++ {
					// e_a * conj(e_b)
					accRe[a*ant+b] += float64(eR[a]*eR[b] + eI[a]*eI[b])
					accIm[a*ant+b] += float64(eI[a]*eR[b] - eR[a]*eI[b])
				}
			}
			count++
		}
	}
	scale := 1 / float64(count)
	load := j.nv*0.1 + 1e-9
	for a := 0; a < ant; a++ {
		for b := 0; b < ant; b++ {
			re := accRe[a*ant+b] * scale
			if a == b {
				re += load
			}
			rRe[a*ant+b] = float32(re)
			rIm[a*ant+b] = float32(accIm[a*ant+b] * scale)
		}
	}
}

// computeIRCWeightsF32 fills the float32 weight planes with the whitened
// MMSE solution W = (H^H R^{-1} H + I)^{-1} H^H R^{-1} — the IRC
// combiner on the lane layout, all scratch on the stack.
func (j *UserJob) computeIRCWeightsF32() {
	n, ant, layers := j.n, j.Cfg.Antennas, j.layers
	al := ant * layers
	var rR, rI [linalg.MaxDimF32 * linalg.MaxDimF32]float32
	j.estimateCovarianceF32(rR[:ant*ant], rI[:ant*ant])
	var hR, hI, wR, wI [linalg.MaxDimF32 * linalg.MaxDimF32]float32
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		hre, him := j.f32.hest(slot, al, n)
		outRe, outIm := j.f32.wRe[slot], j.f32.wIm[slot]
		for k := 0; k < n; k++ {
			for a := 0; a < ant; a++ {
				for l := 0; l < layers; l++ {
					hR[a*layers+l] = hre[(a*layers+l)*n+k]
					hI[a*layers+l] = him[(a*layers+l)*n+k]
				}
			}
			if !linalg.IRCSolveF32(wR[:al], wI[:al], rR[:ant*ant], rI[:ant*ant], hR[:al], hI[:al], ant, layers) {
				for i := 0; i < al; i++ {
					wR[i], wI[i] = 0, 0
				}
			}
			for i := 0; i < al; i++ {
				outRe[i*n+k] = wR[i]
				outIm[i*n+k] = wI[i]
			}
		}
	}
}

// combineSymbolF32 accumulates the combiner output for data task i into
// the (zeroed-on-entry) comb planes: one stride-1 lane.MulAcc per
// antenna per the weight-plane layout, then the residual-CFO
// de-rotation.
func (j *UserJob) combineSymbolF32(i int, combRe, combIm []float32) {
	layers := j.layers
	slot := i / (DataSymbolsPerSlot * layers)
	rem := i % (DataSymbolsPerSlot * layers)
	sym := rem / layers
	l := rem % layers
	n, ant := j.n, j.Cfg.Antennas
	wre, wim := j.f32.wRe[slot], j.f32.wIm[slot]
	for a := 0; a < ant; a++ {
		o := (l*ant + a) * n
		rxRe, rxIm := j.f32.data(slot, sym, a, ant, n)
		lane.MulAcc(combRe, combIm, wre[o:o+n], wim[o:o+n], rxRe, rxIm)
	}
	if j.cfo != 0 {
		delta := float64(DataSymbolPos(sym) - RefSymbolPos)
		theta := -2 * math.Pi * j.cfo * delta
		lane.ScaleC(float32(math.Cos(theta)), float32(math.Sin(theta)), combRe, combIm)
	}
}

// dataTaskF32 is dataTask on split planes: combine, batched IDFT
// despread into the combined slab, 1/sqrt(N) undo.
func (j *UserJob) dataTaskF32(ws *workspace.Arena, i int) {
	n := j.n
	m := ws.Mark()
	combRe := ws.Float32(n)
	combIm := ws.Float32(n)
	j.combineSymbolF32(i, combRe, combIm)
	outRe := j.f32.combRe[i*n : (i+1)*n]
	outIm := j.f32.combIm[i*n : (i+1)*n]
	j.f32.plan.InverseIn(ws, outRe, outIm, combRe, combIm)
	lane.Scale(float32(math.Sqrt(float64(n))), outRe, outIm)
	ws.Release(m)
}

// dataBatchF32 is dataBatch on split planes: gather the whole range,
// one batched IDFT into the combined slab, one scale pass. Bit-exact
// with per-task dataTaskF32.
func (j *UserJob) dataBatchF32(ws *workspace.Arena, from, to int) {
	n := j.n
	cnt := to - from
	m := ws.Mark()
	combRe := ws.Float32(cnt * n)
	combIm := ws.Float32(cnt * n)
	for i := from; i < to; i++ {
		o := (i - from) * n
		j.combineSymbolF32(i, combRe[o:o+n], combIm[o:o+n])
	}
	outRe := j.f32.combRe[from*n : to*n]
	outIm := j.f32.combIm[from*n : to*n]
	j.f32.plan.InverseBatch(ws, outRe, outIm, combRe, combIm, cnt, n)
	lane.Scale(float32(math.Sqrt(float64(n))), outRe, outIm)
	ws.Release(m)
}

// finishF32 is the float32 backend: split-plane deinterleave, float32
// demap, one float32 -> float64 LLR widening (the turbo decoder and
// HARQ keep their float64 interfaces), descramble, decode, CRC, and the
// float32 EVM / channel-MSE metrics.
//
// The widened LLRs are stored in j.softBits past the scratch Release —
// the same deliberate contract as finish: softBits survive on the arena
// until the job-lifetime mark is released (HARQ Absorb consumes them
// first).
//
//ltephy:owns-scratch
func (j *UserJob) finishF32(ws *workspace.Arena) {
	res := UserResult{UserID: j.U.Params.ID, ChannelMSE: math.NaN()}
	m := ws.Mark()
	total := len(j.f32.combRe)
	deintRe := ws.Float32(total)
	deintIm := ws.Float32(total)
	deinterleaveSymbolsF32(j.Cfg, deintRe, j.f32.combRe)
	deinterleaveSymbolsF32(j.Cfg, deintIm, j.f32.combIm)
	nv := j.nv
	if nv <= 0 { // finish ran without the weight stage: fall back to genie
		nv = math.Max(j.U.NoiseVar, 1e-9)
	}
	llr32 := j.U.Params.Mod.DemapF32(ws.Float32(j.format.TotalBits)[:0], deintRe, deintIm, float32(nv))
	// The single float32 -> float64 conversion of the receive chain: the
	// decoder, HARQ soft-combining and SoftBits() stay width-agnostic.
	llr := ws.Float(j.format.TotalBits)
	for i, v := range llr32 {
		llr[i] = float64(v)
	}
	if j.Cfg.Scramble {
		DescrambleIn(ws, llr, j.U.Params.ID)
	}
	j.softBits = llr
	dp := j.Cfg.DecodeParams()
	dp.Par = j.par
	payload, ok, halfIters := j.format.DecodeTransportBlockParams(j.bits[:0], ws, llr, dp)
	j.bits = payload
	res.NoiseVarEst = nv
	res.EVM = j.U.Params.Mod.EVMF32(deintRe, deintIm)
	res.Bits = payload
	res.CRCOK = ok
	res.TurboHalfIters = halfIters
	if j.U.Channel != nil {
		res.ChannelMSE = j.channelMSEF32()
	}
	j.stampServing(&res)
	// Scratch released here; softBits intentionally survives on the arena
	// until the job-lifetime mark is released, as in finish.
	j.res = res
	ws.Release(m)
}

// channelMSEF32 is channelMSE against the float32 estimate planes,
// widening each element for the float64 error accumulation.
func (j *UserJob) channelMSEF32() float64 {
	truth := j.U.Channel
	al := j.Cfg.Antennas * j.layers
	var num, den float64
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		hre, him := j.f32.hest(slot, al, j.n)
		for a := 0; a < j.Cfg.Antennas; a++ {
			for l := 0; l < j.layers; l++ {
				h := truth.Resp(a, l)
				for k := 0; k < j.n; k++ {
					o := (a*j.layers+l)*j.n + k
					dr := float64(hre[o]) - real(h[k])
					di := float64(him[o]) - imag(h[k])
					num += dr*dr + di*di
					den += real(h[k])*real(h[k]) + imag(h[k])*imag(h[k])
				}
			}
		}
	}
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}
