package tx

import (
	"math"
	"math/cmplx"
	"testing"

	"ltephy/internal/phy/channel"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
)

func TestGenerateShapes(t *testing.T) {
	cfg := DefaultConfig()
	p := uplink.UserParams{ID: 3, PRB: 5, Layers: 2, Mod: modulation.QAM16}
	u, err := Generate(cfg, p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	n := p.Subcarriers()
	if u.Antennas() != cfg.Receiver.Antennas {
		t.Fatalf("antennas = %d", u.Antennas())
	}
	for slot := 0; slot < uplink.SlotsPerSubframe; slot++ {
		if len(u.RefRx[slot]) != 4 {
			t.Fatalf("slot %d: %d ref antennas", slot, len(u.RefRx[slot]))
		}
		for a, row := range u.RefRx[slot] {
			if len(row) != n {
				t.Fatalf("ref slot %d antenna %d: %d bins", slot, a, len(row))
			}
		}
		for sym := 0; sym < uplink.DataSymbolsPerSlot; sym++ {
			for a, row := range u.DataRx[slot][sym] {
				if len(row) != n {
					t.Fatalf("data slot %d sym %d antenna %d: %d bins", slot, sym, a, len(row))
				}
			}
		}
	}
	if u.Channel == nil || len(u.Payload) == 0 {
		t.Error("ground truth missing")
	}
	format, err := uplink.NewTransportFormat(p, cfg.Receiver.Turbo)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Payload) != format.PayloadBits {
		t.Errorf("payload %d bits, format says %d", len(u.Payload), format.PayloadBits)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	p := uplink.UserParams{ID: 1, PRB: 3, Layers: 1, Mod: modulation.QPSK}
	a, err := Generate(cfg, p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Payload {
		if a.Payload[i] != b.Payload[i] {
			t.Fatal("payload differs for same seed")
		}
	}
	for a4, rowA := range a.RefRx[0] {
		for k, v := range rowA {
			if b.RefRx[0][a4][k] != v {
				t.Fatal("received samples differ for same seed")
			}
		}
	}
}

// TestSignalPowerBudget: per-subcarrier receive power should be about
// layers * unit channel gain plus noise — the scaling the demapper's
// noise variance assumes.
func TestSignalPowerBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SNRdB = 20
	p := uplink.UserParams{ID: 1, PRB: 20, Layers: 2, Mod: modulation.QAM16}
	u, err := Generate(cfg, p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var e float64
	count := 0
	for slot := 0; slot < uplink.SlotsPerSubframe; slot++ {
		for sym := 0; sym < uplink.DataSymbolsPerSlot; sym++ {
			for _, row := range u.DataRx[slot][sym] {
				for _, v := range row {
					e += real(v)*real(v) + imag(v)*imag(v)
					count++
				}
			}
		}
	}
	avg := e / float64(count)
	want := float64(p.Layers) // sum over layers of unit-gain links
	if avg < 0.5*want || avg > 2*want {
		t.Errorf("avg receive power %.2f, want ~%.0f", avg, want)
	}
}

// TestReferenceSymbolIsChannelTimesDMRS verifies the reference path
// without noise: one layer, one antenna, the received reference equals
// H .* r exactly.
func TestReferenceSymbolIsChannelTimesDMRS(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SNRdB = 300 // effectively noiseless
	p := uplink.UserParams{ID: 0, PRB: 4, Layers: 1, Mod: modulation.QPSK}
	u, err := Generate(cfg, p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	h := u.Channel.Resp(0, 0)
	// The layer-0 DMRS is the base sequence itself (zero shift); compare
	// |RefRx| with |H| since the base sequence is unit-modulus.
	for k, v := range u.RefRx[0][0] {
		if math.Abs(cmplx.Abs(v)-cmplx.Abs(h[k])) > 1e-6 {
			t.Fatalf("bin %d: |ref| = %g, |H| = %g", k, cmplx.Abs(v), cmplx.Abs(h[k]))
		}
	}
}

func TestGenerateRejectsBadInputs(t *testing.T) {
	cfg := DefaultConfig()
	r := rng.New(1)
	if _, err := Generate(cfg, uplink.UserParams{PRB: 0, Layers: 1}, r); err == nil {
		t.Error("invalid params accepted")
	}
	bad := cfg
	bad.Receiver.Antennas = 2
	if _, err := Generate(bad, uplink.UserParams{PRB: 4, Layers: 3, Mod: modulation.QPSK}, r); err == nil {
		t.Error("layers > antennas accepted")
	}
	bad = cfg
	bad.Receiver.InterleaverColumns = 0
	if _, err := Generate(bad, uplink.UserParams{PRB: 4, Layers: 1, Mod: modulation.QPSK}, r); err == nil {
		t.Error("invalid receiver config accepted")
	}
}

func TestGenerateSubframeIDs(t *testing.T) {
	cfg := DefaultConfig()
	users := []uplink.UserParams{
		{ID: 0, PRB: 2, Layers: 1, Mod: modulation.QPSK},
		{ID: 1, PRB: 3, Layers: 1, Mod: modulation.QAM16},
	}
	sf, err := GenerateSubframe(cfg, 9, users, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if sf.Seq != 9 || len(sf.Users) != 2 {
		t.Fatalf("subframe %d with %d users", sf.Seq, len(sf.Users))
	}
	for i, u := range sf.Users {
		if u.Params.ID != users[i].ID {
			t.Errorf("user %d has ID %d", i, u.Params.ID)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultConfig()
	r := rng.New(4)
	p := uplink.UserParams{ID: 0, PRB: 25, Layers: 2, Mod: modulation.QAM16}
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, p, r); err != nil {
			b.Fatal(err)
		}
	}
}

// TestThroughFrontend: routing the subframe through OFDM synthesis, CP
// insertion, CP removal and FFT (the paper's Fig. 2 frontend) must leave
// the receive grids numerically intact and the link decodable.
func TestThroughFrontend(t *testing.T) {
	p := uplink.UserParams{ID: 2, PRB: 5, Layers: 2, Mod: modulation.QAM16}
	direct, err := Generate(DefaultConfig(), p, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ThroughFrontend = true
	viaFE, err := Generate(cfg, p, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same signals — the frontend round trip is exact to FFT
	// precision.
	for slot := 0; slot < uplink.SlotsPerSubframe; slot++ {
		for a := 0; a < 4; a++ {
			for k := range direct.RefRx[slot][a] {
				if cmplx.Abs(direct.RefRx[slot][a][k]-viaFE.RefRx[slot][a][k]) > 1e-8 {
					t.Fatalf("ref slot %d antenna %d bin %d differs through frontend", slot, a, k)
				}
			}
			for sym := 0; sym < uplink.DataSymbolsPerSlot; sym++ {
				for k := range direct.DataRx[slot][sym][a] {
					if cmplx.Abs(direct.DataRx[slot][sym][a][k]-viaFE.DataRx[slot][sym][a][k]) > 1e-8 {
						t.Fatalf("data slot %d sym %d antenna %d bin %d differs", slot, sym, a, k)
					}
				}
			}
		}
	}
	res, err := uplink.Process(cfg.Receiver, viaFE)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CRCOK {
		t.Error("CRC failed through the frontend path")
	}
}

// TestChannelProfiles: every built-in power-delay profile yields a
// decodable link at good SNR.
func TestChannelProfiles(t *testing.T) {
	for _, prof := range []channel.Profile{
		channel.ProfileFlat, channel.ProfilePedestrian, channel.ProfileUrban, channel.ProfileDefault,
	} {
		cfg := DefaultConfig()
		cfg.Profile = prof
		p := uplink.UserParams{ID: 1, PRB: 5, Layers: 2, Mod: modulation.QAM16}
		u, err := Generate(cfg, p, rng.New(31))
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		res, err := uplink.Process(cfg.Receiver, u)
		if err != nil {
			t.Fatal(err)
		}
		if !res.CRCOK {
			t.Errorf("%s: CRC failed at 25 dB", prof.Name)
		}
		if res.ChannelMSE > 0.05 {
			t.Errorf("%s: channel MSE %g", prof.Name, res.ChannelMSE)
		}
	}
}
