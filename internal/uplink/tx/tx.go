// Package tx is a synthetic LTE uplink transmitter: it produces the
// frequency-domain receive samples a base station's frontend would deliver
// for one user, given scheduling parameters, by running the full transmit
// chain (payload → CRC → [turbo] → symbol interleave → QAM map → unitary
// DFT spreading → per-layer DMRS) through a fading MIMO channel with AWGN.
//
// The paper generates random input data and can only verify parallel
// against serial output (Section IV-D); with a real transmit chain the
// receiver is additionally verifiable end-to-end — the CRC must pass at
// reasonable SNR and the channel estimate must approach the true channel.
// DESIGN.md records this as the substitution for the authors' proprietary
// input generator.
package tx

import (
	"fmt"
	"math"

	"ltephy/internal/phy/channel"
	"ltephy/internal/phy/fft"
	"ltephy/internal/phy/frontend"
	"ltephy/internal/phy/sequence"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
)

// Config controls signal generation.
type Config struct {
	// Receiver is the receiver configuration the data must match
	// (antenna count, turbo mode, interleaver).
	Receiver uplink.ReceiverConfig
	// SNRdB is the per-subcarrier receive signal-to-noise ratio.
	SNRdB float64
	// ThroughFrontend routes the generated subframe through the paper's
	// Fig. 2 frontend (OFDM synthesis with cyclic prefixes per antenna,
	// then CP removal + FFT at the receiver side) instead of handing the
	// frequency-domain grid over directly. The paper excludes the frontend
	// from its benchmark; this flag exercises the full chain end to end.
	ThroughFrontend bool
	// Profile selects the multipath power-delay profile; the zero value
	// (Taps == 0) means channel.ProfileDefault.
	Profile channel.Profile
	// CFO is a residual carrier frequency offset as a fraction of the
	// 15 kHz subcarrier spacing: each successive OFDM symbol picks up a
	// common phase rotation of 2*pi*CFO (the common-phase-error component;
	// inter-carrier interference is negligible for |CFO| << 1 and not
	// modelled). The receiver corrects it when CorrectCFO is set.
	CFO float64
	// Interferers adds that many co-channel interference sources (other
	// cells' uplink users): each arrives through its own spatial channel
	// and transmits random QPSK on every symbol. INRdB sets their total
	// interference-to-signal ratio per subcarrier. Spatially coloured
	// interference is what the IRC combiner exists to reject.
	Interferers int
	INRdB       float64
}

// DefaultConfig pairs the paper-faithful receiver with a comfortable SNR.
func DefaultConfig() Config {
	return Config{Receiver: uplink.DefaultConfig(), SNRdB: 25}
}

// Generate produces one user's subframe input data with a freshly drawn
// random payload (redundancy version 0). The returned UserData carries
// ground truth (payload and channel) for verification.
func Generate(cfg Config, p uplink.UserParams, r *rng.RNG) (*uplink.UserData, error) {
	format, err := validateAndFormat(cfg, p)
	if err != nil {
		return nil, err
	}
	payload := make([]uint8, format.PayloadBits)
	for i := range payload {
		payload[i] = r.Bit()
	}
	return GenerateWithPayload(cfg, p, r, payload, 0)
}

func validateAndFormat(cfg Config, p uplink.UserParams) (uplink.TransportFormat, error) {
	if err := p.Validate(); err != nil {
		return uplink.TransportFormat{}, err
	}
	rc := cfg.Receiver
	if err := rc.Validate(); err != nil {
		return uplink.TransportFormat{}, err
	}
	if p.Layers > rc.Antennas {
		return uplink.TransportFormat{}, fmt.Errorf("tx: %d layers exceed %d antennas", p.Layers, rc.Antennas)
	}
	return uplink.NewTransportFormatRate(p, rc.Turbo, rc.CodeRate)
}

// GenerateWithPayload transmits a specific payload with the given
// redundancy version — the transmitter half of a HARQ retransmission (the
// channel and noise are drawn fresh from r, as they would be in a later
// subframe).
func GenerateWithPayload(cfg Config, p uplink.UserParams, r *rng.RNG, payload []uint8, rv int) (*uplink.UserData, error) {
	format, err := validateAndFormat(cfg, p)
	if err != nil {
		return nil, err
	}
	if len(payload) != format.PayloadBits {
		return nil, fmt.Errorf("tx: payload %d bits, format expects %d", len(payload), format.PayloadBits)
	}
	rc := cfg.Receiver
	bits := format.EncodeTransportBlockRV(payload, rv)
	if rc.Scramble {
		uplink.Scramble(bits, p.ID)
	}

	// Modulate and interleave the symbol stream.
	stream := p.Mod.Map(make([]complex128, 0, format.Symbols), bits)
	ilv := make([]complex128, len(stream))
	uplink.InterleaveSymbols(rc, ilv, stream)

	// Channel realisation and noise.
	noiseVar := math.Pow(10, -cfg.SNRdB/10)
	prof := cfg.Profile
	if prof.Taps == 0 {
		prof = channel.ProfileDefault
	}
	ch := channel.NewMIMOProfile(r, rc.Antennas, p.Layers, p.Subcarriers(), noiseVar, prof)

	u := &uplink.UserData{
		Params:   p,
		RV:       uint8(rv & 3),
		NoiseVar: noiseVar,
		Payload:  payload,
		Channel:  ch,
	}

	n := p.Subcarriers()
	plan := fft.Get(n)
	scale := complex(1/math.Sqrt(float64(n)), 0)

	intf := newInterference(cfg, rc.Antennas, n, prof, r)

	// Reference symbols: each layer transmits its cyclically-shifted DMRS.
	base := sequence.BaseDMRS(n)
	refTx := make([][]complex128, p.Layers)
	for l := range refTx {
		refTx[l] = sequence.LayerDMRS(base, l)
	}
	for slot := 0; slot < uplink.SlotsPerSubframe; slot++ {
		u.RefRx[slot] = ch.Apply(r, refTx)
		intf.addTo(u.RefRx[slot], r)
	}

	// Data symbols: unitary DFT spreading of each (slot, sym, layer) group,
	// in the same canonical order the receiver reassembles. The layers of
	// one symbol are contiguous in the interleaved stream, so each symbol
	// spreads as one FFT batch across its layers.
	for slot := 0; slot < uplink.SlotsPerSubframe; slot++ {
		for sym := 0; sym < uplink.DataSymbolsPerSlot; sym++ {
			gBase := (slot*uplink.DataSymbolsPerSlot + sym) * p.Layers
			spreadAll := make([]complex128, p.Layers*n)
			plan.ForwardBatch(nil, spreadAll, ilv[gBase*n:(gBase+p.Layers)*n], p.Layers, n)
			txGrid := make([][]complex128, p.Layers)
			for l := 0; l < p.Layers; l++ {
				spread := spreadAll[l*n : (l+1)*n]
				for k := range spread {
					spread[k] *= scale
				}
				txGrid[l] = spread
			}
			u.DataRx[slot][sym] = ch.Apply(r, txGrid)
			intf.addTo(u.DataRx[slot][sym], r)
		}
	}
	if cfg.CFO != 0 {
		applyCFO(u, cfg.CFO)
	}
	if cfg.ThroughFrontend {
		if err := throughFrontend(u); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// applyCFO rotates every received symbol by the common phase error its
// absolute symbol index accumulates: phi_l = 2*pi*cfo*l, l in [0, 14).
// The slot layout is three data symbols, the reference, three more.
func applyCFO(u *uplink.UserData, cfo float64) {
	rotate := func(rows [][]complex128, absIdx int) {
		theta := 2 * math.Pi * cfo * float64(absIdx)
		rot := complex(math.Cos(theta), math.Sin(theta))
		for _, row := range rows {
			for k := range row {
				row[k] *= rot
			}
		}
	}
	for slot := 0; slot < uplink.SlotsPerSubframe; slot++ {
		base := slot * uplink.SymbolsPerSlot
		rotate(u.RefRx[slot], base+uplink.RefSymbolPos)
		for sym := 0; sym < uplink.DataSymbolsPerSlot; sym++ {
			rotate(u.DataRx[slot][sym], base+uplink.DataSymbolPos(sym))
		}
	}
}

// throughFrontend replaces the user's receive grids with the result of
// synthesising them to time-domain samples (per antenna, with cyclic
// prefixes) and running the receiver frontend (CP removal + FFT). The
// round trip is numerically exact up to FFT precision, so the per-user
// processing behind it is unaffected — this validates the Fig. 2 stage
// the paper describes but excludes.
func throughFrontend(u *uplink.UserData) error {
	n := u.Params.Subcarriers()
	fcfg, err := frontend.ForSubcarriers(n)
	if err != nil {
		return err
	}
	// Slot symbol order: three data symbols, the reference, three more
	// (paper Section II-A).
	const refPos = 3
	for a := 0; a < u.Antennas(); a++ {
		for slot := 0; slot < uplink.SlotsPerSubframe; slot++ {
			grid := make([][]complex128, uplink.SymbolsPerSlot)
			rows := make([][]complex128, uplink.SymbolsPerSlot)
			dataIdx := 0
			for s := 0; s < uplink.SymbolsPerSlot; s++ {
				if s == refPos {
					rows[s] = u.RefRx[slot][a]
				} else {
					rows[s] = u.DataRx[slot][dataIdx][a]
					dataIdx++
				}
				full := make([]complex128, fcfg.FFTSize)
				for k := 0; k < n; k++ {
					full[fcfg.AllocationBin(k, n)] = rows[s][k]
				}
				grid[s] = full
			}
			samples, err := frontend.Synthesize(fcfg, grid)
			if err != nil {
				return err
			}
			recovered, err := frontend.Process(fcfg, samples)
			if err != nil {
				return err
			}
			dataIdx = 0
			for s := 0; s < uplink.SymbolsPerSlot; s++ {
				row := make([]complex128, n)
				for k := 0; k < n; k++ {
					row[k] = recovered[s][fcfg.AllocationBin(k, n)]
				}
				if s == refPos {
					u.RefRx[slot][a] = row
				} else {
					u.DataRx[slot][dataIdx][a] = row
					dataIdx++
				}
			}
		}
	}
	return nil
}

// GenerateSubframe draws users from params and assembles a Subframe.
func GenerateSubframe(cfg Config, seq int64, params []uplink.UserParams, r *rng.RNG) (*uplink.Subframe, error) {
	sf := &uplink.Subframe{Seq: seq}
	for _, p := range params {
		u, err := Generate(cfg, p, r)
		if err != nil {
			return nil, fmt.Errorf("tx: subframe %d user %d: %w", seq, p.ID, err)
		}
		sf.Users = append(sf.Users, u)
	}
	return sf, nil
}

// interference models co-channel uplink traffic from neighbouring cells:
// a fixed spatial channel per interferer (block fading, like the user's)
// carrying fresh random QPSK on every OFDM symbol.
type interference struct {
	chans [][]complex128 // [interferer][antenna*n + k]
	amp   float64        // per-interferer symbol amplitude
	ant   int
	n     int
}

// newInterference draws the interferers' spatial channels. A nil-receiver
// pattern keeps call sites clean when no interference is configured.
func newInterference(cfg Config, ant, n int, prof channel.Profile, r *rng.RNG) *interference {
	if cfg.Interferers <= 0 {
		return nil
	}
	totalPower := math.Pow(10, cfg.INRdB/10)
	intf := &interference{
		amp: math.Sqrt(totalPower / float64(cfg.Interferers)),
		ant: ant,
		n:   n,
	}
	for j := 0; j < cfg.Interferers; j++ {
		c := channel.NewMIMOProfile(r, ant, 1, n, 0, prof)
		flat := make([]complex128, ant*n)
		for a := 0; a < ant; a++ {
			copy(flat[a*n:(a+1)*n], c.Resp(a, 0))
		}
		intf.chans = append(intf.chans, flat)
	}
	return intf
}

// addTo superimposes one OFDM symbol's worth of interference onto the
// received antenna rows.
func (intf *interference) addTo(rx [][]complex128, r *rng.RNG) {
	if intf == nil {
		return
	}
	s := make([]complex128, intf.n)
	for _, g := range intf.chans {
		// Random QPSK from the interfering UE.
		for k := range s {
			re, im := 1.0, 1.0
			if r.Bit() == 1 {
				re = -1
			}
			if r.Bit() == 1 {
				im = -1
			}
			s[k] = complex(re*intf.amp/math.Sqrt2, im*intf.amp/math.Sqrt2)
		}
		for a := 0; a < intf.ant; a++ {
			row := rx[a]
			ga := g[a*intf.n : (a+1)*intf.n]
			for k := range row {
				row[k] += ga[k] * s[k]
			}
		}
	}
}
