package tx

import (
	"math"
	"sort"
	"testing"

	"ltephy/internal/phy/fft"
	"ltephy/internal/phy/frontend"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/rng"
)

// papr99 returns the 99th-percentile peak-to-average power ratio (dB) of
// OFDM symbols built from the given per-symbol subcarrier generator.
func papr99(t *testing.T, gen func(r *rng.RNG, n int) []complex128) float64 {
	t.Helper()
	const n = 300
	cfg, err := frontend.ForSubcarriers(n)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1234)
	var paprs []float64
	for trial := 0; trial < 300; trial++ {
		grid := make([]complex128, cfg.FFTSize)
		sub := gen(r, n)
		for k := 0; k < n; k++ {
			grid[cfg.AllocationBin(k, n)] = sub[k]
		}
		td := make([]complex128, cfg.FFTSize)
		fft.Get(cfg.FFTSize).Inverse(td, grid)
		var peak, mean float64
		for _, v := range td {
			p := real(v)*real(v) + imag(v)*imag(v)
			mean += p
			if p > peak {
				peak = p
			}
		}
		mean /= float64(cfg.FFTSize)
		paprs = append(paprs, 10*math.Log10(peak/mean))
	}
	sort.Float64s(paprs)
	return paprs[len(paprs)*99/100]
}

// TestSCFDMAPAPRAdvantage demonstrates why the uplink uses DFT-precoded
// SC-FDMA rather than plain OFDMA: the single-carrier structure cuts the
// 99th-percentile peak-to-average power ratio by several dB, which is what
// lets handset amplifiers run efficiently. (Context for the paper's
// Section II-C receiver chain — the IDFT "despread" stage exists to undo
// this precoding.)
func TestSCFDMAPAPRAdvantage(t *testing.T) {
	qam := modulation.QAM16
	// Plain OFDMA: independent constellation symbols straight onto
	// subcarriers.
	ofdma := papr99(t, func(r *rng.RNG, n int) []complex128 {
		bits := make([]uint8, n*qam.Bits())
		for i := range bits {
			bits[i] = r.Bit()
		}
		return qam.Map(make([]complex128, 0, n), bits)
	})
	// SC-FDMA: the same symbols DFT-precoded before mapping.
	scfdma := papr99(t, func(r *rng.RNG, n int) []complex128 {
		bits := make([]uint8, n*qam.Bits())
		for i := range bits {
			bits[i] = r.Bit()
		}
		syms := qam.Map(make([]complex128, 0, n), bits)
		spread := make([]complex128, n)
		fft.Get(n).Forward(spread, syms)
		scale := complex(1/math.Sqrt(float64(n)), 0)
		for k := range spread {
			spread[k] *= scale
		}
		return spread
	})
	if scfdma >= ofdma-1.5 {
		t.Errorf("SC-FDMA P99 PAPR %.1f dB not clearly below OFDMA's %.1f dB", scfdma, ofdma)
	}
	if ofdma < 8 || ofdma > 13 {
		t.Errorf("OFDMA P99 PAPR %.1f dB outside the expected ~10 dB band", ofdma)
	}
}
