package uplink

import (
	"sync"

	"ltephy/internal/phy/interleave"
)

// blockCache memoises symbol interleavers by (length, columns); user
// allocations repeat heavily across subframes (the paper reuses ten input
// data sets), so the permutations are shared. RWMutex-guarded so cache
// hits don't box the key — the lookup runs once per user per subframe on
// the allocation-free hot path.
var (
	blockMu    sync.RWMutex
	blockCache = map[[2]int]*interleave.Block{}
)

// getBlock is a double-checked RWMutex cache: steady state is one
// uncontended RLock over a map read; the write lock is first-sight-only.
//
//ltephy:blocking-ok
func getBlock(n, cols int) *interleave.Block {
	key := [2]int{n, cols}
	blockMu.RLock()
	b := blockCache[key]
	blockMu.RUnlock()
	if b != nil {
		return b
	}
	b = interleave.New(n, cols)
	blockMu.Lock()
	if cached, ok := blockCache[key]; ok {
		b = cached
	} else {
		blockCache[key] = b
	}
	blockMu.Unlock()
	return b
}

// InterleaveSymbols applies the transmit-side symbol interleaver. Exposed
// for the synthetic transmitter (internal/uplink/tx).
func InterleaveSymbols(cfg ReceiverConfig, dst, src []complex128) {
	interleave.Interleave(getBlock(len(src), cfg.InterleaverColumns), dst, src)
}

// deinterleaveSymbols inverts InterleaveSymbols (the paper's Fig. 3
// "Deinterleave" kernel, run before soft demapping).
func deinterleaveSymbols(cfg ReceiverConfig, dst, src []complex128) {
	interleave.Deinterleave(getBlock(len(src), cfg.InterleaverColumns), dst, src)
}

// deinterleaveSymbolsF32 is deinterleaveSymbols on one split plane:
// applying the same permutation to the re and im planes independently is
// exactly the complex deinterleave on the lane layout.
func deinterleaveSymbolsF32(cfg ReceiverConfig, dst, src []float32) {
	interleave.Deinterleave(getBlock(len(src), cfg.InterleaverColumns), dst, src)
}
