package uplink

import (
	"sync"

	"ltephy/internal/phy/interleave"
)

// blockCache memoises symbol interleavers by (length, columns); user
// allocations repeat heavily across subframes (the paper reuses ten input
// data sets), so the permutations are shared.
var blockCache sync.Map // [2]int -> *interleave.Block

func getBlock(n, cols int) *interleave.Block {
	key := [2]int{n, cols}
	if v, ok := blockCache.Load(key); ok {
		return v.(*interleave.Block)
	}
	b := interleave.New(n, cols)
	actual, _ := blockCache.LoadOrStore(key, b)
	return actual.(*interleave.Block)
}

// InterleaveSymbols applies the transmit-side symbol interleaver. Exposed
// for the synthetic transmitter (internal/uplink/tx).
func InterleaveSymbols(cfg ReceiverConfig, dst, src []complex128) {
	interleave.Interleave(getBlock(len(src), cfg.InterleaverColumns), dst, src)
}

// deinterleaveSymbols inverts InterleaveSymbols (the paper's Fig. 3
// "Deinterleave" kernel, run before soft demapping).
func deinterleaveSymbols(cfg ReceiverConfig, dst, src []complex128) {
	interleave.Deinterleave(getBlock(len(src), cfg.InterleaverColumns), dst, src)
}
