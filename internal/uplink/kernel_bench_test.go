package uplink_test

import (
	"testing"

	"ltephy/internal/phy/workspace"
	"ltephy/internal/uplink"
)

// Kernel-level timing benchmarks for the two transform-dominated stages of
// the receiver (EXPERIMENTS.md "kernel timing" section tracks these across
// PRs). Each benchmark drives one stage exactly the way the serial
// reference driver does — batched when the stage implements BatchStage,
// task-by-task otherwise — so the numbers reflect the real serial hot path.

// benchStage runs stage index si of the job once, the way processIn would.
func benchStage(ws *workspace.Arena, j *uplink.UserJob, si int) {
	s := j.Stages()[si]
	n := s.Tasks(j)
	if bs, ok := s.(uplink.BatchStage); ok {
		bs.RunBatch(ws, j, 0, n)
		return
	}
	for i := 0; i < n; i++ {
		s.Run(ws, j, i)
	}
}

// benchChanEstJob initialises a job for the heaviest bench user (4 layers)
// on a fresh arena and advances it through the given number of stages.
func benchChanEstJob(tb testing.TB, stages int) (*workspace.Arena, *uplink.UserJob) {
	tb.Helper()
	rc := uplink.DefaultConfig()
	sf := benchSubframe(tb, rc)
	u := sf.Users[2] // PRB 6, 4 layers, 64-QAM: the widest task grid
	ws := workspace.New()
	j := &uplink.UserJob{}
	if err := j.Init(ws, rc, u); err != nil {
		tb.Fatal(err)
	}
	for si := 0; si < stages; si++ {
		benchStage(ws, j, si)
	}
	return ws, j
}

// BenchmarkChanEstStage times the full channel-estimation stage (all
// antenna x layer tasks: matched filter, IFFT, window, FFT across both
// slots) for one user.
func BenchmarkChanEstStage(b *testing.B) {
	ws, j := benchChanEstJob(b, 1) // warm arena + caches via one full pass
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchStage(ws, j, 0)
	}
}

// BenchmarkDataStage times the full combine+despread stage (all symbol x
// layer tasks: antenna combining, CFO de-rotation, IDFT, rescale) for one
// user, with channel estimates and weights precomputed.
func BenchmarkDataStage(b *testing.B) {
	ws, j := benchChanEstJob(b, 2) // chanest + weights done
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchStage(ws, j, 2)
	}
}
