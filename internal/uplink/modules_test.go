package uplink_test

import (
	"testing"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

// berWith runs one link with the given receiver module selection and
// returns the payload bit error rate.
func berWith(t *testing.T, rc uplink.ReceiverConfig, p uplink.UserParams, snr float64, seed uint64) float64 {
	t.Helper()
	cfg := tx.DefaultConfig()
	cfg.Receiver = rc
	cfg.SNRdB = snr
	u, err := tx.Generate(cfg, p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := uplink.Process(rc, u)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range u.Payload {
		if res.Bits[i] != u.Payload[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(u.Payload))
}

// mseWith returns the channel-estimate MSE for a module selection.
func mseWith(t *testing.T, rc uplink.ReceiverConfig, p uplink.UserParams, snr float64, seed uint64) float64 {
	t.Helper()
	cfg := tx.DefaultConfig()
	cfg.Receiver = rc
	cfg.SNRdB = snr
	u, err := tx.Generate(cfg, p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := uplink.Process(rc, u)
	if err != nil {
		t.Fatal(err)
	}
	return res.ChannelMSE
}

// TestWindowingGain quantifies what the paper's IFFT-window-FFT chain buys
// over raw least squares: for a single-layer user the windowed estimate
// must be markedly cleaner (it discards 3/4 of the noise), and for a
// multi-layer user LS is not even usable (inter-layer interference).
func TestWindowingGain(t *testing.T) {
	base := uplink.DefaultConfig()
	ls := base
	ls.ChanEst = uplink.ChanEstLS

	single := uplink.UserParams{ID: 1, PRB: 8, Layers: 1, Mod: modulation.QPSK}
	w := mseWith(t, base, single, 15, 41)
	l := mseWith(t, ls, single, 15, 41)
	if w >= l {
		t.Errorf("windowed MSE %g not below LS MSE %g for one layer", w, l)
	}
	if l/w < 2 {
		t.Errorf("windowing gain only %.1fx; expected at least the ~4x noise rejection", l/w)
	}

	multi := uplink.UserParams{ID: 1, PRB: 8, Layers: 3, Mod: modulation.QPSK}
	wm := mseWith(t, base, multi, 15, 42)
	lm := mseWith(t, ls, multi, 15, 42)
	if lm < 10*wm {
		t.Errorf("LS multi-layer MSE %g not catastrophically above windowed %g", lm, wm)
	}
}

// TestCombinerHierarchy: for spatial multiplexing, MMSE must clearly beat
// MRC (which ignores inter-layer interference); for a single layer the two
// coincide up to scaling, so BERs match.
func TestCombinerHierarchy(t *testing.T) {
	mmse := uplink.DefaultConfig()
	mrc := mmse
	mrc.Combiner = uplink.CombinerMRC
	zf := mmse
	zf.Combiner = uplink.CombinerZF

	multi := uplink.UserParams{ID: 1, PRB: 8, Layers: 3, Mod: modulation.QAM16}
	berMMSE := berWith(t, mmse, multi, 22, 43)
	berMRC := berWith(t, mrc, multi, 22, 43)
	if berMRC < 10*berMMSE+0.01 {
		t.Errorf("MRC BER %g not clearly worse than MMSE %g under spatial multiplexing", berMRC, berMMSE)
	}
	// ZF suppresses interference: much closer to MMSE than MRC is.
	berZF := berWith(t, zf, multi, 22, 43)
	if berZF > berMRC/2 {
		t.Errorf("ZF BER %g not clearly better than MRC %g", berZF, berMRC)
	}

	single := uplink.UserParams{ID: 1, PRB: 8, Layers: 1, Mod: modulation.QAM16}
	sMMSE := berWith(t, mmse, single, 18, 44)
	sMRC := berWith(t, mrc, single, 18, 44)
	if sMRC > sMMSE+0.005 {
		t.Errorf("single-layer MRC BER %g differs from MMSE %g; they should coincide", sMRC, sMMSE)
	}
}

// TestZFNoiseAmplification: at low SNR with a fat channel matrix, MMSE's
// regularisation must not lose to plain inversion.
func TestZFNoiseAmplification(t *testing.T) {
	mmse := uplink.DefaultConfig()
	zf := mmse
	zf.Combiner = uplink.CombinerZF
	p := uplink.UserParams{ID: 1, PRB: 8, Layers: 4, Mod: modulation.QPSK}
	var mmseTotal, zfTotal float64
	for seed := uint64(50); seed < 56; seed++ {
		mmseTotal += berWith(t, mmse, p, 4, seed)
		zfTotal += berWith(t, zf, p, 4, seed)
	}
	if mmseTotal > zfTotal {
		t.Errorf("MMSE aggregate BER %g worse than ZF %g at low SNR", mmseTotal, zfTotal)
	}
}

func TestModuleConfigValidation(t *testing.T) {
	rc := uplink.DefaultConfig()
	rc.Combiner = uplink.CombinerType(9)
	if err := rc.Validate(); err == nil {
		t.Error("bogus combiner accepted")
	}
	rc = uplink.DefaultConfig()
	rc.ChanEst = uplink.ChanEstType(-1)
	if err := rc.Validate(); err == nil {
		t.Error("bogus channel estimator accepted")
	}
	if uplink.CombinerMRC.String() != "MRC" || uplink.CombinerZF.String() != "ZF" ||
		uplink.CombinerMMSE.String() != "MMSE" {
		t.Error("combiner names wrong")
	}
	if uplink.ChanEstLS.String() != "LS" || uplink.ChanEstWindowed.String() != "windowed" {
		t.Error("estimator names wrong")
	}
}

// TestModuleSwapsStayVerifiable: every module combination still satisfies
// the serial determinism contract the parallel runtime depends on.
func TestModuleSwapsStayVerifiable(t *testing.T) {
	p := uplink.UserParams{ID: 2, PRB: 4, Layers: 2, Mod: modulation.QAM16}
	for _, comb := range []uplink.CombinerType{uplink.CombinerMMSE, uplink.CombinerZF, uplink.CombinerMRC} {
		rc := uplink.DefaultConfig()
		rc.Combiner = comb
		cfg := tx.DefaultConfig()
		cfg.Receiver = rc
		u, err := tx.Generate(cfg, p, rng.New(60))
		if err != nil {
			t.Fatal(err)
		}
		a, err := uplink.Process(rc, u)
		if err != nil {
			t.Fatal(err)
		}
		b, err := uplink.Process(rc, u)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("combiner %v: processing not deterministic", comb)
		}
	}
}

// TestCFOEstimationAndCorrection: a residual carrier frequency offset
// breaks the uncorrected receiver; the inter-slot estimator recovers the
// offset and the corrected receiver decodes cleanly.
func TestCFOEstimationAndCorrection(t *testing.T) {
	const cfoTrue = 0.02 // 2% of subcarrier spacing (300 Hz at 15 kHz)
	p := uplink.UserParams{ID: 1, PRB: 8, Layers: 2, Mod: modulation.QAM16}

	make2 := func(correct bool) (uplink.UserResult, float64) {
		cfg := tx.DefaultConfig()
		cfg.CFO = cfoTrue
		cfg.Receiver.CorrectCFO = correct
		u, err := tx.Generate(cfg, p, rng.New(71))
		if err != nil {
			t.Fatal(err)
		}
		job, err := uplink.NewUserJob(cfg.Receiver, u)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < job.NumChanEstTasks(); i++ {
			job.ChanEstTask(i)
		}
		job.ComputeWeights()
		for i := 0; i < job.NumDataTasks(); i++ {
			job.DataTask(i)
		}
		return job.Finish(), job.CFOEstimate()
	}

	resOff, _ := make2(false)
	if resOff.CRCOK {
		t.Error("uncorrected receiver survived a 2% CFO; the impairment is not biting")
	}
	resOn, est := make2(true)
	if !resOn.CRCOK {
		t.Error("CFO-corrected receiver failed CRC")
	}
	if est < 0.015 || est > 0.025 {
		t.Errorf("estimated CFO %.4f, want ~%.3f", est, cfoTrue)
	}

	// Without an impairment the corrector must be benign.
	cfg := tx.DefaultConfig()
	cfg.Receiver.CorrectCFO = true
	u, err := tx.Generate(cfg, p, rng.New(72))
	if err != nil {
		t.Fatal(err)
	}
	res, err := uplink.Process(cfg.Receiver, u)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CRCOK {
		t.Error("CFO corrector broke a clean link")
	}
}

// TestIRCRejectsColoredInterference: under co-channel interference from
// two spatial directions, the IRC combiner's covariance whitening must
// clearly beat white-noise MMSE — at rate-1/2 turbo coding and -6 dB INR,
// IRC decodes every trial cleanly while MMSE drops transport blocks.
// Without interference IRC must be benign.
func TestIRCRejectsColoredInterference(t *testing.T) {
	p := uplink.UserParams{ID: 1, PRB: 8, Layers: 1, Mod: modulation.QAM16}
	run := func(comb uplink.CombinerType, interferers int, seed uint64) (bool, float64) {
		cfg := tx.DefaultConfig()
		cfg.Receiver.Combiner = comb
		cfg.Receiver.Turbo = uplink.TurboFull
		cfg.Receiver.CodeRate = 0.5
		cfg.SNRdB = 25
		cfg.Interferers = interferers
		cfg.INRdB = -6
		u, err := tx.Generate(cfg, p, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := uplink.Process(cfg.Receiver, u)
		if err != nil {
			t.Fatal(err)
		}
		errs := 0
		for i := range u.Payload {
			if res.Bits[i] != u.Payload[i] {
				errs++
			}
		}
		return res.CRCOK, float64(errs) / float64(len(u.Payload))
	}

	var mmseBER, ircBER float64
	mmsePass, ircPass := 0, 0
	const trials = 4
	for seed := uint64(80); seed < 80+trials; seed++ {
		ok1, b1 := run(uplink.CombinerMMSE, 2, seed)
		mmseBER += b1
		if ok1 {
			mmsePass++
		}
		ok2, b2 := run(uplink.CombinerIRC, 2, seed)
		ircBER += b2
		if ok2 {
			ircPass++
		}
	}
	if ircPass != trials {
		t.Errorf("IRC passed CRC only %d/%d times under interference", ircPass, trials)
	}
	if mmsePass >= trials {
		t.Errorf("MMSE passed all %d trials; interference too weak to discriminate", trials)
	}
	if ircBER >= mmseBER {
		t.Errorf("IRC aggregate BER %g not below MMSE %g under interference", ircBER, mmseBER)
	}

	// Benign without interference.
	ok, ber := run(uplink.CombinerIRC, 0, 90)
	if !ok || ber > 0 {
		t.Errorf("IRC on a clean link: crc=%v ber=%g", ok, ber)
	}
}
