package uplink_test

import (
	"testing"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

func TestRVForRoundCycle(t *testing.T) {
	want := []int{0, 2, 3, 1, 0, 2}
	for n, rv := range want {
		if got := uplink.RVForRound(n); got != rv {
			t.Errorf("RVForRound(%d) = %d, want %d", n, got, rv)
		}
	}
}

func TestNewHARQRequiresRateMatching(t *testing.T) {
	p := uplink.UserParams{PRB: 6, Layers: 1, Mod: modulation.QAM16}
	plain, err := uplink.NewTransportFormat(p, uplink.TurboPassthrough)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.NewHARQ(); err == nil {
		t.Error("HARQ accepted the pass-through format")
	}
	padded, err := uplink.NewTransportFormat(p, uplink.TurboFull)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := padded.NewHARQ(); err == nil {
		t.Error("HARQ accepted the zero-padded format")
	}
	rm, err := uplink.NewTransportFormatRate(p, uplink.TurboFull, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rm.NewHARQ(); err != nil {
		t.Errorf("HARQ rejected the rate-matched format: %v", err)
	}
}

// runReceiver pushes one transmission through the full receiver and
// returns the job (for SoftBits) and the standalone CRC outcome.
func runReceiver(t *testing.T, rc uplink.ReceiverConfig, u *uplink.UserData) (*uplink.UserJob, bool) {
	t.Helper()
	job, err := uplink.NewUserJob(rc, u)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < job.NumChanEstTasks(); i++ {
		job.ChanEstTask(i)
	}
	job.ComputeWeights()
	for i := 0; i < job.NumDataTasks(); i++ {
		job.DataTask(i)
	}
	res := job.Finish()
	return job, res.CRCOK
}

// TestHARQIncrementalRedundancy is the end-to-end HARQ scenario: a heavily
// punctured first transmission fails at low SNR; combining the soft bits
// of an rv-2 retransmission (fresh channel and noise, same payload)
// recovers the transport block.
func TestHARQIncrementalRedundancy(t *testing.T) {
	cfg := tx.DefaultConfig()
	cfg.Receiver.Turbo = uplink.TurboFull
	cfg.Receiver.CodeRate = 0.85 // heavy puncturing: ~15% parity survives
	cfg.SNRdB = 7

	p := uplink.UserParams{ID: 1, PRB: 6, Layers: 1, Mod: modulation.QAM16}
	format, err := uplink.NewTransportFormatRate(p, uplink.TurboFull, cfg.Receiver.CodeRate)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]uint8, format.PayloadBits)
	pr := rng.New(77)
	for i := range payload {
		payload[i] = pr.Bit()
	}

	// First transmission, rv 0.
	u0, err := tx.GenerateWithPayload(cfg, p, rng.New(101), payload, uplink.RVForRound(0))
	if err != nil {
		t.Fatal(err)
	}
	job0, ok0 := runReceiver(t, cfg.Receiver, u0)
	if ok0 {
		t.Skip("first transmission decoded on its own; scenario needs a harsher channel seed")
	}

	hc := cfg.Receiver
	hc.TurboIterations = 6
	harq, err := format.NewHARQCfg(hc)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := harq.Absorb(job0.SoftBits(), uplink.RVForRound(0)); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("combiner decoded from the first transmission the standalone decoder failed on (same data)")
	}
	if harq.Rounds() != 1 {
		t.Fatalf("rounds = %d", harq.Rounds())
	}

	// Retransmission, rv 2, fresh channel/noise.
	u1, err := tx.GenerateWithPayload(cfg, p, rng.New(202), payload, uplink.RVForRound(1))
	if err != nil {
		t.Fatal(err)
	}
	job1, _ := runReceiver(t, cfg.Receiver, u1)
	got, ok, err := harq.Absorb(job1.SoftBits(), uplink.RVForRound(1))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("HARQ combining of two transmissions still fails CRC")
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("combined payload bit %d differs", i)
		}
	}
}

func TestHARQRejectsWrongLength(t *testing.T) {
	p := uplink.UserParams{PRB: 4, Layers: 1, Mod: modulation.QPSK}
	format, err := uplink.NewTransportFormatRate(p, uplink.TurboFull, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	harq, err := format.NewHARQ()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := harq.Absorb(make([]float64, 10), 0); err == nil {
		t.Error("wrong-length soft bits accepted")
	}
}
