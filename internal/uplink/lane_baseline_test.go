package uplink_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestWriteLaneBenchBaseline records the lane-layout kernel baseline —
// the complex128 and float32 variants of the two transform-dominated
// stages plus the float32 end-to-end subframe — to the JSON file named
// by LTEPHY_BENCH_LANE_OUT, in the BENCH_*.json shape bench-compare
// consumes. Skipped unless the variable is set; `make bench-lane`
// drives it.
func TestWriteLaneBenchBaseline(t *testing.T) {
	out := os.Getenv("LTEPHY_BENCH_LANE_OUT")
	if out == "" {
		t.Skip("set LTEPHY_BENCH_LANE_OUT=<path> to record the lane baseline")
	}
	type entry struct {
		NsPerOp     int64 `json:"ns_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
	}
	measure := func(f func(*testing.B)) entry {
		r := testing.Benchmark(f)
		return entry{r.NsPerOp(), r.AllocsPerOp()}
	}
	doc := struct {
		Comment    string           `json:"comment"`
		Go         string           `json:"go"`
		CPU        string           `json:"cpu"`
		Date       string           `json:"date"`
		Benchmarks map[string]entry `json:"benchmarks"`
	}{
		Comment: "Lane-layout kernel baseline: complex128 vs float32 split-plane stages and the " +
			"float32 subframe. Recorded by `make bench-lane`; `make bench-compare` gates against it.",
		Go:   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		CPU:  cpuModel(),
		Date: time.Now().Format("2006-01-02"),
		Benchmarks: map[string]entry{
			"BenchmarkChanEstStage":    measure(BenchmarkChanEstStage),
			"BenchmarkDataStage":       measure(BenchmarkDataStage),
			"BenchmarkChanEstStageF32": measure(BenchmarkChanEstStageF32),
			"BenchmarkDataStageF32":    measure(BenchmarkDataStageF32),
			"BenchmarkSubframeE2EF32":  measure(BenchmarkSubframeE2EF32),
		},
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: ChanEstStageF32 %d ns/op, DataStageF32 %d ns/op", out,
		doc.Benchmarks["BenchmarkChanEstStageF32"].NsPerOp,
		doc.Benchmarks["BenchmarkDataStageF32"].NsPerOp)
}
