package uplink

import (
	"fmt"

	"ltephy/internal/phy/turbo"
)

// HARQProcess combines the soft bits of successive transmissions of the
// same transport block (incremental redundancy): each retransmission uses
// a different redundancy version of the rate-matched codeword, and the
// de-rate-matcher accumulates LLRs into the shared mother buffer until the
// CRC verifies. This is the eNodeB-side half of LTE's HARQ (TS 36.321);
// the paper's benchmark stops at a single CRC check, so this is an
// extension (DESIGN.md §5).
type HARQProcess struct {
	format    TransportFormat
	params    DecodeParams
	mother    []float64
	rounds    int
	halfIters int
}

// NewHARQ starts a combining process for the format, which must be the
// rate-matched TurboFull format (Rate > 0), decoding with the default
// receiver configuration. Use NewHARQCfg to configure iterations/kernel.
func (f TransportFormat) NewHARQ() (*HARQProcess, error) {
	return f.NewHARQCfg(DefaultConfig())
}

// NewHARQCfg starts a combining process whose decode attempts use the
// receiver configuration's turbo settings — the same iteration cap and
// kernel the subframe path applies, so bench/enb/sim configure HARQ and
// first transmissions from one place instead of hardcoding an iteration
// count at the Absorb call site.
func (f TransportFormat) NewHARQCfg(cfg ReceiverConfig) (*HARQProcess, error) {
	if f.Rate == 0 || f.Seg == nil {
		return nil, fmt.Errorf("uplink: HARQ requires the rate-matched TurboFull format")
	}
	return &HARQProcess{
		format: f,
		params: cfg.DecodeParams(),
		mother: make([]float64, f.Seg.MotherLen()),
	}, nil
}

// Rounds returns how many transmissions have been absorbed.
func (h *HARQProcess) Rounds() int { return h.rounds }

// Mother returns the accumulated mother-rate LLR buffer. The slice is
// the process's live state: callers may copy it out (checkpointing) but
// must not mutate it.
func (h *HARQProcess) Mother() []float64 { return h.mother }

// RestoreHARQCfg rebuilds a combining process from checkpointed state:
// the absorbed-round count and a snapshot of the mother buffer (copied
// in). The format and cfg must match the ones the snapshot was taken
// under — mother accumulation is plain float64 addition in a fixed
// order, so a restored process continues bit-identically.
func (f TransportFormat) RestoreHARQCfg(cfg ReceiverConfig, rounds int, mother []float64) (*HARQProcess, error) {
	h, err := f.NewHARQCfg(cfg)
	if err != nil {
		return nil, err
	}
	if len(mother) != len(h.mother) {
		return nil, fmt.Errorf("uplink: HARQ restore got %d mother LLRs, format expects %d",
			len(mother), len(h.mother))
	}
	if rounds < 0 {
		return nil, fmt.Errorf("uplink: HARQ restore with negative round count %d", rounds)
	}
	copy(h.mother, mother)
	h.rounds = rounds
	return h, nil
}

// HalfIters returns the realized turbo half-iteration count of the most
// recent Absorb.
func (h *HARQProcess) HalfIters() int { return h.halfIters }

// RVForRound returns the standard redundancy-version cycling for the n-th
// transmission (0-indexed): 0, 2, 3, 1 (TS 36.321 §5.4.2.2 ordering,
// chosen so the second transmission adds the most new parity).
func RVForRound(n int) int {
	return []int{0, 2, 3, 1}[n%4]
}

// Absorb accumulates one transmission's demapped (and descrambled) soft
// bits — exactly the LLR stream UserJob.SoftBits exposes — sent with the
// given redundancy version, then attempts a decode with the configured
// iteration cap and kernel.
func (h *HARQProcess) Absorb(llr []float64, rv int) (payload []uint8, ok bool, err error) {
	if len(llr) != h.format.TotalBits {
		return nil, false, fmt.Errorf("uplink: HARQ got %d soft bits, format expects %d",
			len(llr), h.format.TotalBits)
	}
	if err := h.format.Seg.AccumulateRM(h.mother, llr, rv); err != nil {
		return nil, false, err
	}
	h.rounds++
	tb, segOK, halfIters := h.format.Seg.DecodeOptsInto(nil, nil, h.mother, turbo.SegDecodeOpts{
		Iterations: h.params.Iterations,
		Kernel:     h.params.Kernel,
		TBCheck:    tbCRCCheck,
	})
	h.halfIters = halfIters
	ok = segOK && tbCRC.CheckBits(tb)
	return tb[:len(tb)-tbCRC.Bits()], ok, nil
}
