package uplink

import (
	"fmt"
	"math"
	"sync"

	"ltephy/internal/phy/fft"
	"ltephy/internal/phy/linalg"
	"ltephy/internal/phy/sequence"
	"ltephy/internal/phy/turbo"
	"ltephy/internal/phy/workspace"
)

// UserJob carries the intermediate state for processing one user in one
// subframe and exposes the stage/task structure the paper parallelises
// (Section III and Fig. 5):
//
//	stage 1: channel estimation, NumChanEstTasks() tasks — independent
//	stage 2: combiner weights                            — serial
//	stage 3: combine/despread, NumDataTasks() tasks      — independent
//	stage 4: backend (demap/decode/CRC)                  — serial
//
// Stages() returns the pipeline as Stage values resolved through the
// estimator/combiner registries; the per-method API (ChanEstTask,
// ComputeWeights, DataTask, Finish) remains as a convenience wrapper over
// the same kernels with heap-backed scratch.
//
// Tasks within a stage may run concurrently on different goroutines; the
// stage boundaries are barriers the caller must enforce (the work-stealing
// runtime in internal/sched does, and the serial receiver trivially does).
//
// Memory: a job initialised with Init(ws, ...) carves its job-lifetime
// buffers (channel estimates, weights, combined symbols) from ws; they are
// valid until the caller releases the mark enclosing the job. Per-task
// scratch comes from the arena passed to each Stage.Run call — the
// executing worker's, which need not be the one that owns the job's
// buffers. Decoded payload bits are always heap memory (they outlive the
// job), demapped soft bits live wherever the finish stage's arena puts
// them.
type UserJob struct {
	Cfg ReceiverConfig
	U   *UserData

	n      int // subcarriers
	layers int
	format TransportFormat

	// plan is the shared FFT plan for the allocation width, resolved once
	// at Init so per-symbol/per-antenna loops never repeat the fft.Get map
	// lookup; window is the channel-estimation time-domain window width.
	plan   *fft.Plan
	window int

	layerRef [][]complex128 // conj-ready per-layer DMRS, [layer][k]; shared, read-only

	// hestAll is one contiguous carve holding both slots' channel
	// estimates ([slot][(a*layers+l)*n + k]); batched FFTs write straight
	// into it. hest[slot] are its per-slot subslices.
	hestAll []complex128
	hest    [SlotsPerSubframe][]complex128
	// weights[slot][(k*layers+l)*antennas + a]: MMSE combining rows.
	weights [SlotsPerSubframe][]complex128
	// combined[g*n + t]: despread time-domain symbols in canonical order,
	// g = (slot*DataSymbolsPerSlot + sym)*layers + layer.
	combined []complex128

	// nv is the noise variance the combiner and demapper use: the genie
	// value from UserData, or (with Cfg.EstimateNoise) the slot-difference
	// estimate computed in the weight stage.
	nv float64
	// softBits are the demapped (and descrambled) LLRs the finish stage
	// produced — the input HARQ combining needs for retransmission
	// soft-combining. Arena-backed when finish ran with an arena.
	softBits []float64
	// cfo is the estimated carrier frequency offset (fraction of the
	// subcarrier spacing), resolved in the weight stage when Cfg.CorrectCFO.
	cfo float64

	// res is the finished result; bits is its reusable heap backing for the
	// decoded payload. Re-initialising a job recycles bits, so a result's
	// Bits are only valid until the job's next run — drivers that retain
	// results (the pool's OnResult) use a fresh job per user.
	res  UserResult
	bits []uint8

	// fp32 selects the float32 split-plane hot path (job_f32.go): every
	// stage kernel branches to its F32 twin, with f32 holding the lane
	// layout state. Set from Cfg.Precision at Init.
	fp32 bool
	f32  jobF32

	// par, when set (after Init — Init clears it), lets the turbo
	// decoder fan one code block's trellis windows out across scheduler
	// workers instead of serializing a large block on one core.
	par turbo.Parallel
}

// SetParallel installs the window fan-out hook the finish stage hands to
// the turbo decoder. Call after Init; a nil hook (or none) decodes
// serially with identical results.
func (j *UserJob) SetParallel(p turbo.Parallel) { j.par = p }

// SoftBits returns the demapped, descrambled LLR stream of the whole
// allocation. Valid after the finish stage; HARQProcess.Absorb consumes
// it. When the job ran on an arena the slice is arena-backed and must be
// consumed before the job's scratch is released.
func (j *UserJob) SoftBits() []float64 { return j.softBits }

// Result returns the user result the finish stage produced.
func (j *UserJob) Result() UserResult { return j.res }

// dmrsCache shares the per-layer reference sequences across jobs: they are
// a pure function of the allocation width, and user allocations repeat
// heavily across subframes. Each entry holds all MaxLayers layers.
// RWMutex-guarded so the per-job lookup doesn't box the key and stays
// allocation-free.
var (
	dmrsMu    sync.RWMutex
	dmrsCache = map[int][][]complex128{}
)

// layerRefs is a double-checked RWMutex cache: steady state is one
// uncontended RLock over a map read; the write lock is first-sight-only.
//
//ltephy:blocking-ok
func layerRefs(n int) [][]complex128 {
	dmrsMu.RLock()
	refs := dmrsCache[n]
	dmrsMu.RUnlock()
	if refs != nil {
		return refs
	}
	base := sequence.BaseDMRS(n)
	refs = make([][]complex128, sequence.MaxLayers)
	for l := range refs {
		refs[l] = sequence.LayerDMRS(base, l)
	}
	dmrsMu.Lock()
	if cached, ok := dmrsCache[n]; ok {
		refs = cached
	} else {
		dmrsCache[n] = refs
	}
	dmrsMu.Unlock()
	return refs
}

// NewUserJob validates inputs and allocates the job state on the heap.
func NewUserJob(cfg ReceiverConfig, u *UserData) (*UserJob, error) {
	j := &UserJob{}
	if err := j.Init(nil, cfg, u); err != nil {
		return nil, err
	}
	return j, nil
}

// Init (re)initialises the job for one user, carving the job-lifetime
// buffers from ws (heap when nil). A zero-value or previously used UserJob
// is valid; reuse keeps the hot path allocation-free but recycles the
// previous result's payload storage.
//
// The carves stored in job fields are job-lifetime by contract: the
// worker's per-user mark (sched.processUser) outlives the job.
//
//ltephy:owns-scratch
func (j *UserJob) Init(ws *workspace.Arena, cfg ReceiverConfig, u *UserData) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := u.Params.Validate(); err != nil {
		return err
	}
	if u.Params.Layers > cfg.Antennas {
		return fmt.Errorf("uplink: user %d: %d layers exceed %d antennas",
			u.Params.ID, u.Params.Layers, cfg.Antennas)
	}
	if got := u.Antennas(); got != cfg.Antennas {
		return fmt.Errorf("uplink: user %d: data captured with %d antennas, receiver configured for %d",
			u.Params.ID, got, cfg.Antennas)
	}
	n := u.Params.Subcarriers()
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		for a := 0; a < cfg.Antennas; a++ {
			if len(u.RefRx[slot][a]) != n {
				return fmt.Errorf("uplink: user %d: ref symbol slot %d antenna %d has %d subcarriers, want %d",
					u.Params.ID, slot, a, len(u.RefRx[slot][a]), n)
			}
		}
	}
	format, err := cachedTransportFormat(u.Params, cfg.Turbo, cfg.CodeRate)
	if err != nil {
		return err
	}
	bits := j.bits // survives re-initialisation: reusable payload storage
	*j = UserJob{Cfg: cfg, U: u, n: n, layers: u.Params.Layers, format: format, bits: bits}
	j.window = n / sequence.MaxLayers
	if j.window < 1 {
		j.window = 1
	}
	if cfg.Precision == PrecisionFloat32 {
		// Float32 lane path: the job-lifetime state is the split-plane
		// layout in j.f32; the complex128 buffers stay nil.
		j.fp32 = true
		j.initF32(ws)
		return nil
	}
	j.plan = fft.Get(n)
	j.layerRef = layerRefs(n)[:j.layers]
	al := cfg.Antennas * j.layers
	j.hestAll = ws.Complex(SlotsPerSubframe * al * n)
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		j.hest[slot] = j.hestAll[slot*al*n : (slot+1)*al*n]
		j.weights[slot] = ws.Complex(n * j.layers * cfg.Antennas)
	}
	j.combined = ws.Complex(DataSymbolsPerSubframe * j.layers * n)
	return nil
}

// Format returns the transport format the job decodes against.
func (j *UserJob) Format() TransportFormat { return j.format }

// NumChanEstTasks returns antennas * layers — the paper's "up to 16 tasks".
func (j *UserJob) NumChanEstTasks() int { return j.Cfg.Antennas * j.layers }

// NumDataTasks returns dataSymbols * layers — the paper's "up to 24 tasks"
// per slot, i.e. 12*layers for the whole subframe.
func (j *UserJob) NumDataTasks() int { return DataSymbolsPerSubframe * j.layers }

// ChanEstTask estimates the channel for one (antenna, layer) pair with
// heap scratch — the convenience form of the channel-estimation stage.
func (j *UserJob) ChanEstTask(i int) {
	chanEstStages[j.Cfg.ChanEst].Run(nil, j, i)
}

// matchedFilter writes the matched-filter output for (slot, antenna,
// layer l's reference) into mf: unit-modulus reference, so conjugate
// multiply inverts the known sequence and leaves H plus the other layers'
// responses shifted to their own windows.
func (j *UserJob) matchedFilter(mf []complex128, slot, a, l int) {
	rx := j.U.RefRx[slot][a]
	ref := j.layerRef[l]
	for k := 0; k < j.n; k++ {
		mf[k] = rx[k] * cmplxConj(ref[k])
	}
}

// chanEstTask estimates the channel for one (antenna, layer) pair across
// both slots: matched filter against the layer's reference sequence, IFFT
// to the time domain, windowing around the layer's cyclic shift, FFT back
// (the paper's Fig. 3 channel-estimation chain). ls selects the raw
// least-squares variant (matched filter only). The two slots run as one
// FFT batch, landing directly in hestAll through the strided destination.
func (j *UserJob) chanEstTask(ws *workspace.Arena, i int, ls bool) {
	if j.fp32 {
		j.chanEstTaskF32(ws, i, ls)
		return
	}
	a := i / j.layers
	l := i % j.layers
	n := j.n
	if ls {
		// Raw least-squares: no denoising, no layer separation.
		for slot := 0; slot < SlotsPerSubframe; slot++ {
			out := j.hest[slot][(a*j.layers+l)*n : (a*j.layers+l+1)*n]
			j.matchedFilter(out, slot, a, l)
		}
		return
	}
	m := ws.Mark()
	mf := ws.Complex(SlotsPerSubframe * n)
	td := ws.Complex(SlotsPerSubframe * n)
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		j.matchedFilter(mf[slot*n:(slot+1)*n], slot, a, l)
	}
	j.plan.InverseBatch(ws, td, mf, SlotsPerSubframe, n)
	// Window: this layer's impulse response occupies [0, window).
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		seg := td[slot*n : (slot+1)*n]
		for t := j.window; t < n; t++ {
			seg[t] = 0
		}
	}
	aln := j.Cfg.Antennas * j.layers * n
	j.plan.ForwardBatchStrided(ws, j.hestAll[(a*j.layers+l)*n:], td, SlotsPerSubframe, aln, n)
	ws.Release(m)
}

// chanEstBatch runs channel-estimation tasks [from, to) as slot-wide FFT
// batches: per slot, matched-filter every (antenna, layer) of the range
// into contiguous scratch, one batched IFFT, window, one batched FFT
// straight into the hest slab. Per-vector arithmetic is identical to
// chanEstTask, so results are bit-exact with the per-task path.
func (j *UserJob) chanEstBatch(ws *workspace.Arena, from, to int, ls bool) {
	if j.fp32 {
		j.chanEstBatchF32(ws, from, to, ls)
		return
	}
	if ls {
		for i := from; i < to; i++ {
			j.chanEstTask(ws, i, true)
		}
		return
	}
	n := j.n
	cnt := to - from
	m := ws.Mark()
	mf := ws.Complex(cnt * n)
	td := ws.Complex(cnt * n)
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		for i := from; i < to; i++ {
			j.matchedFilter(mf[(i-from)*n:(i-from+1)*n], slot, i/j.layers, i%j.layers)
		}
		j.plan.InverseBatch(ws, td, mf, cnt, n)
		for i := 0; i < cnt; i++ {
			seg := td[i*n : (i+1)*n]
			for t := j.window; t < n; t++ {
				seg[t] = 0
			}
		}
		j.plan.ForwardBatch(ws, j.hest[slot][from*n:to*n], td, cnt, n)
	}
	ws.Release(m)
}

// estimateNoise derives the noise variance from the difference of the two
// slots' channel estimates: the channel is block-fading (constant across
// the subframe), so (H_slot0 - H_slot1) is estimation noise alone. The
// window keeps a W/N fraction of the matched filter's noise, hence the
// N/W rescale back to per-subcarrier variance.
func (j *UserJob) estimateNoise() float64 {
	if j.fp32 {
		return j.estimateNoiseF32()
	}
	window := j.window
	var sum float64
	count := 0
	h0, h1 := j.hest[0], j.hest[1]
	for i := range h0 {
		d := h0[i] - h1[i]
		sum += real(d)*real(d) + imag(d)*imag(d)
		count++
	}
	if count == 0 {
		return 1e-12
	}
	// Var(H0-H1) = 2 * windowed noise variance = 2 * sigma^2 * W/N.
	est := (sum / float64(count)) / 2 * float64(j.n) / float64(window)
	if est < 1e-12 {
		est = 1e-12
	}
	return est
}

// NoiseVar returns the noise variance the job operates with (resolved
// during the weight stage).
func (j *UserJob) NoiseVar() float64 { return j.nv }

// CFOEstimate returns the estimated carrier frequency offset (fraction of
// the subcarrier spacing); zero unless Cfg.CorrectCFO was set. Valid after
// the weight stage.
func (j *UserJob) CFOEstimate() float64 { return j.cfo }

// estimateCFO derives the residual frequency offset from the rotation
// between the two slots' channel estimates: the references sit seven
// symbols apart, so angle(sum H1*conj(H0)) = 2*pi*cfo*7. Unambiguous for
// |cfo| < 1/14 of the subcarrier spacing — ample for a residual offset.
func (j *UserJob) estimateCFO() float64 {
	if j.fp32 {
		return j.estimateCFOF32()
	}
	var acc complex128
	h0, h1 := j.hest[0], j.hest[1]
	for i := range h0 {
		acc += h1[i] * cmplxConj(h0[i])
	}
	return math.Atan2(imag(acc), real(acc)) / (2 * math.Pi * float64(SymbolsPerSlot))
}

// resolveNoiseAndCFO fixes the working noise variance (genie or estimated)
// and, when configured, the residual CFO — the common preamble of every
// weight stage. The paper notes the weight computation "considers all the
// receiver channels and layers, and is therefore not easily parallelized";
// it runs as one serial task per user.
func (j *UserJob) resolveNoiseAndCFO() {
	var nv float64
	if j.Cfg.EstimateNoise {
		nv = j.estimateNoise()
	} else {
		nv = j.U.NoiseVar
	}
	if nv < 1e-12 {
		nv = 1e-12 // keep the regularised Gram matrix invertible
	}
	j.nv = nv
	if j.Cfg.CorrectCFO {
		j.cfo = j.estimateCFO()
	}
}

// ComputeWeights derives the per-subcarrier combining matrices with heap
// scratch — the convenience form of the weight stage selected by
// Cfg.Combiner.
func (j *UserJob) ComputeWeights() {
	combinerStages[j.Cfg.Combiner].Run(nil, j, 0)
}

// computeLinearWeights fills the weight buffers for the MMSE family:
// solveNV is the diagonal loading of the Gram matrix (the noise variance
// for MMSE, a numerical guard for ZF), and mrc selects the per-layer
// matched filter instead of the joint solve.
func (j *UserJob) computeLinearWeights(a *workspace.Arena, solveNV float64, mrc bool) {
	if j.fp32 {
		j.computeLinearWeightsF32(solveNV, mrc)
		return
	}
	ant := j.Cfg.Antennas
	m := a.Mark()
	ws := linalg.NewMMSEWorkspaceIn(a, ant, j.layers)
	h := linalg.NewMatrixIn(a, ant, j.layers)
	w := linalg.NewMatrixIn(a, j.layers, ant)
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		hs := j.hest[slot]
		out := j.weights[slot]
		for k := 0; k < j.n; k++ {
			for ai := 0; ai < ant; ai++ {
				for l := 0; l < j.layers; l++ {
					h.Set(ai, l, hs[(ai*j.layers+l)*j.n+k])
				}
			}
			if mrc {
				// Per-layer matched filter: w_l = h_l^H / (|h_l|^2 + nv).
				for l := 0; l < j.layers; l++ {
					var norm float64
					for ai := 0; ai < ant; ai++ {
						v := h.At(ai, l)
						norm += real(v)*real(v) + imag(v)*imag(v)
					}
					scale := complex(1/(norm+solveNV), 0)
					for ai := 0; ai < ant; ai++ {
						w.Set(l, ai, cmplxConj(h.At(ai, l))*scale)
					}
				}
			} else if err := ws.Solve(&w, h, solveNV); err != nil {
				// A singular channel estimate (all-zero input data) yields
				// zero weights for this subcarrier rather than failing the
				// whole subframe.
				for i := range w.Data {
					w.Data[i] = 0
				}
			}
			copy(out[(k*j.layers)*ant:(k*j.layers+j.layers)*ant], w.Data)
		}
	}
	a.Release(m)
}

// DataTask combines one (slot, symbol, layer) with heap scratch — the
// convenience form of the data stage.
func (j *UserJob) DataTask(i int) {
	dataStage{}.Run(nil, j, i)
}

// combineSymbol gathers the combiner input for data task i into comb
// (length n): the per-subcarrier weighted sum across antennas, plus the
// residual-CFO de-rotation. This is the frequency-domain vector the
// despread IDFT consumes.
func (j *UserJob) combineSymbol(i int, comb []complex128) {
	layers := j.layers
	slot := i / (DataSymbolsPerSlot * layers)
	rem := i % (DataSymbolsPerSlot * layers)
	sym := rem / layers
	l := rem % layers
	n := j.n
	ant := j.Cfg.Antennas
	rx := j.U.DataRx[slot][sym]
	w := j.weights[slot]
	for k := 0; k < n; k++ {
		row := w[(k*layers+l)*ant : (k*layers+l+1)*ant]
		var sum complex128
		for a := 0; a < ant; a++ {
			sum += row[a] * rx[a][k]
		}
		comb[k] = sum
	}
	if j.cfo != 0 {
		// The combiner inverted the slot reference's phase; de-rotate the
		// residual CFO accumulated between the reference and this symbol.
		delta := float64(DataSymbolPos(sym) - RefSymbolPos)
		theta := -2 * math.Pi * j.cfo * delta
		rot := complex(math.Cos(theta), math.Sin(theta))
		for k := range comb {
			comb[k] *= rot
		}
	}
}

// despreadScale undoes the transmitter's unitary 1/sqrt(N) spreading
// scale on the despread output.
func despreadScale(out []complex128, n int) {
	scale := complex(math.Sqrt(float64(n)), 0)
	for t := range out {
		out[t] *= scale
	}
}

// dataTask combines one (slot, symbol, layer) across antennas and
// transforms it back to the time domain (SC-FDMA despread) — the paper's
// "antenna combining and IFFT ... performed on each separate symbol and
// layer".
func (j *UserJob) dataTask(ws *workspace.Arena, i int) {
	if j.fp32 {
		j.dataTaskF32(ws, i)
		return
	}
	n := j.n
	m := ws.Mark()
	comb := ws.Complex(n)
	j.combineSymbol(i, comb)
	// Data task i lands at group index i: tasks and the canonical combined
	// layout share the (slot, sym, layer) order.
	out := j.combined[i*n : (i+1)*n]
	j.plan.InverseIn(ws, out, comb)
	despreadScale(out, n)
	ws.Release(m)
}

// dataBatch runs data tasks [from, to): every symbol of the range is
// gathered into contiguous scratch, then one batched IDFT despreads them
// all straight into the combined slab. Per-vector arithmetic is identical
// to dataTask, so results are bit-exact with the per-task path.
func (j *UserJob) dataBatch(ws *workspace.Arena, from, to int) {
	if j.fp32 {
		j.dataBatchF32(ws, from, to)
		return
	}
	n := j.n
	cnt := to - from
	m := ws.Mark()
	comb := ws.Complex(cnt * n)
	for i := from; i < to; i++ {
		j.combineSymbol(i, comb[(i-from)*n:(i-from+1)*n])
	}
	out := j.combined[from*n : to*n]
	j.plan.InverseBatch(ws, out, comb, cnt, n)
	despreadScale(out, n)
	ws.Release(m)
}

// Finish runs the per-user backend with heap scratch and returns the
// user's result — the convenience form of the finish stage.
func (j *UserJob) Finish() UserResult {
	finishStage{}.Run(nil, j, 0)
	return j.res
}

// finish runs the per-user backend: symbol deinterleaving, soft demapping,
// turbo decoding (pass-through or full) and the CRC check. The result is
// stored on the job. Scratch (deinterleave buffer, LLRs, decoder state)
// comes from ws; only the decoded payload bits escape to heap memory.
func (j *UserJob) finish(ws *workspace.Arena) {
	if j.fp32 {
		j.finishF32(ws)
		return
	}
	res := UserResult{UserID: j.U.Params.ID, ChannelMSE: math.NaN()}
	m := ws.Mark()
	deint := ws.Complex(len(j.combined))
	deinterleaveSymbols(j.Cfg, deint, j.combined)
	nv := j.nv
	if nv <= 0 { // finish ran without the weight stage: fall back to genie
		nv = math.Max(j.U.NoiseVar, 1e-9)
	}
	// Arena slices have capacity == length, so Demap's appends fill the
	// buffer exactly without growing it.
	llr := j.U.Params.Mod.Demap(ws.Float(j.format.TotalBits)[:0], deint, nv)
	if j.Cfg.Scramble {
		DescrambleIn(ws, llr, j.U.Params.ID)
	}
	j.softBits = llr
	dp := j.Cfg.DecodeParams()
	dp.Par = j.par
	payload, ok, halfIters := j.format.DecodeTransportBlockParams(j.bits[:0], ws, llr, dp)
	j.bits = payload
	res.NoiseVarEst = nv
	res.EVM = j.U.Params.Mod.EVM(deint)
	res.Bits = payload
	res.CRCOK = ok
	res.TurboHalfIters = halfIters
	if j.U.Channel != nil {
		res.ChannelMSE = j.channelMSE()
	}
	j.stampServing(&res)
	// Scratch released here; softBits intentionally survives on the arena
	// until the job-lifetime mark is released.
	j.res = res
	ws.Release(m)
}

// stampServing attaches the serving-layer metadata to a finished result:
// the scheduling parameters, the transmission's redundancy version and —
// with Cfg.KeepSoftBits — a heap copy of the soft bits that outlives the
// job's arena (HARQ ledgers above the scheduler consume it).
func (j *UserJob) stampServing(res *UserResult) {
	res.Params = j.U.Params
	res.RV = j.U.RV
	if j.Cfg.KeepSoftBits {
		res.SoftBits = append([]float64(nil), j.softBits...) //ltephy:alloc-ok opt-in soft-bit export
	}
}

// channelMSE computes the normalised estimation error against ground truth,
// averaged over slots, antennas, layers and subcarriers.
func (j *UserJob) channelMSE() float64 {
	truth := j.U.Channel
	var num, den float64
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		hs := j.hest[slot]
		for a := 0; a < j.Cfg.Antennas; a++ {
			for l := 0; l < j.layers; l++ {
				h := truth.Resp(a, l)
				for k := 0; k < j.n; k++ {
					d := hs[(a*j.layers+l)*j.n+k] - h[k]
					num += real(d)*real(d) + imag(d)*imag(d)
					den += real(h[k])*real(h[k]) + imag(h[k])*imag(h[k])
				}
			}
		}
	}
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

func cmplxConj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// Process runs the whole chain serially — the paper's reference serial
// implementation used to verify parallelised versions (Section IV-D).
func Process(cfg ReceiverConfig, u *UserData) (UserResult, error) {
	return processIn(nil, &UserJob{}, cfg, u)
}

// processIn drives one user through the four stages on a single arena,
// reusing the caller's job storage. All of the user's scratch is released
// before it returns.
func processIn(ws *workspace.Arena, j *UserJob, cfg ReceiverConfig, u *UserData) (UserResult, error) {
	m := ws.Mark()
	if err := j.Init(ws, cfg, u); err != nil {
		ws.Release(m)
		return UserResult{}, err
	}
	for _, s := range j.Stages() {
		tasks := s.Tasks(j)
		if bs, ok := s.(BatchStage); ok {
			bs.RunBatch(ws, j, 0, tasks)
			continue
		}
		for i := 0; i < tasks; i++ {
			s.Run(ws, j, i)
		}
	}
	ws.Release(m)
	return j.res, nil
}

// serialArenas recycles the serial receiver's scratch arenas across
// ProcessSubframe calls, so repeated subframe processing is steady-state
// allocation-free. Concurrent callers each get their own arena.
var serialArenas = sync.Pool{New: func() any { return workspace.New() }}

// wholesale mark/bits reuse for the serial path is handled per call; the
// job itself is small and reused via this pool too.
var serialJobs = sync.Pool{New: func() any { return &UserJob{} }}

// ProcessSubframe serially processes every user of a subframe in order.
func ProcessSubframe(cfg ReceiverConfig, sf *Subframe) ([]UserResult, error) {
	ws := serialArenas.Get().(*workspace.Arena)
	defer serialArenas.Put(ws)
	j := serialJobs.Get().(*UserJob)
	// Detach the recycled payload storage: results escape to the caller,
	// so each user must decode into fresh heap bits.
	j.bits = nil
	defer serialJobs.Put(j)
	results := make([]UserResult, 0, len(sf.Users))
	for _, u := range sf.Users {
		j.bits = nil // the previous user's bits are aliased by its result
		r, err := processIn(ws, j, cfg, u)
		if err != nil {
			return nil, fmt.Errorf("subframe %d: %w", sf.Seq, err)
		}
		r.Seq = sf.Seq
		r.Cell = sf.Cell
		results = append(results, r)
	}
	return results, nil
}
