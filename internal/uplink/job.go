package uplink

import (
	"fmt"
	"math"

	"ltephy/internal/phy/fft"
	"ltephy/internal/phy/linalg"
	"ltephy/internal/phy/sequence"
)

// UserJob carries the intermediate state for processing one user in one
// subframe and exposes the stage/task structure the paper parallelises
// (Section III and Fig. 5):
//
//	stage 1: ChanEstTask(i), i in [0, NumChanEstTasks())  — independent
//	stage 2: ComputeWeights()                             — serial
//	stage 3: DataTask(i), i in [0, NumDataTasks())        — independent
//	stage 4: Finish()                                     — serial
//
// Tasks within a stage may run concurrently on different goroutines; the
// stage boundaries are barriers the caller must enforce (the work-stealing
// runtime in internal/sched does, and the serial receiver trivially does).
type UserJob struct {
	Cfg ReceiverConfig
	U   *UserData

	n      int // subcarriers
	layers int
	format TransportFormat

	layerRef [][]complex128 // conj-ready per-layer DMRS, [layer][k]

	// hest[slot][(a*layers+l)*n + k]: per-slot channel estimates.
	hest [SlotsPerSubframe][]complex128
	// weights[slot][(k*layers+l)*antennas + a]: MMSE combining rows.
	weights [SlotsPerSubframe][]complex128
	// combined[g*n + t]: despread time-domain symbols in canonical order,
	// g = (slot*DataSymbolsPerSlot + sym)*layers + layer.
	combined []complex128

	// nv is the noise variance the combiner and demapper use: the genie
	// value from UserData, or (with Cfg.EstimateNoise) the slot-difference
	// estimate computed in ComputeWeights.
	nv float64
	// softBits are the demapped (and descrambled) LLRs Finish produced —
	// the input HARQ combining needs for retransmission soft-combining.
	softBits []float64
	// cfo is the estimated carrier frequency offset (fraction of the
	// subcarrier spacing), resolved in ComputeWeights when Cfg.CorrectCFO.
	cfo float64
}

// SoftBits returns the demapped, descrambled LLR stream of the whole
// allocation. Valid after Finish; HARQProcess.Absorb consumes it.
func (j *UserJob) SoftBits() []float64 { return j.softBits }

// NewUserJob validates inputs and allocates the job state.
func NewUserJob(cfg ReceiverConfig, u *UserData) (*UserJob, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := u.Params.Validate(); err != nil {
		return nil, err
	}
	if u.Params.Layers > cfg.Antennas {
		return nil, fmt.Errorf("uplink: user %d: %d layers exceed %d antennas",
			u.Params.ID, u.Params.Layers, cfg.Antennas)
	}
	if got := u.Antennas(); got != cfg.Antennas {
		return nil, fmt.Errorf("uplink: user %d: data captured with %d antennas, receiver configured for %d",
			u.Params.ID, got, cfg.Antennas)
	}
	n := u.Params.Subcarriers()
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		for a := 0; a < cfg.Antennas; a++ {
			if len(u.RefRx[slot][a]) != n {
				return nil, fmt.Errorf("uplink: user %d: ref symbol slot %d antenna %d has %d subcarriers, want %d",
					u.Params.ID, slot, a, len(u.RefRx[slot][a]), n)
			}
		}
	}
	format, err := NewTransportFormatRate(u.Params, cfg.Turbo, cfg.CodeRate)
	if err != nil {
		return nil, err
	}
	j := &UserJob{Cfg: cfg, U: u, n: n, layers: u.Params.Layers, format: format}
	base := sequence.BaseDMRS(n)
	j.layerRef = make([][]complex128, j.layers)
	for l := range j.layerRef {
		j.layerRef[l] = sequence.LayerDMRS(base, l)
	}
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		j.hest[slot] = make([]complex128, cfg.Antennas*j.layers*n)
		j.weights[slot] = make([]complex128, n*j.layers*cfg.Antennas)
	}
	j.combined = make([]complex128, DataSymbolsPerSubframe*j.layers*n)
	return j, nil
}

// Format returns the transport format the job decodes against.
func (j *UserJob) Format() TransportFormat { return j.format }

// NumChanEstTasks returns antennas * layers — the paper's "up to 16 tasks".
func (j *UserJob) NumChanEstTasks() int { return j.Cfg.Antennas * j.layers }

// NumDataTasks returns dataSymbols * layers — the paper's "up to 24 tasks"
// per slot, i.e. 12*layers for the whole subframe.
func (j *UserJob) NumDataTasks() int { return DataSymbolsPerSubframe * j.layers }

// ChanEstTask estimates the channel for one (antenna, layer) pair across
// both slots: matched filter against the layer's reference sequence, IFFT
// to the time domain, windowing around the layer's cyclic shift, FFT back
// (the paper's Fig. 3 channel-estimation chain).
func (j *UserJob) ChanEstTask(i int) {
	a := i / j.layers
	l := i % j.layers
	n := j.n
	plan := fft.Get(n)
	window := n / sequence.MaxLayers
	if window < 1 {
		window = 1
	}
	ref := j.layerRef[l]
	mf := make([]complex128, n)
	td := make([]complex128, n)
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		rx := j.U.RefRx[slot][a]
		// Matched filter: unit-modulus reference, so conjugate multiply
		// inverts the known sequence and leaves H plus the other layers'
		// responses shifted to their own windows.
		for k := 0; k < n; k++ {
			mf[k] = rx[k] * cmplxConj(ref[k])
		}
		out := j.hest[slot][(a*j.layers+l)*n : (a*j.layers+l+1)*n]
		if j.Cfg.ChanEst == ChanEstLS {
			// Raw least-squares: no denoising, no layer separation.
			copy(out, mf)
			continue
		}
		plan.Inverse(td, mf)
		// Window: this layer's impulse response occupies [0, window).
		for t := window; t < n; t++ {
			td[t] = 0
		}
		plan.Forward(out, td)
	}
}

// estimateNoise derives the noise variance from the difference of the two
// slots' channel estimates: the channel is block-fading (constant across
// the subframe), so (H_slot0 - H_slot1) is estimation noise alone. The
// window keeps a W/N fraction of the matched filter's noise, hence the
// N/W rescale back to per-subcarrier variance.
func (j *UserJob) estimateNoise() float64 {
	window := j.n / sequence.MaxLayers
	if window < 1 {
		window = 1
	}
	var sum float64
	count := 0
	h0, h1 := j.hest[0], j.hest[1]
	for i := range h0 {
		d := h0[i] - h1[i]
		sum += real(d)*real(d) + imag(d)*imag(d)
		count++
	}
	if count == 0 {
		return 1e-12
	}
	// Var(H0-H1) = 2 * windowed noise variance = 2 * sigma^2 * W/N.
	est := (sum / float64(count)) / 2 * float64(j.n) / float64(window)
	if est < 1e-12 {
		est = 1e-12
	}
	return est
}

// NoiseVar returns the noise variance the job operates with (resolved
// during ComputeWeights).
func (j *UserJob) NoiseVar() float64 { return j.nv }

// CFOEstimate returns the estimated carrier frequency offset (fraction of
// the subcarrier spacing); zero unless Cfg.CorrectCFO was set. Valid after
// ComputeWeights.
func (j *UserJob) CFOEstimate() float64 { return j.cfo }

// estimateCFO derives the residual frequency offset from the rotation
// between the two slots' channel estimates: the references sit seven
// symbols apart, so angle(sum H1*conj(H0)) = 2*pi*cfo*7. Unambiguous for
// |cfo| < 1/14 of the subcarrier spacing — ample for a residual offset.
func (j *UserJob) estimateCFO() float64 {
	var acc complex128
	h0, h1 := j.hest[0], j.hest[1]
	for i := range h0 {
		acc += h1[i] * cmplxConj(h0[i])
	}
	return math.Atan2(imag(acc), real(acc)) / (2 * math.Pi * float64(SymbolsPerSlot))
}

// ComputeWeights derives the per-subcarrier MMSE combining matrices from
// the channel estimates. The paper notes this step "considers all the
// receiver channels and layers, and is therefore not easily parallelized";
// it runs as one serial task per user. With Cfg.EstimateNoise it first
// resolves the noise variance from the channel estimates.
func (j *UserJob) ComputeWeights() {
	ant := j.Cfg.Antennas
	var nv float64
	if j.Cfg.EstimateNoise {
		nv = j.estimateNoise()
	} else {
		nv = j.U.NoiseVar
	}
	if nv < 1e-12 {
		nv = 1e-12 // keep the regularised Gram matrix invertible
	}
	j.nv = nv
	if j.Cfg.CorrectCFO {
		j.cfo = j.estimateCFO()
	}
	if j.Cfg.Combiner == CombinerIRC {
		j.computeIRCWeights()
		return
	}
	solveNV := nv
	if j.Cfg.Combiner == CombinerZF {
		// Zero-forcing: invert the channel outright; the tiny diagonal
		// term only guards numerical singularity.
		solveNV = 1e-9
	}
	ws := linalg.NewMMSEWorkspace(ant, j.layers)
	h := linalg.NewMatrix(ant, j.layers)
	w := linalg.NewMatrix(j.layers, ant)
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		hs := j.hest[slot]
		out := j.weights[slot]
		for k := 0; k < j.n; k++ {
			for a := 0; a < ant; a++ {
				for l := 0; l < j.layers; l++ {
					h.Set(a, l, hs[(a*j.layers+l)*j.n+k])
				}
			}
			if j.Cfg.Combiner == CombinerMRC {
				// Per-layer matched filter: w_l = h_l^H / (|h_l|^2 + nv).
				for l := 0; l < j.layers; l++ {
					var norm float64
					for a := 0; a < ant; a++ {
						v := h.At(a, l)
						norm += real(v)*real(v) + imag(v)*imag(v)
					}
					scale := complex(1/(norm+nv), 0)
					for a := 0; a < ant; a++ {
						w.Set(l, a, cmplxConj(h.At(a, l))*scale)
					}
				}
			} else if err := ws.Solve(&w, h, solveNV); err != nil {
				// A singular channel estimate (all-zero input data) yields
				// zero weights for this subcarrier rather than failing the
				// whole subframe.
				for i := range w.Data {
					w.Data[i] = 0
				}
			}
			copy(out[(k*j.layers)*ant:(k*j.layers+j.layers)*ant], w.Data)
		}
	}
}

// DataTask combines one (slot, symbol, layer) across antennas and
// transforms it back to the time domain (SC-FDMA despread) — the paper's
// "antenna combining and IFFT ... performed on each separate symbol and
// layer".
func (j *UserJob) DataTask(i int) {
	layers := j.layers
	slot := i / (DataSymbolsPerSlot * layers)
	rem := i % (DataSymbolsPerSlot * layers)
	sym := rem / layers
	l := rem % layers
	n := j.n
	ant := j.Cfg.Antennas
	rx := j.U.DataRx[slot][sym]
	w := j.weights[slot]
	comb := make([]complex128, n)
	for k := 0; k < n; k++ {
		row := w[(k*layers+l)*ant : (k*layers+l+1)*ant]
		var sum complex128
		for a := 0; a < ant; a++ {
			sum += row[a] * rx[a][k]
		}
		comb[k] = sum
	}
	if j.cfo != 0 {
		// The combiner inverted the slot reference's phase; de-rotate the
		// residual CFO accumulated between the reference and this symbol.
		delta := float64(DataSymbolPos(sym) - RefSymbolPos)
		theta := -2 * math.Pi * j.cfo * delta
		rot := complex(math.Cos(theta), math.Sin(theta))
		for k := range comb {
			comb[k] *= rot
		}
	}
	g := (slot*DataSymbolsPerSlot+sym)*layers + l
	out := j.combined[g*n : (g+1)*n]
	fft.Get(n).Inverse(out, comb)
	// Undo the transmitter's unitary 1/sqrt(N) spreading scale.
	scale := complex(math.Sqrt(float64(n)), 0)
	for t := range out {
		out[t] *= scale
	}
}

// Finish runs the per-user backend: symbol deinterleaving, soft demapping,
// turbo decoding (pass-through or full) and the CRC check. It returns the
// user's result.
func (j *UserJob) Finish() UserResult {
	res := UserResult{UserID: j.U.Params.ID, ChannelMSE: math.NaN()}
	deint := make([]complex128, len(j.combined))
	deinterleaveSymbols(j.Cfg, deint, j.combined)
	nv := j.nv
	if nv <= 0 { // Finish called without ComputeWeights: fall back to genie
		nv = math.Max(j.U.NoiseVar, 1e-9)
	}
	llr := j.U.Params.Mod.Demap(make([]float64, 0, j.format.TotalBits), deint, nv)
	if j.Cfg.Scramble {
		Descramble(llr, j.U.Params.ID)
	}
	j.softBits = llr
	payload, ok := j.format.DecodeTransportBlock(llr, j.Cfg.TurboIterations)
	res.NoiseVarEst = nv
	res.EVM = j.U.Params.Mod.EVM(deint)
	res.Bits = payload
	res.CRCOK = ok
	if j.U.Channel != nil {
		res.ChannelMSE = j.channelMSE()
	}
	return res
}

// channelMSE computes the normalised estimation error against ground truth,
// averaged over slots, antennas, layers and subcarriers.
func (j *UserJob) channelMSE() float64 {
	truth := j.U.Channel
	var num, den float64
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		hs := j.hest[slot]
		for a := 0; a < j.Cfg.Antennas; a++ {
			for l := 0; l < j.layers; l++ {
				h := truth.Resp(a, l)
				for k := 0; k < j.n; k++ {
					d := hs[(a*j.layers+l)*j.n+k] - h[k]
					num += real(d)*real(d) + imag(d)*imag(d)
					den += real(h[k])*real(h[k]) + imag(h[k])*imag(h[k])
				}
			}
		}
	}
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

func cmplxConj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// Process runs the whole chain serially — the paper's reference serial
// implementation used to verify parallelised versions (Section IV-D).
func Process(cfg ReceiverConfig, u *UserData) (UserResult, error) {
	j, err := NewUserJob(cfg, u)
	if err != nil {
		return UserResult{}, err
	}
	for i := 0; i < j.NumChanEstTasks(); i++ {
		j.ChanEstTask(i)
	}
	j.ComputeWeights()
	for i := 0; i < j.NumDataTasks(); i++ {
		j.DataTask(i)
	}
	return j.Finish(), nil
}

// ProcessSubframe serially processes every user of a subframe in order.
func ProcessSubframe(cfg ReceiverConfig, sf *Subframe) ([]UserResult, error) {
	results := make([]UserResult, 0, len(sf.Users))
	for _, u := range sf.Users {
		r, err := Process(cfg, u)
		if err != nil {
			return nil, fmt.Errorf("subframe %d: %w", sf.Seq, err)
		}
		r.Seq = sf.Seq
		results = append(results, r)
	}
	return results, nil
}
