package uplink_test

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestWriteE2EBenchBaseline records the end-to-end subframe baseline
// (BenchmarkSubframeE2E and the full-turbo variant) to the JSON file named
// by LTEPHY_BENCH_E2E_OUT, in the same shape as BENCH_fft_baseline.json.
// Skipped unless the variable is set; `make bench-e2e` drives it.
func TestWriteE2EBenchBaseline(t *testing.T) {
	out := os.Getenv("LTEPHY_BENCH_E2E_OUT")
	if out == "" {
		t.Skip("set LTEPHY_BENCH_E2E_OUT=<path> to record the e2e baseline")
	}
	type entry struct {
		NsPerOp     int64 `json:"ns_per_op"`
		BytesPerOp  int64 `json:"bytes_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
	}
	measure := func(f func(*testing.B)) entry {
		r := testing.Benchmark(f)
		return entry{r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp()}
	}
	doc := struct {
		Comment    string           `json:"comment"`
		Go         string           `json:"go"`
		CPU        string           `json:"cpu"`
		Date       string           `json:"date"`
		Benchmarks map[string]entry `json:"benchmarks"`
	}{
		Comment: "End-to-end subframe baseline (three users through the serial receiver chain). " +
			"allocs_per_op is the tracked regression metric; compare with `make bench` output.",
		Go:   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		CPU:  cpuModel(),
		Date: time.Now().Format("2006-01-02"),
		Benchmarks: map[string]entry{
			"BenchmarkSubframeE2E":          measure(BenchmarkSubframeE2E),
			"BenchmarkSubframeE2ETurboFull": measure(BenchmarkSubframeE2ETurboFull),
		},
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: SubframeE2E %d ns/op, %d allocs/op", out,
		doc.Benchmarks["BenchmarkSubframeE2E"].NsPerOp,
		doc.Benchmarks["BenchmarkSubframeE2E"].AllocsPerOp)
}

// cpuModel best-efforts the host CPU name (linux /proc/cpuinfo).
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}
