package uplink

import (
	"math/cmplx"

	"ltephy/internal/phy/linalg"
	"ltephy/internal/phy/workspace"
)

// Interference rejection combining: instead of assuming white noise, the
// receiver estimates the spatial covariance of whatever the channel
// estimate cannot explain — thermal noise plus neighbouring cells'
// uplink traffic — from the reference-symbol residuals, and whitens it
// into the combiner. Classic eNodeB practice; an extension over the
// paper's pipeline (DESIGN.md §5).

// estimateCovariance computes the band-averaged A x A residual covariance
//
//	R = mean_k e(k) e(k)^H,  e(k) = y_ref(k) - H_est(k) r(k)
//
// over both slots into r, diagonally loaded with the working noise
// variance so R stays invertible even in interference-free conditions.
// r must arrive zeroed (arena grabs and fresh matrices both are); e is
// an antennas-sized scratch vector.
func (j *UserJob) estimateCovariance(r *linalg.Matrix, e []complex128) {
	ant := j.Cfg.Antennas
	count := 0
	for slot := 0; slot < SlotsPerSubframe; slot++ {
		hs := j.hest[slot]
		for k := 0; k < j.n; k++ {
			for a := 0; a < ant; a++ {
				expected := complex(0, 0)
				for l := 0; l < j.layers; l++ {
					expected += hs[(a*j.layers+l)*j.n+k] * j.layerRef[l][k]
				}
				e[a] = j.U.RefRx[slot][a][k] - expected
			}
			for a := 0; a < ant; a++ {
				for b := 0; b < ant; b++ {
					r.Data[a*ant+b] += e[a] * cmplx.Conj(e[b])
				}
			}
			count++
		}
	}
	scale := complex(1/float64(count), 0)
	for i := range r.Data {
		r.Data[i] *= scale
	}
	// Diagonal loading: never trust the residual completely.
	linalg.AddDiag(r, complex(j.nv*0.1+1e-9, 0))
}

// computeIRCWeights fills the weight buffers with the whitened MMSE
// solution W = (H^H R^{-1} H + I)^{-1} H^H R^{-1}. All working matrices
// come from the arena (heap when nil) and are released before returning.
func (j *UserJob) computeIRCWeights(a *workspace.Arena) {
	if j.fp32 {
		j.computeIRCWeightsF32()
		return
	}
	ant := j.Cfg.Antennas
	m := a.Mark()
	rcov := linalg.NewMatrixIn(a, ant, ant)
	j.estimateCovariance(&rcov, a.Complex(ant))
	rinv := linalg.NewMatrixIn(a, ant, ant)
	// Elimination scratch shared by both inversions (ant >= layers).
	elim := a.Complex(ant * ant)
	if err := linalg.InvertIntoScratch(&rinv, rcov, elim); err != nil {
		// Degenerate covariance (all-zero input): fall back to identity
		// whitening, i.e. plain MMSE behaviour.
		for i := range rinv.Data {
			rinv.Data[i] = 0
		}
		for ai := 0; ai < ant; ai++ {
			rinv.Set(ai, ai, 1)
		}
	}

	h := linalg.NewMatrixIn(a, ant, j.layers)
	hh := linalg.NewMatrixIn(a, j.layers, ant)
	b := linalg.NewMatrixIn(a, ant, j.layers)
	g := linalg.NewMatrixIn(a, j.layers, j.layers)
	ginv := linalg.NewMatrixIn(a, j.layers, j.layers)
	bh := linalg.NewMatrixIn(a, j.layers, ant)
	w := linalg.NewMatrixIn(a, j.layers, ant)

	for slot := 0; slot < SlotsPerSubframe; slot++ {
		hs := j.hest[slot]
		out := j.weights[slot]
		for k := 0; k < j.n; k++ {
			for ai := 0; ai < ant; ai++ {
				for l := 0; l < j.layers; l++ {
					h.Set(ai, l, hs[(ai*j.layers+l)*j.n+k])
				}
			}
			linalg.MulInto(&b, rinv, h) // R^{-1} H
			h.ConjTransposeInto(&hh)
			linalg.MulInto(&g, hh, b) // H^H R^{-1} H
			linalg.AddDiag(&g, 1)
			if err := linalg.InvertIntoScratch(&ginv, g, elim); err != nil {
				for i := range w.Data {
					w.Data[i] = 0
				}
			} else {
				b.ConjTransposeInto(&bh) // (R^{-1} H)^H = H^H R^{-1} (R Hermitian)
				linalg.MulInto(&w, ginv, bh)
			}
			copy(out[(k*j.layers)*ant:(k*j.layers+j.layers)*ant], w.Data)
		}
	}
	a.Release(m)
}
