// Package experiments regenerates every table and figure of the paper's
// evaluation (Figs. 7-9, 11-16, Tables I-II) from this repository's
// substrates: the parameter model, the workload estimator, the TILEPro64-
// substitute simulator and the power model. cmd/lte-sim, cmd/lte-trace,
// cmd/lte-calibrate and the top-level benchmarks are thin wrappers around
// this package; EXPERIMENTS.md records the outputs against the paper's
// numbers.
package experiments

import (
	"fmt"
	"math"
	"sync"

	"ltephy/internal/estimator"
	"ltephy/internal/params"
	"ltephy/internal/power"
	"ltephy/internal/sim"
	"ltephy/internal/uplink"
)

// Config scales the experiment suite. Full() is the paper's exact setup;
// Quick() compresses the load ramp and coarsens the calibration sweep so
// the whole suite runs in seconds (used by tests and benchmarks).
type Config struct {
	Seed uint64
	// Compression divides the 68,000-subframe trace; the probability ramp
	// is compressed to match so the full load sweep is preserved.
	Compression int
	// CalibrationStep is the PRB sweep granularity for Fig. 11 (paper: 2).
	CalibrationStep int
	Workers         int
	PeriodSec       float64
	// PowerWindowSec mirrors the paper's 100 ms RMS power samples;
	// ActivityWindowSec its 1 s activity averages.
	PowerWindowSec    float64
	ActivityWindowSec float64
	// PlotStride subsamples per-subframe figures ("we only plot every 25th
	// subframe").
	PlotStride int
	// Power is the power-model parameter set.
	Power power.Params
	// PRBPool overrides the schedulable PRB pool (0 = the paper's 200).
	// A pool of 100 reproduces the "typical base station at ~25% load"
	// scenario the paper's conclusions discuss.
	PRBPool int
}

// Full returns the paper-faithful configuration (~minutes of runtime).
func Full() Config {
	return Config{
		Seed:              1,
		Compression:       1,
		CalibrationStep:   2,
		Workers:           sim.DefaultWorkers,
		PeriodSec:         0.005,
		PowerWindowSec:    0.1,
		ActivityWindowSec: 1.0,
		PlotStride:        25,
		Power:             power.Default(),
	}
}

// Quick returns a compressed configuration for tests and benchmarks
// (~seconds of runtime): the same load sweep at 1/20 length and a coarse
// calibration grid.
func Quick() Config {
	cfg := Full()
	cfg.Compression = 20
	cfg.CalibrationStep = 25
	cfg.PlotStride = 5
	return cfg
}

// Subframes returns the trace length under compression.
func (c Config) Subframes() int { return params.TraceLength / c.Compression }

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Compression < 1:
		return fmt.Errorf("experiments: compression %d", c.Compression)
	case c.CalibrationStep < 1:
		return fmt.Errorf("experiments: calibration step %d", c.CalibrationStep)
	case c.Workers < 1:
		return fmt.Errorf("experiments: %d workers", c.Workers)
	case c.PeriodSec <= 0 || c.PowerWindowSec <= 0 || c.ActivityWindowSec <= 0:
		return fmt.Errorf("experiments: non-positive period or window")
	case c.PlotStride < 1:
		return fmt.Errorf("experiments: plot stride %d", c.PlotStride)
	}
	return c.Power.Validate()
}

// Suite lazily computes and caches the shared heavy artifacts — the trace,
// the calibration and the per-policy simulation runs — so that figures and
// tables drawing on the same run do not recompute it.
type Suite struct {
	Cfg Config

	mu      sync.Mutex
	trace   *params.Trace
	cal     *estimator.Calibration
	calErr  error
	runs    map[sim.Policy]*sim.Result
	series  map[sim.Policy][]float64
	runErrs map[sim.Policy]error
}

// NewSuite validates the configuration and returns an empty suite.
func NewSuite(cfg Config) (*Suite, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Suite{
		Cfg:     cfg,
		runs:    make(map[sim.Policy]*sim.Result),
		series:  make(map[sim.Policy][]float64),
		runErrs: make(map[sim.Policy]error),
	}, nil
}

// Trace returns the recorded input-parameter trace (cached).
func (s *Suite) Trace() *params.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traceLocked()
}

// newModel builds the suite's parameter model.
func (s *Suite) newModel() *params.Random {
	m := params.NewRandomCompressed(s.Cfg.Seed, s.Cfg.Compression)
	if s.Cfg.PRBPool > 0 {
		m.SetPool(s.Cfg.PRBPool)
	}
	return m
}

// simConfig assembles a simulator configuration for the given policy.
func (s *Suite) simConfig(pol sim.Policy, windowSec float64) (sim.Config, error) {
	cfg := sim.DefaultConfig()
	cfg.Workers = s.Cfg.Workers
	cfg.PeriodSec = s.Cfg.PeriodSec
	cfg.WindowSec = windowSec
	cfg.Policy = pol
	if pol.UsesEstimator() {
		cal, err := s.Calibration()
		if err != nil {
			return sim.Config{}, err
		}
		cfg.ActiveCores = cal.ActiveCoresFunc(cfg.Workers)
	}
	return cfg, nil
}

// Calibration runs (once) the Fig. 11 steady-state sweep.
func (s *Suite) Calibration() (*estimator.Calibration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cal == nil && s.calErr == nil {
		cfg := sim.DefaultConfig()
		cfg.Workers = s.Cfg.Workers
		cfg.PeriodSec = s.Cfg.PeriodSec
		cfg.WindowSec = 0.5
		s.cal, s.calErr = estimator.Calibrate(cfg, estimator.Options{
			PRBStep: s.Cfg.CalibrationStep,
			Windows: 1,
		})
	}
	return s.cal, s.calErr
}

// Run simulates the trace under one policy at the power-measurement window
// (cached per policy).
func (s *Suite) Run(pol sim.Policy) (*sim.Result, error) {
	// Resolve the estimator outside the lock: Calibration locks too.
	cfg, err := s.simConfig(pol, s.Cfg.PowerWindowSec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runs[pol]; ok {
		return r, s.runErrs[pol]
	}
	trace := s.traceLocked()
	trace.Reset()
	r, err := sim.Run(cfg, trace, s.Cfg.Subframes())
	s.runs[pol] = r
	s.runErrs[pol] = err
	return r, err
}

func (s *Suite) traceLocked() *params.Trace {
	if s.trace == nil {
		s.trace = params.Record(s.newModel(), s.Cfg.Subframes())
	}
	return s.trace
}

// PowerSeries returns the per-window power trace for a policy (cached).
func (s *Suite) PowerSeries(pol sim.Policy) ([]float64, error) {
	res, err := s.Run(pol)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ser, ok := s.series[pol]; ok {
		return ser, nil
	}
	ser, err := power.Series(res, s.Cfg.Power)
	if err != nil {
		return nil, err
	}
	s.series[pol] = ser
	return ser, nil
}

// GatedSeries returns the PowerGating trace: NAP+IDLE minus the Eq. 9
// savings.
func (s *Suite) GatedSeries() ([]float64, error) {
	base, err := s.PowerSeries(sim.NAPIDLE)
	if err != nil {
		return nil, err
	}
	res, err := s.Run(sim.NAPIDLE)
	if err != nil {
		return nil, err
	}
	return power.ApplyGating(base, res, s.Cfg.Power)
}

// PowerAverages returns the mean total power of every technique —
// the content of Table II (and, minus base power, Table I).
func (s *Suite) PowerAverages() (map[string]float64, error) {
	out := make(map[string]float64, 5)
	for _, pol := range []sim.Policy{sim.NONAP, sim.IDLE, sim.NAP, sim.NAPIDLE} {
		ser, err := s.PowerSeries(pol)
		if err != nil {
			return nil, err
		}
		out[pol.String()] = power.Mean(ser)
	}
	gated, err := s.GatedSeries()
	if err != nil {
		return nil, err
	}
	out["PowerGating"] = power.Mean(gated)
	return out, nil
}

// TableExtensions compares this repo's extensions — estimate-driven DVFS
// (the paper's stated future work) — against the paper's techniques over
// the same trace.
func (s *Suite) TableExtensions() (*Dataset, error) {
	avgs, err := s.PowerAverages()
	if err != nil {
		return nil, err
	}
	dvfs, err := s.PowerSeries(sim.DVFS)
	if err != nil {
		return nil, err
	}
	avgs["DVFS"] = power.Mean(dvfs)
	nonap := avgs["NONAP"]
	d := &Dataset{
		Name:   "table-extensions",
		Header: []string{"technique", "power_w", "rel_nonap"},
	}
	for _, name := range []string{"NONAP", "NAP+IDLE", "PowerGating", "DVFS"} {
		d.Rows = append(d.Rows, []string{name, f2(avgs[name]), pct((avgs[name] - nonap) / nonap)})
	}
	d.Note = "extension beyond the paper: the same Eq. 5 estimate driving frequency/voltage scaling (P ~ f^3) instead of core masking"
	return d, nil
}

// aggregate reduces a series by averaging consecutive groups of k.
func aggregate(series []float64, k int) []float64 {
	if k < 1 {
		k = 1
	}
	out := make([]float64, 0, len(series)/k)
	for i := 0; i+k <= len(series); i += k {
		var sum float64
		for j := i; j < i+k; j++ {
			sum += series[j]
		}
		out = append(out, sum/float64(k))
	}
	return out
}

// MeasuredActivity1s aggregates a policy run's busy windows into
// ActivityWindowSec averages (the paper's Fig. 12 measurement).
func (s *Suite) MeasuredActivity1s(pol sim.Policy) ([]float64, error) {
	res, err := s.Run(pol)
	if err != nil {
		return nil, err
	}
	k := int(s.Cfg.ActivityWindowSec / s.Cfg.PowerWindowSec)
	act := make([]float64, res.Windows())
	for i := range act {
		act[i] = res.Activity(i)
	}
	return aggregate(act, k), nil
}

// EstimatedActivity1s evaluates Eq. 4 on every trace subframe and averages
// into ActivityWindowSec windows.
func (s *Suite) EstimatedActivity1s() ([]float64, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	trace := s.Trace()
	perWindow := int(s.Cfg.ActivityWindowSec / s.Cfg.PeriodSec)
	est := make([]float64, len(trace.Subframes))
	for i, users := range trace.Subframes {
		est[i] = cal.Estimate(users)
	}
	return aggregate(est, perWindow), nil
}

// EstimatedActiveCores evaluates Eq. 5 on every trace subframe (Fig. 13).
func (s *Suite) EstimatedActiveCores() ([]int, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	trace := s.Trace()
	out := make([]int, len(trace.Subframes))
	for i, users := range trace.Subframes {
		out[i] = cal.ActiveCores(users, s.Cfg.Workers)
	}
	return out, nil
}

// userStats summarises one subframe's scheduling decision.
func userStats(users []uplink.UserParams) (count, totalPRB, maxPRB, minPRB, maxLayers, minLayers int) {
	count = len(users)
	minPRB, minLayers = 1<<30, 1<<30
	for _, u := range users {
		totalPRB += u.PRB
		if u.PRB > maxPRB {
			maxPRB = u.PRB
		}
		if u.PRB < minPRB {
			minPRB = u.PRB
		}
		if u.Layers > maxLayers {
			maxLayers = u.Layers
		}
		if u.Layers < minLayers {
			minLayers = u.Layers
		}
	}
	if count == 0 {
		minPRB, minLayers = 0, 0
	}
	return
}

// TableDiurnal runs one compressed day of diurnal traffic (night trough,
// evening peak, ~25% average load — the paper's "typical" base station)
// under each technique and reports the daily energy a real 24-hour day at
// those power levels would consume. This quantifies the conclusions'
// claim that the estimation-driven techniques "would show even greater
// benefits for a more realistic use case".
func (s *Suite) TableDiurnal() (*Dataset, error) {
	const subframesPerDay = 17280 // 86.4 s at 5 ms: a day compressed 1000x
	newDay := func() (params.Model, error) {
		return params.NewDiurnal(s.Cfg.Seed, subframesPerDay, 0.05, 0.6)
	}
	runPolicy := func(pol sim.Policy) (*sim.Result, []float64, error) {
		cfg, err := s.simConfig(pol, s.Cfg.PowerWindowSec)
		if err != nil {
			return nil, nil, err
		}
		m, err := newDay()
		if err != nil {
			return nil, nil, err
		}
		res, err := sim.Run(cfg, m, subframesPerDay)
		if err != nil {
			return nil, nil, err
		}
		ser, err := power.Series(res, s.Cfg.Power)
		if err != nil {
			return nil, nil, err
		}
		return res, ser, nil
	}

	d := &Dataset{
		Name:   "table-diurnal",
		Header: []string{"technique", "mean_w", "kwh_day", "rel_nonap"},
	}
	type entry struct {
		name string
		mean float64
	}
	var rows []entry
	_, nonapSer, err := runPolicy(sim.NONAP)
	if err != nil {
		return nil, err
	}
	rows = append(rows, entry{"NONAP", power.Mean(nonapSer)})
	_, idleSer, err := runPolicy(sim.IDLE)
	if err != nil {
		return nil, err
	}
	rows = append(rows, entry{"IDLE", power.Mean(idleSer)})
	napRes, napSer, err := runPolicy(sim.NAPIDLE)
	if err != nil {
		return nil, err
	}
	rows = append(rows, entry{"NAP+IDLE", power.Mean(napSer)})
	gated, err := power.ApplyGating(napSer, napRes, s.Cfg.Power)
	if err != nil {
		return nil, err
	}
	rows = append(rows, entry{"PowerGating", power.Mean(gated)})
	_, dvfsSer, err := runPolicy(sim.DVFS)
	if err != nil {
		return nil, err
	}
	rows = append(rows, entry{"DVFS", power.Mean(dvfsSer)})

	nonap := rows[0].mean
	for _, e := range rows {
		kwh := e.mean * 24 / 1000
		d.Rows = append(d.Rows, []string{e.name, f2(e.mean), fmt.Sprintf("%.3f", kwh),
			pct((e.mean - nonap) / nonap)})
	}
	best := rows[len(rows)-2].mean // PowerGating
	d.Note = fmt.Sprintf(
		"one diurnal day (~25%% avg load): estimation-driven gating saves %.0f%% vs always-on (paper's 50%%-load evaluation: 26%%)",
		100*(nonap-best)/nonap)
	return d, nil
}

// TableLatency reports the per-job completion-latency distribution (in
// dispatch periods) under each policy — the power-vs-responsiveness
// trade-off the paper does not quantify (extension). Lower power policies
// may only delay work; a blown P99 would mean the estimate under-
// provisioned.
func (s *Suite) TableLatency() (*Dataset, error) {
	d := &Dataset{
		Name:   "table-latency",
		Header: []string{"technique", "mean_periods", "p50", "p95", "p99", "late_frac"},
	}
	for _, pol := range []sim.Policy{sim.NONAP, sim.IDLE, sim.NAP, sim.NAPIDLE, sim.DVFS} {
		res, err := s.Run(pol)
		if err != nil {
			return nil, err
		}
		lateFrac := 0.0
		if res.TotalJobs > 0 {
			lateFrac = float64(res.LateSubframes) / float64(res.TotalJobs)
		}
		d.Rows = append(d.Rows, []string{
			pol.String(),
			f2(res.MeanLatency()),
			f2(res.LatencyPercentile(0.50)),
			f2(res.LatencyPercentile(0.95)),
			f2(res.LatencyPercentile(0.99)),
			f(lateFrac),
		})
	}
	d.Note = "latency in 5 ms dispatch periods; power management must not blow the tail (extension — the paper reports power only)"
	return d, nil
}

// TableScaling runs the trace at several worker-core counts (NONAP) — the
// introduction's motivation that base-station processing capacity must
// scale with demand. Undersized pools blow the latency tail; oversized
// pools idle.
func (s *Suite) TableScaling() (*Dataset, error) {
	d := &Dataset{
		Name:   "table-scaling",
		Header: []string{"workers", "mean_activity", "p95_latency", "late_frac"},
	}
	for _, workers := range []int{16, 31, 62, 124} {
		cfg := sim.DefaultConfig()
		cfg.Workers = workers
		cfg.PeriodSec = s.Cfg.PeriodSec
		cfg.WindowSec = s.Cfg.PowerWindowSec
		trace := s.Trace()
		trace.Reset()
		res, err := sim.Run(cfg, trace, s.Cfg.Subframes())
		if err != nil {
			return nil, err
		}
		lateFrac := 0.0
		if res.TotalJobs > 0 {
			lateFrac = float64(res.LateSubframes) / float64(res.TotalJobs)
		}
		d.Rows = append(d.Rows, []string{itoa(workers), f(res.MeanActivity()),
			f2(res.LatencyPercentile(0.95)), f(lateFrac)})
	}
	d.Note = "the 62-core TILEPro64 sizing is near the knee: halving cores overloads the peak; doubling them mostly idles (extension)"
	return d, nil
}

// TableSensitivity perturbs the Eq. 5 estimate by a fixed core bias and
// reports the power/latency consequences under NAP+IDLE — why the paper
// over-provisions by two cores.
func (s *Suite) TableSensitivity() (*Dataset, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Name:   "table-sensitivity",
		Header: []string{"bias_cores", "power_w", "p95_latency", "late_frac"},
	}
	for _, bias := range []int{-8, -4, -2, 0, 2, 8} {
		cfg, err := s.simConfig(sim.NAPIDLE, s.Cfg.PowerWindowSec)
		if err != nil {
			return nil, err
		}
		bias := bias
		cfg.ActiveCores = func(_ int64, users []uplink.UserParams) int {
			return cal.ActiveCoresWithMargin(users, cfg.Workers, estimator.Margin+bias)
		}
		trace := s.Trace()
		trace.Reset()
		res, err := sim.Run(cfg, trace, s.Cfg.Subframes())
		if err != nil {
			return nil, err
		}
		ser, err := power.Series(res, s.Cfg.Power)
		if err != nil {
			return nil, err
		}
		lateFrac := 0.0
		if res.TotalJobs > 0 {
			lateFrac = float64(res.LateSubframes) / float64(res.TotalJobs)
		}
		d.Rows = append(d.Rows, []string{itoa(bias), f2(power.Mean(ser)),
			f2(res.LatencyPercentile(0.95)), f(lateFrac)})
	}
	d.Note = "under-estimating the active set saves milliwatts and costs latency; the paper's +2 margin is cheap insurance (extension)"
	return d, nil
}

// TableQueueing compares admission disciplines under a constrained active
// set: FIFO vs estimator-informed shortest-job-first. The same workload
// estimate that drives power management can also cut mean latency when
// capacity is throttled (extension).
func (s *Suite) TableQueueing() (*Dataset, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Name:   "table-queueing",
		Header: []string{"discipline", "mean_latency", "p95", "p99"},
	}
	for _, sjf := range []bool{false, true} {
		cfg, err := s.simConfig(sim.NAPIDLE, s.Cfg.PowerWindowSec)
		if err != nil {
			return nil, err
		}
		// A deliberately tight active set (no margin) creates the
		// contention where ordering matters.
		cfg.ActiveCores = func(_ int64, users []uplink.UserParams) int {
			return cal.ActiveCoresWithMargin(users, cfg.Workers, 0)
		}
		cfg.ShortestFirst = sjf
		trace := s.Trace()
		trace.Reset()
		res, err := sim.Run(cfg, trace, s.Cfg.Subframes())
		if err != nil {
			return nil, err
		}
		name := "FIFO"
		if sjf {
			name = "SJF"
		}
		d.Rows = append(d.Rows, []string{name, f2(res.MeanLatency()),
			f2(res.LatencyPercentile(0.95)), f2(res.LatencyPercentile(0.99))})
	}
	d.Note = "on the paper's trace, intra-subframe SJF admission is a wash: the pipeline backlog spans many subframes, so within-subframe order barely matters (the controlled contention case in internal/sim's tests shows the mechanism working; extension)"
	return d, nil
}

// TableThroughput characterises the offered load in link-rate terms: the
// paper's introduction motivates LTE by its ~100 Mbit/s-class uplink, and
// with four layers and 64-QAM the 200-PRB pool carries several hundred
// Mbit/s at the real 1 ms subframe rate. Computed from the trace's
// transport formats (pass-through mode: capacity minus CRC).
func (s *Suite) TableThroughput() (*Dataset, error) {
	trace := s.Trace()
	minB, maxB := math.MaxInt, 0
	var total int64
	for _, users := range trace.Subframes {
		bits := 0
		for _, p := range users {
			f, err := uplink.NewTransportFormat(p, uplink.TurboPassthrough)
			if err != nil {
				return nil, err
			}
			bits += f.PayloadBits
		}
		total += int64(bits)
		if bits < minB {
			minB = bits
		}
		if bits > maxB {
			maxB = bits
		}
	}
	n := len(trace.Subframes)
	mean := float64(total) / float64(n)
	toMbps := func(bitsPerSubframe float64) float64 {
		return bitsPerSubframe / 0.001 / 1e6 // 1 ms subframes, the LTE rate
	}
	d := &Dataset{
		Name:   "table-throughput",
		Header: []string{"stat", "bits_per_subframe", "mbit_s_at_1ms"},
		Rows: [][]string{
			{"min", itoa(minB), f2(toMbps(float64(minB)))},
			{"mean", f2(mean), f2(toMbps(mean))},
			{"peak", itoa(maxB), f2(toMbps(float64(maxB)))},
		},
	}
	d.Note = "offered uplink payload across the trace; the intro's 100 Mbit/s class is the low end of this pool (extension)"
	return d, nil
}
