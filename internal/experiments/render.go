package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV emits the dataset as CSV (header first).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(d.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Render emits an aligned plain-text table with the dataset's name and
// note, suitable for terminal output. maxRows <= 0 prints everything;
// otherwise the middle is elided.
func (d *Dataset) Render(w io.Writer, maxRows int) error {
	rows := d.Rows
	elided := 0
	if maxRows > 0 && len(rows) > maxRows {
		head := maxRows / 2
		tail := maxRows - head
		elided = len(rows) - maxRows
		clipped := make([][]string, 0, maxRows)
		clipped = append(clipped, rows[:head]...)
		clipped = append(clipped, rows[len(rows)-tail:]...)
		rows = clipped
	}
	widths := make([]int, len(d.Header))
	for i, h := range d.Header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", d.Name)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(d.Header)
	half := len(rows)
	if elided > 0 {
		half = maxRows / 2
	}
	for i, row := range rows {
		if elided > 0 && i == half {
			fmt.Fprintf(&b, "... (%d rows elided) ...\n", elided)
		}
		writeRow(row)
	}
	if d.Note != "" {
		fmt.Fprintf(&b, "-- %s\n", d.Note)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
