package experiments

import (
	"fmt"
	"math"

	"ltephy/internal/estimator"
	"ltephy/internal/sim"
)

// Dataset is one regenerated figure or table: a header, stringified rows,
// and a human-readable note summarising the headline comparison.
type Dataset struct {
	Name   string
	Note   string
	Header []string
	Rows   [][]string
}

func f(v float64) string  { return fmt.Sprintf("%.4f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func itoa(v int) string   { return fmt.Sprintf("%d", v) }
func pct(v float64) string {
	v *= 100
	if v == 0 {
		v = 0 // normalise negative zero
	}
	return fmt.Sprintf("%+.0f%%", v)
}

// Fig7 regenerates the users-per-subframe scatter.
func (s *Suite) Fig7() (*Dataset, error) {
	trace := s.Trace()
	d := &Dataset{
		Name:   "fig7",
		Header: []string{"subframe", "users"},
	}
	lo, hi := 1<<30, 0
	for i := 0; i < len(trace.Subframes); i += s.Cfg.PlotStride {
		n, _, _, _, _, _ := userStats(trace.Subframes[i])
		d.Rows = append(d.Rows, []string{itoa(i * s.Cfg.Compression), itoa(n)})
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	d.Note = fmt.Sprintf("users per subframe vary between %d and %d (paper Fig. 7: 1..10, rapid variation)", lo, hi)
	return d, nil
}

// Fig8 regenerates the PRB allocation scatter: total, per-user max, min.
func (s *Suite) Fig8() (*Dataset, error) {
	trace := s.Trace()
	d := &Dataset{
		Name:   "fig8",
		Header: []string{"subframe", "total_prb", "max_prb", "min_prb"},
	}
	maxSingle := 0
	for i := 0; i < len(trace.Subframes); i += s.Cfg.PlotStride {
		_, total, mx, mn, _, _ := userStats(trace.Subframes[i])
		d.Rows = append(d.Rows, []string{itoa(i * s.Cfg.Compression), itoa(total), itoa(mx), itoa(mn)})
		if mx > maxSingle {
			maxSingle = mx
		}
	}
	d.Note = fmt.Sprintf("largest single-user allocation observed: %d PRB (paper Fig. 8: 20..190)", maxSingle)
	return d, nil
}

// Fig9 regenerates the per-subframe layer extremes.
func (s *Suite) Fig9() (*Dataset, error) {
	trace := s.Trace()
	d := &Dataset{
		Name:   "fig9",
		Header: []string{"subframe", "max_layers", "min_layers"},
	}
	for i := 0; i < len(trace.Subframes); i += s.Cfg.PlotStride {
		_, _, _, _, mx, mn := userStats(trace.Subframes[i])
		d.Rows = append(d.Rows, []string{itoa(i * s.Cfg.Compression), itoa(mx), itoa(mn)})
	}
	d.Note = "layer extremes follow the triangular probability ramp (paper Fig. 9)"
	return d, nil
}

// Fig11 regenerates the calibration curves: activity vs PRB for all twelve
// (layers, modulation) combinations, plus the fitted k coefficients.
func (s *Suite) Fig11() (*Dataset, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	return Fig11Dataset(cal), nil
}

// Fig11Dataset renders an existing calibration as the Fig. 11 dataset
// (used by cmd/lte-calibrate, which owns its own sweep).
func Fig11Dataset(cal *estimator.Calibration) *Dataset {
	keys := cal.Keys()
	d := &Dataset{Name: "fig11"}
	d.Header = []string{"prb"}
	for _, k := range keys {
		d.Header = append(d.Header, fmt.Sprintf("%s_%dL", k.Mod, k.Layers))
	}
	curve0 := cal.Curves[keys[0]]
	for i := range curve0 {
		row := []string{itoa(curve0[i].PRB)}
		for _, k := range keys {
			row = append(row, f(cal.Curves[k][i].Activity))
		}
		d.Rows = append(d.Rows, row)
	}
	top := cal.Curves[keys[len(keys)-1]]
	d.Note = fmt.Sprintf(
		"12 near-linear curves; 64QAM/4L tops out at %.2f activity, QPSK/1L at %.2f (paper Fig. 11: ~0.95 and ~0.10)",
		top[len(top)-1].Activity, curve0[len(curve0)-1].Activity)
	return d
}

// Fig12 regenerates estimated-vs-measured activity and reports the
// estimation error statistics the paper quotes (avg 1.2%, max 5.4%).
func (s *Suite) Fig12() (*Dataset, *EstimationError, error) {
	est, err := s.EstimatedActivity1s()
	if err != nil {
		return nil, nil, err
	}
	meas, err := s.MeasuredActivity1s(sim.NONAP)
	if err != nil {
		return nil, nil, err
	}
	n := len(est)
	if len(meas) < n {
		n = len(meas)
	}
	d := &Dataset{
		Name:   "fig12",
		Header: []string{"time_s", "estimated", "measured"},
	}
	stats := &EstimationError{}
	count := 0
	for i := 0; i < n; i++ {
		t := float64(i) * s.Cfg.ActivityWindowSec
		d.Rows = append(d.Rows, []string{f2(t), f(est[i]), f(meas[i])})
		if i == 0 {
			continue // pipeline-fill window
		}
		e := est[i] - meas[i]
		stats.Mean += meas[i]
		if a := math.Abs(e); a > stats.MaxAbs {
			stats.MaxAbs = a
		}
		stats.AvgAbs += math.Abs(e)
		count++
	}
	if count > 0 {
		stats.AvgAbs /= float64(count)
		stats.Mean /= float64(count)
	}
	d.Note = fmt.Sprintf(
		"estimated tracks measured: avg |err| %.3f, max |err| %.3f, mean activity %.2f (paper: 0.012 avg, 0.054 max, ~0.5 mean)",
		stats.AvgAbs, stats.MaxAbs, stats.Mean)
	return d, stats, nil
}

// EstimationError summarises Fig. 12's accuracy.
type EstimationError struct {
	AvgAbs float64 // average |estimated - measured| in activity units
	MaxAbs float64
	Mean   float64 // mean measured activity over the trace
}

// Fig13 regenerates the estimated active-core trace (Eq. 5).
func (s *Suite) Fig13() (*Dataset, error) {
	cores, err := s.EstimatedActiveCores()
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Name:   "fig13",
		Header: []string{"subframe", "active_cores"},
	}
	lo, hi := 1<<30, 0
	for i := 0; i < len(cores); i += s.Cfg.PlotStride {
		d.Rows = append(d.Rows, []string{itoa(i * s.Cfg.Compression), itoa(cores[i])})
		if cores[i] < lo {
			lo = cores[i]
		}
		if cores[i] > hi {
			hi = cores[i]
		}
	}
	d.Note = fmt.Sprintf("estimated active cores span %d..%d of %d (paper Fig. 13: rapid changes across nearly the full range)",
		lo, hi, s.Cfg.Workers)
	return d, nil
}

// Fig14 regenerates the NONAP-vs-NAP power comparison with the activity
// curve.
func (s *Suite) Fig14() (*Dataset, error) {
	nonap, err := s.PowerSeries(sim.NONAP)
	if err != nil {
		return nil, err
	}
	nap, err := s.PowerSeries(sim.NAP)
	if err != nil {
		return nil, err
	}
	res, err := s.Run(sim.NONAP)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Name:   "fig14",
		Header: []string{"time_s", "activity", "nonap_w", "nap_w"},
	}
	n := min(len(nonap), len(nap), res.Windows())
	var maxGap float64
	for i := 0; i < n; i++ {
		t := float64(i) * s.Cfg.PowerWindowSec
		d.Rows = append(d.Rows, []string{f2(t), f(res.Activity(i)), f2(nonap[i]), f2(nap[i])})
		if g := nonap[i] - nap[i]; g > maxGap {
			maxGap = g
		}
	}
	d.Note = fmt.Sprintf("NAP saves up to %.1f W at low load (paper Fig. 14: 6-7 W, >25%%)", maxGap)
	return d, nil
}

// Fig15 regenerates the four-policy power comparison.
func (s *Suite) Fig15() (*Dataset, error) {
	series := make(map[sim.Policy][]float64, 4)
	n := 1 << 30
	for _, pol := range []sim.Policy{sim.NONAP, sim.IDLE, sim.NAP, sim.NAPIDLE} {
		ser, err := s.PowerSeries(pol)
		if err != nil {
			return nil, err
		}
		series[pol] = ser
		if len(ser) < n {
			n = len(ser)
		}
	}
	d := &Dataset{
		Name:   "fig15",
		Header: []string{"time_s", "nonap_w", "idle_w", "nap_w", "napidle_w"},
	}
	for i := 0; i < n; i++ {
		t := float64(i) * s.Cfg.PowerWindowSec
		d.Rows = append(d.Rows, []string{f2(t),
			f2(series[sim.NONAP][i]), f2(series[sim.IDLE][i]),
			f2(series[sim.NAP][i]), f2(series[sim.NAPIDLE][i])})
	}
	d.Note = "NONAP highest throughout; NAP+IDLE lowest (paper Fig. 15)"
	return d, nil
}

// Fig16 regenerates the power-gating figure.
func (s *Suite) Fig16() (*Dataset, error) {
	nonap, err := s.PowerSeries(sim.NONAP)
	if err != nil {
		return nil, err
	}
	idle, err := s.PowerSeries(sim.IDLE)
	if err != nil {
		return nil, err
	}
	napidle, err := s.PowerSeries(sim.NAPIDLE)
	if err != nil {
		return nil, err
	}
	gated, err := s.GatedSeries()
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Name:   "fig16",
		Header: []string{"time_s", "nonap_w", "idle_w", "napidle_w", "powergating_w"},
	}
	n := min(len(nonap), len(idle), len(napidle), len(gated))
	var maxVsIdle float64
	for i := 0; i < n; i++ {
		t := float64(i) * s.Cfg.PowerWindowSec
		d.Rows = append(d.Rows, []string{f2(t), f2(nonap[i]), f2(idle[i]), f2(napidle[i]), f2(gated[i])})
		if g := (idle[i] - gated[i]) / idle[i]; g > maxVsIdle {
			maxVsIdle = g
		}
	}
	d.Note = fmt.Sprintf("power gating saves up to %.0f%% vs IDLE at low load (paper: >24%%)", 100*maxVsIdle)
	return d, nil
}

// Table1 regenerates the dynamic-power table (total minus 14 W base).
func (s *Suite) Table1() (*Dataset, error) {
	avgs, err := s.PowerAverages()
	if err != nil {
		return nil, err
	}
	base := s.Cfg.Power.BaseW
	nonap := avgs["NONAP"] - base
	d := &Dataset{
		Name:   "table1",
		Header: []string{"technique", "power_w", "reduction"},
	}
	for _, name := range []string{"NONAP", "IDLE", "NAP", "NAP+IDLE"} {
		dyn := avgs[name] - base
		d.Rows = append(d.Rows, []string{name, f2(dyn), pct(-(nonap - dyn) / nonap)})
	}
	d.Note = "paper Table I: NONAP 11 W / IDLE 6.7 (-39%) / NAP 6.5 (-41%) / NAP+IDLE 5.9 (-46%)"
	return d, nil
}

// Table2 regenerates the total-power table with both baselines.
func (s *Suite) Table2() (*Dataset, error) {
	avgs, err := s.PowerAverages()
	if err != nil {
		return nil, err
	}
	nonap, idle := avgs["NONAP"], avgs["IDLE"]
	d := &Dataset{
		Name:   "table2",
		Header: []string{"technique", "power_w", "rel_nonap", "rel_idle"},
	}
	for _, name := range []string{"NONAP", "IDLE", "NAP", "NAP+IDLE", "PowerGating"} {
		v := avgs[name]
		d.Rows = append(d.Rows, []string{name, f2(v), pct((v - nonap) / nonap), pct((v - idle) / idle)})
	}
	d.Note = "paper Table II: 25 / 20.7 / 20.5 / 19.9 / 18.5 W; PowerGating -26% vs NONAP, -11% vs IDLE"
	return d, nil
}

func min(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
