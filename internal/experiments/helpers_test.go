package experiments

import (
	"testing"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/uplink"
)

func TestAggregate(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5, 6, 7}
	got := aggregate(in, 2)
	want := []float64{1.5, 3.5, 5.5} // trailing partial group dropped
	if len(got) != len(want) {
		t.Fatalf("aggregate returned %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aggregate[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if out := aggregate(in, 0); len(out) != len(in) {
		t.Errorf("aggregate with k=0 should behave as k=1, got %d entries", len(out))
	}
	if out := aggregate(nil, 3); len(out) != 0 {
		t.Errorf("aggregate(nil) = %v", out)
	}
}

func TestUserStats(t *testing.T) {
	users := []uplink.UserParams{
		{PRB: 10, Layers: 2, Mod: modulation.QPSK},
		{PRB: 30, Layers: 4, Mod: modulation.QAM64},
		{PRB: 5, Layers: 1, Mod: modulation.QAM16},
	}
	count, total, maxPRB, minPRB, maxL, minL := userStats(users)
	if count != 3 || total != 45 || maxPRB != 30 || minPRB != 5 || maxL != 4 || minL != 1 {
		t.Errorf("userStats = (%d,%d,%d,%d,%d,%d)", count, total, maxPRB, minPRB, maxL, minL)
	}
	count, total, maxPRB, minPRB, maxL, minL = userStats(nil)
	if count != 0 || total != 0 || maxPRB != 0 || minPRB != 0 || maxL != 0 || minL != 0 {
		t.Errorf("empty userStats = (%d,%d,%d,%d,%d,%d)", count, total, maxPRB, minPRB, maxL, minL)
	}
}

func TestFormatters(t *testing.T) {
	if f(0.12345) != "0.1234" && f(0.12345) != "0.1235" {
		t.Errorf("f(0.12345) = %s", f(0.12345))
	}
	if f2(3.14159) != "3.14" {
		t.Errorf("f2 = %s", f2(3.14159))
	}
	if itoa(-42) != "-42" {
		t.Errorf("itoa = %s", itoa(-42))
	}
	if pct(0.256) != "+26%" {
		t.Errorf("pct(0.256) = %s", pct(0.256))
	}
	if pct(-0.0) != "+0%" {
		t.Errorf("pct(-0) = %s", pct(-0.0))
	}
	if pct(-0.11) != "-11%" {
		t.Errorf("pct(-0.11) = %s", pct(-0.11))
	}
}
