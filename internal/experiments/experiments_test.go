package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"ltephy/internal/sim"
)

// suite is shared across tests in this package: the Quick preset's heavy
// artifacts (calibration, policy runs) are computed once.
var shared *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if shared == nil {
		s, err := NewSuite(Quick())
		if err != nil {
			t.Fatal(err)
		}
		shared = s
	}
	return shared
}

func TestConfigValidate(t *testing.T) {
	if err := Full().Validate(); err != nil {
		t.Errorf("Full config invalid: %v", err)
	}
	if err := Quick().Validate(); err != nil {
		t.Errorf("Quick config invalid: %v", err)
	}
	bad := Quick()
	bad.Compression = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero compression accepted")
	}
	bad = Quick()
	bad.PlotStride = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero plot stride accepted")
	}
}

func TestTraceFigures(t *testing.T) {
	s := getSuite(t)
	fig7, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7.Rows) == 0 {
		t.Fatal("Fig7 produced no rows")
	}
	for _, row := range fig7.Rows {
		n, _ := strconv.Atoi(row[1])
		if n < 1 || n > 10 {
			t.Fatalf("Fig7 users = %s outside 1..10", row[1])
		}
	}
	fig8, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig8.Rows {
		total, _ := strconv.Atoi(row[1])
		mx, _ := strconv.Atoi(row[2])
		mn, _ := strconv.Atoi(row[3])
		if total > 200 || mx > total || mn > mx || mn < 2 {
			t.Fatalf("Fig8 row inconsistent: %v", row)
		}
	}
	fig9, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	sawHigh := false
	for _, row := range fig9.Rows {
		mx, _ := strconv.Atoi(row[1])
		mn, _ := strconv.Atoi(row[2])
		if mx < mn || mx > 4 || mn < 1 {
			t.Fatalf("Fig9 row inconsistent: %v", row)
		}
		if mx == 4 {
			sawHigh = true
		}
	}
	if !sawHigh {
		t.Error("Fig9 never reached 4 layers; ramp not swept")
	}
}

func TestFig11CurvesShape(t *testing.T) {
	s := getSuite(t)
	fig11, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig11.Header) != 13 {
		t.Fatalf("Fig11 has %d columns, want 13 (prb + 12 curves)", len(fig11.Header))
	}
	// Last row = 200 PRB (step divides 198 evenly? ensure at least the top
	// point exists and the rightmost column dominates the second column).
	last := fig11.Rows[len(fig11.Rows)-1]
	lo, _ := strconv.ParseFloat(last[1], 64)
	hi, _ := strconv.ParseFloat(last[len(last)-1], 64)
	if hi < 5*lo {
		t.Errorf("Fig11 top curve (%.3f) not well above bottom curve (%.3f)", hi, lo)
	}
	if hi < 0.8 || hi > 1.0 {
		t.Errorf("Fig11 max activity %.3f, want ~0.95", hi)
	}
}

// TestFig12Accuracy is the headline estimator result: tracking within a
// few percent (paper: avg 1.2%, max 5.4%).
func TestFig12Accuracy(t *testing.T) {
	s := getSuite(t)
	_, stats, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if stats.AvgAbs > 0.05 {
		t.Errorf("avg estimation error %.3f, want < 0.05", stats.AvgAbs)
	}
	if stats.MaxAbs > 0.15 {
		t.Errorf("max estimation error %.3f, want < 0.15", stats.MaxAbs)
	}
	// The paper's trace averages ~50% activity.
	if stats.Mean < 0.3 || stats.Mean > 0.7 {
		t.Errorf("mean activity %.3f, want ~0.5", stats.Mean)
	}
}

func TestFig13Range(t *testing.T) {
	s := getSuite(t)
	fig13, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 1<<30, 0
	for _, row := range fig13.Rows {
		v, _ := strconv.Atoi(row[1])
		if v < 1 || v > 62 {
			t.Fatalf("Fig13 active cores %d outside [1,62]", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 30 {
		t.Errorf("Fig13 range [%d,%d] too narrow; paper shows nearly the full span", lo, hi)
	}
}

// TestPowerOrdering checks the paper's central comparison across the whole
// trace: NONAP is most expensive, NAP+IDLE beats both single techniques,
// and PowerGating beats everything.
func TestPowerOrdering(t *testing.T) {
	s := getSuite(t)
	avgs, err := s.PowerAverages()
	if err != nil {
		t.Fatal(err)
	}
	nonap, idle, nap, napidle, gated :=
		avgs["NONAP"], avgs["IDLE"], avgs["NAP"], avgs["NAP+IDLE"], avgs["PowerGating"]
	if !(nonap > idle && nonap > nap) {
		t.Errorf("NONAP %.2f not the most expensive (IDLE %.2f, NAP %.2f)", nonap, idle, nap)
	}
	if !(napidle < idle && napidle < nap) {
		t.Errorf("NAP+IDLE %.2f not below IDLE %.2f and NAP %.2f", napidle, idle, nap)
	}
	if !(gated < napidle) {
		t.Errorf("PowerGating %.2f not below NAP+IDLE %.2f", gated, napidle)
	}
	// Magnitude bands from Table II (tolerance: the quick preset compresses
	// the trace 20x, which shifts averages slightly).
	check := func(name string, got, want, tol float64) {
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %.2f W, paper reports %.1f (+-%.1f)", name, got, want, tol)
		}
	}
	check("NONAP", nonap, 25, 1.5)
	check("IDLE", idle, 20.7, 1.5)
	check("NAP", nap, 20.5, 1.5)
	check("NAP+IDLE", napidle, 19.9, 1.5)
	check("PowerGating", gated, 18.5, 1.5)
}

func TestTables(t *testing.T) {
	s := getSuite(t)
	t1, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 4 {
		t.Fatalf("Table1 has %d rows", len(t1.Rows))
	}
	if t1.Rows[0][0] != "NONAP" || t1.Rows[0][2] != "+0%" {
		t.Errorf("Table1 NONAP row = %v", t1.Rows[0])
	}
	t2, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 5 {
		t.Fatalf("Table2 has %d rows", len(t2.Rows))
	}
	if t2.Rows[4][0] != "PowerGating" {
		t.Errorf("Table2 last row = %v", t2.Rows[4])
	}
}

func TestFig14to16Shapes(t *testing.T) {
	s := getSuite(t)
	for _, get := range []func() (*Dataset, error){s.Fig14, s.Fig15, s.Fig16} {
		d, err := get()
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Rows) < 10 {
			t.Fatalf("%s has only %d rows", d.Name, len(d.Rows))
		}
		for _, row := range d.Rows {
			if len(row) != len(d.Header) {
				t.Fatalf("%s: row width %d != header %d", d.Name, len(row), len(d.Header))
			}
		}
	}
	// Fig14's NAP must dip well below NONAP somewhere (low-load savings).
	fig14, _ := s.Fig14()
	sawGap := false
	for _, row := range fig14.Rows {
		nonap, _ := strconv.ParseFloat(row[2], 64)
		nap, _ := strconv.ParseFloat(row[3], 64)
		if nonap-nap > 3 {
			sawGap = true
		}
	}
	if !sawGap {
		t.Error("Fig14 never shows a >3 W NONAP-NAP gap (paper: 6-7 W at low load)")
	}
}

func TestRenderAndCSV(t *testing.T) {
	d := &Dataset{
		Name:   "demo",
		Note:   "note",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}, {"5", "6"}},
	}
	var csvBuf bytes.Buffer
	if err := d.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	want := "a,bb\n1,2\n3,4\n5,6\n"
	if csvBuf.String() != want {
		t.Errorf("CSV = %q, want %q", csvBuf.String(), want)
	}
	var txt bytes.Buffer
	if err := d.Render(&txt, 2); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "elided") || !strings.Contains(out, "note") {
		t.Errorf("rendered output missing parts:\n%s", out)
	}
	var full bytes.Buffer
	if err := d.Render(&full, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(full.String(), "elided") {
		t.Error("unlimited render elided rows")
	}
}

func TestSuiteCaching(t *testing.T) {
	s := getSuite(t)
	a, err := s.Run(sim.NONAP)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(sim.NONAP)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Run not cached")
	}
	c1, err := s.Calibration()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Calibration()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("Calibration not cached")
	}
}

// TestExtensionsTable: estimate-driven DVFS must beat NONAP clearly and be
// competitive with the paper's core-masking techniques (cubic power
// scaling buys a lot at mid load even though all cores stay powered).
func TestExtensionsTable(t *testing.T) {
	s := getSuite(t)
	d, err := s.TableExtensions()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 4 || d.Rows[3][0] != "DVFS" {
		t.Fatalf("extensions table shape wrong: %v", d.Rows)
	}
	avgs, err := s.PowerAverages()
	if err != nil {
		t.Fatal(err)
	}
	dvfs, err := s.PowerSeries(sim.DVFS)
	if err != nil {
		t.Fatal(err)
	}
	dvfsW := 0.0
	for _, v := range dvfs {
		dvfsW += v
	}
	dvfsW /= float64(len(dvfs))
	if dvfsW >= avgs["NONAP"]-2 {
		t.Errorf("DVFS %.2f W not clearly below NONAP %.2f W", dvfsW, avgs["NONAP"])
	}
	if dvfsW < 14 {
		t.Errorf("DVFS %.2f W below base power; model broken", dvfsW)
	}
}

// TestTypicalLoadScenario reproduces the paper's conclusion claim: at a
// typical ~25% base-station load (half the evaluation pool), the relative
// savings of estimation-driven management grow.
func TestTypicalLoadScenario(t *testing.T) {
	full := getSuite(t)
	fullAvgs, err := full.PowerAverages()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Quick()
	cfg.PRBPool = 100
	half, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	halfAvgs, err := half.PowerAverages()
	if err != nil {
		t.Fatal(err)
	}
	rel := func(a map[string]float64) float64 {
		return (a["IDLE"] - a["PowerGating"]) / a["IDLE"]
	}
	if rel(halfAvgs) <= rel(fullAvgs) {
		t.Errorf("gating saves %.1f%% vs IDLE at 25%% load, not more than %.1f%% at 50%%",
			100*rel(halfAvgs), 100*rel(fullAvgs))
	}
}

// TestDiurnalEnergy: over a realistic day the relative savings must exceed
// the stress-trace savings (the paper's conclusions claim), and the row
// set must be complete.
func TestDiurnalEnergy(t *testing.T) {
	s := getSuite(t)
	d, err := s.TableDiurnal()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 5 {
		t.Fatalf("diurnal table has %d rows", len(d.Rows))
	}
	vals := map[string]float64{}
	for _, row := range d.Rows {
		var v float64
		if _, err := fmt.Sscanf(row[1], "%f", &v); err != nil {
			t.Fatal(err)
		}
		vals[row[0]] = v
	}
	if !(vals["NONAP"] > vals["IDLE"] && vals["IDLE"] > vals["NAP+IDLE"] &&
		vals["NAP+IDLE"] > vals["PowerGating"]) {
		t.Errorf("diurnal ordering violated: %v", vals)
	}
	// Relative gating savings at ~25% diurnal load beat the ~43%-load trace.
	stress, err := s.PowerAverages()
	if err != nil {
		t.Fatal(err)
	}
	relDiurnal := (vals["NONAP"] - vals["PowerGating"]) / vals["NONAP"]
	relStress := (stress["NONAP"] - stress["PowerGating"]) / stress["NONAP"]
	if relDiurnal <= relStress {
		t.Errorf("diurnal gating saving %.1f%% not above stress-trace %.1f%%",
			100*relDiurnal, 100*relStress)
	}
}

// TestLatencyTable: the power-vs-latency extension — all policies keep a
// sane tail, and throttling policies cannot beat NONAP's latency.
func TestLatencyTable(t *testing.T) {
	s := getSuite(t)
	d, err := s.TableLatency()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 5 {
		t.Fatalf("latency table has %d rows", len(d.Rows))
	}
	get := func(row []string, col int) float64 {
		var v float64
		if _, err := fmt.Sscanf(row[col], "%f", &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	var nonapP95 float64
	for _, row := range d.Rows {
		p50, p95, p99 := get(row, 2), get(row, 3), get(row, 4)
		if !(p50 <= p95 && p95 <= p99) {
			t.Errorf("%s: percentiles not ordered: %v", row[0], row)
		}
		if row[0] == "NONAP" {
			nonapP95 = p95
		}
	}
	for _, row := range d.Rows {
		if p95 := get(row, 3); p95 < nonapP95 {
			t.Errorf("%s P95 %.1f below NONAP's %.1f; throttling cannot speed things up",
				row[0], p95, nonapP95)
		}
	}
}

// TestScalingTable: activity must fall and the latency tail tighten as the
// worker pool grows.
func TestScalingTable(t *testing.T) {
	s := getSuite(t)
	d, err := s.TableScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 4 {
		t.Fatalf("scaling table has %d rows", len(d.Rows))
	}
	parse := func(row []string, col int) float64 {
		var v float64
		fmt.Sscanf(row[col], "%f", &v)
		return v
	}
	for i := 1; i < len(d.Rows); i++ {
		if parse(d.Rows[i], 1) >= parse(d.Rows[i-1], 1) {
			t.Errorf("mean activity did not fall from %s to %s workers",
				d.Rows[i-1][0], d.Rows[i][0])
		}
		if parse(d.Rows[i], 3) > parse(d.Rows[i-1], 3) {
			t.Errorf("late fraction grew from %s to %s workers",
				d.Rows[i-1][0], d.Rows[i][0])
		}
	}
	// 16 cores cannot absorb the 0.95-activity peak: lateness must be
	// visibly worse than at 62.
	if parse(d.Rows[0], 3) <= parse(d.Rows[2], 3) {
		t.Error("16-core run not later than 62-core run")
	}
}

// TestSensitivityTable: more aggressive (negative) bias must not reduce
// latency, and power must be monotone nondecreasing in the bias.
func TestSensitivityTable(t *testing.T) {
	s := getSuite(t)
	d, err := s.TableSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	parse := func(row []string, col int) float64 {
		var v float64
		fmt.Sscanf(row[col], "%f", &v)
		return v
	}
	for i := 1; i < len(d.Rows); i++ {
		if parse(d.Rows[i], 1) < parse(d.Rows[i-1], 1)-0.05 {
			t.Errorf("power decreased with a larger active set (bias %s -> %s)",
				d.Rows[i-1][0], d.Rows[i][0])
		}
	}
	// The most starved setting must show the worst tail.
	if parse(d.Rows[0], 2) < parse(d.Rows[len(d.Rows)-1], 2) {
		t.Error("starving the estimate did not hurt the latency tail")
	}
}

// TestQueueingTable: on this trace, SJF admission must be within noise of
// FIFO (the backlog spans subframes, so intra-subframe order barely
// matters) — the dataset's documented finding. The mechanism itself is
// demonstrated under controlled contention in internal/sim's tests.
func TestQueueingTable(t *testing.T) {
	s := getSuite(t)
	d, err := s.TableQueueing()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 2 || d.Rows[0][0] != "FIFO" || d.Rows[1][0] != "SJF" {
		t.Fatalf("queueing table shape: %v", d.Rows)
	}
	var fifo, sjf float64
	fmt.Sscanf(d.Rows[0][1], "%f", &fifo)
	fmt.Sscanf(d.Rows[1][1], "%f", &sjf)
	if fifo <= 0 || sjf <= 0 {
		t.Fatalf("latencies not positive: %g %g", fifo, sjf)
	}
	if diff := (sjf - fifo) / fifo; diff > 0.05 || diff < -0.5 {
		t.Errorf("SJF/FIFO mean latency delta %.1f%% outside the expected wash band", 100*diff)
	}
}

// TestThroughputTable: the pool's rate range brackets the paper's
// motivating 100 Mbit/s figure.
func TestThroughputTable(t *testing.T) {
	s := getSuite(t)
	d, err := s.TableThroughput()
	if err != nil {
		t.Fatal(err)
	}
	parse := func(row []string) float64 {
		var v float64
		fmt.Sscanf(row[2], "%f", &v)
		return v
	}
	minR, meanR, peakR := parse(d.Rows[0]), parse(d.Rows[1]), parse(d.Rows[2])
	if !(minR < meanR && meanR < peakR) {
		t.Errorf("throughput stats not ordered: %g %g %g", minR, meanR, peakR)
	}
	// 200 PRB of QPSK/1L is ~57 Mbit/s; 64QAM/4L is ~690 Mbit/s. The trace
	// sweeps between them, bracketing the intro's 100 Mbit/s.
	if minR > 100 || peakR < 300 {
		t.Errorf("rate range [%.0f, %.0f] Mbit/s implausible for the pool", minR, peakR)
	}
}
