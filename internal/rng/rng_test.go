package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := New(2)
	const n, buckets = 100000, 10
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[int(r.Float64()*buckets)]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: %d draws, want ~%d", b, c, want)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %g, want ~1", variance)
	}
}

func TestComplexNormalVariance(t *testing.T) {
	r := New(5)
	const n = 100000
	var e float64
	for i := 0; i < n; i++ {
		z := r.ComplexNormal(2.5)
		e += real(z)*real(z) + imag(z)*imag(z)
	}
	if got := e / n; math.Abs(got-2.5) > 0.1 {
		t.Errorf("E|z|^2 = %g, want 2.5", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(6)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split streams collided %d times", same)
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(7)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}
