// Package rng provides the deterministic pseudo-random generator used
// throughout the benchmark. Every experiment in the paper reduces to a
// seeded trace (the same 68,000 subframes must be replayable across the
// serial reference, the parallel runtime and the simulator), so all
// randomness flows through this one splitmix64 generator rather than
// math/rand's global state.
package rng

import "math"

// RNG is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0. It is not safe for concurrent use; give each
// goroutine its own (Split derives independent streams).
type RNG struct {
	state uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent generator from r, advancing r once.
// Streams from distinct Split calls are decorrelated by the splitmix64
// finaliser.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64() ^ 0x9E3779B97F4A7C15} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1), the random() of the paper's
// Fig. 6 pseudocode.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Bit returns a uniform bit value (0 or 1).
func (r *RNG) Bit() uint8 { return uint8(r.Uint64() & 1) }

// NormFloat64 returns a standard normal variate via Box-Muller (no cached
// spare: reproducibility across call patterns matters more than the extra
// cosine).
func (r *RNG) NormFloat64() float64 {
	// Guard against log(0).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// ComplexNormal returns a circularly-symmetric complex Gaussian with the
// given total variance (E|z|^2 = variance).
func (r *RNG) ComplexNormal(variance float64) complex128 {
	s := math.Sqrt(variance / 2)
	return complex(s*r.NormFloat64(), s*r.NormFloat64())
}
