package sim

import (
	"math"
	"testing"

	"ltephy/internal/params"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/uplink"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.WindowSec = 0.1 // shorter windows keep tests fast
	return cfg
}

func steady(t *testing.T, p uplink.UserParams) params.Model {
	t.Helper()
	m, err := params.NewSteady(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBusyEqualsCostModel: the sim's total busy cycles must equal the cost
// model's per-user totals exactly — the invariant tying the simulator to
// the workload model.
func TestBusyEqualsCostModel(t *testing.T) {
	cfg := testConfig()
	p := uplink.UserParams{PRB: 40, Layers: 2, Mod: modulation.QAM16}
	const n = 100
	res, err := Run(cfg, steady(t, p), n)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) * cfg.Cost.UserCycles(p, cfg.Antennas)
	if math.Abs(res.TotalBusy-want) > 1e-6*want {
		t.Errorf("TotalBusy = %g, cost model says %g", res.TotalBusy, want)
	}
	// Window accounting must preserve the total (minus the trimmed tail).
	var sum float64
	for _, b := range res.Busy {
		sum += b
	}
	if sum > res.TotalBusy {
		t.Errorf("windowed busy %g exceeds total %g", sum, res.TotalBusy)
	}
}

// TestSteadyActivityMatchesPaperEndpoints reproduces Fig. 11's anchor
// points on the simulator itself (not just the cost model): the max
// configuration saturates ~95%, the min sits near 10%.
func TestSteadyActivityMatchesPaperEndpoints(t *testing.T) {
	cfg := testConfig()
	hi, err := SteadyActivity(cfg, uplink.UserParams{PRB: 200, Layers: 4, Mod: modulation.QAM64}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hi < 0.85 || hi > 1.0 {
		t.Errorf("max-config steady activity = %.3f, want ~0.95", hi)
	}
	lo, err := SteadyActivity(cfg, uplink.UserParams{PRB: 200, Layers: 1, Mod: modulation.QPSK}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 0.05 || lo > 0.2 {
		t.Errorf("min-config steady activity = %.3f, want ~0.1", lo)
	}
}

// TestActivityLinearInPRB checks the Fig. 11 property on the simulator:
// activity at 100 PRB is close to half the activity at 200 PRB.
func TestActivityLinearInPRB(t *testing.T) {
	cfg := testConfig()
	for _, tc := range []struct {
		layers int
		mod    modulation.Scheme
	}{{1, modulation.QPSK}, {2, modulation.QAM16}, {4, modulation.QAM64}} {
		half, err := SteadyActivity(cfg, uplink.UserParams{PRB: 100, Layers: tc.layers, Mod: tc.mod}, 2)
		if err != nil {
			t.Fatal(err)
		}
		full, err := SteadyActivity(cfg, uplink.UserParams{PRB: 200, Layers: tc.layers, Mod: tc.mod}, 2)
		if err != nil {
			t.Fatal(err)
		}
		ratio := full / half
		if ratio < 1.7 || ratio > 2.3 {
			t.Errorf("layers=%d mod=%v: activity(200)/activity(100) = %.2f, want ~2",
				tc.layers, tc.mod, ratio)
		}
	}
}

func TestNAPPolicyRecordsActiveCores(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = NAP
	cfg.ActiveCores = func(seq int64, users []uplink.UserParams) int { return 10 }
	res, err := Run(cfg, steady(t, uplink.UserParams{PRB: 20, Layers: 1, Mod: modulation.QPSK}), 50)
	if err != nil {
		t.Fatal(err)
	}
	for s, a := range res.ActiveCores {
		if a != 10 {
			t.Fatalf("subframe %d: active = %d, want 10", s, a)
		}
	}
	// Capacity per full window must be 10 cores' worth.
	for i, cap := range res.ActiveCap {
		want := 10 * res.WindowCycles
		if math.Abs(cap-want) > 1e-6*want {
			t.Fatalf("window %d: ActiveCap = %g, want %g", i, cap, want)
		}
	}
}

func TestNAPClampsActiveCores(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = NAPIDLE
	cfg.ActiveCores = func(seq int64, users []uplink.UserParams) int {
		if seq%2 == 0 {
			return -3
		}
		return 9999
	}
	res, err := Run(cfg, steady(t, uplink.UserParams{PRB: 2, Layers: 1, Mod: modulation.QPSK}), 10)
	if err != nil {
		t.Fatal(err)
	}
	for s, a := range res.ActiveCores {
		if a < 1 || a > cfg.Workers {
			t.Fatalf("subframe %d: active = %d not clamped", s, a)
		}
	}
}

// TestThrottledMaskCausesLag: shrinking the active set must increase
// completion lag — the cost of under-provisioning the Eq. 5 estimate. (At
// maximum load the serial per-user backend pipelines beyond the 3-period
// deadline even on all 62 cores, so the comparison is relative.)
func TestThrottledMaskCausesLag(t *testing.T) {
	heavy := uplink.UserParams{PRB: 200, Layers: 4, Mod: modulation.QAM64}
	run := func(active int) *Result {
		cfg := testConfig()
		cfg.Policy = NAP
		cfg.ActiveCores = func(int64, []uplink.UserParams) int { return active }
		res, err := Run(cfg, steady(t, heavy), 60)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	throttled, full := run(1), run(62)
	if throttled.MaxLagCycles <= full.MaxLagCycles {
		t.Errorf("1-core lag %g not worse than 62-core lag %g",
			throttled.MaxLagCycles, full.MaxLagCycles)
	}
	// A light workload on all cores must meet the deadline comfortably.
	light := uplink.UserParams{PRB: 10, Layers: 1, Mod: modulation.QPSK}
	res, err := Run(testConfig(), steady(t, light), 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.LateSubframes != 0 {
		t.Errorf("light load missed %d deadlines on 62 cores", res.LateSubframes)
	}
}

func TestIdleNapAddsWakeLatency(t *testing.T) {
	// The same workload under IDLE must complete no earlier than under
	// NONAP (wake latency delays pickup), visible as equal-or-later busy
	// placement; total busy is identical by construction.
	p := uplink.UserParams{PRB: 30, Layers: 2, Mod: modulation.QAM16}
	base := testConfig()
	resA, err := Run(base, steady(t, p), 60)
	if err != nil {
		t.Fatal(err)
	}
	idle := testConfig()
	idle.Policy = IDLE
	resB, err := Run(idle, steady(t, p), 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resA.TotalBusy-resB.TotalBusy) > 1e-6*resA.TotalBusy {
		t.Errorf("busy cycles changed with policy: %g vs %g", resA.TotalBusy, resB.TotalBusy)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	run := func() *Result {
		m := params.NewRandom(42)
		res, err := Run(cfg, m, 400)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalBusy != b.TotalBusy || a.MaxLagCycles != b.MaxLagCycles {
		t.Error("identical runs diverged")
	}
	for i := range a.Busy {
		if a.Busy[i] != b.Busy[i] {
			t.Fatalf("window %d busy differs", i)
		}
	}
}

// TestRandomModelMeanActivity: the paper's parameter model averaged ~50%
// activity over the full trace (Fig. 12). A slice of the ramp's middle
// should land in a sensible band.
func TestRandomModelMeanActivity(t *testing.T) {
	cfg := testConfig()
	cfg.WindowSec = 1.0
	m := params.NewRandom(1)
	// Skip to one quarter through the trace (~50% ramp probability).
	for i := 0; i < params.RampLength/2; i++ {
		m.Next()
	}
	res, err := Run(cfg, m, 2000)
	if err != nil {
		t.Fatal(err)
	}
	mean := res.MeanActivity()
	if mean < 0.2 || mean > 0.9 {
		t.Errorf("mid-ramp mean activity = %.3f, expected mid-band", mean)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Antennas = 0 },
		func(c *Config) { c.PeriodSec = 0 },
		func(c *Config) { c.WindowSec = -1 },
		func(c *Config) { c.Policy = NAP; c.ActiveCores = nil },
		func(c *Config) { c.Cost.CyclesPerOp = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{NONAP: "NONAP", IDLE: "IDLE", NAP: "NAP", NAPIDLE: "NAP+IDLE"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if !NAP.UsesEstimator() || NONAP.UsesEstimator() {
		t.Error("UsesEstimator wrong")
	}
	if !NAPIDLE.UsesIdleNap() || NAP.UsesIdleNap() {
		t.Error("UsesIdleNap wrong")
	}
}

func BenchmarkRun1000Subframes(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		m := params.NewRandom(7)
		if _, err := Run(cfg, m, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// TestUserLevelOnlyAblation: the Fig. 4 motivation — per-user-only
// parallelism preserves total work but stretches per-user latency, so the
// maximum lag grows.
func TestUserLevelOnlyAblation(t *testing.T) {
	p := uplink.UserParams{PRB: 120, Layers: 4, Mod: modulation.QAM16}
	fine := testConfig()
	resFine, err := Run(fine, steady(t, p), 80)
	if err != nil {
		t.Fatal(err)
	}
	coarse := testConfig()
	coarse.UserLevelOnly = true
	resCoarse, err := Run(coarse, steady(t, p), 80)
	if err != nil {
		t.Fatal(err)
	}
	if resCoarse.MaxLagCycles <= resFine.MaxLagCycles {
		t.Errorf("user-level-only lag %g not worse than task-parallel lag %g",
			resCoarse.MaxLagCycles, resFine.MaxLagCycles)
	}
	// Work totals match to rounding (the fold preserves per-task overheads).
	if d := math.Abs(resCoarse.TotalBusy - resFine.TotalBusy); d > 1e-6*resFine.TotalBusy {
		t.Errorf("coarse busy %g differs from fine busy %g", resCoarse.TotalBusy, resFine.TotalBusy)
	}
}

// TestDVFSPolicy: frequency scaling preserves the work (more wall-busy at
// lower f), keeps all cores on, and records the f-weighted series the
// power model needs.
func TestDVFSPolicy(t *testing.T) {
	p := uplink.UserParams{PRB: 40, Layers: 1, Mod: modulation.QPSK}
	base := testConfig()
	resBase, err := Run(base, steady(t, p), 100)
	if err != nil {
		t.Fatal(err)
	}
	dv := testConfig()
	dv.Policy = DVFS
	dv.ActiveCores = func(int64, []uplink.UserParams) int { return 31 } // f = 0.5
	resDV, err := Run(dv, steady(t, p), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Same cycles at half clock: twice the wall-busy time.
	ratio := resDV.TotalBusy / resBase.TotalBusy
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("wall busy ratio at f=0.5 is %.2f, want ~2", ratio)
	}
	// All cores stay on.
	for s, a := range resDV.ActiveCores {
		if a != dv.Workers {
			t.Fatalf("subframe %d: %d active cores under DVFS", s, a)
		}
	}
	// Frequency recorded and floored.
	for s, f := range resDV.Freq {
		if f != 0.5 {
			t.Fatalf("subframe %d: f = %g, want 0.5", s, f)
		}
	}
	// f^3-weighted busy = wall busy * 0.125.
	var busy, busyF3 float64
	for i := range resDV.Busy {
		busy += resDV.Busy[i]
		busyF3 += resDV.BusyF3[i]
	}
	if math.Abs(busyF3-busy*0.125) > 1e-6*busy {
		t.Errorf("BusyF3 = %g, want %g", busyF3, busy*0.125)
	}
}

func TestDVFSFreqFloor(t *testing.T) {
	dv := testConfig()
	dv.Policy = DVFS
	dv.FreqFloor = 0.3
	dv.ActiveCores = func(int64, []uplink.UserParams) int { return 2 } // would be f=0.03
	res, err := Run(dv, steady(t, uplink.UserParams{PRB: 2, Layers: 1, Mod: modulation.QPSK}), 20)
	if err != nil {
		t.Fatal(err)
	}
	for s, f := range res.Freq {
		if f != 0.3 {
			t.Fatalf("subframe %d: f = %g, want floor 0.3", s, f)
		}
	}
}

// TestLatencyHistogram: every job lands in the histogram, percentiles are
// ordered, and shrinking capacity shifts the distribution right.
func TestLatencyHistogram(t *testing.T) {
	p := uplink.UserParams{PRB: 60, Layers: 2, Mod: modulation.QAM16}
	res, err := Run(testConfig(), steady(t, p), 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalJobs != 200 {
		t.Fatalf("TotalJobs = %d, want 200", res.TotalJobs)
	}
	var hsum int64
	for _, c := range res.LatencyHist {
		hsum += c
	}
	if hsum != res.TotalJobs {
		t.Fatalf("histogram holds %d jobs, want %d", hsum, res.TotalJobs)
	}
	p50 := res.LatencyPercentile(0.5)
	p95 := res.LatencyPercentile(0.95)
	p99 := res.LatencyPercentile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("percentiles not ordered: %g %g %g", p50, p95, p99)
	}
	if m := res.MeanLatency(); math.IsNaN(m) || m <= 0 {
		t.Errorf("mean latency %g", m)
	}

	// Throttle below the workload's ~6-core demand: queueing must push the
	// tail right. (At 8+ cores latency is critical-path-bound — the serial
	// backend — and indifferent to core count.)
	cfg := testConfig()
	cfg.Policy = NAP
	cfg.ActiveCores = func(int64, []uplink.UserParams) int { return 4 }
	slow, err := Run(cfg, steady(t, p), 200)
	if err != nil {
		t.Fatal(err)
	}
	if slow.LatencyPercentile(0.95) <= p95 {
		t.Errorf("4-core P95 %g not above 62-core P95 %g", slow.LatencyPercentile(0.95), p95)
	}
}

func TestLatencyEmptyResult(t *testing.T) {
	var r Result
	if !math.IsNaN(r.LatencyPercentile(0.5)) || !math.IsNaN(r.MeanLatency()) {
		t.Error("empty result latency not NaN")
	}
}

// TestShortestFirstImprovesMeanLatency: SJF admission must reduce mean
// latency on a mixed workload without changing the work done.
func TestShortestFirstImprovesMeanLatency(t *testing.T) {
	// Heterogeneous subframes: one heavy user then several light ones, in
	// adversarial (heavy-first) order.
	var sfs [][]uplink.UserParams
	for i := 0; i < 150; i++ {
		sfs = append(sfs, []uplink.UserParams{
			{ID: 0, PRB: 120, Layers: 4, Mod: modulation.QAM64},
			{ID: 1, PRB: 4, Layers: 1, Mod: modulation.QPSK},
			{ID: 2, PRB: 4, Layers: 1, Mod: modulation.QPSK},
			{ID: 3, PRB: 4, Layers: 1, Mod: modulation.QPSK},
		})
	}
	run := func(sjf bool) *Result {
		trace := &params.Trace{Subframes: sfs}
		cfg := testConfig()
		cfg.ShortestFirst = sjf
		// Queueing discipline only matters under contention: throttle the
		// pool so the heavy user's tasks can crowd out the light users.
		cfg.Policy = NAP
		cfg.ActiveCores = func(int64, []uplink.UserParams) int { return 10 }
		res, err := Run(cfg, trace, len(sfs))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fifo, sjf := run(false), run(true)
	if math.Abs(fifo.TotalBusy-sjf.TotalBusy) > 1e-6*fifo.TotalBusy {
		t.Errorf("SJF changed the work: %g vs %g", sjf.TotalBusy, fifo.TotalBusy)
	}
	if sjf.MeanLatency() >= fifo.MeanLatency() {
		t.Errorf("SJF mean latency %g not below FIFO %g", sjf.MeanLatency(), fifo.MeanLatency())
	}
}
