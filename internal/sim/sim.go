// Package sim is the TILEPro64 substitute: a deterministic, event-driven
// discrete-event simulator of the benchmark running on 62 worker cores.
//
// The paper's power study needs three things from its hardware platform:
// per-window activity (useful cycles / total cycle slots, Eqs. 1-2), the
// per-core occupancy timeline under each deactivation policy, and enough
// fidelity in task scheduling that workload tracks the input parameters.
// This simulator provides exactly those. Tasks carry cycle costs from
// internal/cost (mirroring the real kernels' op counts); scheduling is
// work-conserving: a ready task starts the moment any enabled core is
// free, which is the behaviour converged work stealing approaches (the
// paper's own references characterise work stealing as near-optimal load
// balancing). Steal-protocol traffic and cache contention are folded into
// the calibrated per-task overhead; DESIGN.md documents the substitution.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"ltephy/internal/cost"
	"ltephy/internal/obs"
	"ltephy/internal/obs/kpi"
	"ltephy/internal/params"
	"ltephy/internal/uplink"
)

// Policy selects the core-deactivation strategy (paper Section VI-B).
type Policy int

const (
	// NONAP: all worker cores always active; idle cores spin looking for
	// work.
	NONAP Policy = iota
	// IDLE: reactive — a core that finds no work naps, waking periodically
	// to look again.
	IDLE
	// NAP: proactive — cores outside the estimated active set (Eq. 5) are
	// deactivated; cores inside it spin when momentarily idle.
	NAP
	// NAPIDLE: both (the paper's NAP+IDLE).
	NAPIDLE
	// DVFS is the paper's stated future work (Section VII): instead of
	// deactivating cores, all cores run and the clock/voltage scales with
	// the estimated workload. Execution stretches by 1/f while dynamic
	// power drops cubically (P ~ f*V^2 with V ~ f); idle cores nap
	// reactively.
	DVFS
)

// String returns the paper's name for the policy.
func (p Policy) String() string {
	switch p {
	case NONAP:
		return "NONAP"
	case IDLE:
		return "IDLE"
	case NAP:
		return "NAP"
	case NAPIDLE:
		return "NAP+IDLE"
	case DVFS:
		return "DVFS"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// UsesEstimator reports whether the policy needs per-subframe active-core
// estimates (DVFS converts the same estimate into a frequency).
func (p Policy) UsesEstimator() bool { return p == NAP || p == NAPIDLE || p == DVFS }

// UsesIdleNap reports whether momentarily idle active cores nap (reactive
// deactivation).
func (p Policy) UsesIdleNap() bool { return p == IDLE || p == NAPIDLE || p == DVFS }

// ScalesFrequency reports whether the policy runs cores below nominal
// clock.
func (p Policy) ScalesFrequency() bool { return p == DVFS }

// DefaultWorkers is the paper's worker-core count: 64 tiles minus one for
// drivers and one for the maintenance thread.
const DefaultWorkers = 62

// DeadlinePeriods is how many dispatch periods a subframe may remain in
// flight before it is counted late. Real base stations keep two to three
// subframes concurrent (paper Section VI); at this benchmark's maximum
// load the serial per-user tail pipelines much deeper, so LateSubframes is
// a latency diagnostic, not a correctness criterion.
const DeadlinePeriods = 3

// Config parameterises a simulation run.
type Config struct {
	Workers  int
	Antennas int
	Cost     cost.Model
	// PeriodSec is the dispatch period DELTA (5 ms in the paper's
	// TILEPro64 evaluation: 68,000 subframes over 340 s).
	PeriodSec float64
	// WindowSec is the measurement window (1 s for Fig. 12 activity
	// curves, 100 ms for the paper's RMS power samples).
	WindowSec float64
	Policy    Policy
	// ActiveCores returns the Eq. 5 active-core count for a subframe; it
	// is consulted only for NAP/NAPIDLE. nil means all workers.
	ActiveCores func(seq int64, users []uplink.UserParams) int
	// WakeLatencyCycles delays the start of a task picked up by a worker
	// that was idle-napping (reactive policies pay for their periodic wake
	// checks).
	WakeLatencyCycles float64
	// UserLevelOnly disables intra-user task parallelism: each stage
	// becomes a single task, so a user is processed by (effectively) one
	// core at a time — the paper's Fig. 4 "parallelize across users only"
	// baseline, used by the ablation benchmarks.
	UserLevelOnly bool
	// FreqFloor is the lowest DVFS frequency as a fraction of nominal
	// (voltage floors prevent arbitrarily slow clocks). Used only by the
	// DVFS policy; defaults to 0.4 when zero.
	FreqFloor float64
	// ShortestFirst admits each subframe's users to the global queue in
	// ascending estimated-cost order instead of scheduler order — the
	// workload estimate improving latency rather than power (SJF minimises
	// mean waiting time). Extension studied by TableQueueing.
	ShortestFirst bool
	// Trace, when non-nil, receives a span event per simulated task on the
	// simulator's virtual timeline (virtual nanoseconds at the nominal
	// clock), attributed to an explicit core — the paper's Fig. 4/5
	// per-core occupancy timeline, exportable as a Chrome trace. Tasks are
	// placed on the lowest-numbered free core; the placement is purely an
	// identity assignment and never changes scheduling decisions, so
	// results are bit-identical with tracing on or off.
	Trace *obs.EventRing
	// EstObs, when non-nil together with EstimateActivity, receives each
	// subframe's (estimated, measured) activity pair, where measured is
	// the Eq. 2 activity of that subframe's dispatch period — the live
	// Fig. 12 estimator-error feed.
	EstObs *obs.EstimatorTracker
	// EstimateActivity supplies the Eq. 4 activity estimate for a
	// subframe (e.g. Calibration.EstimateActivityFunc); consulted only
	// when EstObs is set.
	EstimateActivity func(seq int64, users []uplink.UserParams) float64
	// KPI, when non-nil, receives one block outcome per simulated user
	// job: an on-time completion counts as a delivered CRC pass (bits =
	// the user's channel-bit capacity for the subframe), a deadline miss
	// as Skipped (LTE semantics: a late subframe is useless). Recording
	// is decision-free, so simulation results are bit-identical with KPI
	// on or off.
	KPI *kpi.Registry
	// KPICell is the cell index KPI outcomes are recorded under.
	KPICell uint16
}

// DefaultConfig returns the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		Workers:           DefaultWorkers,
		Antennas:          uplink.DefaultAntennas,
		Cost:              cost.Default(),
		PeriodSec:         0.005,
		WindowSec:         1.0,
		Policy:            NONAP,
		WakeLatencyCycles: 35000, // ~50 us at 700 MHz
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Workers < 1:
		return fmt.Errorf("sim: %d workers", c.Workers)
	case c.Antennas < 1:
		return fmt.Errorf("sim: %d antennas", c.Antennas)
	case c.PeriodSec <= 0 || c.WindowSec <= 0:
		return fmt.Errorf("sim: non-positive period (%g) or window (%g)", c.PeriodSec, c.WindowSec)
	case c.Policy.UsesEstimator() && c.ActiveCores == nil:
		return fmt.Errorf("sim: policy %v requires an ActiveCores estimator", c.Policy)
	}
	return c.Cost.Validate()
}

// Result is the simulation output.
type Result struct {
	Cfg       Config
	Subframes int
	// WindowCycles is the length of one measurement window in cycles.
	WindowCycles float64
	// Busy[i] is the total useful cycles executed during window i.
	Busy []float64
	// ActiveCap[i] is the total cycle capacity of enabled (non-deep-
	// napped) cores during window i; Workers*WindowCycles for NONAP/IDLE.
	ActiveCap []float64
	// ActiveCores[s] is the enabled-core count during subframe s.
	ActiveCores []int
	// TotalBusy is the total useful cycles across the whole run.
	TotalBusy float64
	// MaxLagCycles is the worst completion overrun past the
	// DeadlinePeriods deadline (0 when every subframe met it).
	MaxLagCycles float64
	// LateSubframes counts user jobs that missed the deadline.
	LateSubframes int
	// DVFS-only series: BusyF3[i] is busy wall time weighted by f^3 (the
	// dynamic-power weight of scaled execution), CapF3[i] the same weight
	// applied to full-pool capacity, and Freq[s] the per-subframe clock
	// fraction. Nil under other policies.
	BusyF3 []float64
	CapF3  []float64
	Freq   []float64
	// LatencyHist[b] counts user jobs whose dispatch-to-completion latency
	// fell in [b, b+1) dispatch periods; the last bucket collects overflow.
	LatencyHist [LatencyBuckets]int64
	// TotalJobs counts completed user jobs.
	TotalJobs int64
}

// LatencyBuckets sizes the latency histogram (in dispatch periods).
const LatencyBuckets = 256

// LatencyPercentile returns the q-th percentile (0..1) of per-job latency
// in dispatch periods (upper bucket bound; NaN when no jobs completed).
func (r *Result) LatencyPercentile(q float64) float64 {
	if r.TotalJobs == 0 {
		return math.NaN()
	}
	target := int64(math.Ceil(q * float64(r.TotalJobs)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, c := range r.LatencyHist {
		cum += c
		if cum >= target {
			return float64(b + 1)
		}
	}
	return float64(LatencyBuckets)
}

// MeanLatency returns the mean per-job latency in dispatch periods,
// using bucket midpoints.
func (r *Result) MeanLatency() float64 {
	if r.TotalJobs == 0 {
		return math.NaN()
	}
	var sum float64
	for b, c := range r.LatencyHist {
		sum += (float64(b) + 0.5) * float64(c)
	}
	return sum / float64(r.TotalJobs)
}

// Activity returns the Eq. 2 activity of window i: useful cycles over the
// full worker-count capacity (the paper measures against all 62 worker
// cores regardless of deactivation).
func (r *Result) Activity(i int) float64 {
	return r.Busy[i] / (float64(r.Cfg.Workers) * r.WindowCycles)
}

// Windows returns the number of complete measurement windows.
func (r *Result) Windows() int { return len(r.Busy) }

// MeanActivity averages Activity over all windows.
func (r *Result) MeanActivity() float64 {
	if len(r.Busy) == 0 {
		return 0
	}
	var s float64
	for i := range r.Busy {
		s += r.Activity(i)
	}
	return s / float64(len(r.Busy))
}

// jobState tracks one user's progress through the four stages.
type jobState struct {
	cfg      *Config
	n        int // subcarriers
	p        uplink.UserParams
	seq      int64 // subframe sequence, for telemetry attribution
	stage    int   // next stage to release (0..4), 5 = done
	pending  int   // unfinished tasks of the current stage
	deadline float64
}

// simStageClass maps the simulator's stage index (0 = user pickup and
// setup, 1..4 = receiver pipeline) to the obs stage class.
var simStageClass = [5]uint8{
	obs.StageInit, obs.StageChanEst, obs.StageWeights, obs.StageCombine, obs.StageBackend,
}

// stageTasks returns the task count and per-task cycles of stage st.
func (j *jobState) stageTasks(st int) (count int, cycles float64) {
	c := j.cfg.Cost
	switch st {
	case 0: // user-thread pickup and job setup
		count, cycles = 1, c.UserOverhead-c.TaskOverhead
	case 1:
		count, cycles = j.cfg.Antennas*j.p.Layers, c.ChanEstTask(j.n)
	case 2:
		count, cycles = 1, c.WeightsTask(j.n, j.cfg.Antennas, j.p.Layers)
	case 3:
		count, cycles = uplink.DataSymbolsPerSubframe*j.p.Layers, c.DataTask(j.n, j.cfg.Antennas)
	case 4:
		count, cycles = 1, c.BackendTask(j.n, j.p.Layers, j.p.Mod)
	default:
		panic("sim: stage out of range")
	}
	if j.cfg.UserLevelOnly && count > 1 {
		// Fold the stage into one serial task (same total work, fewer
		// scheduling overheads, no intra-user parallelism).
		cycles = float64(count)*(cycles+c.TaskOverhead) - c.TaskOverhead
		count = 1
	}
	return count, cycles
}

// event is a task completion.
type event struct {
	time  float64
	seq   int64 // deterministic tie-break
	job   *jobState
	start float64 // task start time, for trace spans
	core  int16   // assigned core when tracing, else -1
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() float64 { return h[0].time }

// readyTask is a task waiting for a free core.
type readyTask struct {
	cycles float64
	job    *jobState
}

// Run simulates n subframes drawn from the model.
func Run(cfg Config, m params.Model, n int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("sim: subframe count %d", n)
	}
	period := cfg.Cost.PeriodCycles(cfg.PeriodSec)
	res := &Result{
		Cfg:          cfg,
		Subframes:    n,
		WindowCycles: cfg.Cost.PeriodCycles(cfg.WindowSec),
		ActiveCores:  make([]int, n),
	}

	// addTo distributes weight*(overlap) across the windows the interval
	// [start, end) touches.
	addTo := func(series *[]float64, start, end, weight float64) {
		for start < end {
			w := int(start / res.WindowCycles)
			for w >= len(*series) {
				*series = append(*series, 0)
			}
			bound := float64(w+1) * res.WindowCycles
			top := math.Min(end, bound)
			(*series)[w] += (top - start) * weight
			start = top
		}
	}

	var (
		completions eventHeap
		ready       []readyTask // FIFO
		readyHead   int
		busyCores   = 0
		activeCores = cfg.Workers
		eventSeq    int64
		now         float64
		curFreq     = 1.0
	)
	freqFloor := cfg.FreqFloor
	if freqFloor <= 0 || freqFloor > 1 {
		freqFloor = 0.4
	}
	if cfg.Policy.ScalesFrequency() {
		res.BusyF3 = []float64{}
		res.CapF3 = []float64{}
		res.Freq = make([]float64, n)
	}

	// Telemetry (all optional, decision-free: the simulated schedule is
	// identical with or without it).
	cyc2ns := 1e9 / cfg.Cost.PeriodCycles(1.0) // virtual ns per cycle
	var coreBusy []bool
	if cfg.Trace != nil {
		coreBusy = make([]bool, cfg.Workers)
	}
	takeCore := func() int16 {
		for i := range coreBusy {
			if !coreBusy[i] {
				coreBusy[i] = true
				return int16(i)
			}
		}
		return -1
	}
	estObsOn := cfg.EstObs != nil && cfg.EstimateActivity != nil
	var (
		periodBusy []float64 // busy cycles per dispatch period
		estSeries  []float64 // Eq. 4 estimate per subframe
	)
	if estObsOn {
		estSeries = make([]float64, n)
	}
	addToPeriod := func(start, end float64) {
		for start < end {
			w := int(start / period)
			for w >= len(periodBusy) {
				periodBusy = append(periodBusy, 0)
			}
			bound := float64(w+1) * period
			top := math.Min(end, bound)
			periodBusy[w] += top - start
			start = top
		}
	}

	startTask := func(t readyTask, latency float64) {
		start := now + latency
		// Under DVFS the same cycles take 1/f of the wall clock longer.
		end := start + (t.cycles+cfg.Cost.TaskOverhead)/curFreq
		addTo(&res.Busy, start, end, 1)
		if res.BusyF3 != nil {
			addTo(&res.BusyF3, start, end, curFreq*curFreq*curFreq)
		}
		if estObsOn {
			addToPeriod(start, end)
		}
		res.TotalBusy += end - start
		busyCores++
		eventSeq++
		core := int16(-1)
		if coreBusy != nil {
			core = takeCore()
		}
		heap.Push(&completions, event{time: end, seq: eventSeq, job: t.job, start: start, core: core})
	}

	// fill starts as many ready tasks as free enabled cores allow.
	// latency > 0 models a napping core's periodic wake check before it
	// notices the new work (reactive policies at dispatch time); a core
	// that just completed a task picks up the next one immediately.
	fill := func(latency float64) {
		for readyHead < len(ready) && busyCores < activeCores {
			startTask(ready[readyHead], latency)
			ready[readyHead] = readyTask{}
			readyHead++
		}
		if readyHead == len(ready) {
			ready = ready[:0]
			readyHead = 0
		}
	}

	releaseStage := func(j *jobState) {
		count, cycles := j.stageTasks(j.stage)
		j.pending = count
		for i := 0; i < count; i++ {
			ready = append(ready, readyTask{cycles: cycles, job: j})
		}
	}

	// complete handles one task completion at `now`.
	complete := func(e event) {
		busyCores--
		j := e.job
		if e.core >= 0 {
			coreBusy[e.core] = false
			// j.stage is still the completing task's stage: it advances only
			// after the stage's last task, below.
			cfg.Trace.Record(obs.Event{
				Start: int64(e.start * cyc2ns),
				End:   int64(e.time * cyc2ns),
				Seq:   j.seq, User: int32(j.p.ID), Task: -1,
				Worker: e.core, Kind: obs.KindStage, Stage: simStageClass[j.stage],
			})
		}
		j.pending--
		if j.pending > 0 {
			return
		}
		j.stage++
		if j.stage <= 4 {
			releaseStage(j)
			return
		}
		// Job finished.
		late := false
		if lag := now - j.deadline; lag > 0 {
			late = true
			res.LateSubframes++
			if lag > res.MaxLagCycles {
				res.MaxLagCycles = lag
			}
		}
		if cfg.KPI != nil {
			if late {
				cfg.KPI.RecordSkipped(cfg.KPICell, j.seq, j.p.ID)
			} else {
				bits := uplink.DataSymbolsPerSubframe * j.n * j.p.Layers * j.p.Mod.Bits()
				cfg.KPI.RecordResult(cfg.KPICell, j.seq, j.p.ID, true, bits)
			}
		}
		res.TotalJobs++
		lat := (now - (j.deadline - DeadlinePeriods*period)) / period
		b := int(lat)
		if b < 0 {
			b = 0
		}
		if b >= LatencyBuckets {
			b = LatencyBuckets - 1
		}
		res.LatencyHist[b]++
	}

	for s := 0; s < n; s++ {
		tDispatch := float64(s) * period
		// Drain events that occur before this dispatch.
		for len(completions) > 0 && completions.peek() <= tDispatch {
			e := heap.Pop(&completions).(event)
			now = e.time
			complete(e)
			fill(0)
		}
		now = tDispatch
		users := m.Next()
		if estObsOn {
			estSeries[s] = cfg.EstimateActivity(int64(s), users)
		}
		if cfg.ShortestFirst && len(users) > 1 {
			users = append([]uplink.UserParams(nil), users...)
			sort.SliceStable(users, func(i, j int) bool {
				return cfg.Cost.UserCycles(users[i], cfg.Antennas) <
					cfg.Cost.UserCycles(users[j], cfg.Antennas)
			})
		}

		active := cfg.Workers
		if cfg.Policy.UsesEstimator() {
			active = cfg.ActiveCores(int64(s), users)
			if active < 1 {
				active = 1
			}
			if active > cfg.Workers {
				active = cfg.Workers
			}
		}
		if cfg.Policy.ScalesFrequency() {
			// The Eq. 5 estimate becomes a clock fraction instead of a
			// core mask: capacity tracks demand via frequency.
			curFreq = float64(active) / float64(cfg.Workers)
			if curFreq < freqFloor {
				curFreq = freqFloor
			}
			res.Freq[s] = curFreq
			active = cfg.Workers // all cores stay on
		}
		res.ActiveCores[s] = active
		activeCores = active
		addTo(&res.ActiveCap, tDispatch, tDispatch+period, float64(active))
		if res.CapF3 != nil {
			addTo(&res.CapF3, tDispatch, tDispatch+period,
				float64(cfg.Workers)*curFreq*curFreq*curFreq)
		}

		for _, p := range users {
			j := &jobState{cfg: &cfg, n: p.Subcarriers(), p: p, seq: int64(s),
				deadline: tDispatch + DeadlinePeriods*period}
			releaseStage(j)
		}
		// Dispatch wakes idle cores; under reactive policies they notice
		// the new work only at their next periodic check.
		if cfg.Policy.UsesIdleNap() {
			fill(cfg.WakeLatencyCycles)
		} else {
			fill(0)
		}
	}

	// Drain the remaining events.
	for len(completions) > 0 {
		e := heap.Pop(&completions).(event)
		now = e.time
		complete(e)
		fill(0)
	}

	// Pair each subframe's estimate with the activity measured over its
	// dispatch period (every task that can touch a period has completed by
	// now, so the per-period busy series is final).
	if estObsOn {
		for s := 0; s < n && s < len(periodBusy); s++ {
			cfg.EstObs.Observe(estSeries[s],
				periodBusy[s]/(float64(cfg.Workers)*period))
		}
	}

	// Trim to complete windows only, so edge windows do not skew averages.
	full := int(float64(n) * period / res.WindowCycles)
	trim := func(s []float64) []float64 {
		if s != nil && full < len(s) {
			return s[:full]
		}
		return s
	}
	res.Busy = trim(res.Busy)
	res.ActiveCap = trim(res.ActiveCap)
	res.BusyF3 = trim(res.BusyF3)
	res.CapF3 = trim(res.CapF3)
	for len(res.ActiveCap) < len(res.Busy) {
		res.ActiveCap = append(res.ActiveCap, 0)
	}
	if res.BusyF3 != nil {
		for len(res.BusyF3) < len(res.Busy) {
			res.BusyF3 = append(res.BusyF3, 0)
		}
		for len(res.CapF3) < len(res.Busy) {
			res.CapF3 = append(res.CapF3, 0)
		}
	}
	return res, nil
}

// steadyWarmupSec is how long SteadyActivity lets the pipeline fill before
// measuring. The per-user backend is serial, so at maximum load several
// tens of subframes are in flight in steady state (the paper's 10-second
// steady runs per configuration serve the same purpose).
const steadyWarmupSec = 2.0

// SteadyActivity measures the Eq. 2 activity of a fixed configuration: the
// calibration primitive of Section VI-A ("the parameter model creates a
// steady state with the same user parameter configuration"). It simulates
// a warmup period followed by the requested number of measurement windows
// and averages those windows' activity.
func SteadyActivity(cfg Config, p uplink.UserParams, windows int) (float64, error) {
	if windows < 1 {
		windows = 1
	}
	m, err := params.NewSteady(p)
	if err != nil {
		return 0, err
	}
	warmup := int(steadyWarmupSec / cfg.PeriodSec)
	perWindow := int(cfg.WindowSec / cfg.PeriodSec)
	if perWindow < 1 {
		return 0, fmt.Errorf("sim: window %gs shorter than period %gs", cfg.WindowSec, cfg.PeriodSec)
	}
	n := warmup + windows*perWindow
	res, err := Run(cfg, m, n)
	if err != nil {
		return 0, err
	}
	first := warmup / perWindow
	if first >= res.Windows() {
		return 0, fmt.Errorf("sim: steady run produced no post-warmup windows")
	}
	var sum float64
	count := 0
	for i := first; i < res.Windows(); i++ {
		sum += res.Activity(i)
		count++
	}
	return sum / float64(count), nil
}
