package sim

import (
	"math"
	"reflect"
	"testing"

	"ltephy/internal/obs"
	"ltephy/internal/params"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/uplink"
)

func traceTestModel(t *testing.T) params.Model {
	t.Helper()
	m, err := params.NewSteady(uplink.UserParams{PRB: 20, Layers: 2, Mod: modulation.QAM16})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSimTraceCapture: a traced run emits well-formed per-core spans on
// the virtual timeline and does not change the simulated schedule.
func TestSimTraceCapture(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 8
	const n = 40

	plain, err := Run(cfg, traceTestModel(t), n)
	if err != nil {
		t.Fatal(err)
	}

	ring := obs.NewEventRing(1 << 16)
	cfg.Trace = ring
	traced, err := Run(cfg, traceTestModel(t), n)
	if err != nil {
		t.Fatal(err)
	}

	// Tracing must be behaviour-free: identical results either way.
	if plain.TotalBusy != traced.TotalBusy || plain.TotalJobs != traced.TotalJobs ||
		!reflect.DeepEqual(plain.Busy, traced.Busy) {
		t.Error("tracing changed the simulated schedule")
	}

	events := ring.Snapshot(nil)
	if len(events) == 0 {
		t.Fatal("no events captured")
	}
	// Every job contributes 1 init + antennas*layers chanest + 1 weights +
	// symbols*layers data + 1 backend tasks.
	perJob := 1 + cfg.Antennas*2 + 1 + uplink.DataSymbolsPerSubframe*2 + 1
	if want := int(traced.TotalJobs) * perJob; len(events) != want {
		t.Errorf("captured %d events, want %d (%d jobs x %d tasks)", len(events), want, traced.TotalJobs, perJob)
	}
	seenStages := map[uint8]bool{}
	for _, e := range events {
		if e.Kind != obs.KindStage {
			t.Fatalf("non-stage event %+v in simulator trace", e)
		}
		if e.Worker < 0 || int(e.Worker) >= cfg.Workers {
			t.Fatalf("event on core %d of %d", e.Worker, cfg.Workers)
		}
		if e.End <= e.Start {
			t.Fatalf("empty span %+v", e)
		}
		seenStages[e.Stage] = true
	}
	for s := uint8(0); s < obs.NumStages; s++ {
		if !seenStages[s] {
			t.Errorf("no spans for stage %q", obs.StageNames[s])
		}
	}

	// Determinism: a second traced run captures the identical event list.
	ring2 := obs.NewEventRing(1 << 16)
	cfg.Trace = ring2
	if _, err := Run(cfg, traceTestModel(t), n); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, ring2.Snapshot(nil)) {
		t.Error("trace differs between identical runs")
	}
}

// TestSimEstimatorObs: the (estimate, measured) pairing feeds the
// tracker once per subframe, and a perfect estimator (feeding back the
// period's true utilisation shape) keeps the error bounded by pipeline
// spill across period boundaries.
func TestSimEstimatorObs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 8
	var tr obs.EstimatorTracker
	cfg.EstObs = &tr
	// A deliberately biased estimator: constant 0.5.
	cfg.EstimateActivity = func(_ int64, _ []uplink.UserParams) float64 { return 0.5 }
	const n = 200
	if _, err := Run(cfg, traceTestModel(t), n); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Count != n {
		t.Fatalf("paired %d samples, want %d", st.Count, n)
	}
	if math.IsNaN(st.AvgAbsErr) || st.AvgAbsErr <= 0 {
		t.Errorf("AvgAbsErr = %g, want positive (estimator is deliberately wrong)", st.AvgAbsErr)
	}
	if st.MeanMeasured <= 0 || st.MeanMeasured > 1 {
		t.Errorf("MeanMeasured = %g, want in (0, 1]", st.MeanMeasured)
	}
	// Bias should reflect 0.5 - mean measured.
	wantBias := 0.5 - st.MeanMeasured
	if math.Abs(st.Bias-wantBias) > 1e-9 {
		t.Errorf("Bias = %g, want %g", st.Bias, wantBias)
	}
}
