// Package amc implements adaptive modulation and coding: selecting the
// modulation scheme and code rate a user's channel quality supports. In a
// real eNodeB the scheduler makes this choice from CQI reports; the
// paper's parameter model instead randomises modulation directly (Fig. 10).
// This package is the realistic alternative — an extension over the paper
// (DESIGN.md §5) that pairs with the rate-matched TurboFull receiver.
//
// The MCS ladder and switching thresholds follow the usual LTE shape
// (QPSK 1/3 ... 64-QAM 0.85, roughly 2 dB per step); thresholds are
// validated empirically by this package's tests against the repository's
// own receiver, not taken from the standard's (proprietary) vendor tables.
package amc

import (
	"fmt"
	"sort"

	"ltephy/internal/phy/modulation"
)

// MCS is one modulation-and-coding-scheme rung.
type MCS struct {
	Index int
	Mod   modulation.Scheme
	// Rate is the code rate the rate matcher targets.
	Rate float64
	// MinSNRdB is the lowest per-subcarrier SNR at which this rung decodes
	// reliably on the reference receiver (4 antennas, 1-2 layers).
	MinSNRdB float64
}

// SpectralEfficiency returns information bits per modulated symbol.
func (m MCS) SpectralEfficiency() float64 {
	return float64(m.Mod.Bits()) * m.Rate
}

func (m MCS) String() string {
	return fmt.Sprintf("MCS%d(%v r=%.2f)", m.Index, m.Mod, m.Rate)
}

// Table is the MCS ladder in increasing spectral efficiency.
var Table = []MCS{
	{0, modulation.QPSK, 0.20, -2},
	{1, modulation.QPSK, 1.0 / 3, 0},
	{2, modulation.QPSK, 0.50, 3},
	{3, modulation.QPSK, 2.0 / 3, 6},
	{4, modulation.QAM16, 0.50, 9},
	{5, modulation.QAM16, 2.0 / 3, 12},
	{6, modulation.QAM16, 0.75, 14},
	{7, modulation.QAM64, 2.0 / 3, 17},
	{8, modulation.QAM64, 0.75, 19},
	{9, modulation.QAM64, 0.85, 22},
}

// Select returns the most efficient MCS whose threshold the SNR clears,
// with the given back-off margin in dB (larger margins trade throughput
// for robustness). SNRs below every threshold get the most robust rung.
func Select(snrdB, marginDB float64) MCS {
	eff := snrdB - marginDB
	best := Table[0]
	for _, m := range Table {
		if eff >= m.MinSNRdB {
			best = m
		}
	}
	return best
}

// Validate checks the table's invariants (exercised by init and tests).
func Validate() error {
	if len(Table) == 0 {
		return fmt.Errorf("amc: empty table")
	}
	if !sort.SliceIsSorted(Table, func(i, j int) bool {
		return Table[i].SpectralEfficiency() < Table[j].SpectralEfficiency()
	}) {
		return fmt.Errorf("amc: table not sorted by spectral efficiency")
	}
	for i, m := range Table {
		if m.Index != i {
			return fmt.Errorf("amc: rung %d has index %d", i, m.Index)
		}
		if m.Rate <= 0 || m.Rate >= 1 {
			return fmt.Errorf("amc: rung %d rate %g", i, m.Rate)
		}
		if i > 0 && m.MinSNRdB <= Table[i-1].MinSNRdB {
			return fmt.Errorf("amc: thresholds not increasing at rung %d", i)
		}
	}
	return nil
}

func init() {
	if err := Validate(); err != nil {
		panic(err)
	}
}
