package amc

import (
	"testing"

	"ltephy/internal/rng"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

func TestTableInvariants(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
	// Efficiency spans a realistic range.
	lo := Table[0].SpectralEfficiency()
	hi := Table[len(Table)-1].SpectralEfficiency()
	if lo > 0.5 || hi < 4.5 {
		t.Errorf("efficiency range [%.2f, %.2f] too narrow", lo, hi)
	}
}

func TestSelectMonotone(t *testing.T) {
	prev := -1.0
	for snr := -6.0; snr <= 30; snr += 0.5 {
		m := Select(snr, 0)
		if m.SpectralEfficiency() < prev {
			t.Fatalf("efficiency decreased at %g dB", snr)
		}
		prev = m.SpectralEfficiency()
	}
	// Extremes.
	if Select(-20, 0).Index != 0 {
		t.Error("very low SNR did not pick the most robust rung")
	}
	if Select(40, 0).Index != len(Table)-1 {
		t.Error("very high SNR did not pick the top rung")
	}
	// Margin shifts selection down.
	if Select(10, 5).SpectralEfficiency() > Select(10, 0).SpectralEfficiency() {
		t.Error("margin increased aggressiveness")
	}
}

// TestThresholdsDecodeOnReferenceReceiver is the empirical validation: at
// each rung's threshold SNR (plus a small implementation margin), the
// repository's own rate-matched receiver must decode that MCS cleanly.
func TestThresholdsDecodeOnReferenceReceiver(t *testing.T) {
	for _, m := range Table {
		cfg := tx.DefaultConfig()
		cfg.Receiver.Turbo = uplink.TurboFull
		cfg.Receiver.CodeRate = m.Rate
		cfg.SNRdB = m.MinSNRdB + 2 // operating margin above the switch point
		p := uplink.UserParams{ID: 1, PRB: 6, Layers: 1, Mod: m.Mod}
		okCount := 0
		const trials = 3
		for seed := uint64(0); seed < trials; seed++ {
			u, err := tx.Generate(cfg, p, rng.New(100+seed))
			if err != nil {
				t.Fatal(err)
			}
			res, err := uplink.Process(cfg.Receiver, u)
			if err != nil {
				t.Fatal(err)
			}
			if res.CRCOK {
				okCount++
			}
		}
		if okCount < trials {
			t.Errorf("%v: only %d/%d decodes at %g dB (threshold %g + 2 margin)",
				m, okCount, trials, cfg.SNRdB, m.MinSNRdB)
		}
	}
}

// TestLadderIsUseful: the top rung must fail where the bottom succeeds —
// otherwise the ladder adds nothing.
func TestLadderIsUseful(t *testing.T) {
	const snr = 2.0
	run := func(m MCS) bool {
		cfg := tx.DefaultConfig()
		cfg.Receiver.Turbo = uplink.TurboFull
		cfg.Receiver.CodeRate = m.Rate
		cfg.SNRdB = snr
		p := uplink.UserParams{ID: 1, PRB: 6, Layers: 1, Mod: m.Mod}
		u, err := tx.Generate(cfg, p, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := uplink.Process(cfg.Receiver, u)
		if err != nil {
			t.Fatal(err)
		}
		return res.CRCOK
	}
	if !run(Table[1]) {
		t.Error("robust rung failed at 2 dB")
	}
	if run(Table[len(Table)-1]) {
		t.Error("64QAM r=0.85 decoded at 2 dB; the simulated channel is too kind")
	}
}

func BenchmarkSelect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Select(float64(i%40)-5, 1)
	}
}
