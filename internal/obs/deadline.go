package obs

import "sync/atomic"

// deadlineSlots sizes the seq-indexed dispatch-time table. Slots are
// reused modulo the table size; real deployments keep a handful of
// subframes in flight (the paper: two to three), so 1024 in-flight
// sequence numbers is orders of magnitude of headroom before a
// collision could misattribute a dispatch time.
const deadlineSlots = 1024

// DeadlineTracker accounts per-subframe completion against the DELTA
// dispatch budget (the paper runs its TILEPro64 evaluation at a 5 ms
// DELTA): the dispatcher stamps each subframe's dispatch time, workers
// stamp each user's completion, and the tracker folds the difference
// into miss counters, worst-case lateness and a lateness histogram.
// All operations are atomic and allocation-free.
type DeadlineTracker struct {
	budget   atomic.Int64
	dispatch [deadlineSlots]atomic.Int64 // Nanotime+1 of the subframe's dispatch; 0 = unset
	met      atomic.Int64
	missed   atomic.Int64
	worst    atomic.Int64 // worst positive lateness, nanos
	lateSum  atomic.Int64 // total positive lateness, nanos
	lateness Histogram    // distribution of positive lateness
}

func (d *DeadlineTracker) init() { d.budget.Store(5_000_000) } // 5 ms DELTA default

// SetBudget sets the per-subframe completion budget in nanoseconds,
// measured from dispatch.
func (d *DeadlineTracker) SetBudget(nanos int64) {
	if nanos > 0 {
		d.budget.Store(nanos)
	}
}

// Budget returns the configured budget in nanoseconds.
func (d *DeadlineTracker) Budget() int64 { return d.budget.Load() }

// Dispatch stamps subframe seq as dispatched at monotonic time now.
func (d *DeadlineTracker) Dispatch(seq, now int64) {
	d.dispatch[uint64(seq)%deadlineSlots].Store(now + 1)
}

// Complete records one user of subframe seq finishing at time now,
// charging its lateness against the budget. Completions for subframes
// whose dispatch was never stamped are ignored.
func (d *DeadlineTracker) Complete(seq, now int64) {
	t := d.dispatch[uint64(seq)%deadlineSlots].Load()
	if t == 0 {
		return
	}
	late := now - (t - 1) - d.budget.Load()
	if late <= 0 {
		d.met.Add(1)
		return
	}
	d.missed.Add(1)
	d.lateSum.Add(late)
	d.lateness.Observe(late)
	for {
		w := d.worst.Load()
		if late <= w || d.worst.CompareAndSwap(w, late) {
			return
		}
	}
}

// Met returns the number of user completions inside the budget.
func (d *DeadlineTracker) Met() int64 { return d.met.Load() }

// Missed returns the number of user completions past the budget.
func (d *DeadlineTracker) Missed() int64 { return d.missed.Load() }

// WorstLatenessNanos returns the worst observed overrun.
func (d *DeadlineTracker) WorstLatenessNanos() int64 { return d.worst.Load() }

// TotalLatenessNanos returns the summed overrun across all misses.
func (d *DeadlineTracker) TotalLatenessNanos() int64 { return d.lateSum.Load() }

// LatenessHist returns the histogram of positive lateness.
func (d *DeadlineTracker) LatenessHist() *Histogram { return &d.lateness }
