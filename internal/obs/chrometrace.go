package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event exporter: renders captured event rings as the JSON
// object format understood by chrome://tracing and Perfetto, one track
// (tid) per worker — the per-core task timeline of the paper's Figs. 4
// and 5, reconstructable for any captured window of a live run.
//
// Span events use phase "X" (complete events: ts + dur); steals are
// thread-scoped instants (phase "i"). Timestamps are microseconds as the
// format requires; sub-microsecond precision is kept as fractions.

// traceEvent is one trace_event entry.
type traceEvent struct {
	Name  string    `json:"name"`
	Cat   string    `json:"cat,omitempty"`
	Phase string    `json:"ph"`
	TS    float64   `json:"ts"`
	Dur   *float64  `json:"dur,omitempty"`
	PID   int       `json:"pid"`
	TID   int       `json:"tid"`
	Scope string    `json:"s,omitempty"`
	Args  traceArgs `json:"args,omitempty"`
}

type traceArgs struct {
	Seq  *int64 `json:"seq,omitempty"`
	User *int32 `json:"user,omitempty"`
	Task *int32 `json:"task,omitempty"`
	Name string `json:"name,omitempty"` // metadata payload
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes every worker ring of the registry as one
// Chrome trace_event JSON document.
func WriteChromeTrace(w io.Writer, r *Registry) error {
	return WriteChromeTraceEvents(w, r.Events(), "worker")
}

// WriteChromeTraceEvents writes the given events as a Chrome
// trace_event JSON document. trackName labels the per-Worker tracks
// ("worker" for the native pool, "core" for the simulator). Events are
// ordered by start time within each track; cross-track order follows
// timestamps after a global sort.
func WriteChromeTraceEvents(w io.Writer, events []Event, trackName string) error {
	out := traceFile{DisplayTimeUnit: "ns", TraceEvents: make([]traceEvent, 0, len(events)+8)}

	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })

	tracks := map[int16]bool{}
	for _, e := range sorted {
		tracks[e.Worker] = true
		te := traceEvent{
			Name:  e.Name(),
			Cat:   KindNames[e.Kind],
			TS:    float64(e.Start) / 1e3,
			PID:   0,
			TID:   int(e.Worker),
		}
		if e.Kind == KindSteal || e.Kind == KindAdmit || e.Kind == KindShed {
			te.Phase = "i"
			te.Scope = "t"
		} else {
			te.Phase = "X"
			dur := float64(e.Duration()) / 1e3
			te.Dur = &dur
		}
		if e.Seq >= 0 {
			seq, user, task := e.Seq, e.User, e.Task
			te.Args = traceArgs{Seq: &seq, User: &user, Task: &task}
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}

	// Thread-name metadata so the viewer labels each track.
	ids := make([]int, 0, len(tracks))
	for id := range tracks {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   0,
			TID:   id,
			Args:  traceArgs{Name: fmt.Sprintf("%s %d", trackName, id)},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
