package obs_test

import (
	"math"
	"os"
	"testing"

	"ltephy/internal/obs"
	"ltephy/internal/obs/kpi"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/phy/workspace"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

// TestTelemetryOverheadGate is the CI overhead budget: with sampling=1
// (every event into histograms and rings — the most expensive setting)
// a fully instrumented subframe must cost no more than 5% over the same
// loop with sampling=0. KPI accounting (one RecordResult per user) is
// part of the instrumented loop, so the budget covers the measurement
// service too. Gated behind LTEPHY_OVERHEAD_GATE=1 because it
// benchmarks for several seconds (`make obs-overhead` runs it).
func TestTelemetryOverheadGate(t *testing.T) {
	if os.Getenv("LTEPHY_OVERHEAD_GATE") == "" {
		t.Skip("set LTEPHY_OVERHEAD_GATE=1 (make obs-overhead) to run the telemetry overhead gate")
	}

	rc := uplink.DefaultConfig()
	txCfg := tx.DefaultConfig()
	txCfg.Receiver = rc
	sf := &uplink.Subframe{}
	for i, p := range []uplink.UserParams{
		{ID: 0, PRB: 8, Layers: 2, Mod: modulation.QAM16},
		{ID: 1, PRB: 4, Layers: 1, Mod: modulation.QPSK},
		{ID: 2, PRB: 6, Layers: 4, Mod: modulation.QAM64},
	} {
		u, err := tx.Generate(txCfg, p, rng.New(uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		sf.Users = append(sf.Users, u)
	}

	reg := obs.New(1, obs.DefaultRingDepth)
	rec := reg.Worker(0)
	dl := reg.Deadline()
	kreg := kpi.New(kpi.Config{Cells: 1})
	ws := workspace.New()
	jobs := make([]*uplink.UserJob, len(sf.Users))
	for i := range jobs {
		jobs[i] = &uplink.UserJob{}
	}
	var seq int64
	run := func() {
		ws.Reset()
		dl.Dispatch(seq, obs.Nanotime())
		for i, u := range sf.Users {
			j := jobs[i]
			start := obs.Nanotime()
			if err := j.Init(ws, rc, u); err != nil {
				t.Fatal(err)
			}
			rec.StageSpan(obs.StageInit, seq, int32(i), 0, start, obs.Nanotime())
			stages := j.Stages()
			for si := range stages {
				s := stages[si]
				for ti, n := 0, s.Tasks(j); ti < n; ti++ {
					ts := obs.Nanotime()
					s.Run(ws, j, ti)
					rec.StageSpan(uint8(si), seq, int32(i), int32(ti), ts, obs.Nanotime())
				}
			}
			dl.Complete(seq, obs.Nanotime())
			r := j.Result()
			kreg.RecordResult(0, seq, r.UserID, r.CRCOK, 8*len(r.Bits))
		}
		seq++
	}
	run()
	run()

	measure := func(sampling int) float64 {
		reg.SetSampling(sampling)
		kreg.SetSampling(sampling)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run()
			}
		})
		return float64(res.NsPerOp())
	}
	// Interleave rounds and keep each setting's best run: the minimum is
	// the cleanest estimate of intrinsic cost under scheduling noise.
	off, on := math.MaxFloat64, math.MaxFloat64
	for round := 0; round < 3; round++ {
		if v := measure(0); v < off {
			off = v
		}
		if v := measure(1); v < on {
			on = v
		}
	}
	overhead := (on - off) / off
	t.Logf("telemetry overhead at sampling=1: %+.2f%% (off %.0f ns/subframe, on %.0f ns/subframe)", overhead*100, off, on)
	if overhead > 0.05 {
		t.Errorf("telemetry at sampling=1 costs %.2f%% over sampling=0, budget is 5%%", overhead*100)
	}
}
