package obs_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ltephy/internal/obs"
)

func stageEvent(i int) obs.Event {
	return obs.Event{
		Start: int64(i) * 1000, End: int64(i)*1000 + 500,
		Seq: int64(i), User: int32(i % 3), Task: int32(i % 7),
		Worker: 0, Kind: obs.KindStage, Stage: uint8(i % obs.NumStages),
	}
}

// TestRingWraparound: overfilling a ring keeps exactly the last `depth`
// events in record (timestamp) order, and the exported Chrome trace
// contains exactly those spans, in order.
func TestRingWraparound(t *testing.T) {
	const depth, total = 8, 27
	r := obs.NewEventRing(depth)
	for i := 0; i < total; i++ {
		r.Record(stageEvent(i))
	}
	if r.Len() != depth {
		t.Fatalf("Len = %d, want %d", r.Len(), depth)
	}
	if r.Total() != total {
		t.Fatalf("Total = %d, want %d", r.Total(), total)
	}
	got := r.Snapshot(nil)
	if len(got) != depth {
		t.Fatalf("snapshot has %d events, want %d", len(got), depth)
	}
	for i, e := range got {
		want := stageEvent(total - depth + i)
		if e != want {
			t.Fatalf("snapshot[%d] = %+v, want %+v (oldest-first order broken)", i, e, want)
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTraceEvents(&buf, got, "worker"); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	spans := 0
	lastTS := -1.0
	for _, e := range tf.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		spans++
		if e.TS < lastTS {
			t.Fatalf("trace spans out of timestamp order: %g after %g", e.TS, lastTS)
		}
		lastTS = e.TS
	}
	if spans != depth {
		t.Errorf("trace has %d spans, want exactly the retained %d", spans, depth)
	}
}

// TestRingConcurrentRecordSnapshot hammers one recorder against
// concurrent snapshotters; run under -race this proves the ring is
// exactly race-free, and every snapshot must be internally consistent
// (monotonic per-writer timestamps).
func TestRingConcurrentRecordSnapshot(t *testing.T) {
	r := obs.NewEventRing(64)
	const total = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]obs.Event, 0, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = r.Snapshot(buf[:0])
				for i := 1; i < len(buf); i++ {
					if buf[i].Start < buf[i-1].Start {
						t.Error("snapshot not in record order")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		r.Record(stageEvent(i))
	}
	close(stop)
	wg.Wait()
	if r.Total() != total {
		t.Errorf("Total = %d, want %d", r.Total(), total)
	}
}

func TestHistogram(t *testing.T) {
	var h obs.Histogram
	for _, v := range []int64{0, 1, 1, 3, 900, 1 << 30, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.SumNanos() != 0+1+1+3+900+(1<<30)+0 {
		t.Errorf("SumNanos = %d", h.SumNanos())
	}
	// 0 and -5 land in bucket 0; 1,1 in bucket 1; 3 in bucket 2; 900 in
	// bucket 10 (2^9 <= 900 < 2^10); 1<<30 in bucket 31.
	for b, want := range map[int]int64{0: 2, 1: 2, 2: 1, 10: 1, 31: 1} {
		if got := h.Bucket(b); got != want {
			t.Errorf("Bucket(%d) = %d, want %d", b, got, want)
		}
	}
	if h.MaxBucket() != 31 {
		t.Errorf("MaxBucket = %d, want 31", h.MaxBucket())
	}
	// Clamp: an absurd duration lands in the last bucket.
	h.Observe(1 << 62)
	if h.Bucket(obs.HistBuckets-1) != 1 {
		t.Error("overflow not clamped into the last bucket")
	}
}

func TestDeadlineTracker(t *testing.T) {
	reg := obs.New(1, 16)
	d := reg.Deadline()
	d.SetBudget(1000)
	d.Dispatch(7, 100)
	d.Complete(7, 900) // lateness -200: met
	d.Complete(7, 1100) // lateness 0: met (boundary)
	d.Complete(7, 1500) // lateness 400: missed
	d.Complete(7, 1300) // lateness 200: missed, not worst
	d.Complete(99, 5000) // never dispatched: ignored
	if d.Met() != 2 || d.Missed() != 2 {
		t.Errorf("met %d missed %d, want 2/2", d.Met(), d.Missed())
	}
	if d.WorstLatenessNanos() != 400 {
		t.Errorf("worst = %d, want 400", d.WorstLatenessNanos())
	}
	if d.TotalLatenessNanos() != 600 {
		t.Errorf("total = %d, want 600", d.TotalLatenessNanos())
	}
	if d.LatenessHist().Count() != 2 {
		t.Errorf("lateness hist count = %d, want 2", d.LatenessHist().Count())
	}
}

func TestEstimatorTrackerPairing(t *testing.T) {
	var tr obs.EstimatorTracker
	tr.RecordEstimate(0, 0.5)
	tr.RecordMeasured(0, 0.4)
	tr.RecordMeasured(1, 0.9) // no estimate stored: dropped
	tr.RecordEstimate(2, 0.2)
	tr.RecordMeasured(2, 0.3)
	st := tr.Stats()
	if st.Count != 2 {
		t.Fatalf("Count = %d, want 2", st.Count)
	}
	if got, want := st.AvgAbsErr, 0.1; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("AvgAbsErr = %g, want %g", got, want)
	}
	if st.MaxAbsErr < 0.1-1e-12 || st.MaxAbsErr > 0.1+1e-12 {
		t.Errorf("MaxAbsErr = %g, want 0.1", st.MaxAbsErr)
	}
	if st.Bias < -1e-12 || st.Bias > 1e-12 {
		t.Errorf("Bias = %g, want 0 (+0.1 and -0.1 cancel)", st.Bias)
	}
	if st.LastEstimated != 0.2 || st.LastMeasured != 0.3 {
		t.Errorf("last pair = (%g, %g)", st.LastEstimated, st.LastMeasured)
	}
	// A slot is cleared after pairing: re-measuring the same seq drops.
	tr.RecordMeasured(2, 0.99)
	if tr.Stats().Count != 2 {
		t.Error("cleared slot re-paired")
	}
}

// TestSamplingKnob: 0 records nothing; N feeds the histogram on every
// event and the ring on every Nth.
func TestSamplingKnob(t *testing.T) {
	reg := obs.New(1, 1024)
	w := reg.Worker(0)
	w.StageSpan(obs.StageChanEst, 1, 0, 0, 0, 10)
	if reg.StageHist(obs.StageChanEst).Count() != 0 || len(reg.Events()) != 0 {
		t.Fatal("recording happened at sampling 0")
	}

	reg.SetSampling(4)
	const n = 100
	for i := 0; i < n; i++ {
		w.StageSpan(obs.StageChanEst, int64(i), 0, 0, int64(i), int64(i)+10)
	}
	if got := reg.StageHist(obs.StageChanEst).Count(); got != n {
		t.Errorf("histogram observed %d of %d events", got, n)
	}
	if got := len(reg.Events()); got != n/4 {
		t.Errorf("ring captured %d events at sampling 4, want %d", got, n/4)
	}

	reg.SetSampling(-3)
	if reg.Sampling() != 0 || reg.Enabled() {
		t.Error("negative sampling did not clamp to off")
	}
}

func TestPrometheusFormat(t *testing.T) {
	reg := obs.New(1, 16)
	reg.SetSampling(1)
	w := reg.Worker(0)
	w.StageSpan(obs.StageBackend, 0, 0, 0, 0, 1500)
	reg.Deadline().Dispatch(0, 0)
	reg.Deadline().Complete(0, 10)
	reg.Estimator().Observe(0.5, 0.4)

	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`ltephy_stage_latency_seconds_bucket{stage="backend",le="+Inf"} 1`,
		"ltephy_stage_latency_seconds_sum",
		"ltephy_deadline_met_total 1",
		"ltephy_deadline_missed_total 0",
		"ltephy_estimator_samples_total 1",
		"ltephy_obs_sampling 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// Cumulative buckets: the 1500 ns span sits in bucket 11 (le 2048 ns);
	// every higher emitted bound must also count it.
	if !strings.Contains(out, `ltephy_stage_latency_seconds_bucket{stage="backend",le="2.048e-06"} 1`) {
		t.Error("span missing from its le bucket")
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := obs.New(1, 16)
	reg.SetSampling(1)
	reg.Worker(0).StageSpan(obs.StageInit, 0, 0, 0, 0, 100)
	h := obs.Handler(reg)
	srv := httptest.NewServer(h)
	defer srv.Close()

	for path, wantBody := range map[string]string{
		"/metrics":    "ltephy_stage_latency_seconds",
		"/trace":      `"traceEvents"`,
		"/debug/vars": "cmdline",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(buf.String(), wantBody) {
			t.Errorf("GET %s: body missing %q", path, wantBody)
		}
	}
}

// TestNanotimeMonotonic: the telemetry clock never goes backwards.
func TestNanotimeMonotonic(t *testing.T) {
	last := obs.Nanotime()
	for i := 0; i < 10000; i++ {
		now := obs.Nanotime()
		if now < last {
			t.Fatalf("clock went backwards: %d after %d", now, last)
		}
		last = now
	}
}
