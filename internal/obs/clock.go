package obs

import "time"

// The telemetry clock: monotonic nanoseconds since process start.
//
// Go's time.Time carries a monotonic reading when obtained from
// time.Now(), and time.Since(epoch) subtracts on that monotonic track —
// a nanotime-style counter read without wall-clock exposure. The epoch
// lives here, once per process, so every subsystem (scheduler stats,
// span events, deadline accounting) shares one time base and a single
// reading can serve both the busy-time counters and the telemetry event
// bracketing the same interval (the stats paths read the clock once per
// event edge and reuse the value).
//
// Deliberately outside internal/phy, internal/uplink and internal/sim:
// the determinism analyzer bans wall-clock reads there, and telemetry
// timestamps must never leak into receiver output.
var epoch = time.Now()

// Nanotime returns monotonic nanoseconds since the process epoch.
func Nanotime() int64 { return int64(time.Since(epoch)) }

// Clock is the injectable pacing and elapsed-time source for drivers that
// dispatch on a period (sched.Dispatcher). It exists so the deterministic
// layers never touch the wall clock directly: the real clock lives here,
// outside the determinism lint surface, and simulation/test runs swap in
// UnpacedClock to run the same dispatch loop flat out.
//
// Now returns monotonic nanoseconds on the shared process time base
// (Nanotime), so deadline stamps and busy-time counters stay comparable
// whichever implementation is installed. Tick returns a pacing channel
// that delivers one edge per period plus a release function.
type Clock interface {
	Now() int64
	Tick(d time.Duration) (<-chan time.Time, func())
}

// SystemClock paces with a real time.Ticker — the production clock.
type SystemClock struct{}

// Now returns Nanotime.
func (SystemClock) Now() int64 { return Nanotime() }

// Tick returns a real ticker channel and its Stop.
func (SystemClock) Tick(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(d)
	return t.C, t.Stop
}

// UnpacedClock removes pacing: every tick is immediately ready (a closed
// channel), so a dispatch loop runs as fast as the pool drains. Elapsed
// time is still real (Nanotime), so throughput numbers remain honest.
type UnpacedClock struct{}

// Now returns Nanotime.
func (UnpacedClock) Now() int64 { return Nanotime() }

// Tick returns an always-ready channel; the release function is a no-op.
func (UnpacedClock) Tick(time.Duration) (<-chan time.Time, func()) {
	c := make(chan time.Time)
	close(c)
	return c, func() {}
}
