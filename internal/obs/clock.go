package obs

import "time"

// The telemetry clock: monotonic nanoseconds since process start.
//
// Go's time.Time carries a monotonic reading when obtained from
// time.Now(), and time.Since(epoch) subtracts on that monotonic track —
// a nanotime-style counter read without wall-clock exposure. The epoch
// lives here, once per process, so every subsystem (scheduler stats,
// span events, deadline accounting) shares one time base and a single
// reading can serve both the busy-time counters and the telemetry event
// bracketing the same interval (the stats paths read the clock once per
// event edge and reuse the value).
//
// Deliberately outside internal/phy, internal/uplink and internal/sim:
// the determinism analyzer bans wall-clock reads there, and telemetry
// timestamps must never leak into receiver output.
var epoch = time.Now()

// Nanotime returns monotonic nanoseconds since the process epoch.
func Nanotime() int64 { return int64(time.Since(epoch)) }
