package obs

import (
	"fmt"
	"io"
)

// Prometheus text-format exporter (exposition format version 0.0.4).
// Cold path: scraped on demand, never on the receiver hot path. The
// power-of-two histogram buckets translate directly into cumulative
// `le` bounds in seconds.

// WritePrometheus writes the registry's stage histograms, deadline
// accounting and estimator-error statistics in Prometheus text format.
func WritePrometheus(w io.Writer, r *Registry) error {
	if _, err := fmt.Fprintf(w, "# HELP ltephy_obs_sampling Telemetry sampling knob (0 = off, N = ring capture of every Nth event).\n# TYPE ltephy_obs_sampling gauge\nltephy_obs_sampling %d\n", r.Sampling()); err != nil {
		return err
	}

	// Per-stage latency histograms.
	if _, err := io.WriteString(w, "# HELP ltephy_stage_latency_seconds Receiver stage execution latency.\n# TYPE ltephy_stage_latency_seconds histogram\n"); err != nil {
		return err
	}
	for s := 0; s < NumStages; s++ {
		if err := writeHistogram(w, "ltephy_stage_latency_seconds", fmt.Sprintf("stage=%q", StageNames[s]), &r.stages[s]); err != nil {
			return err
		}
	}

	// Deadline accounting.
	d := r.Deadline()
	if _, err := fmt.Fprintf(w,
		"# HELP ltephy_deadline_budget_seconds Per-subframe completion budget (DELTA).\n# TYPE ltephy_deadline_budget_seconds gauge\nltephy_deadline_budget_seconds %g\n"+
			"# HELP ltephy_deadline_met_total User completions inside the budget.\n# TYPE ltephy_deadline_met_total counter\nltephy_deadline_met_total %d\n"+
			"# HELP ltephy_deadline_missed_total User completions past the budget.\n# TYPE ltephy_deadline_missed_total counter\nltephy_deadline_missed_total %d\n"+
			"# HELP ltephy_deadline_worst_lateness_seconds Worst observed overrun past the budget.\n# TYPE ltephy_deadline_worst_lateness_seconds gauge\nltephy_deadline_worst_lateness_seconds %g\n",
		float64(d.Budget())/1e9, d.Met(), d.Missed(), float64(d.WorstLatenessNanos())/1e9); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "# HELP ltephy_deadline_lateness_seconds Positive lateness of budget misses.\n# TYPE ltephy_deadline_lateness_seconds histogram\n"); err != nil {
		return err
	}
	if err := writeHistogram(w, "ltephy_deadline_lateness_seconds", "", d.LatenessHist()); err != nil {
		return err
	}

	// Estimator error (live Fig. 12).
	es := r.Estimator().Stats()
	_, err := fmt.Fprintf(w,
		"# HELP ltephy_estimator_samples_total Paired estimated/measured activity samples.\n# TYPE ltephy_estimator_samples_total counter\nltephy_estimator_samples_total %d\n"+
			"# HELP ltephy_estimator_abs_error_avg Mean absolute estimator error (activity units).\n# TYPE ltephy_estimator_abs_error_avg gauge\nltephy_estimator_abs_error_avg %g\n"+
			"# HELP ltephy_estimator_abs_error_max Max absolute estimator error (activity units).\n# TYPE ltephy_estimator_abs_error_max gauge\nltephy_estimator_abs_error_max %g\n"+
			"# HELP ltephy_estimator_bias Mean signed estimator error (positive = over-estimating).\n# TYPE ltephy_estimator_bias gauge\nltephy_estimator_bias %g\n"+
			"# HELP ltephy_estimator_activity_estimated Most recent estimated activity.\n# TYPE ltephy_estimator_activity_estimated gauge\nltephy_estimator_activity_estimated %g\n"+
			"# HELP ltephy_estimator_activity_measured Most recent measured activity.\n# TYPE ltephy_estimator_activity_measured gauge\nltephy_estimator_activity_measured %g\n",
		es.Count, es.AvgAbsErr, es.MaxAbsErr, es.Bias, es.LastEstimated, es.LastMeasured)
	return err
}

// writeHistogram emits one histogram's cumulative buckets, sum and
// count. labels is a preformatted `k="v"` list (may be empty). Buckets
// are emitted up to the highest non-empty one to keep scrapes compact;
// the +Inf bucket always appears.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	top := h.MaxBucket()
	for b := 0; b <= top; b++ {
		cum += h.Bucket(b)
		le := float64(BucketUpperNanos(b)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, fmt.Sprintf("%g", le), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n%s_sum{%s} %g\n%s_count{%s} %d\n",
		name, labels, sep, h.Count(),
		name, labels, float64(h.SumNanos())/1e9,
		name, labels, h.Count())
	return err
}
