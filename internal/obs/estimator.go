package obs

import (
	"math"
	"sync"
)

// estSlots sizes the seq-indexed pending-estimate table (same headroom
// argument as the deadline tracker's dispatch table).
const estSlots = 1024

// EstimatorTracker pairs each subframe's estimated activity (Eq. 4)
// with the activity actually measured for its dispatch period and keeps
// online error statistics — the live form of the paper's Fig. 12
// estimated-vs-measured comparison, computed while the system runs
// instead of from post-hoc CSVs.
//
// Estimates and measurements arrive from different places (the
// estimator hook at dispatch, the activity sampler or simulator at
// period end), so they are recorded in two phases keyed by subframe
// sequence: RecordEstimate then RecordMeasured. Observe records an
// already-paired sample directly. A mutex serialises updates — one
// sample per dispatch period is far off the hot path — and the tracker
// never allocates after construction.
type EstimatorTracker struct {
	mu      sync.Mutex
	pending [estSlots]float64 // NaN = no estimate stored
	inited  bool              // pending sentinel fill done (guarded by mu)

	count    int64
	sumAbs   float64
	sumErr   float64 // signed, for bias
	maxAbs   float64
	sumMeas  float64
	lastEst  float64
	lastMeas float64
}

// initPendingLocked lazily fills the sentinel table. A plain flag under
// the mutex (not sync.Once) keeps the record path allocation-free: a
// Once.Do call site constructs a closure on every call.
func (t *EstimatorTracker) initPendingLocked() {
	if t.inited {
		return
	}
	for i := range t.pending {
		t.pending[i] = math.NaN()
	}
	t.inited = true
}

// RecordEstimate stores subframe seq's estimated activity until its
// measurement arrives.
func (t *EstimatorTracker) RecordEstimate(seq int64, est float64) {
	t.mu.Lock()
	t.initPendingLocked()
	t.pending[uint64(seq)%estSlots] = est
	t.mu.Unlock()
}

// RecordMeasured pairs subframe seq's measured activity with its stored
// estimate and folds the pair into the error statistics. Measurements
// without a stored estimate are dropped.
func (t *EstimatorTracker) RecordMeasured(seq int64, measured float64) {
	t.mu.Lock()
	t.initPendingLocked()
	est := t.pending[uint64(seq)%estSlots]
	t.pending[uint64(seq)%estSlots] = math.NaN()
	if !math.IsNaN(est) {
		t.observeLocked(est, measured)
	}
	t.mu.Unlock()
}

// Observe records one already-paired (estimated, measured) sample.
func (t *EstimatorTracker) Observe(est, measured float64) {
	t.mu.Lock()
	t.observeLocked(est, measured)
	t.mu.Unlock()
}

func (t *EstimatorTracker) observeLocked(est, measured float64) {
	e := est - measured
	t.count++
	t.sumErr += e
	if e < 0 {
		e = -e
	}
	t.sumAbs += e
	if e > t.maxAbs {
		t.maxAbs = e
	}
	t.sumMeas += measured
	t.lastEst = est
	t.lastMeas = measured
}

// EstimatorStats is a snapshot of the online error statistics.
type EstimatorStats struct {
	// Count is the number of paired samples.
	Count int64
	// AvgAbsErr and MaxAbsErr are in activity units (the paper quotes
	// 0.012 average and 0.054 max for Fig. 12).
	AvgAbsErr float64
	MaxAbsErr float64
	// Bias is the mean signed error (positive = over-estimating).
	Bias float64
	// MeanMeasured is the mean measured activity.
	MeanMeasured float64
	// LastEstimated / LastMeasured are the most recent pair — the live
	// gauges exporters expose.
	LastEstimated float64
	LastMeasured  float64
}

// Stats returns a consistent snapshot.
func (t *EstimatorTracker) Stats() EstimatorStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := EstimatorStats{
		Count:         t.count,
		MaxAbsErr:     t.maxAbs,
		LastEstimated: t.lastEst,
		LastMeasured:  t.lastMeas,
	}
	if t.count > 0 {
		s.AvgAbsErr = t.sumAbs / float64(t.count)
		s.Bias = t.sumErr / float64(t.count)
		s.MeanMeasured = t.sumMeas / float64(t.count)
	}
	return s
}
