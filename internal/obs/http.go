package obs

import (
	"expvar"
	"io"
	"net/http"
	"sync"
)

// HTTP surface: a single handler serving the Prometheus text endpoint,
// the Chrome trace snapshot and Go's expvar page. Mounted by
// cmd/lte-bench behind -metrics-addr; everything here is cold path.

// Handler returns an http.Handler serving:
//
//	/metrics     Prometheus text format (plus any extra sections)
//	/trace       Chrome trace_event JSON snapshot of the worker rings
//	/debug/vars  expvar JSON (including the registry published via
//	             PublishExpvar)
//
// extra writers let callers append their own Prometheus sections (e.g.
// the scheduler pool's per-worker counters) without this package
// importing them.
func Handler(r *Registry, extra ...func(io.Writer) error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, r); err != nil {
			return
		}
		for _, fn := range extra {
			if err := fn(w); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, r)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

var expvarOnce sync.Once

// PublishExpvar publishes the registry under the expvar name "ltephy".
// Safe to call more than once; only the first registry wins (expvar
// names are process-global and cannot be re-published).
func PublishExpvar(r *Registry) {
	expvarOnce.Do(func() {
		expvar.Publish("ltephy", expvar.Func(func() any {
			d := r.Deadline()
			es := r.Estimator().Stats()
			type stage struct {
				Count    int64
				MeanUsec float64
			}
			stages := map[string]stage{}
			for s := 0; s < NumStages; s++ {
				h := r.StageHist(uint8(s))
				st := stage{Count: h.Count()}
				if st.Count > 0 {
					st.MeanUsec = float64(h.SumNanos()) / float64(st.Count) / 1e3
				}
				stages[StageNames[s]] = st
			}
			return map[string]any{
				"sampling":            r.Sampling(),
				"stages":              stages,
				"deadline_met":        d.Met(),
				"deadline_missed":     d.Missed(),
				"worst_lateness_usec": float64(d.WorstLatenessNanos()) / 1e3,
				"estimator":           es,
			}
		}))
	})
}
