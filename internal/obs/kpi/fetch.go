package kpi

// Snapshot side of the KPI service: the FETCh-shaped structs the HTTP
// endpoint, expvar and the shutdown summaries serve. Everything here is
// cold path — snapshots allocate freely; only the record path in kpi.go
// is allocation-free.

// FetchStruct mirrors the field set of the CMW's
// FETCh:LTE:SIGNaling:EBLer:...:UPLink result: the reliability
// indicator, the derived BLER / throughput figures and the raw counters
// they fold.
type FetchStruct struct {
	// Reliability is ReliabilityOK when the scope measured at least one
	// block, ReliabilityNoResults otherwise.
	Reliability int `json:"reliability"`
	// Bler is the block error ratio in percent:
	// 100 * (CrcFail + Dtx) / (CrcPass + CrcFail + Dtx). Skipped blocks
	// were never decoded and are excluded (see DESIGN.md §12).
	Bler float64 `json:"bler"`
	// Throughput is the delivered transport-block rate in kbit/s over
	// the scope's duration (bits per subframe-millisecond = kbit/s).
	Throughput float64 `json:"throughput"`
	CrcPass    int64   `json:"crc_pass"`
	CrcFail    int64   `json:"crc_fail"`
	Dtx        int64   `json:"dtx"`
	Skipped    int64   `json:"skipped"`
}

// fetchFrom folds one bucket into the FETCH shape. durMs is the scope's
// duration in subframes (= milliseconds of air time); <= 0 reports zero
// throughput.
func fetchFrom(c *counters, durMs int64) FetchStruct {
	f := FetchStruct{
		Reliability: ReliabilityNoResults,
		CrcPass:     c.crcPass.Load(),
		CrcFail:     c.crcFail.Load(),
		Dtx:         c.dtx.Load(),
		Skipped:     c.skipped.Load(),
	}
	if f.CrcPass+f.CrcFail+f.Dtx+f.Skipped > 0 {
		f.Reliability = ReliabilityOK
	}
	if measured := f.CrcPass + f.CrcFail + f.Dtx; measured > 0 {
		f.Bler = 100 * float64(f.CrcFail+f.Dtx) / float64(measured)
	}
	if durMs > 0 {
		f.Throughput = float64(c.bits.Load()) / float64(durMs)
	}
	return f
}

// WindowFetch is the last completed tumbling window of one length.
type WindowFetch struct {
	// Window is the window length in subframes.
	Window int64 `json:"window"`
	// Epoch is the completed window's index (it covered subframes
	// [Epoch*Window, (Epoch+1)*Window)); -1 until a window completes.
	Epoch int64 `json:"epoch"`
	FetchStruct
}

// UserFetch is one user's measurement within a cell.
type UserFetch struct {
	User       int           `json:"user"`
	Cumulative FetchStruct   `json:"cumulative"`
	Windows    []WindowFetch `json:"windows"`
}

// CellFetch is one cell's measurement: the cell-wide scope plus every
// user slot that saw at least one event.
type CellFetch struct {
	Cell int `json:"cell"`
	// Subframes is the observed sequence span (the cumulative
	// throughput denominator in milliseconds).
	Subframes  int64         `json:"subframes"`
	Cumulative FetchStruct   `json:"cumulative"`
	Windows    []WindowFetch `json:"windows"`
	Users      []UserFetch   `json:"users"`
	// OverflowEvents counts events whose user ID fell outside the
	// fixed table and were folded into the last slot.
	OverflowEvents int64 `json:"overflow_events,omitempty"`
}

// spanMs returns the cell's observed subframe span in milliseconds.
func (c *cellKPI) spanMs() int64 {
	first, last := c.firstSeq.Load(), c.lastSeq.Load()
	if last < 0 || first > last {
		return 0
	}
	return last - first + 1
}

// fetchWindows snapshots every window's last completed bucket. Each
// window's rotation lock is held so a snapshot racing a rotation never
// mixes two windows' counters.
func fetchWindows(a *accum) []WindowFetch {
	out := make([]WindowFetch, len(a.wins))
	for i := range a.wins {
		w := &a.wins[i]
		w.mu.Lock()
		out[i] = WindowFetch{
			Window:      w.length,
			Epoch:       w.lastEpoch.Load(),
			FetchStruct: fetchFrom(&w.last, w.length),
		}
		if out[i].Epoch == epochUnset {
			out[i].Epoch = -1
			out[i].FetchStruct = FetchStruct{Reliability: ReliabilityNoResults}
		}
		w.mu.Unlock()
	}
	return out
}

// active reports whether the scope has measured anything.
func (a *accum) active() bool {
	c := &a.cum
	return c.crcPass.Load()+c.crcFail.Load()+c.dtx.Load()+c.skipped.Load() > 0
}

// CellSnapshot snapshots one cell's FETCH structs. Cold path.
func (r *Registry) CellSnapshot(i int) CellFetch {
	if r == nil || i < 0 || i >= len(r.cells) {
		return CellFetch{Cell: i, Cumulative: FetchStruct{Reliability: ReliabilityNoResults}}
	}
	c := &r.cells[i]
	dur := c.spanMs()
	out := CellFetch{
		Cell:           i,
		Subframes:      dur,
		Cumulative:     fetchFrom(&c.acc.cum, dur),
		Windows:        fetchWindows(&c.acc),
		OverflowEvents: c.overflow.Load(),
	}
	for u := range c.users {
		ua := &c.users[u]
		if !ua.active() {
			continue
		}
		out.Users = append(out.Users, UserFetch{
			User:       u,
			Cumulative: fetchFrom(&ua.cum, dur),
			Windows:    fetchWindows(ua),
		})
	}
	return out
}

// Snapshot snapshots every cell. Cold path.
func (r *Registry) Snapshot() []CellFetch {
	if r == nil {
		return nil
	}
	out := make([]CellFetch, len(r.cells))
	for i := range out {
		out[i] = r.CellSnapshot(i)
	}
	return out
}
