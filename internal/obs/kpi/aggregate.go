package kpi

// Fleet-side aggregation: the coordinator scrapes each worker process's
// /fetch endpoint and folds the per-worker []CellFetch snapshots into
// one fleet-wide rollup. Counters for the same cell index are summed
// across workers — after a migration release exactly one worker holds a
// cell's cumulative counters, so the sum is exact, and a mid-migration
// scrape at worst attributes a cell to the target before the source
// cleared (transiently high, never lost). Cold path.

// FleetFetch is the fleet-wide KPI rollup.
type FleetFetch struct {
	// Cells are the merged per-cell snapshots (cumulative counters only:
	// tumbling windows and user tables are per-worker views and are not
	// merged), ascending by cell index.
	Cells []CellFetch `json:"cells"`
	// Total folds every cell's cumulative counters.
	Total FetchStruct `json:"total"`
	// Subframes is the widest observed per-cell subframe span — the
	// fleet throughput denominator (cells run concurrently, so spans
	// overlap rather than add).
	Subframes int64 `json:"subframes"`
}

// AggregateCells merges per-worker /fetch snapshots into the fleet
// rollup.
func AggregateCells(workers ...[]CellFetch) FleetFetch {
	type agg struct {
		c        Counters
		bits     float64
		sub      int64
		overflow int64
	}
	byCell := map[int]*agg{}
	maxCell := -1
	for _, cells := range workers {
		for _, cf := range cells {
			a := byCell[cf.Cell]
			if a == nil {
				a = &agg{}
				byCell[cf.Cell] = a
				if cf.Cell > maxCell {
					maxCell = cf.Cell
				}
			}
			a.c.CrcPass += cf.Cumulative.CrcPass
			a.c.CrcFail += cf.Cumulative.CrcFail
			a.c.Dtx += cf.Cumulative.Dtx
			a.c.Skipped += cf.Cumulative.Skipped
			// Throughput is bits per subframe-millisecond over the scope's
			// span, so the delivered bits are recoverable exactly.
			a.bits += cf.Cumulative.Throughput * float64(cf.Subframes)
			a.sub += cf.Subframes
			a.overflow += cf.OverflowEvents
		}
	}
	var out FleetFetch
	var totBits float64
	var tot Counters
	for cellID := 0; cellID <= maxCell; cellID++ {
		a := byCell[cellID]
		if a == nil {
			continue
		}
		out.Cells = append(out.Cells, CellFetch{
			Cell:           cellID,
			Subframes:      a.sub,
			Cumulative:     fetchFromCounters(a.c, a.bits, a.sub),
			OverflowEvents: a.overflow,
		})
		tot.CrcPass += a.c.CrcPass
		tot.CrcFail += a.c.CrcFail
		tot.Dtx += a.c.Dtx
		tot.Skipped += a.c.Skipped
		totBits += a.bits
		if a.sub > out.Subframes {
			out.Subframes = a.sub
		}
	}
	out.Total = fetchFromCounters(tot, totBits, out.Subframes)
	return out
}

// fetchFromCounters derives the FETCH-shaped figures from raw counters —
// the aggregation-side twin of fetchFrom.
func fetchFromCounters(c Counters, bits float64, durMs int64) FetchStruct {
	f := FetchStruct{
		Reliability: ReliabilityNoResults,
		CrcPass:     c.CrcPass,
		CrcFail:     c.CrcFail,
		Dtx:         c.Dtx,
		Skipped:     c.Skipped,
	}
	if f.CrcPass+f.CrcFail+f.Dtx+f.Skipped > 0 {
		f.Reliability = ReliabilityOK
	}
	if measured := f.CrcPass + f.CrcFail + f.Dtx; measured > 0 {
		f.Bler = 100 * float64(f.CrcFail+f.Dtx) / float64(measured)
	}
	if durMs > 0 {
		f.Throughput = bits / float64(durMs)
	}
	return f
}
