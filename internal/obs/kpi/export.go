package kpi

// Exporters: the FETCh-shaped HTTP endpoint (JSON or text), the
// ltephy_kpi_* Prometheus section, and the expvar publication. All cold
// path.

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// WritePrometheus writes the per-cell KPI counters and the derived
// BLER/throughput gauges in Prometheus text format — designed to be
// passed as an extra section to obs.Handler. Per-user series are not
// exported (unbounded label cardinality); the FETCH endpoint serves the
// per-user view.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	if _, err := io.WriteString(w,
		"# HELP ltephy_kpi_blocks_total Transport blocks by cell and outcome (crc_pass, crc_fail, dtx, skipped).\n# TYPE ltephy_kpi_blocks_total counter\n"+
			"# HELP ltephy_kpi_bits_total Delivered transport-block bits by cell.\n# TYPE ltephy_kpi_bits_total counter\n"+
			"# HELP ltephy_kpi_bler_percent Block error ratio in percent, cumulative and per completed window.\n# TYPE ltephy_kpi_bler_percent gauge\n"+
			"# HELP ltephy_kpi_throughput_kbps Delivered throughput in kbit/s, cumulative and per completed window.\n# TYPE ltephy_kpi_throughput_kbps gauge\n"); err != nil {
		return err
	}
	for i := range r.cells {
		snap := r.CellSnapshot(i)
		cum := snap.Cumulative
		if _, err := fmt.Fprintf(w,
			"ltephy_kpi_blocks_total{cell=\"%d\",outcome=\"crc_pass\"} %d\n"+
				"ltephy_kpi_blocks_total{cell=\"%d\",outcome=\"crc_fail\"} %d\n"+
				"ltephy_kpi_blocks_total{cell=\"%d\",outcome=\"dtx\"} %d\n"+
				"ltephy_kpi_blocks_total{cell=\"%d\",outcome=\"skipped\"} %d\n"+
				"ltephy_kpi_bits_total{cell=\"%d\"} %d\n"+
				"ltephy_kpi_bler_percent{cell=\"%d\",window=\"cum\"} %g\n"+
				"ltephy_kpi_throughput_kbps{cell=\"%d\",window=\"cum\"} %g\n",
			i, cum.CrcPass, i, cum.CrcFail, i, cum.Dtx, i, cum.Skipped,
			i, r.cells[i].acc.cum.bits.Load(),
			i, cum.Bler, i, cum.Throughput); err != nil {
			return err
		}
		for _, wf := range snap.Windows {
			if wf.Epoch < 0 {
				continue // no completed window of this length yet
			}
			if _, err := fmt.Fprintf(w,
				"ltephy_kpi_bler_percent{cell=\"%d\",window=\"%d\"} %g\n"+
					"ltephy_kpi_throughput_kbps{cell=\"%d\",window=\"%d\"} %g\n",
				i, wf.Window, wf.Bler, i, wf.Window, wf.Throughput); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeText renders one scope's FETCH struct as a single machine-greppable
// key=value line.
func writeText(w io.Writer, scope string, f FetchStruct) {
	fmt.Fprintf(w, "%s reliability=%d bler=%.3f%% throughput=%.1fkbps crc_pass=%d crc_fail=%d dtx=%d skipped=%d\n",
		scope, f.Reliability, f.Bler, f.Throughput, f.CrcPass, f.CrcFail, f.Dtx, f.Skipped)
}

// FetchHandler serves the FETCh-shaped query endpoint:
//
//	GET /fetch              every cell, JSON
//	GET /fetch?cell=2       one cell
//	GET /fetch?format=text  key=value text, one line per scope
//
// The JSON document is {"cells": [CellFetch...]}.
func FetchHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var cells []CellFetch
		if sel := req.URL.Query().Get("cell"); sel != "" {
			i, err := strconv.Atoi(sel)
			if err != nil || i < 0 || i >= r.Cells() {
				http.Error(w, "unknown cell", http.StatusNotFound)
				return
			}
			cells = []CellFetch{r.CellSnapshot(i)}
		} else {
			cells = r.Snapshot()
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, c := range cells {
				writeText(w, fmt.Sprintf("cell=%d window=cum", c.Cell), c.Cumulative)
				for _, wf := range c.Windows {
					writeText(w, fmt.Sprintf("cell=%d window=%d epoch=%d", c.Cell, wf.Window, wf.Epoch), wf.FetchStruct)
				}
				for _, u := range c.Users {
					writeText(w, fmt.Sprintf("cell=%d user=%d window=cum", c.Cell, u.User), u.Cumulative)
				}
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"cells": cells})
	})
}

var expvarOnce sync.Once

// PublishExpvar publishes the registry's per-cell FETCH snapshots under
// the expvar name "ltephy_kpi". Safe to call more than once; only the
// first registry wins (expvar names are process-global).
func PublishExpvar(r *Registry) {
	if r == nil {
		return
	}
	expvarOnce.Do(func() {
		expvar.Publish("ltephy_kpi", expvar.Func(func() any {
			return r.Snapshot()
		}))
	})
}
