// Package kpi is the link-level KPI measurement service: per-cell and
// per-user windowed block-error counters in the style of the R&S CMW
// callbox's FETCh:...:EBLer:...:UPLink measurement. Where internal/obs
// watches the receiver's *timing* (stage latency, deadlines), this
// package watches its *outcome*: every decoded transport block lands in
// exactly one of four counters —
//
//	CrcPass  the transport-block CRC24A verified; its bits were delivered
//	CrcFail  the block was decoded but its CRC failed (a NACK)
//	Dtx      the user was scheduled but transmitted nothing (the frame
//	         carried a DTX-flagged record: scheduled-but-absent)
//	Skipped  the eNB never decoded the block: the fronthaul shed the
//	         whole subframe (late / overload / backpressure) or the
//	         admission pass rejected the user
//
// folded into Reliability / BLER% / Throughput(kbit/s), cumulatively and
// over tumbling subframe windows (e.g. 200/1000/10000 subframes = 0.2/1/10
// seconds of air time).
//
// # Cost discipline
//
// The package follows the internal/obs contract: one atomic sampling
// knob gates every record call (0 = off behind a single load; any value
// >= 1 counts every event — KPIs are accounting, not tracing, so there
// is no subsampling), every accumulator is a fixed preallocated array of
// atomic counters, and no record path allocates (TestKPISteadyStateZeroAlloc
// pins this). Window rotation is the only synchronised section: a mutex
// taken once per window length per scope, never on the per-event path.
//
// # Window semantics
//
// Windows tumble: window w of length W covers subframes [w*W, (w+1)*W).
// An event for subframe seq lands in window seq/W; the first event of a
// new window publishes the previous one as the "last completed" snapshot
// the exporters read. Events are attributed by sequence number, not
// arrival time, so out-of-order completions within a window count
// exactly; a straggler arriving after its window already rotated is
// folded into the live window (bounded smear of one event at a rotation
// boundary, acceptable for windows hundreds of subframes long).
package kpi

import (
	"math"
	"sync"
	"sync/atomic"
)

// DefaultWindows are the standard measurement windows in subframes
// (1 subframe = 1 ms of air time): 0.2 s, 1 s and 10 s.
var DefaultWindows = []int64{200, 1000, 10000}

// DefaultMaxUsers sizes the per-cell user table when the caller does not
// choose: matches the fronthaul's MaxUsersPerFrame.
const DefaultMaxUsers = 64

// Reliability indicator values, mirroring the shape of the CMW's
// leading reliability field: 0 reports a valid measurement.
const (
	// ReliabilityOK: the scope has measured at least one block.
	ReliabilityOK = 0
	// ReliabilityNoResults: nothing measured yet in this scope.
	ReliabilityNoResults = 4
)

// Block outcomes.
const (
	outPass = iota
	outFail
	outDTX
	outSkipped
)

// counters is one accumulator bucket: the four block outcomes plus the
// delivered transport-block bits. All fields are atomics so recorders on
// any goroutine add without locks.
type counters struct {
	crcPass atomic.Int64
	crcFail atomic.Int64
	dtx     atomic.Int64
	skipped atomic.Int64
	bits    atomic.Int64
}

// add counts one block outcome.
//
//ltephy:hotpath — runs once per block event per accumulator bucket.
func (c *counters) add(out int, bits int64) {
	switch out {
	case outPass:
		c.crcPass.Add(1)
		c.bits.Add(bits)
	case outFail:
		c.crcFail.Add(1)
	case outDTX:
		c.dtx.Add(1)
	default:
		c.skipped.Add(1)
	}
}

// epochUnset marks a window that has not seen its first event.
const epochUnset = math.MinInt64

// window is one tumbling window: the live bucket plus the last completed
// window's totals. epoch is the live window index (seq/length).
type window struct {
	length int64
	epoch  atomic.Int64
	cur    counters

	// lastEpoch/last hold the most recently completed window. Written
	// under mu during rotation; the counters stay atomics so snapshots
	// read them without taking the rotation lock on the record path.
	lastEpoch atomic.Int64
	mu        sync.Mutex // rotation + consistent snapshot only
	last      counters
}

func (w *window) init(length int64) {
	w.length = length
	w.epoch.Store(epochUnset)
	w.lastEpoch.Store(epochUnset)
}

// bucket returns the live bucket for seq, rotating first when seq opens
// a new window.
//
//ltephy:hotpath — runs once per block event per window length.
func (w *window) bucket(seq int64) *counters {
	if e := seq / w.length; e != w.epoch.Load() {
		w.rotate(e)
	}
	return &w.cur
}

// rotate publishes the live window as the last completed one and opens
// epoch e. It runs once per window length per scope — the only lock on
// the recording path, never contended in steady state. A concurrent
// recorder that loses the race re-checks under the lock and falls
// through; an event for an already-rotated (older) epoch is folded into
// the live window (see the package comment on boundary smear).
//
//ltephy:blocking-ok — bounded critical section, once per window length.
func (w *window) rotate(e int64) {
	w.mu.Lock()
	cur := w.epoch.Load()
	switch {
	case cur == epochUnset:
		w.epoch.Store(e)
	case e > cur:
		w.last.crcPass.Store(w.cur.crcPass.Swap(0))
		w.last.crcFail.Store(w.cur.crcFail.Swap(0))
		w.last.dtx.Store(w.cur.dtx.Swap(0))
		w.last.skipped.Store(w.cur.skipped.Swap(0))
		w.last.bits.Store(w.cur.bits.Swap(0))
		w.lastEpoch.Store(cur)
		w.epoch.Store(e)
	}
	w.mu.Unlock()
}

// accum is one measurement scope (a cell, or one user within a cell):
// cumulative totals plus one tumbling window per configured length.
type accum struct {
	cum  counters
	wins []window
}

// record counts one block outcome into the cumulative bucket and every
// window.
//
//ltephy:hotpath — runs once per block event in the serving loop.
func (a *accum) record(seq int64, out int, bits int64) {
	a.cum.add(out, bits)
	for i := range a.wins {
		a.wins[i].bucket(seq).add(out, bits)
	}
}

// cellKPI is one cell's measurement state: the cell-wide scope, the
// fixed per-user table, and the observed subframe span (the cumulative
// throughput denominator).
type cellKPI struct {
	acc   accum
	users []accum

	firstSeq atomic.Int64 // math.MaxInt64 until the first event
	lastSeq  atomic.Int64 // -1 until the first event
	overflow atomic.Int64 // events folded into the last user slot
}

// span widens the observed [firstSeq, lastSeq] subframe range.
//
//ltephy:hotpath — runs once per block event in the serving loop.
func (c *cellKPI) span(seq int64) {
	for {
		f := c.firstSeq.Load()
		if seq >= f || c.firstSeq.CompareAndSwap(f, seq) {
			break
		}
	}
	for {
		l := c.lastSeq.Load()
		if seq <= l || c.lastSeq.CompareAndSwap(l, seq) {
			break
		}
	}
}

// Config configures a KPI registry.
type Config struct {
	// Cells is the number of cells tracked (scope indices 0..Cells-1).
	// Defaults to 1.
	Cells int
	// MaxUsers is the per-cell user-table capacity. User IDs outside
	// [0, MaxUsers) fold into the last slot (counted as overflow) so the
	// record path stays allocation-free. Defaults to DefaultMaxUsers.
	MaxUsers int
	// Windows are the tumbling window lengths in subframes. Defaults to
	// DefaultWindows. Values <= 0 are dropped.
	Windows []int64
}

// Registry holds the KPI accumulators of one serving instance. Construct
// with New; all methods are safe for concurrent use, and every method is
// safe on a nil receiver (recording becomes a no-op), so callers can
// wire an optional registry without branching.
type Registry struct {
	// sampling gates recording: 0 = off behind one atomic load per
	// event, >= 1 = every event is counted.
	sampling atomic.Int64

	windows []int64
	cells   []cellKPI
}

// New returns a registry with everything preallocated and recording off
// (SetSampling enables it).
func New(cfg Config) *Registry {
	if cfg.Cells <= 0 {
		cfg.Cells = 1
	}
	if cfg.MaxUsers <= 0 {
		cfg.MaxUsers = DefaultMaxUsers
	}
	windows := make([]int64, 0, len(cfg.Windows))
	if cfg.Windows == nil {
		windows = append(windows, DefaultWindows...)
	} else {
		for _, w := range cfg.Windows {
			if w > 0 {
				windows = append(windows, w)
			}
		}
	}
	r := &Registry{windows: windows, cells: make([]cellKPI, cfg.Cells)}
	initScope := func(a *accum) {
		a.wins = make([]window, len(windows))
		for i := range a.wins {
			a.wins[i].init(windows[i])
		}
	}
	for c := range r.cells {
		cell := &r.cells[c]
		initScope(&cell.acc)
		cell.users = make([]accum, cfg.MaxUsers)
		for u := range cell.users {
			initScope(&cell.users[u])
		}
		cell.firstSeq.Store(math.MaxInt64)
		cell.lastSeq.Store(-1)
	}
	return r
}

// SetSampling sets the knob: 0 disables recording, any n >= 1 counts
// every event (KPI counters are exact whenever recording is on).
// Negative values clamp to 0.
func (r *Registry) SetSampling(n int) {
	if r == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	r.sampling.Store(int64(n))
}

// Sampling returns the current knob value.
func (r *Registry) Sampling() int {
	if r == nil {
		return 0
	}
	return int(r.sampling.Load())
}

// Enabled reports whether recording is on — the same single-load check
// the record paths use.
func (r *Registry) Enabled() bool { return r != nil && r.sampling.Load() != 0 }

// Cells returns the number of tracked cells.
func (r *Registry) Cells() int {
	if r == nil {
		return 0
	}
	return len(r.cells)
}

// Windows returns the configured window lengths.
func (r *Registry) Windows() []int64 {
	if r == nil {
		return nil
	}
	return r.windows
}

// RecordResult counts one decoded transport block: a CRC pass delivers
// its payload bits, a CRC fail counts as a NACK.
//
//ltephy:hotpath — runs once per decoded user result in the serving loop.
func (r *Registry) RecordResult(cell uint16, seq int64, user int, crcOK bool, bits int) {
	if r == nil || r.sampling.Load() == 0 {
		return
	}
	if crcOK {
		r.record(cell, seq, user, outPass, int64(bits))
		return
	}
	r.record(cell, seq, user, outFail, 0)
}

// RecordDTX counts one scheduled-but-absent user: the grant carried a
// DTX-flagged record, so the receiver never saw a transmission.
//
//ltephy:hotpath — runs once per DTX-flagged user in the serving loop.
func (r *Registry) RecordDTX(cell uint16, seq int64, user int) {
	if r == nil || r.sampling.Load() == 0 {
		return
	}
	r.record(cell, seq, user, outDTX, 0)
}

// RecordSkipped counts one eNB-side skip: the user's subframe was shed
// whole (late/overload/backpressure) or the admission pass rejected the
// user, so its block was never decoded.
//
//ltephy:hotpath — runs once per shed or rejected user in the serving loop.
func (r *Registry) RecordSkipped(cell uint16, seq int64, user int) {
	if r == nil || r.sampling.Load() == 0 {
		return
	}
	r.record(cell, seq, user, outSkipped, 0)
}

// record routes one outcome into the cell scope and the user's slot.
//
//ltephy:hotpath — runs once per block event in the serving loop.
func (r *Registry) record(cell uint16, seq int64, user, out int, bits int64) {
	if int(cell) >= len(r.cells) {
		return
	}
	c := &r.cells[cell]
	c.span(seq)
	c.acc.record(seq, out, bits)
	if user < 0 || user >= len(c.users) {
		user = len(c.users) - 1
		c.overflow.Add(1)
	}
	c.users[user].record(seq, out, bits)
}
