package kpi

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func testRegistry(windows ...int64) *Registry {
	if len(windows) == 0 {
		windows = []int64{10, 100}
	}
	r := New(Config{Cells: 2, MaxUsers: 8, Windows: windows})
	r.SetSampling(1)
	return r
}

func TestCountersAndBler(t *testing.T) {
	r := testRegistry()
	// 10 subframes, 2 users: user 0 passes 100-bit blocks, user 1
	// alternates fail / DTX, and two subframes are shed for user 1.
	for seq := int64(0); seq < 10; seq++ {
		r.RecordResult(0, seq, 0, true, 100)
		switch {
		case seq == 8 || seq == 9:
			r.RecordSkipped(0, seq, 1)
		case seq%2 == 0:
			r.RecordResult(0, seq, 1, false, 0)
		default:
			r.RecordDTX(0, seq, 1)
		}
	}
	c := r.CellSnapshot(0)
	if c.Subframes != 10 {
		t.Errorf("Subframes = %d, want 10", c.Subframes)
	}
	cum := c.Cumulative
	if cum.Reliability != ReliabilityOK {
		t.Errorf("Reliability = %d, want %d", cum.Reliability, ReliabilityOK)
	}
	if cum.CrcPass != 10 || cum.CrcFail != 4 || cum.Dtx != 4 || cum.Skipped != 2 {
		t.Errorf("counters = pass %d fail %d dtx %d skipped %d, want 10/4/4/2",
			cum.CrcPass, cum.CrcFail, cum.Dtx, cum.Skipped)
	}
	// BLER excludes Skipped: 100*(4+4)/(10+4+4).
	if want := 100 * 8.0 / 18.0; cum.Bler != want {
		t.Errorf("Bler = %g, want %g", cum.Bler, want)
	}
	// 1000 bits over 10 subframe-ms = 100 kbit/s.
	if cum.Throughput != 100 {
		t.Errorf("Throughput = %g, want 100", cum.Throughput)
	}
	if len(c.Users) != 2 {
		t.Fatalf("got %d active users, want 2", len(c.Users))
	}
	u1 := c.Users[1]
	if u1.User != 1 || u1.Cumulative.CrcFail != 4 || u1.Cumulative.Dtx != 4 || u1.Cumulative.Skipped != 2 {
		t.Errorf("user 1 = %+v", u1.Cumulative)
	}
	if u1.Cumulative.Bler != 100 {
		t.Errorf("user 1 Bler = %g, want 100", u1.Cumulative.Bler)
	}
	// Cell 1 untouched.
	if c1 := r.CellSnapshot(1); c1.Cumulative.Reliability != ReliabilityNoResults || len(c1.Users) != 0 {
		t.Errorf("cell 1 = %+v", c1)
	}
}

func TestWindowRotation(t *testing.T) {
	r := testRegistry(10)
	// Window 0: 10 passes. Window 1: 5 fails. Window 2: first event
	// publishes window 1.
	for seq := int64(0); seq < 10; seq++ {
		r.RecordResult(0, seq, 0, true, 100)
	}
	snap := r.CellSnapshot(0).Windows[0]
	if snap.Epoch != -1 {
		t.Errorf("no window completed yet, Epoch = %d", snap.Epoch)
	}
	for seq := int64(10); seq < 15; seq++ {
		r.RecordResult(0, seq, 0, false, 0)
	}
	snap = r.CellSnapshot(0).Windows[0]
	if snap.Epoch != 0 || snap.CrcPass != 10 || snap.CrcFail != 0 {
		t.Errorf("after rotation: %+v, want epoch 0 with 10 passes", snap)
	}
	if snap.Bler != 0 {
		t.Errorf("window 0 Bler = %g, want 0", snap.Bler)
	}
	// Window throughput: 1000 bits over the 10-subframe window.
	if snap.Throughput != 100 {
		t.Errorf("window 0 Throughput = %g, want 100", snap.Throughput)
	}
	r.RecordResult(0, 20, 0, true, 100)
	snap = r.CellSnapshot(0).Windows[0]
	if snap.Epoch != 1 || snap.CrcFail != 5 || snap.CrcPass != 0 {
		t.Errorf("after second rotation: %+v, want epoch 1 with 5 fails", snap)
	}
	if snap.Bler != 100 {
		t.Errorf("window 1 Bler = %g, want 100", snap.Bler)
	}
}

func TestStragglerFoldsIntoLiveWindow(t *testing.T) {
	r := testRegistry(10)
	r.RecordResult(0, 5, 0, true, 100)
	r.RecordResult(0, 15, 0, true, 100) // rotates to epoch 1
	r.RecordResult(0, 5, 0, false, 0)   // straggler for epoch 0: folds into live
	snap := r.CellSnapshot(0).Windows[0]
	if snap.Epoch != 0 || snap.CrcPass != 1 || snap.CrcFail != 0 {
		t.Errorf("completed window = %+v, want epoch 0 with 1 pass", snap)
	}
	// The straggler fail is in the live window; force it out.
	r.RecordResult(0, 25, 0, true, 100)
	snap = r.CellSnapshot(0).Windows[0]
	if snap.Epoch != 1 || snap.CrcPass != 1 || snap.CrcFail != 1 {
		t.Errorf("live window after fold = %+v, want epoch 1 with 1 pass + 1 fail", snap)
	}
}

func TestSamplingGate(t *testing.T) {
	r := testRegistry()
	r.SetSampling(0)
	r.RecordResult(0, 0, 0, true, 100)
	r.RecordDTX(0, 1, 0)
	r.RecordSkipped(0, 2, 0)
	if c := r.CellSnapshot(0); c.Cumulative.Reliability != ReliabilityNoResults {
		t.Errorf("recording while disabled: %+v", c.Cumulative)
	}
	r.SetSampling(64) // any n >= 1 counts every event
	r.RecordResult(0, 0, 0, true, 100)
	if c := r.CellSnapshot(0); c.Cumulative.CrcPass != 1 {
		t.Errorf("sampling 64 should count every event: %+v", c.Cumulative)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.SetSampling(1)
	r.RecordResult(0, 0, 0, true, 100)
	r.RecordDTX(0, 0, 0)
	r.RecordSkipped(0, 0, 0)
	if r.Enabled() || r.Sampling() != 0 || r.Cells() != 0 || r.Windows() != nil {
		t.Error("nil registry accessors should report zero values")
	}
	if s := r.Snapshot(); s != nil {
		t.Errorf("nil Snapshot = %v", s)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
}

func TestUserOverflowFoldsIntoLastSlot(t *testing.T) {
	r := testRegistry()
	r.RecordResult(0, 0, 999, true, 100)
	r.RecordResult(0, 0, -1, false, 0)
	c := r.CellSnapshot(0)
	if c.OverflowEvents != 2 {
		t.Errorf("OverflowEvents = %d, want 2", c.OverflowEvents)
	}
	if len(c.Users) != 1 || c.Users[0].User != 7 {
		t.Fatalf("overflow should land in last slot: %+v", c.Users)
	}
	if u := c.Users[0].Cumulative; u.CrcPass != 1 || u.CrcFail != 1 {
		t.Errorf("last slot = %+v", u)
	}
	// Out-of-range cell is dropped, not panicking.
	r.RecordResult(9, 0, 0, true, 100)
}

// TestKPISteadyStateZeroAlloc pins the record-path invariant: once the
// registry is warm, recording any outcome at sampling 0, 1 or 64
// performs zero heap allocations — including subframes that cross a
// window rotation boundary.
func TestKPISteadyStateZeroAlloc(t *testing.T) {
	for _, sampling := range []int{0, 1, 64} {
		r := New(Config{Cells: 2, MaxUsers: 8, Windows: []int64{10, 100}})
		r.SetSampling(sampling)
		seq := int64(0)
		record := func() {
			r.RecordResult(0, seq, 0, true, 1000)
			r.RecordResult(0, seq, 1, false, 0)
			r.RecordDTX(1, seq, 2)
			r.RecordSkipped(1, seq, 3)
			seq += 7 // crosses the 10-subframe window every other call
		}
		record() // warm-up: first rotation state
		allocs := testing.AllocsPerRun(200, record)
		if allocs != 0 {
			t.Errorf("sampling=%d: %v allocs/op, want 0", sampling, allocs)
		}
	}
}

// TestSnapshotRecordRace hammers window rotation from recorders while
// snapshots run concurrently; run under -race this pins the
// lock/atomic discipline, and the final counts must be exact.
func TestSnapshotRecordRace(t *testing.T) {
	r := New(Config{Cells: 1, MaxUsers: 4, Windows: []int64{8}})
	r.SetSampling(1)
	const (
		recorders = 4
		perG      = 2000
	)
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				var sb strings.Builder
				_ = r.WritePrometheus(&sb)
			}
		}
	}()
	var recWG sync.WaitGroup
	for g := 0; g < recorders; g++ {
		recWG.Add(1)
		go func(g int) {
			defer recWG.Done()
			for i := 0; i < perG; i++ {
				seq := int64(g*perG + i)
				r.RecordResult(0, seq, g, i%3 != 0, 64)
			}
		}(g)
	}
	recWG.Wait()
	close(stop)
	snapWG.Wait()
	c := r.CellSnapshot(0).Cumulative
	if got := c.CrcPass + c.CrcFail; got != recorders*perG {
		t.Errorf("total blocks = %d, want %d", got, recorders*perG)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := testRegistry(10)
	for seq := int64(0); seq < 25; seq++ {
		r.RecordResult(0, seq, 0, seq%5 != 0, 120)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`ltephy_kpi_blocks_total{cell="0",outcome="crc_pass"} 20`,
		`ltephy_kpi_blocks_total{cell="0",outcome="crc_fail"} 5`,
		`ltephy_kpi_bits_total{cell="0"} 2400`,
		`ltephy_kpi_bler_percent{cell="0",window="cum"} 20`,
		`ltephy_kpi_bler_percent{cell="0",window="10"} 20`,
		`ltephy_kpi_blocks_total{cell="1",outcome="crc_pass"} 0`,
		"# TYPE ltephy_kpi_blocks_total counter",
		"# TYPE ltephy_kpi_bler_percent gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q\n%s", want, out)
		}
	}
}

func TestFetchHandler(t *testing.T) {
	r := testRegistry(10)
	for seq := int64(0); seq < 10; seq++ {
		r.RecordResult(1, seq, 3, true, 100)
	}
	h := FetchHandler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fetch", nil))
	var doc struct {
		Cells []CellFetch `json:"cells"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(doc.Cells))
	}
	if doc.Cells[1].Cumulative.CrcPass != 10 || doc.Cells[1].Cumulative.Throughput != 100 {
		t.Errorf("cell 1 = %+v", doc.Cells[1].Cumulative)
	}
	if doc.Cells[0].Cumulative.Reliability != ReliabilityNoResults {
		t.Errorf("cell 0 should be empty: %+v", doc.Cells[0].Cumulative)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fetch?cell=1", nil))
	doc.Cells = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cells) != 1 || doc.Cells[0].Cell != 1 {
		t.Errorf("?cell=1 filter: %+v", doc.Cells)
	}
	if len(doc.Cells[0].Users) != 1 || doc.Cells[0].Users[0].User != 3 {
		t.Errorf("per-user struct missing: %+v", doc.Cells[0].Users)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fetch?cell=9", nil))
	if rec.Code != 404 {
		t.Errorf("unknown cell: status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fetch?format=text", nil))
	text := rec.Body.String()
	if !strings.Contains(text, "cell=1 window=cum reliability=0") ||
		!strings.Contains(text, "cell=1 user=3 window=cum") {
		t.Errorf("text format:\n%s", text)
	}
}

func TestConfigDefaults(t *testing.T) {
	r := New(Config{})
	if r.Cells() != 1 {
		t.Errorf("Cells = %d, want 1", r.Cells())
	}
	if got := r.Windows(); len(got) != len(DefaultWindows) {
		t.Errorf("Windows = %v, want %v", got, DefaultWindows)
	}
	// Explicit empty (non-nil) windows means "no windows".
	r = New(Config{Windows: []int64{}})
	if len(r.Windows()) != 0 {
		t.Errorf("explicit empty windows = %v", r.Windows())
	}
	// Non-positive lengths dropped.
	r = New(Config{Windows: []int64{0, -5, 20}})
	if got := r.Windows(); len(got) != 1 || got[0] != 20 {
		t.Errorf("filtered windows = %v", got)
	}
}
