package kpi

// Checkpoint side of the KPI service: raw counter export/restore for
// live cell migration (DESIGN.md §13). A migrating cell's cumulative
// counters travel inside the fronthaul checkpoint so the fleet-wide
// CrcPass/CrcFail/Dtx/Skipped sums reconcile exactly across processes:
// the target restores the source's counts, the source clears them, and
// replayed subframes past the checkpoint sequence are re-counted exactly
// once by the deterministic admission replay.
//
// Tumbling windows are deliberately NOT checkpointed: they are
// short-horizon observability, restart empty on the target and converge
// within one window length. Cumulative counters are the reconciliation
// ledger and are exact.
//
// Everything here is cold path (once per migration/crash), so snapshots
// allocate freely.

import "math"

// Counters is one bucket's raw counter snapshot.
type Counters struct {
	CrcPass, CrcFail, Dtx, Skipped, Bits int64
}

// load snapshots an accumulator bucket.
func (c *counters) load() Counters {
	return Counters{
		CrcPass: c.crcPass.Load(),
		CrcFail: c.crcFail.Load(),
		Dtx:     c.dtx.Load(),
		Skipped: c.skipped.Load(),
		Bits:    c.bits.Load(),
	}
}

// store overwrites an accumulator bucket.
func (c *counters) store(v Counters) {
	c.crcPass.Store(v.CrcPass)
	c.crcFail.Store(v.CrcFail)
	c.dtx.Store(v.Dtx)
	c.skipped.Store(v.Skipped)
	c.bits.Store(v.Bits)
}

// IsZero reports whether every counter is zero.
func (c Counters) IsZero() bool {
	return c.CrcPass == 0 && c.CrcFail == 0 && c.Dtx == 0 && c.Skipped == 0 && c.Bits == 0
}

// UserCounters is one active user slot's cumulative counters.
type UserCounters struct {
	User int
	Counters
}

// CellState is one cell's checkpointable cumulative KPI state.
type CellState struct {
	// FirstSeq/LastSeq are the observed subframe span (math.MaxInt64/-1
	// when nothing was measured). Overflow counts events folded into the
	// last user slot.
	FirstSeq, LastSeq, Overflow int64
	// Cell is the cell-wide cumulative bucket.
	Cell Counters
	// Users holds every user slot with at least one event, ascending.
	Users []UserCounters
}

// ExportCell snapshots one cell's cumulative counters for a checkpoint.
// Cold path; call only while the cell is drained (no concurrent
// recorders for that cell), or the per-bucket loads may tear across
// events.
func (r *Registry) ExportCell(cell int) CellState {
	st := CellState{FirstSeq: math.MaxInt64, LastSeq: -1}
	if r == nil || cell < 0 || cell >= len(r.cells) {
		return st
	}
	c := &r.cells[cell]
	st.FirstSeq = c.firstSeq.Load()
	st.LastSeq = c.lastSeq.Load()
	st.Overflow = c.overflow.Load()
	st.Cell = c.acc.cum.load()
	for u := range c.users {
		if v := c.users[u].cum.load(); !v.IsZero() {
			st.Users = append(st.Users, UserCounters{User: u, Counters: v})
		}
	}
	return st
}

// resetWindows empties a scope's tumbling windows (live and last) so a
// restored cell starts its windows fresh.
func resetWindows(a *accum) {
	for i := range a.wins {
		w := &a.wins[i]
		w.mu.Lock()
		w.cur.store(Counters{})
		w.last.store(Counters{})
		w.epoch.Store(epochUnset)
		w.lastEpoch.Store(epochUnset)
		w.mu.Unlock()
	}
}

// RestoreCell overwrites one cell's cumulative counters with a
// checkpointed state: every user slot is zeroed first, the given slots
// installed, and the tumbling windows reset. Cold path; call only while
// the cell is not being recorded into.
func (r *Registry) RestoreCell(cell int, st CellState) {
	if r == nil || cell < 0 || cell >= len(r.cells) {
		return
	}
	c := &r.cells[cell]
	c.firstSeq.Store(st.FirstSeq)
	c.lastSeq.Store(st.LastSeq)
	c.overflow.Store(st.Overflow)
	c.acc.cum.store(st.Cell)
	resetWindows(&c.acc)
	for u := range c.users {
		c.users[u].cum.store(Counters{})
		resetWindows(&c.users[u])
	}
	for _, uc := range st.Users {
		if uc.User >= 0 && uc.User < len(c.users) {
			c.users[uc.User].cum.store(uc.Counters)
		}
	}
}

// ResetCell zeroes one cell's counters entirely (migration release on
// the source process: the checkpoint carried the counts to the target,
// so keeping them here would double-book the fleet rollup).
func (r *Registry) ResetCell(cell int) {
	r.RestoreCell(cell, CellState{FirstSeq: math.MaxInt64, LastSeq: -1})
}
