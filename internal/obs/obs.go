// Package obs is the benchmark's allocation-free telemetry layer: the
// instrument the source paper's measurement study is built from, kept
// always compiled-in and cheap enough to leave on.
//
// The paper's primary artifacts are per-worker activity (Eqs. 1-2),
// per-core task timelines (Figs. 4-5) and estimated-vs-measured workload
// (Fig. 12). This package captures the raw material for all three while
// the system runs:
//
//   - per-worker fixed-capacity event rings (preallocated, wraparound
//     overwrite) holding span events for every stage run, steal, nap and
//     user pickup — exported as a Chrome trace_event timeline;
//   - per-stage latency histograms with power-of-two bucket boundaries
//     (fixed arrays of atomic counters);
//   - per-subframe deadline accounting against the DELTA dispatch budget
//     (miss counters, worst-case lateness, lateness histogram);
//   - online estimator-error tracking pairing each subframe's Eq. 4
//     estimate with the activity actually measured for its dispatch
//     period — the live form of the paper's Fig. 12 comparison.
//
// # Cost discipline
//
// Everything is gated by one atomic sampling knob. Sampling 0 (the
// default) disables recording behind a single predictable branch per
// event — the hot path pays one atomic load. Sampling N >= 1 feeds every
// event into the histograms and deadline counters (plain atomic adds)
// and every N-th event into the worker's ring. No code path in this
// package allocates after construction: rings, histograms and trackers
// are fixed-size, so the scheduler's steady-state zero-allocation
// invariant (TestSteadyStateZeroAlloc) holds with telemetry enabled.
//
// Timestamps are monotonic nanoseconds from the package clock
// (Nanotime), deliberately outside the bit-exact receiver packages so
// the determinism analyzer's no-wall-clock rule keeps holding there.
package obs

import "sync/atomic"

// Stage classes label span events and select the latency histogram. The
// first four values align, by construction, with the index order of
// uplink.UserJob.Stages() — the scheduler converts a stage index straight
// into a class (sched.TestStageClassAlignment pins the correspondence).
const (
	StageChanEst = iota
	StageWeights
	StageCombine
	StageBackend
	// StageInit is the user-thread pickup: job initialisation before the
	// first stage runs (the paper's user-thread overhead).
	StageInit
	// NumStages sizes per-stage arrays.
	NumStages
)

// StageNames are the exporter labels for the stage classes.
var StageNames = [NumStages]string{"chanest", "weights", "combine-despread", "backend", "init"}

// Event kinds.
const (
	// KindStage is a span covering one stage task execution.
	KindStage uint8 = iota
	// KindSteal is an instant event marking a successful steal.
	KindSteal
	// KindNap is a span covering one nap period (deactivated or idle
	// worker).
	KindNap
	// KindAdmit is an instant event marking a fronthaul admission decision
	// that accepted at least one user (Worker = cell, Seq = subframe,
	// User = admitted count, Task = rejected count).
	KindAdmit
	// KindShed is an instant event marking a whole subframe shed by the
	// fronthaul admission controller (late, overload, or backpressure).
	KindShed
	numKinds
)

// KindNames are the exporter labels for event kinds.
var KindNames = [numKinds]string{"stage", "steal", "nap", "admit", "shed"}

// DefaultRingDepth is the per-worker event-ring capacity used when the
// caller does not choose one: at ~40 bytes per event this is ~80 KiB per
// worker, holding on the order of a hundred multi-user subframes of
// spans — several paper-Fig.-4/5 windows.
const DefaultRingDepth = 2048

// Registry ties the telemetry of one worker pool together: a recorder
// (ring) per worker, the shared per-stage histograms, deadline
// accounting and estimator-error tracking, all gated by one sampling
// knob. Construct with New; all methods are safe for concurrent use.
type Registry struct {
	// sampling is the single gate: 0 = off, N >= 1 = histograms and
	// counters on every event, ring capture of every N-th event per
	// worker.
	sampling atomic.Int64

	stages   [NumStages]Histogram
	turbo    CountHist
	deadline DeadlineTracker
	est      EstimatorTracker
	workers  []WorkerRecorder
}

// New returns a registry with `workers` recorders whose rings hold
// ringDepth events each (DefaultRingDepth when <= 0). Sampling starts
// at 0: everything is preallocated but recording is off.
func New(workers, ringDepth int) *Registry {
	if workers < 0 {
		workers = 0
	}
	if ringDepth <= 0 {
		ringDepth = DefaultRingDepth
	}
	r := &Registry{workers: make([]WorkerRecorder, workers)}
	for i := range r.workers {
		w := &r.workers[i]
		w.reg = r
		w.id = int16(i)
		w.ring.init(ringDepth)
	}
	r.deadline.init()
	return r
}

// SetSampling sets the knob: 0 disables recording, n >= 1 records every
// event into histograms/counters and every n-th event into the rings.
// Negative values clamp to 0.
func (r *Registry) SetSampling(n int) {
	if n < 0 {
		n = 0
	}
	r.sampling.Store(int64(n))
}

// Sampling returns the current knob value.
func (r *Registry) Sampling() int { return int(r.sampling.Load()) }

// Enabled reports whether any recording is on — the same single-load
// check the recording fast paths use.
func (r *Registry) Enabled() bool { return r.sampling.Load() != 0 }

// Workers returns the number of worker recorders.
func (r *Registry) Workers() int { return len(r.workers) }

// Worker returns worker i's recorder. The recorder's recording methods
// must only be called from that worker's goroutine; snapshots may be
// taken from anywhere.
func (r *Registry) Worker(i int) *WorkerRecorder { return &r.workers[i] }

// StageHist returns the latency histogram of a stage class.
func (r *Registry) StageHist(stage uint8) *Histogram { return &r.stages[stage] }

// TurboHist returns the realized turbo half-iteration histogram: one
// observation per decoded user in TurboFull mode, recording how many
// half-iterations CRC-gated early termination actually ran — the live
// form of the iteration-count figure the decode cost model consumes.
func (r *Registry) TurboHist() *CountHist { return &r.turbo }

// Deadline returns the deadline accountant.
func (r *Registry) Deadline() *DeadlineTracker { return &r.deadline }

// Estimator returns the estimator-error tracker.
func (r *Registry) Estimator() *EstimatorTracker { return &r.est }

// Events snapshots every worker ring into one freshly allocated slice,
// ordered by worker then by record order (per-worker timestamp order).
// Cold path: exporters and tests only.
func (r *Registry) Events() []Event {
	var total int
	for i := range r.workers {
		total += r.workers[i].ring.Len()
	}
	out := make([]Event, 0, total)
	for i := range r.workers {
		out = r.workers[i].ring.Snapshot(out)
	}
	return out
}

// WorkerRecorder is the single-writer recording front-end of one worker:
// its event ring plus the sampling countdown. Recording methods must
// only be called by the owning worker goroutine; the ring itself is
// safe to snapshot concurrently.
type WorkerRecorder struct {
	reg  *Registry
	id   int16
	tick uint64 // events seen since the last ring capture (single-writer)
	ring EventRing
}

// Enabled reports whether recording is on — exposed so callers can skip
// preparing event details (extra clock reads, pprof label swaps) when
// telemetry is off.
func (w *WorkerRecorder) Enabled() bool { return w.reg.Enabled() }

// Ring returns the worker's event ring for snapshotting.
func (w *WorkerRecorder) Ring() *EventRing { return &w.ring }

// StageSpan records one stage task execution: the latency histogram on
// every call (when sampling is on), the ring on every sampling-th call.
func (w *WorkerRecorder) StageSpan(stage uint8, seq int64, user, task int32, start, end int64) {
	s := w.reg.sampling.Load()
	if s == 0 {
		return
	}
	w.reg.stages[stage].Observe(end - start)
	w.tick++
	if w.tick%uint64(s) != 0 {
		return
	}
	w.ring.Record(Event{
		Start: start, End: end, Seq: seq,
		User: user, Task: task, Worker: w.id,
		Kind: KindStage, Stage: stage,
	})
}

// Span records a non-stage span (naps) subject to the same sampling.
func (w *WorkerRecorder) Span(kind uint8, start, end int64) {
	s := w.reg.sampling.Load()
	if s == 0 {
		return
	}
	w.tick++
	if w.tick%uint64(s) != 0 {
		return
	}
	w.ring.Record(Event{
		Start: start, End: end, Seq: -1,
		User: -1, Task: -1, Worker: w.id,
		Kind: kind,
	})
}

// Instant records a point event (steals) subject to the same sampling.
func (w *WorkerRecorder) Instant(kind uint8, now int64) { w.Span(kind, now, now) }

// TurboHalfIters records one user's realized turbo half-iteration count
// into the shared histogram (when sampling is on). Zero counts — users
// decoded outside TurboFull mode — are skipped so the histogram reads as
// a per-turbo-decode distribution.
func (w *WorkerRecorder) TurboHalfIters(n int) {
	if n == 0 || w.reg.sampling.Load() == 0 {
		return
	}
	w.reg.turbo.Observe(int64(n))
}
