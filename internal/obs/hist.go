package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets sizes the latency histograms: bucket b counts durations
// whose bit length is b, i.e. [2^(b-1), 2^b) nanoseconds (bucket 0 holds
// zero-length spans). 40 buckets cover up to ~9 minutes — far beyond any
// receiver span; longer durations clamp into the last bucket.
const HistBuckets = 40

// Histogram is a fixed-array latency histogram with power-of-two bucket
// boundaries and atomic counters: Observe is lock-free, allocation-free
// and safe for any number of concurrent writers. The zero value is
// ready to use.
type Histogram struct {
	counts [HistBuckets]atomic.Int64
	sum    atomic.Int64 // total observed nanoseconds
	count  atomic.Int64
}

// Observe records one duration in nanoseconds (negative clamps to 0).
func (h *Histogram) Observe(nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	b := bits.Len64(uint64(nanos))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.counts[b].Add(1)
	h.sum.Add(nanos)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNanos returns the total observed nanoseconds.
func (h *Histogram) SumNanos() int64 { return h.sum.Load() }

// Bucket returns the count of bucket b.
func (h *Histogram) Bucket(b int) int64 { return h.counts[b].Load() }

// BucketUpperNanos returns the exclusive upper bound of bucket b in
// nanoseconds (2^b; 1 for bucket 0, which holds only zero).
func BucketUpperNanos(b int) int64 { return int64(1) << uint(b) }

// MaxBucket returns the highest non-empty bucket index, or -1 when the
// histogram is empty — a cheap worst-case latency bound.
func (h *Histogram) MaxBucket() int {
	for b := HistBuckets - 1; b >= 0; b-- {
		if h.counts[b].Load() > 0 {
			return b
		}
	}
	return -1
}

// CountHistBuckets sizes CountHist: linear unit-width buckets 0..n-1 with
// the last bucket absorbing overflow. 33 covers the turbo decoder's
// half-iteration range (2 per full iteration, iteration caps well under
// 16) with exact resolution.
const CountHistBuckets = 33

// CountHist is a fixed-array histogram for small non-negative integer
// counts (turbo half-iterations realized per transport block): exact
// unit-width buckets, atomic counters, allocation-free, any number of
// concurrent writers. The zero value is ready to use.
type CountHist struct {
	counts [CountHistBuckets]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one count (negative clamps to 0, large values clamp
// into the last bucket).
func (h *CountHist) Observe(n int64) {
	if n < 0 {
		n = 0
	}
	b := n
	if b >= CountHistBuckets {
		b = CountHistBuckets - 1
	}
	h.counts[b].Add(1)
	h.sum.Add(n)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *CountHist) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed counts.
func (h *CountHist) Sum() int64 { return h.sum.Load() }

// Bucket returns the count of exact value b (the last bucket also holds
// every overflow observation).
func (h *CountHist) Bucket(b int) int64 { return h.counts[b].Load() }

// Mean returns the average observed count (NaN-free: 0 when empty).
func (h *CountHist) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}
