package obs

import "sync"

// Event is one telemetry record: a span (Kind stage/nap) or instant
// (steal) on one worker's timeline. Timestamps are Nanotime readings —
// or, for the discrete-event simulator's timeline, virtual nanoseconds.
// The struct is fixed-size and value-copied; rings preallocate their
// full capacity at construction.
type Event struct {
	Start, End int64
	// Seq is the subframe sequence number (-1 when not applicable).
	Seq int64
	// User is the user ID within the subframe (-1 when not applicable).
	User int32
	// Task is the task index within the stage (-1 when not applicable).
	Task int32
	// Worker is the recording worker (native pool) or simulated core.
	Worker int16
	Kind   uint8
	Stage  uint8
}

// Duration returns the span length in nanoseconds.
func (e Event) Duration() int64 { return e.End - e.Start }

// Name returns the exporter label: the stage name for stage spans, the
// kind name otherwise.
func (e Event) Name() string {
	if e.Kind == KindStage {
		return StageNames[e.Stage]
	}
	return KindNames[e.Kind]
}

// EventRing is a fixed-capacity ring of events: one writer appends,
// wrapping around and overwriting the oldest entries; any goroutine may
// snapshot. The buffer is preallocated once (init/NewEventRing) and the
// record path performs no allocation.
//
// A plain mutex guards the ring rather than a seqlock: the lock is
// uncontended in steady state (the only other acquirer is an exporter
// snapshot), an uncontended Lock/Unlock costs tens of nanoseconds
// against stage spans of tens of microseconds, and it keeps the ring
// exactly race-free under the race detector — TestRingConcurrentRecordSnapshot
// hammers record against snapshot with -race.
type EventRing struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever recorded; buf[total%len] is the next slot
}

// NewEventRing returns a ring holding the last `depth` events
// (DefaultRingDepth when depth <= 0).
func NewEventRing(depth int) *EventRing {
	r := &EventRing{}
	r.init(depth)
	return r
}

func (r *EventRing) init(depth int) {
	if depth <= 0 {
		depth = DefaultRingDepth
	}
	r.buf = make([]Event, depth)
	r.total = 0
}

// Record appends one event, overwriting the oldest when full. The
// critical section is one fixed-size struct store into a preallocated
// ring; contention is bounded by the sampling countdown (most hot-path
// calls are gated off by Enabled).
//
//ltephy:blocking-ok
func (r *EventRing) Record(e Event) {
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = e
	r.total++
	r.mu.Unlock()
}

// Len returns the number of events currently retained.
func (r *EventRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded (monotonic; exceeds
// Len once the ring has wrapped).
func (r *EventRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot appends the retained events to dst in record order (oldest
// first — per-worker timestamp order, since each ring has one writer
// recording completed spans) and returns the extended slice.
func (r *EventRing) Snapshot(dst []Event) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	if r.total > n {
		start = r.total - n
	}
	for i := start; i < r.total; i++ {
		dst = append(dst, r.buf[i%n])
	}
	return dst
}
