package params

import (
	"fmt"
	"math"

	"ltephy/internal/rng"
	"ltephy/internal/uplink"
)

// Diurnal models a day in the life of a base station: traffic follows a
// smooth day/night curve (nearly idle in the small hours, peaking in the
// evening), instead of the paper's stress-test triangular ramp. The
// paper's conclusions argue its evaluation is "overly pessimistic" because
// real stations average ~25% load with long low-load nights; this model
// quantifies that claim (the TableDiurnal experiment).
//
// Load modulates both the PRB pool in play and the layer/modulation
// probability, so night traffic is sparse QPSK and the evening peak is
// dense high-order modulation.
type Diurnal struct {
	seed uint64
	// SubframesPerDay compresses 24 hours into this many subframes.
	subframesPerDay int64
	// PeakLoad and FloorLoad bound the day curve (fractions of full load).
	peakLoad, floorLoad float64
	r                   *rng.RNG
	sf                  int64
}

// NewDiurnal returns a day-curve model compressing 24 hours into
// subframesPerDay subframes. Typical parameters: floor 0.05 (night),
// peak 0.6 (evening busy hour) — averaging near the ~25% the paper calls
// typical.
func NewDiurnal(seed uint64, subframesPerDay int, floorLoad, peakLoad float64) (*Diurnal, error) {
	if subframesPerDay < 24 {
		return nil, fmt.Errorf("params: %d subframes cannot represent a day", subframesPerDay)
	}
	if floorLoad < 0 || peakLoad > 1 || floorLoad >= peakLoad {
		return nil, fmt.Errorf("params: load bounds [%g, %g] invalid", floorLoad, peakLoad)
	}
	m := &Diurnal{
		seed:            seed,
		subframesPerDay: int64(subframesPerDay),
		peakLoad:        peakLoad,
		floorLoad:       floorLoad,
	}
	m.Reset()
	return m, nil
}

// Load returns the relative load (0..1) at a subframe index: a raised
// cosine with its minimum at 04:00 and maximum at 16:00.
func (m *Diurnal) Load(sf int64) float64 {
	frac := float64(sf%m.subframesPerDay) / float64(m.subframesPerDay) // 0 = midnight
	phase := 2 * math.Pi * (frac - 4.0/24)
	shape := (1 - math.Cos(phase)) / 2 // 0 at 04:00, 1 at 16:00
	return m.floorLoad + (m.peakLoad-m.floorLoad)*shape
}

// Next implements Model.
func (m *Diurnal) Next() []uplink.UserParams {
	load := m.Load(m.sf)
	m.sf++
	pool := int(load * float64(uplink.MaxPRBPool))
	if pool < uplink.MinPRB {
		pool = uplink.MinPRB
	}
	return drawUsers(m.r, pool, load)
}

// Reset implements Model.
func (m *Diurnal) Reset() {
	m.r = rng.New(m.seed)
	m.sf = 0
}

// drawUsers is the paper's Fig. 6 + Fig. 10 user generator, shared by the
// Random and Diurnal models: fill a PRB pool with up to MaxUsers users
// whose layers/modulation escalate with prob.
func drawUsers(r *rng.RNG, pool int, prob float64) []uplink.UserParams {
	remaining := pool
	var users []uplink.UserParams
	for len(users) < uplink.MaxUsers && remaining > 0 {
		userPRB := int(float64(pool) * r.Float64())
		switch d := r.Float64(); {
		case d < 0.4:
			userPRB /= 8
		case d < 0.6:
			userPRB /= 4
		case d < 0.9:
			userPRB /= 2
		}
		if userPRB < uplink.MinPRB {
			userPRB = uplink.MinPRB
		}
		if userPRB > remaining {
			userPRB = remaining
		}
		if userPRB < uplink.MinPRB {
			break
		}
		remaining -= userPRB
		users = append(users, uplink.UserParams{
			ID:     len(users),
			PRB:    userPRB,
			Layers: drawLayers(r, prob),
			Mod:    drawModulation(r, prob),
		})
	}
	return users
}
