// Package params implements the benchmark's input parameter models: the
// functions that decide, for each subframe, how many users transmit and
// with which PRB allocation, layer count and modulation.
//
// It reproduces the paper's two models:
//
//   - Model (Section V-A, Figs. 6 and 10): a random user/PRB draw with a
//     probability ramp that linearly raises and then lowers the chance of
//     extra layers and higher-order modulation over 68,000 subframes,
//     producing ~50% average load with rapid per-subframe variation.
//   - Steady (Section VI-A): a single user with fixed parameters repeated
//     every subframe, used to calibrate the workload estimator.
//
// The package mirrors the paper's init_parameter_model /
// uplink_parameters C interface as a Go interface with New* constructors.
package params

import (
	"fmt"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
)

// Model produces the scheduled users for successive subframes. A Model is
// stateful (it owns its RNG and ramp position); call Next once per
// subframe. Implementations are not safe for concurrent use — the
// maintenance thread is the only caller, as in the paper.
type Model interface {
	// Next returns the user parameters for the next subframe.
	Next() []uplink.UserParams
	// Reset rewinds the model to subframe zero with its original seed, so
	// a trace can be replayed identically (serial-vs-parallel checks).
	Reset()
}

// Paper-model constants (Fig. 6 and Section V-A).
const (
	// RampStep is how often the layer/modulation probability changes:
	// "increased/decreased every 200th subframe".
	RampStep = 200
	// RampLength is the subframe count of one ramp direction: "linearly
	// increased over the first 34,000 subframes".
	RampLength = 34000
	// TraceLength is a full up-then-down sweep: 68,000 subframes (340 s at
	// the paper's 5 ms dispatch period).
	TraceLength = 2 * RampLength
	// MinProb and MaxProb bound the ramp: "from a probability of 0.6% to a
	// probability of 100%".
	MinProb = 0.006
	MaxProb = 1.0
)

// RampProbability returns the layer/modulation probability for a subframe
// index, following the paper's triangular, step-quantised ramp. Indexes
// beyond TraceLength wrap, so arbitrarily long runs repeat the 340 s sweep.
func RampProbability(subframe int64) float64 {
	s := subframe % TraceLength
	if s < 0 {
		s += TraceLength
	}
	step := (s / RampStep) * RampStep // quantise to 200-subframe steps
	var frac float64
	if step < RampLength {
		frac = float64(step) / float64(RampLength)
	} else {
		frac = float64(TraceLength-step) / float64(RampLength)
	}
	return MinProb + (MaxProb-MinProb)*frac
}

// Random is the paper's Section V-A parameter model.
type Random struct {
	seed      uint64
	timeScale int64
	pool      int
	r         *rng.RNG
	sf        int64
}

// NewRandom returns the paper's random model with the given seed.
func NewRandom(seed uint64) *Random {
	m := &Random{seed: seed, timeScale: 1, pool: uplink.MaxPRBPool}
	m.Reset()
	return m
}

// SetPool overrides the schedulable PRB pool (the paper's MAX_PRB = 200).
// The paper's conclusions note that real base stations average ~25% load —
// half the evaluation model's ~50% — and predict larger savings there; a
// pool of 100 PRBs reproduces that operating point. Returns the model for
// chaining.
func (m *Random) SetPool(pool int) *Random {
	if pool < uplink.MinPRB {
		pool = uplink.MinPRB
	}
	if pool > uplink.MaxPRBPool {
		pool = uplink.MaxPRBPool
	}
	m.pool = pool
	return m
}

// NewRandomCompressed returns the random model with the probability ramp
// compressed by the given factor: subframe s uses the ramp value of
// subframe s*factor, so the full 68,000-subframe load sweep fits into
// 68,000/factor subframes. Quick experiment presets use this to preserve
// the workload shape (and hence the Table I/II averages) at a fraction of
// the runtime; factor 1 is the paper's exact model.
func NewRandomCompressed(seed uint64, factor int) *Random {
	if factor < 1 {
		factor = 1
	}
	m := &Random{seed: seed, timeScale: int64(factor), pool: uplink.MaxPRBPool}
	m.Reset()
	return m
}

// Reset implements Model.
func (m *Random) Reset() {
	m.r = rng.New(m.seed)
	m.sf = 0
}

// Subframe returns the index of the subframe Next will generate next.
func (m *Random) Subframe() int64 { return m.sf }

// Next implements the pseudocode of Fig. 6 with line 16 replaced by
// Fig. 10: users are drawn until the PRB pool or the user limit is
// exhausted; each user's PRB count is a skewed random share of the pool,
// and its layers/modulation are driven by the ramp probability.
func (m *Random) Next() []uplink.UserParams {
	prob := RampProbability(m.sf * m.timeScale)
	m.sf++
	return drawUsers(m.r, m.pool, prob)
}

// drawLayers implements Fig. 10 lines 2-11: three independent chances to
// add a layer.
func drawLayers(r *rng.RNG, prob float64) int {
	layers := 1
	for i := 0; i < uplink.MaxLayers-1; i++ {
		if prob > r.Float64() {
			layers++
		}
	}
	return layers
}

// drawModulation implements Fig. 10 lines 12-18: QPSK by default, 16-QAM
// with probability prob, 64-QAM with probability prob given 16-QAM.
func drawModulation(r *rng.RNG, prob float64) modulation.Scheme {
	mod := modulation.QPSK
	if prob > r.Float64() {
		mod = modulation.QAM16
		if prob > r.Float64() {
			mod = modulation.QAM64
		}
	}
	return mod
}

// Steady is the calibration model of Section VI-A: one user with fixed
// parameters every subframe ("a steady state with the same user parameter
// configuration").
type Steady struct {
	P uplink.UserParams
}

// NewSteady returns a steady-state model for the given fixed parameters.
func NewSteady(p uplink.UserParams) (*Steady, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("params: %w", err)
	}
	return &Steady{P: p}, nil
}

// Next implements Model.
func (m *Steady) Next() []uplink.UserParams {
	p := m.P
	p.ID = 0
	return []uplink.UserParams{p}
}

// Reset implements Model (Steady is stateless).
func (m *Steady) Reset() {}

// Trace records the output of a model so the identical subframe sequence
// can be replayed — the paper's verification scheme processes "the same
// sequence of subframes" through the serial and parallel receivers.
type Trace struct {
	Subframes [][]uplink.UserParams
	pos       int
}

// Record captures n subframes from the model.
func Record(m Model, n int) *Trace {
	t := &Trace{Subframes: make([][]uplink.UserParams, n)}
	for i := range t.Subframes {
		t.Subframes[i] = m.Next()
	}
	return t
}

// Next implements Model; it panics when the trace is exhausted, which
// indicates the run length and the trace length disagree — a caller bug.
func (t *Trace) Next() []uplink.UserParams {
	if t.pos >= len(t.Subframes) {
		panic(fmt.Sprintf("params: trace exhausted after %d subframes", len(t.Subframes)))
	}
	users := t.Subframes[t.pos]
	t.pos++
	return users
}

// Reset implements Model.
func (t *Trace) Reset() { t.pos = 0 }
