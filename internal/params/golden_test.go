package params

import (
	"hash/fnv"
	"testing"
)

// traceHash folds a trace prefix into a stable digest.
func traceHash(m Model, n int) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 4)
	write := func(v int) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf)
	}
	for i := 0; i < n; i++ {
		users := m.Next()
		write(len(users))
		for _, u := range users {
			write(u.PRB)
			write(u.Layers)
			write(int(u.Mod))
		}
	}
	return h.Sum64()
}

// TestGoldenTraces pins the parameter models' exact output: every
// experiment in EXPERIMENTS.md is reported against these sequences, so an
// accidental change to the RNG or the drawing logic must fail loudly, not
// silently shift all the numbers.
func TestGoldenTraces(t *testing.T) {
	cases := []struct {
		name string
		m    Model
		want uint64
	}{
		{"random-seed1", NewRandom(1), 0xb8d1132170001b98},
		{"random-seed2", NewRandom(2), 0xeaa22ba8fa1ee71d},
		{"compressed20-seed1", NewRandomCompressed(1, 20), 0x36fbb834af843b6c},
		{"pool100-seed1", NewRandom(1).SetPool(100), 0x9e1563794ff9d97c},
	}
	for _, tc := range cases {
		if got := traceHash(tc.m, 2000); got != tc.want {
			t.Errorf("%s: trace hash %#x, want %#x — the parameter model's output changed; "+
				"if intentional, update the golden values AND rerun EXPERIMENTS.md",
				tc.name, got, tc.want)
		}
	}
	d, err := NewDiurnal(1, 2400, 0.05, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := traceHash(d, 2000), uint64(0x6a7567dd79419c79); got != want {
		t.Errorf("diurnal-seed1: trace hash %#x, want %#x", got, want)
	}
}
