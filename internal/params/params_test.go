package params

import (
	"math"
	"testing"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/uplink"
)

func TestRampProbabilityShape(t *testing.T) {
	if p := RampProbability(0); math.Abs(p-MinProb) > 1e-12 {
		t.Errorf("prob(0) = %g, want %g", p, MinProb)
	}
	if p := RampProbability(RampLength); math.Abs(p-MaxProb) > 1e-12 {
		t.Errorf("prob(34000) = %g, want %g", p, MaxProb)
	}
	// Quantised every 200 subframes.
	if RampProbability(100) != RampProbability(199) {
		t.Error("probability changed within a 200-subframe step")
	}
	if RampProbability(199) >= RampProbability(200) {
		t.Error("probability did not increase at the step boundary")
	}
	// Symmetric descent and periodic wrap.
	if a, b := RampProbability(RampLength-200), RampProbability(RampLength+200); math.Abs(a-b) > 1e-12 {
		t.Errorf("ramp not symmetric around the peak: %g vs %g", a, b)
	}
	if a, b := RampProbability(5000), RampProbability(5000+TraceLength); a != b {
		t.Errorf("ramp not periodic: %g vs %g", a, b)
	}
	// Monotone nondecreasing over the up ramp.
	prev := -1.0
	for s := int64(0); s < RampLength; s += RampStep {
		p := RampProbability(s)
		if p < prev {
			t.Fatalf("ramp decreased at %d", s)
		}
		prev = p
	}
}

func TestRandomModelConstraints(t *testing.T) {
	m := NewRandom(1)
	for sf := 0; sf < 5000; sf++ {
		users := m.Next()
		if len(users) > uplink.MaxUsers {
			t.Fatalf("subframe %d: %d users", sf, len(users))
		}
		total := 0
		for i, u := range users {
			if err := u.Validate(); err != nil {
				t.Fatalf("subframe %d user %d: %v", sf, i, err)
			}
			if u.ID != i {
				t.Fatalf("subframe %d: user %d has ID %d", sf, i, u.ID)
			}
			total += u.PRB
		}
		if total > uplink.MaxPRBPool {
			t.Fatalf("subframe %d: %d PRBs allocated, pool is %d", sf, total, uplink.MaxPRBPool)
		}
		if len(users) == 0 {
			t.Fatalf("subframe %d: no users scheduled", sf)
		}
	}
}

func TestRandomModelDeterminism(t *testing.T) {
	a, b := NewRandom(7), NewRandom(7)
	for sf := 0; sf < 200; sf++ {
		ua, ub := a.Next(), b.Next()
		if len(ua) != len(ub) {
			t.Fatal("same seed diverged in user count")
		}
		for i := range ua {
			if ua[i] != ub[i] {
				t.Fatal("same seed diverged in user params")
			}
		}
	}
	a.Reset()
	c := NewRandom(7)
	for sf := 0; sf < 50; sf++ {
		ua, uc := a.Next(), c.Next()
		for i := range ua {
			if ua[i] != uc[i] {
				t.Fatal("Reset did not rewind the model")
			}
		}
	}
}

// TestRandomModelDistributions reproduces the qualitative content of the
// paper's Figs. 7-9: user counts span most of 1..10, PRBs vary widely with
// singles reaching near the pool size, and layers/modulation follow the
// ramp (all QPSK/1-layer at the start, all 64QAM/4-layer at the peak).
func TestRandomModelDistributions(t *testing.T) {
	m := NewRandom(3)
	userCounts := map[int]int{}
	maxSingle := 0
	for sf := 0; sf < 2000; sf++ {
		users := m.Next()
		userCounts[len(users)]++
		for _, u := range users {
			if u.PRB > maxSingle {
				maxSingle = u.PRB
			}
		}
	}
	if len(userCounts) < 5 {
		t.Errorf("user counts cover only %d distinct values; Fig. 7 shows wide variation", len(userCounts))
	}
	if maxSingle < 150 {
		t.Errorf("max single-user PRB %d; Fig. 8 shows values up to ~190", maxSingle)
	}

	// At the very start of the ramp (prob 0.6%) essentially everyone is
	// 1-layer QPSK.
	m.Reset()
	lowLayer, lowUsers := 0, 0
	for sf := 0; sf < 100; sf++ {
		for _, u := range m.Next() {
			lowUsers++
			if u.Layers == 1 && u.Mod == modulation.QPSK {
				lowLayer++
			}
		}
	}
	if float64(lowLayer) < 0.9*float64(lowUsers) {
		t.Errorf("at ramp start only %d/%d users are 1-layer QPSK", lowLayer, lowUsers)
	}

	// At the peak everyone has 4 layers and 64-QAM (prob = 1).
	m2 := NewRandom(4)
	for sf := 0; sf < RampLength; sf++ {
		m2.Next() // advance to the peak
	}
	for sf := 0; sf < 100; sf++ {
		for _, u := range m2.Next() {
			if u.Layers != uplink.MaxLayers || u.Mod != modulation.QAM64 {
				t.Fatalf("at ramp peak found %d layers %v", u.Layers, u.Mod)
			}
		}
	}
}

func TestSteadyModel(t *testing.T) {
	p := uplink.UserParams{ID: 9, PRB: 50, Layers: 2, Mod: modulation.QAM16}
	m, err := NewSteady(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		users := m.Next()
		if len(users) != 1 {
			t.Fatalf("steady model returned %d users", len(users))
		}
		if users[0].PRB != 50 || users[0].Layers != 2 || users[0].Mod != modulation.QAM16 {
			t.Fatalf("steady params drifted: %+v", users[0])
		}
		if users[0].ID != 0 {
			t.Errorf("steady user ID = %d, want 0", users[0].ID)
		}
	}
	if _, err := NewSteady(uplink.UserParams{PRB: 0, Layers: 1}); err == nil {
		t.Error("invalid steady params accepted")
	}
}

func TestTraceRecordReplay(t *testing.T) {
	trace := Record(NewRandom(11), 300)
	if len(trace.Subframes) != 300 {
		t.Fatalf("recorded %d subframes", len(trace.Subframes))
	}
	// Replay must equal a fresh model with the same seed.
	fresh := NewRandom(11)
	for i := 0; i < 300; i++ {
		a, b := trace.Next(), fresh.Next()
		if len(a) != len(b) {
			t.Fatal("trace diverged from model")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("trace diverged from model")
			}
		}
	}
	trace.Reset()
	if got := trace.Next(); len(got) == 0 {
		t.Error("trace empty after Reset")
	}
	trace.Reset()
	for i := 0; i < 300; i++ {
		trace.Next()
	}
	defer func() {
		if recover() == nil {
			t.Error("exhausted trace did not panic")
		}
	}()
	trace.Next()
}

// TestAverageLoadShape: the model is built so the PRB total stays high
// while layers/modulation sweep the load; average user count should sit in
// the middle of 1..10 (paper Fig. 7 shows a broad spread).
func TestAverageLoadShape(t *testing.T) {
	m := NewRandom(5)
	var users, subframes int
	for sf := 0; sf < TraceLength; sf += 25 {
		// Sample every 25th subframe like the paper's plots.
		for skip := 0; skip < 24; skip++ {
			m.Next()
		}
		users += len(m.Next())
		subframes++
	}
	avg := float64(users) / float64(subframes)
	if avg < 2 || avg > 9 {
		t.Errorf("average users/subframe = %.2f, expected mid-range", avg)
	}
}

func BenchmarkRandomNext(b *testing.B) {
	m := NewRandom(1)
	for i := 0; i < b.N; i++ {
		m.Next()
	}
}

func TestCompressedRampCoversFullSweep(t *testing.T) {
	// Factor 10: 6,800 subframes must sweep the ramp up to the peak and
	// back down, hitting max layers/modulation in the middle.
	m := NewRandomCompressed(2, 10)
	sawPeak := false
	for sf := 0; sf < TraceLength/10; sf++ {
		users := m.Next()
		mid := sf > 3200 && sf < 3600
		if mid {
			allMax := true
			for _, u := range users {
				if u.Layers != uplink.MaxLayers || u.Mod != modulation.QAM64 {
					allMax = false
				}
			}
			if allMax {
				sawPeak = true
			}
		}
	}
	if !sawPeak {
		t.Error("compressed ramp never reached the max-workload plateau")
	}
	// Factor 1 equals the plain model.
	a, b := NewRandom(5), NewRandomCompressed(5, 1)
	for i := 0; i < 100; i++ {
		ua, ub := a.Next(), b.Next()
		for j := range ua {
			if ua[j] != ub[j] {
				t.Fatal("factor-1 compressed model differs from plain model")
			}
		}
	}
}

func TestDiurnalModel(t *testing.T) {
	const perDay = 2400
	m, err := NewDiurnal(3, perDay, 0.05, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// Load curve: minimum near 04:00, maximum near 16:00, bounded.
	night := m.Load(perDay * 4 / 24)
	evening := m.Load(perDay * 16 / 24)
	if math.Abs(night-0.05) > 1e-9 || math.Abs(evening-0.6) > 1e-9 {
		t.Errorf("load extremes (%.3f, %.3f), want (0.05, 0.60)", night, evening)
	}
	for sf := int64(0); sf < perDay; sf += 7 {
		l := m.Load(sf)
		if l < 0.05-1e-9 || l > 0.6+1e-9 {
			t.Fatalf("load %g out of bounds at %d", l, sf)
		}
	}
	// Periodicity across days.
	if m.Load(10) != m.Load(10+perDay) {
		t.Error("day curve not periodic")
	}
	// Traffic volume tracks the curve: evening PRB totals well above night.
	prbAround := func(center int64) int {
		m.Reset()
		for i := int64(0); i < center-25; i++ {
			m.Next()
		}
		total := 0
		for i := 0; i < 50; i++ {
			for _, u := range m.Next() {
				total += u.PRB
			}
		}
		return total
	}
	nightPRB := prbAround(perDay * 4 / 24)
	dayPRB := prbAround(perDay * 16 / 24)
	if dayPRB < 3*nightPRB {
		t.Errorf("evening traffic %d not well above night traffic %d", dayPRB, nightPRB)
	}
	// Validity of every generated subframe.
	m.Reset()
	for sf := 0; sf < 500; sf++ {
		for _, u := range m.Next() {
			if err := u.Validate(); err != nil {
				t.Fatalf("subframe %d: %v", sf, err)
			}
		}
	}
	// Determinism.
	a, _ := NewDiurnal(9, perDay, 0.05, 0.6)
	b, _ := NewDiurnal(9, perDay, 0.05, 0.6)
	for i := 0; i < 50; i++ {
		ua, ub := a.Next(), b.Next()
		if len(ua) != len(ub) {
			t.Fatal("diurnal model not deterministic")
		}
	}
	// Invalid constructions.
	if _, err := NewDiurnal(1, 10, 0.1, 0.5); err == nil {
		t.Error("tiny day accepted")
	}
	if _, err := NewDiurnal(1, 2400, 0.5, 0.4); err == nil {
		t.Error("inverted bounds accepted")
	}
}
