package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ltephy/internal/obs"
	"ltephy/internal/params"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/phy/workspace"
	"ltephy/internal/power"
	"ltephy/internal/uplink"
)

func TestDequeLIFOAndFIFO(t *testing.T) {
	var d deque
	order := []int{}
	for i := 0; i < 5; i++ {
		i := i
		d.push(Task{fn: func(*workspace.Arena) { order = append(order, i) }})
	}
	// Owner pops newest first.
	ta, _ := d.pop()
	ta.fn(nil)
	// Thief steals oldest first.
	tb, _ := d.steal()
	tb.fn(nil)
	if order[0] != 4 || order[1] != 0 {
		t.Errorf("pop/steal order = %v, want [4 0]", order)
	}
	if d.size() != 3 {
		t.Errorf("size = %d, want 3", d.size())
	}
}

func TestDequeEmpty(t *testing.T) {
	var d deque
	if _, ok := d.pop(); ok {
		t.Error("pop on empty deque succeeded")
	}
	if _, ok := d.steal(); ok {
		t.Error("steal on empty deque succeeded")
	}
}

func TestDequeConcurrentStealing(t *testing.T) {
	var d deque
	const n = 10000
	var ran atomic.Int64
	for i := 0; i < n; i++ {
		d.push(Task{fn: func(*workspace.Arena) { ran.Add(1) }})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(owner bool) {
			defer wg.Done()
			for {
				var task Task
				var ok bool
				if owner {
					task, ok = d.pop()
				} else {
					task, ok = d.steal()
				}
				if !ok {
					return
				}
				task.fn(nil)
			}
		}(g == 0)
	}
	wg.Wait()
	if ran.Load() != n {
		t.Errorf("ran %d tasks, want %d (lost or duplicated)", ran.Load(), n)
	}
}

func TestDequeCompaction(t *testing.T) {
	var d deque
	for round := 0; round < 10; round++ {
		for i := 0; i < 200; i++ {
			d.push(Task{fn: func(*workspace.Arena) {}})
		}
		for i := 0; i < 200; i++ {
			if _, ok := d.steal(); !ok {
				t.Fatal("steal failed")
			}
		}
	}
	d.mu.Lock()
	if cap(d.tasks) > 1024 {
		t.Errorf("backing array grew to %d despite compaction", cap(d.tasks))
	}
	d.mu.Unlock()
}

func TestUserQueueFIFO(t *testing.T) {
	var q userQueue
	for i := int64(0); i < 5; i++ {
		q.enqueue(queuedUser{seq: i})
	}
	for i := int64(0); i < 5; i++ {
		u, ok := q.dequeue()
		if !ok || u.seq != i {
			t.Fatalf("dequeue %d: got %+v ok=%v", i, u, ok)
		}
	}
	if _, ok := q.dequeue(); ok {
		t.Error("dequeue on empty queue succeeded")
	}
}

func smallTrace(t *testing.T, n int) *params.Trace {
	t.Helper()
	// A compact trace: small PRBs keep test DSP cheap.
	var sfs [][]uplink.UserParams
	mods := []modulation.Scheme{modulation.QPSK, modulation.QAM16, modulation.QAM64}
	for i := 0; i < n; i++ {
		var users []uplink.UserParams
		for u := 0; u < 1+i%3; u++ {
			users = append(users, uplink.UserParams{
				ID:     u,
				PRB:    2 + (i+u)%4,
				Layers: 1 + (i+u)%2,
				Mod:    mods[(i+u)%3],
			})
		}
		sfs = append(sfs, users)
	}
	return &params.Trace{Subframes: sfs}
}

func testDispatcherConfig() DispatcherConfig {
	cfg := DefaultDispatcherConfig()
	cfg.Delta = time.Millisecond
	return cfg
}

// TestVerifySerialVsParallel is the paper's Section IV-D check: the
// parallel runtime must produce bit-identical results to the serial
// reference over the same subframe trace.
func TestVerifySerialVsParallel(t *testing.T) {
	poolCfg := DefaultPoolConfig()
	poolCfg.Workers = 8
	if err := Verify(poolCfg, testDispatcherConfig(), smallTrace(t, 30)); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyWithNapOnIdle(t *testing.T) {
	poolCfg := DefaultPoolConfig()
	poolCfg.Workers = 6
	poolCfg.NapOnIdle = true
	poolCfg.NapCheckPeriod = 50 * time.Microsecond
	if err := Verify(poolCfg, testDispatcherConfig(), smallTrace(t, 20)); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySingleWorker(t *testing.T) {
	poolCfg := DefaultPoolConfig()
	poolCfg.Workers = 1
	if err := Verify(poolCfg, testDispatcherConfig(), smallTrace(t, 10)); err != nil {
		t.Fatal(err)
	}
}

func TestPoolProcessSubframeBlocks(t *testing.T) {
	d := NewDispatcher(testDispatcherConfig())
	trace := smallTrace(t, 1)
	sf, err := d.Subframe(0, trace.Subframes[0])
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	cfg := DefaultPoolConfig()
	cfg.Workers = 4
	cfg.OnResult = col.Add
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.ProcessSubframe(sf)
	if col.Len() != len(sf.Users) {
		t.Errorf("got %d results after ProcessSubframe, want %d", col.Len(), len(sf.Users))
	}
}

func TestSetActiveWorkersMask(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.Workers = 4
	cfg.NapCheckPeriod = 100 * time.Microsecond
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.SetActiveWorkers(1)
	if pool.ActiveWorkers() != 1 {
		t.Fatalf("ActiveWorkers = %d", pool.ActiveWorkers())
	}
	// Give the deactivated workers time to start napping, then confirm nap
	// time accumulates on them and work still completes on the active one.
	time.Sleep(5 * time.Millisecond)
	d := NewDispatcher(testDispatcherConfig())
	trace := smallTrace(t, 4)
	for seq, users := range trace.Subframes {
		sf, err := d.Subframe(int64(seq), users)
		if err != nil {
			t.Fatal(err)
		}
		pool.ProcessSubframe(sf)
	}
	stats := pool.Stats()
	if stats[3].NapNanos == 0 {
		t.Error("masked worker accumulated no nap time")
	}
	// Clamp behaviour.
	pool.SetActiveWorkers(0)
	if pool.ActiveWorkers() != 1 {
		t.Errorf("SetActiveWorkers(0) gave %d, want clamp to 1", pool.ActiveWorkers())
	}
	pool.SetActiveWorkers(99)
	if pool.ActiveWorkers() != 4 {
		t.Errorf("SetActiveWorkers(99) gave %d, want clamp to 4", pool.ActiveWorkers())
	}
}

func TestWorkIsActuallyDistributed(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		// On a single-P runtime the user thread drains its own deque before
		// any other worker goroutine is scheduled, so steals legitimately
		// may never happen; distribution needs real parallelism.
		t.Skip("needs GOMAXPROCS >= 2 to observe stealing")
	}
	cfg := DefaultPoolConfig()
	cfg.Workers = 4
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	d := NewDispatcher(testDispatcherConfig())
	// One big user: its 16 chanest + 24 data tasks should spread.
	sf, err := d.Subframe(0, []uplink.UserParams{{ID: 0, PRB: 40, Layers: 4, Mod: modulation.QAM64}})
	if err != nil {
		t.Fatal(err)
	}
	pool.ProcessSubframe(sf)
	stats := pool.Stats()
	workersWithTasks := 0
	var totalTasks int64
	for _, s := range stats {
		if s.TasksRun > 0 {
			workersWithTasks++
		}
		totalTasks += s.TasksRun
	}
	if totalTasks != 16+48 {
		t.Errorf("total tasks run = %d, want 64 (16 chanest + 48 data)", totalTasks)
	}
	if workersWithTasks < 2 {
		t.Errorf("only %d workers ran tasks; stealing not happening", workersWithTasks)
	}
}

func TestActivityMetric(t *testing.T) {
	before := []WorkerStats{{BusyNanos: 0}, {BusyNanos: 0}}
	after := []WorkerStats{{BusyNanos: 5e8}, {BusyNanos: 5e8}}
	got := Activity(before, after, time.Second)
	if got < 0.49 || got > 0.51 {
		t.Errorf("Activity = %g, want 0.5", got)
	}
}

func TestDispatcherCacheReuse(t *testing.T) {
	cfg := testDispatcherConfig()
	cfg.CacheSets = 2
	d := NewDispatcher(cfg)
	p := uplink.UserParams{ID: 0, PRB: 3, Layers: 1, Mod: modulation.QPSK}
	seen := map[*uplink.UserData]int{}
	for i := 0; i < 6; i++ {
		sf, err := d.Subframe(int64(i), []uplink.UserParams{p})
		if err != nil {
			t.Fatal(err)
		}
		seen[sf.Users[0]]++
	}
	// Two generated sets, then round-robin reuse: at most 2 distinct
	// pointers should appear more than... note reuse may clone for ID, so
	// count distinct payload slices instead.
	payloads := map[*uint8]int{}
	for u := range seen {
		payloads[&u.Payload[0]]++
	}
	if len(payloads) != cfg.CacheSets {
		t.Errorf("distinct data realisations = %d, want %d", len(payloads), cfg.CacheSets)
	}
}

func TestDispatcherRunPaced(t *testing.T) {
	cfg := testDispatcherConfig()
	cfg.Delta = 2 * time.Millisecond
	d := NewDispatcher(cfg)
	trace := smallTrace(t, 10)
	if err := d.Pregenerate(trace); err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	poolCfg := DefaultPoolConfig()
	poolCfg.Workers = 4
	poolCfg.OnResult = col.Add
	pool, err := NewPool(poolCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	trace.Reset()
	var dispatched atomic.Int64
	wall, err := d.Run(pool, trace, RunOptions{
		Subframes:  10,
		OnDispatch: func(seq int64, sf *uplink.Subframe) { dispatched.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if dispatched.Load() != 10 {
		t.Errorf("OnDispatch fired %d times, want 10", dispatched.Load())
	}
	if wall < 18*time.Millisecond {
		t.Errorf("run finished in %v; pacing at 2 ms x 10 subframes not enforced", wall)
	}
	want := 0
	for _, users := range trace.Subframes {
		want += len(users)
	}
	if col.Len() != want {
		t.Errorf("collected %d results, want %d", col.Len(), want)
	}
}

// TestDispatcherRunUnpaced pins the injected-clock contract: with
// obs.UnpacedClock the identical dispatch loop runs pace-free — far
// faster than Subframes x Delta — while still delivering every result.
func TestDispatcherRunUnpaced(t *testing.T) {
	cfg := testDispatcherConfig()
	cfg.Delta = 50 * time.Millisecond // would pace a 10-subframe run to 500 ms
	cfg.Clock = obs.UnpacedClock{}
	d := NewDispatcher(cfg)
	trace := smallTrace(t, 10)
	if err := d.Pregenerate(trace); err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	poolCfg := DefaultPoolConfig()
	poolCfg.Workers = 4
	poolCfg.OnResult = col.Add
	pool, err := NewPool(poolCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	trace.Reset()
	wall, err := d.Run(pool, trace, RunOptions{Subframes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if wall >= 250*time.Millisecond {
		t.Errorf("unpaced run took %v; pacing was not removed (10 x 50 ms budget)", wall)
	}
	want := 0
	for _, users := range trace.Subframes {
		want += len(users)
	}
	if col.Len() != want {
		t.Errorf("collected %d results, want %d", col.Len(), want)
	}
}

func TestPoolRejectsBadConfig(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.Receiver.Antennas = 0
	if _, err := NewPool(cfg); err == nil {
		t.Error("invalid receiver config accepted")
	}
}

func TestCollectorSorted(t *testing.T) {
	c := NewCollector()
	c.Add(uplink.UserResult{Seq: 2, UserID: 0})
	c.Add(uplink.UserResult{Seq: 0, UserID: 1})
	c.Add(uplink.UserResult{Seq: 0, UserID: 0})
	got := c.Sorted()
	if got[0].Seq != 0 || got[0].UserID != 0 || got[1].UserID != 1 || got[2].Seq != 2 {
		t.Errorf("sorted order wrong: %+v", got)
	}
}

func BenchmarkPoolThroughput(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := DefaultPoolConfig()
		cfg.Workers = workers
		pool, err := NewPool(cfg)
		if err != nil {
			b.Fatal(err)
		}
		d := NewDispatcher(DefaultDispatcherConfig())
		sf, err := d.Subframe(0, []uplink.UserParams{
			{ID: 0, PRB: 20, Layers: 2, Mod: modulation.QAM16},
			{ID: 1, PRB: 20, Layers: 2, Mod: modulation.QAM16},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("workers"+string(rune('0'+workers)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool.ProcessSubframe(sf)
			}
		})
		pool.Close()
	}
}

// TestDriveActiveWorkers: an estimator hook masks workers per subframe on
// the native pool; processing still completes and masked workers nap.
func TestDriveActiveWorkers(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.Workers = 4
	cfg.NapCheckPeriod = 50 * time.Microsecond
	col := NewCollector()
	cfg.OnResult = col.Add
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// A fake estimator: tiny subframes get 1 core, others all 4.
	hook := DriveActiveWorkers(pool, func(users []uplink.UserParams) int {
		total := 0
		for _, p := range users {
			total += p.PRB
		}
		if total <= 4 {
			return 1
		}
		return 4
	})

	d := NewDispatcher(testDispatcherConfig())
	trace := smallTrace(t, 12)
	if err := d.Pregenerate(trace); err != nil {
		t.Fatal(err)
	}
	trace.Reset()
	masks := []int{}
	_, err = d.Run(pool, trace, RunOptions{
		Subframes: 12,
		OnDispatch: func(seq int64, sf *uplink.Subframe) {
			hook(seq, sf)
			masks = append(masks, pool.ActiveWorkers())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, users := range trace.Subframes {
		want += len(users)
	}
	if col.Len() != want {
		t.Errorf("collected %d results, want %d", col.Len(), want)
	}
	sawLow, sawHigh := false, false
	for _, m := range masks {
		if m == 1 {
			sawLow = true
		}
		if m == 4 {
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Errorf("mask never varied: %v", masks)
	}
}

// TestNativeNapPowerSavings is the paper's IDLE-vs-NONAP comparison run on
// the real goroutine runtime: with long idle gaps between subframes,
// nap-on-idle workers accumulate nap time and the as-if TILEPro64 power
// estimate drops well below the always-spinning configuration.
func TestNativeNapPowerSavings(t *testing.T) {
	measure := func(napOnIdle bool) float64 {
		cfg := DefaultPoolConfig()
		cfg.Workers = 4
		cfg.NapOnIdle = napOnIdle
		cfg.NapCheckPeriod = 200 * time.Microsecond
		pool, err := NewPool(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()

		dispCfg := testDispatcherConfig()
		dispCfg.Delta = 3 * time.Millisecond // tiny users + long gaps = mostly idle
		d := NewDispatcher(dispCfg)
		trace := smallTrace(t, 15)
		if err := d.Pregenerate(trace); err != nil {
			t.Fatal(err)
		}
		trace.Reset()

		before := pool.Stats()
		wall, err := d.Run(pool, trace, RunOptions{Subframes: 15})
		if err != nil {
			t.Fatal(err)
		}
		after := pool.Stats()

		busy := make([]int64, len(after))
		nap := make([]int64, len(after))
		for i := range after {
			busy[i] = after[i].BusyNanos - before[i].BusyNanos
			nap[i] = after[i].NapNanos - before[i].NapNanos
		}
		w, err := power.FromWorkerStats(busy, nap, wall.Nanoseconds(), power.Default())
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	spin := measure(false)
	napping := measure(true)
	if napping >= spin {
		t.Errorf("nap-on-idle as-if power %.2f W not below spinning %.2f W", napping, spin)
	}
	// With ~4 mostly idle cores the gap should be a visible fraction of the
	// 4 * (SpinW - napW) ~ 0.6 W ceiling.
	if spin-napping < 0.1 {
		t.Errorf("nap saving only %.3f W; idle detection not engaging", spin-napping)
	}
}

// TestNativeWorkloadScaling is Fig. 11 in miniature on the real runtime:
// measured busy time grows roughly linearly with the PRB allocation —
// the property the paper's workload estimator is built on, here verified
// against actual DSP execution rather than the simulator. Host timing is
// noisy, so the bounds are generous.
func TestNativeWorkloadScaling(t *testing.T) {
	busyFor := func(prb int) float64 {
		cfg := DefaultPoolConfig()
		cfg.Workers = 2
		pool, err := NewPool(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		d := NewDispatcher(testDispatcherConfig())
		p := uplink.UserParams{ID: 0, PRB: prb, Layers: 2, Mod: modulation.QAM16}
		sf, err := d.Subframe(0, []uplink.UserParams{p})
		if err != nil {
			t.Fatal(err)
		}
		// Warm caches (FFT plans, interleavers) before measuring.
		pool.ProcessSubframe(sf)
		before := pool.Stats()
		const reps = 12
		for i := 0; i < reps; i++ {
			pool.ProcessSubframe(sf)
		}
		after := pool.Stats()
		var busy int64
		for i := range after {
			busy += after[i].BusyNanos - before[i].BusyNanos
		}
		return float64(busy) / reps
	}
	small := busyFor(4)
	large := busyFor(16)
	if small <= 0 || large <= 0 {
		t.Fatalf("busy times not positive: %g, %g", small, large)
	}
	ratio := large / small
	// 4x the PRBs: expect roughly 4x the work (FFT log factors and fixed
	// overheads bend it; host jitter widens it further).
	if ratio < 2 || ratio > 8 {
		t.Errorf("busy(16 PRB)/busy(4 PRB) = %.2f, want roughly linear (~4)", ratio)
	}
}

// TestVerifyArenaPathAllVariants pins the per-worker arena refactor
// (ISSUE 1): the same trace through the serial reference (one shared
// arena) and the work-stealing pool (one arena per worker, tasks stealing
// across arenas) must stay bit-identical, across every estimator/combiner
// stage the registries offer and the full turbo backend. Run under -race
// this also proves no two workers ever touch the same arena.
func TestVerifyArenaPathAllVariants(t *testing.T) {
	variants := []struct {
		name string
		mut  func(*uplink.ReceiverConfig)
	}{
		{"mmse", func(rc *uplink.ReceiverConfig) {}},
		{"zf", func(rc *uplink.ReceiverConfig) { rc.Combiner = uplink.CombinerZF }},
		{"mrc", func(rc *uplink.ReceiverConfig) { rc.Combiner = uplink.CombinerMRC }},
		{"irc-ls", func(rc *uplink.ReceiverConfig) {
			rc.Combiner = uplink.CombinerIRC
			rc.ChanEst = uplink.ChanEstLS
		}},
		{"estnoise-cfo-scramble", func(rc *uplink.ReceiverConfig) {
			rc.EstimateNoise = true
			rc.CorrectCFO = true
			rc.Scramble = true
		}},
		{"turbofull-rm", func(rc *uplink.ReceiverConfig) {
			rc.Turbo = uplink.TurboFull
			rc.CodeRate = 0.5
			rc.TurboIterations = 4
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			poolCfg := DefaultPoolConfig()
			poolCfg.Workers = 8
			v.mut(&poolCfg.Receiver)
			if err := Verify(poolCfg, testDispatcherConfig(), smallTrace(t, 12)); err != nil {
				t.Fatal(err)
			}
		})
	}
}
