package sched

import (
	"sync"
	"sync/atomic"
	"testing"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

// shutdownSubframe builds a tiny subframe (MinPRB users) so shutdown tests
// spend their time in scheduling edges, not DSP.
func shutdownSubframe(t *testing.T, seq int64, nUsers int) *uplink.Subframe {
	t.Helper()
	d := NewDispatcher(DispatcherConfig{
		Delta:     1,
		TX:        tx.DefaultConfig(),
		CacheSets: 2,
		Seed:      7,
	})
	users := make([]uplink.UserParams, nUsers)
	for i := range users {
		users[i] = uplink.UserParams{ID: i, PRB: uplink.MinPRB, Layers: 1, Mod: modulation.QPSK}
	}
	sf, err := d.Subframe(seq, users)
	if err != nil {
		t.Fatalf("subframe: %v", err)
	}
	return sf
}

// TestCloseDrainsConcurrentSubmitters closes the pool while several
// goroutines are still dispatching subframes. Close must not return until
// every user submitted before it was called has been processed, and the
// result count must match the submission count exactly — no user may be
// dropped or double-processed during the drain. Run under -race this also
// exercises the submit/dequeue/close memory ordering.
func TestCloseDrainsConcurrentSubmitters(t *testing.T) {
	var results atomic.Int64
	cfg := DefaultPoolConfig()
	cfg.Workers = 4
	cfg.OnResult = func(uplink.UserResult) { results.Add(1) }
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const (
		submitters    = 4
		perSubmitter  = 25
		usersPerSubfr = 3
		totalUsers    = submitters * perSubmitter * usersPerSubfr
	)
	sf := shutdownSubframe(t, 0, usersPerSubfr)

	var wg sync.WaitGroup
	var submitted atomic.Int64
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				clone := &uplink.Subframe{Seq: int64(g*perSubmitter + i), Users: sf.Users}
				pool.SubmitSubframe(clone)
				submitted.Add(int64(len(clone.Users)))
			}
		}(g)
	}
	wg.Wait()
	pool.Close()

	if got := results.Load(); got != totalUsers || submitted.Load() != totalUsers {
		t.Fatalf("results after Close = %d, want %d (submitted %d)",
			got, totalUsers, submitted.Load())
	}
}

// TestDrainUnderConcurrentDispatch interleaves Drain calls with ongoing
// SubmitSubframe/ProcessSubframe traffic from multiple goroutines: Drain
// must always observe a consistent pending count (never negative, never
// stuck) and every blocking ProcessSubframe must return.
func TestDrainUnderConcurrentDispatch(t *testing.T) {
	var results atomic.Int64
	cfg := DefaultPoolConfig()
	cfg.Workers = 4
	cfg.OnResult = func(uplink.UserResult) { results.Add(1) }
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sf := shutdownSubframe(t, 0, 2)

	var wg sync.WaitGroup
	const rounds = 20
	// Async submitters.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pool.SubmitSubframe(&uplink.Subframe{Seq: int64(i), Users: sf.Users})
			}
		}()
	}
	// Blocking submitters.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pool.ProcessSubframe(&uplink.Subframe{Seq: int64(i), Users: sf.Users})
			}
		}()
	}
	// Concurrent drainers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pool.Drain()
				if p := pool.pending.Load(); p < 0 {
					t.Errorf("pending went negative: %d", p)
					return
				}
			}
		}()
	}
	wg.Wait()
	pool.Close()

	want := int64(4 * rounds * 2) // 4 submitters x rounds x 2 users
	if got := results.Load(); got != want {
		t.Fatalf("results = %d, want %d", got, want)
	}
}

// TestSubframeFinFiresOnceAfterLastUser submits subframes with completion
// hooks under concurrent dispatch and checks each hook fires exactly once,
// only after all of its users' results were delivered.
func TestSubframeFinFiresOnceAfterLastUser(t *testing.T) {
	const (
		nSubframes = 30
		nUsers     = 3
	)
	var perSeq [nSubframes]atomic.Int64
	cfg := DefaultPoolConfig()
	cfg.Workers = 4
	cfg.OnResult = func(r uplink.UserResult) { perSeq[r.Seq].Add(1) }
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sf := shutdownSubframe(t, 0, nUsers)

	var fired [nSubframes]atomic.Int64
	var done sync.WaitGroup
	done.Add(nSubframes)
	for seq := 0; seq < nSubframes; seq++ {
		seq := seq
		fin := NewSubframeFin(func() {
			if got := perSeq[seq].Load(); got != nUsers {
				t.Errorf("subframe %d: hook fired with %d/%d results delivered", seq, got, nUsers)
			}
			fired[seq].Add(1)
			done.Done()
		})
		pool.SubmitSubframeFin(&uplink.Subframe{Seq: int64(seq), Users: sf.Users}, fin)
	}
	done.Wait()
	pool.Close()

	for seq := range fired {
		if n := fired[seq].Load(); n != 1 {
			t.Errorf("subframe %d: hook fired %d times, want 1", seq, n)
		}
	}
}

// TestSubmitSubframeFinEmpty checks the empty-subframe guard: the hook
// fires synchronously and the pool stays drainable.
func TestSubmitSubframeFinEmpty(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.Workers = 1
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	fired := false
	pool.SubmitSubframeFin(&uplink.Subframe{Seq: 9}, NewSubframeFin(func() { fired = true }))
	if !fired {
		t.Fatal("empty-subframe hook did not fire synchronously")
	}
	pool.Drain()
}
