package sched

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ltephy/internal/obs"
	"ltephy/internal/uplink"
)

// TestStageClassAlignment pins the correspondence the scheduler's
// telemetry relies on: UserJob.Stages() returns the pipeline in the
// index order of the obs stage classes, for every estimator/combiner
// variant the registries offer.
func TestStageClassAlignment(t *testing.T) {
	cfgs := []uplink.ReceiverConfig{uplink.DefaultConfig()}
	for _, mut := range []func(*uplink.ReceiverConfig){
		func(rc *uplink.ReceiverConfig) { rc.ChanEst = uplink.ChanEstLS },
		func(rc *uplink.ReceiverConfig) { rc.Combiner = uplink.CombinerZF },
		func(rc *uplink.ReceiverConfig) { rc.Combiner = uplink.CombinerMRC },
		func(rc *uplink.ReceiverConfig) { rc.Combiner = uplink.CombinerIRC },
	} {
		rc := uplink.DefaultConfig()
		mut(&rc)
		cfgs = append(cfgs, rc)
	}
	for _, rc := range cfgs {
		job := &uplink.UserJob{Cfg: rc}
		for i, s := range job.Stages() {
			if !strings.HasPrefix(s.Name(), obs.StageNames[i]) {
				t.Errorf("stage index %d is %q; obs class %d is %q — classes misaligned",
					i, s.Name(), i, obs.StageNames[i])
			}
		}
	}
}

// TestPoolTelemetryCapture runs a paced dispatch with sampling 1 and
// checks every telemetry surface: stage histograms, per-worker event
// rings, deadline accounting, estimator-error pairing, and the Chrome
// trace / Prometheus exports.
func TestPoolTelemetryCapture(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.Workers = 4
	col := NewCollector()
	cfg.OnResult = col.Add
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	tel := pool.Telemetry()
	tel.SetSampling(1)

	d := NewDispatcher(testDispatcherConfig())
	trace := smallTrace(t, 10)
	if err := d.Pregenerate(trace); err != nil {
		t.Fatal(err)
	}
	trace.Reset()
	if _, err := d.Run(pool, trace, RunOptions{
		Subframes: 10,
		Estimate:  func(sf *uplink.Subframe) float64 { return 0.5 },
	}); err != nil {
		t.Fatal(err)
	}

	users := 0
	for _, us := range trace.Subframes {
		users += len(us)
	}

	// Every stage class ran and was observed.
	for s := 0; s < obs.NumStages; s++ {
		if tel.StageHist(uint8(s)).Count() == 0 {
			t.Errorf("stage %q histogram empty", obs.StageNames[s])
		}
	}
	// Serial classes run exactly once per user.
	for _, s := range []uint8{obs.StageWeights, obs.StageBackend, obs.StageInit} {
		if got := tel.StageHist(s).Count(); got != int64(users) {
			t.Errorf("stage %q observed %d times, want %d", obs.StageNames[s], got, users)
		}
	}

	// Deadline accounting saw every user completion.
	dl := tel.Deadline()
	if dl.Met()+dl.Missed() != int64(users) {
		t.Errorf("deadline met %d + missed %d != %d users", dl.Met(), dl.Missed(), users)
	}

	// Estimator error was paired for every subframe.
	es := tel.Estimator().Stats()
	if es.Count != 10 {
		t.Errorf("estimator paired %d samples, want 10", es.Count)
	}

	// Rings hold well-formed spans attributed to real workers.
	events := tel.Events()
	if len(events) == 0 {
		t.Fatal("no events captured at sampling 1")
	}
	stageSpans := 0
	for _, e := range events {
		if e.End < e.Start {
			t.Fatalf("event %+v ends before it starts", e)
		}
		if e.Worker < 0 || int(e.Worker) >= cfg.Workers {
			t.Fatalf("event attributed to worker %d of %d", e.Worker, cfg.Workers)
		}
		if e.Kind == obs.KindStage {
			stageSpans++
			if e.Seq < 0 || e.Seq >= 10 {
				t.Fatalf("stage span with subframe seq %d", e.Seq)
			}
		}
	}
	if stageSpans == 0 {
		t.Error("no stage spans in the rings")
	}

	// Exports are well-formed.
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tel); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) < stageSpans {
		t.Errorf("trace has %d events for %d captured stage spans", len(tf.TraceEvents), stageSpans)
	}

	buf.Reset()
	if err := obs.WritePrometheus(&buf, tel); err != nil {
		t.Fatal(err)
	}
	if err := pool.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ltephy_stage_latency_seconds_bucket", "ltephy_deadline_met_total",
		"ltephy_estimator_samples_total", "ltephy_worker_busy_seconds_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("prometheus output missing %s", want)
		}
	}
}

// TestStatsIntoAllocFree pins the dispatcher's periodic sampling path:
// snapshotting into a reused buffer must not allocate.
func TestStatsIntoAllocFree(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.Workers = 4
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dst := make([]WorkerStats, cfg.Workers)
	allocs := testing.AllocsPerRun(100, func() {
		dst = pool.StatsInto(dst)
	})
	if allocs != 0 {
		t.Errorf("StatsInto allocated %.1f times per call with a sized buffer", allocs)
	}
}

// TestTelemetryOffIsQuiet: with the knob at 0 (the default) nothing is
// recorded anywhere.
func TestTelemetryOffIsQuiet(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.Workers = 2
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	d := NewDispatcher(testDispatcherConfig())
	sf, err := d.Subframe(0, smallTrace(t, 1).Subframes[0])
	if err != nil {
		t.Fatal(err)
	}
	pool.ProcessSubframe(sf)
	tel := pool.Telemetry()
	if len(tel.Events()) != 0 {
		t.Error("events recorded with sampling off")
	}
	for s := 0; s < obs.NumStages; s++ {
		if tel.StageHist(uint8(s)).Count() != 0 {
			t.Errorf("stage %q histogram populated with sampling off", obs.StageNames[s])
		}
	}
	if dl := tel.Deadline(); dl.Met()+dl.Missed() != 0 {
		t.Error("deadline counters moved with sampling off")
	}
}
