// Package sched is the benchmark's parallel runtime: the Go analogue of
// the paper's Pthreads framework (Section IV). A fixed pool of worker
// goroutines (one per hardware core, like the paper's one-thread-per-tile
// mapping) runs a work-stealing scheduler: each worker owns a double-ended
// task queue, dequeues users from a global queue when idle, and steals
// from random victims otherwise. The pool supports the paper's two
// deactivation mechanisms — a nap mask driven by the workload estimator
// (proactive) and nap-on-idle (reactive) — with cycle accounting so the
// Eqs. 1-2 activity metric can be computed.
package sched

import (
	"sync"

	"ltephy/internal/phy/workspace"
)

// Task is one unit of schedulable work. Tasks must not block; stage
// barriers are implemented by the user-thread loop (helpWait), never
// inside a task. The argument is the executing worker's scratch arena —
// a stolen task draws scratch from the thief, never from the worker that
// spawned it.
//
// The telemetry identity (stage class, subframe sequence, user, task
// index) travels with the task so that whichever worker executes it —
// owner or thief — attributes the span to the right stage and subframe.
type Task struct {
	fn    func(ws *workspace.Arena)
	seq   int64
	user  int32
	task  int32
	stage uint8
}

// deque is a double-ended task queue: the owning worker pushes and pops at
// the bottom (LIFO, cache-friendly), thieves steal from the top (FIFO,
// steals the oldest — typically largest — work first).
//
// A mutex guards the deque rather than a lock-free Chase-Lev structure:
// benchmark tasks are tens of microseconds of DSP, so lock overhead is
// noise, and the mutex keeps the memory-model reasoning trivial.
type deque struct {
	mu    sync.Mutex
	tasks []Task
	head  int // index of the oldest task; tasks[head:] are live
}

// push adds a task at the bottom (owner side). The deque mutex guards a
// few slice ops; hold time is tens of nanoseconds and the owner/thief
// contention is the work-stealing algorithm's audited primitive (see
// the deque comment).
//
//ltephy:blocking-ok
func (d *deque) push(t Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

// pop removes the newest task (owner side). Bounded critical section
// (slice ops + compact); see push.
//
//ltephy:blocking-ok
func (d *deque) pop() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == d.head {
		return Task{}, false
	}
	t := d.tasks[len(d.tasks)-1]
	d.tasks[len(d.tasks)-1] = Task{}
	d.tasks = d.tasks[:len(d.tasks)-1]
	d.compact()
	return t, true
}

// steal removes the oldest task (thief side). Bounded critical section
// (slice ops + compact); see push.
//
//ltephy:blocking-ok
func (d *deque) steal() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == d.head {
		return Task{}, false
	}
	t := d.tasks[d.head]
	d.tasks[d.head] = Task{}
	d.head++
	d.compact()
	return t, true
}

// size reports the number of queued tasks (approximate under concurrency;
// used for stats and tests).
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.tasks) - d.head
}

// compact reclaims the dead prefix once it dominates the backing array.
// Called with the lock held.
func (d *deque) compact() {
	if d.head == len(d.tasks) {
		d.tasks = d.tasks[:0]
		d.head = 0
		return
	}
	if d.head > 64 && d.head > len(d.tasks)/2 {
		n := copy(d.tasks, d.tasks[d.head:])
		for i := n; i < len(d.tasks); i++ {
			d.tasks[i] = Task{}
		}
		d.tasks = d.tasks[:n]
		d.head = 0
	}
}

// userQueue is the global FIFO of users awaiting processing — the paper's
// "global queue" the maintenance thread writes each subframe's users to.
// Entries are stored by value: once the backing array has grown to the
// high-water in-flight user count, enqueue performs no heap allocation,
// which the fronthaul ingest loop's zero-alloc dispatch gate relies on.
type userQueue struct {
	mu    sync.Mutex
	items []queuedUser
	head  int
}

func (q *userQueue) enqueue(u queuedUser) {
	q.mu.Lock()
	q.items = append(q.items, u)
	q.mu.Unlock()
}

func (q *userQueue) dequeue() (queuedUser, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return queuedUser{}, false
	}
	u := q.items[q.head]
	q.items[q.head] = queuedUser{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return u, true
}

func (q *userQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}
