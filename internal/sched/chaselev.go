package sched

import "sync/atomic"

// taskDeque is the work-stealing queue contract: the owning worker pushes
// and pops at the bottom, thieves steal from the top.
type taskDeque interface {
	push(Task)
	pop() (Task, bool)
	steal() (Task, bool)
	size() int
}

// Interface checks.
var (
	_ taskDeque = (*deque)(nil)
	_ taskDeque = (*clDeque)(nil)
)

// clDeque is the Chase-Lev lock-free work-stealing deque (Chase & Lev,
// SPAA 2005) on a growable circular array. Go's sync/atomic operations
// are sequentially consistent, which makes the textbook algorithm sound
// without the fence subtleties relaxed-memory implementations need.
//
// Only one goroutine (the owner) may call push/pop; any number may call
// steal. The pool's deque choice is Config.LockFreeDeque; the mutex deque
// remains the default (benchmark tasks are coarse enough that lock
// overhead is noise — BenchmarkDeques quantifies the difference).
type clDeque struct {
	top    atomic.Int64 // next index thieves take
	bottom atomic.Int64 // next index the owner writes
	buf    atomic.Pointer[clArray]
}

// clArray is one immutable-size circular buffer generation.
type clArray struct {
	mask  int64 // size-1, size a power of two
	slots []atomic.Pointer[taskBox]
}

// taskBox wraps a Task so slots can hold it behind an atomic pointer.
type taskBox struct{ t Task }

const clInitialSize = 64

func newCLDeque() *clDeque {
	d := &clDeque{}
	d.buf.Store(newCLArray(clInitialSize))
	return d
}

func newCLArray(size int64) *clArray {
	return &clArray{mask: size - 1, slots: make([]atomic.Pointer[taskBox], size)}
}

func (a *clArray) get(i int64) *taskBox    { return a.slots[i&a.mask].Load() }
func (a *clArray) put(i int64, b *taskBox) { a.slots[i&a.mask].Store(b) }
func (a *clArray) size() int64             { return a.mask + 1 }

// push appends at the bottom (owner only), growing the array when full.
func (d *clDeque) push(t Task) {
	b := d.bottom.Load()
	top := d.top.Load()
	a := d.buf.Load()
	if b-top >= a.size() {
		a = d.grow(a, top, b)
	}
	a.put(b, &taskBox{t: t})
	d.bottom.Store(b + 1)
}

// grow doubles the array, copying the live window. Owner only; thieves
// holding the old array still see valid slots for indices < bottom.
func (d *clDeque) grow(old *clArray, top, bottom int64) *clArray {
	bigger := newCLArray(old.size() * 2)
	for i := top; i < bottom; i++ {
		bigger.put(i, old.get(i))
	}
	d.buf.Store(bigger)
	return bigger
}

// pop removes the newest task (owner only).
func (d *clDeque) pop() (Task, bool) {
	b := d.bottom.Load() - 1
	a := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore.
		d.bottom.Store(t)
		return Task{}, false
	}
	box := a.get(b)
	if t != b {
		return box.t, true
	}
	// Last element: race with thieves via CAS on top.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if !won {
		return Task{}, false
	}
	return box.t, true
}

// steal removes the oldest task (any goroutine).
func (d *clDeque) steal() (Task, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return Task{}, false
	}
	a := d.buf.Load()
	box := a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return Task{}, false // lost the race; caller picks another victim
	}
	return box.t, true
}

// size is approximate under concurrency (diagnostics only).
func (d *clDeque) size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
