package sched

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ltephy/internal/obs"
	"ltephy/internal/params"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
	"ltephy/internal/uplink/tx"
)

// DispatcherConfig configures the maintenance thread.
type DispatcherConfig struct {
	// Delta is the dispatch period. The paper dispatches a subframe every
	// DELTA ms, configurable so hardware that cannot sustain 1 ms still
	// runs (the TILEPro64 runs at 5 ms).
	Delta time.Duration
	// TX configures input signal generation.
	TX tx.Config
	// CacheSets is how many distinct input data realisations are kept per
	// parameter combination, mirroring the paper's reuse of (by default)
	// ten pre-generated input data sets.
	CacheSets int
	// Seed drives input data generation.
	Seed uint64
	// DeadlineBudget is the per-subframe completion budget charged by the
	// pool's deadline accounting, measured from dispatch. Defaults to
	// Delta: a subframe should complete before the next one arrives.
	DeadlineBudget time.Duration
	// Clock paces Run and stamps dispatches. Nil defaults to
	// obs.SystemClock (real-time pacing); obs.UnpacedClock runs the loop
	// flat out for simulation and tests. The scheduler itself never reads
	// the wall clock — the determinism analyzer enforces that — so all
	// time flows through this injection point.
	Clock obs.Clock
}

// DefaultDispatcherConfig mirrors the paper's evaluation setup.
func DefaultDispatcherConfig() DispatcherConfig {
	return DispatcherConfig{
		Delta:     5 * time.Millisecond,
		TX:        tx.DefaultConfig(),
		CacheSets: 10,
		Seed:      1,
	}
}

// dataKey identifies input data reusable across subframes: everything in
// UserParams except the user's slot index.
type dataKey struct {
	prb, layers int
	mod         int
}

// setKey identifies one cached input realisation: a parameter combination
// plus the data-set index within the CacheSets rotation.
type setKey struct {
	dataKey
	set int
}

// Dispatcher is the maintenance thread: it turns parameter-model output
// into subframes (reusing cached input data, Section IV-B1) and dispatches
// them to a pool on a fixed period.
//
// The input realisation for a user is a pure function of its parameters,
// the dispatcher seed, and (seq+slot) mod CacheSets — never of generation
// order — so the serial reference and the parallel runtime presented with
// the same trace see bit-identical data (Section IV-D's precondition).
// The cache is pure memoisation.
type Dispatcher struct {
	cfg   DispatcherConfig
	mu    sync.Mutex
	cache map[setKey]*uplink.UserData
}

// NewDispatcher returns a dispatcher with an empty data cache.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher {
	if cfg.CacheSets < 1 {
		cfg.CacheSets = 1
	}
	return &Dispatcher{cfg: cfg, cache: make(map[setKey]*uplink.UserData)}
}

// Subframe materialises input data for the given scheduling decision.
// The receiver never mutates UserData, so sharing one realisation across
// in-flight subframes is safe (the paper needed unique buffers only
// because its kernels work in place).
func (d *Dispatcher) Subframe(seq int64, users []uplink.UserParams) (*uplink.Subframe, error) {
	sf := &uplink.Subframe{Seq: seq}
	for slot, p := range users {
		u, err := d.userData(seq, slot, p)
		if err != nil {
			return nil, fmt.Errorf("sched: subframe %d: %w", seq, err)
		}
		sf.Users = append(sf.Users, u)
	}
	return sf, nil
}

func (d *Dispatcher) userData(seq int64, slot int, p uplink.UserParams) (*uplink.UserData, error) {
	key := setKey{
		dataKey: dataKey{p.PRB, p.Layers, int(p.Mod)},
		set:     int((seq + int64(slot)) % int64(d.cfg.CacheSets)),
	}
	d.mu.Lock()
	u, ok := d.cache[key]
	d.mu.Unlock()
	if !ok {
		// Seed derived from the key alone: generation order cannot change
		// the realisation.
		seed := d.cfg.Seed
		for _, v := range []uint64{uint64(key.prb), uint64(key.layers), uint64(key.mod), uint64(key.set)} {
			seed = (seed ^ v) * 0x9E3779B97F4A7C15
		}
		var err error
		u, err = tx.Generate(d.cfg.TX, p, rng.New(seed))
		if err != nil {
			return nil, err
		}
		d.mu.Lock()
		if prev, ok := d.cache[key]; ok {
			u = prev // another goroutine won the race; keep one canonical copy
		} else {
			d.cache[key] = u
		}
		d.mu.Unlock()
	}
	// The cached realisation was generated for some user slot; results
	// carry the scheduled ID, so hand out a shallow copy with it set.
	if u.Params.ID != p.ID {
		clone := *u
		clone.Params.ID = p.ID
		return &clone, nil
	}
	return u, nil
}

// Pregenerate warms the cache for every realisation a trace uses, so a
// timed run measures processing rather than signal synthesis.
func (d *Dispatcher) Pregenerate(t *params.Trace) error {
	for seq, users := range t.Subframes {
		for slot, p := range users {
			if _, err := d.userData(int64(seq), slot, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunOptions controls a timed dispatch run.
type RunOptions struct {
	// Subframes is the number of subframes to dispatch.
	Subframes int
	// OnDispatch, when non-nil, is invoked just before each subframe is
	// submitted — the hook the power-aware resource manager uses to apply
	// Eq. 5 (estimate workload, set the active-core mask).
	OnDispatch func(seq int64, sf *uplink.Subframe)
	// Estimate, when non-nil and telemetry is enabled, supplies each
	// subframe's estimated activity (Eq. 4). The dispatcher pairs it with
	// the activity measured over that subframe's dispatch period, feeding
	// the registry's online estimator-error tracker (live Fig. 12).
	Estimate func(sf *uplink.Subframe) float64
}

// Run dispatches subframes from the model to the pool every Delta,
// mirroring the maintenance thread's signal-alarm loop. It returns the
// wall-clock duration of the run after the pool drains.
//
// When the pool's telemetry is enabled, each dispatch is stamped for
// deadline accounting and each period's measured activity (Eq. 2 over
// one Delta window) is paired with the subframe's estimate. The
// sampling reuses two stat buffers for the whole run — no per-subframe
// allocation.
//
// Pacing and elapsed time come from the injected cfg.Clock (default
// obs.SystemClock), never from direct wall-clock reads: the loop passes
// the determinism analyzer unannotated, and an obs.UnpacedClock makes the
// identical loop pace-free for simulation and tests.
func (d *Dispatcher) Run(pool *Pool, m params.Model, opts RunOptions) (time.Duration, error) {
	if opts.Subframes <= 0 {
		return 0, fmt.Errorf("sched: Run needs a positive subframe count")
	}
	clk := d.cfg.Clock
	if clk == nil {
		clk = obs.SystemClock{}
	}
	tel := pool.Telemetry()
	budget := d.cfg.DeadlineBudget
	if budget <= 0 {
		budget = d.cfg.Delta
	}
	tel.Deadline().SetBudget(budget.Nanoseconds())
	var before, after []WorkerStats
	if tel.Enabled() {
		before = pool.StatsInto(make([]WorkerStats, pool.Workers()))
		after = make([]WorkerStats, pool.Workers())
	}
	start := clk.Now()
	tick, release := clk.Tick(d.cfg.Delta)
	defer release()
	for seq := int64(0); seq < int64(opts.Subframes); seq++ {
		sf, err := d.Subframe(seq, m.Next())
		if err != nil {
			return 0, err
		}
		if opts.OnDispatch != nil {
			opts.OnDispatch(seq, sf)
		}
		if tel.Enabled() {
			tel.Deadline().Dispatch(seq, clk.Now())
			if opts.Estimate != nil {
				tel.Estimator().RecordEstimate(seq, opts.Estimate(sf))
			}
		}
		pool.SubmitSubframe(sf)
		<-tick
		if tel.Enabled() {
			// Measured activity of the period that just elapsed — the window
			// subframe seq was dispatched into.
			after = pool.StatsInto(after)
			var busy int64
			for i := range after {
				busy += after[i].BusyNanos - before[i].BusyNanos
			}
			measured := float64(busy) /
				(float64(pool.Workers()) * float64(d.cfg.Delta.Nanoseconds()))
			tel.Estimator().RecordMeasured(seq, measured)
			before, after = after, before
		}
	}
	pool.Drain()
	return time.Duration(clk.Now() - start), nil
}

// Collector gathers results keyed by subframe for verification.
type Collector struct {
	mu      sync.Mutex
	results map[int64][]uplink.UserResult
}

// NewCollector returns an empty collector; pass its Add as Config.OnResult.
func NewCollector() *Collector {
	return &Collector{results: make(map[int64][]uplink.UserResult)}
}

// Add records one result; safe for concurrent use.
func (c *Collector) Add(r uplink.UserResult) {
	c.mu.Lock()
	c.results[r.Seq] = append(c.results[r.Seq], r)
	c.mu.Unlock()
}

// Len returns the total number of results collected.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, rs := range c.results {
		n += len(rs)
	}
	return n
}

// Sorted returns all results ordered by (subframe, user) — a canonical
// order for comparing against the serial reference.
func (c *Collector) Sorted() []uplink.UserResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []uplink.UserResult
	for _, rs := range c.results {
		out = append(out, rs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].UserID < out[j].UserID
	})
	return out
}

// Verify processes a recorded trace both serially and in parallel and
// reports the first mismatch — the paper's Section IV-D validation. The
// same cached input data feeds both paths.
func Verify(poolCfg Config, dispCfg DispatcherConfig, trace *params.Trace) error {
	d := NewDispatcher(dispCfg)
	if err := d.Pregenerate(trace); err != nil {
		return err
	}

	// Serial reference.
	trace.Reset()
	var want []uplink.UserResult
	for seq := int64(0); seq < int64(len(trace.Subframes)); seq++ {
		sf, err := d.Subframe(seq, trace.Next())
		if err != nil {
			return err
		}
		rs, err := uplink.ProcessSubframe(poolCfg.Receiver, sf)
		if err != nil {
			return err
		}
		want = append(want, rs...)
	}

	// Parallel run over the identical subframes.
	col := NewCollector()
	poolCfg.OnResult = col.Add
	pool, err := NewPool(poolCfg)
	if err != nil {
		return err
	}
	trace.Reset()
	for seq := int64(0); seq < int64(len(trace.Subframes)); seq++ {
		sf, err := d.Subframe(seq, trace.Next())
		if err != nil {
			return err
		}
		pool.SubmitSubframe(sf)
	}
	pool.Close()

	got := col.Sorted()
	if len(got) != len(want) {
		return fmt.Errorf("sched: verify: %d parallel results vs %d serial", len(got), len(want))
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			return fmt.Errorf("sched: verify: subframe %d user %d differs between serial and parallel",
				want[i].Seq, want[i].UserID)
		}
	}
	return nil
}

// DriveActiveWorkers adapts a per-subframe active-core estimate (Eq. 5) to
// a dispatcher hook that applies the proactive nap mask to the pool before
// each subframe is submitted — the native-runtime counterpart of the
// simulator's NAP policy.
func DriveActiveWorkers(pool *Pool, activeCores func([]uplink.UserParams) int) func(int64, *uplink.Subframe) {
	// The hook runs only on the dispatcher goroutine, so one reusable
	// parameter buffer suffices — no per-subframe allocation after the
	// first few subframes grow it to the trace's peak user count.
	var ps []uplink.UserParams
	return func(_ int64, sf *uplink.Subframe) {
		ps = ps[:0]
		for _, u := range sf.Users {
			ps = append(ps, u.Params)
		}
		pool.SetActiveWorkers(activeCores(ps))
	}
}
