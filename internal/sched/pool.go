package sched

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ltephy/internal/obs"
	"ltephy/internal/phy/workspace"
	"ltephy/internal/rng"
	"ltephy/internal/uplink"
)

// queuedUser pairs a user's input data with its subframe for result
// labelling. It is enqueued by value so steady-state submission does not
// allocate.
type queuedUser struct {
	seq  int64
	cell uint16
	data *uplink.UserData
	done *sync.WaitGroup // non-nil when a caller waits for the subframe
	fin  *SubframeFin    // non-nil when a completion hook fires at subframe end
}

// SubframeFin is a reusable subframe-completion hook: the last user of the
// subframe to finish invokes fn on its worker goroutine. Unlike the
// WaitGroup path it never blocks a submitter, which is what the fronthaul
// server needs — its ingest loop must keep decoding while earlier
// subframes are still in flight, and the hook recycles the subframe's
// arena slot and sends the ack.
//
// A SubframeFin may be reused across subframes (Reset rearms it), but only
// after the previous subframe's hook has fired.
type SubframeFin struct {
	remaining atomic.Int64
	fn        func()
}

// NewSubframeFin returns a hook that calls fn when the subframe it is
// armed for completes.
func NewSubframeFin(fn func()) *SubframeFin {
	return &SubframeFin{fn: fn}
}

// complete records one finished user, firing the hook on the last.
func (f *SubframeFin) complete() {
	if f.remaining.Add(-1) == 0 {
		f.fn()
	}
}

// Config configures a worker pool.
type Config struct {
	// Workers is the number of worker goroutines (the paper uses 62, one
	// per free TILEPro64 core). Defaults to GOMAXPROCS.
	Workers int
	// Receiver is the uplink receiver configuration every job uses.
	Receiver uplink.ReceiverConfig
	// NapOnIdle enables the reactive policy (the paper's IDLE): a worker
	// that cannot find any work naps for NapCheckPeriod before looking
	// again, instead of spinning.
	NapOnIdle bool
	// NapCheckPeriod is how long a napping core sleeps between checks of
	// its status — the paper's "a core periodically wakes up to see if its
	// status has changed".
	NapCheckPeriod time.Duration
	// OnResult, when non-nil, receives every user result. It is called
	// from worker goroutines and must be safe for concurrent use.
	OnResult func(uplink.UserResult)
	// LockFreeDeque selects the Chase-Lev lock-free deque instead of the
	// default mutex-guarded one. BenchmarkDeques compares them; with this
	// benchmark's coarse tasks the difference is small.
	LockFreeDeque bool
	// Seed randomises steal victim selection.
	Seed uint64
	// Telemetry, when non-nil, is the registry the pool records into; it
	// must have at least Workers recorders. When nil the pool creates its
	// own (retrievable via Pool.Telemetry) with TraceDepth-deep rings.
	// Recording stays off until Registry.SetSampling enables it.
	Telemetry *obs.Registry
	// TraceDepth is the per-worker event-ring capacity used when the pool
	// creates its own registry (obs.DefaultRingDepth when <= 0).
	TraceDepth int
}

// DefaultPoolConfig returns a pool configuration with paper-equivalent
// defaults scaled to the host.
func DefaultPoolConfig() Config {
	return Config{
		Workers:        runtime.GOMAXPROCS(0),
		Receiver:       uplink.DefaultConfig(),
		NapCheckPeriod: 100 * time.Microsecond,
	}
}

// WorkerStats are cumulative per-worker counters for the activity metric
// (paper Eqs. 1-2) and scheduling diagnostics.
type WorkerStats struct {
	TasksRun     int64
	UsersStarted int64
	Steals       int64
	FailedSteals int64
	// BusyNanos is time spent in useful processing (get_cycle_count deltas
	// in the paper), NapNanos time spent deactivated.
	BusyNanos int64
	NapNanos  int64
}

// Pool is the work-stealing worker pool.
type Pool struct {
	cfg     Config
	workers []*worker
	global  userQueue
	tel     *obs.Registry
	active  atomic.Int32 // workers with id >= active nap (proactive mask)
	closed  atomic.Bool
	wg      sync.WaitGroup
	// pending counts enqueued-but-unfinished users, letting Drain wait.
	pending atomic.Int64
}

type worker struct {
	id    int
	pool  *Pool
	local taskDeque
	r     *rng.RNG
	// ws is the worker-owned scratch arena. Only this worker's goroutine
	// touches it — every task the worker executes (its own or stolen)
	// draws scratch from here, so no locking is ever needed.
	ws *workspace.Arena
	// rec is this worker's telemetry recorder (ring + sampling countdown).
	rec *obs.WorkerRecorder
	// Precomputed pprof label contexts: baseCtx carries the worker label,
	// stageCtx[c] adds the stage-class label. Precomputing keeps the
	// per-task SetGoroutineLabels swap allocation-free.
	baseCtx  context.Context
	stageCtx [obs.NumStages]context.Context
	stats    struct {
		tasksRun     atomic.Int64
		usersStarted atomic.Int64
		steals       atomic.Int64
		failedSteals atomic.Int64
		busyNanos    atomic.Int64
		napNanos     atomic.Int64
	}
}

// NewPool starts the workers. Call Close to stop them. The worker
// lifecycle is owned by p.wg: Add(Workers) before the spawns, every
// run() defers Done, Close joins via wg.Wait.
//
//ltephy:spawn-point
func NewPool(cfg Config) (*Pool, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.NapCheckPeriod <= 0 {
		cfg.NapCheckPeriod = 100 * time.Microsecond
	}
	if err := cfg.Receiver.Validate(); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = obs.New(cfg.Workers, cfg.TraceDepth)
	} else if cfg.Telemetry.Workers() < cfg.Workers {
		return nil, fmt.Errorf("sched: telemetry registry has %d recorders for %d workers",
			cfg.Telemetry.Workers(), cfg.Workers)
	}
	p := &Pool{cfg: cfg, tel: cfg.Telemetry}
	p.active.Store(int32(cfg.Workers))
	seeds := rng.New(cfg.Seed)
	p.workers = make([]*worker, cfg.Workers)
	for i := range p.workers {
		w := &worker{id: i, pool: p, r: seeds.Split(), ws: workspace.New()}
		w.rec = p.tel.Worker(i)
		w.baseCtx = pprof.WithLabels(context.Background(),
			pprof.Labels("worker", strconv.Itoa(i)))
		for c := range w.stageCtx {
			w.stageCtx[c] = pprof.WithLabels(w.baseCtx,
				pprof.Labels("stage", obs.StageNames[c]))
		}
		if cfg.LockFreeDeque {
			w.local = newCLDeque()
		} else {
			w.local = &deque{}
		}
		p.workers[i] = w
	}
	p.wg.Add(cfg.Workers)
	for _, w := range p.workers {
		go w.run()
	}
	return p, nil
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.cfg.Workers }

// Telemetry returns the pool's telemetry registry (never nil).
func (p *Pool) Telemetry() *obs.Registry { return p.tel }

// SetActiveWorkers applies the proactive nap mask: workers with id >= n
// nap until the mask rises again (the paper's Eq. 5-driven deactivation).
// n is clamped to [1, Workers].
func (p *Pool) SetActiveWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > p.cfg.Workers {
		n = p.cfg.Workers
	}
	p.active.Store(int32(n))
}

// ActiveWorkers returns the current proactive mask.
func (p *Pool) ActiveWorkers() int { return int(p.active.Load()) }

// SubmitSubframe enqueues every user of a subframe for processing.
func (p *Pool) SubmitSubframe(sf *uplink.Subframe) {
	for _, u := range sf.Users {
		p.pending.Add(1)
		p.global.enqueue(queuedUser{seq: sf.Seq, cell: sf.Cell, data: u})
	}
}

// SubmitSubframeFin enqueues a subframe with a completion hook: fin.fn
// runs (on a worker goroutine) after the last user finishes. An empty
// subframe fires the hook immediately on the caller's goroutine. The
// caller must not rearm fin until it has fired.
func (p *Pool) SubmitSubframeFin(sf *uplink.Subframe, fin *SubframeFin) {
	if len(sf.Users) == 0 {
		fin.fn()
		return
	}
	fin.remaining.Store(int64(len(sf.Users)))
	for _, u := range sf.Users {
		p.pending.Add(1)
		p.global.enqueue(queuedUser{seq: sf.Seq, cell: sf.Cell, data: u, fin: fin})
	}
}

// ProcessSubframe enqueues a subframe and blocks until all of its users
// complete — used by tests and the verification harness.
func (p *Pool) ProcessSubframe(sf *uplink.Subframe) {
	var wg sync.WaitGroup
	wg.Add(len(sf.Users))
	for _, u := range sf.Users {
		p.pending.Add(1)
		p.global.enqueue(queuedUser{seq: sf.Seq, cell: sf.Cell, data: u, done: &wg})
	}
	wg.Wait()
}

// Drain blocks until every submitted user has been processed.
func (p *Pool) Drain() {
	for p.pending.Load() > 0 {
		runtime.Gosched()
	}
}

// Pending returns the number of submitted users not yet completed — the
// pool-level quiescence gauge per-cell drains poll alongside their own
// SubframeFin accounting (a pool multiplexes cells, so Pending()==0 is
// sufficient but not necessary for one cell to be drained).
func (p *Pool) Pending() int64 { return p.pending.Load() }

// Close stops the workers after the queues drain.
func (p *Pool) Close() {
	p.Drain()
	p.closed.Store(true)
	p.wg.Wait()
}

// ArenaFootprints reports the backing memory each worker's scratch arena
// has accumulated. Arenas grow to the high-water mark of the largest jobs
// they serve and are never trimmed, so after warm-up these are steady.
// Only call while the pool is quiescent (drained or closed): the counters
// are read without synchronisation against the worker goroutines.
func (p *Pool) ArenaFootprints() []int {
	out := make([]int, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.ws.Footprint()
	}
	return out
}

// Stats returns a snapshot of per-worker counters.
func (p *Pool) Stats() []WorkerStats {
	return p.StatsInto(make([]WorkerStats, len(p.workers)))
}

// StatsInto snapshots the per-worker counters into dst, growing it only
// if too small, and returns the filled slice — the allocation-free form
// for periodic samplers (the dispatcher's activity measurement reuses
// two buffers across the whole run).
func (p *Pool) StatsInto(dst []WorkerStats) []WorkerStats {
	if cap(dst) < len(p.workers) {
		dst = make([]WorkerStats, len(p.workers))
	}
	dst = dst[:len(p.workers)]
	for i, w := range p.workers {
		dst[i] = WorkerStats{
			TasksRun:     w.stats.tasksRun.Load(),
			UsersStarted: w.stats.usersStarted.Load(),
			Steals:       w.stats.steals.Load(),
			FailedSteals: w.stats.failedSteals.Load(),
			BusyNanos:    w.stats.busyNanos.Load(),
			NapNanos:     w.stats.napNanos.Load(),
		}
	}
	return dst
}

// WritePrometheus writes the per-worker counters in Prometheus text
// format — the pool-side companion of obs.WritePrometheus, composed by
// passing it as an extra section to obs.Handler.
func (p *Pool) WritePrometheus(w io.Writer) error {
	if _, err := io.WriteString(w,
		"# HELP ltephy_worker_tasks_total Stage tasks executed per worker.\n# TYPE ltephy_worker_tasks_total counter\n"+
			"# HELP ltephy_worker_users_total Users picked up per worker.\n# TYPE ltephy_worker_users_total counter\n"+
			"# HELP ltephy_worker_steals_total Successful steals per worker.\n# TYPE ltephy_worker_steals_total counter\n"+
			"# HELP ltephy_worker_failed_steals_total Failed steal sweeps per worker.\n# TYPE ltephy_worker_failed_steals_total counter\n"+
			"# HELP ltephy_worker_busy_seconds_total Useful processing time per worker.\n# TYPE ltephy_worker_busy_seconds_total counter\n"+
			"# HELP ltephy_worker_nap_seconds_total Deactivated (napping) time per worker.\n# TYPE ltephy_worker_nap_seconds_total counter\n"); err != nil {
		return err
	}
	for i, st := range p.Stats() {
		if _, err := fmt.Fprintf(w,
			"ltephy_worker_tasks_total{worker=\"%d\"} %d\nltephy_worker_users_total{worker=\"%d\"} %d\n"+
				"ltephy_worker_steals_total{worker=\"%d\"} %d\nltephy_worker_failed_steals_total{worker=\"%d\"} %d\n"+
				"ltephy_worker_busy_seconds_total{worker=\"%d\"} %g\nltephy_worker_nap_seconds_total{worker=\"%d\"} %g\n",
			i, st.TasksRun, i, st.UsersStarted, i, st.Steals, i, st.FailedSteals,
			i, float64(st.BusyNanos)/1e9, i, float64(st.NapNanos)/1e9); err != nil {
			return err
		}
	}
	return nil
}

// Activity computes the paper's Eq. 2 over a measurement window: the sum
// of useful (busy) time across workers divided by workers * wall time.
func Activity(before, after []WorkerStats, wall time.Duration) float64 {
	if len(before) != len(after) || wall <= 0 {
		return math.NaN()
	}
	var busy int64
	for i := range after {
		busy += after[i].BusyNanos - before[i].BusyNanos
	}
	return float64(busy) / (float64(len(after)) * float64(wall.Nanoseconds()))
}

// run is the worker main loop (paper Section IV-C): local work first, then
// the global user queue, then stealing; idle behaviour depends on policy
// and the proactive mask.
func (w *worker) run() {
	defer w.pool.wg.Done()
	// The base labels attribute every profiler sample on this goroutine
	// to the worker; runTask overlays the stage label per task.
	pprof.SetGoroutineLabels(w.baseCtx)
	idleSpins := 0
	for {
		if w.pool.closed.Load() {
			return
		}
		// Proactive mask: deactivated workers nap, periodically waking to
		// re-check (the paper's nap instruction semantics).
		if w.id >= int(w.pool.active.Load()) {
			w.nap()
			continue
		}
		if t, ok := w.local.pop(); ok {
			w.runTask(t)
			idleSpins = 0
			continue
		}
		// "Before a worker thread tries to steal work from another thread,
		// it first checks the global user queue."
		if qu, ok := w.pool.global.dequeue(); ok {
			w.processUser(qu)
			idleSpins = 0
			continue
		}
		if t, ok := w.trySteal(); ok {
			w.runTask(t)
			idleSpins = 0
			continue
		}
		// No work anywhere.
		idleSpins++
		if w.pool.cfg.NapOnIdle && idleSpins > 4 {
			w.nap()
		} else {
			runtime.Gosched()
		}
	}
}

// nap models the TILEPro64 nap instruction: sleep, charge the time to the
// nap counter, then return to the loop to re-check status. One clock read
// per edge serves both the stats counter and the telemetry span.
func (w *worker) nap() {
	start := obs.Nanotime()
	time.Sleep(w.pool.cfg.NapCheckPeriod)
	end := obs.Nanotime()
	w.stats.napNanos.Add(end - start)
	w.rec.Span(obs.KindNap, start, end)
}

// trySteal visits every other worker once, starting at a random victim.
func (w *worker) trySteal() (Task, bool) {
	n := len(w.pool.workers)
	if n <= 1 {
		return Task{}, false
	}
	start := w.r.Intn(n)
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == w.id {
			continue
		}
		if t, ok := w.pool.workers[v].local.steal(); ok {
			w.stats.steals.Add(1)
			if w.rec.Enabled() {
				w.rec.Instant(obs.KindSteal, obs.Nanotime())
			}
			return t, true
		}
	}
	w.stats.failedSteals.Add(1)
	return Task{}, false
}

// runTask executes one stage task, charging its span to the busy counter,
// the stage histogram and (sampled) the event ring, and overlaying the
// stage pprof label while it runs. The clock is read once per edge; the
// same readings feed the stats counter and the telemetry span.
func (w *worker) runTask(t Task) {
	on := w.rec.Enabled()
	if on {
		pprof.SetGoroutineLabels(w.stageCtx[t.stage])
	}
	start := obs.Nanotime()
	t.fn(w.ws)
	end := obs.Nanotime()
	w.stats.busyNanos.Add(end - start)
	w.stats.tasksRun.Add(1)
	if on {
		w.rec.StageSpan(t.stage, t.seq, t.user, t.task, start, end)
		pprof.SetGoroutineLabels(w.baseCtx)
	}
}

// processUser is the user-thread role (paper Section IV-C): initialise the
// job, then walk its Stages() — parallel stages are spawned onto the local
// deque and helped to completion, serial (single-task) stages run inline.
//
// Arena discipline: the job-lifetime buffers are carved from THIS worker's
// arena under a mark taken here, and released only after the result has
// been delivered. Tasks stolen by other workers write into those buffers
// (memory is just memory) but draw their own transient scratch from the
// thief's arena. While helping, this worker only ever executes stage
// tasks (its own or stolen), never another processUser — users are picked
// up solely from the global queue in run() — so every nested Mark/Release
// brackets a single task and the stack discipline holds trivially.
//
// This is the per-user deadline root: the driver loop allocates the job
// by design (not a zero-alloc root) but everything it reaches runs
// inside the subframe budget and must never block.
//
//ltephy:deadline-root
func (w *worker) processUser(qu queuedUser) {
	w.stats.usersStarted.Add(1)
	defer func() {
		if qu.done != nil {
			qu.done.Done()
		}
		if qu.fin != nil {
			qu.fin.complete()
		}
		w.pool.pending.Add(-1)
	}()

	user := int32(qu.data.Params.ID)
	start := obs.Nanotime()
	m := w.ws.Mark()
	// A fresh job per user: results escape through OnResult, and a reused
	// job would recycle the previous result's payload storage.
	job := &uplink.UserJob{}
	if err := job.Init(w.ws, w.pool.cfg.Receiver, qu.data); err != nil {
		// Malformed input is a caller bug; surface it loudly rather than
		// silently dropping the user. Release first so a recovering test
		// harness does not inherit a corrupted arena stack.
		w.ws.Release(m)
		panic(fmt.Sprintf("sched: worker %d: %v", w.id, err))
	}
	end := obs.Nanotime()
	w.stats.busyNanos.Add(end - start)
	w.rec.StageSpan(obs.StageInit, qu.seq, user, 0, start, end)

	// Window fan-out: hand the turbo decoder a hook that turns one large
	// code block's trellis windows into backend-class tasks on this
	// worker's deque, so a single max-size block no longer serializes the
	// subframe on one core. Installed after Init (which clears it); with
	// one worker the hook would only add push/pop overhead, so the decoder
	// runs serially — results are bit-identical either way.
	if len(w.pool.workers) > 1 {
		job.SetParallel(func(n int, fn func(int)) {
			w.runWindows(qu.seq, user, n, fn)
		})
	}

	stages := job.Stages()
	for si := range stages {
		s := stages[si]
		// The stage index is the obs stage class: Stages() returns the
		// pipeline in chanest/weights/combine/backend order, matching
		// obs.StageChanEst..StageBackend (TestStageClassAlignment pins it).
		cls := uint8(si)
		n := s.Tasks(job)
		if n == 1 {
			// Serial stage (weights, backend): run inline, no spawn.
			start = obs.Nanotime()
			s.Run(w.ws, job, 0)
			end = obs.Nanotime()
			w.stats.busyNanos.Add(end - start)
			w.rec.StageSpan(cls, qu.seq, user, 0, start, end)
			continue
		}
		w.runStage(cls, n, s, job, qu.seq, user)
	}

	res := job.Result()
	res.Seq = qu.seq
	res.Cell = qu.cell
	if w.pool.cfg.OnResult != nil {
		w.pool.cfg.OnResult(res)
	}
	if w.rec.Enabled() {
		w.rec.TurboHalfIters(res.TurboHalfIters)
		w.pool.tel.Deadline().Complete(qu.seq, obs.Nanotime())
	}
	w.ws.Release(m)
}

// runWindows is the turbo window fan-out (the hook processUser installs
// via UserJob.SetParallel): each of the decoder's n independent trellis
// windows becomes a backend-class task on this worker's deque, and the
// worker processes/helps until the half-iteration's windows are all done
// — the same spawn-and-help discipline runStage applies to the paper's
// stage tasks, one level deeper. Windows write disjoint slices of the
// decoder's state, so thieves need no synchronisation beyond the
// completion counter, and the result is bit-identical for any worker
// count.
//
// The decoder invokes the hook from the backend stage, which runs inline
// on the user thread — never from a stolen task — so the help loop here
// is the only task loop active on this goroutine and the arena mark
// discipline of processUser is undisturbed.
//
// This is the audited window-task hand-off: the pushed closures
// reference the decoder's arena-backed window state (through fn),
// stealing workers write disjoint slices, and the help loop joins on
// the completion counter before processUser releases the mark.
//
//ltephy:cross-worker-ok
func (w *worker) runWindows(seq int64, user int32, n int, fn func(int)) {
	var remaining atomic.Int64
	remaining.Store(int64(n))
	for i := 0; i < n; i++ {
		i := i
		w.local.push(Task{
			fn: func(*workspace.Arena) {
				fn(i)
				remaining.Add(-1)
			},
			seq: seq, user: user, task: int32(i), stage: obs.StageBackend,
		})
	}
	for {
		if t, ok := w.local.pop(); ok {
			w.runTask(t)
			continue
		}
		if remaining.Load() == 0 {
			return
		}
		if t, ok := w.trySteal(); ok {
			w.runTask(t)
			continue
		}
		runtime.Gosched()
	}
}

// runStage pushes the stage's n tasks onto the local deque, then
// processes/helps until all have completed, stealing from others while
// waiting (the paper: "the user thread waits until the results from all
// tasks become available" while other workers may still hold stolen
// tasks). Each task runs against the executing worker's arena.
func (w *worker) runStage(cls uint8, n int, s uplink.Stage, job *uplink.UserJob, seq int64, user int32) {
	var remaining atomic.Int64
	remaining.Store(int64(n))
	for i := 0; i < n; i++ {
		i := i
		w.local.push(Task{
			fn: func(ws *workspace.Arena) {
				s.Run(ws, job, i)
				remaining.Add(-1)
			},
			seq: seq, user: user, task: int32(i), stage: cls,
		})
	}
	for {
		if t, ok := w.local.pop(); ok {
			w.runTask(t)
			continue
		}
		if remaining.Load() == 0 {
			return
		}
		// Help with anything while waiting — our own stolen-back tasks or
		// other users' tasks; tasks never block, so this cannot deadlock.
		if t, ok := w.trySteal(); ok {
			w.runTask(t)
			continue
		}
		runtime.Gosched()
	}
}
