package sched

import (
	"os"
	"runtime"
	"testing"
	"time"

	"ltephy/internal/params"
	"ltephy/internal/phy/modulation"
	"ltephy/internal/uplink"
)

// turboReceiver is the line-rate turbo configuration the fan-out tests
// run: rate-matched full decoding with the int8 kernel. CodeRate 0.508
// on a (PRB 14, 1 layer, 64-QAM) allocation makes the transport block
// exactly one maximum-size K=6144 code block — the shape whose serial
// decode the window fan-out exists to break up.
func turboReceiver() uplink.ReceiverConfig {
	rc := uplink.DefaultConfig()
	rc.Turbo = uplink.TurboFull
	rc.CodeRate = 0.508
	return rc
}

var turboMaxUser = uplink.UserParams{ID: 0, PRB: 14, Layers: 1, Mod: modulation.QAM64}

// TestTurboFanoutDeterministicAcrossWorkers is the fan-out acceptance
// check: a subframe whose backend is one maximum-size code block must
// produce bit-identical results — payload, CRC and realized
// half-iteration count — on the serial reference and on pools of every
// worker count, because trellis windows are independent and write
// disjoint state no matter which worker runs them.
// turboDispatcherConfig aligns the transmitter with the TurboFull
// receiver: the dispatcher must encode what the pool will decode.
func turboDispatcherConfig(rc uplink.ReceiverConfig) DispatcherConfig {
	dc := testDispatcherConfig()
	dc.TX.Receiver = rc
	return dc
}

func TestTurboFanoutDeterministicAcrossWorkers(t *testing.T) {
	rc := turboReceiver()
	d := NewDispatcher(turboDispatcherConfig(rc))
	sf, err := d.Subframe(0, []uplink.UserParams{turboMaxUser})
	if err != nil {
		t.Fatal(err)
	}
	want, err := uplink.ProcessSubframe(rc, sf)
	if err != nil {
		t.Fatal(err)
	}
	if !want[0].CRCOK {
		t.Fatal("reference decode failed CRC; fan-out comparison needs a decodable block")
	}
	if want[0].TurboHalfIters == 0 {
		t.Fatal("reference decode reported zero half-iterations in TurboFull mode")
	}
	for _, workers := range []int{1, 2, 4} {
		col := NewCollector()
		cfg := DefaultPoolConfig()
		cfg.Workers = workers
		cfg.Receiver = rc
		cfg.OnResult = col.Add
		pool, err := NewPool(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pool.ProcessSubframe(sf)
		pool.Close()
		got := col.Sorted()
		if len(got) != 1 {
			t.Fatalf("workers=%d: %d results, want 1", workers, len(got))
		}
		if !got[0].Equal(want[0]) {
			t.Errorf("workers=%d: result differs from serial reference (halfIters %d vs %d)",
				workers, got[0].TurboHalfIters, want[0].TurboHalfIters)
		}
	}
}

// TestTurboFanoutSpawnsWindowTasks pins that the decode actually fans
// out: on a multi-worker pool the single-block subframe must run more
// tasks than its stage tasks alone (4 chanest + 12 data), the surplus
// being backend window tasks pushed by the decoder's Parallel hook.
func TestTurboFanoutSpawnsWindowTasks(t *testing.T) {
	rc := turboReceiver()
	d := NewDispatcher(turboDispatcherConfig(rc))
	sf, err := d.Subframe(0, []uplink.UserParams{turboMaxUser})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPoolConfig()
	cfg.Workers = 4
	cfg.Receiver = rc
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool.ProcessSubframe(sf)
	pool.Close()
	var total int64
	for _, s := range pool.Stats() {
		total += s.TasksRun
	}
	stageTasks := int64(4 + 12) // antennas*layers chanest + 12*layers data
	if total <= stageTasks {
		t.Errorf("ran %d tasks, want > %d: turbo windows never became tasks", total, stageTasks)
	}
}

// TestTurboVerifyTrace runs the paper's serial-vs-parallel verification
// over a mixed trace with full turbo decoding — small blocks (decoded
// inline) and the max-size block (fanned out) must both match the serial
// reference bit-for-bit, including realized half-iteration counts.
func TestTurboVerifyTrace(t *testing.T) {
	poolCfg := DefaultPoolConfig()
	poolCfg.Workers = 6
	poolCfg.Receiver = turboReceiver()
	trace := &params.Trace{Subframes: [][]uplink.UserParams{
		{turboMaxUser, {ID: 1, PRB: 4, Layers: 1, Mod: modulation.QPSK}},
		{{ID: 0, PRB: 6, Layers: 2, Mod: modulation.QAM16}},
		{turboMaxUser},
	}}
	if err := Verify(poolCfg, turboDispatcherConfig(poolCfg.Receiver), trace); err != nil {
		t.Fatal(err)
	}
}

// TestTurboFanoutSpeedupGate is the CI speedup gate (set
// LTEPHY_TURBO_SPEEDUP_GATE=1): one max-size code block on a 4-worker
// pool must decode at least 2x faster than on a single worker. The
// subframe is generated at low SNR so the decoder runs deep into its
// iteration budget (deterministically — same input, same half-iteration
// count on both pools) and the backend dominates the end-to-end time
// being compared.
func TestTurboFanoutSpeedupGate(t *testing.T) {
	if os.Getenv("LTEPHY_TURBO_SPEEDUP_GATE") == "" {
		t.Skip("set LTEPHY_TURBO_SPEEDUP_GATE=1 to run the fan-out speedup gate")
	}
	if runtime.NumCPU() < 4 {
		t.Skip("speedup gate needs >= 4 CPUs")
	}
	rc := turboReceiver()
	rc.TurboIterations = 8
	dc := turboDispatcherConfig(rc)
	dc.TX.SNRdB = 0 // undecodable: the budget, not the CRC gate, ends the decode
	d := NewDispatcher(dc)
	sf, err := d.Subframe(0, []uplink.UserParams{turboMaxUser})
	if err != nil {
		t.Fatal(err)
	}
	measure := func(workers int) time.Duration {
		cfg := DefaultPoolConfig()
		cfg.Workers = workers
		cfg.Receiver = rc
		pool, err := NewPool(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		pool.ProcessSubframe(sf) // warm arenas and caches
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 7; i++ {
			start := time.Now()
			pool.ProcessSubframe(sf)
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}
	serial := measure(1)
	fanned := measure(4)
	speedup := float64(serial) / float64(fanned)
	t.Logf("single-worker %v, 4-worker %v, speedup %.2fx", serial, fanned, speedup)
	if speedup < 2 {
		t.Errorf("window fan-out speedup %.2fx < 2x (serial %v, 4-worker %v)", speedup, serial, fanned)
	}
}
