package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ltephy/internal/phy/modulation"
	"ltephy/internal/phy/workspace"
	"ltephy/internal/uplink"
)

func TestCLDequeLIFOAndFIFO(t *testing.T) {
	d := newCLDeque()
	order := []int{}
	for i := 0; i < 5; i++ {
		i := i
		d.push(Task{fn: func(*workspace.Arena) { order = append(order, i) }})
	}
	ta, ok := d.pop()
	if !ok {
		t.Fatal("pop failed")
	}
	ta.fn(nil)
	tb, ok := d.steal()
	if !ok {
		t.Fatal("steal failed")
	}
	tb.fn(nil)
	if order[0] != 4 || order[1] != 0 {
		t.Errorf("pop/steal order = %v, want [4 0]", order)
	}
	if d.size() != 3 {
		t.Errorf("size = %d, want 3", d.size())
	}
}

func TestCLDequeEmpty(t *testing.T) {
	d := newCLDeque()
	if _, ok := d.pop(); ok {
		t.Error("pop on empty succeeded")
	}
	if _, ok := d.steal(); ok {
		t.Error("steal on empty succeeded")
	}
	// Empty after draining too.
	d.push(Task{fn: func(*workspace.Arena) {}})
	if _, ok := d.pop(); !ok {
		t.Fatal("pop failed")
	}
	if _, ok := d.pop(); ok {
		t.Error("pop after drain succeeded")
	}
	if d.size() != 0 {
		t.Errorf("size = %d", d.size())
	}
}

func TestCLDequeGrowth(t *testing.T) {
	d := newCLDeque()
	const n = 10 * clInitialSize
	var count atomic.Int64
	for i := 0; i < n; i++ {
		d.push(Task{fn: func(*workspace.Arena) { count.Add(1) }})
	}
	if d.size() != n {
		t.Fatalf("size = %d, want %d", d.size(), n)
	}
	for {
		task, ok := d.pop()
		if !ok {
			break
		}
		task.fn(nil)
	}
	if count.Load() != n {
		t.Errorf("ran %d tasks, want %d", count.Load(), n)
	}
}

// TestCLDequeOwnerThiefRace: one owner pushing and popping while several
// thieves steal concurrently; every task must run exactly once.
func TestCLDequeOwnerThiefRace(t *testing.T) {
	d := newCLDeque()
	const total = 20000
	var ran atomic.Int64
	var done atomic.Bool

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if task, ok := d.steal(); ok {
					task.fn(nil)
				} else {
					runtime.Gosched()
				}
			}
			// Final sweep after the owner stops.
			for {
				task, ok := d.steal()
				if !ok {
					return
				}
				task.fn(nil)
			}
		}()
	}

	// Owner: interleave pushes with occasional pops.
	for i := 0; i < total; i++ {
		d.push(Task{fn: func(*workspace.Arena) { ran.Add(1) }})
		if i%3 == 0 {
			if task, ok := d.pop(); ok {
				task.fn(nil)
			}
		}
	}
	for {
		task, ok := d.pop()
		if !ok {
			break
		}
		task.fn(nil)
	}
	done.Store(true)
	wg.Wait()
	// Drain anything a losing thief returned-empty on.
	for {
		task, ok := d.steal()
		if !ok {
			break
		}
		task.fn(nil)
	}
	if ran.Load() != total {
		t.Errorf("ran %d tasks, want %d (lost or duplicated under contention)", ran.Load(), total)
	}
}

// TestVerifyWithLockFreeDeque re-runs the paper's serial-vs-parallel check
// with the Chase-Lev deque driving the pool.
func TestVerifyWithLockFreeDeque(t *testing.T) {
	poolCfg := DefaultPoolConfig()
	poolCfg.Workers = 4
	poolCfg.LockFreeDeque = true
	if err := Verify(poolCfg, testDispatcherConfig(), smallTrace(t, 20)); err != nil {
		t.Fatal(err)
	}
}

func TestLockFreePoolCompletesWork(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.Workers = 4
	cfg.LockFreeDeque = true
	col := NewCollector()
	cfg.OnResult = col.Add
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	d := NewDispatcher(testDispatcherConfig())
	trace := smallTrace(t, 8)
	want := 0
	for seq, users := range trace.Subframes {
		sf, err := d.Subframe(int64(seq), users)
		if err != nil {
			t.Fatal(err)
		}
		want += len(users)
		pool.ProcessSubframe(sf)
	}
	if col.Len() != want {
		t.Errorf("collected %d results, want %d", col.Len(), want)
	}
}

// BenchmarkDeques compares the mutex and Chase-Lev deques under a
// synthetic owner/thief pattern.
func BenchmarkDeques(b *testing.B) {
	run := func(b *testing.B, d taskDeque) {
		var sink atomic.Int64
		task := Task{fn: func(*workspace.Arena) { sink.Add(1) }}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if t, ok := d.steal(); ok {
						t.fn(nil)
					}
				}
			}()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.push(task)
			if i%2 == 0 {
				if t, ok := d.pop(); ok {
					t.fn(nil)
				}
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	}
	b.Run("mutex", func(b *testing.B) { run(b, &deque{}) })
	b.Run("chaselev", func(b *testing.B) { run(b, newCLDeque()) })
}

// BenchmarkPoolDeques compares end-to-end pool throughput with both deques.
func BenchmarkPoolDeques(b *testing.B) {
	for _, lockFree := range []bool{false, true} {
		name := "mutex"
		if lockFree {
			name = "chaselev"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultPoolConfig()
			cfg.Workers = 4
			cfg.LockFreeDeque = lockFree
			pool, err := NewPool(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			d := NewDispatcher(DefaultDispatcherConfig())
			sf, err := d.Subframe(0, []uplink.UserParams{
				{ID: 0, PRB: 10, Layers: 2, Mod: modulation.QAM16},
				{ID: 1, PRB: 10, Layers: 2, Mod: modulation.QAM16},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.ProcessSubframe(sf)
			}
		})
	}
}
