package modulation

import (
	"math"
	"testing"

	"ltephy/internal/rng"
)

// noisySymsF32 returns noisy constellation symbols in both layouts plus
// the transmitted bits.
func noisySymsF32(t *testing.T, s Scheme, count int, sigma float64, seed uint64) (re, im []float32, syms []complex128, bits []uint8) {
	t.Helper()
	r := rng.New(seed)
	q := s.Bits()
	bits = make([]uint8, count*q)
	for i := range bits {
		bits[i] = uint8(r.Bit())
	}
	clean := s.Map(nil, bits)
	re = make([]float32, count)
	im = make([]float32, count)
	syms = make([]complex128, count)
	for k, v := range clean {
		// Add noise in float64, then narrow once: the complex128 reference
		// sees the float32-rounded symbols so both demappers get identical
		// inputs.
		re[k] = float32(real(v) + sigma*r.NormFloat64())
		im[k] = float32(imag(v) + sigma*r.NormFloat64())
		syms[k] = complex(float64(re[k]), float64(im[k]))
	}
	return re, im, syms, bits
}

// TestDemapF32MatchesFloat64 pins the float32 demapper against the
// float64 demapper on identical (float32-representable) inputs: hard
// decisions must agree exactly and LLR magnitudes must agree to float32
// rounding.
func TestDemapF32MatchesFloat64(t *testing.T) {
	for _, s := range []Scheme{QPSK, QAM16, QAM64} {
		// sigma 0.015 keeps even 64-QAM's levels (spacing 0.31) ~10 sigma
		// apart, so every hard decision is reliable.
		re, im, syms, bits := noisySymsF32(t, s, 500, 0.015, 7)
		nv := 0.02
		want := s.Demap(nil, syms, nv)
		got := s.DemapF32(nil, re, im, float32(nv))
		if len(got) != len(want) {
			t.Fatalf("%v: %d LLRs, want %d", s, len(got), len(want))
		}
		for i := range want {
			d := math.Abs(float64(got[i]) - want[i])
			if d > 1e-4*(1+math.Abs(want[i])) {
				t.Errorf("%v: LLR[%d] = %g, want %g", s, i, got[i], want[i])
			}
		}
		// At this comfortable SNR every hard decision must match the
		// transmitted bits on both paths.
		hard := HardDecideF32(nil, got)
		for i := range bits {
			if hard[i] != bits[i] {
				t.Fatalf("%v: bit %d decided %d, want %d", s, i, hard[i], bits[i])
			}
		}
	}
}

// TestEVMF32MatchesFloat64 pins the float32 EVM against the float64 EVM
// on identical inputs.
func TestEVMF32MatchesFloat64(t *testing.T) {
	for _, s := range []Scheme{QPSK, QAM16, QAM64} {
		re, im, syms, _ := noisySymsF32(t, s, 400, 0.08, 9)
		want := s.EVM(syms)
		got := s.EVMF32(re, im)
		if d := math.Abs(got - want); d > 1e-5*(1+want) {
			t.Errorf("%v: EVMF32 = %g, want %g", s, got, want)
		}
	}
	if got := QPSK.EVMF32(nil, nil); got != 0 {
		t.Errorf("empty EVMF32 = %g, want 0", got)
	}
}

// TestDemapF32PanicsOnBadNoise covers the noiseVar guard, including NaN.
func TestDemapF32PanicsOnBadNoise(t *testing.T) {
	for _, nv := range []float32{0, -1, float32(math.NaN())} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DemapF32 accepted noiseVar %g", nv)
				}
			}()
			QPSK.DemapF32(nil, []float32{1}, []float32{1}, nv)
		}()
	}
}
