// Package modulation implements the LTE uplink constellations (TS 36.211
// §7.1): Gray-mapped QPSK, 16-QAM and 64-QAM, plus an exact max-log-MAP
// soft demapper producing per-bit log-likelihood ratios.
//
// The demapper is the paper's "soft symbol demapping" kernel (Fig. 3). Its
// cost grows with the constellation size (2^Q points per symbol), which is
// one of the two reasons higher-order modulation raises the subframe
// workload in Fig. 11 (the other being more bits through the decoder).
package modulation

import (
	"fmt"
	"math"
)

// Scheme identifies a modulation scheme. The zero value is QPSK.
type Scheme int

// The three uplink modulation schemes the paper's parameter model selects
// between (Fig. 10).
const (
	QPSK Scheme = iota
	QAM16
	QAM64
)

// nSchemes is the number of supported schemes; used for table sizing.
const nSchemes = 3

// String returns the conventional name of the scheme.
func (s Scheme) String() string {
	switch s {
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Bits returns the number of bits carried per modulated symbol.
func (s Scheme) Bits() int {
	switch s {
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		panic(fmt.Sprintf("modulation: unknown scheme %d", int(s)))
	}
}

// Points returns the constellation size 2^Bits.
func (s Scheme) Points() int { return 1 << uint(s.Bits()) }

// pamLevel maps the per-axis bit group to its amplitude level following the
// 36.211 tables. For QPSK the single bit selects ±1/√2; for 16-QAM the two
// bits select ±1,±3 scaled by 1/√10; for 64-QAM the three bits select
// ±1..±7 scaled by 1/√42. The Gray code used is the standard's:
// 16-QAM per-axis levels for bits (b0,b2): 0→1, 1→3 (b0 gives sign).
func pamLevel(bits []uint8, scale float64) float64 {
	var mag float64
	switch len(bits) {
	case 1:
		mag = 1
	case 2:
		// 36.211 Table 7.1.3-1: second bit 0 → 1, 1 → 3.
		if bits[1] == 0 {
			mag = 1
		} else {
			mag = 3
		}
	case 3:
		// 36.211 Table 7.1.4-1 per-axis levels for (b2,b4) given sign b0:
		// 00→3, 01→1, 10→5, 11→7.
		switch bits[1]<<1 | bits[2] {
		case 0b00:
			mag = 3
		case 0b01:
			mag = 1
		case 0b10:
			mag = 5
		default:
			mag = 7
		}
	}
	v := mag * scale
	if bits[0] == 1 {
		v = -v
	}
	return v
}

// constellations[s][idx] is the symbol whose bits, MSB first, equal idx.
var constellations = func() [nSchemes][]complex128 {
	var tabs [nSchemes][]complex128
	for _, s := range []Scheme{QPSK, QAM16, QAM64} {
		q := s.Bits()
		scale := map[Scheme]float64{QPSK: 1 / math.Sqrt2, QAM16: 1 / math.Sqrt(10), QAM64: 1 / math.Sqrt(42)}[s]
		tab := make([]complex128, 1<<uint(q))
		for idx := range tab {
			bits := make([]uint8, q)
			for i := 0; i < q; i++ {
				bits[i] = uint8(idx>>uint(q-1-i)) & 1
			}
			// Per 36.211: even-position bits (b0, b2, b4) drive I,
			// odd-position bits (b1, b3, b5) drive Q.
			var ib, qb []uint8
			for i := 0; i < q; i += 2 {
				ib = append(ib, bits[i])
			}
			for i := 1; i < q; i += 2 {
				qb = append(qb, bits[i])
			}
			tab[idx] = complex(pamLevel(ib, scale), pamLevel(qb, scale))
		}
		tabs[s] = tab
	}
	return tabs
}()

// Constellation returns the scheme's symbol table indexed by the bit
// pattern (MSB first). The returned slice is shared; callers must not
// modify it.
func (s Scheme) Constellation() []complex128 { return constellations[s] }

// axisLevels[s][t] is the per-axis PAM amplitude for the axis bit group t
// (MSB first, Bits()/2 bits per axis). The LTE constellations are square
// Gray-mapped QAM with even-position bits on I and odd-position bits on Q,
// so a symbol factors as (level[iBits], level[qBits]) and the demapper can
// search the two axes independently. The levels are read back out of the
// constellation table itself so both representations are the same float64
// values by construction.
var axisLevels = func() [nSchemes][]float64 {
	var tabs [nSchemes][]float64
	for _, s := range []Scheme{QPSK, QAM16, QAM64} {
		h := s.Bits() / 2
		tab := make([]float64, 1<<uint(h))
		full := constellations[s]
		for t := range tab {
			// The symbol whose I bits are t and Q bits are all zero sits at
			// the full-table index with t's bits spread to even positions.
			idx := 0
			for i := 0; i < h; i++ {
				idx = idx<<2 | ((t>>uint(h-1-i))&1)<<1
			}
			tab[t] = real(full[idx])
		}
		tabs[s] = tab
	}
	return tabs
}()

// Map modulates bits (values 0/1, length a multiple of Bits()) into
// symbols appended to dst, returning the extended slice.
func (s Scheme) Map(dst []complex128, bits []uint8) []complex128 {
	q := s.Bits()
	if len(bits)%q != 0 {
		panic(fmt.Sprintf("modulation: %d bits not a multiple of %d", len(bits), q))
	}
	tab := constellations[s]
	for i := 0; i < len(bits); i += q {
		idx := 0
		for j := 0; j < q; j++ {
			idx = idx<<1 | int(bits[i+j])
		}
		dst = append(dst, tab[idx])
	}
	return dst
}

// Demap computes max-log LLRs for each bit of each received symbol and
// appends them to dst. The LLR convention is
//
//	LLR(b) = (min_{s: b=1} |y-s|^2 - min_{s: b=0} |y-s|^2) / noiseVar
//
// so positive LLR means bit 0 is more likely — matching the turbo decoder's
// input convention. noiseVar must be > 0.
//
// The search exploits the square Gray constellations: |y-s|^2 separates
// into per-axis terms and each bit constrains only one axis, so the 2^Q
// point scan collapses to two 2^(Q/2) level scans. The result is
// bit-identical to the exhaustive search (the minimising point of the sum
// is the pair of per-axis minimisers, and float rounding is monotone), and
// TestDemapMatchesExhaustive holds the implementation to exactly that.
func (s Scheme) Demap(dst []float64, syms []complex128, noiseVar float64) []float64 {
	if noiseVar <= 0 {
		panic(fmt.Sprintf("modulation: non-positive noise variance %g", noiseVar))
	}
	q := s.Bits()
	h := q / 2
	lv := axisLevels[s]
	nl := len(lv)
	inv := 1 / noiseVar
	// Per-axis squared distances and per-axis-bit subset minima.
	var dI, dQ [8]float64
	var i0, i1, q0, q1 [3]float64
	for _, y := range syms {
		yI, yQ := real(y), imag(y)
		minI, minQ := math.Inf(1), math.Inf(1)
		for t := 0; t < nl; t++ {
			dr := yI - lv[t]
			d := dr * dr
			dI[t] = d
			if d < minI {
				minI = d
			}
			di := yQ - lv[t]
			d = di * di
			dQ[t] = d
			if d < minQ {
				minQ = d
			}
		}
		for b := 0; b < h; b++ {
			mask := 1 << uint(h-1-b)
			m0, m1 := math.Inf(1), math.Inf(1)
			n0, n1 := math.Inf(1), math.Inf(1)
			for t := 0; t < nl; t++ {
				if t&mask != 0 {
					if dI[t] < m1 {
						m1 = dI[t]
					}
					if dQ[t] < n1 {
						n1 = dQ[t]
					}
				} else {
					if dI[t] < m0 {
						m0 = dI[t]
					}
					if dQ[t] < n0 {
						n0 = dQ[t]
					}
				}
			}
			i0[b], i1[b] = m0, m1
			q0[b], q1[b] = n0, n1
		}
		// Emit in transmitted bit order: even positions are I bits, odd are
		// Q bits. The opposite axis contributes its unconstrained minimum to
		// both hypotheses — added (not cancelled) so each hypothesis distance
		// rounds exactly as the exhaustive point-wise sums did.
		for p := 0; p < q; p++ {
			b := p >> 1
			if p&1 == 0 {
				dst = append(dst, ((i1[b]+minQ)-(i0[b]+minQ))*inv)
			} else {
				dst = append(dst, ((q1[b]+minI)-(q0[b]+minI))*inv)
			}
		}
	}
	return dst
}

// EVM returns the root-mean-square error-vector magnitude of the received
// symbols relative to their nearest constellation points, normalised to
// the unit average constellation energy — the standard link-quality
// metric (an EVM of 0.1 is -20 dB).
func (s Scheme) EVM(syms []complex128) float64 {
	if len(syms) == 0 {
		return 0
	}
	lv := axisLevels[s]
	nl := len(lv)
	var errPow float64
	// Same per-axis separation as Demap: the nearest constellation point is
	// the pair of nearest per-axis levels.
	for _, y := range syms {
		yI, yQ := real(y), imag(y)
		minI, minQ := math.Inf(1), math.Inf(1)
		for t := 0; t < nl; t++ {
			dr := yI - lv[t]
			if d := dr * dr; d < minI {
				minI = d
			}
			di := yQ - lv[t]
			if d := di * di; d < minQ {
				minQ = d
			}
		}
		errPow += minI + minQ
	}
	return math.Sqrt(errPow / float64(len(syms)))
}

// HardDecide converts LLRs to bits using the positive-means-zero
// convention, appending to dst.
func HardDecide(dst []uint8, llr []float64) []uint8 {
	for _, l := range llr {
		if l >= 0 {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
		}
	}
	return dst
}
