package modulation

import (
	"fmt"
	"math"
)

// Float32 split-plane demapper path: the receiver's float32 lane layout
// (internal/phy/lane) carries equalised symbols as separate re/im
// float32 planes, and the turbo decoder's input conversion happens once
// per allocation at the job boundary, so the per-symbol search here runs
// entirely in float32. The per-axis factorisation argument of Demap is
// rounding-mode independent (the minimising point of a sum of per-axis
// terms is the pair of per-axis minimisers under any monotone rounding),
// so DemapF32 is bit-identical to an exhaustive float32 point scan.

// axisLevelsF32 narrows the per-axis PAM levels once; the float64 table
// values are exactly representable only for QPSK, so the float32 path
// consistently uses the narrowed levels everywhere (demap and EVM agree
// with each other by construction).
var axisLevelsF32 = func() [nSchemes][]float32 {
	var tabs [nSchemes][]float32
	for s, lv := range axisLevels {
		tab := make([]float32, len(lv))
		for i, v := range lv {
			tab[i] = float32(v)
		}
		tabs[s] = tab
	}
	return tabs
}()

// inf32 is the float32 positive infinity used as the scan sentinel.
var inf32 = float32(math.Inf(1))

// DemapF32 is Demap over split-plane float32 symbols, producing float32
// LLRs with the same convention (positive means bit 0 is more likely):
//
//	LLR(b) = (min_{s: b=1} |y-s|^2 - min_{s: b=0} |y-s|^2) / noiseVar
//
// symRe and symIm must have equal length; LLRs are appended to dst in
// transmitted bit order. noiseVar must be > 0.
func (s Scheme) DemapF32(dst []float32, symRe, symIm []float32, noiseVar float32) []float32 {
	if !(noiseVar > 0) {
		panic(fmt.Sprintf("modulation: non-positive noise variance %g", noiseVar))
	}
	if len(symRe) != len(symIm) {
		panic(fmt.Sprintf("modulation: plane lengths %d/%d differ", len(symRe), len(symIm)))
	}
	q := s.Bits()
	h := q / 2
	lv := axisLevelsF32[s]
	nl := len(lv)
	inv := 1 / noiseVar
	symIm = symIm[:len(symRe)]
	// Per-axis squared distances and per-axis-bit subset minima, exactly
	// the float64 demapper's scan narrowed to float32.
	var dI, dQ [8]float32
	var i0, i1, q0, q1 [3]float32
	for idx := range symRe {
		yI, yQ := symRe[idx], symIm[idx]
		minI, minQ := inf32, inf32
		for t := 0; t < nl; t++ {
			dr := yI - lv[t]
			d := dr * dr
			dI[t] = d
			if d < minI {
				minI = d
			}
			di := yQ - lv[t]
			d = di * di
			dQ[t] = d
			if d < minQ {
				minQ = d
			}
		}
		for b := 0; b < h; b++ {
			mask := 1 << uint(h-1-b)
			m0, m1 := inf32, inf32
			n0, n1 := inf32, inf32
			for t := 0; t < nl; t++ {
				if t&mask != 0 {
					if dI[t] < m1 {
						m1 = dI[t]
					}
					if dQ[t] < n1 {
						n1 = dQ[t]
					}
				} else {
					if dI[t] < m0 {
						m0 = dI[t]
					}
					if dQ[t] < n0 {
						n0 = dQ[t]
					}
				}
			}
			i0[b], i1[b] = m0, m1
			q0[b], q1[b] = n0, n1
		}
		for p := 0; p < q; p++ {
			b := p >> 1
			if p&1 == 0 {
				dst = append(dst, ((i1[b]+minQ)-(i0[b]+minQ))*inv)
			} else {
				dst = append(dst, ((q1[b]+minI)-(q0[b]+minI))*inv)
			}
		}
	}
	return dst
}

// EVMF32 is EVM over split-plane float32 symbols. The per-symbol nearest
// -point distances are computed in float32, matching the demapper's
// arithmetic, and accumulated in float64 so the reduction over a whole
// allocation does not lose precision.
func (s Scheme) EVMF32(symRe, symIm []float32) float64 {
	if len(symRe) == 0 {
		return 0
	}
	lv := axisLevelsF32[s]
	nl := len(lv)
	symIm = symIm[:len(symRe)]
	var errPow float64
	for idx := range symRe {
		yI, yQ := symRe[idx], symIm[idx]
		minI, minQ := inf32, inf32
		for t := 0; t < nl; t++ {
			dr := yI - lv[t]
			if d := dr * dr; d < minI {
				minI = d
			}
			di := yQ - lv[t]
			if d := di * di; d < minQ {
				minQ = d
			}
		}
		errPow += float64(minI) + float64(minQ)
	}
	return math.Sqrt(errPow / float64(len(symRe)))
}

// HardDecideF32 converts float32 LLRs to bits with the same
// positive-means-zero convention as HardDecide, appending to dst.
func HardDecideF32(dst []uint8, llr []float32) []uint8 {
	for _, l := range llr {
		if l >= 0 {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
		}
	}
	return dst
}
