package modulation

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

var schemes = []Scheme{QPSK, QAM16, QAM64}

func TestBitsAndPoints(t *testing.T) {
	want := map[Scheme][2]int{QPSK: {2, 4}, QAM16: {4, 16}, QAM64: {6, 64}}
	for s, w := range want {
		if s.Bits() != w[0] || s.Points() != w[1] {
			t.Errorf("%v: (%d,%d), want (%d,%d)", s, s.Bits(), s.Points(), w[0], w[1])
		}
	}
}

func TestUnitAveragePower(t *testing.T) {
	// Every LTE constellation is normalised to unit average energy.
	for _, s := range schemes {
		var sum float64
		tab := s.Constellation()
		for _, pt := range tab {
			sum += real(pt)*real(pt) + imag(pt)*imag(pt)
		}
		avg := sum / float64(len(tab))
		if math.Abs(avg-1) > 1e-12 {
			t.Errorf("%v: average energy %g, want 1", s, avg)
		}
	}
}

func TestConstellationPointsDistinct(t *testing.T) {
	for _, s := range schemes {
		tab := s.Constellation()
		for i := 0; i < len(tab); i++ {
			for j := i + 1; j < len(tab); j++ {
				if cmplx.Abs(tab[i]-tab[j]) < 1e-9 {
					t.Errorf("%v: points %d and %d coincide at %v", s, i, j, tab[i])
				}
			}
		}
	}
}

// TestGrayMapping checks the defining Gray property: nearest neighbours in
// the constellation differ in exactly one bit.
func TestGrayMapping(t *testing.T) {
	for _, s := range schemes {
		tab := s.Constellation()
		// Find the minimum distance, then check all pairs at that distance.
		minD := math.Inf(1)
		for i := range tab {
			for j := i + 1; j < len(tab); j++ {
				if d := cmplx.Abs(tab[i] - tab[j]); d < minD {
					minD = d
				}
			}
		}
		for i := range tab {
			for j := i + 1; j < len(tab); j++ {
				if cmplx.Abs(tab[i]-tab[j]) < minD*1.001 {
					diff := i ^ j
					if diff&(diff-1) != 0 {
						t.Errorf("%v: neighbours %06b and %06b differ in >1 bit", s, i, j)
					}
				}
			}
		}
	}
}

func TestKnownQPSKPoints(t *testing.T) {
	// 36.211 Table 7.1.2-1: bits 00 -> (1+j)/sqrt(2), 11 -> (-1-j)/sqrt(2).
	tab := QPSK.Constellation()
	r := 1 / math.Sqrt2
	cases := map[int]complex128{
		0b00: complex(r, r), 0b01: complex(r, -r),
		0b10: complex(-r, r), 0b11: complex(-r, -r),
	}
	for idx, want := range cases {
		if cmplx.Abs(tab[idx]-want) > 1e-12 {
			t.Errorf("QPSK[%02b] = %v, want %v", idx, tab[idx], want)
		}
	}
}

func TestKnown16QAMPoint(t *testing.T) {
	// 36.211 Table 7.1.3-1: bits 0000 -> (1+j)/sqrt(10),
	// 1011 -> (-3+3j)/sqrt(10) (b0 = I sign, b2 = I magnitude,
	// b1 = Q sign, b3 = Q magnitude), 0111 -> (3-3j)/sqrt(10).
	tab := QAM16.Constellation()
	r := 1 / math.Sqrt(10)
	if want := complex(r, r); cmplx.Abs(tab[0b0000]-want) > 1e-12 {
		t.Errorf("16QAM[0000] = %v, want %v", tab[0], want)
	}
	if want := complex(-3*r, 3*r); cmplx.Abs(tab[0b1011]-want) > 1e-12 {
		t.Errorf("16QAM[1011] = %v, want %v", tab[0b1011], want)
	}
	if want := complex(3*r, -3*r); cmplx.Abs(tab[0b0111]-want) > 1e-12 {
		t.Errorf("16QAM[0111] = %v, want %v", tab[0b0111], want)
	}
}

func TestMapDemapRoundTripNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range schemes {
		q := s.Bits()
		bits := make([]uint8, 120*q)
		for i := range bits {
			bits[i] = uint8(rng.Intn(2))
		}
		syms := s.Map(nil, bits)
		if len(syms) != 120 {
			t.Fatalf("%v: %d symbols, want 120", s, len(syms))
		}
		llr := s.Demap(nil, syms, 0.01)
		got := HardDecide(nil, llr)
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("%v: bit %d decoded %d, want %d", s, i, got[i], bits[i])
			}
		}
	}
}

// TestDemapLLRSign is a property test: with moderate noise the hard
// decision from LLRs must match the minimum-distance decision.
func TestDemapLLRSign(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := schemes[rng.Intn(len(schemes))]
		y := complex(rng.NormFloat64(), rng.NormFloat64())
		llr := s.Demap(nil, []complex128{y}, 0.5)
		bits := HardDecide(nil, llr)
		// Minimum-distance decision.
		best, bestD := 0, math.Inf(1)
		for idx, pt := range s.Constellation() {
			if d := cmplx.Abs(y - pt); d < bestD {
				best, bestD = idx, d
			}
		}
		q := s.Bits()
		for b := 0; b < q; b++ {
			want := uint8(best>>uint(q-1-b)) & 1
			if bits[b] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLLRScalesWithNoise verifies LLR magnitude shrinks as noise grows —
// the property the turbo decoder relies on to weight soft inputs.
func TestLLRScalesWithNoise(t *testing.T) {
	y := []complex128{complex(0.9, 0.2)}
	lo := QAM64.Demap(nil, y, 0.1)
	hi := QAM64.Demap(nil, y, 1.0)
	for b := range lo {
		if math.Abs(lo[b]) < math.Abs(hi[b])-1e-12 {
			t.Errorf("bit %d: |LLR| did not shrink with more noise (%g vs %g)", b, lo[b], hi[b])
		}
	}
}

func TestBERUnderAWGN(t *testing.T) {
	// At 15 dB SNR, QPSK over AWGN should be error-free in a short run and
	// 64-QAM should have a low but possibly nonzero BER. This is a sanity
	// check of the whole map/demap chain under noise.
	rng := rand.New(rand.NewSource(7))
	const n = 4000
	snr := math.Pow(10, 15.0/10) // 15 dB
	noiseVar := 1 / snr
	sigma := math.Sqrt(noiseVar / 2)
	for _, s := range schemes {
		q := s.Bits()
		bits := make([]uint8, n*q)
		for i := range bits {
			bits[i] = uint8(rng.Intn(2))
		}
		syms := s.Map(nil, bits)
		for i := range syms {
			syms[i] += complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
		}
		got := HardDecide(nil, s.Demap(nil, syms, noiseVar))
		errs := 0
		for i := range bits {
			if got[i] != bits[i] {
				errs++
			}
		}
		ber := float64(errs) / float64(len(bits))
		// 64-QAM at 15 dB Es/N0 sits around 6-7% raw BER analytically.
		limit := map[Scheme]float64{QPSK: 1e-4, QAM16: 5e-3, QAM64: 9e-2}[s]
		if ber > limit {
			t.Errorf("%v: BER %g at 15 dB exceeds %g", s, ber, limit)
		}
	}
}

// demapExhaustive is the reference max-log demapper: a full scan of all
// 2^Q constellation points per symbol. The production Demap factors the
// search per axis; this reference holds it to bit-identical output.
func demapExhaustive(s Scheme, dst []float64, syms []complex128, noiseVar float64) []float64 {
	q := s.Bits()
	tab := s.Constellation()
	inv := 1 / noiseVar
	var d0, d1 [6]float64
	for _, y := range syms {
		for b := 0; b < q; b++ {
			d0[b] = math.Inf(1)
			d1[b] = math.Inf(1)
		}
		for idx, pt := range tab {
			dr := real(y) - real(pt)
			di := imag(y) - imag(pt)
			d := dr*dr + di*di
			for b := 0; b < q; b++ {
				if idx&(1<<uint(q-1-b)) != 0 {
					if d < d1[b] {
						d1[b] = d
					}
				} else if d < d0[b] {
					d0[b] = d
				}
			}
		}
		for b := 0; b < q; b++ {
			dst = append(dst, (d1[b]-d0[b])*inv)
		}
	}
	return dst
}

// evmExhaustive is the reference EVM: nearest point by full scan.
func evmExhaustive(s Scheme, syms []complex128) float64 {
	if len(syms) == 0 {
		return 0
	}
	tab := s.Constellation()
	var errPow float64
	for _, y := range syms {
		best := math.Inf(1)
		for _, pt := range tab {
			dr := real(y) - real(pt)
			di := imag(y) - imag(pt)
			if d := dr*dr + di*di; d < best {
				best = d
			}
		}
		errPow += best
	}
	return math.Sqrt(errPow / float64(len(syms)))
}

// TestDemapMatchesExhaustive pins the per-axis demapper to the exhaustive
// full-constellation search, bit for bit: the separable search must pick
// the same hypothesis distances, and the rounding order is arranged so even
// the float results coincide exactly.
func TestDemapMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range schemes {
		for trial := 0; trial < 50; trial++ {
			syms := make([]complex128, 40)
			for i := range syms {
				// Mix far-out and near-boundary samples.
				scale := 1.0
				if trial%2 == 0 {
					scale = 3.0
				}
				syms[i] = complex(scale*rng.NormFloat64(), scale*rng.NormFloat64())
			}
			nv := 0.01 + rng.Float64()
			got := s.Demap(nil, syms, nv)
			want := demapExhaustive(s, nil, syms, nv)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v trial %d: LLR[%d] = %g, exhaustive %g", s, trial, i, got[i], want[i])
				}
			}
			if ge, we := s.EVM(syms), evmExhaustive(s, syms); ge != we {
				t.Fatalf("%v trial %d: EVM %g, exhaustive %g", s, trial, ge, we)
			}
		}
	}
}

func TestMapPanicsOnBitCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Map with non-multiple bit count did not panic")
		}
	}()
	QAM16.Map(nil, make([]uint8, 5))
}

func TestDemapPanicsOnNoiseVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Demap with zero noise variance did not panic")
		}
	}()
	QPSK.Demap(nil, []complex128{1}, 0)
}

func BenchmarkDemap(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	syms := make([]complex128, 1200)
	for i := range syms {
		syms[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for _, s := range schemes {
		b.Run(s.String(), func(b *testing.B) {
			var dst []float64
			for i := 0; i < b.N; i++ {
				dst = s.Demap(dst[:0], syms, 0.1)
			}
		})
	}
}

func BenchmarkMap64QAM(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	bits := make([]uint8, 7200)
	for i := range bits {
		bits[i] = uint8(rng.Intn(2))
	}
	var dst []complex128
	for i := 0; i < b.N; i++ {
		dst = QAM64.Map(dst[:0], bits)
	}
}

func TestEVM(t *testing.T) {
	// Clean constellation points: EVM 0.
	tab := QAM16.Constellation()
	if got := QAM16.EVM(tab); got != 0 {
		t.Errorf("EVM of exact points = %g", got)
	}
	// Known offset: every point displaced by 0.1 -> EVM exactly 0.1 as long
	// as the displacement does not cross a decision boundary (16QAM min
	// half-distance is 1/sqrt(10) ~ 0.316).
	displaced := make([]complex128, len(tab))
	for i, pt := range tab {
		displaced[i] = pt + complex(0.1, 0)
	}
	if got := QAM16.EVM(displaced); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("EVM of 0.1-displaced points = %g", got)
	}
	// EVM grows with noise.
	rng := rand.New(rand.NewSource(1))
	noisy := func(sigma float64) float64 {
		syms := make([]complex128, 500)
		for i := range syms {
			syms[i] = tab[rng.Intn(len(tab))] + complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
		}
		return QAM16.EVM(syms)
	}
	if a, b := noisy(0.02), noisy(0.1); a >= b {
		t.Errorf("EVM did not grow with noise: %g vs %g", a, b)
	}
	if QPSK.EVM(nil) != 0 {
		t.Error("empty EVM not zero")
	}
}
