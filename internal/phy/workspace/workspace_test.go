package workspace

import "testing"

func TestGrabZeroedAndSized(t *testing.T) {
	a := New()
	c := a.Complex(100)
	if len(c) != 100 || cap(c) != 100 {
		t.Fatalf("Complex(100): len=%d cap=%d", len(c), cap(c))
	}
	for i := range c {
		c[i] = complex(float64(i), 1)
	}
	f := a.Float(7)
	if len(f) != 7 || cap(f) != 7 {
		t.Fatalf("Float(7): len=%d cap=%d", len(f), cap(f))
	}
	b := a.Bytes(3)
	if len(b) != 3 || cap(b) != 3 {
		t.Fatalf("Bytes(3): len=%d cap=%d", len(b), cap(b))
	}
	// Reuse after Reset must hand back zeroed memory even though the first
	// user dirtied it.
	a.Reset()
	c2 := a.Complex(100)
	for i, v := range c2 {
		if v != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %v", i, v)
		}
	}
}

func TestDistinctRegions(t *testing.T) {
	a := New()
	x := a.Complex(10)
	y := a.Complex(10)
	x[9] = 1
	y[0] = 2
	if x[9] != 1 || y[0] != 2 {
		t.Fatal("regions overlap")
	}
	// Append beyond capacity must not run into y's region.
	x = append(x, 42)
	if y[0] != 2 {
		t.Fatal("append on x corrupted y")
	}
}

func TestMarkReleaseLIFO(t *testing.T) {
	a := New()
	outer := a.Complex(8)
	m := a.Mark()
	inner := a.Float(16)
	_ = inner
	a.Release(m)
	// outer must survive the release; a fresh grab reuses inner's region.
	outer[0] = 5
	inner2 := a.Float(16)
	if len(inner2) != 16 {
		t.Fatal("reuse after release failed")
	}
	if outer[0] != 5 {
		t.Fatal("release damaged memory allocated before the mark")
	}
}

func TestSteadyStateZeroAllocArena(t *testing.T) {
	a := New()
	// Warm up: force growth across several sizes, including one larger
	// than the initial chunk.
	warm := func() {
		m := a.Mark()
		_ = a.Complex(3000)
		_ = a.Complex(17)
		_ = a.Float(5000)
		_ = a.Bytes(100)
		a.Release(m)
	}
	warm()
	allocs := testing.AllocsPerRun(100, warm)
	if allocs != 0 {
		t.Errorf("steady-state arena cycle allocates %.1f times", allocs)
	}
}

func TestNilArenaFallsBackToMake(t *testing.T) {
	var a *Arena
	c := a.Complex(4)
	f := a.Float(4)
	b := a.Bytes(4)
	if len(c) != 4 || len(f) != 4 || len(b) != 4 {
		t.Fatal("nil arena fallback sizes wrong")
	}
	a.Release(a.Mark()) // must not panic
	a.Reset()
	if a.Footprint() != 0 {
		t.Fatal("nil arena footprint nonzero")
	}
}

func TestFootprintGrowsThenStabilises(t *testing.T) {
	a := New()
	_ = a.Complex(100)
	fp1 := a.Footprint()
	if fp1 == 0 {
		t.Fatal("footprint zero after allocation")
	}
	a.Reset()
	_ = a.Complex(100)
	if a.Footprint() != fp1 {
		t.Errorf("footprint changed on steady-state reuse: %d -> %d", fp1, a.Footprint())
	}
}

func TestLargeRequestAfterSmallChunk(t *testing.T) {
	a := New()
	_ = a.Bytes(1) // creates the minimum chunk
	big := a.Bytes(1 << 16)
	if len(big) != 1<<16 {
		t.Fatal("large request failed")
	}
	a.Reset()
	// After reset, small then large again must reuse both chunks.
	_ = a.Bytes(1)
	big2 := a.Bytes(1 << 16)
	if len(big2) != 1<<16 {
		t.Fatal("large request after reset failed")
	}
}
