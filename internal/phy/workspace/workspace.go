// Package workspace provides per-worker scratch arenas for the receiver
// hot path.
//
// The benchmark is a throughput artifact: every subframe re-runs the same
// kernel chain (channel estimation, weight solve, combining, despreading,
// demapping, decoding) on freshly sized buffers, and in the seed
// implementation nearly every kernel call performed its own
// make([]complex128, ...). At the paper's rates (a subframe every few
// milliseconds across tens of workers) that makes Go's allocator and GC —
// not arithmetic — the binding constraint. An Arena replaces those call
// sites: each worker owns one Arena and draws all transient scratch from
// it, so the steady state performs no heap allocation at all.
//
// # Ownership rules
//
// One Arena per worker, owned exclusively by that worker's goroutine —
// Arenas are NOT safe for concurrent use and never locked. The scheduler
// (internal/sched) gives every pool worker its own Arena and passes it to
// each task it executes; the serial reference receiver threads a single
// Arena through the whole chain. A task that runs on a stolen worker uses
// the thief's Arena for its scratch, never the victim's.
//
// Allocation follows stack (LIFO) discipline: callers bracket a unit of
// work with Mark/Release —
//
//	m := ws.Mark()
//	buf := ws.Complex(n)
//	... use buf ...
//	ws.Release(m)
//
// Release invalidates every slice obtained after the corresponding Mark;
// the memory is reused by later allocations (and re-zeroed on handout).
// Job-lifetime buffers are carved before task-lifetime scratch and
// released after it, which the strict stage structure of UserJob makes
// natural: per-task scratch marks nest inside the per-user mark. Reset
// releases everything at once (reset per task or per job, depending on
// which unit the caller brackets).
//
// All slices returned by an Arena are zeroed, exactly like make(), so
// kernels that accumulate (+=) into fresh buffers behave identically on
// arena and heap memory.
//
// A nil *Arena is valid everywhere and falls back to plain make() — code
// paths that have no worker arena (public API convenience wrappers, cold
// paths) share the same implementation.
package workspace

// chunkMin is the smallest chunk a stack allocates, in elements. Chosen so
// a couple of small requests don't fragment into many tiny chunks.
const chunkMin = 1 << 10

// stack is a chunked LIFO allocator for one element type. Chunks are never
// freed; once the warm-up phase has sized them, steady-state Grab calls
// only slice into existing chunks.
type stack[T any] struct {
	chunks [][]T
	ci     int // index of the chunk currently being carved
	off    int // next free element within chunks[ci]
}

// mark is a position in a stack: everything carved after it is released by
// rewinding to it.
type mark struct {
	ci, off int
}

// grab returns a zeroed slice of n elements with capacity exactly n (so
// append beyond it cannot corrupt neighbouring scratch).
func (s *stack[T]) grab(n int) []T {
	if n == 0 {
		return nil
	}
	for {
		if s.ci < len(s.chunks) {
			c := s.chunks[s.ci]
			if s.off+n <= len(c) {
				out := c[s.off : s.off+n : s.off+n]
				s.off += n
				clear(out)
				return out
			}
			if s.ci+1 < len(s.chunks) || len(c) >= n {
				// Chunk tail too small for this request (or a later chunk
				// exists): skip ahead, wasting the tail. The waste is
				// bounded by one request per chunk and disappears once
				// chunk sizes stabilise.
				s.ci++
				s.off = 0
				continue
			}
		}
		// Grow: double the last chunk size until the request fits.
		size := chunkMin
		if len(s.chunks) > 0 {
			size = 2 * len(s.chunks[len(s.chunks)-1])
		}
		for size < n {
			size *= 2
		}
		s.chunks = append(s.chunks, make([]T, size))
		s.ci = len(s.chunks) - 1
		s.off = 0
	}
}

func (s *stack[T]) mark() mark { return mark{s.ci, s.off} }

func (s *stack[T]) release(m mark) {
	s.ci, s.off = m.ci, m.off
}

// footprint returns the total elements reserved across all chunks.
func (s *stack[T]) footprint() int {
	total := 0
	for _, c := range s.chunks {
		total += len(c)
	}
	return total
}

// Arena is a per-worker scratch allocator: typed LIFO stacks
// (complex128, float64, float32, uint8, int8, int16, int32) with shared
// Mark/Release semantics. The zero value is NOT ready for use via its
// methods on a nil pointer only in the sense that nil falls back to
// make(); a &Arena{} (or New()) is fully functional.
type Arena struct {
	c128 stack[complex128]
	f64  stack[float64]
	f32  stack[float32]
	u8   stack[uint8]
	i8   stack[int8]
	i16  stack[int16]
	i32  stack[int32]
}

// Mark captures the current allocation state of all stacks.
type Mark struct {
	c128, f64, f32, u8, i8, i16, i32 mark
}

// New returns an empty Arena. Equivalent to new(Arena); provided for
// symmetry with the rest of the codebase.
func New() *Arena { return &Arena{} }

// Complex returns a zeroed []complex128 of length n (capacity n). On a nil
// Arena it falls back to make.
func (a *Arena) Complex(n int) []complex128 {
	if a == nil {
		return make([]complex128, n)
	}
	return a.c128.grab(n)
}

// Float returns a zeroed []float64 of length n (capacity n). On a nil
// Arena it falls back to make.
func (a *Arena) Float(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	return a.f64.grab(n)
}

// Float32 returns a zeroed []float32 of length n (capacity n). On a nil
// Arena it falls back to make. The split-plane float32 lane kernels
// (internal/phy/lane) draw their re/im planes from this stack.
func (a *Arena) Float32(n int) []float32 {
	if a == nil {
		return make([]float32, n)
	}
	return a.f32.grab(n)
}

// Bytes returns a zeroed []uint8 of length n (capacity n). On a nil Arena
// it falls back to make.
func (a *Arena) Bytes(n int) []uint8 {
	if a == nil {
		return make([]uint8, n)
	}
	return a.u8.grab(n)
}

// Int8 returns a zeroed []int8 of length n (capacity n). On a nil Arena
// it falls back to make. The quantized turbo decoder draws its channel
// LLR and extrinsic buffers from this stack.
func (a *Arena) Int8(n int) []int8 {
	if a == nil {
		return make([]int8, n)
	}
	return a.i8.grab(n)
}

// Int16 returns a zeroed []int16 of length n (capacity n). On a nil
// Arena it falls back to make.
func (a *Arena) Int16(n int) []int16 {
	if a == nil {
		return make([]int16, n)
	}
	return a.i16.grab(n)
}

// Int32 returns a zeroed []int32 of length n (capacity n). On a nil
// Arena it falls back to make. The quantized turbo decoder's path-metric
// slabs live here.
func (a *Arena) Int32(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	return a.i32.grab(n)
}

// Mark returns a checkpoint; Release with it frees everything allocated
// since. On a nil Arena the checkpoint is meaningless and Release a no-op.
func (a *Arena) Mark() Mark {
	if a == nil {
		return Mark{}
	}
	return Mark{a.c128.mark(), a.f64.mark(), a.f32.mark(), a.u8.mark(), a.i8.mark(), a.i16.mark(), a.i32.mark()}
}

// Release rewinds the arena to a checkpoint obtained from Mark. Slices
// handed out after that Mark must no longer be used: their memory will be
// recycled (and re-zeroed) by subsequent allocations. Marks must be
// released in LIFO order.
func (a *Arena) Release(m Mark) {
	if a == nil {
		return
	}
	a.c128.release(m.c128)
	a.f64.release(m.f64)
	a.f32.release(m.f32)
	a.u8.release(m.u8)
	a.i8.release(m.i8)
	a.i16.release(m.i16)
	a.i32.release(m.i32)
}

// Reset releases everything, keeping the reserved chunks for reuse.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.c128.release(mark{})
	a.f64.release(mark{})
	a.f32.release(mark{})
	a.u8.release(mark{})
	a.i8.release(mark{})
	a.i16.release(mark{})
	a.i32.release(mark{})
}

// Footprint returns the total bytes of backing memory the arena has
// reserved — the bounded, measurable per-worker memory quantity the cost
// model can reason about.
func (a *Arena) Footprint() int {
	if a == nil {
		return 0
	}
	return a.c128.footprint()*16 + a.f64.footprint()*8 + a.f32.footprint()*4 +
		a.u8.footprint() + a.i8.footprint() + a.i16.footprint()*2 + a.i32.footprint()*4
}
