// Float32 split-plane transform path: the same iterative stage-planned
// Stockham engine as the complex128 Plan, operating on separate
// contiguous re/im float32 planes (the internal/phy/lane layout the
// receiver's float32 hot path runs on).
//
// A PlanF32 shares the complex128 engine's stage planning: NewF32 runs
// the same buildStages decomposition (radix 4 first, then 2, 3, 5, 7)
// and converts each stage's twiddle table to split-plane float32 once at
// construction, so both element widths execute the identical butterfly
// schedule and differ only in arithmetic width and memory layout.
// Non-smooth lengths fall back to a float32 Bluestein chirp-z transform
// built on a power-of-two PlanF32.
//
// Precision: a length-n float32 transform carries a relative error of
// roughly eps32 * sqrt(log2 n) (~1e-6 for LTE lengths); the accuracy
// sweep test pins the float32 path against the complex128 oracle over
// every nPRB in [2, 200]. The complex128 Plan remains the reference for
// bit-exact requirements.
package fft

import (
	"fmt"
	"math"
	"sync"

	"ltephy/internal/phy/workspace"
)

// stageF32 is one Stockham pass over split planes — the same (r, m, s)
// geometry as stage, with the twiddle and root tables narrowed to
// float32 planes.
type stageF32 struct {
	r, m, s        int
	twRe, twIm     []float32 // (r-1)*m twiddles, layout as stage.tw
	rootRe, rootIm []float32 // generic radix only: r*r sub-DFT table
}

// PlanF32 is the float32 split-plane counterpart of Plan. Create one
// with NewF32 (or the shared GetF32 cache) and reuse it; it is safe for
// concurrent use as long as each call supplies its own destination.
type PlanF32 struct {
	n       int
	stages  []stageF32
	smooth  bool
	blu     *bluesteinF32
	scratch sync.Pool // *[]float32 of length 2n: re plane then im plane
}

// NewF32 returns a float32 split-plane plan for vectors of length n.
// It panics if n <= 0.
func NewF32(n int) *PlanF32 {
	if n <= 0 {
		panic("fft: invalid transform length")
	}
	p := &PlanF32{n: n, smooth: isSmooth(n)}
	if p.smooth {
		// Share the complex128 engine's stage planning: identical radix
		// schedule, twiddles narrowed once here.
		for _, st := range buildStages(n) {
			p.stages = append(p.stages, narrowStage(st))
		}
	} else {
		p.blu = newBluesteinF32(n)
	}
	p.scratch.New = func() any {
		s := make([]float32, 2*n)
		return &s
	}
	return p
}

// narrowStage converts one complex128 stage's tables to split planes.
func narrowStage(st stage) stageF32 {
	f := stageF32{r: st.r, m: st.m, s: st.s}
	f.twRe, f.twIm = splitNarrow(st.tw)
	if st.root != nil {
		f.rootRe, f.rootIm = splitNarrow(st.root)
	}
	return f
}

// splitNarrow converts a complex128 table to split float32 planes.
func splitNarrow(src []complex128) (re, im []float32) {
	re = make([]float32, len(src))
	im = make([]float32, len(src))
	for i, v := range src {
		re[i] = float32(real(v))
		im[i] = float32(imag(v))
	}
	return re, im
}

// Len returns the transform length the plan was built for.
func (p *PlanF32) Len() int { return p.n }

// Ops estimates the scalar flop count of one forward transform — the
// same butterfly accounting as Plan.Ops, since both widths share the
// stage schedule.
func (p *PlanF32) Ops() float64 {
	if p.n == 1 {
		return 1
	}
	if p.smooth {
		ops := 0.0
		for _, st := range p.stages {
			ops += float64(p.n/st.r) * butterflyOps(st.r)
		}
		return ops
	}
	return 3*p.blu.inner.Ops() + 6*8*float64(p.n) + 6*float64(p.blu.m)
}

// Forward computes the forward DFT of the split-plane vector (srcRe,
// srcIm) into (dstRe, dstIm). All planes must have length N; dst may
// alias src plane-for-plane. Scratch comes from the plan's pool; hot
// paths with a per-worker arena should call ForwardIn.
func (p *PlanF32) Forward(dstRe, dstIm, srcRe, srcIm []float32) {
	p.ForwardIn(nil, dstRe, dstIm, srcRe, srcIm)
}

// ForwardIn is Forward with per-call scratch drawn from ws (zero heap
// allocation in steady state). A nil ws falls back to the plan's pool.
func (p *PlanF32) ForwardIn(ws *workspace.Arena, dstRe, dstIm, srcRe, srcIm []float32) {
	p.checkLenF32(dstRe, dstIm, srcRe, srcIm)
	if !p.smooth {
		p.blu.transform(ws, dstRe, dstIm, srcRe, srcIm)
		return
	}
	k := len(p.stages)
	if k == 0 {
		dstRe[0], dstIm[0] = srcRe[0], srcIm[0]
		return
	}
	aliased := &dstRe[0] == &srcRe[0]
	if k == 1 && !aliased {
		runStageF32(&p.stages[0], dstRe, dstIm, srcRe, srcIm)
		return
	}
	mk := ws.Mark()
	scrRe, scrIm, scr2Re, scr2Im, t1, t2 := p.getScratch(ws, aliased && k > 1 && k&1 == 1)
	p.transformOneF32(dstRe, dstIm, srcRe, srcIm, scrRe, scrIm, scr2Re, scr2Im)
	ws.Release(mk)
	p.putScratch(ws, t1, t2)
}

// getScratch acquires the ping-pong planes (and, when needSecond, the
// aliased-source copy planes) from the arena or the plan's pool. It is
// the acquire half of the getScratch/putScratch pair; the caller
// brackets the arena lifetime with its own Mark/Release.
//
//ltephy:owns-scratch
func (p *PlanF32) getScratch(ws *workspace.Arena, needSecond bool) (scrRe, scrIm, scr2Re, scr2Im []float32, t1, t2 *[]float32) {
	if ws != nil {
		scrRe, scrIm = ws.Float32(p.n), ws.Float32(p.n)
		if needSecond {
			scr2Re, scr2Im = ws.Float32(p.n), ws.Float32(p.n)
		}
		return
	}
	t1 = p.scratch.Get().(*[]float32)
	scrRe, scrIm = (*t1)[:p.n], (*t1)[p.n:]
	if needSecond {
		t2 = p.scratch.Get().(*[]float32)
		scr2Re, scr2Im = (*t2)[:p.n], (*t2)[p.n:]
	}
	return
}

func (p *PlanF32) putScratch(ws *workspace.Arena, t1, t2 *[]float32) {
	if ws != nil {
		return // released by the caller's Mark/Release bracket
	}
	p.scratch.Put(t1)
	if t2 != nil {
		p.scratch.Put(t2)
	}
}

// transformOneF32 runs the stage pipeline for one split-plane vector,
// mirroring transformOne's ping-pong parity so the final pass lands in
// dst.
func (p *PlanF32) transformOneF32(dstRe, dstIm, srcRe, srcIm, scrRe, scrIm, scr2Re, scr2Im []float32) {
	k := len(p.stages)
	if &dstRe[0] == &srcRe[0] {
		if k == 1 {
			copy(scrRe, srcRe)
			copy(scrIm, srcIm)
			srcRe, srcIm = scrRe, scrIm
		} else if k&1 == 1 {
			copy(scr2Re, srcRe)
			copy(scr2Im, srcIm)
			srcRe, srcIm = scr2Re, scr2Im
		}
	}
	curRe, curIm := srcRe, srcIm
	for i := range p.stages {
		outRe, outIm := scrRe, scrIm
		if (k-i)&1 == 1 {
			outRe, outIm = dstRe, dstIm
		}
		runStageF32(&p.stages[i], outRe, outIm, curRe, curIm)
		curRe, curIm = outRe, outIm
	}
}

// Inverse computes the inverse DFT (scaled by 1/N), the exact inverse of
// Forward. dst may alias src plane-for-plane.
func (p *PlanF32) Inverse(dstRe, dstIm, srcRe, srcIm []float32) {
	p.InverseIn(nil, dstRe, dstIm, srcRe, srcIm)
}

// InverseIn is Inverse with per-call scratch drawn from ws: the forward
// transform followed by the in-place reversal identity
// IDFT(x)[k] = DFT(x)[(N-k) mod N] / N.
func (p *PlanF32) InverseIn(ws *workspace.Arena, dstRe, dstIm, srcRe, srcIm []float32) {
	p.ForwardIn(ws, dstRe, dstIm, srcRe, srcIm)
	reverseScaleF32(dstRe, dstIm)
}

// reverseScaleF32 maps v[k] <- v[(n-k) mod n] / n in place on both planes.
func reverseScaleF32(re, im []float32) {
	n := len(re)
	im = im[:n]
	s := float32(1) / float32(n)
	re[0] *= s
	im[0] *= s
	for i, j := 1, n-1; i < j; i, j = i+1, j-1 {
		re[i], re[j] = re[j]*s, re[i]*s
		im[i], im[j] = im[j]*s, im[i]*s
	}
	if n > 1 && n&1 == 0 {
		m := n / 2
		re[m] *= s
		im[m] *= s
	}
}

// ForwardBatch computes howMany forward DFTs over split planes laid out
// at a fixed stride, with the same layout contract as Plan.ForwardBatch:
// transform i reads src planes [i*stride : i*stride+N] and writes the
// same window of the dst planes. Per-vector results are bit-identical to
// howMany ForwardIn calls.
func (p *PlanF32) ForwardBatch(ws *workspace.Arena, dstRe, dstIm, srcRe, srcIm []float32, howMany, stride int) {
	p.ForwardBatchStrided(ws, dstRe, dstIm, srcRe, srcIm, howMany, stride, stride)
}

// ForwardBatchStrided is ForwardBatch with distinct destination and
// source strides — the scatter/gather form the channel-estimation grid
// uses to land transforms directly in the strided hest slab.
func (p *PlanF32) ForwardBatchStrided(ws *workspace.Arena, dstRe, dstIm, srcRe, srcIm []float32, howMany, dstStride, srcStride int) {
	if howMany <= 0 {
		return
	}
	p.checkBatchF32(len(dstRe), len(dstIm), howMany, dstStride, "dst")
	p.checkBatchF32(len(srcRe), len(srcIm), howMany, srcStride, "src")
	if !p.smooth {
		p.blu.transformBatch(ws, dstRe, dstIm, srcRe, srcIm, howMany, dstStride, srcStride)
		return
	}
	k := len(p.stages)
	if k == 0 {
		for i := 0; i < howMany; i++ {
			dstRe[i*dstStride], dstIm[i*dstStride] = srcRe[i*srcStride], srcIm[i*srcStride]
		}
		return
	}
	aliased := &dstRe[0] == &srcRe[0]
	if k == 1 && !aliased {
		for i := 0; i < howMany; i++ {
			d, s := i*dstStride, i*srcStride
			runStageF32(&p.stages[0], dstRe[d:d+p.n], dstIm[d:d+p.n], srcRe[s:s+p.n], srcIm[s:s+p.n])
		}
		return
	}
	mk := ws.Mark()
	scrRe, scrIm, scr2Re, scr2Im, t1, t2 := p.getScratch(ws, aliased && k > 1 && k&1 == 1)
	for i := 0; i < howMany; i++ {
		d, s := i*dstStride, i*srcStride
		p.transformOneF32(dstRe[d:d+p.n], dstIm[d:d+p.n], srcRe[s:s+p.n], srcIm[s:s+p.n],
			scrRe, scrIm, scr2Re, scr2Im)
	}
	ws.Release(mk)
	p.putScratch(ws, t1, t2)
}

// InverseBatch computes howMany inverse DFTs in one call, with the same
// layout contract as ForwardBatch.
func (p *PlanF32) InverseBatch(ws *workspace.Arena, dstRe, dstIm, srcRe, srcIm []float32, howMany, stride int) {
	p.InverseBatchStrided(ws, dstRe, dstIm, srcRe, srcIm, howMany, stride, stride)
}

// InverseBatchStrided is InverseBatch with distinct strides.
func (p *PlanF32) InverseBatchStrided(ws *workspace.Arena, dstRe, dstIm, srcRe, srcIm []float32, howMany, dstStride, srcStride int) {
	p.ForwardBatchStrided(ws, dstRe, dstIm, srcRe, srcIm, howMany, dstStride, srcStride)
	for i := 0; i < howMany; i++ {
		d := i * dstStride
		reverseScaleF32(dstRe[d:d+p.n], dstIm[d:d+p.n])
	}
}

func (p *PlanF32) checkLenF32(dstRe, dstIm, srcRe, srcIm []float32) {
	if len(dstRe) != p.n || len(dstIm) != p.n || len(srcRe) != p.n || len(srcIm) != p.n {
		panic("fft: f32 plane length mismatch")
	}
}

func (p *PlanF32) checkBatchF32(haveRe, haveIm, howMany, stride int, which string) {
	have := haveRe
	if haveIm < have {
		have = haveIm
	}
	if stride < p.n {
		panic(fmt.Sprintf("fft: f32 batch %s stride %d below plan length %d", which, stride, p.n))
	}
	if need := (howMany-1)*stride + p.n; have < need {
		panic(fmt.Sprintf("fft: f32 batch %s has %d plane elements, %d transforms at stride %d need %d",
			which, have, howMany, stride, need))
	}
}

// runStageF32 dispatches one split-plane Stockham pass to its radix
// kernel. Every kernel writes each output element exactly once.
func runStageF32(st *stageF32, yre, yim, xre, xim []float32) {
	switch st.r {
	case 4:
		stage4F32(st, yre, yim, xre, xim)
	case 2:
		stage2F32(st, yre, yim, xre, xim)
	case 3:
		stage3F32(st, yre, yim, xre, xim)
	case 5:
		stage5F32(st, yre, yim, xre, xim)
	default:
		stageGenericF32(st, yre, yim, xre, xim)
	}
}

// stage2F32 is the radix-2 butterfly pass on split planes.
func stage2F32(st *stageF32, yre, yim, xre, xim []float32) {
	m, s := st.m, st.s
	twRe, twIm := st.twRe, st.twIm
	if s == 1 {
		for p := 0; p < m; p++ {
			ar, ai := xre[p], xim[p]
			br, bi := xre[p+m], xim[p+m]
			yre[2*p], yim[2*p] = ar+br, ai+bi
			dr, di := ar-br, ai-bi
			wr, wi := twRe[p], twIm[p]
			yre[2*p+1] = dr*wr - di*wi
			yim[2*p+1] = dr*wi + di*wr
		}
		return
	}
	for p := 0; p < m; p++ {
		wr, wi := twRe[p], twIm[p]
		xar, xai := xre[s*p:s*p+s], xim[s*p:s*p+s]
		xbr, xbi := xre[s*(p+m):s*(p+m)+s], xim[s*(p+m):s*(p+m)+s]
		yar, yai := yre[2*s*p:2*s*p+s], yim[2*s*p:2*s*p+s]
		ybr, ybi := yre[s*(2*p+1):s*(2*p+1)+s], yim[s*(2*p+1):s*(2*p+1)+s]
		if p == 0 {
			for q := 0; q < s; q++ {
				ar, ai := xar[q], xai[q]
				br, bi := xbr[q], xbi[q]
				yar[q], yai[q] = ar+br, ai+bi
				ybr[q], ybi[q] = ar-br, ai-bi
			}
			continue
		}
		for q := 0; q < s; q++ {
			ar, ai := xar[q], xai[q]
			br, bi := xbr[q], xbi[q]
			yar[q], yai[q] = ar+br, ai+bi
			dr, di := ar-br, ai-bi
			ybr[q] = dr*wr - di*wi
			ybi[q] = dr*wi + di*wr
		}
	}
}

// stage4F32 is the radix-4 butterfly pass on split planes.
func stage4F32(st *stageF32, yre, yim, xre, xim []float32) {
	m, s := st.m, st.s
	twRe, twIm := st.twRe, st.twIm
	if s == 1 {
		for p := 0; p < m; p++ {
			a0r, a0i := xre[p], xim[p]
			a1r, a1i := xre[p+m], xim[p+m]
			a2r, a2i := xre[p+2*m], xim[p+2*m]
			a3r, a3i := xre[p+3*m], xim[p+3*m]
			t02pr, t02pi := a0r+a2r, a0i+a2i
			t02mr, t02mi := a0r-a2r, a0i-a2i
			t13pr, t13pi := a1r+a3r, a1i+a3i
			t13mr, t13mi := a1r-a3r, a1i-a3i
			jtr, jti := t13mi, -t13mr // -i * (a1 - a3)
			yre[4*p], yim[4*p] = t02pr+t13pr, t02pi+t13pi
			w1r, w1i := twRe[3*p], twIm[3*p]
			w2r, w2i := twRe[3*p+1], twIm[3*p+1]
			w3r, w3i := twRe[3*p+2], twIm[3*p+2]
			br, bi := t02mr+jtr, t02mi+jti
			yre[4*p+1] = br*w1r - bi*w1i
			yim[4*p+1] = br*w1i + bi*w1r
			cr, ci := t02pr-t13pr, t02pi-t13pi
			yre[4*p+2] = cr*w2r - ci*w2i
			yim[4*p+2] = cr*w2i + ci*w2r
			dr, di := t02mr-jtr, t02mi-jti
			yre[4*p+3] = dr*w3r - di*w3i
			yim[4*p+3] = dr*w3i + di*w3r
		}
		return
	}
	for p := 0; p < m; p++ {
		w1r, w1i := twRe[3*p], twIm[3*p]
		w2r, w2i := twRe[3*p+1], twIm[3*p+1]
		w3r, w3i := twRe[3*p+2], twIm[3*p+2]
		x0r, x0i := xre[s*p:s*p+s], xim[s*p:s*p+s]
		x1r, x1i := xre[s*(p+m):s*(p+m)+s], xim[s*(p+m):s*(p+m)+s]
		x2r, x2i := xre[s*(p+2*m):s*(p+2*m)+s], xim[s*(p+2*m):s*(p+2*m)+s]
		x3r, x3i := xre[s*(p+3*m):s*(p+3*m)+s], xim[s*(p+3*m):s*(p+3*m)+s]
		y0r, y0i := yre[4*s*p:4*s*p+s], yim[4*s*p:4*s*p+s]
		y1r, y1i := yre[s*(4*p+1):s*(4*p+1)+s], yim[s*(4*p+1):s*(4*p+1)+s]
		y2r, y2i := yre[s*(4*p+2):s*(4*p+2)+s], yim[s*(4*p+2):s*(4*p+2)+s]
		y3r, y3i := yre[s*(4*p+3):s*(4*p+3)+s], yim[s*(4*p+3):s*(4*p+3)+s]
		if p == 0 {
			for q := 0; q < s; q++ {
				a0r, a0i := x0r[q], x0i[q]
				a1r, a1i := x1r[q], x1i[q]
				a2r, a2i := x2r[q], x2i[q]
				a3r, a3i := x3r[q], x3i[q]
				t02pr, t02pi := a0r+a2r, a0i+a2i
				t02mr, t02mi := a0r-a2r, a0i-a2i
				t13pr, t13pi := a1r+a3r, a1i+a3i
				t13mr, t13mi := a1r-a3r, a1i-a3i
				jtr, jti := t13mi, -t13mr
				y0r[q], y0i[q] = t02pr+t13pr, t02pi+t13pi
				y1r[q], y1i[q] = t02mr+jtr, t02mi+jti
				y2r[q], y2i[q] = t02pr-t13pr, t02pi-t13pi
				y3r[q], y3i[q] = t02mr-jtr, t02mi-jti
			}
			continue
		}
		for q := 0; q < s; q++ {
			a0r, a0i := x0r[q], x0i[q]
			a1r, a1i := x1r[q], x1i[q]
			a2r, a2i := x2r[q], x2i[q]
			a3r, a3i := x3r[q], x3i[q]
			t02pr, t02pi := a0r+a2r, a0i+a2i
			t02mr, t02mi := a0r-a2r, a0i-a2i
			t13pr, t13pi := a1r+a3r, a1i+a3i
			t13mr, t13mi := a1r-a3r, a1i-a3i
			jtr, jti := t13mi, -t13mr
			y0r[q], y0i[q] = t02pr+t13pr, t02pi+t13pi
			br, bi := t02mr+jtr, t02mi+jti
			y1r[q] = br*w1r - bi*w1i
			y1i[q] = br*w1i + bi*w1r
			cr, ci := t02pr-t13pr, t02pi-t13pi
			y2r[q] = cr*w2r - ci*w2i
			y2i[q] = cr*w2i + ci*w2r
			dr, di := t02mr-jtr, t02mi-jti
			y3r[q] = dr*w3r - di*w3i
			y3i[q] = dr*w3i + di*w3r
		}
	}
}

// sin3f is sin(2*pi/3) narrowed once for the radix-3 kernel.
const sin3f = float32(sin3)

// stage3F32 is the radix-3 butterfly pass on split planes.
func stage3F32(st *stageF32, yre, yim, xre, xim []float32) {
	m, s := st.m, st.s
	twRe, twIm := st.twRe, st.twIm
	for p := 0; p < m; p++ {
		w1r, w1i := twRe[2*p], twIm[2*p]
		w2r, w2i := twRe[2*p+1], twIm[2*p+1]
		x0r, x0i := xre[s*p:s*p+s], xim[s*p:s*p+s]
		x1r, x1i := xre[s*(p+m):s*(p+m)+s], xim[s*(p+m):s*(p+m)+s]
		x2r, x2i := xre[s*(p+2*m):s*(p+2*m)+s], xim[s*(p+2*m):s*(p+2*m)+s]
		y0r, y0i := yre[3*s*p:3*s*p+s], yim[3*s*p:3*s*p+s]
		y1r, y1i := yre[s*(3*p+1):s*(3*p+1)+s], yim[s*(3*p+1):s*(3*p+1)+s]
		y2r, y2i := yre[s*(3*p+2):s*(3*p+2)+s], yim[s*(3*p+2):s*(3*p+2)+s]
		for q := 0; q < s; q++ {
			a0r, a0i := x0r[q], x0i[q]
			a1r, a1i := x1r[q], x1i[q]
			a2r, a2i := x2r[q], x2i[q]
			ur, ui := a1r+a2r, a1i+a2i
			vr, vi := a1r-a2r, a1i-a2i
			cr, ci := a0r-0.5*ur, a0i-0.5*ui
			wr, wi := sin3f*vi, -sin3f*vr // -i*sin3*v
			y0r[q], y0i[q] = a0r+ur, a0i+ui
			pr, pi := cr+wr, ci+wi
			y1r[q] = pr*w1r - pi*w1i
			y1i[q] = pr*w1i + pi*w1r
			qr, qi := cr-wr, ci-wi
			y2r[q] = qr*w2r - qi*w2i
			y2i[q] = qr*w2i + qi*w2r
		}
	}
}

// Radix-5 constants narrowed once.
const (
	cos51f = float32(cos51)
	cos52f = float32(cos52)
	sin51f = float32(sin51)
	sin52f = float32(sin52)
)

// stage5F32 is the radix-5 butterfly pass on split planes.
func stage5F32(st *stageF32, yre, yim, xre, xim []float32) {
	m, s := st.m, st.s
	twRe, twIm := st.twRe, st.twIm
	for p := 0; p < m; p++ {
		w1r, w1i := twRe[4*p], twIm[4*p]
		w2r, w2i := twRe[4*p+1], twIm[4*p+1]
		w3r, w3i := twRe[4*p+2], twIm[4*p+2]
		w4r, w4i := twRe[4*p+3], twIm[4*p+3]
		x0r, x0i := xre[s*p:s*p+s], xim[s*p:s*p+s]
		x1r, x1i := xre[s*(p+m):s*(p+m)+s], xim[s*(p+m):s*(p+m)+s]
		x2r, x2i := xre[s*(p+2*m):s*(p+2*m)+s], xim[s*(p+2*m):s*(p+2*m)+s]
		x3r, x3i := xre[s*(p+3*m):s*(p+3*m)+s], xim[s*(p+3*m):s*(p+3*m)+s]
		x4r, x4i := xre[s*(p+4*m):s*(p+4*m)+s], xim[s*(p+4*m):s*(p+4*m)+s]
		y0r, y0i := yre[5*s*p:5*s*p+s], yim[5*s*p:5*s*p+s]
		y1r, y1i := yre[s*(5*p+1):s*(5*p+1)+s], yim[s*(5*p+1):s*(5*p+1)+s]
		y2r, y2i := yre[s*(5*p+2):s*(5*p+2)+s], yim[s*(5*p+2):s*(5*p+2)+s]
		y3r, y3i := yre[s*(5*p+3):s*(5*p+3)+s], yim[s*(5*p+3):s*(5*p+3)+s]
		y4r, y4i := yre[s*(5*p+4):s*(5*p+4)+s], yim[s*(5*p+4):s*(5*p+4)+s]
		for q := 0; q < s; q++ {
			a0r, a0i := x0r[q], x0i[q]
			a1r, a1i := x1r[q], x1i[q]
			a2r, a2i := x2r[q], x2i[q]
			a3r, a3i := x3r[q], x3i[q]
			a4r, a4i := x4r[q], x4i[q]
			t1r, t1i := a1r+a4r, a1i+a4i
			t2r, t2i := a2r+a3r, a2i+a3i
			t3r, t3i := a1r-a4r, a1i-a4i
			t4r, t4i := a2r-a3r, a2i-a3i
			m1r := a0r + cos51f*t1r + cos52f*t2r
			m1i := a0i + cos51f*t1i + cos52f*t2i
			m2r := a0r + cos52f*t1r + cos51f*t2r
			m2i := a0i + cos52f*t1i + cos51f*t2i
			u1r := sin51f*t3r + sin52f*t4r
			u1i := sin51f*t3i + sin52f*t4i
			u2r := sin52f*t3r - sin51f*t4r
			u2i := sin52f*t3i - sin51f*t4i
			m3r, m3i := u1i, -u1r // -i*u1
			m4r, m4i := u2i, -u2r // -i*u2
			y0r[q], y0i[q] = a0r+t1r+t2r, a0i+t1i+t2i
			b1r, b1i := m1r+m3r, m1i+m3i
			y1r[q] = b1r*w1r - b1i*w1i
			y1i[q] = b1r*w1i + b1i*w1r
			b2r, b2i := m2r+m4r, m2i+m4i
			y2r[q] = b2r*w2r - b2i*w2i
			y2i[q] = b2r*w2i + b2i*w2r
			b3r, b3i := m2r-m4r, m2i-m4i
			y3r[q] = b3r*w3r - b3i*w3i
			y3i[q] = b3r*w3i + b3i*w3r
			b4r, b4i := m1r-m3r, m1i-m3i
			y4r[q] = b4r*w4r - b4i*w4i
			y4i[q] = b4r*w4i + b4i*w4r
		}
	}
}

// stageGenericF32 handles any remaining radix (only 7 for LTE lengths)
// with the precomputed r*r root table on split planes.
func stageGenericF32(st *stageF32, yre, yim, xre, xim []float32) {
	r, m, s := st.r, st.m, st.s
	twRe, twIm := st.twRe, st.twIm
	rootRe, rootIm := st.rootRe, st.rootIm
	var aR, aI [maxRadix]float32
	for p := 0; p < m; p++ {
		for q := 0; q < s; q++ {
			for c := 0; c < r; c++ {
				aR[c] = xre[s*(p+c*m)+q]
				aI[c] = xim[s*(p+c*m)+q]
			}
			sr, si := aR[0], aI[0]
			for c := 1; c < r; c++ {
				sr += aR[c]
				si += aI[c]
			}
			yre[s*r*p+q], yim[s*r*p+q] = sr, si
			for j := 1; j < r; j++ {
				sr, si = aR[0], aI[0]
				for c := 1; c < r; c++ {
					rr, ri := rootRe[j*r+c], rootIm[j*r+c]
					sr += aR[c]*rr - aI[c]*ri
					si += aR[c]*ri + aI[c]*rr
				}
				wr, wi := twRe[(r-1)*p+j-1], twIm[(r-1)*p+j-1]
				yre[s*(r*p+j)+q] = sr*wr - si*wi
				yim[s*(r*p+j)+q] = sr*wi + si*wr
			}
		}
	}
}

// bluesteinF32 is the float32 split-plane chirp-z transform for
// non-smooth lengths, built on a power-of-two PlanF32.
type bluesteinF32 struct {
	n        int
	m        int
	inner    *PlanF32
	aRe, aIm []float32 // chirp exp(-pi*i*k^2/n)
	bRe, bIm []float32 // FFT of the chirp-conjugate kernel
	pool     sync.Pool // *[]float32 of length 2m (one buffer's planes)
}

func newBluesteinF32(n int) *bluesteinF32 {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	b := &bluesteinF32{n: n, m: m, inner: NewF32(m)}
	b.aRe = make([]float32, n)
	b.aIm = make([]float32, n)
	kernelRe := make([]float32, m)
	kernelIm := make([]float32, m)
	for k := 0; k < n; k++ {
		q := (k * k) % (2 * n)
		theta := -math.Pi * float64(q) / float64(n)
		c, s := math.Cos(theta), math.Sin(theta)
		b.aRe[k], b.aIm[k] = float32(c), float32(s)
		kernelRe[k], kernelIm[k] = float32(c), float32(-s)
		if k > 0 {
			kernelRe[m-k], kernelIm[m-k] = float32(c), float32(-s)
		}
	}
	b.bRe = make([]float32, m)
	b.bIm = make([]float32, m)
	b.inner.Forward(b.bRe, b.bIm, kernelRe, kernelIm)
	b.pool.New = func() any {
		s := make([]float32, 2*m)
		return &s
	}
	return b
}

// core runs one chirp-z transform using caller-provided length-m plane
// pairs. x[n:m) must be zero on entry on both planes; on exit x holds
// convolution output over its whole length.
func (b *bluesteinF32) core(ws *workspace.Arena, dstRe, dstIm, srcRe, srcIm, xRe, xIm, yRe, yIm []float32) {
	for k := 0; k < b.n; k++ {
		sr, si := srcRe[k], srcIm[k]
		ar, ai := b.aRe[k], b.aIm[k]
		xRe[k] = sr*ar - si*ai
		xIm[k] = sr*ai + si*ar
	}
	b.inner.ForwardIn(ws, yRe, yIm, xRe, xIm)
	for i := range yRe {
		yr, yi := yRe[i], yIm[i]
		br, bi := b.bRe[i], b.bIm[i]
		yRe[i] = yr*br - yi*bi
		yIm[i] = yr*bi + yi*br
	}
	b.inner.InverseIn(ws, xRe, xIm, yRe, yIm)
	for k := 0; k < b.n; k++ {
		xr, xi := xRe[k], xIm[k]
		ar, ai := b.aRe[k], b.aIm[k]
		dstRe[k] = xr*ar - xi*ai
		dstIm[k] = xr*ai + xi*ar
	}
}

// getBuffers acquires the two length-m convolution plane pairs. Arena
// planes arrive zeroed by the workspace contract; pooled x gets its tail
// zeroed explicitly.
//
// the caller holds the returned mark and hands it back to putBuffers.
//
//ltephy:owns-scratch — acquire half of the getBuffers/putBuffers pair;
func (b *bluesteinF32) getBuffers(ws *workspace.Arena) (xRe, xIm, yRe, yIm []float32, mk workspace.Mark, xp, yp *[]float32) {
	if ws != nil {
		mk = ws.Mark()
		return ws.Float32(b.m), ws.Float32(b.m), ws.Float32(b.m), ws.Float32(b.m), mk, nil, nil
	}
	xp = b.pool.Get().(*[]float32)
	yp = b.pool.Get().(*[]float32)
	xRe, xIm = (*xp)[:b.m], (*xp)[b.m:]
	yRe, yIm = (*yp)[:b.m], (*yp)[b.m:]
	clear(xRe[b.n:])
	clear(xIm[b.n:])
	return xRe, xIm, yRe, yIm, workspace.Mark{}, xp, yp
}

func (b *bluesteinF32) putBuffers(ws *workspace.Arena, mk workspace.Mark, xp, yp *[]float32) {
	if ws != nil {
		ws.Release(mk)
		return
	}
	b.pool.Put(xp)
	b.pool.Put(yp)
}

func (b *bluesteinF32) transform(ws *workspace.Arena, dstRe, dstIm, srcRe, srcIm []float32) {
	xRe, xIm, yRe, yIm, mk, xp, yp := b.getBuffers(ws)
	b.core(ws, dstRe, dstIm, srcRe, srcIm, xRe, xIm, yRe, yIm)
	b.putBuffers(ws, mk, xp, yp)
}

// transformBatch shares one buffer acquisition across the whole batch,
// re-zeroing only x's padding tail between transforms.
func (b *bluesteinF32) transformBatch(ws *workspace.Arena, dstRe, dstIm, srcRe, srcIm []float32, howMany, dstStride, srcStride int) {
	xRe, xIm, yRe, yIm, mk, xp, yp := b.getBuffers(ws)
	for i := 0; i < howMany; i++ {
		if i > 0 {
			clear(xRe[b.n:])
			clear(xIm[b.n:])
		}
		d, s := i*dstStride, i*srcStride
		b.core(ws, dstRe[d:d+b.n], dstIm[d:d+b.n], srcRe[s:s+b.n], srcIm[s:s+b.n], xRe, xIm, yRe, yIm)
	}
	b.putBuffers(ws, mk, xp, yp)
}
