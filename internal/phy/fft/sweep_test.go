package fft

import (
	"math"
	"math/rand"
	"testing"
)

// naiveDFTTable is an O(n^2) reference DFT with a precomputed root table —
// the same arithmetic as naiveDFT but fast enough to sweep every LTE
// length in one test run.
func naiveDFTTable(src []complex128) []complex128 {
	n := len(src)
	roots := make([]complex128, n)
	for j := range roots {
		theta := -2 * math.Pi * float64(j) / float64(n)
		roots[j] = complex(math.Cos(theta), math.Sin(theta))
	}
	dst := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			sum += src[j] * roots[(j*k)%n]
		}
		dst[k] = sum
	}
	return dst
}

// TestAccuracySweepAllLTELengths sweeps every LTE allocation width
// n = 12*nPRB for nPRB in [2, 200] — smooth and Bluestein alike — against
// the O(n^2) reference, requiring max error <= 1e-9 relative to the
// spectrum's peak magnitude. This is the accuracy gate `make check` runs
// for the iterative engine across the full deployed size range.
func TestAccuracySweepAllLTELengths(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const relTol = 1e-9
	for nPRB := 2; nPRB <= 200; nPRB++ {
		n := 12 * nPRB
		src := randVec(rng, n)
		want := naiveDFTTable(src)
		got := make([]complex128, n)
		Get(n).Forward(got, src)
		peak := 0.0
		for _, v := range want {
			if m := math.Hypot(real(v), imag(v)); m > peak {
				peak = m
			}
		}
		if d := maxAbsDiff(got, want); d > relTol*peak {
			t.Errorf("n=%d (nPRB=%d): max |fft-naive| = %g, relative %g > %g",
				n, nPRB, d, d/peak, relTol)
		}
	}
}
