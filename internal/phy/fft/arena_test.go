package fft

import (
	"math/rand"
	"testing"

	"ltephy/internal/phy/workspace"
)

// TestInterleavedLengths pins the scratch-pool safety audit (ISSUE 1
// satellite): transforms of many different lengths — mixed-radix and
// Bluestein — interleaved on a single goroutine must not contaminate each
// other through pooled scratch. The pools are per-plan, and sub-level
// recursion slices the plan-length buffer down to the sublength it needs;
// a cross-length reuse bug would show up here as a wrong result on the
// second or later pass over the sizes.
func TestInterleavedLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{2400, 12, 97, 1024, 31, 300, 199, 60, 625, 144}
	srcs := make([][]complex128, len(sizes))
	wants := make([][]complex128, len(sizes))
	for i, n := range sizes {
		srcs[i] = randVec(rng, n)
		wants[i] = naiveDFT(srcs[i])
	}
	const tol = 1e-8
	// Three passes so every plan's pool has warm buffers from prior,
	// differently-sized neighbours by the time it runs again.
	for pass := 0; pass < 3; pass++ {
		for i, n := range sizes {
			dst := make([]complex128, n)
			Get(n).Forward(dst, srcs[i])
			if d := maxAbsDiff(dst, wants[i]); d > tol*float64(n) {
				t.Fatalf("pass %d n=%d: max |fft-naive| = %g", pass, n, d)
			}
		}
	}
}

// TestArenaMatchesPool verifies the arena-backed ...In transforms are
// bit-identical to the pool-backed ones, for both directions, across all
// structural cases (including in-place calls).
func TestArenaMatchesPool(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ws := workspace.New()
	for _, n := range testSizes {
		p := Get(n)
		src := randVec(rng, n)

		fwdPool := make([]complex128, n)
		p.Forward(fwdPool, src)
		fwdArena := make([]complex128, n)
		m := ws.Mark()
		p.ForwardIn(ws, fwdArena, src)
		ws.Release(m)
		for i := range fwdPool {
			if fwdPool[i] != fwdArena[i] {
				t.Fatalf("n=%d forward: arena path diverges at bin %d: %v vs %v",
					n, i, fwdPool[i], fwdArena[i])
			}
		}

		invPool := make([]complex128, n)
		p.Inverse(invPool, fwdPool)
		invArena := make([]complex128, n)
		m = ws.Mark()
		p.InverseIn(ws, invArena, fwdArena)
		ws.Release(m)
		for i := range invPool {
			if invPool[i] != invArena[i] {
				t.Fatalf("n=%d inverse: arena path diverges at bin %d", n, i)
			}
		}

		// In-place arena forward (exercises the aliasing copy path).
		inPlace := append([]complex128(nil), src...)
		m = ws.Mark()
		p.ForwardIn(ws, inPlace, inPlace)
		ws.Release(m)
		for i := range fwdPool {
			if fwdPool[i] != inPlace[i] {
				t.Fatalf("n=%d in-place forward: arena path diverges at bin %d", n, i)
			}
		}
	}
}

// TestBluesteinArenaZeroTail pins the zeroed-memory guarantee Bluestein's
// arena path depends on (ISSUE 2 satellite): core requires the chirp input
// padding x[n:m) to be zero, and the arena path takes that straight from
// workspace handout rather than clearing explicitly. Two checks: the
// workspace contract itself (a released-then-regrabbed buffer must come
// back zeroed, not holding the garbage written before release), and an
// end-to-end stale-tail corruption hunt — Bluestein transforms of
// interleaved lengths on one arena deliberately dirtied by large smooth
// transforms in between, compared bit-exactly against the pool path.
func TestBluesteinArenaZeroTail(t *testing.T) {
	ws := workspace.New()
	// Contract check: dirty a buffer, release, re-grab the same region.
	m := ws.Mark()
	buf := ws.Complex(4096)
	for i := range buf {
		buf[i] = complex(1e9, -1e9)
	}
	ws.Release(m)
	m = ws.Mark()
	buf = ws.Complex(4096)
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("arena re-handout not zeroed at %d: %v", i, v)
		}
	}
	ws.Release(m)

	// Corruption hunt: every Bluestein length's x[n:m) tail lands on arena
	// memory the preceding transforms filled with nonzero data.
	rng := rand.New(rand.NewSource(13))
	bluLens := []int{97, 199, 331, 1201}
	srcs := make([][]complex128, len(bluLens))
	wants := make([][]complex128, len(bluLens))
	for i, n := range bluLens {
		srcs[i] = randVec(rng, n)
		wants[i] = make([]complex128, n)
		Get(n).Forward(wants[i], srcs[i]) // pool path reference
	}
	dirty := randVec(rng, 2400)
	dirtyDst := make([]complex128, 2400)
	for pass := 0; pass < 3; pass++ {
		for i, n := range bluLens {
			m := ws.Mark()
			// Smear nonzero data across the arena region the next
			// transform's scratch will occupy.
			Get(2400).ForwardIn(ws, dirtyDst, dirty)
			ws.Release(m)
			got := make([]complex128, n)
			m = ws.Mark()
			Get(n).ForwardIn(ws, got, srcs[i])
			ws.Release(m)
			for k := range got {
				if got[k] != wants[i][k] {
					t.Fatalf("pass %d n=%d: arena Bluestein diverges from pool at bin %d (stale tail?)",
						pass, n, k)
				}
			}
		}
	}
}

// TestArenaTransformZeroAlloc asserts the arena path performs no heap
// allocation in steady state, for both a mixed-radix and a Bluestein size.
func TestArenaTransformZeroAlloc(t *testing.T) {
	ws := workspace.New()
	for _, n := range []int{1200, 97} {
		p := Get(n)
		src := randVec(rand.New(rand.NewSource(3)), n)
		dst := make([]complex128, n)
		run := func() {
			m := ws.Mark()
			p.ForwardIn(ws, dst, src)
			p.InverseIn(ws, dst, dst)
			ws.Release(m)
		}
		run() // warm the arena
		if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
			t.Errorf("n=%d: arena transform allocates %.1f times per run", n, allocs)
		}
	}
}
