package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(src []complex128) []complex128 {
	n := len(src)
	dst := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			theta := -2 * math.Pi * float64(j*k%n) / float64(n)
			sum += src[j] * cmplx.Exp(complex(0, theta))
		}
		dst[k] = sum
	}
	return dst
}

func randVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func maxAbsDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// testSizes covers every structural case: trivial, pure radix-2, radix-3/5/7
// mixes (typical LTE sizes are 12*k), primes and semiprimes (Bluestein), and
// the largest size the benchmark uses (200 PRB * 12 = 2400).
var testSizes = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 17, 20, 24, 25, 27,
	31, 36, 48, 49, 60, 64, 97, 100, 120, 128, 144, 199, 240, 256, 300, 360,
	480, 600, 625, 720, 960, 1024, 1200, 2400}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range testSizes {
		src := randVec(rng, n)
		want := naiveDFT(src)
		got := make([]complex128, n)
		New(n).Forward(got, src)
		tol := 1e-8 * float64(n)
		if d := maxAbsDiff(got, want); d > tol {
			t.Errorf("n=%d: max |fft-naive| = %g > %g", n, d, tol)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range testSizes {
		p := New(n)
		src := randVec(rng, n)
		freq := make([]complex128, n)
		back := make([]complex128, n)
		p.Forward(freq, src)
		p.Inverse(back, freq)
		tol := 1e-9 * float64(n)
		if d := maxAbsDiff(back, src); d > tol {
			t.Errorf("n=%d: round trip error %g > %g", n, d, tol)
		}
	}
}

func TestInPlaceForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{8, 24, 97, 300} {
		p := New(n)
		src := randVec(rng, n)
		want := make([]complex128, n)
		p.Forward(want, src)
		inplace := append([]complex128(nil), src...)
		p.Forward(inplace, inplace)
		if d := maxAbsDiff(inplace, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: in-place differs from out-of-place by %g", n, d)
		}
	}
}

func TestInPlaceInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{16, 60, 199} {
		p := New(n)
		src := randVec(rng, n)
		want := make([]complex128, n)
		p.Inverse(want, src)
		inplace := append([]complex128(nil), src...)
		p.Inverse(inplace, inplace)
		if d := maxAbsDiff(inplace, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: in-place inverse differs by %g", n, d)
		}
	}
}

// TestParseval checks sum |x|^2 == sum |X|^2 / N, a global invariant that
// catches scaling and twiddle-sign errors.
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range testSizes {
		src := randVec(rng, n)
		dst := make([]complex128, n)
		New(n).Forward(dst, src)
		var et, ef float64
		for i := 0; i < n; i++ {
			et += real(src[i])*real(src[i]) + imag(src[i])*imag(src[i])
			ef += real(dst[i])*real(dst[i]) + imag(dst[i])*imag(dst[i])
		}
		ef /= float64(n)
		if math.Abs(et-ef) > 1e-7*et+1e-12 {
			t.Errorf("n=%d: Parseval violated: time %g vs freq %g", n, et, ef)
		}
	}
}

// TestLinearity is a property-based check: DFT(a*x + b*y) == a*DFT(x) + b*DFT(y).
func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 8)
		b = math.Mod(b, 8)
		r := rand.New(rand.NewSource(seed))
		n := testSizes[r.Intn(len(testSizes))]
		p := Get(n)
		x := randVec(rng, n)
		y := randVec(rng, n)
		comb := make([]complex128, n)
		for i := range comb {
			comb[i] = complex(a, 0)*x[i] + complex(b, 0)*y[i]
		}
		fx := make([]complex128, n)
		fy := make([]complex128, n)
		fc := make([]complex128, n)
		p.Forward(fx, x)
		p.Forward(fy, y)
		p.Forward(fc, comb)
		for i := range fc {
			want := complex(a, 0)*fx[i] + complex(b, 0)*fy[i]
			if cmplx.Abs(fc[i]-want) > 1e-7*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestImpulse verifies that a unit impulse transforms to an all-ones
// spectrum and a constant transforms to a scaled impulse.
func TestImpulse(t *testing.T) {
	for _, n := range []int{5, 12, 17, 48, 2400} {
		p := New(n)
		src := make([]complex128, n)
		src[0] = 1
		dst := make([]complex128, n)
		p.Forward(dst, src)
		for k, v := range dst {
			if cmplx.Abs(v-1) > 1e-9*float64(n) {
				t.Fatalf("n=%d: impulse spectrum at %d = %v, want 1", n, k, v)
			}
		}
		for i := range src {
			src[i] = 1
		}
		p.Forward(dst, src)
		if cmplx.Abs(dst[0]-complex(float64(n), 0)) > 1e-9*float64(n) {
			t.Errorf("n=%d: DC bin %v, want %d", n, dst[0], n)
		}
		for k := 1; k < n; k++ {
			if cmplx.Abs(dst[k]) > 1e-8*float64(n) {
				t.Errorf("n=%d: non-DC bin %d = %v, want 0", n, k, dst[k])
			}
		}
	}
}

// TestShiftTheorem checks the circular-shift property
// DFT(x shifted by s)[k] == DFT(x)[k] * exp(-2*pi*i*s*k/N), which the
// channel estimator's cyclic-shift layer separation relies on.
func TestShiftTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{24, 36, 97, 144} {
		p := New(n)
		x := randVec(rng, n)
		s := 1 + rng.Intn(n-1)
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[(i-s+n)%n]
		}
		fx := make([]complex128, n)
		fs := make([]complex128, n)
		p.Forward(fx, x)
		p.Forward(fs, shifted)
		for k := 0; k < n; k++ {
			theta := -2 * math.Pi * float64(s*k%n) / float64(n)
			want := fx[k] * cmplx.Exp(complex(0, theta))
			if cmplx.Abs(fs[k]-want) > 1e-8*float64(n) {
				t.Fatalf("n=%d s=%d: shift theorem violated at bin %d", n, s, k)
			}
		}
	}
}

func TestGetCachesPlans(t *testing.T) {
	a := Get(360)
	b := Get(360)
	if a != b {
		t.Error("Get(360) returned distinct plans; cache not working")
	}
	if a.Len() != 360 {
		t.Errorf("plan length = %d, want 360", a.Len())
	}
}

func TestOpsMonotonicInSize(t *testing.T) {
	// Ops need not be strictly monotone across smooth/Bluestein boundaries,
	// but within the smooth family it must grow with n, and Bluestein must
	// always cost more than the smooth transform of similar size.
	prev := 0.0
	for _, n := range []int{12, 24, 48, 96, 192, 384, 768, 1536} {
		ops := New(n).Ops()
		if ops <= prev {
			t.Errorf("Ops(%d) = %g not greater than previous %g", n, ops, prev)
		}
		prev = ops
	}
	if bl, sm := New(97).Ops(), New(96).Ops(); bl <= sm {
		t.Errorf("Bluestein Ops(97)=%g should exceed smooth Ops(96)=%g", bl, sm)
	}
}

func TestNewPanicsOnInvalidLength(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestForwardPanicsOnLengthMismatch(t *testing.T) {
	p := New(8)
	defer func() {
		if recover() == nil {
			t.Error("Forward with mismatched lengths did not panic")
		}
	}()
	p.Forward(make([]complex128, 4), make([]complex128, 8))
}

func TestConcurrentUse(t *testing.T) {
	p := Get(300)
	rng := rand.New(rand.NewSource(8))
	src := randVec(rng, 300)
	want := make([]complex128, 300)
	p.Forward(want, src)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				got := make([]complex128, 300)
				p.Forward(got, src)
				if maxAbsDiff(got, want) > 1e-9 {
					done <- errShared
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errShared = errString("concurrent Forward produced divergent result")

type errString string

func (e errString) Error() string { return string(e) }

func BenchmarkForward(b *testing.B) {
	for _, n := range []int{24, 144, 600, 1200, 2400} {
		p := New(n)
		src := randVec(rand.New(rand.NewSource(9)), n)
		dst := make([]complex128, n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Forward(dst, src)
			}
		})
	}
}

func BenchmarkForwardBluestein(b *testing.B) {
	for _, n := range []int{97, 199, 1201} {
		p := New(n)
		src := randVec(rand.New(rand.NewSource(10)), n)
		dst := make([]complex128, n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Forward(dst, src)
			}
		})
	}
}

func sizeName(n int) string {
	return "n" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
