package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"ltephy/internal/phy/workspace"
	"ltephy/internal/rng"
)

// f32TestLengths covers every structural case of the float32 engine:
// trivial, single-stage, pure radix-4 chains, odd/even stage counts,
// mixed radices including 7, and Bluestein lengths (prime factor > 7) —
// plus the LTE allocation sizes 12*nPRB the receiver actually uses.
var f32TestLengths = []int{
	1, 2, 3, 4, 5, 7, 8, 12, 16, 24, 36, 60, 64, 72, 84, 96,
	108, 120, 128, 132, 156, 204, 240, 300, 444, 600, 1200, 2400,
	11, 13, 22, 121, 1201,
}

func randPlanesF32(r *rng.RNG, n int) (re, im []float32, c []complex128) {
	re = make([]float32, n)
	im = make([]float32, n)
	c = make([]complex128, n)
	for k := 0; k < n; k++ {
		re[k] = float32(r.NormFloat64())
		im[k] = float32(r.NormFloat64())
		c[k] = complex(float64(re[k]), float64(im[k]))
	}
	return
}

// f32Tol is the pinned relative accuracy bound for the float32 engine
// versus the complex128 oracle: a few float32 ulps per butterfly level,
// measured against the RMS magnitude of the reference spectrum (a
// per-element relative bound is meaningless at spectral nulls).
func f32Tol(n int) float64 {
	levels := math.Log2(float64(n)) + 1
	return 6e-7 * levels
}

func checkF32Spectrum(t *testing.T, name string, n int, gotRe, gotIm []float32, want []complex128) {
	t.Helper()
	var ref float64
	for _, v := range want {
		ref += real(v)*real(v) + imag(v)*imag(v)
	}
	scale := math.Sqrt(ref/float64(n)) + 1
	tol := f32Tol(n) * scale * math.Sqrt(float64(n))
	for k := range want {
		got := complex(float64(gotRe[k]), float64(gotIm[k]))
		if d := cmplx.Abs(got - want[k]); d > tol {
			t.Fatalf("%s n=%d: bin %d = %v, want %v (|diff| %g > tol %g)",
				name, n, k, got, want[k], d, tol)
		}
	}
}

// TestForwardF32MatchesComplex128 pins the float32 split-plane forward
// transform against the complex128 engine on identical inputs.
func TestForwardF32MatchesComplex128(t *testing.T) {
	r := rng.New(11)
	for _, n := range f32TestLengths {
		srcRe, srcIm, src := randPlanesF32(r, n)
		want := make([]complex128, n)
		New(n).Forward(want, src)

		p := NewF32(n)
		dstRe, dstIm := make([]float32, n), make([]float32, n)
		p.Forward(dstRe, dstIm, srcRe, srcIm)
		checkF32Spectrum(t, "Forward", n, dstRe, dstIm, want)

		// In-place (dst aliases src) must agree bit-for-bit with the
		// out-of-place result.
		p.Forward(srcRe, srcIm, srcRe, srcIm)
		for k := 0; k < n; k++ {
			if srcRe[k] != dstRe[k] || srcIm[k] != dstIm[k] {
				t.Fatalf("n=%d: aliased forward diverged at bin %d", n, k)
			}
		}
	}
}

// TestInverseF32RoundTrip checks Inverse(Forward(x)) == x to float32
// rounding for every structural length.
func TestInverseF32RoundTrip(t *testing.T) {
	r := rng.New(12)
	for _, n := range f32TestLengths {
		srcRe, srcIm, src := randPlanesF32(r, n)
		p := NewF32(n)
		fre, fim := make([]float32, n), make([]float32, n)
		p.Forward(fre, fim, srcRe, srcIm)
		p.Inverse(fre, fim, fre, fim)
		checkF32Spectrum(t, "RoundTrip", n, fre, fim, src)
	}
}

// TestInverseF32MatchesComplex128 pins InverseIn against the complex128
// inverse on spectrum-domain input.
func TestInverseF32MatchesComplex128(t *testing.T) {
	r := rng.New(13)
	ws := workspace.New()
	for _, n := range f32TestLengths {
		srcRe, srcIm, src := randPlanesF32(r, n)
		want := make([]complex128, n)
		New(n).Inverse(want, src)

		p := NewF32(n)
		dstRe, dstIm := make([]float32, n), make([]float32, n)
		p.InverseIn(ws, dstRe, dstIm, srcRe, srcIm)
		checkF32Spectrum(t, "Inverse", n, dstRe, dstIm, want)
	}
}

// TestBatchF32BitExact proves the batch entry points are bit-identical
// to per-vector ForwardIn/InverseIn calls, for both smooth and
// Bluestein lengths, and exercises the strided scatter form.
func TestBatchF32BitExact(t *testing.T) {
	r := rng.New(14)
	ws := workspace.New()
	for _, n := range []int{12, 60, 132, 300} {
		const howMany = 5
		stride := n + 3
		total := (howMany-1)*stride + n
		srcRe, srcIm := make([]float32, total), make([]float32, total)
		for k := range srcRe {
			srcRe[k] = float32(r.NormFloat64())
			srcIm[k] = float32(r.NormFloat64())
		}
		p := NewF32(n)

		wantRe, wantIm := make([]float32, total), make([]float32, total)
		for i := 0; i < howMany; i++ {
			o := i * stride
			p.ForwardIn(ws, wantRe[o:o+n], wantIm[o:o+n], srcRe[o:o+n], srcIm[o:o+n])
		}
		gotRe, gotIm := make([]float32, total), make([]float32, total)
		p.ForwardBatch(ws, gotRe, gotIm, srcRe, srcIm, howMany, stride)
		for k := range wantRe {
			if gotRe[k] != wantRe[k] || gotIm[k] != wantIm[k] {
				t.Fatalf("n=%d: ForwardBatch diverged from per-vector at %d", n, k)
			}
		}

		// Strided scatter: batch from stride to a wider dstStride.
		dstStride := n + 9
		wide := (howMany-1)*dstStride + n
		sgRe, sgIm := make([]float32, wide), make([]float32, wide)
		p.ForwardBatchStrided(ws, sgRe, sgIm, srcRe, srcIm, howMany, dstStride, stride)
		for i := 0; i < howMany; i++ {
			so, do := i*stride, i*dstStride
			for k := 0; k < n; k++ {
				if sgRe[do+k] != wantRe[so+k] || sgIm[do+k] != wantIm[so+k] {
					t.Fatalf("n=%d: strided batch diverged at vec %d bin %d", n, i, k)
				}
			}
		}

		for i := 0; i < howMany; i++ {
			o := i * stride
			p.InverseIn(ws, wantRe[o:o+n], wantIm[o:o+n], srcRe[o:o+n], srcIm[o:o+n])
		}
		p.InverseBatch(ws, gotRe, gotIm, srcRe, srcIm, howMany, stride)
		for k := range wantRe {
			if gotRe[k] != wantRe[k] || gotIm[k] != wantIm[k] {
				t.Fatalf("n=%d: InverseBatch diverged from per-vector at %d", n, k)
			}
		}
	}
}

// TestF32ArenaPoolAgree proves arena-backed and pool-backed transforms
// produce bit-identical results (the scratch source must not change the
// arithmetic), including the Bluestein tail-zeroing contract.
func TestF32ArenaPoolAgree(t *testing.T) {
	r := rng.New(15)
	ws := workspace.New()
	for _, n := range []int{24, 96, 132, 1201} {
		srcRe, srcIm, _ := randPlanesF32(r, n)
		p := NewF32(n)
		aRe, aIm := make([]float32, n), make([]float32, n)
		bRe, bIm := make([]float32, n), make([]float32, n)
		// Dirty the arena's f32 stack first so stale scratch would surface.
		mk := ws.Mark()
		junk := ws.Float32(4 * n)
		for k := range junk {
			junk[k] = 999
		}
		ws.Release(mk)
		p.ForwardIn(ws, aRe, aIm, srcRe, srcIm)
		p.Forward(bRe, bIm, srcRe, srcIm)
		for k := 0; k < n; k++ {
			if aRe[k] != bRe[k] || aIm[k] != bIm[k] {
				t.Fatalf("n=%d: arena vs pool scratch diverged at bin %d", n, k)
			}
		}
	}
}

// TestGetF32SharedCache checks the (size, precision) plan cache: both
// precisions for one length coexist and repeat lookups return the same
// instance.
func TestGetF32SharedCache(t *testing.T) {
	c1 := Get(444)
	f1 := GetF32(444)
	if c1.Len() != 444 || f1.Len() != 444 {
		t.Fatal("cached plan has wrong length")
	}
	if Get(444) != c1 {
		t.Error("Get(444) not memoised")
	}
	if GetF32(444) != f1 {
		t.Error("GetF32(444) not memoised")
	}
	// The two precisions must not evict each other.
	if Get(444) != c1 || GetF32(444) != f1 {
		t.Error("precision entries evicted each other")
	}
}

// TestOpsF32MatchesComplex128 pins the shared butterfly accounting.
func TestOpsF32MatchesComplex128(t *testing.T) {
	for _, n := range []int{1, 12, 132, 600, 1201} {
		if c, f := New(n).Ops(), NewF32(n).Ops(); c != f {
			t.Errorf("n=%d: Ops mismatch c128 %g vs f32 %g", n, c, f)
		}
	}
}
