// Package fft implements discrete Fourier transforms of arbitrary length
// over complex128 data.
//
// LTE uplink allocations span nPRB*12 subcarriers for nPRB in [2, 200], so
// transform lengths are rarely powers of two. Lengths whose prime factors
// are all <= 7 run on an iterative, stage-planned Stockham engine: New(n)
// decomposes n into an explicit list of radix stages (4 first, then 2, 3,
// 5, 7) with one precomputed twiddle table per stage, so the transform
// loop performs no modulo arithmetic, no recursion and no per-level
// scratch copies — each stage is a single pass between two ping-pong
// buffers through a specialised radix-2/3/4/5 butterfly kernel (radix-4
// folds what would be two radix-2 levels into one pass). Any other length
// falls back to Bluestein's chirp-z algorithm built on a power-of-two
// plan, which itself runs on the same iterative engine.
//
// The inverse transform is the forward transform followed by an in-place
// index reversal and 1/N scale (IDFT(x)[k] = DFT(x)[(N-k) mod N]/N), so
// both directions share one set of kernels and twiddle tables.
//
// Batched transforms: ForwardBatch/InverseBatch run howMany transforms
// over vectors laid out at a fixed stride, sharing one scratch
// acquisition and one plan across the whole batch — the shape of the
// receiver's (antenna x layer) channel-estimation grid and
// (symbol x layer) demodulation grid. The ...Strided variants allow
// distinct source and destination strides for scatter/gather layouts.
//
// A Plan precomputes its stage tables and is safe for concurrent use by
// multiple goroutines as long as each call supplies its own destination
// slice. Per-call scratch comes from one of two sources: the ...In and
// ...Batch methods draw it from a caller-supplied per-worker
// workspace.Arena — the receiver hot path, zero-allocation in steady state
// — while the plain Forward/Inverse draw from per-plan sync.Pools, the
// fallback for callers without an arena.
//
// Scratch-pool safety audit (ISSUE 1 satellite, re-verified for the
// iterative engine): every sync.Pool here is a field of the Plan (or its
// bluestein) it serves, so pooled buffers are keyed by plan identity and
// two plans never exchange buffers, even for the same length (Get memoises
// one Plan per length; a Bluestein plan's power-of-two inner Plan is
// private to it). All pooled buffers are full plan length; every stage
// pass overwrites its whole output buffer, so no stale contents can leak
// between interleaved transforms of different sizes on one goroutine. The
// one buffer with a read-before-write region is Bluestein's padded chirp
// input x[n:m), which the engine explicitly zeroes on acquisition from a
// pool and between batch iterations, and which an Arena guarantees zeroed
// on handout; TestInterleavedLengths and TestBluesteinArenaZeroTail pin
// this.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"ltephy/internal/phy/workspace"
)

// maxRadix is the largest prime factor handled by the mixed-radix path.
// Lengths with a larger prime factor use Bluestein's algorithm.
const maxRadix = 7

// stage is one pass of the iterative Stockham pipeline. Entering stage i
// the data is organised as s interleaved sequences of length r*m; the pass
// splits each into r sequences of length m:
//
//	y[q + s*(r*p + j)] = sum_c x[q + s*(p + c*m)] * W_r^{j*c} * W_{r*m}^{j*p}
//
// for p in [0,m), j in [0,r), q in [0,s), with W_k = exp(-2*pi*i/k). The
// twiddles W_{r*m}^{j*p} are precomputed in tw, laid out per butterfly:
// tw[(r-1)*p + j-1] (j = 0 needs none). The radix kernels below hard-code
// the W_r^{j*c} sub-DFT for r = 2, 3, 4, 5; other radices (only 7 here)
// use the generic kernel with the precomputed root[j*r+c] table.
type stage struct {
	r    int          // radix
	m    int          // sub-sequence length after this pass
	s    int          // interleaved sequences entering this pass
	tw   []complex128 // (r-1)*m twiddles, tw[(r-1)*p+j-1] = W_{r*m}^{j*p}
	root []complex128 // generic radix only: r*r table, root[j*r+c] = W_r^{(j*c) mod r}
}

// Plan holds the precomputed state needed to transform vectors of a fixed
// length N. Create one with New and reuse it; construction is O(N log N)
// and transforms are O(N log N) with no allocation when an Arena (or the
// warm per-plan pool) supplies scratch.
type Plan struct {
	n       int
	stages  []stage    // empty when n == 1 or !smooth
	smooth  bool       // true when n factors into primes <= maxRadix
	blu     *bluestein // non-nil when !smooth
	scratch sync.Pool  // *[]complex128 of length n (ping-pong buffer)
}

// New returns a transform plan for vectors of length n.
// It panics if n <= 0; a zero-length transform has no meaning here and
// indicates a bug in the caller's size computation.
func New(n int) *Plan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid transform length %d", n))
	}
	p := &Plan{n: n, smooth: isSmooth(n)}
	if p.smooth {
		p.stages = buildStages(n)
	} else {
		p.blu = newBluestein(n)
	}
	p.scratch.New = func() any {
		s := make([]complex128, n)
		return &s
	}
	return p
}

// Len returns the transform length the plan was built for.
func (p *Plan) Len() int { return p.n }

// buildStages decomposes n (smooth, > 1 allowed; n == 1 yields no stages)
// into the stage list: radix-4 passes first (each folding two radix-2
// levels), one leftover radix 2, then 3, 5, 7. Larger radices early keep
// the later, wider passes (large s) on the cheapest kernels.
func buildStages(n int) []stage {
	var radices []int
	rem := n
	for rem%4 == 0 {
		radices = append(radices, 4)
		rem /= 4
	}
	if rem%2 == 0 {
		radices = append(radices, 2)
		rem /= 2
	}
	for _, r := range []int{3, 5, 7} {
		for rem%r == 0 {
			radices = append(radices, r)
			rem /= r
		}
	}
	if rem != 1 {
		panic(fmt.Sprintf("fft: buildStages called for non-smooth length %d", n))
	}
	stages := make([]stage, 0, len(radices))
	s, cur := 1, n
	for _, r := range radices {
		m := cur / r
		st := stage{r: r, m: m, s: s, tw: stageTwiddles(r, m)}
		if r > 5 {
			st.root = radixRoots(r)
		}
		stages = append(stages, st)
		cur = m
		s *= r
	}
	return stages
}

// stageTwiddles returns the (r-1)*m table tw[(r-1)*p+j-1] = W_{r*m}^{j*p}.
func stageTwiddles(r, m int) []complex128 {
	tw := make([]complex128, (r-1)*m)
	step := -2 * math.Pi / float64(r*m)
	for p := 0; p < m; p++ {
		for j := 1; j < r; j++ {
			theta := step * float64(j*p)
			tw[(r-1)*p+j-1] = complex(math.Cos(theta), math.Sin(theta))
		}
	}
	return tw
}

// radixRoots returns the r*r sub-DFT matrix root[j*r+c] = W_r^{(j*c) mod r}
// for the generic kernel.
func radixRoots(r int) []complex128 {
	root := make([]complex128, r*r)
	for j := 0; j < r; j++ {
		for c := 0; c < r; c++ {
			theta := -2 * math.Pi * float64((j*c)%r) / float64(r)
			root[j*r+c] = complex(math.Cos(theta), math.Sin(theta))
		}
	}
	return root
}

// Forward computes the forward DFT of src into dst:
//
//	dst[k] = sum_j src[j] * exp(-2*pi*i*j*k/N)
//
// dst and src must both have length N. dst and src may be the same slice.
// Scratch comes from the plan's pool; hot paths with a per-worker arena
// should call ForwardIn instead.
func (p *Plan) Forward(dst, src []complex128) { p.ForwardIn(nil, dst, src) }

// ForwardIn is Forward with per-call scratch drawn from ws (zero heap
// allocation in steady state). A nil ws falls back to the plan's pool.
func (p *Plan) ForwardIn(ws *workspace.Arena, dst, src []complex128) {
	p.checkLen(dst, src)
	if !p.smooth {
		p.blu.transform(ws, dst, src)
		return
	}
	k := len(p.stages)
	if k == 0 {
		dst[0] = src[0]
		return
	}
	aliased := &dst[0] == &src[0]
	if k == 1 && !aliased {
		// Single pass straight src -> dst: no scratch at all.
		runStage(&p.stages[0], dst, src)
		return
	}
	// Mark/Release bracket the whole call unconditionally (both are
	// nil-arena no-ops), keeping the scratch lifetime explicit even on the
	// pooled fallback path.
	mk := ws.Mark()
	var t1, t2 *[]complex128
	var scr, scr2 []complex128
	if ws != nil {
		scr = ws.Complex(p.n)
	} else {
		t1 = p.scratch.Get().(*[]complex128)
		scr = *t1
	}
	if aliased && k > 1 && k&1 == 1 {
		// Odd stage count writes dst first; an aliased src must survive
		// that pass, so it is copied aside. Even counts write scr first
		// and need no copy.
		if ws != nil {
			scr2 = ws.Complex(p.n)
		} else {
			t2 = p.scratch.Get().(*[]complex128)
			scr2 = *t2
		}
	}
	p.transformOne(dst, src, scr, scr2)
	ws.Release(mk)
	if ws == nil {
		p.scratch.Put(t1)
		if t2 != nil {
			p.scratch.Put(t2)
		}
	}
}

// transformOne runs the stage pipeline for one vector. scr must be a full
// plan-length buffer whenever the plan has more than one stage or dst
// aliases src; scr2 additionally when dst aliases src with an odd stage
// count above one. The pipeline ping-pongs between dst and scr with the
// parity arranged so the final pass lands in dst.
func (p *Plan) transformOne(dst, src, scr, scr2 []complex128) {
	k := len(p.stages)
	if &dst[0] == &src[0] {
		if k == 1 {
			copy(scr, src)
			src = scr
		} else if k&1 == 1 {
			copy(scr2, src)
			src = scr2
		}
	}
	cur := src
	for i := range p.stages {
		out := scr
		if (k-i)&1 == 1 {
			out = dst
		}
		runStage(&p.stages[i], out, cur)
		cur = out
	}
}

// Inverse computes the unnormalised-inverse DFT scaled by 1/N, i.e. the
// exact inverse of Forward. dst and src may be the same slice.
func (p *Plan) Inverse(dst, src []complex128) { p.InverseIn(nil, dst, src) }

// InverseIn is Inverse with per-call scratch drawn from ws. A nil ws falls
// back to the plan's pool. It computes the forward transform and applies
// the reversal identity IDFT(x)[k] = DFT(x)[(N-k) mod N] / N in place —
// one extra O(N) pass, against the two conjugation passes of the
// conjugate-trick inverse.
func (p *Plan) InverseIn(ws *workspace.Arena, dst, src []complex128) {
	p.ForwardIn(ws, dst, src)
	reverseScale(dst)
}

// reverseScale maps v[k] <- v[(n-k) mod n] / n in place.
func reverseScale(v []complex128) {
	n := len(v)
	s := 1 / float64(n)
	v[0] = complex(real(v[0])*s, imag(v[0])*s)
	for i, j := 1, n-1; i < j; i, j = i+1, j-1 {
		a, b := v[j], v[i]
		v[i] = complex(real(a)*s, imag(a)*s)
		v[j] = complex(real(b)*s, imag(b)*s)
	}
	if n > 1 && n&1 == 0 {
		m := n / 2
		v[m] = complex(real(v[m])*s, imag(v[m])*s)
	}
}

// ForwardBatch computes howMany forward DFTs in one call: transform i
// reads src[i*stride : i*stride+N] and writes dst[i*stride : i*stride+N].
// stride must be >= N. The whole batch shares one scratch acquisition and
// the plan's stage tables; per-vector results are bit-identical to
// howMany ForwardIn calls. dst and src must either be the same slice (with
// the same stride) or not overlap.
func (p *Plan) ForwardBatch(ws *workspace.Arena, dst, src []complex128, howMany, stride int) {
	p.ForwardBatchStrided(ws, dst, src, howMany, stride, stride)
}

// ForwardBatchStrided is ForwardBatch with distinct destination and source
// strides: transform i reads src[i*srcStride:][:N] and writes
// dst[i*dstStride:][:N] — the scatter/gather form grid-shaped callers use
// to land transforms directly in strided result layouts.
func (p *Plan) ForwardBatchStrided(ws *workspace.Arena, dst, src []complex128, howMany, dstStride, srcStride int) {
	if howMany <= 0 {
		return
	}
	p.checkBatch(len(dst), howMany, dstStride, "dst")
	p.checkBatch(len(src), howMany, srcStride, "src")
	if !p.smooth {
		p.blu.transformBatch(ws, dst, src, howMany, dstStride, srcStride)
		return
	}
	k := len(p.stages)
	if k == 0 {
		for i := 0; i < howMany; i++ {
			dst[i*dstStride] = src[i*srcStride]
		}
		return
	}
	aliased := &dst[0] == &src[0]
	if k == 1 && !aliased {
		for i := 0; i < howMany; i++ {
			runStage(&p.stages[0], dst[i*dstStride:i*dstStride+p.n], src[i*srcStride:i*srcStride+p.n])
		}
		return
	}
	mk := ws.Mark() // nil-arena no-op, mirrors ForwardIn's unconditional bracket
	var t1, t2 *[]complex128
	var scr, scr2 []complex128
	if ws != nil {
		scr = ws.Complex(p.n)
	} else {
		t1 = p.scratch.Get().(*[]complex128)
		scr = *t1
	}
	if aliased && k > 1 && k&1 == 1 {
		if ws != nil {
			scr2 = ws.Complex(p.n)
		} else {
			t2 = p.scratch.Get().(*[]complex128)
			scr2 = *t2
		}
	}
	for i := 0; i < howMany; i++ {
		p.transformOne(dst[i*dstStride:i*dstStride+p.n], src[i*srcStride:i*srcStride+p.n], scr, scr2)
	}
	ws.Release(mk)
	if ws == nil {
		p.scratch.Put(t1)
		if t2 != nil {
			p.scratch.Put(t2)
		}
	}
}

// InverseBatch computes howMany inverse DFTs in one call, with the same
// layout contract as ForwardBatch.
func (p *Plan) InverseBatch(ws *workspace.Arena, dst, src []complex128, howMany, stride int) {
	p.InverseBatchStrided(ws, dst, src, howMany, stride, stride)
}

// InverseBatchStrided is InverseBatch with distinct destination and source
// strides.
func (p *Plan) InverseBatchStrided(ws *workspace.Arena, dst, src []complex128, howMany, dstStride, srcStride int) {
	p.ForwardBatchStrided(ws, dst, src, howMany, dstStride, srcStride)
	for i := 0; i < howMany; i++ {
		reverseScale(dst[i*dstStride : i*dstStride+p.n])
	}
}

// Ops estimates the number of scalar floating-point operations a single
// Forward transform performs — the sum over the plan's stages of their
// butterfly counts times the per-butterfly kernel cost. The cycle-cost
// model (internal/cost) documents why its workload model deliberately
// smooths over the Bluestein cliff this estimate exposes.
func (p *Plan) Ops() float64 {
	if p.n == 1 {
		return 1
	}
	if p.smooth {
		ops := 0.0
		for _, st := range p.stages {
			ops += float64(p.n/st.r) * butterflyOps(st.r)
		}
		return ops
	}
	// Bluestein: chirp multiply, one forward batch + one inverse of size m
	// on the inner plan (3 transforms total), pointwise multiply, final
	// chirp multiply.
	return 3*p.blu.inner.Ops() + 6*8*float64(p.n) + 6*float64(p.blu.m)
}

// butterflyOps is the approximate scalar-flop cost of one radix-r
// butterfly in the specialised kernels (complex add = 2, complex mul = 6,
// real-by-complex scale = 2).
func butterflyOps(r int) float64 {
	switch r {
	case 2:
		return 10 // 2 cadd + 1 twiddle cmul
	case 3:
		return 26 // 4 cadd + 2 scale + 2 twiddle cmul
	case 4:
		return 34 // 8 cadd + 3 twiddle cmul
	case 5:
		return 72 // 12 cadd + 8 scale + 4 twiddle cmul
	default:
		return 8 * float64(r*r) // generic r-point sub-DFT + twiddles
	}
}

func (p *Plan) checkLen(dst, src []complex128) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("fft: plan length %d, got dst %d src %d", p.n, len(dst), len(src)))
	}
}

func (p *Plan) checkBatch(have, howMany, stride int, which string) {
	if stride < p.n {
		panic(fmt.Sprintf("fft: batch %s stride %d below plan length %d", which, stride, p.n))
	}
	if need := (howMany-1)*stride + p.n; have < need {
		panic(fmt.Sprintf("fft: batch %s has %d elements, %d transforms at stride %d need %d",
			which, have, howMany, stride, need))
	}
}

// runStage dispatches one Stockham pass to its radix kernel. Every kernel
// writes each element of y exactly once, so y's prior contents never leak
// into the output.
func runStage(st *stage, y, x []complex128) {
	switch st.r {
	case 4:
		stage4(st, y, x)
	case 2:
		stage2(st, y, x)
	case 3:
		stage3(st, y, x)
	case 5:
		stage5(st, y, x)
	default:
		stageGeneric(st, y, x)
	}
}

// stage2 is the radix-2 butterfly pass.
func stage2(st *stage, y, x []complex128) {
	m, s := st.m, st.s
	tw := st.tw
	if s == 1 {
		// First pass: contiguous data, no inner q loop.
		for p := 0; p < m; p++ {
			a, b := x[p], x[p+m]
			y[2*p] = a + b
			y[2*p+1] = (a - b) * tw[p]
		}
		return
	}
	for p := 0; p < m; p++ {
		w := tw[p]
		xa := x[s*p : s*p+s]
		xb := x[s*(p+m) : s*(p+m)+s]
		ya := y[2*s*p : 2*s*p+s]
		yb := y[s*(2*p+1) : s*(2*p+1)+s]
		if p == 0 {
			// w == 1: skip the twiddle multiply on the widest column.
			for q := 0; q < s; q++ {
				a, b := xa[q], xb[q]
				ya[q] = a + b
				yb[q] = a - b
			}
			continue
		}
		for q := 0; q < s; q++ {
			a, b := xa[q], xb[q]
			ya[q] = a + b
			yb[q] = (a - b) * w
		}
	}
}

// stage4 is the radix-4 butterfly pass — two folded radix-2 levels with a
// single set of twiddles and one trip through memory.
func stage4(st *stage, y, x []complex128) {
	m, s := st.m, st.s
	tw := st.tw
	if s == 1 {
		for p := 0; p < m; p++ {
			a0, a1, a2, a3 := x[p], x[p+m], x[p+2*m], x[p+3*m]
			t02p, t02m := a0+a2, a0-a2
			t13p, t13m := a1+a3, a1-a3
			jt := complex(imag(t13m), -real(t13m)) // -i * (a1 - a3)
			y[4*p] = t02p + t13p
			y[4*p+1] = (t02m + jt) * tw[3*p]
			y[4*p+2] = (t02p - t13p) * tw[3*p+1]
			y[4*p+3] = (t02m - jt) * tw[3*p+2]
		}
		return
	}
	for p := 0; p < m; p++ {
		w1, w2, w3 := tw[3*p], tw[3*p+1], tw[3*p+2]
		x0 := x[s*p : s*p+s]
		x1 := x[s*(p+m) : s*(p+m)+s]
		x2 := x[s*(p+2*m) : s*(p+2*m)+s]
		x3 := x[s*(p+3*m) : s*(p+3*m)+s]
		y0 := y[4*s*p : 4*s*p+s]
		y1 := y[s*(4*p+1) : s*(4*p+1)+s]
		y2 := y[s*(4*p+2) : s*(4*p+2)+s]
		y3 := y[s*(4*p+3) : s*(4*p+3)+s]
		if p == 0 {
			for q := 0; q < s; q++ {
				a0, a1, a2, a3 := x0[q], x1[q], x2[q], x3[q]
				t02p, t02m := a0+a2, a0-a2
				t13p, t13m := a1+a3, a1-a3
				jt := complex(imag(t13m), -real(t13m))
				y0[q] = t02p + t13p
				y1[q] = t02m + jt
				y2[q] = t02p - t13p
				y3[q] = t02m - jt
			}
			continue
		}
		for q := 0; q < s; q++ {
			a0, a1, a2, a3 := x0[q], x1[q], x2[q], x3[q]
			t02p, t02m := a0+a2, a0-a2
			t13p, t13m := a1+a3, a1-a3
			jt := complex(imag(t13m), -real(t13m))
			y0[q] = t02p + t13p
			y1[q] = (t02m + jt) * w1
			y2[q] = (t02p - t13p) * w2
			y3[q] = (t02m - jt) * w3
		}
	}
}

// sin3 = sin(2*pi/3): the imaginary part of the radix-3 root.
const sin3 = 0.8660254037844386467637231707529362

// stage3 is the radix-3 butterfly pass.
func stage3(st *stage, y, x []complex128) {
	m, s := st.m, st.s
	tw := st.tw
	for p := 0; p < m; p++ {
		w1, w2 := tw[2*p], tw[2*p+1]
		x0 := x[s*p : s*p+s]
		x1 := x[s*(p+m) : s*(p+m)+s]
		x2 := x[s*(p+2*m) : s*(p+2*m)+s]
		y0 := y[3*s*p : 3*s*p+s]
		y1 := y[s*(3*p+1) : s*(3*p+1)+s]
		y2 := y[s*(3*p+2) : s*(3*p+2)+s]
		for q := 0; q < s; q++ {
			a0, a1, a2 := x0[q], x1[q], x2[q]
			u := a1 + a2
			v := a1 - a2
			c := a0 - complex(0.5*real(u), 0.5*imag(u))
			w := complex(sin3*imag(v), -sin3*real(v)) // -i*sin3*v
			y0[q] = a0 + u
			y1[q] = (c + w) * w1
			y2[q] = (c - w) * w2
		}
	}
}

// Radix-5 constants: cos/sin of 2*pi/5 and 4*pi/5.
const (
	cos51 = 0.3090169943749474241022934171828191
	cos52 = -0.8090169943749474241022934171828191
	sin51 = 0.9510565162951535721164393333793821
	sin52 = 0.5877852522924731291687059546390728
)

// stage5 is the radix-5 butterfly pass (Winograd-style grouping of
// conjugate root pairs).
func stage5(st *stage, y, x []complex128) {
	m, s := st.m, st.s
	tw := st.tw
	for p := 0; p < m; p++ {
		w1, w2, w3, w4 := tw[4*p], tw[4*p+1], tw[4*p+2], tw[4*p+3]
		x0 := x[s*p : s*p+s]
		x1 := x[s*(p+m) : s*(p+m)+s]
		x2 := x[s*(p+2*m) : s*(p+2*m)+s]
		x3 := x[s*(p+3*m) : s*(p+3*m)+s]
		x4 := x[s*(p+4*m) : s*(p+4*m)+s]
		y0 := y[5*s*p : 5*s*p+s]
		y1 := y[s*(5*p+1) : s*(5*p+1)+s]
		y2 := y[s*(5*p+2) : s*(5*p+2)+s]
		y3 := y[s*(5*p+3) : s*(5*p+3)+s]
		y4 := y[s*(5*p+4) : s*(5*p+4)+s]
		for q := 0; q < s; q++ {
			a0, a1, a2, a3, a4 := x0[q], x1[q], x2[q], x3[q], x4[q]
			t1, t2 := a1+a4, a2+a3
			t3, t4 := a1-a4, a2-a3
			m1 := a0 + complex(cos51*real(t1)+cos52*real(t2), cos51*imag(t1)+cos52*imag(t2))
			m2 := a0 + complex(cos52*real(t1)+cos51*real(t2), cos52*imag(t1)+cos51*imag(t2))
			u1 := complex(sin51*real(t3)+sin52*real(t4), sin51*imag(t3)+sin52*imag(t4))
			u2 := complex(sin52*real(t3)-sin51*real(t4), sin52*imag(t3)-sin51*imag(t4))
			m3 := complex(imag(u1), -real(u1)) // -i*u1
			m4 := complex(imag(u2), -real(u2)) // -i*u2
			y0[q] = a0 + t1 + t2
			y1[q] = (m1 + m3) * w1
			y2[q] = (m2 + m4) * w2
			y3[q] = (m2 - m4) * w3
			y4[q] = (m1 - m3) * w4
		}
	}
}

// stageGeneric handles any remaining radix (only 7 for LTE lengths) with
// the precomputed r*r root table — still table-driven, still modulo-free
// at transform time.
func stageGeneric(st *stage, y, x []complex128) {
	r, m, s := st.r, st.m, st.s
	tw := st.tw
	root := st.root
	var a [maxRadix]complex128
	for p := 0; p < m; p++ {
		for q := 0; q < s; q++ {
			for c := 0; c < r; c++ {
				a[c] = x[s*(p+c*m)+q]
			}
			sum := a[0]
			for c := 1; c < r; c++ {
				sum += a[c]
			}
			y[s*r*p+q] = sum
			for j := 1; j < r; j++ {
				row := root[j*r : j*r+r]
				sum = a[0]
				for c := 1; c < r; c++ {
					sum += a[c] * row[c]
				}
				y[s*(r*p+j)+q] = sum * tw[(r-1)*p+j-1]
			}
		}
	}
}

// isSmooth reports whether every prime factor of n is <= maxRadix.
func isSmooth(n int) bool {
	for _, f := range []int{2, 3, 5, 7} {
		for n%f == 0 {
			n /= f
		}
	}
	return n == 1
}

func cmplxConj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// bluestein implements the chirp-z transform: an arbitrary-length DFT
// expressed as a cyclic convolution, evaluated with power-of-two FFTs on
// the iterative engine.
type bluestein struct {
	n     int
	m     int          // power-of-two convolution length, m >= 2n-1
	inner *Plan        // power-of-two plan of length m
	a     []complex128 // chirp: exp(-pi*i*k^2/n)
	bfft  []complex128 // FFT of the chirp-conjugate kernel, length m
	pool  sync.Pool    // *[]complex128 of length m
}

func newBluestein(n int) *bluestein {
	m := 1 << bits.Len(uint(2*n-2))
	if m < 2*n-1 {
		m <<= 1
	}
	b := &bluestein{n: n, m: m, inner: New(m)}
	b.a = make([]complex128, n)
	kernel := make([]complex128, m)
	for k := 0; k < n; k++ {
		// k*k mod 2n keeps the argument small so cos/sin stay accurate
		// for large k.
		q := (k * k) % (2 * n)
		theta := -math.Pi * float64(q) / float64(n)
		b.a[k] = complex(math.Cos(theta), math.Sin(theta))
		conj := complex(math.Cos(theta), -math.Sin(theta))
		kernel[k] = conj
		if k > 0 {
			kernel[m-k] = conj
		}
	}
	b.bfft = make([]complex128, m)
	b.inner.Forward(b.bfft, kernel)
	b.pool.New = func() any {
		s := make([]complex128, m)
		return &s
	}
	return b
}

// core runs one chirp-z transform using caller-provided length-m buffers.
// x[n:m) MUST be zero on entry (the zero padding of the chirp-multiplied
// input); on exit x holds convolution output over its whole length, so a
// caller reusing x must re-zero that tail first.
func (b *bluestein) core(ws *workspace.Arena, dst, src, x, y []complex128) {
	for k := 0; k < b.n; k++ {
		x[k] = src[k] * b.a[k]
	}
	b.inner.ForwardIn(ws, y, x)
	for i := range y {
		y[i] *= b.bfft[i]
	}
	b.inner.InverseIn(ws, x, y)
	for k := 0; k < b.n; k++ {
		dst[k] = x[k] * b.a[k]
	}
}

// getBuffers acquires the two length-m convolution buffers. Arena slices
// arrive zeroed by the workspace contract (TestBluesteinArenaZeroTail pins
// the x[n:m) dependence); pooled x gets its tail zeroed explicitly — the
// head is fully overwritten by core — and y needs no zeroing at all.
//
// caller holds the returned mark and hands it back to putBuffers.
//
//ltephy:owns-scratch — acquire half of the getBuffers/putBuffers pair; the
func (b *bluestein) getBuffers(ws *workspace.Arena) (x, y []complex128, mk workspace.Mark, xp, yp *[]complex128) {
	if ws != nil {
		mk = ws.Mark()
		return ws.Complex(b.m), ws.Complex(b.m), mk, nil, nil
	}
	xp = b.pool.Get().(*[]complex128)
	yp = b.pool.Get().(*[]complex128)
	x, y = *xp, *yp
	clear(x[b.n:])
	return x, y, workspace.Mark{}, xp, yp
}

func (b *bluestein) putBuffers(ws *workspace.Arena, mk workspace.Mark, xp, yp *[]complex128) {
	if ws != nil {
		ws.Release(mk)
		return
	}
	b.pool.Put(xp)
	b.pool.Put(yp)
}

func (b *bluestein) transform(ws *workspace.Arena, dst, src []complex128) {
	x, y, mk, xp, yp := b.getBuffers(ws)
	b.core(ws, dst, src, x, y)
	b.putBuffers(ws, mk, xp, yp)
}

// transformBatch shares one buffer acquisition across the whole batch,
// re-zeroing only x's padding tail between transforms.
func (b *bluestein) transformBatch(ws *workspace.Arena, dst, src []complex128, howMany, dstStride, srcStride int) {
	x, y, mk, xp, yp := b.getBuffers(ws)
	for i := 0; i < howMany; i++ {
		if i > 0 {
			clear(x[b.n:])
		}
		b.core(ws, dst[i*dstStride:i*dstStride+b.n], src[i*srcStride:i*srcStride+b.n], x, y)
	}
	b.putBuffers(ws, mk, xp, yp)
}

// planKey identifies a cached plan by (size, precision), so the float32
// split-plane and complex128 plans for the same length coexist in one
// cache instead of evicting each other.
type planKey struct {
	n   int
	f32 bool
}

// planCache memoises plans by (size, precision); Get and GetF32 are the
// concurrency-safe accessors used across the receiver so repeated
// subframe sizes share twiddle tables. RWMutex-guarded (not a sync.Map)
// and struct-keyed so lookups don't box the key — both accessors sit on
// the per-task hot path and must not allocate. Values are *Plan or
// *PlanF32 per the key's precision; storing the pointer in the interface
// value doesn't allocate either.
var (
	planMu    sync.RWMutex
	planCache = map[planKey]any{}
)

// lookupPlan is an uncontended RLock over one map read; plans are
// memoised per size so steady state never holds the write lock.
//
//ltephy:blocking-ok
func lookupPlan(k planKey) any {
	planMu.RLock()
	p := planCache[k]
	planMu.RUnlock()
	return p
}

// storePlan takes the write lock only on first sight of a new FFT size
// (cold warm-up); the critical section is one map read + write.
//
//ltephy:blocking-ok
func storePlan(k planKey, p any) any {
	planMu.Lock()
	if cached, ok := planCache[k]; ok {
		p = cached
	} else {
		planCache[k] = p
	}
	planMu.Unlock()
	return p
}

// Get returns a shared complex128 plan for length n, creating it on
// first use.
func Get(n int) *Plan {
	k := planKey{n: n}
	if p := lookupPlan(k); p != nil {
		return p.(*Plan)
	}
	return storePlan(k, New(n)).(*Plan)
}

// GetF32 returns a shared float32 split-plane plan for length n,
// creating it on first use.
func GetF32(n int) *PlanF32 {
	k := planKey{n: n, f32: true}
	if p := lookupPlan(k); p != nil {
		return p.(*PlanF32)
	}
	return storePlan(k, NewF32(n)).(*PlanF32)
}
