// Package fft implements discrete Fourier transforms of arbitrary length
// over complex128 data.
//
// LTE uplink allocations span nPRB*12 subcarriers for nPRB in [2, 200], so
// transform lengths are rarely powers of two. Lengths whose prime factors
// are all <= 7 are computed with a recursive mixed-radix Cooley-Tukey
// decomposition; any other length falls back to Bluestein's chirp-z
// algorithm built on a power-of-two transform.
//
// A Plan precomputes twiddle factors and scratch storage for one length and
// is safe for concurrent use by multiple goroutines as long as each call
// supplies its own destination slice (the per-call scratch is allocated from
// a pool).
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// maxRadix is the largest prime factor handled by the mixed-radix path.
// Lengths with a larger prime factor use Bluestein's algorithm.
const maxRadix = 7

// Plan holds the precomputed state needed to transform vectors of a fixed
// length N. Create one with New and reuse it; construction is O(N) and
// transforms are O(N log N).
type Plan struct {
	n       int
	tw      []complex128 // tw[k] = exp(-2*pi*i*k/n), k in [0, n)
	smooth  bool         // true when n factors into primes <= maxRadix
	blu     *bluestein   // non-nil when !smooth
	scratch sync.Pool    // *[]complex128 of length n (mixed-radix combine buffer)
}

// New returns a transform plan for vectors of length n.
// It panics if n <= 0; a zero-length transform has no meaning here and
// indicates a bug in the caller's size computation.
func New(n int) *Plan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid transform length %d", n))
	}
	p := &Plan{n: n, smooth: isSmooth(n)}
	p.tw = twiddles(n)
	if !p.smooth {
		p.blu = newBluestein(n)
	}
	p.scratch.New = func() any {
		s := make([]complex128, n)
		return &s
	}
	return p
}

// Len returns the transform length the plan was built for.
func (p *Plan) Len() int { return p.n }

// Forward computes the forward DFT of src into dst:
//
//	dst[k] = sum_j src[j] * exp(-2*pi*i*j*k/N)
//
// dst and src must both have length N. dst and src may be the same slice.
func (p *Plan) Forward(dst, src []complex128) {
	p.checkLen(dst, src)
	if !p.smooth {
		p.blu.transform(dst, src, p)
		return
	}
	if p.n == 1 {
		dst[0] = src[0]
		return
	}
	// The recursion reads src with strides, so when dst aliases src the
	// input must be copied first.
	if &dst[0] == &src[0] {
		tmp := p.getScratch()
		copy(*tmp, src)
		p.recurse(dst, *tmp, p.n, 1)
		p.putScratch(tmp)
		return
	}
	p.recurse(dst, src, p.n, 1)
}

// Inverse computes the unnormalised-inverse DFT scaled by 1/N, i.e. the
// exact inverse of Forward. dst and src may be the same slice.
func (p *Plan) Inverse(dst, src []complex128) {
	p.checkLen(dst, src)
	// IDFT(x) = conj(DFT(conj(x)))/N.
	tmp := p.getScratch()
	for i, v := range src {
		(*tmp)[i] = cmplxConj(v)
	}
	p.Forward(dst, *tmp)
	p.putScratch(tmp)
	scale := 1 / float64(p.n)
	for i, v := range dst {
		dst[i] = complex(real(v)*scale, -imag(v)*scale)
	}
}

// Ops estimates the number of scalar floating-point operations a single
// Forward transform performs. The cycle-cost model (internal/cost) uses this
// so that simulated task costs track the true algorithmic complexity,
// including the extra work Bluestein lengths require.
func (p *Plan) Ops() float64 {
	if p.n == 1 {
		return 1
	}
	if p.smooth {
		// Each combine level over factor r performs n*r complex
		// multiply-adds; a complex multiply-add is ~8 scalar flops.
		ops := 0.0
		for _, r := range factorize(p.n) {
			ops += float64(p.n) * float64(r) * 8
		}
		return ops
	}
	// Bluestein: chirp multiply, two forward FFTs + one inverse of size m,
	// pointwise multiply, final chirp multiply.
	m := float64(p.blu.m)
	perFFT := m * math.Log2(m) * 8
	return 3*perFFT + 6*8*float64(p.n) + 6*m
}

func (p *Plan) checkLen(dst, src []complex128) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("fft: plan length %d, got dst %d src %d", p.n, len(dst), len(src)))
	}
}

func (p *Plan) getScratch() *[]complex128 { return p.scratch.Get().(*[]complex128) }
func (p *Plan) putScratch(s *[]complex128) {
	p.scratch.Put(s)
}

// recurse computes the DFT of the n elements src[0], src[stride],
// src[2*stride], ... into dst[0:n]. It is the textbook mixed-radix
// Cooley-Tukey decomposition: split on the smallest prime factor r, solve
// the r interleaved subproblems of size m = n/r, then combine with
// twiddle-weighted butterflies:
//
//	dst[q*m+k] = sum_{j<r} Y_j[k] * W_N^{j*(q*m+k)*stride}
//
// where W_N = exp(-2*pi*i/N) and stride*n always equals the plan length N,
// so the root twiddle table serves every level.
func (p *Plan) recurse(dst, src []complex128, n, stride int) {
	if n == 1 {
		dst[0] = src[0]
		return
	}
	r := smallestFactor(n)
	m := n / r
	for j := 0; j < r; j++ {
		p.recurse(dst[j*m:(j+1)*m], src[j*stride:], m, stride*r)
	}
	if r == 2 {
		// Specialised radix-2 butterfly: no inner sum loop.
		for k := 0; k < m; k++ {
			a := dst[k]
			b := dst[m+k] * p.tw[(k*stride)%p.n]
			dst[k] = a + b
			dst[m+k] = a - b
		}
		return
	}
	tmp := p.getScratch()
	buf := (*tmp)[:n]
	for q := 0; q < r; q++ {
		base := q * m
		for k := 0; k < m; k++ {
			t := base + k
			var sum complex128
			for j := 0; j < r; j++ {
				sum += dst[j*m+k] * p.tw[(j*t*stride)%p.n]
			}
			buf[t] = sum
		}
	}
	copy(dst[:n], buf)
	p.putScratch(tmp)
}

// twiddles returns exp(-2*pi*i*k/n) for k in [0, n).
func twiddles(n int) []complex128 {
	tw := make([]complex128, n)
	for k := range tw {
		theta := -2 * math.Pi * float64(k) / float64(n)
		tw[k] = complex(math.Cos(theta), math.Sin(theta))
	}
	return tw
}

func cmplxConj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// isSmooth reports whether every prime factor of n is <= maxRadix.
func isSmooth(n int) bool {
	for _, f := range []int{2, 3, 5, 7} {
		for n%f == 0 {
			n /= f
		}
	}
	return n == 1
}

// smallestFactor returns the smallest prime factor of n (n >= 2).
func smallestFactor(n int) int {
	for _, f := range []int{2, 3, 5, 7} {
		if n%f == 0 {
			return f
		}
	}
	// Only reached for non-smooth n, which the Bluestein path handles;
	// kept total so factorize works on any n for Ops estimates.
	for f := 11; f*f <= n; f += 2 {
		if n%f == 0 {
			return f
		}
	}
	return n
}

// factorize returns the prime factorisation of n in nondecreasing order.
func factorize(n int) []int {
	var fs []int
	for n > 1 {
		f := smallestFactor(n)
		fs = append(fs, f)
		n /= f
	}
	return fs
}

// bluestein implements the chirp-z transform: an arbitrary-length DFT
// expressed as a cyclic convolution, evaluated with power-of-two FFTs.
type bluestein struct {
	n     int
	m     int          // power-of-two convolution length, m >= 2n-1
	inner *Plan        // power-of-two plan of length m
	a     []complex128 // chirp: exp(-pi*i*k^2/n)
	bfft  []complex128 // FFT of the chirp-conjugate kernel, length m
	pool  sync.Pool    // *[]complex128 of length m
}

func newBluestein(n int) *bluestein {
	m := 1 << bits.Len(uint(2*n-2))
	if m < 2*n-1 {
		m <<= 1
	}
	b := &bluestein{n: n, m: m, inner: New(m)}
	b.a = make([]complex128, n)
	kernel := make([]complex128, m)
	for k := 0; k < n; k++ {
		// k*k mod 2n keeps the argument small so cos/sin stay accurate
		// for large k.
		q := (k * k) % (2 * n)
		theta := -math.Pi * float64(q) / float64(n)
		b.a[k] = complex(math.Cos(theta), math.Sin(theta))
		conj := complex(math.Cos(theta), -math.Sin(theta))
		kernel[k] = conj
		if k > 0 {
			kernel[m-k] = conj
		}
	}
	b.bfft = make([]complex128, m)
	b.inner.Forward(b.bfft, kernel)
	b.pool.New = func() any {
		s := make([]complex128, m)
		return &s
	}
	return b
}

func (b *bluestein) transform(dst, src []complex128, _ *Plan) {
	xp := b.pool.Get().(*[]complex128)
	yp := b.pool.Get().(*[]complex128)
	x, y := *xp, *yp
	for i := range x {
		x[i] = 0
	}
	for k := 0; k < b.n; k++ {
		x[k] = src[k] * b.a[k]
	}
	b.inner.Forward(y, x)
	for i := range y {
		y[i] *= b.bfft[i]
	}
	b.inner.Inverse(x, y)
	for k := 0; k < b.n; k++ {
		dst[k] = x[k] * b.a[k]
	}
	b.pool.Put(xp)
	b.pool.Put(yp)
}

// planCache memoises plans by length; Get is the concurrency-safe accessor
// used across the receiver so repeated subframe sizes share twiddle tables.
var planCache sync.Map // int -> *Plan

// Get returns a shared plan for length n, creating it on first use.
func Get(n int) *Plan {
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan)
	}
	p := New(n)
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*Plan)
}
