// Package fft implements discrete Fourier transforms of arbitrary length
// over complex128 data.
//
// LTE uplink allocations span nPRB*12 subcarriers for nPRB in [2, 200], so
// transform lengths are rarely powers of two. Lengths whose prime factors
// are all <= 7 are computed with a recursive mixed-radix Cooley-Tukey
// decomposition; any other length falls back to Bluestein's chirp-z
// algorithm built on a power-of-two transform.
//
// A Plan precomputes twiddle factors and is safe for concurrent use by
// multiple goroutines as long as each call supplies its own destination
// slice. Per-call scratch comes from one of two sources: the ...In methods
// (ForwardIn, InverseIn) draw it from a caller-supplied per-worker
// workspace.Arena — the receiver hot path, zero-allocation in steady state
// — while the plain Forward/Inverse draw from per-plan sync.Pools, the
// fallback for callers without an arena.
//
// Scratch-pool safety audit (ISSUE 1 satellite): every sync.Pool here is a
// field of the Plan (or its bluestein) it serves, so pooled buffers are
// keyed by plan identity and two plans never exchange buffers, even for
// the same length (Get memoises one Plan per length; a Bluestein plan's
// power-of-two inner Plan is private to it). Within one plan the mixed-
// radix recursion always slices the pooled plan-length buffer down to the
// sublength it needs, so no stale length can leak across interleaved
// transforms of different sizes on one goroutine. TestInterleavedLengths
// pins this.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"ltephy/internal/phy/workspace"
)

// maxRadix is the largest prime factor handled by the mixed-radix path.
// Lengths with a larger prime factor use Bluestein's algorithm.
const maxRadix = 7

// Plan holds the precomputed state needed to transform vectors of a fixed
// length N. Create one with New and reuse it; construction is O(N) and
// transforms are O(N log N).
type Plan struct {
	n       int
	tw      []complex128 // tw[k] = exp(-2*pi*i*k/n), k in [0, n)
	smooth  bool         // true when n factors into primes <= maxRadix
	blu     *bluestein   // non-nil when !smooth
	scratch sync.Pool    // *[]complex128 of length n (mixed-radix combine buffer)
}

// New returns a transform plan for vectors of length n.
// It panics if n <= 0; a zero-length transform has no meaning here and
// indicates a bug in the caller's size computation.
func New(n int) *Plan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid transform length %d", n))
	}
	p := &Plan{n: n, smooth: isSmooth(n)}
	p.tw = twiddles(n)
	if !p.smooth {
		p.blu = newBluestein(n)
	}
	p.scratch.New = func() any {
		s := make([]complex128, n)
		return &s
	}
	return p
}

// Len returns the transform length the plan was built for.
func (p *Plan) Len() int { return p.n }

// Forward computes the forward DFT of src into dst:
//
//	dst[k] = sum_j src[j] * exp(-2*pi*i*j*k/N)
//
// dst and src must both have length N. dst and src may be the same slice.
// Scratch comes from the plan's pool; hot paths with a per-worker arena
// should call ForwardIn instead.
func (p *Plan) Forward(dst, src []complex128) { p.ForwardIn(nil, dst, src) }

// ForwardIn is Forward with per-call scratch drawn from ws (zero heap
// allocation in steady state). A nil ws falls back to the plan's pool.
func (p *Plan) ForwardIn(ws *workspace.Arena, dst, src []complex128) {
	p.checkLen(dst, src)
	if !p.smooth {
		p.blu.transform(ws, dst, src)
		return
	}
	if p.n == 1 {
		dst[0] = src[0]
		return
	}
	// The recursion reads src with strides, so when dst aliases src the
	// input must be copied first.
	if &dst[0] == &src[0] {
		buf, m, tmp := p.getScratchIn(ws, p.n)
		copy(buf, src)
		p.recurse(ws, dst, buf, p.n, 1)
		p.putScratchIn(ws, m, tmp)
		return
	}
	p.recurse(ws, dst, src, p.n, 1)
}

// Inverse computes the unnormalised-inverse DFT scaled by 1/N, i.e. the
// exact inverse of Forward. dst and src may be the same slice.
func (p *Plan) Inverse(dst, src []complex128) { p.InverseIn(nil, dst, src) }

// InverseIn is Inverse with per-call scratch drawn from ws. A nil ws falls
// back to the plan's pool.
func (p *Plan) InverseIn(ws *workspace.Arena, dst, src []complex128) {
	p.checkLen(dst, src)
	// IDFT(x) = conj(DFT(conj(x)))/N.
	buf, m, tmp := p.getScratchIn(ws, p.n)
	for i, v := range src {
		buf[i] = cmplxConj(v)
	}
	p.ForwardIn(ws, dst, buf)
	p.putScratchIn(ws, m, tmp)
	scale := 1 / float64(p.n)
	for i, v := range dst {
		dst[i] = complex(real(v)*scale, -imag(v)*scale)
	}
}

// Ops estimates the number of scalar floating-point operations a single
// Forward transform performs. The cycle-cost model (internal/cost) uses this
// so that simulated task costs track the true algorithmic complexity,
// including the extra work Bluestein lengths require.
func (p *Plan) Ops() float64 {
	if p.n == 1 {
		return 1
	}
	if p.smooth {
		// Each combine level over factor r performs n*r complex
		// multiply-adds; a complex multiply-add is ~8 scalar flops.
		ops := 0.0
		for _, r := range factorize(p.n) {
			ops += float64(p.n) * float64(r) * 8
		}
		return ops
	}
	// Bluestein: chirp multiply, two forward FFTs + one inverse of size m,
	// pointwise multiply, final chirp multiply.
	m := float64(p.blu.m)
	perFFT := m * math.Log2(m) * 8
	return 3*perFFT + 6*8*float64(p.n) + 6*m
}

func (p *Plan) checkLen(dst, src []complex128) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("fft: plan length %d, got dst %d src %d", p.n, len(dst), len(src)))
	}
}

// getScratchIn returns an n-element scratch buffer from the arena when one
// is supplied, else from the plan's pool (n <= plan length always holds:
// the recursion only shrinks). Exactly one of the returned mark/pointer is
// meaningful; pass both to putScratchIn.
func (p *Plan) getScratchIn(ws *workspace.Arena, n int) ([]complex128, workspace.Mark, *[]complex128) {
	if ws != nil {
		m := ws.Mark()
		return ws.Complex(n), m, nil
	}
	tmp := p.scratch.Get().(*[]complex128)
	return (*tmp)[:n], workspace.Mark{}, tmp
}

func (p *Plan) putScratchIn(ws *workspace.Arena, m workspace.Mark, tmp *[]complex128) {
	if ws != nil {
		ws.Release(m)
		return
	}
	p.scratch.Put(tmp)
}

// recurse computes the DFT of the n elements src[0], src[stride],
// src[2*stride], ... into dst[0:n]. It is the textbook mixed-radix
// Cooley-Tukey decomposition: split on the smallest prime factor r, solve
// the r interleaved subproblems of size m = n/r, then combine with
// twiddle-weighted butterflies:
//
//	dst[q*m+k] = sum_{j<r} Y_j[k] * W_N^{j*(q*m+k)*stride}
//
// where W_N = exp(-2*pi*i/N) and stride*n always equals the plan length N,
// so the root twiddle table serves every level.
func (p *Plan) recurse(ws *workspace.Arena, dst, src []complex128, n, stride int) {
	if n == 1 {
		dst[0] = src[0]
		return
	}
	r := smallestFactor(n)
	m := n / r
	for j := 0; j < r; j++ {
		p.recurse(ws, dst[j*m:(j+1)*m], src[j*stride:], m, stride*r)
	}
	if r == 2 {
		// Specialised radix-2 butterfly: no inner sum loop, no scratch.
		for k := 0; k < m; k++ {
			a := dst[k]
			b := dst[m+k] * p.tw[(k*stride)%p.n]
			dst[k] = a + b
			dst[m+k] = a - b
		}
		return
	}
	buf, mk, tmp := p.getScratchIn(ws, n)
	for q := 0; q < r; q++ {
		base := q * m
		for k := 0; k < m; k++ {
			t := base + k
			var sum complex128
			for j := 0; j < r; j++ {
				sum += dst[j*m+k] * p.tw[(j*t*stride)%p.n]
			}
			buf[t] = sum
		}
	}
	copy(dst[:n], buf)
	p.putScratchIn(ws, mk, tmp)
}

// twiddles returns exp(-2*pi*i*k/n) for k in [0, n).
func twiddles(n int) []complex128 {
	tw := make([]complex128, n)
	for k := range tw {
		theta := -2 * math.Pi * float64(k) / float64(n)
		tw[k] = complex(math.Cos(theta), math.Sin(theta))
	}
	return tw
}

func cmplxConj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// isSmooth reports whether every prime factor of n is <= maxRadix.
func isSmooth(n int) bool {
	for _, f := range []int{2, 3, 5, 7} {
		for n%f == 0 {
			n /= f
		}
	}
	return n == 1
}

// smallestFactor returns the smallest prime factor of n (n >= 2).
func smallestFactor(n int) int {
	for _, f := range []int{2, 3, 5, 7} {
		if n%f == 0 {
			return f
		}
	}
	// Only reached for non-smooth n, which the Bluestein path handles;
	// kept total so factorize works on any n for Ops estimates.
	for f := 11; f*f <= n; f += 2 {
		if n%f == 0 {
			return f
		}
	}
	return n
}

// factorize returns the prime factorisation of n in nondecreasing order.
func factorize(n int) []int {
	var fs []int
	for n > 1 {
		f := smallestFactor(n)
		fs = append(fs, f)
		n /= f
	}
	return fs
}

// bluestein implements the chirp-z transform: an arbitrary-length DFT
// expressed as a cyclic convolution, evaluated with power-of-two FFTs.
type bluestein struct {
	n     int
	m     int          // power-of-two convolution length, m >= 2n-1
	inner *Plan        // power-of-two plan of length m
	a     []complex128 // chirp: exp(-pi*i*k^2/n)
	bfft  []complex128 // FFT of the chirp-conjugate kernel, length m
	pool  sync.Pool    // *[]complex128 of length m
}

func newBluestein(n int) *bluestein {
	m := 1 << bits.Len(uint(2*n-2))
	if m < 2*n-1 {
		m <<= 1
	}
	b := &bluestein{n: n, m: m, inner: New(m)}
	b.a = make([]complex128, n)
	kernel := make([]complex128, m)
	for k := 0; k < n; k++ {
		// k*k mod 2n keeps the argument small so cos/sin stay accurate
		// for large k.
		q := (k * k) % (2 * n)
		theta := -math.Pi * float64(q) / float64(n)
		b.a[k] = complex(math.Cos(theta), math.Sin(theta))
		conj := complex(math.Cos(theta), -math.Sin(theta))
		kernel[k] = conj
		if k > 0 {
			kernel[m-k] = conj
		}
	}
	b.bfft = make([]complex128, m)
	b.inner.Forward(b.bfft, kernel)
	b.pool.New = func() any {
		s := make([]complex128, m)
		return &s
	}
	return b
}

func (b *bluestein) transform(ws *workspace.Arena, dst, src []complex128) {
	var x, y []complex128
	var mk workspace.Mark
	var xp, yp *[]complex128
	if ws != nil {
		mk = ws.Mark()
		x = ws.Complex(b.m)
		y = ws.Complex(b.m)
	} else {
		xp = b.pool.Get().(*[]complex128)
		yp = b.pool.Get().(*[]complex128)
		x, y = *xp, *yp
		for i := range x {
			x[i] = 0
		}
	}
	for k := 0; k < b.n; k++ {
		x[k] = src[k] * b.a[k]
	}
	b.inner.ForwardIn(ws, y, x)
	for i := range y {
		y[i] *= b.bfft[i]
	}
	b.inner.InverseIn(ws, x, y)
	for k := 0; k < b.n; k++ {
		dst[k] = x[k] * b.a[k]
	}
	if ws != nil {
		ws.Release(mk)
	} else {
		b.pool.Put(xp)
		b.pool.Put(yp)
	}
}

// planCache memoises plans by length; Get is the concurrency-safe accessor
// used across the receiver so repeated subframe sizes share twiddle
// tables. RWMutex-guarded (not a sync.Map) so lookups don't box the key —
// Get sits on the per-task hot path and must not allocate.
var (
	planMu    sync.RWMutex
	planCache = map[int]*Plan{}
)

// Get returns a shared plan for length n, creating it on first use.
func Get(n int) *Plan {
	planMu.RLock()
	p := planCache[n]
	planMu.RUnlock()
	if p != nil {
		return p
	}
	p = New(n)
	planMu.Lock()
	if cached, ok := planCache[n]; ok {
		p = cached
	} else {
		planCache[n] = p
	}
	planMu.Unlock()
	return p
}
