package fft

import (
	"math/rand"
	"testing"

	"ltephy/internal/phy/workspace"
)

// batchSizes covers the structural cases of the batched API: trivial,
// single-stage, even and odd stage counts, and Bluestein.
var batchSizes = []int{1, 4, 12, 48, 96, 144, 97, 300}

// TestForwardBatchMatchesLooped pins the batched API's contract: a batch
// of howMany transforms is bit-identical to howMany individual ForwardIn
// calls over the same vectors, for both scratch sources.
func TestForwardBatchMatchesLooped(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ws := workspace.New()
	for _, n := range batchSizes {
		p := Get(n)
		for _, howMany := range []int{1, 2, 5} {
			stride := n + 3 // deliberately padded layout
			src := randVec(rng, (howMany-1)*stride+n)
			want := make([]complex128, len(src))
			for i := 0; i < howMany; i++ {
				p.ForwardIn(ws, want[i*stride:i*stride+n], src[i*stride:i*stride+n])
			}
			for _, useArena := range []bool{true, false} {
				got := make([]complex128, len(src))
				a := ws
				if !useArena {
					a = nil
				}
				p.ForwardBatch(a, got, src, howMany, stride)
				for i := 0; i < howMany; i++ {
					for k := 0; k < n; k++ {
						if got[i*stride+k] != want[i*stride+k] {
							t.Fatalf("n=%d howMany=%d arena=%v: batch diverges at vec %d bin %d",
								n, howMany, useArena, i, k)
						}
					}
				}
			}
		}
	}
}

// TestInverseBatchMatchesLooped does the same for the inverse direction.
func TestInverseBatchMatchesLooped(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ws := workspace.New()
	for _, n := range batchSizes {
		p := Get(n)
		const howMany = 3
		src := randVec(rng, howMany*n)
		want := make([]complex128, len(src))
		for i := 0; i < howMany; i++ {
			p.InverseIn(ws, want[i*n:(i+1)*n], src[i*n:(i+1)*n])
		}
		got := make([]complex128, len(src))
		p.InverseBatch(ws, got, src, howMany, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: inverse batch diverges at %d", n, i)
			}
		}
	}
}

// TestBatchStrided exercises distinct source and destination strides — the
// scatter/gather layout the channel estimator uses to write both slots'
// estimates through one call.
func TestBatchStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ws := workspace.New()
	for _, n := range []int{12, 72, 97} {
		p := Get(n)
		const howMany = 4
		srcStride := n
		dstStride := 3 * n // scatter into a wider layout
		src := randVec(rng, howMany*srcStride)
		got := make([]complex128, (howMany-1)*dstStride+n)
		p.ForwardBatchStrided(ws, got, src, howMany, dstStride, srcStride)
		for i := 0; i < howMany; i++ {
			want := make([]complex128, n)
			p.ForwardIn(ws, want, src[i*srcStride:i*srcStride+n])
			for k := 0; k < n; k++ {
				if got[i*dstStride+k] != want[k] {
					t.Fatalf("n=%d: strided batch diverges at vec %d bin %d", n, i, k)
				}
			}
		}
	}
}

// TestBatchInPlace covers the aliased batch (dst == src, same stride),
// which exercises the odd-stage-count copy-aside path per vector.
func TestBatchInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ws := workspace.New()
	for _, n := range batchSizes {
		p := Get(n)
		const howMany = 3
		src := randVec(rng, howMany*n)
		want := make([]complex128, len(src))
		for i := 0; i < howMany; i++ {
			p.ForwardIn(ws, want[i*n:(i+1)*n], src[i*n:(i+1)*n])
		}
		inPlace := append([]complex128(nil), src...)
		p.ForwardBatch(ws, inPlace, inPlace, howMany, n)
		for i := range want {
			if inPlace[i] != want[i] {
				t.Fatalf("n=%d: in-place batch diverges at %d", n, i)
			}
		}
	}
}

// TestBatchZeroAlloc asserts the arena-backed batch path stays heap-free
// in steady state, including the Bluestein fallback.
func TestBatchZeroAlloc(t *testing.T) {
	ws := workspace.New()
	for _, n := range []int{144, 97} {
		p := Get(n)
		const howMany = 6
		src := randVec(rand.New(rand.NewSource(25)), howMany*n)
		dst := make([]complex128, howMany*n)
		run := func() {
			m := ws.Mark()
			p.ForwardBatch(ws, dst, src, howMany, n)
			p.InverseBatch(ws, dst, dst, howMany, n)
			ws.Release(m)
		}
		run() // warm the arena
		if allocs := testing.AllocsPerRun(30, run); allocs != 0 {
			t.Errorf("n=%d: batch transform allocates %.1f times per run", n, allocs)
		}
	}
}

// TestBatchPanicsOnBadLayout checks the layout validation: short buffers
// and sub-length strides must panic rather than transform garbage.
func TestBatchPanicsOnBadLayout(t *testing.T) {
	p := New(8)
	for name, f := range map[string]func(){
		"short dst":    func() { p.ForwardBatch(nil, make([]complex128, 15), make([]complex128, 16), 2, 8) },
		"short src":    func() { p.ForwardBatch(nil, make([]complex128, 16), make([]complex128, 12), 2, 8) },
		"small stride": func() { p.ForwardBatch(nil, make([]complex128, 16), make([]complex128, 16), 2, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Batched-vs-looped microbenchmarks (make bench-fft): the batch should win
// through shared scratch acquisition and table locality; the gap is the
// justification for the BatchStage conversions in internal/uplink.

func benchBatchVsLooped(b *testing.B, n, howMany int) {
	p := Get(n)
	ws := workspace.New()
	src := randVec(rand.New(rand.NewSource(26)), howMany*n)
	dst := make([]complex128, howMany*n)
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := ws.Mark()
			p.ForwardBatch(ws, dst, src, howMany, n)
			ws.Release(m)
		}
	})
	b.Run("looped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := ws.Mark()
			for v := 0; v < howMany; v++ {
				p.ForwardIn(ws, dst[v*n:(v+1)*n], src[v*n:(v+1)*n])
			}
			ws.Release(m)
		}
	})
}

func BenchmarkForwardBatch(b *testing.B) {
	for _, n := range []int{24, 144, 600, 1200} {
		b.Run(sizeName(n), func(b *testing.B) { benchBatchVsLooped(b, n, 8) })
	}
}

func BenchmarkForwardBatchBluestein(b *testing.B) {
	for _, n := range []int{97, 199} {
		b.Run(sizeName(n), func(b *testing.B) { benchBatchVsLooped(b, n, 8) })
	}
}
