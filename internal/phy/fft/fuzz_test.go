package fft

import (
	"math/cmplx"
	"testing"
)

// FuzzRoundTrip: Inverse(Forward(x)) == x for arbitrary lengths and data.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint16(8), int64(1))
	f.Add(uint16(97), int64(-5))
	f.Add(uint16(2400), int64(123456))
	f.Fuzz(func(t *testing.T, nRaw uint16, seed int64) {
		n := int(nRaw)%3000 + 1
		p := Get(n)
		src := make([]complex128, n)
		s := uint64(seed)
		for i := range src {
			// Cheap deterministic filler; values bounded to avoid overflow
			// noise in the tolerance.
			s = s*6364136223846793005 + 1442695040888963407
			re := float64(int32(s>>33)) / (1 << 28)
			im := float64(int32(s)) / (1 << 28)
			src[i] = complex(re, im)
		}
		freq := make([]complex128, n)
		back := make([]complex128, n)
		p.Forward(freq, src)
		p.Inverse(back, freq)
		var scale float64
		for _, v := range src {
			if m := cmplx.Abs(v); m > scale {
				scale = m
			}
		}
		tol := 1e-9 * float64(n) * (scale + 1)
		for i := range src {
			if cmplx.Abs(back[i]-src[i]) > tol {
				t.Fatalf("n=%d: round trip error at %d: %v vs %v", n, i, back[i], src[i])
			}
		}
	})
}
