// Package turbo implements the 3GPP LTE turbo code (TS 36.212 §5.1.3.2):
// a rate-1/3 parallel-concatenated convolutional code with two 8-state
// recursive systematic constituent encoders and a quadratic permutation
// polynomial (QPP) internal interleaver, decoded with iterative
// max-log-MAP (BCJR).
//
// The paper's benchmark passes data through turbo decoding unchanged
// because base stations run it on dedicated hardware (Section IV-C); this
// package is the "modules can easily be replaced" extension — the uplink
// pipeline can run with either the paper-faithful pass-through or this full
// codec (see internal/uplink's ReceiverConfig).
package turbo

import (
	"fmt"
	"sync"
)

// MinBlock and MaxBlock bound the info block sizes the LTE interleaver is
// defined for (TS 36.212 Table 5.1.3-3).
const (
	MinBlock = 40
	MaxBlock = 6144
)

// ValidBlockSizes returns the ascending list of interleaver sizes K from
// TS 36.212 Table 5.1.3-3: 40..512 step 8, 528..1024 step 16, 1056..2048
// step 32, 2112..6144 step 64 (188 sizes).
func ValidBlockSizes() []int {
	var ks []int
	for k := 40; k <= 512; k += 8 {
		ks = append(ks, k)
	}
	for k := 528; k <= 1024; k += 16 {
		ks = append(ks, k)
	}
	for k := 1056; k <= 2048; k += 32 {
		ks = append(ks, k)
	}
	for k := 2112; k <= 6144; k += 64 {
		ks = append(ks, k)
	}
	return ks
}

// SmallestValidBlock returns the smallest valid K >= n, or an error when n
// exceeds MaxBlock.
func SmallestValidBlock(n int) (int, error) {
	if n > MaxBlock {
		return 0, fmt.Errorf("turbo: block of %d bits exceeds maximum %d", n, MaxBlock)
	}
	for _, k := range ValidBlockSizes() {
		if k >= n {
			return k, nil
		}
	}
	return 0, fmt.Errorf("turbo: no valid block size for %d bits", n)
}

// knownQPP holds the TS 36.212 Table 5.1.3-3 (f1, f2) parameters for a
// verified subset of block sizes. Sizes not listed here get a
// deterministically derived pair that is checked for bijectivity at
// construction; the permutation is then a valid QPP interleaver even if
// not bit-identical to the 3GPP table (documented in DESIGN.md — the
// paper's benchmark does not depend on exact 3GPP interleaver constants).
var knownQPP = map[int][2]int{
	40:   {3, 10},
	64:   {7, 16},
	128:  {15, 32},
	256:  {15, 32},
	512:  {31, 64},
	1024: {31, 64},
	2048: {31, 64},
	4096: {31, 64},
	6144: {263, 480},
}

// qppParams returns a (f1, f2) pair for block size k whose quadratic
// permutation polynomial pi(i) = (f1*i + f2*i^2) mod k is bijective.
func qppParams(k int) (int, int) {
	if p, ok := knownQPP[k]; ok {
		if isBijective(k, p[0], p[1]) {
			return p[0], p[1]
		}
		// A table typo must not silently corrupt data; fall through to the
		// derived search.
	}
	// Derived search: f1 must be coprime to k; f2 candidates are even
	// multiples sharing k's odd prime factors. Brute-force verification
	// keeps this simple and safe (k <= 6144).
	for f1 := 3; f1 < k; f1 += 2 {
		if gcd(f1, k) != 1 {
			continue
		}
		for _, f2 := range []int{k / 4, k / 8, k / 2, 2 * k / 3, 10, 16, 32, 64} {
			if f2 <= 0 {
				continue
			}
			if isBijective(k, f1, f2) {
				return f1, f2
			}
		}
		break // one good f1 is enough to try the f2 candidates; widen f2 next
	}
	// Exhaustive fallback (never reached for the 36.212 size set, but keeps
	// the function total for any k).
	for f1 := 1; f1 < k; f1 += 2 {
		if gcd(f1, k) != 1 {
			continue
		}
		for f2 := 2; f2 < k; f2 += 2 {
			if isBijective(k, f1, f2) {
				return f1, f2
			}
		}
	}
	panic(fmt.Sprintf("turbo: no QPP parameters for K=%d", k))
}

func isBijective(k, f1, f2 int) bool {
	seen := make([]bool, k)
	for i := 0; i < k; i++ {
		p := qppIndex(i, f1, f2, k)
		if seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// qppIndex evaluates (f1*i + f2*i^2) mod k without overflow for k <= 6144.
func qppIndex(i, f1, f2, k int) int {
	return (f1*i%k + f2%k*(i*i%k)) % k
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// interleaver is a precomputed QPP permutation for one block size.
type interleaver struct {
	k    int
	perm []int32 // perm[i] = pi(i): position in the original block read at step i
	inv  []int32
}

// ilvCache is guarded by an RWMutex rather than a sync.Map: Load on a
// sync.Map boxes the int key, allocating on every cache hit, which the
// allocation-free decode hot path cannot afford.
var (
	ilvMu    sync.RWMutex
	ilvCache = map[int]*interleaver{}
)

func getInterleaver(k int) *interleaver {
	ilvMu.RLock()
	il := ilvCache[k]
	ilvMu.RUnlock()
	if il != nil {
		return il
	}
	f1, f2 := qppParams(k)
	il = &interleaver{k: k, perm: make([]int32, k), inv: make([]int32, k)}
	for i := 0; i < k; i++ {
		p := qppIndex(i, f1, f2, k)
		il.perm[i] = int32(p)
		il.inv[p] = int32(i)
	}
	ilvMu.Lock()
	if cached, ok := ilvCache[k]; ok {
		il = cached
	} else {
		ilvCache[k] = il
	}
	ilvMu.Unlock()
	return il
}

// permute writes src read through the permutation into dst:
// dst[i] = src[perm[i]].
func permute[T any](dst, src []T, perm []int32) {
	for i, p := range perm {
		dst[i] = src[p]
	}
}
