package turbo

import (
	"fmt"

	"ltephy/internal/phy/crc"
	"ltephy/internal/phy/workspace"
)

// Segmentation implements code block segmentation (TS 36.212 §5.1.2): a
// transport block larger than MaxBlock is split into C code blocks, each
// protected by CRC24B, padded with filler bits to a valid interleaver size.
// Deviation from the spec, documented in DESIGN.md: all blocks use one
// uniform size K (the spec mixes two adjacent sizes K+ and K-); filler
// bits are zero bits at the head of the first block in both designs.
type Segmentation struct {
	B      int // transport block bits in
	C      int // number of code blocks
	K      int // uniform interleaver size
	Fill   int // filler bits at the head of block 0
	PerCRC bool
	codec  *Codec
}

// blockCRC is the per-code-block checksum used when C > 1.
const blockCRCBits = 24

// crc24bCheck is the early-termination callback as a package-level func,
// so the per-block decode loop doesn't materialise a method value.
var crc24bCheck = func(bits []uint8) bool { return crc.CRC24B.CheckBits(bits) }

// NewSegmentation plans segmentation for a transport block of b bits
// (which should already include the transport-block CRC24A).
func NewSegmentation(b int) (*Segmentation, error) {
	if b < 1 {
		return nil, fmt.Errorf("turbo: empty transport block")
	}
	s := &Segmentation{B: b}
	if b <= MaxBlock {
		s.C = 1
		k, err := SmallestValidBlock(max(b, MinBlock))
		if err != nil {
			return nil, err
		}
		s.K = k
		s.Fill = k - b
	} else {
		s.PerCRC = true
		s.C = (b + MaxBlock - blockCRCBits - 1) / (MaxBlock - blockCRCBits)
		bPrime := b + s.C*blockCRCBits
		per := (bPrime + s.C - 1) / s.C
		k, err := SmallestValidBlock(per)
		if err != nil {
			return nil, err
		}
		s.K = k
		s.Fill = s.C*k - bPrime
	}
	var err error
	s.codec, err = NewCodec(s.K)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// CodedLen returns the total encoded length across all code blocks.
func (s *Segmentation) CodedLen() int { return s.C * CodedLen(s.K) }

// Encode turbo-encodes a transport block of exactly B bits and returns the
// concatenated codewords.
func (s *Segmentation) Encode(tb []uint8) []uint8 {
	if len(tb) != s.B {
		panic(fmt.Sprintf("turbo: transport block has %d bits, segmentation planned for %d", len(tb), s.B))
	}
	out := make([]uint8, 0, s.CodedLen())
	payloadPer := s.K - s.Fill // only block 0 carries filler; others carry K (minus CRC) bits
	_ = payloadPer
	pos := 0
	for c := 0; c < s.C; c++ {
		block := make([]uint8, 0, s.K)
		dataBits := s.K
		if s.PerCRC {
			dataBits -= blockCRCBits
		}
		if c == 0 {
			block = append(block, make([]uint8, s.Fill)...)
			dataBits -= s.Fill
		}
		block = append(block, tb[pos:pos+dataBits]...)
		pos += dataBits
		if s.PerCRC {
			block = crc.CRC24B.AppendBits(block)
		}
		out = append(out, s.codec.Encode(block)...)
	}
	return out
}

// blockE splits a total rate-matched length e across the C code blocks:
// the first e mod C blocks carry one extra bit. Both ends derive the same
// split.
func (s *Segmentation) blockE(e, c int) int {
	per := e / s.C
	if c < e%s.C {
		per++
	}
	return per
}

// EncodeRM turbo-encodes and rate-matches a transport block to exactly e
// output bits (TS 36.212 §5.1.4.1), using redundancy version rv.
func (s *Segmentation) EncodeRM(tb []uint8, e, rv int) ([]uint8, error) {
	if e < s.C {
		return nil, fmt.Errorf("turbo: cannot rate-match %d blocks into %d bits", s.C, e)
	}
	rm, err := NewRateMatcher(s.K)
	if err != nil {
		return nil, err
	}
	mother := s.Encode(tb)
	per := CodedLen(s.K)
	out := make([]uint8, 0, e)
	for c := 0; c < s.C; c++ {
		out = append(out, rm.Match(mother[c*per:(c+1)*per], s.blockE(e, c), rv)...)
	}
	return out, nil
}

// MotherLen is the length of the accumulated soft mother-codeword buffer
// across all code blocks.
func (s *Segmentation) MotherLen() int { return s.C * CodedLen(s.K) }

// AccumulateRM de-rate-matches one transmission's soft values into the
// mother buffer, adding to whatever previous transmissions contributed —
// HARQ incremental-redundancy combining.
func (s *Segmentation) AccumulateRM(mother, llr []float64, rv int) error {
	if len(mother) != s.MotherLen() {
		//ltephy:alloc-ok — validation failure aborts the transmission; never taken in steady state
		return fmt.Errorf("turbo: mother buffer has %d entries, want %d", len(mother), s.MotherLen())
	}
	rm, err := NewRateMatcher(s.K)
	if err != nil {
		return err
	}
	per := CodedLen(s.K)
	pos := 0
	for c := 0; c < s.C; c++ {
		eb := s.blockE(len(llr), c)
		rm.Accumulate(mother[c*per:(c+1)*per], llr[pos:pos+eb], rv)
		pos += eb
	}
	return nil
}

// DecodeMother decodes an accumulated mother buffer.
func (s *Segmentation) DecodeMother(mother []float64, iterations int) (tb []uint8, ok bool) {
	return s.Decode(mother, iterations)
}

// DecodeRM de-rate-matches e soft values (redundancy version rv) and
// decodes. ok reports per-block CRC24B results as in Decode.
func (s *Segmentation) DecodeRM(llr []float64, rv, iterations int) (tb []uint8, ok bool, err error) {
	return s.DecodeRMInto(nil, nil, llr, rv, iterations)
}

// DecodeRMInto is DecodeRM with the mother soft buffer and decoder state
// drawn from ws, appending the transport block to dst (which may be nil; a
// reused dst[:0] keeps the hot path allocation-free). The mother buffer
// must start zeroed because AccumulateRM adds into it — arena grabs are,
// like make, always zeroed.
func (s *Segmentation) DecodeRMInto(dst []uint8, ws *workspace.Arena, llr []float64, rv, iterations int) (tb []uint8, ok bool, err error) {
	m := ws.Mark()
	mother := ws.Float(s.MotherLen())
	if err := s.AccumulateRM(mother, llr, rv); err != nil {
		ws.Release(m)
		return nil, false, err
	}
	tb, ok = s.DecodeInto(dst, ws, mother, iterations)
	ws.Release(m)
	return tb, ok, nil
}

// Kernel selects which decoder implementation a segmented decode uses.
type Kernel int

const (
	// KernelInt8 is the quantized sliding-window max-log-MAP path — the
	// default, line-rate kernel.
	KernelInt8 Kernel = iota
	// KernelFloat64 is the float64 max-log-MAP path, kept as the
	// accuracy oracle.
	KernelFloat64
)

// SegDecodeOpts configures a segmented transport-block decode.
type SegDecodeOpts struct {
	// Iterations caps full decode iterations per code block.
	Iterations int
	// Kernel selects the int8 line-rate path (default) or the float64
	// oracle.
	Kernel Kernel
	// Par fans one code block's trellis windows out across workers
	// (int8 kernel only; nil = serial).
	Par Parallel
	// TBCheck, when non-nil and C == 1, gates early termination on the
	// transport-block CRC: it is called per half-iteration with the
	// decoded transport block (filler stripped). Segments with C > 1
	// use the per-block CRC24B gate instead, as before. Must be a
	// non-capturing func on allocation-free paths.
	TBCheck func([]uint8) bool
}

// DecodeRMOptsInto is DecodeRMInto with kernel selection, window fan-out
// and CRC gating; it additionally returns the realized half-iteration
// count summed across code blocks, which feeds the iteration-aware decode
// cost model.
func (s *Segmentation) DecodeRMOptsInto(dst []uint8, ws *workspace.Arena, llr []float64, rv int, opts SegDecodeOpts) (tb []uint8, ok bool, halfIters int, err error) {
	m := ws.Mark()
	mother := ws.Float(s.MotherLen())
	if err := s.AccumulateRM(mother, llr, rv); err != nil {
		ws.Release(m)
		return nil, false, 0, err
	}
	tb, ok, halfIters = s.DecodeOptsInto(dst, ws, mother, opts)
	ws.Release(m)
	return tb, ok, halfIters, nil
}

// DecodeOptsInto is DecodeInto with kernel selection, window fan-out and
// CRC-gated early termination; it additionally returns the realized
// half-iteration count summed across code blocks. The float64 kernel
// keeps DecodeInto's exact semantics (stability-only stop when C == 1)
// and reports full iterations as two half-iterations each.
func (s *Segmentation) DecodeOptsInto(dst []uint8, ws *workspace.Arena, llr []float64, opts SegDecodeOpts) (tb []uint8, ok bool, halfIters int) {
	if len(llr) != s.CodedLen() {
		panic(fmt.Sprintf("turbo: got %d LLRs, want %d", len(llr), s.CodedLen()))
	}
	ok = true
	if cap(dst) == 0 {
		dst = make([]uint8, 0, s.B) //ltephy:alloc-ok — payload outlives the arena by design; hot callers pass a preallocated dst
	}
	tb = dst
	per := CodedLen(s.K)
	for c := 0; c < s.C; c++ {
		m := ws.Mark()
		var block []uint8
		if opts.Kernel == KernelFloat64 {
			var check func([]uint8) bool
			if s.PerCRC {
				check = crc24bCheck
			}
			var ran int
			block, ran = s.codec.DecodeEarlyStopIn(ws, llr[c*per:(c+1)*per], opts.Iterations, check)
			halfIters += 2 * ran
		} else {
			q := DecodeOpts{Iterations: opts.Iterations, Par: opts.Par}
			if s.PerCRC {
				q.Check = crc24bCheck
			} else if opts.TBCheck != nil {
				// C == 1: the transport block is the code block minus
				// filler, so the TB CRC gates decoding directly.
				q.Check = opts.TBCheck
				q.CheckOffset = s.Fill
			}
			var ran int
			block, ran = s.codec.DecodeQuantIn(ws, llr[c*per:(c+1)*per], q)
			halfIters += ran
		}
		if s.PerCRC {
			if !crc.CRC24B.CheckBits(block) {
				ok = false
			}
			block = block[:len(block)-blockCRCBits]
		}
		if c == 0 {
			block = block[s.Fill:]
		}
		tb = append(tb, block...)
		ws.Release(m)
	}
	return tb, ok, halfIters
}

// Decode decodes concatenated codeword LLRs back into the transport block.
// ok reports whether every per-block CRC24B verified (always true when
// C == 1, where no per-block CRC exists).
func (s *Segmentation) Decode(llr []float64, iterations int) (tb []uint8, ok bool) {
	return s.DecodeInto(nil, nil, llr, iterations)
}

// DecodeInto is Decode with per-block decoder state drawn from ws (heap
// when nil), appending the decoded transport block to dst. The returned
// slice is dst's backing memory (grown as needed), never arena memory:
// decoded bits outlive the per-call scratch. Each code block's state is
// released before the next begins, so peak arena use is one block's
// trellis regardless of C.
func (s *Segmentation) DecodeInto(dst []uint8, ws *workspace.Arena, llr []float64, iterations int) (tb []uint8, ok bool) {
	if len(llr) != s.CodedLen() {
		panic(fmt.Sprintf("turbo: got %d LLRs, want %d", len(llr), s.CodedLen()))
	}
	ok = true
	if cap(dst) == 0 {
		dst = make([]uint8, 0, s.B) //ltephy:alloc-ok — payload outlives the arena by design; hot callers pass a preallocated dst
	}
	tb = dst
	per := CodedLen(s.K)
	for c := 0; c < s.C; c++ {
		var check func([]uint8) bool
		if s.PerCRC {
			// CRC-aided early termination: stop iterating the moment the
			// block verifies.
			check = crc24bCheck
		}
		m := ws.Mark()
		block, _ := s.codec.DecodeEarlyStopIn(ws, llr[c*per:(c+1)*per], iterations, check)
		if s.PerCRC {
			if !crc.CRC24B.CheckBits(block) {
				ok = false
			}
			block = block[:len(block)-blockCRCBits]
		}
		if c == 0 {
			block = block[s.Fill:]
		}
		tb = append(tb, block...)
		ws.Release(m)
	}
	return tb, ok
}
