package turbo

import (
	"fmt"

	"ltephy/internal/phy/workspace"
)

// Quantized sliding-window max-log-MAP decoder.
//
// This is the line-rate decode path: channel LLRs are quantized once per
// code block to int8 at the rate-match boundary (saturating, per-block
// full-scale qChanMax), extrinsics/apriori live in int8 with a 3/4
// extrinsic scale recovering most of the max-log loss, and all trellis
// arithmetic runs in int32 registers. The float64 kernel in codec.go
// stays untouched as the accuracy oracle.
//
// Each constituent BCJR pass is split into ceil(k/qWindow) independent
// windows. Window boundary metrics use NII (next-iteration
// initialization): the alpha metric a window computes at its right edge
// seeds the next window's forward pass on the *next* half-iteration of
// the same constituent decoder, and symmetrically for beta; on the first
// half-iteration interior boundaries are uniform (all-zero — max-log is
// invariant to per-column constants). Boundary columns are rescale-
// normalized (max subtracted) when stored, so boundary values stay in
// int16 range and path-metric drift never accumulates across iterations.
// Windows share no mutable state except their private slices of the
// alpha slab, the extrinsic output, the decision buffer, and their own
// boundary entries — so a Parallel hook can fan the windows of one large
// code block out across pool workers with bit-identical results for any
// worker count.
//
// Decoding stops per half-iteration: as soon as the CRC gate (opts.Check)
// passes, or hard decisions repeat across two consecutive half-iterations
// (extrinsic-stability fallback).

// Parallel runs fn(0..n-1), possibly concurrently, returning only when
// all calls have completed. A nil Parallel means serial execution. The
// scheduler (internal/sched) provides one backed by its work-stealing
// pool so one code block's windows spread across workers.
type Parallel func(n int, fn func(i int))

// DecodeOpts configures the quantized decode path.
type DecodeOpts struct {
	// Iterations caps full (two half-iteration) passes. Values of 4-8
	// are typical; <1 is treated as 1.
	Iterations int
	// Check, when non-nil, is the early-termination gate evaluated on
	// the hard decisions after every half-iteration. It is called with
	// decisions[CheckOffset:] — CheckOffset lets a transport-block CRC
	// skip filler bits without a capturing closure on the hot path. The
	// callback must not retain its argument.
	Check       func([]uint8) bool
	CheckOffset int
	// Par, when non-nil, runs the per-window trellis passes of each
	// half-iteration concurrently.
	Par Parallel
}

const (
	// qChanMax is the channel LLR full-scale: the largest-magnitude LLR
	// of a code block maps to ±qChanMax (6 bits incl. sign, the
	// standard hardware choice — Kienle et al.).
	qChanMax = 31
	// qAprMax is the saturating apriori/extrinsic magnitude. Symmetric
	// (no -128) so negation never overflows.
	qAprMax = 127
	// qWindow is the sliding-window length in trellis steps.
	qWindow = 128
	// qParMinWindows is the smallest window count worth fanning out
	// across workers; blocks below it (k < 1024) run serially even when
	// a Parallel hook is installed.
	qParMinWindows = 8
	// negInfQ is "unreachable" in the int32 metric domain: small enough
	// that no reachable path loses to it, large enough that sums of two
	// metrics plus a branch never wrap.
	negInfQ = int32(-1) << 28
)

// DecodeQuant decodes with heap-allocated working state. See
// DecodeQuantIn.
func (c *Codec) DecodeQuant(llr []float64, opts DecodeOpts) ([]uint8, int) {
	return c.DecodeQuantIn(nil, llr, opts)
}

// DecodeQuantIn runs the quantized sliding-window decoder on channel LLRs
// laid out as Encode produces (positive LLR = bit 0), drawing all working
// state from ws (heap when nil). It returns the hard info bits and the
// number of half-iterations executed. The returned bit slice is
// arena-backed: valid only until the caller releases the enclosing arena
// mark, so callers must copy it out first.
//
// caller holds the mark (see segment.DecodeInto) and copies before Release.
//
//ltephy:owns-scratch — returns arena-backed decisions by contract; the
func (c *Codec) DecodeQuantIn(ws *workspace.Arena, llr []float64, opts DecodeOpts) ([]uint8, int) {
	if len(llr) != CodedLen(c.k) {
		panic(fmt.Sprintf("turbo: DecodeQuant got %d LLRs, want %d", len(llr), CodedLen(c.k)))
	}
	iterations := opts.Iterations
	if iterations < 1 {
		iterations = 1
	}
	k := c.k
	d := newQDecoderState(ws, k)
	// Fan-out pays only when a block has enough windows to spread: below
	// the threshold the task push/steal traffic costs more than a worker
	// saves, so small blocks always decode serially (bit-identical either
	// way — the windows are independent regardless of who runs them).
	if d.nw < qParMinWindows {
		opts.Par = nil
	}

	// Per-block saturating quantization at the decode boundary: the
	// block's peak LLR magnitude maps to full scale.
	maxAbs := 0.0
	for _, v := range llr {
		if v > maxAbs {
			maxAbs = v
		} else if -v > maxAbs {
			maxAbs = -v
		}
	}
	scale := 1.0
	if maxAbs > 0 {
		scale = qChanMax / maxAbs
	}
	quantizeLLR(d.qsys, llr[:k], scale)
	quantizeLLR(d.qp1, llr[k:2*k], scale)
	quantizeLLR(d.qp2, llr[2*k:3*k], scale)
	tails := llr[3*k:]
	for t := 0; t < 3; t++ {
		d.t1sys[t] = quantOne(tails[2*t], scale)
		d.t1par[t] = quantOne(tails[2*t+1], scale)
		d.t2sys[t] = quantOne(tails[6+2*t], scale)
		d.t2par[t] = quantOne(tails[6+2*t+1], scale)
	}
	permute(d.qsysIlv, d.qsys, c.il.perm)

	// Fixed trellis boundaries, identical in both double buffers: the
	// encoder starts in state 0, and termination pins beta at position k
	// exactly (computed once — tail steps carry no apriori, so the tail
	// beta never changes across iterations).
	for _, ab := range [][]int32{d.a1p, d.a1c, d.a2p, d.a2c} {
		for s := 1; s < nStates; s++ {
			ab[s] = negInfQ
		}
	}
	bt1 := qTailBeta(d.t1sys, d.t1par)
	bt2 := qTailBeta(d.t2sys, d.t2par)
	end := d.nw * nStates
	copy(d.b1p[end:], bt1[:])
	copy(d.b1c[end:], bt1[:])
	copy(d.b2p[end:], bt2[:])
	copy(d.b2c[end:], bt2[:])

	cur := ws.Bytes(k)
	prev := ws.Bytes(k)
	halfIters := 0
	for it := 0; it < iterations; it++ {
		// Half-iteration 1 (natural order): apriori = deinterleaved
		// extrinsic from decoder 2.
		permute(d.apr1, d.ext2, c.il.inv)
		qHalf(d.nw, k, d.alpha, d.qsys, d.qp1, d.apr1, d.ext1, d.a1p, d.a1c, d.b1p, d.b1c, cur, nil, opts.Par)
		d.a1p, d.a1c = d.a1c, d.a1p
		d.b1p, d.b1c = d.b1c, d.b1p
		halfIters++
		if done, bits := qStop(cur, prev, halfIters, opts); done {
			return bits, halfIters
		}
		cur, prev = prev, cur

		// Half-iteration 2 (interleaved order). Decisions land directly
		// in natural order via the permutation, so the CRC gate runs
		// without a deinterleave pass.
		permute(d.apr2, d.ext1, c.il.perm)
		qHalf(d.nw, k, d.alpha, d.qsysIlv, d.qp2, d.apr2, d.ext2, d.a2p, d.a2c, d.b2p, d.b2c, cur, c.il.perm, opts.Par)
		d.a2p, d.a2c = d.a2c, d.a2p
		d.b2p, d.b2c = d.b2c, d.b2p
		halfIters++
		if done, bits := qStop(cur, prev, halfIters, opts); done {
			return bits, halfIters
		}
		cur, prev = prev, cur
	}
	// The loop always swaps after the last half-iteration, so prev holds
	// the latest decisions.
	return prev, halfIters
}

// qStop evaluates the per-half-iteration termination gates: the CRC check
// first, then decision stability across two consecutive half-iterations
// (which needs both constituent decoders to have contributed at least
// once, hence halfIters >= 2).
func qStop(cur, prev []uint8, halfIters int, opts DecodeOpts) (bool, []uint8) {
	if opts.Check != nil && opts.Check(cur[opts.CheckOffset:]) {
		return true, cur
	}
	if halfIters >= 2 {
		stable := true
		for i := range cur {
			if cur[i] != prev[i] {
				stable = false
				break
			}
		}
		if stable {
			return true, cur
		}
	}
	return false, nil
}

// qHalf runs one constituent half-iteration: the window passes (forward
// recursion into the alpha slab, then a fused backward/extrinsic pass),
// serial or fanned out via p. posMap, when non-nil, maps trellis
// position to decision-buffer position (the QPP permutation for the
// second decoder); windows write disjoint decision positions either way
// because the permutation is a bijection. Deliberately a free function
// over plain slices: the fan-out closure then captures only values, so
// the serial path keeps the decoder state off the heap.
func qHalf(nw, k int, slab []int32, sys, par, apr, ext []int8, aPrev, aCur, bPrev, bCur []int32, cur []uint8, posMap []int32, p Parallel) {
	if p == nil {
		for w := 0; w < nw; w++ {
			qWindowPass(k, slab, w, sys, par, apr, ext, aPrev, aCur, bPrev, bCur, cur, posMap)
		}
		return
	}
	//ltephy:alloc-ok — one fan-out closure per half-iteration, only on
	// the explicitly-parallel path; the serial branch above is the
	// zero-alloc one.
	p(nw, func(w int) {
		qWindowPass(k, slab, w, sys, par, apr, ext, aPrev, aCur, bPrev, bCur, cur, posMap)
	})
}

// qWindowPass decodes window w of one constituent pass: positions
// [w*qWindow, min((w+1)*qWindow, k)). It reads only the previous
// half-iteration's boundary metrics (aPrev/bPrev) plus its own input
// slices, and writes its slab columns, extrinsics, decisions, and its
// out-boundary entries in aCur/bCur — all disjoint across windows.
//
// Both recursions are fully unrolled over the fixed 8-state trellis of
// g0=13, g1=15 (the tables in codec.go spelled out as constants), so the
// inner loops are straight-line int32 arithmetic with no table loads or
// bounds checks. Only two distinct branch metrics exist per step at 2x
// scale — p = ls+lp for (bit 0, parity 0) and q = ls-lp for (bit 0,
// parity 1) — with the bit-1 metrics their negations.
func qWindowPass(k int, slab []int32, w int, sys, par, apr, ext []int8, aPrev, aCur, bPrev, bCur []int32, cur []uint8, posMap []int32) {
	lo := w * qWindow
	hi := lo + qWindow
	if hi > k {
		hi = k
	}

	// Forward recursion from the previous-iteration in-boundary; column t
	// (alpha before consuming symbol t) is stored for the backward pass.
	ab := aPrev[w*nStates : (w+1)*nStates : (w+1)*nStates]
	a0, a1, a2, a3 := ab[0], ab[1], ab[2], ab[3]
	a4, a5, a6, a7 := ab[4], ab[5], ab[6], ab[7]
	for t := lo; t < hi; t++ {
		col := slab[t*nStates : t*nStates+nStates : t*nStates+nStates]
		col[0], col[1], col[2], col[3] = a0, a1, a2, a3
		col[4], col[5], col[6], col[7] = a4, a5, a6, a7
		ls := int32(sys[t]) + int32(apr[t])
		lp := int32(par[t])
		p, q := ls+lp, ls-lp
		a0, a1, a2, a3, a4, a5, a6, a7 =
			maxI32(a0+p, a4-p), maxI32(a0-p, a4+p),
			maxI32(a1+q, a5-q), maxI32(a1-q, a5+q),
			maxI32(a2-q, a6+q), maxI32(a2+q, a6-q),
			maxI32(a3-p, a7+p), maxI32(a3+p, a7-p)
	}
	storeNorm8(aCur[(w+1)*nStates:(w+2)*nStates], a0, a1, a2, a3, a4, a5, a6, a7)

	// Backward recursion from the previous-iteration out-boundary, fused
	// with extrinsic extraction and hard decisions. u_s/v_s are the
	// bit-0/bit-1 branch totals beta[next]+gamma for state s: nb[s] =
	// max(u_s, v_s), and joined with the stored alpha column they give
	// the two path-metric maxima whose difference is the total LLR.
	bb := bPrev[(w+1)*nStates : (w+2)*nStates : (w+2)*nStates]
	n0, n1, n2, n3 := bb[0], bb[1], bb[2], bb[3]
	n4, n5, n6, n7 := bb[4], bb[5], bb[6], bb[7]
	for t := hi - 1; t >= lo; t-- {
		col := slab[t*nStates : t*nStates+nStates : t*nStates+nStates]
		ls := int32(sys[t]) + int32(apr[t])
		lp := int32(par[t])
		p, q := ls+lp, ls-lp

		u0, v0 := n0+p, n1-p
		u1, v1 := n2+q, n3-q
		u2, v2 := n5+q, n4-q
		u3, v3 := n7+p, n6-p
		u4, v4 := n1+p, n0-p
		u5, v5 := n3+q, n2-q
		u6, v6 := n4+q, n5-q
		u7, v7 := n6+p, n7-p

		best0 := maxI32(maxI32(maxI32(col[0]+u0, col[1]+u1), maxI32(col[2]+u2, col[3]+u3)),
			maxI32(maxI32(col[4]+u4, col[5]+u5), maxI32(col[6]+u6, col[7]+u7)))
		best1 := maxI32(maxI32(maxI32(col[0]+v0, col[1]+v1), maxI32(col[2]+v2, col[3]+v3)),
			maxI32(maxI32(col[4]+v4, col[5]+v5), maxI32(col[6]+v6, col[7]+v7)))

		n0, n1, n2, n3 = maxI32(u0, v0), maxI32(u1, v1), maxI32(u2, v2), maxI32(u3, v3)
		n4, n5, n6, n7 = maxI32(u4, v4), maxI32(u5, v5), maxI32(u6, v6), maxI32(u7, v7)

		// best0-best1 is the total LLR at 2x scale (it contains
		// sys+apr+ext); subtracting 2*(sys+apr) leaves twice the
		// extrinsic, and (3*e)>>3 applies the 3/4 extrinsic scale while
		// returning to 1x, saturated into int8 for the next apriori.
		delta := best0 - best1
		pos := t
		if posMap != nil {
			pos = int(posMap[t])
		}
		if delta < 0 {
			cur[pos] = 1
		} else {
			cur[pos] = 0
		}
		e := delta - 2*ls
		ext[t] = sat8(3 * e >> 3)
	}
	storeNorm8(bCur[w*nStates:(w+1)*nStates], n0, n1, n2, n3, n4, n5, n6, n7)
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// storeNorm8 writes a boundary column rescale-normalized: the column
// maximum is subtracted so stored metrics are relative (<= 0) and bounded
// by state-merge depth times the branch-metric scale, independent of how
// far path metrics drifted inside the window.
func storeNorm8(dst []int32, m0, m1, m2, m3, m4, m5, m6, m7 int32) {
	norm := maxI32(maxI32(maxI32(m0, m1), maxI32(m2, m3)), maxI32(maxI32(m4, m5), maxI32(m6, m7)))
	dst = dst[:nStates:nStates]
	dst[0], dst[1], dst[2], dst[3] = m0-norm, m1-norm, m2-norm, m3-norm
	dst[4], dst[5], dst[6], dst[7] = m4-norm, m5-norm, m6-norm, m7-norm
}

// qTailBeta computes the exact beta at position k by stepping backward
// through the three termination steps from the known terminal state 0.
func qTailBeta(tsys, tpar [3]int32) [nStates]int32 {
	b := [nStates]int32{negInfQ, negInfQ, negInfQ, negInfQ, negInfQ, negInfQ, negInfQ, negInfQ}
	b[0] = 0
	for t := 2; t >= 0; t-- {
		ls, lp := tsys[t], tpar[t]
		g00, g01 := ls+lp, ls-lp
		g10, g11 := -ls+lp, -ls-lp
		var nb [nStates]int32
		for s := 0; s < nStates; s++ {
			g0 := g00
			if parityOut[s][0] != 0 {
				g0 = g01
			}
			g1 := g10
			if parityOut[s][1] != 0 {
				g1 = g11
			}
			b0 := b[nextState[s][0]] + g0
			b1 := b[nextState[s][1]] + g1
			if b0 > b1 {
				nb[s] = b0
			} else {
				nb[s] = b1
			}
		}
		b = nb
	}
	return b
}

// quantizeLLR rounds llr*scale to nearest into int8, saturating at
// ±qAprMax.
func quantizeLLR(dst []int8, llr []float64, scale float64) {
	for i, v := range llr {
		dst[i] = int8(quantOne(v, scale))
	}
}

func quantOne(v, scale float64) int32 {
	q := v * scale
	var iv int32
	if q >= 0 {
		iv = int32(q + 0.5)
	} else {
		iv = int32(q - 0.5)
	}
	if iv > qAprMax {
		iv = qAprMax
	} else if iv < -qAprMax {
		iv = -qAprMax
	}
	return iv
}

func sat8(v int32) int8 {
	if v > qAprMax {
		return qAprMax
	}
	if v < -qAprMax {
		return -qAprMax
	}
	return int8(v)
}

// qdecoderState holds the per-call working buffers for DecodeQuantIn.
// Boundary-metric arrays are double-buffered per constituent decoder
// (prev is read, cur is written, swapped after each half-iteration), with
// nw+1 boundary columns: index w is the metric at trellis position
// w*qWindow (the last clamped to k).
type qdecoderState struct {
	k, nw                   int
	qsys, qp1, qp2, qsysIlv []int8
	apr1, apr2, ext1, ext2  []int8
	alpha                   []int32 // k * nStates column slab, shared by both decoders
	a1p, a1c, b1p, b1c      []int32 // decoder 1 boundaries, (nw+1) * nStates each
	a2p, a2c, b2p, b2c      []int32
	t1sys, t1par            [3]int32
	t2sys, t2par            [3]int32
}

// newQDecoderState carves the working buffers from ws (heap when nil).
// All buffers come back zeroed — required: ext2 is read (as the initial
// apriori) before the first half-iteration writes it, and zeroed interior
// boundary columns are exactly the uniform first-iteration NII init.
//
// the mark bounding the state's lifetime.
//
//ltephy:owns-scratch — carve constructor; DecodeQuantIn's caller holds
func newQDecoderState(ws *workspace.Arena, k int) qdecoderState {
	nw := (k + qWindow - 1) / qWindow
	nb := (nw + 1) * nStates
	return qdecoderState{
		k:       k,
		nw:      nw,
		qsys:    ws.Int8(k),
		qp1:     ws.Int8(k),
		qp2:     ws.Int8(k),
		qsysIlv: ws.Int8(k),
		apr1:    ws.Int8(k),
		apr2:    ws.Int8(k),
		ext1:    ws.Int8(k),
		ext2:    ws.Int8(k),
		alpha:   ws.Int32(k * nStates),
		a1p:     ws.Int32(nb),
		a1c:     ws.Int32(nb),
		b1p:     ws.Int32(nb),
		b1c:     ws.Int32(nb),
		a2p:     ws.Int32(nb),
		a2c:     ws.Int32(nb),
		b2p:     ws.Int32(nb),
		b2c:     ws.Int32(nb),
	}
}
