package turbo

import (
	"fmt"
	"math"
	"sync"
)

// Rate matching (TS 36.212 §5.1.4.1) adapts a rate-1/3 mother codeword to
// any target length E: the three output streams are sub-block interleaved,
// collected into a circular buffer (systematic first, then parities
// interlaced), and E bits are read starting at a redundancy-version-
// dependent offset, wrapping as needed (puncturing when E < buffer,
// repetition when E > buffer).
//
// De-rate-matching inverts the mapping on soft values, accumulating LLRs
// for repeated bits — which also provides HARQ-style incremental-
// redundancy combining when called repeatedly with different redundancy
// versions.
//
// Deviation from the spec, documented in DESIGN.md: the twelve trellis
// termination bits are appended four per stream in encoder order rather
// than 36.212's exact tail interlacing, and no soft-buffer limitation
// (N_cb < K_w) is modelled. Both ends of this implementation share the
// mapping, and the interleaver/circular-buffer/rv structure is faithful.

// subBlockColumns is the sub-block interleaver width (36.212: C = 32).
const subBlockColumns = 32

// subBlockPerm is the inter-column permutation pattern of Table 5.1.4-1.
var subBlockPerm = [subBlockColumns]int{
	0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30,
	1, 17, 9, 25, 5, 21, 13, 29, 3, 19, 11, 27, 7, 23, 15, 31,
}

// MaxRVs is the number of redundancy versions (rv 0..3).
const MaxRVs = 4

// RateMatcher precomputes the circular-buffer mapping for one block size.
type RateMatcher struct {
	k    int // info bits
	d    int // per-stream length K+4
	rows int // sub-block interleaver rows
	kpi  int // padded per-stream length rows*32
	kw   int // circular buffer length 3*kpi
	// codeToW[i] is the circular-buffer position of mother-codeword bit i
	// (in the Encode layout [sys K | p1 K | p2 K | tails 12]).
	codeToW []int32
	// wToCode[w] is the inverse (-1 for dummy padding positions).
	wToCode []int32
}

// rmCache is RWMutex-guarded (not a sync.Map) so cache hits don't box the
// key and stay allocation-free.
var (
	rmMu    sync.RWMutex
	rmCache = map[int]*RateMatcher{}
)

// NewRateMatcher returns the (cached) rate matcher for info size k, which
// must be a valid interleaver size.
//
// Double-checked RWMutex cache: steady state is one uncontended RLock
// over a map read; the write lock is first-sight-only.
//
//ltephy:blocking-ok
func NewRateMatcher(k int) (*RateMatcher, error) {
	rmMu.RLock()
	rm := rmCache[k]
	rmMu.RUnlock()
	if rm != nil {
		return rm, nil
	}
	if _, err := NewCodec(k); err != nil {
		return nil, err
	}
	rm = buildRateMatcher(k)
	rmMu.Lock()
	if cached, ok := rmCache[k]; ok {
		rm = cached
	} else {
		rmCache[k] = rm
	}
	rmMu.Unlock()
	return rm, nil
}

// once per block size for the process lifetime.
//
//ltephy:coldpath — permutation-table construction, cached in rmCache; runs
func buildRateMatcher(k int) *RateMatcher {
	d := k + 4
	rows := (d + subBlockColumns - 1) / subBlockColumns
	kpi := rows * subBlockColumns
	rm := &RateMatcher{
		k: k, d: d, rows: rows, kpi: kpi, kw: 3 * kpi,
		codeToW: make([]int32, CodedLen(k)),
		wToCode: make([]int32, 3*kpi),
	}
	for i := range rm.wToCode {
		rm.wToCode[i] = -1
	}
	nd := kpi - d // dummy bits padded at the head of each stream

	// Streams in the Encode layout. Tail placement: four termination bits
	// per stream, encoder-1 pairs then encoder-2 pairs in order.
	streamIdx := func(stream, i int) int32 {
		if i < k {
			return int32(stream*k + i)
		}
		return int32(3*k + stream*4 + (i - k))
	}

	// v0/v1 positions: pad, column-permute, read column-major. The padded
	// element at row r, column c lands at output position u*rows + r where
	// subBlockPerm[u] == c.
	uOf := [subBlockColumns]int{}
	for u, c := range subBlockPerm {
		uOf[c] = u
	}
	place := func(stream int, wBase int, pos func(padded int) int) {
		for i := 0; i < rm.d; i++ {
			padded := i + nd
			w := wBase + pos(padded)
			code := streamIdx(stream, i)
			rm.codeToW[code] = int32(w)
			rm.wToCode[w] = code
		}
	}
	colMajor := func(padded int) int {
		r := padded / subBlockColumns
		c := padded % subBlockColumns
		return uOf[c]*rm.rows + r
	}
	// v2 uses the shifted permutation pi(k) = (P[k/R] + 32*(k%R) + 1) mod Kpi,
	// which interlaces parity 2 one position off parity 1.
	v2pos := make([]int, kpi)
	for idx := 0; idx < kpi; idx++ {
		v2pos[idx] = (subBlockPerm[idx/rm.rows] + subBlockColumns*(idx%rm.rows) + 1) % kpi
	}
	// For v2 the standard defines output position k holds padded element
	// pi(k); invert to map padded element -> output position.
	v2of := make([]int, kpi)
	for outPos, padded := range v2pos {
		v2of[padded] = outPos
	}

	// Bit collection: w[0..kpi) = v0; w[kpi+2j] = v1[j]; w[kpi+2j+1] = v2[j].
	place(0, 0, colMajor)
	for i := 0; i < rm.d; i++ {
		padded := i + nd
		// v1
		w := kpi + 2*colMajor(padded)
		code := streamIdx(1, i)
		rm.codeToW[code] = int32(w)
		rm.wToCode[w] = code
		// v2
		w2 := kpi + 2*v2of[padded] + 1
		code2 := streamIdx(2, i)
		rm.codeToW[code2] = int32(w2)
		rm.wToCode[w2] = code2
	}
	return rm
}

// BufferLen returns the circular buffer length K_w.
func (rm *RateMatcher) BufferLen() int { return rm.kw }

// rvOffset returns the starting position k0 for a redundancy version.
func (rm *RateMatcher) rvOffset(rv int) int {
	if rv < 0 || rv >= MaxRVs {
		panic(fmt.Sprintf("turbo: redundancy version %d outside [0,%d)", rv, MaxRVs))
	}
	// 36.212: k0 = R * (2*ceil(Ncb/(8R))*rv + 2), with Ncb = Kw here.
	return rm.rows * (2*int(math.Ceil(float64(rm.kw)/(8*float64(rm.rows))))*rv + 2)
}

// Match produces e output bits from a mother codeword (Encode layout).
func (rm *RateMatcher) Match(code []uint8, e, rv int) []uint8 {
	if len(code) != CodedLen(rm.k) {
		panic(fmt.Sprintf("turbo: rate match got %d bits, want %d", len(code), CodedLen(rm.k)))
	}
	if e < 1 {
		panic(fmt.Sprintf("turbo: rate match to %d bits", e))
	}
	out := make([]uint8, 0, e)
	pos := rm.rvOffset(rv)
	for len(out) < e {
		if c := rm.wToCode[pos%rm.kw]; c >= 0 {
			out = append(out, code[c])
		}
		pos++
	}
	return out
}

// Accumulate de-rate-matches e soft values into mother-codeword LLRs
// (Encode layout), adding contributions for repeated bits. dst must have
// length CodedLen(k); multiple calls with different rv perform
// incremental-redundancy combining.
func (rm *RateMatcher) Accumulate(dst []float64, llr []float64, rv int) {
	if len(dst) != CodedLen(rm.k) {
		panic(fmt.Sprintf("turbo: accumulate dst has %d entries, want %d", len(dst), CodedLen(rm.k)))
	}
	pos := rm.rvOffset(rv)
	used := 0
	for used < len(llr) {
		if c := rm.wToCode[pos%rm.kw]; c >= 0 {
			dst[c] += llr[used]
			used++
		}
		pos++
	}
}

// MinRate is the lowest supportable code rate: below the mother code's
// 1/3, repetition fills the target; this bound only guards degenerate
// requests.
const MinRate = 0.05

// MaxRate bounds puncturing: at least the systematic bits plus a minimal
// parity margin must survive.
const MaxRate = 0.92
