package turbo

import (
	"fmt"

	"ltephy/internal/phy/workspace"
)

// nStates is the constituent RSC encoder state count: 8 states from the
// 3-bit shift register of g0 = 1+D^2+D^3 (octal 13), g1 = 1+D+D^3 (15).
const nStates = 8

// tailBits is the number of termination bits each codeword carries: both
// constituent encoders are driven to the zero state with three trellis
// steps each, producing (systematic, parity) pairs — 12 bits (36.212
// §5.1.3.2.2).
const tailBits = 12

// trellis tables: for state s (bits r0 r1 r2, r0 newest) and input bit b,
// the parity output and next state of the RSC encoder.
var (
	nextState [nStates][2]uint8
	parityOut [nStates][2]uint8
	// tailInput[s] is the input that forces the feedback to zero, stepping
	// the encoder toward state 0.
	tailInput [nStates]uint8
)

func init() {
	for s := 0; s < nStates; s++ {
		r0, r1, r2 := uint8(s)&1, uint8(s>>1)&1, uint8(s>>2)&1
		for b := uint8(0); b < 2; b++ {
			f := b ^ r1 ^ r2 // feedback: g0 taps D^2, D^3
			z := f ^ r0 ^ r2 // parity: g1 taps 1, D, D^3
			ns := (s<<1 | int(f)) & 7
			nextState[s][b] = uint8(ns)
			parityOut[s][b] = z
		}
		tailInput[s] = r1 ^ r2 // makes feedback zero, shifting in 0
	}
}

// CodedLen returns the codeword length for k info bits: systematic + two
// parity streams + termination.
func CodedLen(k int) int { return 3*k + tailBits }

// Codec encodes and decodes blocks of one fixed info size.
// A Codec is immutable after construction and safe for concurrent use;
// decoding allocates its working state per call.
type Codec struct {
	k  int
	il *interleaver
}

// NewCodec returns a codec for info blocks of k bits. k must be one of the
// TS 36.212 block sizes (use SmallestValidBlock to round up).
//
// rate-matcher cache miss, once per block size for the process lifetime.
//
//ltephy:coldpath — constructor/validation; decode paths reach it only on a
func NewCodec(k int) (*Codec, error) {
	if _, err := SmallestValidBlock(k); err != nil {
		return nil, err
	}
	valid := false
	for _, v := range ValidBlockSizes() {
		if v == k {
			valid = true
			break
		}
	}
	if !valid {
		return nil, fmt.Errorf("turbo: %d is not a valid interleaver size", k)
	}
	return &Codec{k: k, il: getInterleaver(k)}, nil
}

// K returns the info block size.
func (c *Codec) K() int { return c.k }

// rscEncode runs one constituent encoder over in, writing parity bits to
// par and returning the 3 (input, parity) tail pairs appended to tails.
func rscEncode(par []uint8, in []uint8, tails []uint8) []uint8 {
	var s uint8
	for i, b := range in {
		par[i] = parityOut[s][b]
		s = nextState[s][b]
	}
	for t := 0; t < 3; t++ {
		b := tailInput[s]
		tails = append(tails, b, parityOut[s][b])
		s = nextState[s][b]
	}
	return tails
}

// Encode produces the rate-1/3 codeword for info (length K, bit values
// 0/1): layout [systematic K | parity1 K | parity2 K | tails 12], where the
// tails are encoder 1's three (x, z) pairs followed by encoder 2's.
func (c *Codec) Encode(info []uint8) []uint8 {
	if len(info) != c.k {
		panic(fmt.Sprintf("turbo: Encode got %d bits, codec built for %d", len(info), c.k))
	}
	out := make([]uint8, CodedLen(c.k))
	sys := out[:c.k]
	p1 := out[c.k : 2*c.k]
	p2 := out[2*c.k : 3*c.k]
	copy(sys, info)
	tails := out[3*c.k : 3*c.k]
	tails = rscEncode(p1, info, tails)
	ilv := make([]uint8, c.k)
	permute(ilv, info, c.il.perm)
	rscEncode(p2, ilv, tails)
	return out
}

// Decode runs iterative max-log-MAP decoding on channel LLRs laid out as
// Encode produces (positive LLR = bit 0 more likely). It returns the hard
// info bits. iterations caps the number of full (two half-iteration)
// passes; decoding terminates early once hard decisions stabilise
// (see DecodeEarlyStop). Values of 4-8 are typical.
func (c *Codec) Decode(llr []float64, iterations int) []uint8 {
	bits, _ := c.DecodeEarlyStop(llr, iterations, nil)
	return bits
}

// DecodeEarlyStop decodes with hard-decision-aided early termination: after
// each full iteration the current hard decisions are compared with the
// previous iteration's, and — when a stop check is supplied (typically a
// CRC) — tested against it. Decoding stops as soon as decisions are stable
// or the check passes, which is how production decoders spend iterations
// only on the blocks that need them. It returns the info bits and the
// number of full iterations executed.
func (c *Codec) DecodeEarlyStop(llr []float64, iterations int, check func([]uint8) bool) ([]uint8, int) {
	return c.DecodeEarlyStopIn(nil, llr, iterations, check)
}

// DecodeEarlyStopIn is DecodeEarlyStop with all working state — trellis
// metrics, extrinsics, and the two alternating hard-decision buffers —
// drawn from ws (heap-allocated when ws is nil). The returned bit slice is
// arena-backed: it is valid only until the caller releases the arena mark
// enclosing this call, so callers must copy it out first. The check
// callback likewise must not retain its argument, which is overwritten on
// the next iteration.
//
// caller holds the mark (see segment.DecodeInto) and copies before Release.
//
//ltephy:owns-scratch — returns arena-backed decisions by contract; the
func (c *Codec) DecodeEarlyStopIn(ws *workspace.Arena, llr []float64, iterations int, check func([]uint8) bool) ([]uint8, int) {
	if len(llr) != CodedLen(c.k) {
		panic(fmt.Sprintf("turbo: Decode got %d LLRs, want %d", len(llr), CodedLen(c.k)))
	}
	if iterations < 1 {
		iterations = 1
	}
	k := c.k
	sys := llr[:k]
	p1 := llr[k : 2*k]
	p2 := llr[2*k : 3*k]
	tails := llr[3*k:]

	// Tail LLR views: encoder 1 pairs then encoder 2 pairs.
	t1sys := [3]float64{tails[0], tails[2], tails[4]}
	t1par := [3]float64{tails[1], tails[3], tails[5]}
	t2sys := [3]float64{tails[6], tails[8], tails[10]}
	t2par := [3]float64{tails[7], tails[9], tails[11]}

	d := newDecoderState(ws, k)
	// Interleaved systematic LLRs for the second constituent decoder.
	permute(d.sysIlv, sys, c.il.perm)

	// Two alternating hard-decision buffers instead of one fresh slice per
	// iteration: cur holds this iteration's decisions, prev the previous
	// iteration's for the stability test.
	cur := ws.Bytes(k)
	prev := ws.Bytes(k)
	havePrev := false
	ran := 0
	for it := 0; it < iterations; it++ {
		// Half-iteration 1: apriori = deinterleaved extrinsic from dec 2.
		permute(d.apr1, d.ext2, c.il.inv)
		maxLogMAP(&d, sys, p1, d.apr1, t1sys, t1par, d.ext1)
		// Half-iteration 2 on interleaved order.
		permute(d.apr2, d.ext1, c.il.perm)
		maxLogMAP(&d, d.sysIlv, p2, d.apr2, t2sys, t2par, d.ext2)
		ran = it + 1

		// Total LLR in natural order with the current extrinsics.
		permute(d.apr1, d.ext2, c.il.inv)
		for i := 0; i < k; i++ {
			if sys[i]+d.ext1[i]+d.apr1[i] < 0 {
				cur[i] = 1
			} else {
				cur[i] = 0
			}
		}
		if check != nil && check(cur) {
			return cur, ran
		}
		if havePrev {
			stable := true
			for i := range cur {
				if cur[i] != prev[i] {
					stable = false
					break
				}
			}
			if stable {
				return cur, ran
			}
		}
		cur, prev = prev, cur
		havePrev = true
	}
	// iterations >= 1, so prev holds the latest decisions after the swap.
	return prev, ran
}

// decoderState holds the per-call working buffers for Decode.
type decoderState struct {
	k           int
	sysIlv      []float64
	apr1, apr2  []float64
	ext1, ext2  []float64
	alpha, beta []float64 // (k+4) * nStates
	gamma0      []float64 // branch metric for input bit 0, per step/state
	gamma1      []float64
}

// newDecoderState carves the working buffers from ws (heap when nil). All
// buffers come back zeroed either way — required: ext2 is read (as the
// initial apriori) before the first half-iteration writes it.
//
// the mark bounding the state's lifetime.
//
//ltephy:owns-scratch — carve constructor; DecodeEarlyStopIn's caller holds
func newDecoderState(ws *workspace.Arena, k int) decoderState {
	n := k + 4 // info steps + 3 tail steps + terminal column
	return decoderState{
		k:      k,
		sysIlv: ws.Float(k),
		apr1:   ws.Float(k),
		apr2:   ws.Float(k),
		ext1:   ws.Float(k),
		ext2:   ws.Float(k),
		alpha:  ws.Float(n * nStates),
		beta:   ws.Float(n * nStates),
		gamma0: ws.Float((k + 3) * nStates),
		gamma1: ws.Float((k + 3) * nStates),
	}
}

const negInf = -1e30

// maxLogMAP runs one constituent max-log BCJR pass.
// sys, par, apr have length k; tailSys/tailPar are the 3 termination steps.
// Extrinsic output (L(bit0)-style: positive means 0) is written to ext.
func maxLogMAP(d *decoderState, sys, par, apr []float64, tailSys, tailPar [3]float64, ext []float64) {
	k := d.k
	steps := k + 3

	// Branch metrics. Using the convention LLR = log(P0/P1), the metric
	// contribution of observing value b under LLR L is +L/2 for b=0 and
	// -L/2 for b=1 (up to a constant common to both hypotheses).
	for t := 0; t < steps; t++ {
		var ls, lp float64
		if t < k {
			ls = sys[t] + apr[t]
			lp = par[t]
		} else {
			ls = tailSys[t-k]
			lp = tailPar[t-k]
		}
		for s := 0; s < nStates; s++ {
			base := t*nStates + s
			z0 := parityOut[s][0]
			z1 := parityOut[s][1]
			m0 := ls / 2
			m1 := -ls / 2
			if z0 == 0 {
				m0 += lp / 2
			} else {
				m0 -= lp / 2
			}
			if z1 == 0 {
				m1 += lp / 2
			} else {
				m1 -= lp / 2
			}
			d.gamma0[base] = m0
			d.gamma1[base] = m1
		}
	}

	// Forward recursion. The encoder starts in state 0.
	for s := 0; s < nStates; s++ {
		d.alpha[s] = negInf
	}
	d.alpha[0] = 0
	for t := 0; t < steps; t++ {
		cur := d.alpha[t*nStates : (t+1)*nStates]
		nxt := d.alpha[(t+1)*nStates : (t+2)*nStates]
		for s := range nxt {
			nxt[s] = negInf
		}
		for s := 0; s < nStates; s++ {
			a := cur[s]
			if a <= negInf {
				continue
			}
			if v := a + d.gamma0[t*nStates+s]; v > nxt[nextState[s][0]] {
				nxt[nextState[s][0]] = v
			}
			if v := a + d.gamma1[t*nStates+s]; v > nxt[nextState[s][1]] {
				nxt[nextState[s][1]] = v
			}
		}
	}

	// Backward recursion. Termination drives the encoder to state 0.
	for s := 0; s < nStates; s++ {
		d.beta[steps*nStates+s] = negInf
	}
	d.beta[steps*nStates] = 0
	for t := steps - 1; t >= 0; t-- {
		cur := d.beta[t*nStates : (t+1)*nStates]
		nxt := d.beta[(t+1)*nStates : (t+2)*nStates]
		for s := 0; s < nStates; s++ {
			b0 := nxt[nextState[s][0]] + d.gamma0[t*nStates+s]
			b1 := nxt[nextState[s][1]] + d.gamma1[t*nStates+s]
			if b0 > b1 {
				cur[s] = b0
			} else {
				cur[s] = b1
			}
		}
	}

	// APP and extrinsic for the information steps.
	for t := 0; t < k; t++ {
		best0, best1 := negInf, negInf
		for s := 0; s < nStates; s++ {
			a := d.alpha[t*nStates+s]
			if v := a + d.gamma0[t*nStates+s] + d.beta[(t+1)*nStates+int(nextState[s][0])]; v > best0 {
				best0 = v
			}
			if v := a + d.gamma1[t*nStates+s] + d.beta[(t+1)*nStates+int(nextState[s][1])]; v > best1 {
				best1 = v
			}
		}
		total := best0 - best1
		ext[t] = total - sys[t] - apr[t]
	}
}
