package turbo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidBlockSizes(t *testing.T) {
	ks := ValidBlockSizes()
	if len(ks) != 188 {
		t.Fatalf("got %d block sizes, want 188 (36.212 Table 5.1.3-3)", len(ks))
	}
	if ks[0] != 40 || ks[len(ks)-1] != 6144 {
		t.Errorf("size range [%d, %d], want [40, 6144]", ks[0], ks[len(ks)-1])
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("sizes not strictly increasing at %d", i)
		}
	}
	// Spot-check the step structure.
	has := func(k int) bool {
		for _, v := range ks {
			if v == k {
				return true
			}
		}
		return false
	}
	for _, k := range []int{40, 48, 512, 528, 1024, 1056, 2048, 2112, 6144} {
		if !has(k) {
			t.Errorf("expected size %d missing", k)
		}
	}
	for _, k := range []int{44, 520, 1040, 2080, 6143} {
		if has(k) {
			t.Errorf("unexpected size %d present", k)
		}
	}
}

func TestSmallestValidBlock(t *testing.T) {
	cases := map[int]int{1: 40, 40: 40, 41: 48, 512: 512, 513: 528, 6144: 6144, 6100: 6144}
	for in, want := range cases {
		got, err := SmallestValidBlock(in)
		if err != nil || got != want {
			t.Errorf("SmallestValidBlock(%d) = %d, %v; want %d", in, got, err, want)
		}
	}
	if _, err := SmallestValidBlock(6145); err == nil {
		t.Error("SmallestValidBlock(6145) did not fail")
	}
}

func TestQPPBijectiveForAllSizes(t *testing.T) {
	for _, k := range ValidBlockSizes() {
		il := getInterleaver(k)
		seen := make([]bool, k)
		for _, p := range il.perm {
			if seen[p] {
				t.Fatalf("K=%d: interleaver not bijective", k)
			}
			seen[p] = true
		}
		for i, p := range il.perm {
			if il.inv[p] != int32(i) {
				t.Fatalf("K=%d: inverse permutation wrong at %d", k, i)
			}
		}
	}
}

func TestKnownQPP40(t *testing.T) {
	// 36.212: K=40 uses f1=3, f2=10, so pi(1) = 13, pi(2) = 46 mod 40 = 6.
	il := getInterleaver(40)
	if il.perm[0] != 0 || il.perm[1] != 13 || il.perm[2] != 6 {
		t.Errorf("K=40 permutation prefix = %v, want [0 13 6 ...]", il.perm[:3])
	}
}

func TestTrellisTermination(t *testing.T) {
	// From every state, three tail steps must reach state 0.
	for s := 0; s < nStates; s++ {
		st := uint8(s)
		for i := 0; i < 3; i++ {
			st = nextState[st][tailInput[st]]
		}
		if st != 0 {
			t.Errorf("state %d does not terminate to 0 (reached %d)", s, st)
		}
	}
}

func TestTrellisConnectivity(t *testing.T) {
	// Every state must be reachable and the two branches from a state must
	// lead to distinct states (invertible trellis).
	reach := make(map[uint8]bool)
	for s := 0; s < nStates; s++ {
		if nextState[s][0] == nextState[s][1] {
			t.Errorf("state %d: both inputs lead to state %d", s, nextState[s][0])
		}
		reach[nextState[s][0]] = true
		reach[nextState[s][1]] = true
	}
	if len(reach) != nStates {
		t.Errorf("only %d states reachable, want %d", len(reach), nStates)
	}
}

func TestEncodeLengthAndSystematic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := NewCodec(40)
	if err != nil {
		t.Fatal(err)
	}
	info := randBits(rng, 40)
	code := c.Encode(info)
	if len(code) != 3*40+12 {
		t.Fatalf("codeword length %d, want %d", len(code), 3*40+12)
	}
	for i := range info {
		if code[i] != info[i] {
			t.Fatalf("systematic bit %d altered", i)
		}
	}
}

func TestNewCodecRejectsInvalidK(t *testing.T) {
	for _, k := range []int{0, 39, 41, 6145} {
		if _, err := NewCodec(k); err == nil {
			t.Errorf("NewCodec(%d) did not fail", k)
		}
	}
}

func randBits(rng *rand.Rand, n int) []uint8 {
	b := make([]uint8, n)
	for i := range b {
		b[i] = uint8(rng.Intn(2))
	}
	return b
}

// bitsToLLR converts bits to perfect-channel LLRs (positive = 0).
func bitsToLLR(bits []uint8, mag float64) []float64 {
	llr := make([]float64, len(bits))
	for i, b := range bits {
		if b == 0 {
			llr[i] = mag
		} else {
			llr[i] = -mag
		}
	}
	return llr
}

func TestDecodeNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{40, 112, 512, 1056, 6144} {
		c, err := NewCodec(k)
		if err != nil {
			t.Fatal(err)
		}
		info := randBits(rng, k)
		code := c.Encode(info)
		got := c.Decode(bitsToLLR(code, 8), 3)
		for i := range info {
			if got[i] != info[i] {
				t.Fatalf("K=%d: noiseless decode differs at bit %d", k, i)
			}
		}
	}
}

// TestDecodeAWGN exercises the real coding gain: at Eb/N0 around 1.5 dB a
// rate-1/3 turbo code must decode essentially error-free, where an uncoded
// system would see several percent BER.
func TestDecodeAWGN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k = 512
	c, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	ebn0 := math.Pow(10, 1.5/10)
	rate := float64(k) / float64(CodedLen(k))
	esn0 := ebn0 * rate // BPSK symbol SNR
	sigma := math.Sqrt(1 / (2 * esn0))
	bitErrs, trials := 0, 20
	for trial := 0; trial < trials; trial++ {
		info := randBits(rng, k)
		code := c.Encode(info)
		llr := make([]float64, len(code))
		for i, b := range code {
			x := 1.0
			if b == 1 {
				x = -1
			}
			y := x + sigma*rng.NormFloat64()
			llr[i] = 2 * y / (sigma * sigma)
		}
		got := c.Decode(llr, 6)
		for i := range info {
			if got[i] != info[i] {
				bitErrs++
			}
		}
	}
	ber := float64(bitErrs) / float64(k*trials)
	if ber > 1e-3 {
		t.Errorf("turbo BER at 1.5 dB Eb/N0 = %g, want <= 1e-3", ber)
	}
}

// TestCodingGain verifies the decoder beats hard-decision on the
// systematic bits alone under noise — i.e. the iterations actually help.
func TestCodingGain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const k = 256
	c, _ := NewCodec(k)
	esn0 := math.Pow(10, -2.0/10) // -2 dB: uncoded BPSK is hopeless (~12% BER)
	sigma := math.Sqrt(1 / (2 * esn0))
	var hardErrs, turboErrs int
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		info := randBits(rng, k)
		code := c.Encode(info)
		llr := make([]float64, len(code))
		for i, b := range code {
			x := 1.0
			if b == 1 {
				x = -1
			}
			y := x + sigma*rng.NormFloat64()
			llr[i] = 2 * y / (sigma * sigma)
		}
		for i := 0; i < k; i++ {
			if (llr[i] < 0) != (info[i] == 1) {
				hardErrs++
			}
		}
		got := c.Decode(llr, 8)
		for i := range info {
			if got[i] != info[i] {
				turboErrs++
			}
		}
	}
	if hardErrs == 0 {
		t.Fatal("test misconfigured: no uncoded errors at -2 dB")
	}
	if turboErrs*4 >= hardErrs {
		t.Errorf("turbo (%d errors) not clearly better than uncoded (%d) at -2 dB",
			turboErrs, hardErrs)
	}
}

func TestDecodeIterationsImprove(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const k = 200
	c, _ := NewCodec(k)
	sigma := 1.1
	errsAt := func(iters int) int {
		r := rand.New(rand.NewSource(99))
		errs := 0
		for trial := 0; trial < 8; trial++ {
			info := randBits(rng, k)
			code := c.Encode(info)
			llr := make([]float64, len(code))
			for i, b := range code {
				x := 1.0
				if b == 1 {
					x = -1
				}
				llr[i] = 2 * (x + sigma*r.NormFloat64()) / (sigma * sigma)
			}
			got := c.Decode(llr, iters)
			for i := range info {
				if got[i] != info[i] {
					errs++
				}
			}
		}
		return errs
	}
	// Not strictly monotone in general, but 6 iterations should not be
	// worse than 1 on aggregate.
	if e1, e6 := errsAt(1), errsAt(6); e6 > e1 {
		t.Errorf("more iterations hurt: 1 iter %d errors, 6 iters %d", e1, e6)
	}
}

func TestSegmentationSingleBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, b := range []int{1, 39, 40, 100, 6000, 6144} {
		s, err := NewSegmentation(b)
		if err != nil {
			t.Fatal(err)
		}
		if s.C != 1 {
			t.Errorf("B=%d: C=%d, want 1", b, s.C)
		}
		tb := randBits(rng, b)
		code := s.Encode(tb)
		got, ok := s.Decode(bitsToLLR(code, 8), 2)
		if !ok {
			t.Errorf("B=%d: decode reported CRC failure with no per-block CRC", b)
		}
		if len(got) != b {
			t.Fatalf("B=%d: decoded %d bits", b, len(got))
		}
		for i := range tb {
			if got[i] != tb[i] {
				t.Fatalf("B=%d: bit %d differs", b, i)
			}
		}
	}
}

func TestSegmentationMultiBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, b := range []int{6145, 10000, 20000} {
		s, err := NewSegmentation(b)
		if err != nil {
			t.Fatal(err)
		}
		if s.C < 2 || !s.PerCRC {
			t.Fatalf("B=%d: C=%d PerCRC=%v, want multi-block with CRC", b, s.C, s.PerCRC)
		}
		tb := randBits(rng, b)
		code := s.Encode(tb)
		if len(code) != s.CodedLen() {
			t.Fatalf("B=%d: coded length %d, want %d", b, len(code), s.CodedLen())
		}
		got, ok := s.Decode(bitsToLLR(code, 8), 2)
		if !ok {
			t.Errorf("B=%d: per-block CRC failed on clean decode", b)
		}
		for i := range tb {
			if got[i] != tb[i] {
				t.Fatalf("B=%d: bit %d differs", b, i)
			}
		}
	}
}

func TestSegmentationDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s, err := NewSegmentation(8000)
	if err != nil {
		t.Fatal(err)
	}
	tb := randBits(rng, 8000)
	code := s.Encode(tb)
	llr := bitsToLLR(code, 8)
	// Corrupt one codeword region so badly the decoder cannot recover:
	// zero out half of block 0's LLRs and flip the rest.
	for i := 0; i < CodedLen(s.K)/2; i++ {
		llr[i] = -llr[i]
	}
	_, ok := s.Decode(llr, 2)
	if ok {
		t.Error("per-block CRC did not flag a destroyed code block")
	}
}

func TestSegmentationProperty(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		b := int(sz)%3000 + 1
		rng := rand.New(rand.NewSource(seed))
		s, err := NewSegmentation(b)
		if err != nil {
			return false
		}
		tb := randBits(rng, b)
		got, ok := s.Decode(bitsToLLR(s.Encode(tb), 6), 1)
		if !ok || len(got) != b {
			return false
		}
		for i := range tb {
			if got[i] != tb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range []int{40, 512, 6144} {
		c, _ := NewCodec(k)
		info := randBits(rng, k)
		b.Run(sizeName(k), func(b *testing.B) {
			b.SetBytes(int64(k) / 8)
			for i := 0; i < b.N; i++ {
				c.Encode(info)
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	for _, k := range []int{40, 512, 6144} {
		c, _ := NewCodec(k)
		llr := bitsToLLR(c.Encode(randBits(rng, k)), 4)
		b.Run(sizeName(k), func(b *testing.B) {
			b.SetBytes(int64(k) / 8)
			for i := 0; i < b.N; i++ {
				c.Decode(llr, 5)
			}
		})
	}
}

func sizeName(k int) string {
	switch k {
	case 40:
		return "K40"
	case 512:
		return "K512"
	default:
		return "K6144"
	}
}

// TestEarlyStopMatchesFullDecode: early termination must return the same
// bits as the fixed-iteration decoder wherever the latter succeeds, while
// spending fewer iterations on clean input.
func TestEarlyStopMatchesFullDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const k = 256
	c, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	// Clean input: must stop well before the cap.
	info := randBits(rng, k)
	llr := bitsToLLR(c.Encode(info), 6)
	got, iters := c.DecodeEarlyStop(llr, 8, nil)
	for i := range info {
		if got[i] != info[i] {
			t.Fatalf("early-stop decode wrong at bit %d", i)
		}
	}
	if iters > 3 {
		t.Errorf("clean decode used %d iterations, expected early stop", iters)
	}
	// Noisy input: more iterations, same final answer as Decode.
	sigma := 0.9
	for trial := 0; trial < 5; trial++ {
		info := randBits(rng, k)
		code := c.Encode(info)
		noisy := make([]float64, len(code))
		for i, b := range code {
			x := 1.0
			if b == 1 {
				x = -1
			}
			noisy[i] = 2 * (x + sigma*rng.NormFloat64()) / (sigma * sigma)
		}
		full := c.Decode(noisy, 8)
		early, used := c.DecodeEarlyStop(noisy, 8, nil)
		if used < 1 || used > 8 {
			t.Fatalf("iterations used = %d", used)
		}
		// Early stop terminates on stable decisions; those decisions are by
		// construction what further iterations would keep producing, so the
		// two must agree.
		for i := range full {
			if full[i] != early[i] {
				t.Fatalf("trial %d: early-stop differs from full decode at bit %d", trial, i)
			}
		}
	}
}

// TestEarlyStopCRCCheck: a CRC-based stop terminates at the first passing
// iteration.
func TestEarlyStopCRCCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const k = 128
	c, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	info := randBits(rng, k)
	llr := bitsToLLR(c.Encode(info), 6)
	calls := 0
	want := append([]uint8(nil), info...)
	_, iters := c.DecodeEarlyStop(llr, 8, func(bits []uint8) bool {
		calls++
		for i := range want {
			if bits[i] != want[i] {
				return false
			}
		}
		return true
	})
	if iters != 1 || calls != 1 {
		t.Errorf("CRC stop used %d iterations / %d checks, want 1/1 on clean input", iters, calls)
	}
}
