package turbo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRateMatcherMappingBijective(t *testing.T) {
	for _, k := range []int{40, 112, 512, 1024, 6144} {
		rm, err := NewRateMatcher(k)
		if err != nil {
			t.Fatal(err)
		}
		// Every mother-code bit appears exactly once in the buffer; every
		// non-dummy buffer slot maps back.
		seen := make(map[int32]bool)
		for i, w := range rm.codeToW {
			if seen[w] {
				t.Fatalf("K=%d: buffer slot %d used twice", k, w)
			}
			seen[w] = true
			if rm.wToCode[w] != int32(i) {
				t.Fatalf("K=%d: inverse mapping broken at code bit %d", k, i)
			}
		}
		nonDummy := 0
		for _, c := range rm.wToCode {
			if c >= 0 {
				nonDummy++
			}
		}
		if nonDummy != CodedLen(k) {
			t.Fatalf("K=%d: %d non-dummy slots, want %d", k, nonDummy, CodedLen(k))
		}
	}
}

func TestRateMatchFullBufferIsPermutation(t *testing.T) {
	// Requesting exactly CodedLen bits at rv 0 must return every mother
	// bit exactly once (a permutation, no loss).
	const k = 104
	rm, err := NewRateMatcher(k)
	if err != nil {
		t.Fatal(err)
	}
	code := make([]uint8, CodedLen(k))
	for i := range code {
		code[i] = uint8(i % 2)
	}
	// Mark each bit with a unique value via position parity trick: instead
	// count ones after matching a codeword of distinct markers is not
	// possible with bits; use soft accumulate to verify coverage.
	llr := make([]float64, CodedLen(k))
	for i := range llr {
		llr[i] = 1
	}
	acc := make([]float64, CodedLen(k))
	rm.Accumulate(acc, llr, 0)
	for i, v := range acc {
		if v != 1 {
			t.Fatalf("bit %d accumulated %g contributions, want exactly 1", i, v)
		}
	}
}

func TestRateMatchRepetitionAccumulates(t *testing.T) {
	const k = 64
	rm, err := NewRateMatcher(k)
	if err != nil {
		t.Fatal(err)
	}
	e := 2 * CodedLen(k) // full repetition
	llr := make([]float64, e)
	for i := range llr {
		llr[i] = 1
	}
	acc := make([]float64, CodedLen(k))
	rm.Accumulate(acc, llr, 0)
	var total float64
	for i, v := range acc {
		if v < 1 {
			t.Fatalf("bit %d got %g contributions under repetition", i, v)
		}
		total += v
	}
	if total != float64(e) {
		t.Fatalf("accumulated %g contributions, want %d", total, e)
	}
}

func TestRateMatchPuncturingKeepsSystematic(t *testing.T) {
	// At moderate puncturing (rate 1/2) and rv 0, nearly all systematic
	// bits must survive — the property that makes rv 0 the self-decodable
	// version.
	const k = 512
	rm, err := NewRateMatcher(k)
	if err != nil {
		t.Fatal(err)
	}
	e := 2 * k // rate ~1/2
	llr := make([]float64, e)
	for i := range llr {
		llr[i] = 1
	}
	acc := make([]float64, CodedLen(k))
	rm.Accumulate(acc, llr, 0)
	missing := 0
	for i := 0; i < k; i++ {
		if acc[i] == 0 {
			missing++
		}
	}
	// rv 0 starts at k0 = 2R, deliberately skipping the first two
	// interleaved columns (~2R positions, mostly systematic) — that is the
	// standard's own start offset, so allow exactly that much loss.
	if missing > 2*rm.rows+8 {
		t.Errorf("rv0 rate-1/2 puncturing dropped %d/%d systematic bits (allowed ~%d)",
			missing, k, 2*rm.rows)
	}
}

func TestRVOffsetsDistinct(t *testing.T) {
	rm, err := NewRateMatcher(256)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for rv := 0; rv < MaxRVs; rv++ {
		off := rm.rvOffset(rv) % rm.kw
		if seen[off] {
			t.Errorf("rv %d offset %d collides", rv, off)
		}
		seen[off] = true
	}
}

// TestRateMatchedRoundTrip is the end-to-end property: encode, rate match
// to a random E, transmit noiselessly, de-rate-match, decode — the info
// bits must survive for rates the mother code supports.
func TestRateMatchedRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint16, eSel uint16, rvSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ks := ValidBlockSizes()
		k := ks[int(sz)%len(ks)]
		if k > 1024 {
			k = 1024 // keep the property test fast
		}
		k, _ = SmallestValidBlock(k)
		c, err := NewCodec(k)
		if err != nil {
			return false
		}
		rm, err := NewRateMatcher(k)
		if err != nil {
			return false
		}
		// Rates between ~0.4 (puncturing) and ~0.2 (repetition).
		e := int(float64(k)*2.5) + int(eSel)%(3*k)
		rv := int(rvSel) % MaxRVs
		if rv != 0 && e < 3*k {
			rv = 0 // punctured non-zero rv alone need not be self-decodable
		}
		info := randBits(rng, k)
		tx := rm.Match(c.Encode(info), e, rv)
		llr := make([]float64, CodedLen(k))
		rm.Accumulate(llr, bitsToLLR(tx, 4), rv)
		got := c.Decode(llr, 4)
		for i := range info {
			if got[i] != info[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalRedundancyGain: combining two punctured transmissions
// (rv 0 + rv 2) under noise must outperform a single transmission —
// the HARQ property the accumulator provides.
func TestIncrementalRedundancyGain(t *testing.T) {
	const k = 512
	c, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewRateMatcher(k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	e := 2 * k    // rate ~1/2 per transmission
	sigma := 1.05 // harsh enough that one transmission often fails
	trials := 12
	errsSingle, errsCombined := 0, 0
	noisyLLR := func(bits []uint8) []float64 {
		llr := make([]float64, len(bits))
		for i, b := range bits {
			x := 1.0
			if b == 1 {
				x = -1
			}
			llr[i] = 2 * (x + sigma*rng.NormFloat64()) / (sigma * sigma)
		}
		return llr
	}
	for trial := 0; trial < trials; trial++ {
		info := randBits(rng, k)
		code := c.Encode(info)
		tx0 := rm.Match(code, e, 0)
		tx2 := rm.Match(code, e, 2)

		single := make([]float64, CodedLen(k))
		rm.Accumulate(single, noisyLLR(tx0), 0)
		got := c.Decode(single, 6)
		for i := range info {
			if got[i] != info[i] {
				errsSingle++
			}
		}

		combined := make([]float64, CodedLen(k))
		rm.Accumulate(combined, noisyLLR(tx0), 0)
		rm.Accumulate(combined, noisyLLR(tx2), 2)
		got2 := c.Decode(combined, 6)
		for i := range info {
			if got2[i] != info[i] {
				errsCombined++
			}
		}
	}
	if errsSingle == 0 {
		t.Skip("channel too clean to show IR gain; adjust sigma")
	}
	if errsCombined*2 >= errsSingle {
		t.Errorf("IR combining (%d errors) not clearly better than single transmission (%d)",
			errsCombined, errsSingle)
	}
}

func TestRateMatchPanics(t *testing.T) {
	rm, err := NewRateMatcher(40)
	if err != nil {
		t.Fatal(err)
	}
	code := make([]uint8, CodedLen(40))
	for _, fn := range []func(){
		func() { rm.Match(code[:10], 100, 0) },
		func() { rm.Match(code, 0, 0) },
		func() { rm.Match(code, 100, 4) },
		func() { rm.Accumulate(make([]float64, 5), make([]float64, 10), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	if _, err := NewRateMatcher(41); err == nil {
		t.Error("invalid K accepted")
	}
}

func TestRateMatcherCached(t *testing.T) {
	a, err := NewRateMatcher(320)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRateMatcher(320)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("rate matcher not cached")
	}
	if a.BufferLen() < CodedLen(320) {
		t.Errorf("buffer %d smaller than codeword %d", a.BufferLen(), CodedLen(320))
	}
}

func TestRateBounds(t *testing.T) {
	if MinRate <= 0 || MaxRate >= 1 || MinRate >= MaxRate {
		t.Errorf("rate bounds implausible: [%g, %g]", MinRate, MaxRate)
	}
	if math.Abs(MaxRate-0.92) > 1e-12 {
		t.Errorf("MaxRate = %g", MaxRate)
	}
}

func BenchmarkRateMatch(b *testing.B) {
	rm, _ := NewRateMatcher(6144)
	c, _ := NewCodec(6144)
	code := c.Encode(randBits(rand.New(rand.NewSource(1)), 6144))
	b.SetBytes(6144 / 8)
	for i := 0; i < b.N; i++ {
		rm.Match(code, 9000, 0)
	}
}

func BenchmarkDeRateMatch(b *testing.B) {
	rm, _ := NewRateMatcher(6144)
	llr := make([]float64, 9000)
	dst := make([]float64, CodedLen(6144))
	b.SetBytes(6144 / 8)
	for i := 0; i < b.N; i++ {
		for j := range dst {
			dst[j] = 0
		}
		rm.Accumulate(dst, llr, 0)
	}
}
