package turbo

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ltephy/internal/phy/workspace"
)

// addAWGN returns BPSK channel LLRs for bits at the given Eb/N0 (dB) for
// the rate-1/3 code, using rng for the noise — the same construction the
// float-oracle corpus tests use.
func awgnLLR(rng *rand.Rand, coded []uint8, ebn0dB float64) []float64 {
	esn0 := math.Pow(10, ebn0dB/10) / 3
	sigma := math.Sqrt(1 / (2 * esn0))
	llr := make([]float64, len(coded))
	for i, b := range coded {
		x := 1.0
		if b == 1 {
			x = -1
		}
		y := x + sigma*rng.NormFloat64()
		llr[i] = 2 * y / (sigma * sigma)
	}
	return llr
}

// TestQuantMatchesOracleCorpus mirrors the float-oracle corpus inputs
// (noiseless mag-8 LLRs across the size range, then fixed-seed AWGN
// trials) and requires the quantized decoder's payload to be
// bit-identical to the float64 oracle's.
func TestQuantMatchesOracleCorpus(t *testing.T) {
	t.Run("noiseless", func(t *testing.T) {
		for _, k := range []int{40, 112, 512, 1056, 6144} {
			t.Run(sizeName(k), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(k)))
				c, err := NewCodec(k)
				if err != nil {
					t.Fatal(err)
				}
				info := randBits(rng, k)
				coded := c.Encode(info)
				llr := bitsToLLR(coded, 8)
				want := c.Decode(llr, 3)
				got, half := c.DecodeQuant(llr, DecodeOpts{Iterations: 3})
				if half < 1 {
					t.Fatalf("halfIters = %d", half)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("k=%d: bit %d differs from oracle", k, i)
					}
				}
			})
		}
	})
	t.Run("awgn", func(t *testing.T) {
		const k = 512
		c, err := NewCodec(k)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 20; trial++ {
			info := randBits(rng, k)
			llr := awgnLLR(rng, c.Encode(info), 1.5)
			want := c.Decode(llr, 6)
			got, _ := c.DecodeQuant(llr, DecodeOpts{Iterations: 6})
			diff := 0
			for i := range want {
				if got[i] != want[i] {
					diff++
				}
			}
			if diff != 0 {
				t.Fatalf("trial %d: %d/%d payload bits differ from oracle", trial, diff, k)
			}
		}
	})
}

// TestQuantWindowDeterminism runs the same decode serially and through
// Parallel shims of several widths (including an out-of-order one) and
// requires bit-identical decisions and identical half-iteration counts.
func TestQuantWindowDeterminism(t *testing.T) {
	const k = 6144
	c, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	info := randBits(rng, k)
	llr := awgnLLR(rng, c.Encode(info), 0.8)

	ref, refHalf := c.DecodeQuant(llr, DecodeOpts{Iterations: 6})

	shims := map[string]Parallel{
		"reverse": func(n int, fn func(int)) {
			for i := n - 1; i >= 0; i-- {
				fn(i)
			}
		},
		"goroutines": func(n int, fn func(int)) {
			done := make(chan int)
			for i := 0; i < n; i++ {
				go func(i int) { fn(i); done <- i }(i)
			}
			for i := 0; i < n; i++ {
				<-done
			}
		},
	}
	for name, p := range shims {
		t.Run(name, func(t *testing.T) {
			got, half := c.DecodeQuant(llr, DecodeOpts{Iterations: 6, Par: p})
			if half != refHalf {
				t.Fatalf("halfIters = %d, serial ran %d", half, refHalf)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("bit %d differs from serial decode", i)
				}
			}
		})
	}
}

// TestQuantArenaMatchesHeap pins the arena-backed decode to the
// heap-backed one, and checks LIFO bracketing leaves the arena reusable.
func TestQuantArenaMatchesHeap(t *testing.T) {
	const k = 1056
	c, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	info := randBits(rng, k)
	llr := awgnLLR(rng, c.Encode(info), 1.2)
	want, wantHalf := c.DecodeQuant(llr, DecodeOpts{Iterations: 5})

	ws := workspace.New()
	for round := 0; round < 3; round++ {
		m := ws.Mark()
		got, half := c.DecodeQuantIn(ws, llr, DecodeOpts{Iterations: 5})
		if half != wantHalf {
			t.Fatalf("round %d: halfIters = %d, want %d", round, half, wantHalf)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: bit %d differs between arena and heap", round, i)
			}
		}
		ws.Release(m)
	}
}

// TestQuantEarlyTermination checks the two gates: realized half-iteration
// counts drop as SNR rises (CRC gate), and decoding a clean block with a
// CRC gate stops almost immediately.
func TestQuantEarlyTermination(t *testing.T) {
	const k = 1056
	c, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	info := randBits(rng, k)
	// Gate on payload parity with the transmitted block — a stand-in CRC
	// with the same contract, letting the test observe gate behaviour
	// without layering a real checksum into the block.
	match := func(bits []uint8) bool {
		for i := range bits {
			if bits[i] != info[i] {
				return false
			}
		}
		return true
	}
	coded := c.Encode(info)
	mean := func(ebn0 float64) float64 {
		r := rand.New(rand.NewSource(99))
		total := 0
		const trials = 10
		for i := 0; i < trials; i++ {
			_, half := c.DecodeQuant(awgnLLR(r, coded, ebn0), DecodeOpts{Iterations: 8, Check: match})
			total += half
		}
		return float64(total) / trials
	}
	low, high := mean(0.5), mean(4.0)
	if high >= low {
		t.Fatalf("half-iterations did not drop with SNR: %.1f at 0.5dB vs %.1f at 4dB", low, high)
	}
	if high > 3 {
		t.Fatalf("high-SNR decode took %.1f half-iterations, want <= 3", high)
	}
}

// TestQuantCRCGateConsistency checks the gate never accepts a payload the
// float oracle rejects: across low-SNR trials where decoding fails, a
// gate that only matches the true payload must never fire, and the
// returned payload must disagree with the gate exactly when the oracle's
// does.
func TestQuantCRCGateConsistency(t *testing.T) {
	const k = 256
	c, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	gateAccepts := 0
	for trial := 0; trial < 30; trial++ {
		info := randBits(rng, k)
		llr := awgnLLR(rng, c.Encode(info), -1.5)
		match := func(bits []uint8) bool {
			for i := range bits {
				if bits[i] != info[i] {
					return false
				}
			}
			return true
		}
		got, _ := c.DecodeQuant(llr, DecodeOpts{Iterations: 6, Check: match})
		if match(got) {
			gateAccepts++
			// When the gate fired, the payload must be the true one —
			// the gate can only pass on a correct payload by
			// construction, so a fire with wrong bits is impossible;
			// this asserts the decoder returned the accepted buffer.
			for i := range info {
				if got[i] != info[i] {
					t.Fatalf("trial %d: gate accepted a wrong payload", trial)
				}
			}
		}
	}
	t.Logf("gate accepted %d/30 at -1.5dB", gateAccepts)
}

// TestQuantBLERSweep pins the quantization loss: across an SNR ladder in
// 0.1 dB steps, the quantized decoder's block-error count at SNR x must
// be no worse than the float oracle's at x - 0.1 dB on identical noise
// realizations — i.e. the int8 path gives up at most 0.1 dB, measured
// around the oracle's ~1% BLER operating point.
func TestQuantBLERSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("BLER sweep is slow")
	}
	const k = 512
	const trials = 120
	c, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	snrs := []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	// Fixed seed per run: float and int8 decode identical noise
	// realizations at every SNR, so the comparison is paired and the
	// test fully deterministic.
	run := func(kernel Kernel, ebn0 float64) int {
		rng := rand.New(rand.NewSource(42))
		errs := 0
		for trial := 0; trial < trials; trial++ {
			info := randBits(rng, k)
			llr := awgnLLR(rng, c.Encode(info), ebn0)
			var dec []uint8
			if kernel == KernelFloat64 {
				dec = c.Decode(llr, 6)
			} else {
				dec, _ = c.DecodeQuant(llr, DecodeOpts{Iterations: 6})
			}
			for i := range info {
				if dec[i] != info[i] {
					errs++
					break
				}
			}
		}
		return errs
	}
	floatErrs := make([]int, len(snrs))
	quantErrs := make([]int, len(snrs))
	for i, s := range snrs {
		floatErrs[i] = run(KernelFloat64, s)
		quantErrs[i] = run(KernelInt8, s)
		t.Logf("%.1f dB: float %d/%d quant %d/%d", s, floatErrs[i], trials, quantErrs[i], trials)
	}
	// Quantization loss <= 0.1 dB: at every rung, int8 at SNR x must be
	// no worse than float at x-0.1dB (one rung lower) — checked through
	// the region bracketing the oracle's 1% BLER point.
	for i := 1; i < len(snrs); i++ {
		if quantErrs[i] > floatErrs[i-1] {
			t.Errorf("quant at %.1f dB (%d errs) worse than float at %.1f dB (%d errs): loss > 0.1 dB",
				snrs[i], quantErrs[i], snrs[i-1], floatErrs[i-1])
		}
	}
}

// TestSegmentOptsMatchesLegacy checks the options-based segmented decode
// agrees with the legacy float path on payload for both kernels, across
// single- and multi-block transport sizes.
func TestSegmentOptsMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, b := range []int{120, 4000, 9000} {
		t.Run(fmt.Sprintf("b%d", b), func(t *testing.T) {
			s, err := NewSegmentation(b)
			if err != nil {
				t.Fatal(err)
			}
			tb := randBits(rng, b)
			llr := awgnLLR(rng, s.Encode(tb), 1.5)
			want, wantOK := s.Decode(llr, 5)

			// The float64 kernel must reproduce the legacy decode
			// exactly — it is the same code path.
			got, ok, half := s.DecodeOptsInto(nil, nil, llr, SegDecodeOpts{Iterations: 5, Kernel: KernelFloat64})
			if ok != wantOK || len(got) != len(want) {
				t.Fatalf("float kernel: ok=%v len=%d, legacy ok=%v len=%d", ok, len(got), wantOK, len(want))
			}
			if half < 2 {
				t.Fatalf("float kernel: halfIters = %d", half)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("float kernel: bit %d differs from legacy decode", i)
				}
			}

			// The int8 kernel may outperform the float oracle (extrinsic
			// scaling recovers max-log loss), so the invariant is: when
			// it reports ok, the payload is the transmitted block.
			got, ok, half = s.DecodeOptsInto(nil, nil, llr, SegDecodeOpts{Iterations: 5, Kernel: KernelInt8})
			if half < 1 || len(got) != b {
				t.Fatalf("int8 kernel: halfIters=%d len=%d", half, len(got))
			}
			if !ok {
				t.Fatalf("int8 kernel failed a block the test expects decodable")
			}
			for i := range tb {
				if got[i] != tb[i] {
					t.Fatalf("int8 kernel: payload bit %d wrong", i)
				}
			}
		})
	}
}

func BenchmarkDecodeQuant(b *testing.B) {
	for _, k := range []int{512, 6144} {
		b.Run(sizeName(k), func(b *testing.B) {
			c, err := NewCodec(k)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			info := randBits(rng, k)
			llr := awgnLLR(rng, c.Encode(info), 1.5)
			ws := workspace.New()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := ws.Mark()
				c.DecodeQuantIn(ws, llr, DecodeOpts{Iterations: 5})
				ws.Release(m)
			}
			b.SetBytes(int64(k) / 8)
		})
	}
}
