package turbo

import (
	"testing"
)

// FuzzSegmentationRoundTrip drives arbitrary transport-block sizes and bit
// patterns through segmentation, encoding and noiseless decoding.
func FuzzSegmentationRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint64(0))
	f.Add(uint16(40), uint64(0xDEADBEEF))
	f.Add(uint16(6144), uint64(1))
	f.Add(uint16(7000), uint64(42))
	f.Fuzz(func(t *testing.T, szRaw uint16, pattern uint64) {
		b := int(szRaw)%12000 + 1
		s, err := NewSegmentation(b)
		if err != nil {
			t.Fatalf("B=%d: %v", b, err)
		}
		tb := make([]uint8, b)
		for i := range tb {
			tb[i] = uint8((pattern >> (uint(i) % 64)) & 1)
		}
		got, ok := s.Decode(bitsToLLR(s.Encode(tb), 6), 2)
		if !ok && s.PerCRC {
			t.Fatalf("B=%d: clean decode failed per-block CRC", b)
		}
		if len(got) != b {
			t.Fatalf("B=%d: decoded %d bits", b, len(got))
		}
		for i := range tb {
			if got[i] != tb[i] {
				t.Fatalf("B=%d: bit %d corrupted", b, i)
			}
		}
	})
}

// FuzzTurboQuantized drives random LLR realisations and block lengths
// through the int8 sliding-window decoder against the float64 oracle.
// On clean inputs (every LLR has the transmitted sign and dominant
// magnitude) both kernels must recover the payload exactly; on noisy or
// saturation-spiked inputs the quantized decoder must still return
// well-formed output, stay within its iteration budget, and decode
// bit-identically under window fan-out — the properties that hold for
// arbitrary garbage, where payload parity legitimately may not.
func FuzzTurboQuantized(f *testing.F) {
	f.Add(uint16(0), uint64(1), uint8(0), false)
	f.Add(uint16(3), uint64(7), uint8(20), false)
	f.Add(uint16(50), uint64(42), uint8(200), true)
	f.Add(uint16(187), uint64(0xDEADBEEF), uint8(255), false)
	f.Fuzz(func(t *testing.T, kSel uint16, seed uint64, mag uint8, spike bool) {
		ks := ValidBlockSizes()
		k := ks[int(kSel)%len(ks)]
		if k > 2048 {
			k = 2048 // bound per-exec cost; fan-out still reached (nw up to 16)
		}
		k, _ = SmallestValidBlock(k)
		c, err := NewCodec(k)
		if err != nil {
			t.Fatal(err)
		}
		// splitmix64: deterministic noise from the fuzz seed alone.
		state := seed
		next := func() uint64 {
			state += 0x9E3779B97F4A7C15
			z := state
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			return z ^ (z >> 31)
		}
		info := make([]uint8, k)
		for i := range info {
			info[i] = uint8(next() & 1)
		}
		coded := c.Encode(info)
		// Signed LLRs at magnitude 8 plus uniform noise of amplitude
		// mag/32 (0..~8): below amplitude 4 every LLR keeps its sign, so
		// even hard decision is error-free and decode success is certain.
		amp := float64(mag) / 32
		llr := make([]float64, len(coded))
		for i, b := range coded {
			s := 8.0
			if b == 1 {
				s = -8
			}
			u := float64(next()%4097)/2048 - 1 // [-1, 1]
			llr[i] = s + amp*u
		}
		if spike {
			// Saturation regime: one huge-magnitude sample compresses the
			// per-block quantization scale for everything else.
			llr[int(next()%uint64(len(llr)))] *= 50
		}
		const iters = 6
		opts := DecodeOpts{Iterations: iters}
		qb, qh := c.DecodeQuant(llr, opts)
		if len(qb) != k {
			t.Fatalf("K=%d: quant decoded %d bits", k, len(qb))
		}
		if qh < 1 || qh > 2*iters {
			t.Fatalf("K=%d: %d half-iterations outside [1, %d]", k, qh, 2*iters)
		}
		// Window fan-out determinism: reverse execution order must be
		// bit-identical (including the realized half-iteration count).
		po := opts
		po.Par = func(n int, fn func(int)) {
			for i := n - 1; i >= 0; i-- {
				fn(i)
			}
		}
		qb2, qh2 := c.DecodeQuant(llr, po)
		if qh2 != qh {
			t.Fatalf("K=%d: fan-out changed half-iterations %d -> %d", k, qh, qh2)
		}
		for i := range qb {
			if qb[i] != qb2[i] {
				t.Fatalf("K=%d: fan-out changed decision bit %d", k, i)
			}
		}
		if amp < 4 && !spike {
			// Clean regime: both kernels must agree with the transmitted
			// payload (and therefore with each other).
			fb := c.Decode(llr, iters)
			for i := range info {
				if qb[i] != info[i] {
					t.Fatalf("K=%d amp=%.2f: quant bit %d wrong on clean input", k, amp, i)
				}
				if fb[i] != info[i] {
					t.Fatalf("K=%d amp=%.2f: oracle bit %d wrong on clean input", k, amp, i)
				}
			}
		}
	})
}

// FuzzRateMatchRoundTrip drives arbitrary (K, E, rv) combinations through
// rate matching and soft de-rate-matching.
func FuzzRateMatchRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint32(100), uint8(0), uint64(7))
	f.Add(uint16(50), uint32(9000), uint8(2), uint64(0))
	f.Add(uint16(187), uint32(1), uint8(3), uint64(0xFFFF))
	f.Fuzz(func(t *testing.T, kSel uint16, eRaw uint32, rvRaw uint8, pattern uint64) {
		ks := ValidBlockSizes()
		k := ks[int(kSel)%len(ks)]
		if k > 2048 {
			k = 2048
		}
		k, _ = SmallestValidBlock(k)
		rm, err := NewRateMatcher(k)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCodec(k)
		if err != nil {
			t.Fatal(err)
		}
		e := int(eRaw)%(4*k) + 1
		rv := int(rvRaw) % MaxRVs
		info := make([]uint8, k)
		for i := range info {
			info[i] = uint8((pattern >> (uint(i) % 64)) & 1)
		}
		out := rm.Match(c.Encode(info), e, rv)
		if len(out) != e {
			t.Fatalf("K=%d E=%d: got %d bits", k, e, len(out))
		}
		// Accumulation must place exactly e contributions.
		acc := make([]float64, CodedLen(k))
		ones := make([]float64, e)
		for i := range ones {
			ones[i] = 1
		}
		rm.Accumulate(acc, ones, rv)
		var total float64
		for _, v := range acc {
			total += v
		}
		if total != float64(e) {
			t.Fatalf("K=%d E=%d rv=%d: %g contributions", k, e, rv, total)
		}
	})
}
