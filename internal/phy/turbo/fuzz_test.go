package turbo

import (
	"testing"
)

// FuzzSegmentationRoundTrip drives arbitrary transport-block sizes and bit
// patterns through segmentation, encoding and noiseless decoding.
func FuzzSegmentationRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint64(0))
	f.Add(uint16(40), uint64(0xDEADBEEF))
	f.Add(uint16(6144), uint64(1))
	f.Add(uint16(7000), uint64(42))
	f.Fuzz(func(t *testing.T, szRaw uint16, pattern uint64) {
		b := int(szRaw)%12000 + 1
		s, err := NewSegmentation(b)
		if err != nil {
			t.Fatalf("B=%d: %v", b, err)
		}
		tb := make([]uint8, b)
		for i := range tb {
			tb[i] = uint8((pattern >> (uint(i) % 64)) & 1)
		}
		got, ok := s.Decode(bitsToLLR(s.Encode(tb), 6), 2)
		if !ok && s.PerCRC {
			t.Fatalf("B=%d: clean decode failed per-block CRC", b)
		}
		if len(got) != b {
			t.Fatalf("B=%d: decoded %d bits", b, len(got))
		}
		for i := range tb {
			if got[i] != tb[i] {
				t.Fatalf("B=%d: bit %d corrupted", b, i)
			}
		}
	})
}

// FuzzRateMatchRoundTrip drives arbitrary (K, E, rv) combinations through
// rate matching and soft de-rate-matching.
func FuzzRateMatchRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint32(100), uint8(0), uint64(7))
	f.Add(uint16(50), uint32(9000), uint8(2), uint64(0))
	f.Add(uint16(187), uint32(1), uint8(3), uint64(0xFFFF))
	f.Fuzz(func(t *testing.T, kSel uint16, eRaw uint32, rvRaw uint8, pattern uint64) {
		ks := ValidBlockSizes()
		k := ks[int(kSel)%len(ks)]
		if k > 2048 {
			k = 2048
		}
		k, _ = SmallestValidBlock(k)
		rm, err := NewRateMatcher(k)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCodec(k)
		if err != nil {
			t.Fatal(err)
		}
		e := int(eRaw)%(4*k) + 1
		rv := int(rvRaw) % MaxRVs
		info := make([]uint8, k)
		for i := range info {
			info[i] = uint8((pattern >> (uint(i) % 64)) & 1)
		}
		out := rm.Match(c.Encode(info), e, rv)
		if len(out) != e {
			t.Fatalf("K=%d E=%d: got %d bits", k, e, len(out))
		}
		// Accumulation must place exactly e contributions.
		acc := make([]float64, CodedLen(k))
		ones := make([]float64, e)
		for i := range ones {
			ones[i] = 1
		}
		rm.Accumulate(acc, ones, rv)
		var total float64
		for _, v := range acc {
			total += v
		}
		if total != float64(e) {
			t.Fatalf("K=%d E=%d rv=%d: %g contributions", k, e, rv, total)
		}
	})
}
