package sequence

import (
	"math"
	"math/cmplx"
	"testing"

	"ltephy/internal/phy/fft"
)

func TestZadoffChuConstantAmplitude(t *testing.T) {
	for _, tc := range []struct{ q, n int }{{1, 11}, {5, 31}, {25, 139}, {7, 2399}} {
		seq := ZadoffChu(tc.q, tc.n)
		for i, v := range seq {
			if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
				t.Fatalf("q=%d n=%d: |x[%d]| = %g, want 1", tc.q, tc.n, i, cmplx.Abs(v))
			}
		}
	}
}

// TestZadoffChuAutocorrelation verifies the zero-autocorrelation property:
// for prime n, the circular autocorrelation at any nonzero lag vanishes.
func TestZadoffChuAutocorrelation(t *testing.T) {
	const q, n = 5, 139
	seq := ZadoffChu(q, n)
	for lag := 1; lag < n; lag++ {
		var sum complex128
		for i := 0; i < n; i++ {
			sum += seq[i] * cmplx.Conj(seq[(i+lag)%n])
		}
		if cmplx.Abs(sum) > 1e-8*float64(n) {
			t.Fatalf("lag %d: |autocorr| = %g, want ~0", lag, cmplx.Abs(sum))
		}
	}
}

func TestZadoffChuFlatSpectrum(t *testing.T) {
	// A CAZAC sequence has a perfectly flat DFT magnitude; this is what
	// makes the matched filter + window channel estimator unbiased.
	const q, n = 3, 139
	seq := ZadoffChu(q, n)
	spec := make([]complex128, n)
	fft.New(n).Forward(spec, seq)
	want := math.Sqrt(float64(n))
	for k, v := range spec {
		if math.Abs(cmplx.Abs(v)-want) > 1e-6*want {
			t.Fatalf("bin %d: |X| = %g, want %g", k, cmplx.Abs(v), want)
		}
	}
}

func TestZadoffChuPanics(t *testing.T) {
	for _, tc := range []struct{ q, n int }{{2, 4}, {0, 5}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ZadoffChu(%d,%d) did not panic", tc.q, tc.n)
				}
			}()
			ZadoffChu(tc.q, tc.n)
		}()
	}
}

func TestBaseDMRSLengthsAndModulus(t *testing.T) {
	for _, n := range []int{1, 2, 24, 36, 144, 600, 2400} {
		seq := BaseDMRS(n)
		if len(seq) != n {
			t.Fatalf("n=%d: length %d", n, len(seq))
		}
		for i, v := range seq {
			if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
				t.Fatalf("n=%d: |r[%d]| = %g, want 1", n, i, cmplx.Abs(v))
			}
		}
	}
}

func TestLayerShiftSpacing(t *testing.T) {
	const n = 2400
	prev := -1
	for l := 0; l < MaxLayers; l++ {
		s := LayerShift(l, n)
		if s != l*n/MaxLayers {
			t.Errorf("layer %d shift = %d, want %d", l, s, l*n/MaxLayers)
		}
		if s <= prev && l > 0 {
			t.Errorf("shifts not increasing: layer %d shift %d", l, s)
		}
		prev = s
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("LayerShift(4, n) did not panic")
			}
		}()
		LayerShift(MaxLayers, n)
	}()
}

// TestLayerDMRSIsTimeShift confirms that the per-layer phase ramp equals a
// cyclic time shift: IFFT(layer sequence) == IFFT(base) rotated by the
// layer's shift. This is the property the whole channel-estimation chain
// (matched filter -> IFFT -> window -> FFT) depends on.
func TestLayerDMRSIsTimeShift(t *testing.T) {
	const n = 144
	base := BaseDMRS(n)
	p := fft.New(n)
	tdBase := make([]complex128, n)
	p.Inverse(tdBase, base)
	for l := 0; l < MaxLayers; l++ {
		ld := LayerDMRS(base, l)
		td := make([]complex128, n)
		p.Inverse(td, ld)
		shift := LayerShift(l, n)
		for i := 0; i < n; i++ {
			want := tdBase[(i-shift+n)%n]
			if cmplx.Abs(td[i]-want) > 1e-9 {
				t.Fatalf("layer %d: time sample %d = %v, want %v", l, i, td[i], want)
			}
		}
	}
}

// TestLayerOrthogonality checks that matched-filtering layer a's sequence
// against layer b's concentrates energy at distinct time offsets, so the
// estimator's windows do not overlap.
func TestLayerOrthogonality(t *testing.T) {
	const n = 288
	base := BaseDMRS(n)
	p := fft.New(n)
	for a := 0; a < MaxLayers; a++ {
		for b := 0; b < MaxLayers; b++ {
			// Correlate: conj(seq_a) * seq_b in frequency == time impulse
			// at shift(b) - shift(a) when the base is CAZAC-like.
			prod := make([]complex128, n)
			sa, sb := LayerDMRS(base, a), LayerDMRS(base, b)
			for k := 0; k < n; k++ {
				prod[k] = sb[k] * cmplx.Conj(sa[k])
			}
			td := make([]complex128, n)
			p.Inverse(td, prod)
			// Find the peak; it must sit near shift(b)-shift(a) and carry
			// most of the energy.
			peakIdx, peak := 0, 0.0
			var total float64
			for i, v := range td {
				m := cmplx.Abs(v)
				total += m * m
				if m > peak {
					peak, peakIdx = m, i
				}
			}
			wantIdx := ((LayerShift(b, n)-LayerShift(a, n))%n + n) % n
			if d := (peakIdx - wantIdx + n) % n; d > 2 && d < n-2 {
				t.Errorf("layers (%d,%d): peak at %d, want near %d", a, b, peakIdx, wantIdx)
			}
			if peak*peak < 0.5*total {
				t.Errorf("layers (%d,%d): correlation peak carries only %.1f%% of energy",
					a, b, 100*peak*peak/total)
			}
		}
	}
}

func TestGoldKnownProperties(t *testing.T) {
	// Deterministic for a given cinit, different across cinits, and
	// balanced (roughly half ones).
	a := Gold(0x1234, 4096)
	b := Gold(0x1234, 4096)
	c := Gold(0x1235, 4096)
	same, diff, ones := true, 0, 0
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff++
		}
		ones += int(a[i])
	}
	if !same {
		t.Error("Gold not deterministic for equal cinit")
	}
	if diff < 1500 {
		t.Errorf("Gold sequences for adjacent cinits differ in only %d/4096 bits", diff)
	}
	if ones < 1800 || ones > 2300 {
		t.Errorf("Gold sequence unbalanced: %d/4096 ones", ones)
	}
	for i, v := range a {
		if v > 1 {
			t.Fatalf("Gold bit %d = %d, want 0 or 1", i, v)
		}
	}
}

func TestGoldZeroLength(t *testing.T) {
	if got := Gold(1, 0); len(got) != 0 {
		t.Errorf("Gold(1,0) length %d, want 0", len(got))
	}
}

func BenchmarkBaseDMRS2400(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BaseDMRS(2400)
	}
}

func BenchmarkGold(b *testing.B) {
	b.SetBytes(8192 / 8)
	for i := 0; i < b.N; i++ {
		Gold(0xACE1, 8192)
	}
}
