// Package sequence generates the deterministic reference sequences the LTE
// uplink uses: Zadoff-Chu demodulation reference signals (DMRS, TS 36.211
// §5.5) and the length-31 Gold pseudo-random sequence (TS 36.211 §7.2).
//
// The uplink receiver's channel-estimation stage correlates the received
// reference symbol against these known sequences (the paper's "matched
// filter" kernel). Layers are separated by cyclic time shifts of the same
// base sequence, which in the frequency domain are linear phase ramps; the
// estimator's IFFT→window→FFT chain isolates one layer's channel impulse
// response by windowing around its shift.
package sequence

import (
	"fmt"
	"math"
	"math/cmplx"
)

// MaxLayers is the maximum number of spatial layers supported in the LTE
// Advanced uplink (TS 36.211; the paper's Section II-B). Cyclic shifts are
// spaced N/MaxLayers samples apart so that up to four layers separate
// cleanly in the time domain.
const MaxLayers = 4

// ZadoffChu returns the length-n Zadoff-Chu sequence with root q:
//
//	x_q(m) = exp(-i*pi*q*m*(m+1)/n), m = 0..n-1
//
// n must be odd and prime for the ideal constant-amplitude zero-
// autocorrelation property; this constructor only requires n >= 1 and
// gcd(q, n) == 1, which preserves constant amplitude.
func ZadoffChu(q, n int) []complex128 {
	if n < 1 {
		panic(fmt.Sprintf("sequence: invalid Zadoff-Chu length %d", n))
	}
	if gcd(q, n) != 1 {
		panic(fmt.Sprintf("sequence: root %d not coprime with length %d", q, n))
	}
	seq := make([]complex128, n)
	for m := 0; m < n; m++ {
		// Reduce the quadratic argument modulo 2n before converting to an
		// angle so precision holds for long sequences.
		a := (q * m % (2 * n)) * ((m + 1) % (2 * n)) % (2 * n)
		theta := -math.Pi * float64(a) / float64(n)
		seq[m] = complex(math.Cos(theta), math.Sin(theta))
	}
	return seq
}

// largestPrimeBelow returns the largest prime <= n (n >= 2).
func largestPrimeBelow(n int) int {
	for p := n; p >= 2; p-- {
		if isPrime(p) {
			return p
		}
	}
	return 2
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// BaseDMRS returns the frequency-domain base reference sequence for an
// allocation of n subcarriers: the largest-prime-length Zadoff-Chu sequence
// cyclically extended to n (TS 36.211 §5.5.1.1). Unlike the standard, the
// cyclic extension is used for all lengths, including those below three
// PRBs where 36.211 tabulates special QPSK sequences; the benchmark's
// workload is insensitive to that substitution (documented in DESIGN.md).
func BaseDMRS(n int) []complex128 {
	if n < 1 {
		panic(fmt.Sprintf("sequence: invalid DMRS length %d", n))
	}
	if n < 3 {
		// Degenerate allocations: fall back to a unit-modulus ramp.
		seq := make([]complex128, n)
		for i := range seq {
			theta := -math.Pi * float64(i*i) / float64(n)
			seq[i] = cmplx.Exp(complex(0, theta))
		}
		return seq
	}
	nzc := largestPrimeBelow(n)
	// Root choice: TS 36.211 derives u from the group hop pattern; a fixed
	// mid-range root keeps the benchmark deterministic.
	q := nzc/3 + 1
	if gcd(q, nzc) != 1 { // only possible if q == nzc, which nzc/3+1 < nzc prevents; defensive
		q = 1
	}
	zc := ZadoffChu(q, nzc)
	seq := make([]complex128, n)
	for i := range seq {
		seq[i] = zc[i%nzc]
	}
	return seq
}

// LayerShift returns the cyclic time-domain shift, in samples, assigned to
// the given layer for an allocation of n subcarriers. Shifts are spaced
// n/MaxLayers apart, the maximum separation for four layers.
func LayerShift(layer, n int) int {
	if layer < 0 || layer >= MaxLayers {
		panic(fmt.Sprintf("sequence: layer %d out of range [0,%d)", layer, MaxLayers))
	}
	return layer * (n / MaxLayers)
}

// LayerDMRS returns layer l's reference sequence: the base sequence with a
// frequency-domain phase ramp exp(-2*pi*i*k*shift/n), equivalent to a cyclic
// time shift by LayerShift(l, n) samples.
func LayerDMRS(base []complex128, layer int) []complex128 {
	n := len(base)
	shift := LayerShift(layer, n)
	out := make([]complex128, n)
	for k := range out {
		theta := -2 * math.Pi * float64((k*shift)%n) / float64(n)
		out[k] = base[k] * complex(math.Cos(theta), math.Sin(theta))
	}
	return out
}

// goldNc is the Gold-sequence warm-up length defined by TS 36.211 §7.2.
const goldNc = 1600

// Gold returns n bits of the length-31 Gold sequence c(i) defined in
// TS 36.211 §7.2, initialised with cinit:
//
//	x1(0)=1, x1(i)=0 for i=1..30
//	x2 initialised from cinit
//	c(i) = (x1(i+Nc) + x2(i+Nc)) mod 2, Nc = 1600
//
// It is used to generate deterministic scrambling/payload bits.
func Gold(cinit uint32, n int) []uint8 {
	if n < 0 {
		panic(fmt.Sprintf("sequence: negative Gold length %d", n))
	}
	out := make([]uint8, n)
	GoldInto(out, cinit)
	return out
}

// GoldInto fills dst with the first len(dst) bits of the Gold sequence for
// cinit — the allocation-free form of Gold for hot paths that reuse a
// scratch buffer.
func GoldInto(dst []uint8, cinit uint32) {
	var x1, x2 uint32
	x1 = 1
	x2 = cinit & 0x7FFFFFFF
	n := len(dst)
	for i := 0; i < goldNc+n; i++ {
		if i >= goldNc {
			dst[i-goldNc] = uint8((x1 ^ x2) & 1)
		}
		n1 := ((x1 >> 3) ^ x1) & 1
		n2 := ((x2 >> 3) ^ (x2 >> 2) ^ (x2 >> 1) ^ x2) & 1
		x1 = (x1 >> 1) | (n1 << 30)
		x2 = (x2 >> 1) | (n2 << 30)
	}
}
