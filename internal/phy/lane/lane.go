// Package lane implements the split-plane float32 data layout the
// receiver hot path runs on: a complex vector stored as two separate
// contiguous []float32 slices (the re plane and the im plane) instead of
// an array-of-structs []complex128.
//
// The layout is the one a base station's vector units (and the GPU
// channel-estimation formulations in the literature) consume: every
// kernel below is a stride-1 loop over the planes with the slice lengths
// hoisted so the Go compiler eliminates bounds checks and can keep the
// whole loop in registers. Against the complex128 AoS path this halves
// memory traffic per element and removes the real/imag shuffle from every
// load — the two effects that dominate ns/op in the transform-shaped
// stages (chanest, combine/despread) once allocation is off the hot path.
//
// Precision contract: float32 arithmetic carries ~7 decimal digits. The
// complex128 pipeline remains the accuracy oracle; the receiver's
// float32 path is validated against it across the full nPRB 2..200 sweep
// with pinned EVM-delta and LLR-divergence bounds (see
// internal/uplink's f32 accuracy tests and DESIGN.md §10 for the
// measured budget). Kernels that reduce over a whole vector (conjugate
// dot, power sums) accumulate in float64 so the reduction error does not
// grow with vector length.
//
// Memory comes from the caller: planes are ordinary slices, typically
// carved from a per-worker workspace.Arena via NewVecIn. All kernels are
// allocation-free and safe for concurrent use on disjoint planes.
package lane

import (
	"math"

	"ltephy/internal/phy/workspace"
)

// Vec is a split-plane complex vector: element k is
// complex(Re[k], Im[k]). Both planes always have equal length.
type Vec struct {
	Re, Im []float32
}

// NewVecIn carves a zeroed n-element vector from ws (heap when nil).
//
// vector's lifetime with its own Mark/Release.
//
//ltephy:owns-scratch — carve constructor: the caller brackets the
func NewVecIn(ws *workspace.Arena, n int) Vec {
	return Vec{Re: ws.Float32(n), Im: ws.Float32(n)}
}

// Len returns the vector length.
func (v Vec) Len() int { return len(v.Re) }

// Slice returns the sub-vector [lo, hi) sharing the same planes.
func (v Vec) Slice(lo, hi int) Vec {
	return Vec{Re: v.Re[lo:hi], Im: v.Im[lo:hi]}
}

// Pack converts an interleaved complex128 vector into split planes,
// rounding each component to float32. dre and dim must have the same
// length as src — this is the only conversion point between the
// complex128 world and the lane layout (the "job boundary" of the
// receiver's float32 path).
func Pack(dre, dim []float32, src []complex128) {
	n := len(src)
	dre = dre[:n]
	dim = dim[:n]
	for k := 0; k < n; k++ {
		v := src[k]
		dre[k] = float32(real(v))
		dim[k] = float32(imag(v))
	}
}

// Unpack converts split planes back to an interleaved complex128 vector.
// A Pack/Unpack round trip starting from float32-representable values is
// bit-exact: float32 -> float64 -> float32 is the identity conversion
// (FuzzLanePackUnpack pins this for all lengths including odd tails).
func Unpack(dst []complex128, sre, sim []float32) {
	n := len(dst)
	sre = sre[:n]
	sim = sim[:n]
	for k := 0; k < n; k++ {
		dst[k] = complex(float64(sre[k]), float64(sim[k]))
	}
}

// PackVec is Pack onto a Vec.
func PackVec(dst Vec, src []complex128) { Pack(dst.Re, dst.Im, src) }

// UnpackVec is Unpack from a Vec.
func UnpackVec(dst []complex128, src Vec) { Unpack(dst, src.Re, src.Im) }

// Mul computes d = a * b elementwise (complex multiply on planes).
func Mul(dre, dim, are, aim, bre, bim []float32) {
	n := len(dre)
	dim = dim[:n]
	are, aim = are[:n], aim[:n]
	bre, bim = bre[:n], bim[:n]
	for k := 0; k < n; k++ {
		ar, ai := are[k], aim[k]
		br, bi := bre[k], bim[k]
		dre[k] = ar*br - ai*bi
		dim[k] = ar*bi + ai*br
	}
}

// MulConj computes d = a * conj(b) elementwise — the matched-filter
// kernel (unit-modulus reference, so conjugate multiply inverts the
// known sequence).
func MulConj(dre, dim, are, aim, bre, bim []float32) {
	n := len(dre)
	dim = dim[:n]
	are, aim = are[:n], aim[:n]
	bre, bim = bre[:n], bim[:n]
	for k := 0; k < n; k++ {
		ar, ai := are[k], aim[k]
		br, bi := bre[k], bim[k]
		dre[k] = ar*br + ai*bi
		dim[k] = ai*br - ar*bi
	}
}

// MulAcc computes d += a * b elementwise — the antenna-combining
// multiply-accumulate: the combiner output accumulates one antenna's
// weighted contribution per call, stride-1 over subcarriers.
func MulAcc(dre, dim, are, aim, bre, bim []float32) {
	n := len(dre)
	dim = dim[:n]
	are, aim = are[:n], aim[:n]
	bre, bim = bre[:n], bim[:n]
	for k := 0; k < n; k++ {
		ar, ai := are[k], aim[k]
		br, bi := bre[k], bim[k]
		dre[k] += ar*br - ai*bi
		dim[k] += ar*bi + ai*br
	}
}

// MulConjAcc computes d += a * conj(b) elementwise.
func MulConjAcc(dre, dim, are, aim, bre, bim []float32) {
	n := len(dre)
	dim = dim[:n]
	are, aim = are[:n], aim[:n]
	bre, bim = bre[:n], bim[:n]
	for k := 0; k < n; k++ {
		ar, ai := are[k], aim[k]
		br, bi := bre[k], bim[k]
		dre[k] += ar*br + ai*bi
		dim[k] += ai*br - ar*bi
	}
}

// Axpy computes y += (ar + i*ai) * x: scaled vector accumulate with a
// scalar complex coefficient.
func Axpy(ar, ai float32, xre, xim, yre, yim []float32) {
	n := len(yre)
	yim = yim[:n]
	xre, xim = xre[:n], xim[:n]
	for k := 0; k < n; k++ {
		xr, xi := xre[k], xim[k]
		yre[k] += ar*xr - ai*xi
		yim[k] += ar*xi + ai*xr
	}
}

// Scale multiplies both planes by the real scalar s in place (the
// despread 1/sqrt(N) undo, inverse-transform normalisation).
func Scale(s float32, re, im []float32) {
	n := len(re)
	im = im[:n]
	for k := 0; k < n; k++ {
		re[k] *= s
	}
	for k := 0; k < n; k++ {
		im[k] *= s
	}
}

// ScaleC multiplies the vector by the complex scalar (cr + i*ci) in
// place — the residual-CFO de-rotation by a unit phasor.
func ScaleC(cr, ci float32, re, im []float32) {
	n := len(re)
	im = im[:n]
	for k := 0; k < n; k++ {
		r, i := re[k], im[k]
		re[k] = r*cr - i*ci
		im[k] = r*ci + i*cr
	}
}

// Mag2 writes the squared magnitude of each element into dst.
func Mag2(dst, re, im []float32) {
	n := len(dst)
	re, im = re[:n], im[:n]
	for k := 0; k < n; k++ {
		r, i := re[k], im[k]
		dst[k] = r*r + i*i
	}
}

// SumMag2 returns the total power sum |v[k]|^2, accumulated in float64
// so the reduction does not lose precision with vector length.
func SumMag2(re, im []float32) float64 {
	n := len(re)
	im = im[:n]
	var sum float64
	for k := 0; k < n; k++ {
		r, i := float64(re[k]), float64(im[k])
		sum += r*r + i*i
	}
	return sum
}

// DotConj returns sum_k a[k] * conj(b[k]) with float64 accumulation —
// the correlation reduction behind the CFO estimate.
func DotConj(are, aim, bre, bim []float32) (re, im float64) {
	n := len(are)
	aim = aim[:n]
	bre, bim = bre[:n], bim[:n]
	for k := 0; k < n; k++ {
		ar, ai := float64(are[k]), float64(aim[k])
		br, bi := float64(bre[k]), float64(bim[k])
		re += ar*br + ai*bi
		im += ai*br - ar*bi
	}
	return re, im
}

// SumDiffMag2 returns sum_k |a[k] - b[k]|^2 with float64 accumulation —
// the slot-difference power behind the noise-variance estimate.
func SumDiffMag2(are, aim, bre, bim []float32) float64 {
	n := len(are)
	aim = aim[:n]
	bre, bim = bre[:n], bim[:n]
	var sum float64
	for k := 0; k < n; k++ {
		dr := float64(are[k]) - float64(bre[k])
		di := float64(aim[k]) - float64(bim[k])
		sum += dr*dr + di*di
	}
	return sum
}

// maxHermDim bounds the Hermitian solver's matrix order: up to 4 layers
// (the MMSE Gram) and up to 8 receive antennas (the IRC covariance).
const maxHermDim = 8

// HermSolve solves A*X = B for X, where A is an n x n Hermitian
// positive-definite matrix (row-major split planes aRe/aIm of n*n) and
// B, X are n x m (row-major split planes of n*m). X may alias B. Only
// A's lower triangle (including the diagonal) is read.
//
// The solve is a float32 Cholesky factorisation A = L L^H followed by
// forward and back substitution — the per-subcarrier MMSE/IRC solve of
// the receiver, where A is the diagonally loaded Gram (or covariance)
// matrix, structurally Hermitian positive definite. It returns false
// when the factorisation hits a non-positive pivot (a numerically
// singular channel); the caller zeroes its output, matching the
// complex128 path's singular-channel handling. n must be <= 8.
func HermSolve(n, m int, aRe, aIm, bRe, bIm, xRe, xIm []float32) bool {
	// L planes on the stack: row-major n x n lower triangle.
	var lRe, lIm [maxHermDim * maxHermDim]float32
	for j := 0; j < n; j++ {
		// Diagonal pivot: real by Hermitian symmetry.
		d := aRe[j*n+j]
		for k := 0; k < j; k++ {
			d -= lRe[j*n+k]*lRe[j*n+k] + lIm[j*n+k]*lIm[j*n+k]
		}
		if !(d > 0) { // also rejects NaN
			return false
		}
		dj := float32(math.Sqrt(float64(d)))
		lRe[j*n+j] = dj
		lIm[j*n+j] = 0
		inv := 1 / dj
		for i := j + 1; i < n; i++ {
			sr, si := aRe[i*n+j], aIm[i*n+j]
			for k := 0; k < j; k++ {
				// L[i][k] * conj(L[j][k])
				ar, ai := lRe[i*n+k], lIm[i*n+k]
				br, bi := lRe[j*n+k], lIm[j*n+k]
				sr -= ar*br + ai*bi
				si -= ai*br - ar*bi
			}
			lRe[i*n+j] = sr * inv
			lIm[i*n+j] = si * inv
		}
	}
	if &xRe[0] != &bRe[0] {
		copy(xRe[:n*m], bRe[:n*m])
		copy(xIm[:n*m], bIm[:n*m])
	}
	// Forward solve L Y = B (Y overwrites X).
	for i := 0; i < n; i++ {
		inv := 1 / lRe[i*n+i]
		for c := 0; c < m; c++ {
			sr, si := xRe[i*m+c], xIm[i*m+c]
			for k := 0; k < i; k++ {
				ar, ai := lRe[i*n+k], lIm[i*n+k]
				br, bi := xRe[k*m+c], xIm[k*m+c]
				sr -= ar*br - ai*bi
				si -= ar*bi + ai*br
			}
			xRe[i*m+c] = sr * inv
			xIm[i*m+c] = si * inv
		}
	}
	// Back solve L^H X = Y: row i uses conj(L[k][i]) for k > i.
	for i := n - 1; i >= 0; i-- {
		inv := 1 / lRe[i*n+i]
		for c := 0; c < m; c++ {
			sr, si := xRe[i*m+c], xIm[i*m+c]
			for k := i + 1; k < n; k++ {
				// conj(L[k][i]) * X[k][c]
				ar, ai := lRe[k*n+i], -lIm[k*n+i]
				br, bi := xRe[k*m+c], xIm[k*m+c]
				sr -= ar*br - ai*bi
				si -= ar*bi + ai*br
			}
			xRe[i*m+c] = sr * inv
			xIm[i*m+c] = si * inv
		}
	}
	return true
}
