package lane

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzLanePackUnpack proves the split-plane pack/unpack conversion is a
// bit-exact round trip for arbitrary float32 payloads at every length,
// including odd tails: interpreting the fuzz input as raw float32 pairs,
// Unpack(planes) -> complex128 -> Pack must reproduce the planes bit for
// bit (float32 -> float64 widening is exact, and the narrowing conversion
// of a widened value is the identity). NaNs are compared by class, not
// payload, since the conversion pair may quieten signalling NaNs.
// `make fuzz-smoke` runs this target.
func FuzzLanePackUnpack(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7})                       // odd tail: not a multiple of 8
	f.Add(binary.LittleEndian.AppendUint32(nil, 0x7fc00001)) // NaN payload
	f.Add(binary.LittleEndian.AppendUint32(nil, 0x7f800000)) // +Inf
	f.Fuzz(func(t *testing.T, data []byte) {
		// Each element consumes 8 bytes (re, im); the remainder byte tail
		// exercises lengths that don't divide the input evenly.
		n := len(data) / 8
		re := make([]float32, n)
		im := make([]float32, n)
		for k := 0; k < n; k++ {
			re[k] = math.Float32frombits(binary.LittleEndian.Uint32(data[k*8:]))
			im[k] = math.Float32frombits(binary.LittleEndian.Uint32(data[k*8+4:]))
		}
		c := make([]complex128, n)
		Unpack(c, re, im)
		gre := make([]float32, n)
		gim := make([]float32, n)
		Pack(gre, gim, c)
		for k := 0; k < n; k++ {
			checkBitExact(t, "re", k, re[k], gre[k])
			checkBitExact(t, "im", k, im[k], gim[k])
		}
	})
}

func checkBitExact(t *testing.T, plane string, k int, want, got float32) {
	t.Helper()
	wb, gb := math.Float32bits(want), math.Float32bits(got)
	if wb == gb {
		return
	}
	// A signalling NaN may come back quiet; both must still be NaN.
	if math.IsNaN(float64(want)) && math.IsNaN(float64(got)) {
		return
	}
	t.Fatalf("%s[%d]: round trip %08x -> %08x", plane, k, wb, gb)
}
