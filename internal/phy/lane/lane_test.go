package lane

import (
	"math"
	"math/cmplx"
	"testing"

	"ltephy/internal/phy/workspace"
	"ltephy/internal/rng"
)

// randVecs returns n-element split planes and the equivalent complex128
// vector, with every component exactly float32-representable.
func randVecs(r *rng.RNG, n int) ([]float32, []float32, []complex128) {
	re := make([]float32, n)
	im := make([]float32, n)
	c := make([]complex128, n)
	for k := 0; k < n; k++ {
		re[k] = float32(r.NormFloat64())
		im[k] = float32(r.NormFloat64())
		c[k] = complex(float64(re[k]), float64(im[k]))
	}
	return re, im, c
}

// checkClose compares a split-plane result against a complex128
// reference elementwise within a float32-rounding tolerance.
func checkClose(t *testing.T, name string, re, im []float32, want []complex128, tol float64) {
	t.Helper()
	for k := range want {
		got := complex(float64(re[k]), float64(im[k]))
		if d := cmplx.Abs(got - want[k]); d > tol*(1+cmplx.Abs(want[k])) {
			t.Fatalf("%s[%d] = %v, want %v (|diff| %g)", name, k, got, want[k], d)
		}
	}
}

func TestElementwiseKernels(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 7, 24, 101} {
		are, aim, a := randVecs(r, n)
		bre, bim, b := randVecs(r, n)
		want := make([]complex128, n)
		dre, dim := make([]float32, n), make([]float32, n)

		Mul(dre, dim, are, aim, bre, bim)
		for k := range want {
			want[k] = a[k] * b[k]
		}
		checkClose(t, "Mul", dre, dim, want, 1e-6)

		MulConj(dre, dim, are, aim, bre, bim)
		for k := range want {
			want[k] = a[k] * cmplx.Conj(b[k])
		}
		checkClose(t, "MulConj", dre, dim, want, 1e-6)

		MulAcc(dre, dim, are, aim, bre, bim)
		for k := range want {
			want[k] += a[k] * b[k]
		}
		checkClose(t, "MulAcc", dre, dim, want, 1e-5)

		MulConjAcc(dre, dim, are, aim, bre, bim)
		for k := range want {
			want[k] += a[k] * cmplx.Conj(b[k])
		}
		checkClose(t, "MulConjAcc", dre, dim, want, 1e-5)

		alpha := complex(0.75, -1.25)
		yre, yim := append([]float32(nil), bre...), append([]float32(nil), bim...)
		Axpy(float32(real(alpha)), float32(imag(alpha)), are, aim, yre, yim)
		for k := range want {
			want[k] = b[k] + alpha*a[k]
		}
		checkClose(t, "Axpy", yre, yim, want, 1e-5)

		sre, sim := append([]float32(nil), are...), append([]float32(nil), aim...)
		Scale(0.5, sre, sim)
		for k := range want {
			want[k] = a[k] * 0.5
		}
		checkClose(t, "Scale", sre, sim, want, 1e-6)

		rot := cmplx.Exp(complex(0, 0.7))
		sre, sim = append([]float32(nil), are...), append([]float32(nil), aim...)
		ScaleC(float32(real(rot)), float32(imag(rot)), sre, sim)
		for k := range want {
			want[k] = a[k] * rot
		}
		checkClose(t, "ScaleC", sre, sim, want, 1e-5)

		mag := make([]float32, n)
		Mag2(mag, are, aim)
		for k := range a {
			w := real(a[k])*real(a[k]) + imag(a[k])*imag(a[k])
			if d := math.Abs(float64(mag[k]) - w); d > 1e-6*(1+w) {
				t.Fatalf("Mag2[%d] = %g, want %g", k, mag[k], w)
			}
		}
	}
}

func TestReductions(t *testing.T) {
	r := rng.New(2)
	n := 301
	are, aim, a := randVecs(r, n)
	bre, bim, b := randVecs(r, n)

	var wantPow float64
	var wantDot complex128
	var wantDiff float64
	for k := range a {
		wantPow += real(a[k])*real(a[k]) + imag(a[k])*imag(a[k])
		wantDot += a[k] * cmplx.Conj(b[k])
		d := a[k] - b[k]
		wantDiff += real(d)*real(d) + imag(d)*imag(d)
	}
	if got := SumMag2(are, aim); math.Abs(got-wantPow) > 1e-4*(1+wantPow) {
		t.Errorf("SumMag2 = %g, want %g", got, wantPow)
	}
	dr, di := DotConj(are, aim, bre, bim)
	if cmplx.Abs(complex(dr, di)-wantDot) > 1e-4*(1+cmplx.Abs(wantDot)) {
		t.Errorf("DotConj = (%g, %g), want %v", dr, di, wantDot)
	}
	if got := SumDiffMag2(are, aim, bre, bim); math.Abs(got-wantDiff) > 1e-4*(1+wantDiff) {
		t.Errorf("SumDiffMag2 = %g, want %g", got, wantDiff)
	}
}

// refHermSolve solves A X = B in complex128 by Gauss-Jordan, the oracle
// for the float32 Cholesky.
func refHermSolve(n, m int, a, b []complex128) []complex128 {
	aug := make([]complex128, n*(n+m))
	w := n + m
	for i := 0; i < n; i++ {
		copy(aug[i*w:i*w+n], a[i*n:(i+1)*n])
		copy(aug[i*w+n:(i+1)*w], b[i*m:(i+1)*m])
	}
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if cmplx.Abs(aug[r*w+col]) > cmplx.Abs(aug[p*w+col]) {
				p = r
			}
		}
		for c := 0; c < w; c++ {
			aug[p*w+c], aug[col*w+c] = aug[col*w+c], aug[p*w+c]
		}
		inv := 1 / aug[col*w+col]
		for c := 0; c < w; c++ {
			aug[col*w+c] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r*w+col]
			for c := 0; c < w; c++ {
				aug[r*w+c] -= f * aug[col*w+c]
			}
		}
	}
	x := make([]complex128, n*m)
	for i := 0; i < n; i++ {
		copy(x[i*m:(i+1)*m], aug[i*w+n:(i+1)*w])
	}
	return x
}

func TestHermSolveMatchesComplexSolve(t *testing.T) {
	r := rng.New(3)
	for _, shape := range []struct{ n, m int }{{1, 1}, {2, 4}, {3, 3}, {4, 4}, {4, 8}, {8, 4}} {
		n, m := shape.n, shape.m
		// A = H^H H + nv I for a random tall H: Hermitian positive definite,
		// the exact structure of the MMSE Gram matrix.
		rows := n + 2
		h := make([]complex128, rows*n)
		for i := range h {
			h[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		a := make([]complex128, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s complex128
				for k := 0; k < rows; k++ {
					s += cmplx.Conj(h[k*n+i]) * h[k*n+j]
				}
				a[i*n+j] = s
			}
			a[i*n+i] += 0.1
		}
		b := make([]complex128, n*m)
		for i := range b {
			b[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		want := refHermSolve(n, m, a, b)

		aRe, aIm := make([]float32, n*n), make([]float32, n*n)
		bRe, bIm := make([]float32, n*m), make([]float32, n*m)
		Pack(aRe, aIm, a)
		Pack(bRe, bIm, b)
		xRe, xIm := make([]float32, n*m), make([]float32, n*m)
		if !HermSolve(n, m, aRe, aIm, bRe, bIm, xRe, xIm) {
			t.Fatalf("n=%d m=%d: HermSolve reported singular on an HPD matrix", n, m)
		}
		checkClose(t, "HermSolve", xRe, xIm, want, 2e-4)

		// Aliased solve (X overwrites B) must give the same answer.
		if !HermSolve(n, m, aRe, aIm, bRe, bIm, bRe, bIm) {
			t.Fatalf("n=%d m=%d: aliased HermSolve reported singular", n, m)
		}
		for i := range xRe {
			if xRe[i] != bRe[i] || xIm[i] != bIm[i] {
				t.Fatalf("n=%d m=%d: aliased solve diverged at %d", n, m, i)
			}
		}
	}
}

func TestHermSolveSingular(t *testing.T) {
	// The all-zero matrix is the singular-channel case the receiver hits
	// with all-zero input data; the solver must report it, not NaN out.
	var aRe, aIm, bRe, bIm, xRe, xIm [4]float32
	if HermSolve(2, 2, aRe[:], aIm[:], bRe[:], bIm[:], xRe[:], xIm[:]) {
		t.Error("HermSolve accepted an all-zero matrix")
	}
}

func TestVecArena(t *testing.T) {
	ws := workspace.New()
	m := ws.Mark()
	v := NewVecIn(ws, 17)
	if v.Len() != 17 || len(v.Im) != 17 {
		t.Fatalf("NewVecIn planes %d/%d, want 17", len(v.Re), len(v.Im))
	}
	s := v.Slice(3, 9)
	if s.Len() != 6 {
		t.Fatalf("Slice len %d, want 6", s.Len())
	}
	ws.Release(m)

	hv := NewVecIn(nil, 5)
	if hv.Len() != 5 {
		t.Fatalf("nil-arena NewVecIn len %d, want 5", hv.Len())
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	r := rng.New(4)
	for _, n := range []int{0, 1, 2, 3, 15, 64, 129} {
		re, im, c := randVecs(r, n)
		gotC := make([]complex128, n)
		Unpack(gotC, re, im)
		for k := range c {
			if gotC[k] != c[k] {
				t.Fatalf("n=%d: Unpack[%d] = %v, want %v", n, k, gotC[k], c[k])
			}
		}
		gre, gim := make([]float32, n), make([]float32, n)
		Pack(gre, gim, gotC)
		for k := 0; k < n; k++ {
			if gre[k] != re[k] || gim[k] != im[k] {
				t.Fatalf("n=%d: pack/unpack round trip diverged at %d", n, k)
			}
		}
	}
}
