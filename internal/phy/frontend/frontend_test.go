package frontend

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"ltephy/internal/rng"
)

func TestForSubcarriers(t *testing.T) {
	cases := map[int]int{24: 128, 96: 128, 97: 256, 300: 512, 1200: 2048, 1536: 2048}
	for n, want := range cases {
		cfg, err := ForSubcarriers(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if cfg.FFTSize != want {
			t.Errorf("n=%d: FFT %d, want %d", n, cfg.FFTSize, want)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("n=%d: config invalid: %v", n, err)
		}
		// CP lengths scale with FFT size: first slightly longer.
		if cfg.CPFirst <= cfg.CPRest {
			t.Errorf("n=%d: CPFirst %d not longer than CPRest %d", n, cfg.CPFirst, cfg.CPRest)
		}
	}
	if _, err := ForSubcarriers(0); err == nil {
		t.Error("0 subcarriers accepted")
	}
	if _, err := ForSubcarriers(2000); err == nil {
		t.Error("oversized allocation accepted")
	}
}

func TestSlotSamplesReferenceNumerology(t *testing.T) {
	// At the 2048-point reference, a slot is 160+2048 + 6*(144+2048)
	// = 15360 samples — 0.5 ms at 30.72 Ms/s.
	cfg, err := ForSubcarriers(1200)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.SlotSamples(); got != 15360 {
		t.Errorf("slot samples = %d, want 15360", got)
	}
}

func randGrid(r *rng.RNG, cfg Config, symbols int) [][]complex128 {
	grid := make([][]complex128, symbols)
	for s := range grid {
		grid[s] = make([]complex128, cfg.FFTSize)
		for k := range grid[s] {
			grid[s][k] = r.ComplexNormal(1)
		}
	}
	return grid
}

func TestSynthesizeProcessRoundTrip(t *testing.T) {
	cfg, err := ForSubcarriers(300)
	if err != nil {
		t.Fatal(err)
	}
	grid := randGrid(rng.New(1), cfg, 14)
	samples, err := Synthesize(cfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 2 * cfg.SlotSamples()
	if len(samples) != wantLen {
		t.Fatalf("%d samples, want %d", len(samples), wantLen)
	}
	got, err := Process(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 14 {
		t.Fatalf("recovered %d symbols", len(got))
	}
	for s := range grid {
		for k := range grid[s] {
			if cmplx.Abs(got[s][k]-grid[s][k]) > 1e-9 {
				t.Fatalf("symbol %d bin %d: %v != %v", s, k, got[s][k], grid[s][k])
			}
		}
	}
}

// TestCPAbsorbsDelay is the reason cyclic prefixes exist: a channel delay
// shorter than the CP leaves each subcarrier multiplied by a pure phase,
// never smeared across symbols.
func TestCPAbsorbsDelay(t *testing.T) {
	cfg, err := ForSubcarriers(120)
	if err != nil {
		t.Fatal(err)
	}
	grid := randGrid(rng.New(2), cfg, 7)
	samples, err := Synthesize(cfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	delay := cfg.CPRest / 2
	delayed := make([]complex128, len(samples))
	copy(delayed[delay:], samples[:len(samples)-delay])
	got, err := Process(cfg, delayed)
	if err != nil {
		t.Fatal(err)
	}
	// Symbols after the first (which sees the zero head) must match up to
	// the per-bin linear phase exp(-2*pi*i*k*delay/N).
	for s := 1; s < len(got); s++ {
		for k := 0; k < cfg.FFTSize; k++ {
			if cmplx.Abs(grid[s][k]) < 1e-3 {
				continue
			}
			theta := -2 * math.Pi * float64(k*delay%cfg.FFTSize) / float64(cfg.FFTSize)
			want := grid[s][k] * cmplx.Exp(complex(0, theta))
			if cmplx.Abs(got[s][k]-want) > 1e-6 {
				t.Fatalf("symbol %d bin %d: delay not absorbed by CP", s, k)
			}
		}
	}
}

func TestProcessTruncatedInput(t *testing.T) {
	cfg, err := ForSubcarriers(60)
	if err != nil {
		t.Fatal(err)
	}
	grid := randGrid(rng.New(3), cfg, 3)
	samples, err := Synthesize(cfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Process(cfg, samples[:len(samples)-5]); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestFIRLowpassResponse(t *testing.T) {
	h := FIRLowpass(63, 0.2)
	// Unit DC gain.
	var dc float64
	for _, v := range h {
		dc += v
	}
	if math.Abs(dc-1) > 1e-12 {
		t.Errorf("DC gain %g", dc)
	}
	// Frequency response: passband (<0.15) near 1, stopband (>0.3) small.
	resp := func(f float64) float64 {
		var re, im float64
		for i, v := range h {
			re += v * math.Cos(2*math.Pi*f*float64(i))
			im -= v * math.Sin(2*math.Pi*f*float64(i))
		}
		return math.Hypot(re, im)
	}
	for _, f := range []float64{0.01, 0.05, 0.1, 0.15} {
		if g := resp(f); g < 0.95 || g > 1.05 {
			t.Errorf("passband gain at %g = %g", f, g)
		}
	}
	for _, f := range []float64{0.3, 0.4, 0.49} {
		if g := resp(f); g > 0.02 {
			t.Errorf("stopband gain at %g = %g", f, g)
		}
	}
}

// TestFilteredFrontendEVM: with the receive filter enabled, in-band
// subcarriers of interior symbols must come through with small error
// (guard-band subcarriers take the filter rolloff instead).
func TestFilteredFrontendEVM(t *testing.T) {
	cfg, err := ForSubcarriers(120)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FilterTaps = 129
	cfg.FilterCutoff = 0.45
	r := rng.New(4)
	// Populate only the in-band allocation (centred on DC).
	const n = 120
	grid := make([][]complex128, 7)
	for s := range grid {
		grid[s] = make([]complex128, cfg.FFTSize)
		for k := 0; k < n; k++ {
			grid[s][cfg.AllocationBin(k, n)] = r.ComplexNormal(1)
		}
	}
	noFilter := cfg
	noFilter.FilterTaps = 0
	samples, err := Synthesize(noFilter, grid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Process(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	var errPow, sigPow float64
	for s := 2; s < 5; s++ { // interior symbols avoid block-edge effects
		for k := 0; k < n; k++ {
			bin := cfg.AllocationBin(k, n)
			d := got[s][bin] - grid[s][bin]
			errPow += real(d)*real(d) + imag(d)*imag(d)
			v := grid[s][bin]
			sigPow += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	evm := math.Sqrt(errPow / sigPow)
	if evm > 0.05 {
		t.Errorf("in-band EVM %.3f after receive filtering, want < 0.05", evm)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{FFTSize: 100, CPFirst: 8, CPRest: 7, SymbolsPerSlot: 7},
		{FFTSize: 128, CPFirst: 0, CPRest: 9, SymbolsPerSlot: 7},
		{FFTSize: 128, CPFirst: 10, CPRest: 9, SymbolsPerSlot: 0},
		{FFTSize: 128, CPFirst: 10, CPRest: 9, SymbolsPerSlot: 7, FilterTaps: 4},
		{FFTSize: 128, CPFirst: 10, CPRest: 9, SymbolsPerSlot: 7, FilterTaps: 5, FilterCutoff: 0.7},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

// TestRoundTripProperty: any grid over any supported numerology round-trips.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, sel uint8, symCount uint8) bool {
		sizes := []int{24, 120, 300, 900}
		cfg, err := ForSubcarriers(sizes[int(sel)%len(sizes)])
		if err != nil {
			return false
		}
		syms := 1 + int(symCount)%10
		grid := randGrid(rng.New(seed), cfg, syms)
		samples, err := Synthesize(cfg, grid)
		if err != nil {
			return false
		}
		got, err := Process(cfg, samples)
		if err != nil || len(got) != syms {
			return false
		}
		for s := range grid {
			for k := range grid[s] {
				if cmplx.Abs(got[s][k]-grid[s][k]) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkProcess(b *testing.B) {
	cfg, _ := ForSubcarriers(1200)
	grid := randGrid(rng.New(5), cfg, 14)
	samples, _ := Synthesize(cfg, grid)
	b.SetBytes(int64(len(samples) * 16))
	for i := 0; i < b.N; i++ {
		if _, err := Process(cfg, samples); err != nil {
			b.Fatal(err)
		}
	}
}
