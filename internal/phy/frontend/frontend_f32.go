package frontend

// Float32 split-plane receive filtering: the FIR front of the chain on
// the lane layout (internal/phy/lane), for drivers that keep the sample
// stream in float32 planes. The frontend is outside the paper's
// benchmark scope, so this stays a convenience entry point rather than
// an arena-threaded hot path; it exists so the float32 receiver can be
// exercised end-to-end without a width round trip at the filter.

// FIRLowpassF32 narrows FIRLowpass's Hamming-windowed-sinc design to
// float32 taps. The design itself runs in float64 (tap count and cutoff
// maths are construction-time), only the stored taps are narrowed.
func FIRLowpassF32(taps int, cutoff float64) []float32 {
	h := FIRLowpass(taps, cutoff)
	out := make([]float32, len(h))
	for i, v := range h {
		out[i] = float32(v)
	}
	return out
}

// FilterF32 applies an FIR filter to split-plane samples with the same
// group-delay compensation ("same" convolution) as Filter: output sample
// t uses input samples centred on t, with zeros beyond the block edges.
// The two planes are filtered independently — a real tap multiplies re
// and im separately — in stride-1 loops over each plane.
func FilterF32(xRe, xIm []float32, h []float32) (outRe, outIm []float32) {
	n := len(xRe)
	xIm = xIm[:n]
	outRe = make([]float32, n)
	outIm = make([]float32, n)
	mid := len(h) / 2
	for t := 0; t < n; t++ {
		var accRe, accIm float32
		for i, tap := range h {
			j := t + mid - i
			if j >= 0 && j < n {
				accRe += tap * xRe[j]
				accIm += tap * xIm[j]
			}
		}
		outRe[t] = accRe
		outIm[t] = accIm
	}
	return outRe, outIm
}
