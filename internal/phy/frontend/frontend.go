// Package frontend implements the statically-defined receiver frontend of
// the paper's Fig. 2 — receive filter, cyclic prefix removal, and FFT —
// which the paper excludes from its benchmark because it is "performed on
// all data received" regardless of load. It is provided here so the full
// receive chain can be exercised end-to-end: the synthetic transmitter can
// emit time-domain samples and the receiver can recover the frequency-
// domain grid the per-user processing consumes.
//
// The numerology follows LTE OFDM/SC-FDMA: an FFT sized to the occupied
// bandwidth with a normal cyclic prefix whose first-symbol length is
// slightly longer (TS 36.211 §5.6), scaled from the 2048-point reference
// (160/144 samples at 30.72 Ms/s).
package frontend

import (
	"fmt"
	"math"

	"ltephy/internal/phy/fft"
)

// refFFT is the reference FFT size the standard's CP lengths are quoted at.
const refFFT = 2048

// Config fixes the frontend numerology.
type Config struct {
	// FFTSize is the OFDM FFT length (a power of two).
	FFTSize int
	// CPFirst and CPRest are cyclic prefix lengths in samples for the
	// first and remaining symbols of a slot.
	CPFirst, CPRest int
	// SymbolsPerSlot is the number of OFDM symbols between first-CP
	// boundaries (7 for the normal cyclic prefix).
	SymbolsPerSlot int
	// FilterTaps, when > 0, enables the receive FIR low-pass filter with
	// this many taps (odd). FilterCutoff is the normalised cutoff
	// frequency in cycles/sample (0 < cutoff <= 0.5).
	FilterTaps   int
	FilterCutoff float64
}

// ForSubcarriers returns the smallest standard numerology that carries n
// occupied subcarriers with at least 25% guard band, mirroring LTE's
// bandwidth options (128..2048-point FFTs).
func ForSubcarriers(n int) (Config, error) {
	if n < 1 {
		return Config{}, fmt.Errorf("frontend: %d subcarriers", n)
	}
	for _, size := range []int{128, 256, 512, 1024, 2048} {
		if float64(n) <= 0.75*float64(size) {
			scale := refFFT / size
			return Config{
				FFTSize:        size,
				CPFirst:        160 / scale,
				CPRest:         144 / scale,
				SymbolsPerSlot: 7,
			}, nil
		}
	}
	return Config{}, fmt.Errorf("frontend: %d subcarriers exceed the largest numerology", n)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.FFTSize < 2 || c.FFTSize&(c.FFTSize-1) != 0:
		return fmt.Errorf("frontend: FFT size %d not a power of two", c.FFTSize)
	case c.CPFirst < 1 || c.CPRest < 1 || c.CPFirst >= c.FFTSize || c.CPRest >= c.FFTSize:
		return fmt.Errorf("frontend: CP lengths (%d, %d) invalid for FFT %d", c.CPFirst, c.CPRest, c.FFTSize)
	case c.SymbolsPerSlot < 1:
		return fmt.Errorf("frontend: %d symbols per slot", c.SymbolsPerSlot)
	case c.FilterTaps < 0 || (c.FilterTaps > 0 && c.FilterTaps%2 == 0):
		return fmt.Errorf("frontend: filter taps %d must be odd (or 0 to bypass)", c.FilterTaps)
	case c.FilterTaps > 0 && (c.FilterCutoff <= 0 || c.FilterCutoff > 0.5):
		return fmt.Errorf("frontend: filter cutoff %g outside (0, 0.5]", c.FilterCutoff)
	}
	return nil
}

// cpLen returns the cyclic prefix length of symbol i within a slot.
func (c Config) cpLen(i int) int {
	if i%c.SymbolsPerSlot == 0 {
		return c.CPFirst
	}
	return c.CPRest
}

// SlotSamples returns the time-domain sample count of one slot.
func (c Config) SlotSamples() int {
	total := 0
	for i := 0; i < c.SymbolsPerSlot; i++ {
		total += c.cpLen(i) + c.FFTSize
	}
	return total
}

// AllocationBin returns the FFT bin carrying subcarrier k of an
// n-subcarrier allocation. Occupied subcarriers are centred on DC in
// frequency (bins 0.. and FFTSize-1 downward), keeping them inside the
// receive filter's passband — the LTE mapping, not a contiguous block in
// FFT index order.
func (c Config) AllocationBin(k, n int) int {
	return ((k-n/2)%c.FFTSize + c.FFTSize) % c.FFTSize
}

// Synthesize converts a frequency-domain grid (grid[sym][bin], FFTSize
// bins per symbol) into time-domain samples with cyclic prefixes — the
// transmit counterpart the frontend undoes. The IFFT is unitary-scaled so
// Process(Synthesize(g)) == g.
func Synthesize(cfg Config, grid [][]complex128) ([]complex128, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan := fft.Get(cfg.FFTSize)
	scale := complex(math.Sqrt(float64(cfg.FFTSize)), 0)
	var out []complex128
	td := make([]complex128, cfg.FFTSize)
	for i, sym := range grid {
		if len(sym) != cfg.FFTSize {
			return nil, fmt.Errorf("frontend: symbol %d has %d bins, want %d", i, len(sym), cfg.FFTSize)
		}
		plan.Inverse(td, sym)
		for t := range td {
			td[t] *= scale
		}
		cp := cfg.cpLen(i)
		out = append(out, td[cfg.FFTSize-cp:]...)
		out = append(out, td...)
	}
	return out, nil
}

// Process runs the frontend: optional receive filtering, cyclic prefix
// removal and per-symbol FFT. It returns the frequency-domain grid. The
// sample stream must contain a whole number of symbols.
func Process(cfg Config, samples []complex128) ([][]complex128, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.FilterTaps > 0 {
		samples = Filter(samples, FIRLowpass(cfg.FilterTaps, cfg.FilterCutoff))
	}
	plan := fft.Get(cfg.FFTSize)
	scale := complex(1/math.Sqrt(float64(cfg.FFTSize)), 0)
	var grid [][]complex128
	pos := 0
	for sym := 0; pos < len(samples); sym++ {
		cp := cfg.cpLen(sym)
		if pos+cp+cfg.FFTSize > len(samples) {
			return nil, fmt.Errorf("frontend: truncated symbol %d (%d samples left, need %d)",
				sym, len(samples)-pos, cp+cfg.FFTSize)
		}
		pos += cp // cyclic prefix removal
		fd := make([]complex128, cfg.FFTSize)
		plan.Forward(fd, samples[pos:pos+cfg.FFTSize])
		for k := range fd {
			fd[k] *= scale
		}
		grid = append(grid, fd)
		pos += cfg.FFTSize
	}
	return grid, nil
}

// FIRLowpass designs a Hamming-windowed-sinc low-pass filter with the
// given odd tap count and normalised cutoff (cycles/sample).
func FIRLowpass(taps int, cutoff float64) []float64 {
	if taps < 1 || taps%2 == 0 {
		panic(fmt.Sprintf("frontend: FIR taps %d must be odd and positive", taps))
	}
	if cutoff <= 0 || cutoff > 0.5 {
		panic(fmt.Sprintf("frontend: cutoff %g outside (0, 0.5]", cutoff))
	}
	h := make([]float64, taps)
	mid := taps / 2
	var sum float64
	for i := range h {
		m := float64(i - mid)
		var v float64
		if m == 0 {
			v = 2 * cutoff
		} else {
			v = math.Sin(2*math.Pi*cutoff*m) / (math.Pi * m)
		}
		// Hamming window.
		v *= 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = v
		sum += v
	}
	// Normalise to unit DC gain.
	for i := range h {
		h[i] /= sum
	}
	return h
}

// Filter applies an FIR filter with group-delay compensation ("same"
// convolution): output sample t uses input samples centred on t, with
// zeros beyond the block edges.
func Filter(x []complex128, h []float64) []complex128 {
	mid := len(h) / 2
	out := make([]complex128, len(x))
	for t := range x {
		var acc complex128
		for i, tap := range h {
			j := t + mid - i
			if j >= 0 && j < len(x) {
				acc += complex(tap, 0) * x[j]
			}
		}
		out[t] = acc
	}
	return out
}
