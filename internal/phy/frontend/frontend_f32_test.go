package frontend

import (
	"math"
	"testing"

	"ltephy/internal/rng"
)

// TestFilterF32MatchesComplex128 pins the split-plane FIR against the
// complex128 Filter on identical float32-representable samples.
func TestFilterF32MatchesComplex128(t *testing.T) {
	r := rng.New(31)
	const n = 257
	xRe := make([]float32, n)
	xIm := make([]float32, n)
	x := make([]complex128, n)
	for k := 0; k < n; k++ {
		xRe[k] = float32(r.NormFloat64())
		xIm[k] = float32(r.NormFloat64())
		x[k] = complex(float64(xRe[k]), float64(xIm[k]))
	}
	h64 := FIRLowpass(21, 0.25)
	h32 := FIRLowpassF32(21, 0.25)
	for i := range h64 {
		if d := math.Abs(float64(h32[i]) - h64[i]); d > 1e-7 {
			t.Fatalf("tap %d narrowed to %g, want %g", i, h32[i], h64[i])
		}
	}
	want := Filter(x, h64)
	gotRe, gotIm := FilterF32(xRe, xIm, h32)
	for k := 0; k < n; k++ {
		dr := math.Abs(float64(gotRe[k]) - real(want[k]))
		di := math.Abs(float64(gotIm[k]) - imag(want[k]))
		if dr > 2e-5 || di > 2e-5 {
			t.Fatalf("sample %d = (%g, %g), want %v", k, gotRe[k], gotIm[k], want[k])
		}
	}
}
