// Package crc implements the cyclic redundancy checks defined in 3GPP
// TS 36.212 §5.1.1 for LTE transport channels:
//
//	CRC24A  g(D) = D^24+D^23+D^18+D^17+D^14+D^11+D^10+D^7+D^6+D^5+D^4+D^3+D+1
//	CRC24B  g(D) = D^24+D^23+D^6+D^5+D+1
//	CRC16   g(D) = D^16+D^12+D^5+1
//	CRC8    g(D) = D^8+D^7+D^4+D^3+D+1
//
// CRC24A protects the transport block, CRC24B each code block after
// segmentation. The uplink receiver pipeline's final stage is a CRC check
// over the decoded payload (the paper's Fig. 3 "CRC" kernel).
//
// The message here is a sequence of bits (one bit per byte, values 0 or 1),
// matching how the turbo coder and demapper exchange data; a table-driven
// byte-oriented variant is provided for packed payloads.
package crc

// Kind selects one of the four LTE CRC polynomials.
type Kind int

// Supported CRC kinds, in the order TS 36.212 defines them.
const (
	CRC24A Kind = iota
	CRC24B
	CRC16
	CRC8
)

// params describes one generator polynomial: its length in bits and its
// coefficients below the leading term.
type params struct {
	bits int
	poly uint32
	name string
}

var table = [...]params{
	CRC24A: {24, 0x864CFB, "CRC24A"},
	CRC24B: {24, 0x800063, "CRC24B"},
	CRC16:  {16, 0x1021, "CRC16"},
	CRC8:   {8, 0x9B, "CRC8"},
}

// Bits returns the length of the checksum produced by k.
func (k Kind) Bits() int { return table[k].bits }

// String returns the 3GPP name of the polynomial.
func (k Kind) String() string { return table[k].name }

// ComputeBits returns the CRC of a message given as individual bits
// (values 0 or 1, most significant bit first), as the checksum bits
// p(0)..p(L-1) in transmission order (MSB first).
func (k Kind) ComputeBits(msg []uint8) []uint8 {
	p := table[k]
	var reg uint32
	top := uint32(1) << (p.bits - 1)
	mask := (uint32(1) << p.bits) - 1
	for _, b := range msg {
		fb := (reg&top != 0) != (b != 0)
		reg = (reg << 1) & mask
		if fb {
			reg ^= p.poly
		}
	}
	out := make([]uint8, p.bits)
	for i := 0; i < p.bits; i++ {
		if reg&(uint32(1)<<(p.bits-1-i)) != 0 {
			out[i] = 1
		}
	}
	return out
}

// AppendBits returns msg with its CRC appended, ready for encoding.
func (k Kind) AppendBits(msg []uint8) []uint8 {
	return append(append(make([]uint8, 0, len(msg)+k.Bits()), msg...), k.ComputeBits(msg)...)
}

// CheckBits reports whether data, interpreted as message||checksum,
// carries a consistent CRC. It returns false for inputs shorter than the
// checksum itself. It compares the shift register directly against the
// trailing checksum bits, so it performs no allocation — it runs once per
// decoded block on the receiver hot path.
func (k Kind) CheckBits(data []uint8) bool {
	p := table[k]
	n := len(data) - p.bits
	if n < 0 {
		return false
	}
	var reg uint32
	top := uint32(1) << (p.bits - 1)
	mask := (uint32(1) << p.bits) - 1
	for _, b := range data[:n] {
		fb := (reg&top != 0) != (b != 0)
		reg = (reg << 1) & mask
		if fb {
			reg ^= p.poly
		}
	}
	for i := 0; i < p.bits; i++ {
		var want uint8
		if reg&(uint32(1)<<(p.bits-1-i)) != 0 {
			want = 1
		}
		if data[n+i] != want {
			return false
		}
	}
	return true
}

// byteTables holds the 256-entry lookup tables for the byte-oriented
// variant, indexed by Kind.
var byteTables = func() [len(table)][256]uint32 {
	var ts [len(table)][256]uint32
	for k, p := range table {
		top := uint32(1) << (p.bits - 1)
		mask := (uint32(1) << p.bits) - 1
		for b := 0; b < 256; b++ {
			reg := uint32(b) << (p.bits - 8)
			for i := 0; i < 8; i++ {
				if reg&top != 0 {
					reg = ((reg << 1) ^ p.poly) & mask
				} else {
					reg = (reg << 1) & mask
				}
			}
			ts[k][b] = reg
		}
	}
	return ts
}()

// ComputeBytes returns the CRC register value for a packed byte message
// (bits taken MSB-first within each byte). The low Bits() bits hold the
// checksum; for CRC8/16 the upper bits are zero.
func (k Kind) ComputeBytes(msg []byte) uint32 {
	p := table[k]
	t := &byteTables[k]
	mask := (uint32(1) << p.bits) - 1
	var reg uint32
	for _, b := range msg {
		idx := byte(reg>>(p.bits-8)) ^ b
		reg = ((reg << 8) & mask) ^ t[idx]
	}
	return reg
}
