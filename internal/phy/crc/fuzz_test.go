package crc

import "testing"

// FuzzAppendCheck: any message round-trips; any single-bit corruption of
// the codeword is detected.
func FuzzAppendCheck(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint16(0))
	f.Add([]byte{0xFF, 0x00, 0xA5}, uint8(2), uint16(5))
	f.Fuzz(func(t *testing.T, raw []byte, kindRaw uint8, flipRaw uint16) {
		if len(raw) > 4096 {
			raw = raw[:4096]
		}
		k := Kind(int(kindRaw) % 4)
		bits := make([]uint8, 0, len(raw)*8)
		for _, b := range raw {
			for i := 7; i >= 0; i-- {
				bits = append(bits, (b>>uint(i))&1)
			}
		}
		coded := k.AppendBits(bits)
		if !k.CheckBits(coded) {
			t.Fatalf("%v: clean codeword rejected", k)
		}
		if len(coded) == 0 {
			return
		}
		flip := int(flipRaw) % len(coded)
		coded[flip] ^= 1
		if k.CheckBits(coded) {
			t.Fatalf("%v: single-bit flip at %d undetected", k, flip)
		}
	})
}
