package crc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(rng *rand.Rand, n int) []uint8 {
	b := make([]uint8, n)
	for i := range b {
		b[i] = uint8(rng.Intn(2))
	}
	return b
}

var kinds = []Kind{CRC24A, CRC24B, CRC16, CRC8}

func TestAppendThenCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range kinds {
		for _, n := range []int{0, 1, 7, 8, 40, 127, 1000} {
			msg := randBits(rng, n)
			coded := k.AppendBits(msg)
			if len(coded) != n+k.Bits() {
				t.Fatalf("%v: coded length %d, want %d", k, len(coded), n+k.Bits())
			}
			if !k.CheckBits(coded) {
				t.Errorf("%v: valid codeword of length %d failed check", k, n)
			}
		}
	}
}

func TestSingleBitErrorDetected(t *testing.T) {
	// Any single-bit error must be caught by any CRC polynomial.
	rng := rand.New(rand.NewSource(2))
	for _, k := range kinds {
		msg := randBits(rng, 64)
		coded := k.AppendBits(msg)
		for i := range coded {
			coded[i] ^= 1
			if k.CheckBits(coded) {
				t.Errorf("%v: single-bit error at %d undetected", k, i)
			}
			coded[i] ^= 1
		}
	}
}

func TestBurstErrorsDetected(t *testing.T) {
	// A CRC of degree r detects all burst errors of length <= r.
	rng := rand.New(rand.NewSource(3))
	for _, k := range kinds {
		msg := randBits(rng, 200)
		for trial := 0; trial < 50; trial++ {
			coded := k.AppendBits(msg)
			blen := 1 + rng.Intn(k.Bits())
			start := rng.Intn(len(coded) - blen)
			coded[start] ^= 1 // burst must start with an error
			if blen > 1 {
				coded[start+blen-1] ^= 1 // and end with one
			}
			for j := 1; j < blen-1; j++ {
				if rng.Intn(2) == 1 {
					coded[start+j] ^= 1
				}
			}
			if k.CheckBits(coded) {
				t.Errorf("%v: burst of length %d at %d undetected", k, blen, start)
			}
		}
	}
}

func TestCheckBitsTooShort(t *testing.T) {
	for _, k := range kinds {
		if k.CheckBits(make([]uint8, k.Bits()-1)) {
			t.Errorf("%v: accepted input shorter than checksum", k)
		}
	}
}

func TestZeroMessageNonTrivial(t *testing.T) {
	// An all-zero message has an all-zero CRC, but appending a one bit must
	// change it: guards against a degenerate (always zero) implementation.
	for _, k := range kinds {
		z := k.ComputeBits(make([]uint8, 100))
		for _, b := range z {
			if b != 0 {
				t.Errorf("%v: CRC of zero message not zero", k)
				break
			}
		}
		one := k.ComputeBits(append(make([]uint8, 100), 1))
		allZero := true
		for _, b := range one {
			if b != 0 {
				allZero = false
			}
		}
		if allZero {
			t.Errorf("%v: CRC ignores trailing one bit", k)
		}
	}
}

// TestKnownCRC16 pins the implementation to the public CCITT value:
// CRC16-CCITT (poly 0x1021, init 0) of ASCII "123456789" is 0x31C3.
func TestKnownCRC16(t *testing.T) {
	msg := []byte("123456789")
	if got := CRC16.ComputeBytes(msg); got != 0x31C3 {
		t.Errorf("CRC16(123456789) = %#x, want 0x31c3", got)
	}
	// Bit-level and byte-level paths must agree.
	var bits []uint8
	for _, b := range msg {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>uint(i))&1)
		}
	}
	bitCRC := CRC16.ComputeBits(bits)
	var reg uint32
	for _, b := range bitCRC {
		reg = reg<<1 | uint32(b)
	}
	if reg != 0x31C3 {
		t.Errorf("bit-level CRC16 = %#x, want 0x31c3", reg)
	}
}

func TestBitByteAgreement(t *testing.T) {
	f := func(data []byte) bool {
		for _, k := range kinds {
			var bits []uint8
			for _, b := range data {
				for i := 7; i >= 0; i-- {
					bits = append(bits, (b>>uint(i))&1)
				}
			}
			bitCRC := k.ComputeBits(bits)
			var reg uint32
			for _, b := range bitCRC {
				reg = reg<<1 | uint32(b)
			}
			if reg != k.ComputeBytes(data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestLinearity exercises the CRC's defining algebraic property:
// crc(a xor b) == crc(a) xor crc(b) for equal-length messages.
func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, k := range kinds {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(300)
			a := randBits(rng, n)
			b := randBits(rng, n)
			x := make([]uint8, n)
			for i := range x {
				x[i] = a[i] ^ b[i]
			}
			ca, cb, cx := k.ComputeBits(a), k.ComputeBits(b), k.ComputeBits(x)
			for i := range cx {
				if cx[i] != ca[i]^cb[i] {
					t.Fatalf("%v: linearity violated (n=%d)", k, n)
				}
			}
		}
	}
}

func TestKindMetadata(t *testing.T) {
	want := map[Kind]struct {
		bits int
		name string
	}{
		CRC24A: {24, "CRC24A"}, CRC24B: {24, "CRC24B"},
		CRC16: {16, "CRC16"}, CRC8: {8, "CRC8"},
	}
	for k, w := range want {
		if k.Bits() != w.bits || k.String() != w.name {
			t.Errorf("%v: got (%d, %s), want (%d, %s)", k, k.Bits(), k.String(), w.bits, w.name)
		}
	}
}

func BenchmarkComputeBits24A(b *testing.B) {
	msg := randBits(rand.New(rand.NewSource(5)), 6144)
	b.SetBytes(int64(len(msg)) / 8)
	for i := 0; i < b.N; i++ {
		CRC24A.ComputeBits(msg)
	}
}

func BenchmarkComputeBytes24A(b *testing.B) {
	msg := make([]byte, 768)
	rand.New(rand.NewSource(6)).Read(msg)
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		CRC24A.ComputeBytes(msg)
	}
}
