package interleave

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 31, 32, 33, 100, 1000, 2400} {
		b := New(n, DefaultColumns)
		src := make([]int, n)
		for i := range src {
			src[i] = rng.Int()
		}
		il := make([]int, n)
		out := make([]int, n)
		Interleave(b, il, src)
		Deinterleave(b, out, il)
		for i := range src {
			if out[i] != src[i] {
				t.Fatalf("n=%d: round trip mismatch at %d", n, i)
			}
		}
	}
}

func TestIsPermutation(t *testing.T) {
	f := func(n uint16, cols uint8) bool {
		size := int(n % 3000)
		c := int(cols%40) + 1
		b := New(size, c)
		seen := make([]bool, size)
		for _, p := range b.perm {
			if p < 0 || int(p) >= size || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestActuallyPermutes(t *testing.T) {
	// For any non-degenerate size the interleaver must move at least half
	// of the elements; identity "interleaving" would defeat its purpose.
	for _, n := range []int{64, 100, 2400} {
		b := New(n, DefaultColumns)
		moved := 0
		for i, p := range b.perm {
			if int(p) != i {
				moved++
			}
		}
		if moved < n/2 {
			t.Errorf("n=%d: only %d elements moved", n, moved)
		}
	}
}

func TestKnownSmallPattern(t *testing.T) {
	// 2 columns, n=6: matrix rows (0,1),(2,3),(4,5); column read order
	// 0,2,4,1,3,5. So Interleave output = src[0],src[2],src[4],src[1],...
	b := New(6, 2)
	src := []byte{10, 11, 12, 13, 14, 15}
	dst := make([]byte, 6)
	Interleave(b, dst, src)
	want := []byte{10, 12, 14, 11, 13, 15}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestSeparatesAdjacent(t *testing.T) {
	// Adjacent inputs must land at least rows-1 apart in the output —
	// the burst-spreading property interleaving exists for.
	const n, cols = 960, DefaultColumns
	rows := (n + cols - 1) / cols
	b := New(n, cols)
	for i := 0; i+1 < n; i++ {
		d := int(b.perm[i+1]) - int(b.perm[i])
		if d < 0 {
			d = -d
		}
		if d < rows-1 {
			t.Fatalf("inputs %d,%d map to outputs %d,%d (distance %d < %d)",
				i, i+1, b.perm[i], b.perm[i+1], d, rows-1)
		}
	}
}

func TestGenericOverComplex(t *testing.T) {
	b := New(48, 8)
	src := make([]complex128, 48)
	for i := range src {
		src[i] = complex(float64(i), -float64(i))
	}
	il := make([]complex128, 48)
	out := make([]complex128, 48)
	Interleave(b, il, src)
	Deinterleave(b, out, il)
	for i := range src {
		if out[i] != src[i] {
			t.Fatalf("complex round trip mismatch at %d", i)
		}
	}
}

func TestPanics(t *testing.T) {
	if got := func() (p bool) {
		defer func() { p = recover() != nil }()
		New(-1, 4)
		return
	}(); !got {
		t.Error("New(-1,4) did not panic")
	}
	if got := func() (p bool) {
		defer func() { p = recover() != nil }()
		New(8, 0)
		return
	}(); !got {
		t.Error("New(8,0) did not panic")
	}
	if got := func() (p bool) {
		defer func() { p = recover() != nil }()
		Interleave(New(8, 2), make([]int, 7), make([]int, 8))
		return
	}(); !got {
		t.Error("length mismatch did not panic")
	}
}

func BenchmarkInterleave2400(b *testing.B) {
	blk := New(2400, DefaultColumns)
	src := make([]complex128, 2400)
	dst := make([]complex128, 2400)
	for i := 0; i < b.N; i++ {
		Interleave(blk, dst, src)
	}
}
