// Package interleave implements the row-column block interleaver the
// benchmark uses between the SC-FDMA despread stage and the soft demapper
// (the paper's Fig. 3 "Deinterleave" kernel: data are deinterleaved in the
// time domain before soft symbol demapping).
//
// The transmitter writes symbols row-wise into an R x C matrix and reads
// them column-wise; the receiver inverts the permutation. A Block value
// precomputes the permutation once per size and is reusable and
// concurrency-safe.
package interleave

import "fmt"

// DefaultColumns is the column count used by the uplink pipeline. 3GPP
// channel interleavers use 32 columns (TS 36.212 §5.1.4.1); retained here
// for the symbol-level interleaver.
const DefaultColumns = 32

// Block is a row-column interleaver for sequences of a fixed length.
type Block struct {
	n    int
	perm []int32 // perm[i]: output position of input element i
	inv  []int32 // inverse permutation
}

// New builds a block interleaver for sequences of length n with the given
// number of columns. Lengths that do not fill the last row are handled by
// skipping the padding positions (standard pruned interleaving).
// It panics if n < 0 or cols < 1.
//
// result (uplink.getBlock), so it runs once per (n, cols) per process.
//
//ltephy:coldpath — permutation-table construction; hot callers memoise the
func New(n, cols int) *Block {
	if n < 0 || cols < 1 {
		panic(fmt.Sprintf("interleave: invalid size n=%d cols=%d", n, cols))
	}
	b := &Block{n: n, perm: make([]int32, n), inv: make([]int32, n)}
	rows := (n + cols - 1) / cols
	out := 0
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			in := r*cols + c
			if in < n {
				b.perm[in] = int32(out)
				out++
			}
		}
	}
	for i, p := range b.perm {
		b.inv[p] = int32(i)
	}
	return b
}

// Len returns the sequence length the interleaver was built for.
func (b *Block) Len() int { return b.n }

// Interleave writes src permuted into dst: dst[perm[i]] = src[i].
// dst and src must have length Len() and must not alias.
func Interleave[T any](b *Block, dst, src []T) {
	b.check(len(dst), len(src))
	for i, p := range b.perm {
		dst[p] = src[i]
	}
}

// Deinterleave inverts Interleave: dst[i] = src[perm[i]].
// dst and src must have length Len() and must not alias.
func Deinterleave[T any](b *Block, dst, src []T) {
	b.check(len(dst), len(src))
	for i, p := range b.perm {
		dst[i] = src[p]
	}
}

func (b *Block) check(d, s int) {
	if d != b.n || s != b.n {
		panic(fmt.Sprintf("interleave: block length %d, got dst %d src %d", b.n, d, s))
	}
}
