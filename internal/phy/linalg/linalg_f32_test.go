package linalg

import (
	"math/cmplx"
	"testing"

	"ltephy/internal/phy/lane"
	"ltephy/internal/rng"
)

// randChannelF32 returns a random ant x layers channel in both layouts,
// with float32-representable entries so both paths see identical inputs.
func randChannelF32(r *rng.RNG, ant, layers int) (hRe, hIm []float32, h Matrix) {
	hRe = make([]float32, ant*layers)
	hIm = make([]float32, ant*layers)
	h = NewMatrix(ant, layers)
	for i := range hRe {
		hRe[i] = float32(r.NormFloat64())
		hIm[i] = float32(r.NormFloat64())
		h.Data[i] = complex(float64(hRe[i]), float64(hIm[i]))
	}
	return
}

func checkWeightsF32(t *testing.T, name string, ant, layers int, gotRe, gotIm []float32, want Matrix, tol float64) {
	t.Helper()
	for i := 0; i < layers*ant; i++ {
		got := complex(float64(gotRe[i]), float64(gotIm[i]))
		if d := cmplx.Abs(got - want.Data[i]); d > tol*(1+cmplx.Abs(want.Data[i])) {
			t.Fatalf("%s ant=%d layers=%d: W[%d] = %v, want %v (|diff| %g)",
				name, ant, layers, i, got, want.Data[i], d)
		}
	}
}

// TestMMSESolveF32MatchesComplex128 pins the float32 Cholesky MMSE solve
// against the complex128 Gauss-Jordan solve across the receiver's shape
// range.
func TestMMSESolveF32MatchesComplex128(t *testing.T) {
	r := rng.New(21)
	for _, shape := range []struct{ ant, layers int }{{1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 2}, {4, 4}, {8, 4}} {
		ant, layers := shape.ant, shape.layers
		hRe, hIm, h := randChannelF32(r, ant, layers)
		nv := 0.05

		want := NewMatrix(layers, ant)
		if err := NewMMSEWorkspace(ant, layers).Solve(&want, h, nv); err != nil {
			t.Fatalf("ant=%d layers=%d: complex128 solve failed: %v", ant, layers, err)
		}
		gotRe := make([]float32, layers*ant)
		gotIm := make([]float32, layers*ant)
		if !MMSESolveF32(gotRe, gotIm, hRe, hIm, ant, layers, float32(nv)) {
			t.Fatalf("ant=%d layers=%d: MMSESolveF32 reported singular", ant, layers)
		}
		checkWeightsF32(t, "MMSE", ant, layers, gotRe, gotIm, want, 5e-4)
	}
}

// TestMMSESolveF32Singular checks the all-zero channel is reported, not
// NaN'd through.
func TestMMSESolveF32Singular(t *testing.T) {
	hRe := make([]float32, 8)
	hIm := make([]float32, 8)
	gotRe := make([]float32, 8)
	gotIm := make([]float32, 8)
	if MMSESolveF32(gotRe, gotIm, hRe, hIm, 4, 2, 0) {
		t.Error("MMSESolveF32 accepted an all-zero channel with zero loading")
	}
}

// refIRCSolve reproduces the complex128 IRC weight computation
// W = (H^H R^{-1} H + I)^{-1} H^H R^{-1} using the package's own
// complex128 primitives — the oracle irc.go builds per subcarrier.
func refIRCSolve(t *testing.T, rcov, h Matrix, ant, layers int) Matrix {
	t.Helper()
	rinv := NewMatrix(ant, ant)
	if err := InvertInto(&rinv, rcov); err != nil {
		t.Fatalf("oracle R inversion failed: %v", err)
	}
	b := NewMatrix(ant, layers)
	MulInto(&b, rinv, h)
	hh := NewMatrix(layers, ant)
	h.ConjTransposeInto(&hh)
	g := NewMatrix(layers, layers)
	MulInto(&g, hh, b)
	AddDiag(&g, 1)
	ginv := NewMatrix(layers, layers)
	if err := InvertInto(&ginv, g); err != nil {
		t.Fatalf("oracle Gram inversion failed: %v", err)
	}
	bh := NewMatrix(layers, ant)
	b.ConjTransposeInto(&bh)
	w := NewMatrix(layers, ant)
	MulInto(&w, ginv, bh)
	return w
}

// TestIRCSolveF32MatchesComplex128 pins the float32 IRC solve against
// the complex128 oracle with a realistic loaded covariance.
func TestIRCSolveF32MatchesComplex128(t *testing.T) {
	r := rng.New(22)
	for _, shape := range []struct{ ant, layers int }{{2, 1}, {4, 2}, {4, 4}, {8, 4}} {
		ant, layers := shape.ant, shape.layers
		hRe, hIm, h := randChannelF32(r, ant, layers)

		// Covariance R = E e e^H + loading, built from a few float32-exact
		// residual vectors so it is Hermitian PSD by construction.
		rcov := NewMatrix(ant, ant)
		rRe := make([]float32, ant*ant)
		rIm := make([]float32, ant*ant)
		for snap := 0; snap < 3*ant; snap++ {
			e := make([]complex128, ant)
			for a := range e {
				er := float32(r.NormFloat64())
				ei := float32(r.NormFloat64())
				e[a] = complex(float64(er), float64(ei))
			}
			for a := 0; a < ant; a++ {
				for b := 0; b < ant; b++ {
					rcov.Data[a*ant+b] += e[a] * cmplx.Conj(e[b])
				}
			}
		}
		scale := complex(1/float64(3*ant), 0)
		for i := range rcov.Data {
			rcov.Data[i] *= scale
		}
		AddDiag(&rcov, 0.01)
		lane.Pack(rRe, rIm, rcov.Data)
		// Re-widen so the oracle sees exactly the float32-rounded R.
		lane.Unpack(rcov.Data, rRe, rIm)

		want := refIRCSolve(t, rcov, h, ant, layers)
		gotRe := make([]float32, layers*ant)
		gotIm := make([]float32, layers*ant)
		if !IRCSolveF32(gotRe, gotIm, rRe, rIm, hRe, hIm, ant, layers) {
			t.Fatalf("ant=%d layers=%d: IRCSolveF32 reported singular", ant, layers)
		}
		checkWeightsF32(t, "IRC", ant, layers, gotRe, gotIm, want, 2e-3)
	}
}

// TestIRCSolveF32DegenerateCovariance checks the identity-whitening
// fallback: an all-zero covariance must behave like MMSE with unit
// loading, matching irc.go's complex128 fallback.
func TestIRCSolveF32DegenerateCovariance(t *testing.T) {
	r := rng.New(23)
	ant, layers := 4, 2
	hRe, hIm, h := randChannelF32(r, ant, layers)
	rRe := make([]float32, ant*ant)
	rIm := make([]float32, ant*ant)

	want := NewMatrix(layers, ant)
	if err := NewMMSEWorkspace(ant, layers).Solve(&want, h, 1); err != nil {
		t.Fatalf("reference MMSE solve failed: %v", err)
	}
	gotRe := make([]float32, layers*ant)
	gotIm := make([]float32, layers*ant)
	if !IRCSolveF32(gotRe, gotIm, rRe, rIm, hRe, hIm, ant, layers) {
		t.Fatal("IRCSolveF32 failed on the degenerate-covariance fallback")
	}
	checkWeightsF32(t, "IRC-fallback", ant, layers, gotRe, gotIm, want, 5e-4)
}
