// Package linalg provides the small dense complex matrix operations the
// MIMO combiner needs: Hermitian products, Gaussian-elimination inverses,
// and the per-subcarrier MMSE weight solve
//
//	W = (H^H H + sigma^2 I)^{-1} H^H
//
// Matrices are at most 4x4 (up to four layers and four receive antennas in
// LTE-Advanced uplink), so simple partial-pivot elimination is both
// adequate and fast; everything is allocation-conscious because the weight
// solve runs once per subcarrier.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"ltephy/internal/phy/workspace"
)

// Matrix is a dense row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) Matrix {
	return NewMatrixIn(nil, rows, cols)
}

// NewMatrixIn returns a zero matrix whose backing storage comes from ws
// (heap-allocated when ws is nil). The matrix is only valid until the
// arena mark it was carved under is released.
//
// lifetime with its own Mark/Release, per the doc contract above.
//
//ltephy:owns-scratch — carve constructor: the caller brackets the matrix's
func NewMatrixIn(ws *workspace.Arena, rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return Matrix{Rows: rows, Cols: cols, Data: ws.Complex(rows * cols)}
}

// At returns the element at row r, column c.
func (m Matrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// ConjTransposeInto writes m^H into dst, which must be Cols x Rows.
func (m Matrix) ConjTransposeInto(dst *Matrix) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic("linalg: ConjTransposeInto shape mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			dst.Data[c*dst.Cols+r] = cmplx.Conj(m.Data[r*m.Cols+c])
		}
	}
}

// MulInto computes dst = a*b. dst must be a.Rows x b.Cols and must not
// alias a or b.
func MulInto(dst *Matrix, a, b Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MulInto shapes %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < b.Cols; c++ {
			var sum complex128
			for k := 0; k < a.Cols; k++ {
				sum += a.Data[r*a.Cols+k] * b.Data[k*b.Cols+c]
			}
			dst.Data[r*dst.Cols+c] = sum
		}
	}
}

// GramInto computes dst = a^H * a (Cols x Cols Hermitian Gram matrix).
func GramInto(dst *Matrix, a Matrix) {
	if dst.Rows != a.Cols || dst.Cols != a.Cols {
		panic("linalg: GramInto shape mismatch")
	}
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < a.Cols; j++ {
			var sum complex128
			for k := 0; k < a.Rows; k++ {
				sum += cmplx.Conj(a.Data[k*a.Cols+i]) * a.Data[k*a.Cols+j]
			}
			dst.Data[i*dst.Cols+j] = sum
		}
	}
}

// AddDiag adds v to each diagonal element of the square matrix m.
func AddDiag(m *Matrix, v complex128) {
	if m.Rows != m.Cols {
		panic("linalg: AddDiag on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += v
	}
}

// ErrSingular is returned by the inversion routines when elimination hits
// a numerically zero (or NaN) pivot. It is a preallocated sentinel so the
// per-subcarrier solvers can take the error path without heap allocation.
var ErrSingular = errors.New("linalg: singular matrix")

// InvertInto computes dst = m^{-1} for a square matrix using Gauss-Jordan
// elimination with partial pivoting. m is left unchanged; dst must be the
// same shape as m and must not alias it. It returns ErrSingular when the
// matrix is numerically singular.
func InvertInto(dst *Matrix, m Matrix) error {
	return InvertIntoScratch(dst, m, nil)
}

// InvertIntoScratch is InvertInto with caller-supplied elimination scratch
// of at least Rows*Cols elements (it is overwritten). A nil or short
// scratch is replaced by a fresh allocation, making InvertInto the
// convenience form. The per-subcarrier solvers pass arena-backed scratch
// so the inner loop stays allocation-free.
func InvertIntoScratch(dst *Matrix, m Matrix, scratch []complex128) error {
	n := m.Rows
	if m.Cols != n || dst.Rows != n || dst.Cols != n {
		panic("linalg: InvertInto shape mismatch")
	}
	// Augmented elimination on a scratch copy.
	a := scratch
	if len(a) < n*n {
		a = make([]complex128, n*n) //ltephy:alloc-ok — documented nil/short-scratch convenience fallback; hot callers pass arena scratch
	} else {
		a = a[:n*n]
	}
	copy(a, m.Data)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < n; i++ {
		dst.Data[i*n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at or below the
		// diagonal.
		pivot, pmag := col, cmplx.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if mag := cmplx.Abs(a[r*n+col]); mag > pmag {
				pivot, pmag = r, mag
			}
		}
		if pmag < 1e-300 || math.IsNaN(pmag) {
			// Sentinel, not fmt.Errorf: a singular (all-zero or NaN) channel
			// can fire this per subcarrier in steady state, and the hot
			// solvers swallow the error after zeroing their output, so the
			// error value must not allocate.
			return ErrSingular
		}
		if pivot != col {
			swapRows(a, n, pivot, col)
			swapRows(dst.Data, n, pivot, col)
		}
		inv := 1 / a[col*n+col]
		for c := 0; c < n; c++ {
			a[col*n+c] *= inv
			dst.Data[col*n+c] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r*n+col]
			if f == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				a[r*n+c] -= f * a[col*n+c]
				dst.Data[r*n+c] -= f * dst.Data[col*n+c]
			}
		}
	}
	return nil
}

func swapRows(a []complex128, n, r1, r2 int) {
	for c := 0; c < n; c++ {
		a[r1*n+c], a[r2*n+c] = a[r2*n+c], a[r1*n+c]
	}
}

// MMSEWorkspace holds the scratch matrices for repeated MMSE solves of one
// shape, so the per-subcarrier loop performs no allocation. Not safe for
// concurrent use; each worker task owns its own workspace.
type MMSEWorkspace struct {
	ant, layers int
	gram        Matrix       // layers x layers
	inv         Matrix       // layers x layers
	hh          Matrix       // layers x ant (H^H)
	elim        []complex128 // layers x layers elimination scratch
}

// NewMMSEWorkspace returns a workspace for ant receive antennas and the
// given layer count.
func NewMMSEWorkspace(ant, layers int) *MMSEWorkspace {
	ws := NewMMSEWorkspaceIn(nil, ant, layers)
	return &ws
}

// NewMMSEWorkspaceIn returns a workspace whose scratch matrices live in the
// arena (heap when nil). Returned by value so arena-path callers can keep
// it on their stack; it is valid only until the enclosing arena mark is
// released.
//
// the workspace's lifetime.
//
//ltephy:owns-scratch — carve constructor: the caller's Mark/Release bounds
func NewMMSEWorkspaceIn(a *workspace.Arena, ant, layers int) MMSEWorkspace {
	if ant < 1 || layers < 1 || layers > ant {
		panic(fmt.Sprintf("linalg: invalid MMSE shape ant=%d layers=%d", ant, layers))
	}
	return MMSEWorkspace{
		ant: ant, layers: layers,
		gram: NewMatrixIn(a, layers, layers),
		inv:  NewMatrixIn(a, layers, layers),
		hh:   NewMatrixIn(a, layers, ant),
		elim: a.Complex(layers * layers),
	}
}

// Solve computes the MMSE combining matrix W = (H^H H + nv I)^{-1} H^H into
// dst (layers x ant). h is the ant x layers channel matrix and nv the noise
// variance. A singular regularised Gram matrix (possible only for nv <= 0)
// is reported as an error.
func (w *MMSEWorkspace) Solve(dst *Matrix, h Matrix, nv float64) error {
	if h.Rows != w.ant || h.Cols != w.layers || dst.Rows != w.layers || dst.Cols != w.ant {
		panic("linalg: MMSE Solve shape mismatch")
	}
	GramInto(&w.gram, h)
	AddDiag(&w.gram, complex(nv, 0))
	if err := InvertIntoScratch(&w.inv, w.gram, w.elim); err != nil {
		return err
	}
	h.ConjTransposeInto(&w.hh)
	MulInto(dst, w.inv, w.hh)
	return nil
}

// ApplyWeights computes x = W*y for one subcarrier: w is layers x ant,
// y has ant entries, x has layers entries.
func ApplyWeights(x []complex128, w Matrix, y []complex128) {
	if len(x) != w.Rows || len(y) != w.Cols {
		panic("linalg: ApplyWeights shape mismatch")
	}
	for l := 0; l < w.Rows; l++ {
		var sum complex128
		row := w.Data[l*w.Cols : (l+1)*w.Cols]
		for a, v := range y {
			sum += row[a] * v
		}
		x[l] = sum
	}
}
