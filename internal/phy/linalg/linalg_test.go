package linalg

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, r, c int) Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func matMaxDiff(a, b Matrix) float64 {
	d := 0.0
	for i := range a.Data {
		if v := cmplx.Abs(a.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

func TestConjTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 3, 4)
	h := NewMatrix(4, 3)
	m.ConjTransposeInto(&h)
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if h.At(c, r) != cmplx.Conj(m.At(r, c)) {
				t.Fatalf("H[%d,%d] != conj(M[%d,%d])", c, r, r, c)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 4; n++ {
		m := randMatrix(rng, n, n)
		id := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		out := NewMatrix(n, n)
		MulInto(&out, m, id)
		if matMaxDiff(out, m) > 1e-14 {
			t.Errorf("n=%d: M*I != M", n)
		}
	}
}

func TestMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, 3, 4)
		b := randMatrix(rng, 4, 2)
		c := randMatrix(rng, 2, 3)
		ab := NewMatrix(3, 2)
		MulInto(&ab, a, b)
		abc1 := NewMatrix(3, 3)
		MulInto(&abc1, ab, c)
		bc := NewMatrix(4, 3)
		MulInto(&bc, b, c)
		abc2 := NewMatrix(3, 3)
		MulInto(&abc2, a, bc)
		return matMaxDiff(abc1, abc2) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGramIsHermitianPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 4, 3)
	g := NewMatrix(3, 3)
	GramInto(&g, a)
	for i := 0; i < 3; i++ {
		if imag(g.At(i, i)) > 1e-14 || real(g.At(i, i)) < 0 {
			t.Errorf("diagonal %d = %v, want real nonnegative", i, g.At(i, i))
		}
		for j := 0; j < 3; j++ {
			if cmplx.Abs(g.At(i, j)-cmplx.Conj(g.At(j, i))) > 1e-12 {
				t.Errorf("Gram not Hermitian at (%d,%d)", i, j)
			}
		}
	}
	// Compare against explicit H^H * H.
	ah := NewMatrix(3, 4)
	a.ConjTransposeInto(&ah)
	want := NewMatrix(3, 3)
	MulInto(&want, ah, a)
	if matMaxDiff(g, want) > 1e-12 {
		t.Error("GramInto differs from explicit H^H*H")
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 1; n <= 4; n++ {
		for trial := 0; trial < 20; trial++ {
			m := randMatrix(rng, n, n)
			AddDiag(&m, 2) // keep well-conditioned
			inv := NewMatrix(n, n)
			if err := InvertInto(&inv, m); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			prod := NewMatrix(n, n)
			MulInto(&prod, m, inv)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want := complex128(0)
					if i == j {
						want = 1
					}
					if cmplx.Abs(prod.At(i, j)-want) > 1e-9 {
						t.Fatalf("n=%d: M*inv(M) deviates at (%d,%d): %v", n, i, j, prod.At(i, j))
					}
				}
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4) // rank 1
	inv := NewMatrix(2, 2)
	if err := InvertInto(&inv, m); err == nil {
		t.Error("inverting a singular matrix did not return an error")
	}
}

func TestInvertPreservesInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randMatrix(rng, 3, 3)
	AddDiag(&m, 3)
	saved := append([]complex128(nil), m.Data...)
	inv := NewMatrix(3, 3)
	if err := InvertInto(&inv, m); err != nil {
		t.Fatal(err)
	}
	for i := range saved {
		if m.Data[i] != saved[i] {
			t.Fatal("InvertInto modified its input")
		}
	}
}

// TestMMSERecoversSignal drives the end-to-end combiner property: with low
// noise, W*(H*x) must approximate x for any full-rank channel.
func TestMMSERecoversSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for layers := 1; layers <= 4; layers++ {
		const ant = 4
		ws := NewMMSEWorkspace(ant, layers)
		for trial := 0; trial < 10; trial++ {
			h := randMatrix(rng, ant, layers)
			x := make([]complex128, layers)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			y := make([]complex128, ant)
			for a := 0; a < ant; a++ {
				var sum complex128
				for l := 0; l < layers; l++ {
					sum += h.At(a, l) * x[l]
				}
				y[a] = sum
			}
			w := NewMatrix(layers, ant)
			if err := ws.Solve(&w, h, 1e-9); err != nil {
				t.Fatal(err)
			}
			got := make([]complex128, layers)
			ApplyWeights(got, w, y)
			for l := 0; l < layers; l++ {
				if cmplx.Abs(got[l]-x[l]) > 1e-3 {
					t.Fatalf("layers=%d: recovered[%d] = %v, want %v", layers, l, got[l], x[l])
				}
			}
		}
	}
}

// TestMMSEShrinksWithNoise: as noise variance grows, the MMSE estimate is
// biased toward zero (regularisation), so its norm must not grow.
func TestMMSEShrinksWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const ant, layers = 4, 2
	ws := NewMMSEWorkspace(ant, layers)
	h := randMatrix(rng, ant, layers)
	y := make([]complex128, ant)
	for i := range y {
		y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	norm := func(nv float64) float64 {
		w := NewMatrix(layers, ant)
		if err := ws.Solve(&w, h, nv); err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, layers)
		ApplyWeights(x, w, y)
		var s float64
		for _, v := range x {
			s += real(v)*real(v) + imag(v)*imag(v)
		}
		return s
	}
	if n1, n2 := norm(0.01), norm(10); n2 > n1 {
		t.Errorf("MMSE norm grew with noise: %g -> %g", n1, n2)
	}
}

func TestWorkspacePanics(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {4, 0}, {2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMMSEWorkspace(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			NewMMSEWorkspace(tc[0], tc[1])
		}()
	}
}

func BenchmarkMMSESolve(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	for layers := 1; layers <= 4; layers++ {
		h := randMatrix(rng, 4, layers)
		ws := NewMMSEWorkspace(4, layers)
		w := NewMatrix(layers, 4)
		b.Run("layers"+string(rune('0'+layers)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := ws.Solve(&w, h, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
