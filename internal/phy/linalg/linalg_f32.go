// Float32 split-plane weight solves: the per-subcarrier MMSE and IRC
// combining solutions over the lane layout (internal/phy/lane). Where
// the complex128 path inverts the Gram matrix by Gauss-Jordan, the
// float32 path exploits the structure the receiver guarantees — the
// regularised Gram and the diagonally loaded covariance are Hermitian
// positive definite — and solves by Cholesky (lane.HermSolve), which is
// both cheaper and better conditioned in float32 than forming an
// explicit inverse.
//
// All matrices are row-major split planes. Shapes are tiny (at most 8
// antennas x 4 layers), so scratch lives in fixed stack arrays and every
// solve is allocation-free — these functions run once per subcarrier on
// the hot path.
package linalg

import (
	"fmt"

	"ltephy/internal/phy/lane"
)

// MaxDimF32 bounds the float32 solvers' matrix dimensions, matching
// lane.HermSolve's limit: up to 8 antennas and 4 layers.
const MaxDimF32 = 8

func checkShapeF32(ant, layers int) {
	if ant < 1 || ant > MaxDimF32 || layers < 1 || layers > ant {
		panic(fmt.Sprintf("linalg: invalid f32 solve shape ant=%d layers=%d", ant, layers))
	}
}

// MMSESolveF32 computes the MMSE combining matrix
//
//	W = (H^H H + nv I)^{-1} H^H
//
// into dst (layers x ant row-major planes), where h is the ant x layers
// channel matrix (row-major planes) and nv the diagonal loading (noise
// variance). It returns false — leaving dst unspecified — when the
// regularised Gram matrix is not numerically positive definite (the
// singular-channel case); the caller zeroes its weights, matching the
// complex128 path's handling.
func MMSESolveF32(dstRe, dstIm, hRe, hIm []float32, ant, layers int, nv float32) bool {
	checkShapeF32(ant, layers)
	var gRe, gIm [MaxDimF32 * MaxDimF32]float32 // layers x layers Gram
	var bRe, bIm [MaxDimF32 * MaxDimF32]float32 // layers x ant   H^H
	// Gram g[i][j] = sum_a conj(h[a][i]) h[a][j]; only the lower triangle
	// (j <= i) is consumed by the Cholesky solve.
	for i := 0; i < layers; i++ {
		for j := 0; j <= i; j++ {
			var sr, si float32
			for a := 0; a < ant; a++ {
				ar, ai := hRe[a*layers+i], hIm[a*layers+i]
				br, bi := hRe[a*layers+j], hIm[a*layers+j]
				sr += ar*br + ai*bi
				si += ar*bi - ai*br
			}
			gRe[i*layers+j], gIm[i*layers+j] = sr, si
		}
		gRe[i*layers+i] += nv
	}
	// B = H^H.
	for l := 0; l < layers; l++ {
		for a := 0; a < ant; a++ {
			bRe[l*ant+a] = hRe[a*layers+l]
			bIm[l*ant+a] = -hIm[a*layers+l]
		}
	}
	lm := layers * ant
	return lane.HermSolve(layers, ant,
		gRe[:layers*layers], gIm[:layers*layers],
		bRe[:lm], bIm[:lm], dstRe[:lm], dstIm[:lm])
}

// IRCSolveF32 computes the interference-rejection combining matrix
//
//	W = (H^H R^{-1} H + I)^{-1} H^H R^{-1}
//
// into dst (layers x ant row-major planes), where r is the ant x ant
// Hermitian noise-plus-interference covariance (diagonally loaded by the
// caller, hence positive definite) and h the ant x layers channel. A
// covariance that fails the Cholesky factorisation (degenerate all-zero
// input) falls back to identity whitening — plain MMSE behaviour with
// unit loading — matching the complex128 path. It returns false when
// the whitened Gram solve itself fails; the caller zeroes its weights.
//
// r is preserved; the two inner solves work on stack copies.
func IRCSolveF32(dstRe, dstIm, rRe, rIm, hRe, hIm []float32, ant, layers int) bool {
	checkShapeF32(ant, layers)
	al := ant * layers
	// B = R^{-1} H (ant x layers): solve R B = H. HermSolve leaves its A
	// argument untouched, so r passes through directly.
	var bRe, bIm [MaxDimF32 * MaxDimF32]float32
	if !lane.HermSolve(ant, layers, rRe[:ant*ant], rIm[:ant*ant],
		hRe[:al], hIm[:al], bRe[:al], bIm[:al]) {
		copy(bRe[:al], hRe[:al])
		copy(bIm[:al], hIm[:al])
	}
	// G = H^H B + I (layers x layers): Hermitian since R is; lower
	// triangle only, as above.
	var gRe, gIm [MaxDimF32 * MaxDimF32]float32
	for i := 0; i < layers; i++ {
		for j := 0; j <= i; j++ {
			var sr, si float32
			for a := 0; a < ant; a++ {
				ar, ai := hRe[a*layers+i], hIm[a*layers+i]
				br, bi := bRe[a*layers+j], bIm[a*layers+j]
				sr += ar*br + ai*bi
				si += ar*bi - ai*br
			}
			gRe[i*layers+j], gIm[i*layers+j] = sr, si
		}
		gRe[i*layers+i]++
	}
	// B^H = H^H R^{-1} (layers x ant), since R is Hermitian.
	var bhRe, bhIm [MaxDimF32 * MaxDimF32]float32
	for l := 0; l < layers; l++ {
		for a := 0; a < ant; a++ {
			bhRe[l*ant+a] = bRe[a*layers+l]
			bhIm[l*ant+a] = -bIm[a*layers+l]
		}
	}
	la := layers * ant
	return lane.HermSolve(layers, ant,
		gRe[:layers*layers], gIm[:layers*layers],
		bhRe[:la], bhIm[:la], dstRe[:la], dstIm[:la])
}
