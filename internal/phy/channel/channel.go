// Package channel models the radio channel between a UE and the base
// station's receive antennas: a block-fading, frequency-selective MIMO
// channel with additive white Gaussian noise.
//
// The paper excludes the receiver frontend (filter, CP removal, FFT) from
// the benchmark because it is statically defined; this package therefore
// produces frequency-domain subcarrier samples directly — exactly what the
// per-user processing chain consumes. Each (antenna, layer) pair gets an
// independent multipath impulse response whose taps fall inside the
// channel estimator's time-domain window, so the matched-filter estimate
// is able to recover it (the property the chanest tests assert).
package channel

import (
	"fmt"
	"math"

	"ltephy/internal/phy/sequence"
	"ltephy/internal/rng"
)

// MaxDelaySpreadFrac bounds multipath tap delays to this fraction of the
// symbol length. It must not exceed 1/sequence.MaxLayers, or the taps of
// one layer would leak into the next layer's cyclic-shift window.
const MaxDelaySpreadFrac = 1.0 / sequence.MaxLayers

// DefaultTaps is the number of multipath taps per (antenna, layer) link.
const DefaultTaps = 4

// Profile is a multipath power-delay profile, loosely mirroring the 3GPP
// reference channel families (EPA/ETU): how many taps, how far they
// spread, and how fast their power decays.
type Profile struct {
	Name string
	// Taps per (antenna, layer) link.
	Taps int
	// DelaySpreadFrac is the fraction of the symbol the taps occupy; it
	// must not exceed MaxDelaySpreadFrac or layer separation breaks.
	DelaySpreadFrac float64
	// DecayDBPerTap is the power drop from one tap to the next.
	DecayDBPerTap float64
}

// The built-in profiles.
var (
	// ProfileDefault matches the original NewMIMO behaviour.
	ProfileDefault = Profile{Name: "default", Taps: DefaultTaps, DelaySpreadFrac: MaxDelaySpreadFrac, DecayDBPerTap: 3}
	// ProfileFlat is a single-tap (frequency-flat) channel.
	ProfileFlat = Profile{Name: "flat", Taps: 1, DelaySpreadFrac: 0.01, DecayDBPerTap: 0}
	// ProfilePedestrian has a short delay spread (mild selectivity),
	// like 3GPP EPA.
	ProfilePedestrian = Profile{Name: "pedestrian", Taps: 3, DelaySpreadFrac: 0.05, DecayDBPerTap: 6}
	// ProfileUrban is rich multipath across the full window, like ETU.
	ProfileUrban = Profile{Name: "urban", Taps: 7, DelaySpreadFrac: MaxDelaySpreadFrac, DecayDBPerTap: 1.5}
)

// Validate checks a profile's bounds.
func (p Profile) Validate() error {
	switch {
	case p.Taps < 1:
		return fmt.Errorf("channel: profile %q has %d taps", p.Name, p.Taps)
	case p.DelaySpreadFrac <= 0 || p.DelaySpreadFrac > MaxDelaySpreadFrac:
		return fmt.Errorf("channel: profile %q delay spread %g outside (0, %g]",
			p.Name, p.DelaySpreadFrac, MaxDelaySpreadFrac)
	case p.DecayDBPerTap < 0:
		return fmt.Errorf("channel: profile %q negative decay", p.Name)
	}
	return nil
}

// MIMO is one realisation of the channel for a single user's allocation:
// frequency responses for every (antenna, layer) pair over n subcarriers.
type MIMO struct {
	Antennas, Layers int
	N                int            // subcarriers
	H                [][]complex128 // H[a*Layers+l][k]
	NoiseVar         float64        // per-subcarrier complex noise variance
}

// Resp returns the frequency response for (antenna a, layer l).
func (c *MIMO) Resp(a, l int) []complex128 { return c.H[a*c.Layers+l] }

// NewMIMO draws a random channel with ProfileDefault: see NewMIMOProfile.
func NewMIMO(r *rng.RNG, antennas, layers, n int, noiseVar float64) *MIMO {
	return NewMIMOProfile(r, antennas, layers, n, noiseVar, ProfileDefault)
}

// NewMIMOProfile draws a random channel: profile-shaped multipath taps
// (delays within the estimator window) for each (antenna, layer), and the
// given noise variance. Average channel gain per link is normalised to 1
// so receive SNR per layer is 1/noiseVar.
func NewMIMOProfile(r *rng.RNG, antennas, layers, n int, noiseVar float64, prof Profile) *MIMO {
	if antennas < 1 || layers < 1 || layers > sequence.MaxLayers || n < 1 {
		panic(fmt.Sprintf("channel: invalid shape antennas=%d layers=%d n=%d", antennas, layers, n))
	}
	if noiseVar < 0 {
		panic(fmt.Sprintf("channel: negative noise variance %g", noiseVar))
	}
	if err := prof.Validate(); err != nil {
		panic(err.Error())
	}
	c := &MIMO{Antennas: antennas, Layers: layers, N: n, NoiseVar: noiseVar,
		H: make([][]complex128, antennas*layers)}
	maxDelay := int(float64(n) * prof.DelaySpreadFrac)
	if maxDelay < 1 {
		maxDelay = 1
	}
	for al := range c.H {
		c.H[al] = freqResponse(r, n, maxDelay, prof)
	}
	return c
}

// freqResponse draws the profile's taps in [0, maxDelay) and returns the
// n-point frequency response sum_t g_t * exp(-2*pi*i*k*d_t/n).
func freqResponse(r *rng.RNG, n, maxDelay int, prof Profile) []complex128 {
	taps := prof.Taps
	if taps > maxDelay {
		taps = maxDelay
	}
	decay := math.Pow(10, -prof.DecayDBPerTap/10)
	delays := make([]int, taps)
	gains := make([]complex128, taps)
	var power float64
	for t := range delays {
		if t == 0 {
			delays[t] = 0 // always a line-of-sight-ish first tap
		} else {
			delays[t] = 1 + r.Intn(maxDelay-1)
		}
		p := math.Pow(decay, float64(t))
		gains[t] = r.ComplexNormal(p)
		power += p
	}
	// Normalise expected power to 1.
	scale := complex(1/math.Sqrt(power), 0)
	for t := range gains {
		gains[t] *= scale
	}
	h := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := range delays {
			theta := -2 * math.Pi * float64((k*delays[t])%n) / float64(n)
			sum += gains[t] * complex(math.Cos(theta), math.Sin(theta))
		}
		h[k] = sum
	}
	return h
}

// Apply propagates the per-layer transmit grid through the channel and adds
// noise: for each antenna a and subcarrier k,
//
//	y[a][k] = sum_l H[a][l][k] * x[l][k] + n
//
// tx is indexed [layer][subcarrier]; the result is [antenna][subcarrier].
func (c *MIMO) Apply(r *rng.RNG, tx [][]complex128) [][]complex128 {
	if len(tx) != c.Layers {
		panic(fmt.Sprintf("channel: tx has %d layers, channel built for %d", len(tx), c.Layers))
	}
	for l := range tx {
		if len(tx[l]) != c.N {
			panic(fmt.Sprintf("channel: tx layer %d has %d subcarriers, want %d", l, len(tx[l]), c.N))
		}
	}
	rx := make([][]complex128, c.Antennas)
	for a := 0; a < c.Antennas; a++ {
		row := make([]complex128, c.N)
		for l := 0; l < c.Layers; l++ {
			h := c.Resp(a, l)
			x := tx[l]
			for k := 0; k < c.N; k++ {
				row[k] += h[k] * x[k]
			}
		}
		if c.NoiseVar > 0 {
			for k := 0; k < c.N; k++ {
				row[k] += r.ComplexNormal(c.NoiseVar)
			}
		}
		rx[a] = row
	}
	return rx
}
