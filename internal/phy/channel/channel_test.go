package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"ltephy/internal/phy/fft"
	"ltephy/internal/rng"
)

func TestShapeAndDeterminism(t *testing.T) {
	a := NewMIMO(rng.New(1), 4, 2, 144, 0.01)
	b := NewMIMO(rng.New(1), 4, 2, 144, 0.01)
	if len(a.H) != 8 {
		t.Fatalf("got %d links, want 8", len(a.H))
	}
	for al := range a.H {
		if len(a.H[al]) != 144 {
			t.Fatalf("link %d has %d subcarriers", al, len(a.H[al]))
		}
		for k := range a.H[al] {
			if a.H[al][k] != b.H[al][k] {
				t.Fatal("same seed produced different channels")
			}
		}
	}
}

func TestAverageUnitGain(t *testing.T) {
	// E|H|^2 per link is normalised to ~1; average over many realisations.
	r := rng.New(2)
	const n = 96
	var acc float64
	const trials = 200
	for i := 0; i < trials; i++ {
		c := NewMIMO(r, 1, 1, n, 0)
		for _, v := range c.H[0] {
			acc += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	got := acc / float64(trials*n)
	if math.Abs(got-1) > 0.1 {
		t.Errorf("average |H|^2 = %g, want ~1", got)
	}
}

// TestImpulseResponseInsideWindow verifies the channel's time-domain energy
// stays inside the first N*MaxDelaySpreadFrac samples — the contract the
// channel estimator's windowing step depends on.
func TestImpulseResponseInsideWindow(t *testing.T) {
	r := rng.New(3)
	const n = 288
	for trial := 0; trial < 20; trial++ {
		c := NewMIMO(r, 2, 2, n, 0)
		for al := range c.H {
			td := make([]complex128, n)
			fft.Get(n).Inverse(td, c.H[al])
			window := int(float64(n) * MaxDelaySpreadFrac)
			var inside, total float64
			for i, v := range td {
				e := real(v)*real(v) + imag(v)*imag(v)
				total += e
				if i < window {
					inside += e
				}
			}
			if inside < 0.999*total {
				t.Fatalf("trial %d link %d: only %.4f of energy inside window", trial, al, inside/total)
			}
		}
	}
}

func TestApplySingleLayerIdentity(t *testing.T) {
	// With one antenna, one layer, no noise: y = H .* x exactly.
	r := rng.New(4)
	const n = 60
	c := NewMIMO(r, 1, 1, n, 0)
	x := make([]complex128, n)
	for k := range x {
		x[k] = complex(float64(k), 1)
	}
	y := c.Apply(r, [][]complex128{x})
	for k := 0; k < n; k++ {
		if cmplx.Abs(y[0][k]-c.H[0][k]*x[k]) > 1e-12 {
			t.Fatalf("y[%d] != H*x", k)
		}
	}
}

func TestApplySuperposition(t *testing.T) {
	// Two layers through the channel equal the sum of each alone (noiseless).
	r := rng.New(5)
	const n = 48
	c := NewMIMO(r, 3, 2, n, 0)
	x0 := make([]complex128, n)
	x1 := make([]complex128, n)
	for k := 0; k < n; k++ {
		x0[k] = complex(1, float64(k))
		x1[k] = complex(-float64(k), 2)
	}
	zero := make([]complex128, n)
	both := c.Apply(r, [][]complex128{x0, x1})
	only0 := c.Apply(r, [][]complex128{x0, zero})
	only1 := c.Apply(r, [][]complex128{zero, x1})
	for a := 0; a < 3; a++ {
		for k := 0; k < n; k++ {
			if cmplx.Abs(both[a][k]-(only0[a][k]+only1[a][k])) > 1e-10 {
				t.Fatalf("superposition violated at antenna %d bin %d", a, k)
			}
		}
	}
}

func TestNoiseStatistics(t *testing.T) {
	r := rng.New(6)
	const n, nv = 4096, 0.25
	c := NewMIMO(r, 1, 1, n, nv)
	zero := make([]complex128, n)
	y := c.Apply(r, [][]complex128{zero})
	var e float64
	for _, v := range y[0] {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	if got := e / n; math.Abs(got-nv) > 0.03 {
		t.Errorf("noise power %g, want %g", got, nv)
	}
}

func TestPanics(t *testing.T) {
	r := rng.New(7)
	cases := []func(){
		func() { NewMIMO(r, 0, 1, 10, 0) },
		func() { NewMIMO(r, 1, 5, 10, 0) },
		func() { NewMIMO(r, 1, 1, 0, 0) },
		func() { NewMIMO(r, 1, 1, 10, -1) },
		func() { NewMIMO(r, 1, 2, 10, 0).Apply(r, make([][]complex128, 1)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func BenchmarkNewMIMO(b *testing.B) {
	r := rng.New(8)
	for i := 0; i < b.N; i++ {
		NewMIMO(r, 4, 4, 1200, 0.01)
	}
}

func BenchmarkApply(b *testing.B) {
	r := rng.New(9)
	c := NewMIMO(r, 4, 4, 1200, 0.01)
	tx := make([][]complex128, 4)
	for l := range tx {
		tx[l] = make([]complex128, 1200)
	}
	for i := 0; i < b.N; i++ {
		c.Apply(r, tx)
	}
}

// TestProfiles: flat is frequency-flat, urban markedly more selective than
// pedestrian, and all profiles honour the estimator window.
func TestProfiles(t *testing.T) {
	const n = 480
	selectivity := func(prof Profile, seed uint64) float64 {
		r := rng.New(seed)
		var acc float64
		const trials = 40
		for i := 0; i < trials; i++ {
			c := NewMIMOProfile(r, 1, 1, n, 0, prof)
			// Variance of |H|^2 across bins, normalised by its mean^2.
			var mean, m2 float64
			for _, v := range c.H[0] {
				p := real(v)*real(v) + imag(v)*imag(v)
				mean += p
				m2 += p * p
			}
			mean /= n
			m2 /= n
			acc += (m2 - mean*mean) / (mean * mean)
		}
		return acc / trials
	}
	flat := selectivity(ProfileFlat, 1)
	ped := selectivity(ProfilePedestrian, 2)
	urb := selectivity(ProfileUrban, 3)
	if flat > 1e-12 {
		t.Errorf("flat profile selectivity %g, want 0", flat)
	}
	if urb < 1.5*ped {
		t.Errorf("urban selectivity %g not well above pedestrian %g", urb, ped)
	}
	// Window containment for every profile.
	for _, prof := range []Profile{ProfileFlat, ProfilePedestrian, ProfileUrban, ProfileDefault} {
		r := rng.New(9)
		c := NewMIMOProfile(r, 2, 2, n, 0, prof)
		for al := range c.H {
			td := make([]complex128, n)
			fft.Get(n).Inverse(td, c.H[al])
			window := int(float64(n) * MaxDelaySpreadFrac)
			var inside, total float64
			for i, v := range td {
				e := real(v)*real(v) + imag(v)*imag(v)
				total += e
				if i < window {
					inside += e
				}
			}
			if inside < 0.999*total {
				t.Fatalf("%s: energy escaped the window", prof.Name)
			}
		}
	}
	// Invalid profiles rejected.
	bad := Profile{Name: "bad", Taps: 0, DelaySpreadFrac: 0.1}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-tap profile accepted")
			}
		}()
		NewMIMOProfile(rng.New(1), 1, 1, 48, 0, bad)
	}()
	wide := Profile{Name: "wide", Taps: 2, DelaySpreadFrac: 0.5}
	if err := wide.Validate(); err == nil {
		t.Error("over-wide delay spread accepted")
	}
}
