// Package fleet is the multi-eNB control plane: a coordinator that
// supervises a fleet of lte-enb worker processes, owns the cell→worker
// placement map, migrates cells live between workers (drain →
// checkpoint → restore → release over the fronthaul control protocol)
// and rebalances placement from estimator-predicted activity and
// observed shedding. The fleet-scale load harness lives here too,
// driving tens of cells against the fleet with replay-exact delivery
// across worker crashes and migrations. DESIGN.md §13 documents the
// protocol.
package fleet

import (
	"fmt"
	"sort"
)

// Placement is the authoritative cell→worker map. The epoch increments
// on every change (migration, worker restart), so generators can detect
// staleness cheaply: a redirect ack means "re-resolve and compare
// epochs".
type Placement struct {
	// Epoch counts placement changes.
	Epoch int64
	// Owner[cell] is the owning worker index.
	Owner []int
}

// Clone deep-copies the placement.
func (p Placement) Clone() Placement {
	return Placement{Epoch: p.Epoch, Owner: append([]int(nil), p.Owner...)}
}

// InitialPlacement distributes cells round-robin across workers —
// deterministic and balanced under uniform load.
func InitialPlacement(cells, workers int) Placement {
	p := Placement{Owner: make([]int, cells)}
	for c := range p.Owner {
		p.Owner[c] = c % workers
	}
	return p
}

// CellLoad is the rebalancer's per-cell input, scraped from the workers'
// serving counters: the estimator-predicted activity the cell offered
// over the scrape interval, and the shed fraction it actually observed.
type CellLoad struct {
	Cell int
	// Activity is the predicted offered activity (CellStats.OfferedEst
	// delta over the interval).
	Activity float64
	// ShedFraction is 1 - AdmittedEst/OfferedEst over the interval (0
	// when nothing was offered).
	ShedFraction float64
}

// Move is one rebalancing migration.
type Move struct {
	Cell, From, To int
}

// Rebalance plans migrations that even out predicted activity across
// workers. It is deterministic: cells are considered heaviest-first
// (ties by lower cell index), each move sends a cell from the currently
// most-loaded worker to the least-loaded one, and planning stops when
// the imbalance drops under tolerance or maxMoves is reached. Cells
// whose observed shed fraction exceeds shedHot are prioritised — a
// shedding cell is overloaded where it is regardless of what the
// estimator predicts.
//
// The returned moves assume they are applied in order (each move
// updates the working placement).
func Rebalance(p Placement, loads []CellLoad, workers, maxMoves int, tolerance, shedHot float64) []Move {
	if workers <= 1 || maxMoves <= 0 || len(p.Owner) == 0 {
		return nil
	}
	activity := make(map[int]float64, len(loads))
	hot := make(map[int]bool, len(loads))
	for _, l := range loads {
		if l.Cell >= 0 && l.Cell < len(p.Owner) {
			activity[l.Cell] = l.Activity
			hot[l.Cell] = l.ShedFraction > shedHot
		}
	}
	owner := append([]int(nil), p.Owner...)
	perWorker := make([]float64, workers)
	for c, w := range owner {
		if w >= 0 && w < workers {
			perWorker[w] += activity[c]
		}
	}
	// Candidate order: hot cells first, then heaviest, then cell index.
	cells := make([]int, len(owner))
	for i := range cells {
		cells[i] = i
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if hot[a] != hot[b] {
			return hot[a]
		}
		if activity[a] != activity[b] {
			return activity[a] > activity[b]
		}
		return a < b
	})

	var moves []Move
	for len(moves) < maxMoves {
		src, dst := argMax(perWorker), argMin(perWorker)
		if src == dst || perWorker[src]-perWorker[dst] <= tolerance {
			break
		}
		// Pick the first candidate on the overloaded worker whose move
		// narrows the gap instead of flipping the imbalance.
		gap := perWorker[src] - perWorker[dst]
		moved := false
		for _, c := range cells {
			if owner[c] != src {
				continue
			}
			if a := activity[c]; a > 0 && a < gap {
				moves = append(moves, Move{Cell: c, From: src, To: dst})
				owner[c] = dst
				perWorker[src] -= a
				perWorker[dst] += a
				moved = true
				break
			}
		}
		if !moved {
			break
		}
	}
	return moves
}

// argMax returns the index of the largest value (lowest index wins ties).
func argMax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// argMin returns the index of the smallest value (lowest index wins ties).
func argMin(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}

// validate checks a placement covers cells 0..n-1 with worker indices
// under workers.
func (p Placement) validate(workers int) error {
	for c, w := range p.Owner {
		if w < 0 || w >= workers {
			return fmt.Errorf("fleet: cell %d owned by unknown worker %d", c, w)
		}
	}
	return nil
}
