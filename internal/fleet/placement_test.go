package fleet

import (
	"reflect"
	"testing"
)

// TestInitialPlacementRoundRobin: cells distribute evenly and
// deterministically.
func TestInitialPlacementRoundRobin(t *testing.T) {
	p := InitialPlacement(8, 3)
	want := []int{0, 1, 2, 0, 1, 2, 0, 1}
	if !reflect.DeepEqual(p.Owner, want) {
		t.Fatalf("owner = %v, want %v", p.Owner, want)
	}
	if err := p.validate(3); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

// TestRebalanceEvensOut: a skewed placement converges toward balance,
// and planning is deterministic.
func TestRebalanceEvensOut(t *testing.T) {
	// All four cells on worker 0; activity 4,3,2,1.
	p := Placement{Owner: []int{0, 0, 0, 0}}
	loads := []CellLoad{
		{Cell: 0, Activity: 4},
		{Cell: 1, Activity: 3},
		{Cell: 2, Activity: 2},
		{Cell: 3, Activity: 1},
	}
	moves := Rebalance(p, loads, 2, 10, 0.5, 0.5)
	if len(moves) == 0 {
		t.Fatalf("no moves planned for a fully skewed placement")
	}
	// Apply and check the final imbalance honours the tolerance.
	owner := append([]int(nil), p.Owner...)
	for _, m := range moves {
		if owner[m.Cell] != m.From {
			t.Fatalf("move %+v does not match working placement %v", m, owner)
		}
		owner[m.Cell] = m.To
	}
	per := make([]float64, 2)
	for c, w := range owner {
		per[w] += loads[c].Activity
	}
	if gap := per[0] - per[1]; gap < -3 || gap > 3 {
		// 10 total activity: anything within one heavy cell of even is fine.
		t.Fatalf("rebalance left imbalance %v (owners %v)", per, owner)
	}

	again := Rebalance(p, loads, 2, 10, 0.5, 0.5)
	if !reflect.DeepEqual(moves, again) {
		t.Fatalf("rebalance is not deterministic: %v vs %v", moves, again)
	}
}

// TestRebalanceHotCellsFirst: a shedding cell moves before a heavier
// quiet one.
func TestRebalanceHotCellsFirst(t *testing.T) {
	p := Placement{Owner: []int{0, 0, 1}}
	loads := []CellLoad{
		{Cell: 0, Activity: 3, ShedFraction: 0},
		{Cell: 1, Activity: 2, ShedFraction: 0.4}, // hot
		{Cell: 2, Activity: 1, ShedFraction: 0},
	}
	moves := Rebalance(p, loads, 2, 1, 0.1, 0.2)
	if len(moves) != 1 || moves[0].Cell != 1 || moves[0].To != 1 {
		t.Fatalf("moves = %v, want the hot cell 1 moved to worker 1", moves)
	}
}

// TestRebalanceRespectsLimits: no moves under tolerance, none past
// maxMoves, none for a single worker.
func TestRebalanceRespectsLimits(t *testing.T) {
	p := Placement{Owner: []int{0, 1}}
	loads := []CellLoad{{Cell: 0, Activity: 1}, {Cell: 1, Activity: 1.2}}
	if moves := Rebalance(p, loads, 2, 10, 0.5, 0.5); len(moves) != 0 {
		t.Fatalf("balanced placement produced moves: %v", moves)
	}
	if moves := Rebalance(p, loads, 1, 10, 0, 0.5); len(moves) != 0 {
		t.Fatalf("single worker produced moves: %v", moves)
	}
	skew := Placement{Owner: []int{0, 0, 0, 0}}
	skewLoads := []CellLoad{
		{Cell: 0, Activity: 1}, {Cell: 1, Activity: 1},
		{Cell: 2, Activity: 1}, {Cell: 3, Activity: 1},
	}
	if moves := Rebalance(skew, skewLoads, 2, 1, 0, 0.5); len(moves) > 1 {
		t.Fatalf("maxMoves=1 produced %d moves", len(moves))
	}
}
